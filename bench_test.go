package wasmcontainers_test

// Root benchmark harness: one testing.B benchmark per table and figure of
// the paper, plus the ablations DESIGN.md calls out and microbenchmarks of
// the substrates. Figure benchmarks run the full simulated cluster and
// report the headline numbers via b.ReportMetric, so
//
//	go test -bench=Fig -benchmem
//
// regenerates the evaluation. (Figure benches are heavy: hundreds of
// simulated container starts per iteration.)

import (
	"testing"

	"wasmcontainers/internal/bench"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/pylite"
	"wasmcontainers/internal/wasi"
	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/workloads"
)

// runExperiment executes a registered experiment b.N times.
func runExperiment(b *testing.B, id string) *bench.Table {
	b.Helper()
	e, ok := bench.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return t
}

// BenchmarkTable1Stack regenerates Table I (software stack).
func BenchmarkTable1Stack(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Overview regenerates Table II (experiment matrix).
func BenchmarkTable2Overview(b *testing.B) { runExperiment(b, "table2") }

// reportOursVsBest extracts "ours" and the best competitor from a memory
// figure and reports them as custom metrics.
func reportOursVsBest(b *testing.B, configs []bench.RuntimeConfig, useFree bool) {
	b.Helper()
	var ours, best float64
	for _, cfg := range configs {
		m, err := bench.MeasureDeployment(cfg, 100)
		if err != nil {
			b.Fatal(err)
		}
		v := m.MetricsPerContainerMiB
		if useFree {
			v = m.FreePerContainerMiB
		}
		if cfg.Ours {
			ours = v
		} else if best == 0 || v < best {
			best = v
		}
	}
	b.ReportMetric(ours, "ours-MiB/ctr")
	b.ReportMetric(best, "best-other-MiB/ctr")
	b.ReportMetric(100*(1-ours/best), "reduction-%")
}

// BenchmarkFig3MemoryCrunMetricsServer regenerates Figure 3.
func BenchmarkFig3MemoryCrunMetricsServer(b *testing.B) {
	runExperiment(b, "fig3")
	reportOursVsBest(b, bench.CrunEngineConfigs, false)
}

// BenchmarkFig4MemoryCrunFree regenerates Figure 4.
func BenchmarkFig4MemoryCrunFree(b *testing.B) {
	runExperiment(b, "fig4")
	reportOursVsBest(b, bench.CrunEngineConfigs, true)
}

// BenchmarkFig5MemoryRunwasiFree regenerates Figure 5.
func BenchmarkFig5MemoryRunwasiFree(b *testing.B) {
	runExperiment(b, "fig5")
	reportOursVsBest(b, bench.RunwasiConfigs, true)
}

// BenchmarkFig6MemoryPythonMetricsServer regenerates Figure 6.
func BenchmarkFig6MemoryPythonMetricsServer(b *testing.B) {
	runExperiment(b, "fig6")
	reportOursVsBest(b, bench.PythonConfigs, false)
}

// BenchmarkFig7MemoryPythonFree regenerates Figure 7.
func BenchmarkFig7MemoryPythonFree(b *testing.B) {
	runExperiment(b, "fig7")
	reportOursVsBest(b, bench.PythonConfigs, true)
}

// reportStartup measures time-to-last-start for ours at the given density.
func reportStartup(b *testing.B, density int) {
	m, err := bench.MeasureDeployment(bench.OursConfig, density)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(m.StartupSeconds, "ours-startup-s")
}

// BenchmarkFig8Startup10 regenerates Figure 8.
func BenchmarkFig8Startup10(b *testing.B) {
	runExperiment(b, "fig8")
	reportStartup(b, 10)
}

// BenchmarkFig9Startup400 regenerates Figure 9.
func BenchmarkFig9Startup400(b *testing.B) {
	runExperiment(b, "fig9")
	reportStartup(b, 400)
}

// BenchmarkFig10MemoryOverview regenerates Figure 10.
func BenchmarkFig10MemoryOverview(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkAblationDynamicLoading contrasts dynamic vs static engine linking.
func BenchmarkAblationDynamicLoading(b *testing.B) { runExperiment(b, "ablation-dynload") }

// BenchmarkAblationShimArchitecture contrasts embedded vs shim hosting.
func BenchmarkAblationShimArchitecture(b *testing.B) { runExperiment(b, "ablation-shim") }

// BenchmarkAblationEngineMode contrasts interpreter vs JIT engine modes.
func BenchmarkAblationEngineMode(b *testing.B) { runExperiment(b, "ablation-mode") }

// BenchmarkAblationDensity sweeps density to the 500-pods/node limit.
func BenchmarkAblationDensity(b *testing.B) { runExperiment(b, "ablation-density") }

// --- substrate microbenchmarks ---

// BenchmarkWasmInterpreter measures raw interpreter throughput on the
// cpu-bound workload (primes below 10000).
func BenchmarkWasmInterpreter(b *testing.B) {
	m, err := workloads.Module("cpu-bound")
	if err != nil {
		b.Fatal(err)
	}
	store := exec.NewStore(exec.Config{})
	inst, err := store.Instantiate(m, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		before := store.InstructionCount()
		if _, err := inst.Call("count_primes", exec.I32(10_000)); err != nil {
			b.Fatal(err)
		}
		instrs = store.InstructionCount() - before
	}
	b.ReportMetric(float64(instrs), "wasm-instrs/op")
}

// BenchmarkWasmDecodeValidate measures module load time (the engine
// Compile path every container start exercises).
func BenchmarkWasmDecodeValidate(b *testing.B) {
	bin, err := workloads.Binary("minimal-service")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := wasm.Decode(bin)
		if err != nil {
			b.Fatal(err)
		}
		if err := wasm.Validate(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWasmInstantiate measures store+instance setup per container.
func BenchmarkWasmInstantiate(b *testing.B) {
	m, err := workloads.Module("minimal-service")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := exec.NewStore(exec.Config{})
		wasi.New(wasi.Config{}).Register(store)
		if _, err := store.Instantiate(m, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPyliteInterpreter measures the Python-baseline interpreter on an
// equivalent primes workload.
func BenchmarkPyliteInterpreter(b *testing.B) {
	code, err := pylite.Compile(`
def is_prime(n):
    if n < 2:
        return False
    d = 2
    while d * d <= n:
        if n % d == 0:
            return False
        d = d + 1
    return True

count = 0
for i in range(10000):
    if is_prime(i):
        count = count + 1
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		vm := pylite.NewVM(nil)
		if _, err := vm.Run(code); err != nil {
			b.Fatal(err)
		}
		steps = vm.Steps
	}
	b.ReportMetric(float64(steps), "pylite-steps/op")
}

// BenchmarkEngineProfiles measures full engine Compile+Run per profile on
// the minimal service (the per-container start path).
func BenchmarkEngineProfiles(b *testing.B) {
	bin, err := workloads.Binary("minimal-service")
	if err != nil {
		b.Fatal(err)
	}
	for _, prof := range engine.Profiles() {
		b.Run(prof.Name, func(b *testing.B) {
			eng := engine.New(prof)
			for i := 0; i < b.N; i++ {
				cm, err := eng.Compile(bin)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(cm, wasi.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterStart measures wall-clock cost of simulating one
// 100-container deployment end to end (harness overhead, not paper data).
func BenchmarkClusterStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := bench.MeasureDeployment(bench.OursConfig, 100)
		if err != nil {
			b.Fatal(err)
		}
		if m.MetricsPerContainerMiB <= 0 {
			b.Fatal("no measurement")
		}
	}
}

// TestTableFormatting pins the harness table renderer output.
func TestTableFormatting(t *testing.T) {
	t2 := &bench.Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
	}
	got := t2.Format()
	want := "demo\na  b\n-  -\n1  2\n"
	if got != want {
		t.Fatalf("Format() = %q, want %q", got, want)
	}
}

// BenchmarkAblationMultiTenant runs the mixed-tenant future-work scenario.
func BenchmarkAblationMultiTenant(b *testing.B) { runExperiment(b, "ablation-multitenant") }

// BenchmarkServing runs the warm-pool gateway sweep (pool size x rate).
func BenchmarkServing(b *testing.B) { runExperiment(b, "serve") }

// Startup crossover: the paper's most interesting latency result
// (Figures 8 vs 9). At 10 containers the runwasi shims start fastest; at
// 400 the ranking flips and the crun-embedded engines win, because every
// runwasi start serializes ~200 ms inside the containerd task service
// while the crun path is bounded by parallel CPU work instead. This
// example sweeps density and prints the crossover.
package main

import (
	"fmt"
	"log"

	"wasmcontainers/internal/bench"
)

func main() {
	configs := []bench.RuntimeConfig{
		bench.OursConfig,
		{Label: "crun-wasmtime", RuntimeClass: "crun-wasmtime", Image: bench.WasmImage},
		{Label: "containerd-shim-wasmtime", RuntimeClass: "wasmtime", Image: bench.WasmImage},
		{Label: "containerd-shim-wasmedge", RuntimeClass: "wasmedge", Image: bench.WasmImage},
	}
	densities := []int{10, 25, 50, 100, 200, 400}

	results := make(map[string][]float64)
	for _, cfg := range configs {
		for _, d := range densities {
			m, err := bench.MeasureDeployment(cfg, d)
			if err != nil {
				log.Fatal(err)
			}
			results[cfg.Label] = append(results[cfg.Label], m.StartupSeconds)
		}
	}

	fmt.Printf("%-26s", "time-to-start (s) \\ density")
	for _, d := range densities {
		fmt.Printf("%8d", d)
	}
	fmt.Println()
	for _, cfg := range configs {
		fmt.Printf("%-26s", cfg.Label)
		for _, v := range results[cfg.Label] {
			fmt.Printf("%8.2f", v)
		}
		fmt.Println()
	}

	// Locate the crossover: first density where ours beats shim-wasmtime.
	ours := results[bench.OursConfig.Label]
	shim := results["containerd-shim-wasmtime"]
	for i, d := range densities {
		if ours[i] < shim[i] {
			fmt.Printf("\ncrossover: at %d containers crun-wamr (%.2fs) overtakes the wasmtime shim (%.2fs)\n",
				d, ours[i], shim[i])
			fmt.Println("mechanism: each runwasi start holds the containerd task lock ~220ms;")
			fmt.Println("the crun path holds it ~2ms and spends its time on the 20-core pool instead.")
			return
		}
	}
	fmt.Println("\nno crossover found (unexpected)")
}

// Serving throughput: what a warm instance pool buys a Wasm function
// gateway. A standalone Wasm runtime pays its full embed cost (seconds of
// simulated CPU) on every cold instantiation, but a pooled instance answers
// in the engine's warm-invoke overhead plus guest execution — milliseconds.
// This example sweeps pool size for one engine and shows the latency cliff
// between pool exhaustion and warm serving, plus what the standing pool
// costs in kubelet-visible memory (the paper's density currency).
package main

import (
	"fmt"
	"log"
	"time"

	"wasmcontainers/internal/bench"
	"wasmcontainers/internal/engine"
)

func main() {
	const (
		rate   = 200.0
		window = 2 * time.Second
	)
	sizes := []int{0, 1, 2, 4, 8, 16}

	fmt.Printf("engine wamr, open-loop poisson %gr/s for %s, request-handler(%d)\n\n", rate, window, 500)
	fmt.Printf("%5s  %8s  %6s  %8s  %10s  %10s  %10s\n",
		"pool", "offered", "done", "rejected", "p50 (ms)", "p99 (ms)", "pool (MiB)")
	var coldP50, warmP50 float64
	for _, size := range sizes {
		m, err := bench.MeasureServing(engine.WAMR, size, rate, window)
		if err != nil {
			log.Fatal(err)
		}
		rep := m.Report
		fmt.Printf("%5d  %8d  %6d  %8d  %10.3f  %10.3f  %10.2f\n",
			size, rep.Offered, rep.Dispatcher.Completed,
			rep.Dispatcher.Rejected+rep.Dispatcher.Expired,
			rep.Latency.P50*1e3, rep.Latency.P99*1e3, m.PoolKubeletMiB)
		if size == 0 && rep.ColdLatency.N > 0 {
			coldP50 = rep.ColdLatency.P50
		}
		if size == sizes[len(sizes)-1] && rep.WarmLatency.N > 0 {
			warmP50 = rep.WarmLatency.P50
		}
	}

	if coldP50 > 0 && warmP50 > 0 {
		fmt.Printf("\nwarm p50 %.3f ms vs cold p50 %.0f ms: %.0fx faster, bought with\n",
			warmP50*1e3, coldP50*1e3, coldP50/warmP50)
		fmt.Println("a standing pool whose memory the kubelet sees like any pod's —")
		fmt.Println("the serving-side version of the paper's memory/density trade-off.")
	}
}

// Density sweep: the paper's core scalability question — how does memory
// per container behave as deployment density rises from 10 to 400 pods?
// This example compares the WAMR-crun integration against the best runwasi
// shim and the Python baseline at each density.
package main

import (
	"fmt"
	"log"

	"wasmcontainers/internal/bench"
)

func main() {
	configs := []bench.RuntimeConfig{
		bench.OursConfig,
		{Label: "containerd-shim-wasmtime", RuntimeClass: "wasmtime", Image: bench.WasmImage},
		{Label: "crun-python", RuntimeClass: "crun", Image: bench.PythonImage},
	}
	densities := []int{10, 50, 100, 200, 400}

	fmt.Printf("%-26s", "runtime \\ density")
	for _, d := range densities {
		fmt.Printf("%8d", d)
	}
	fmt.Println("   (MiB per container, free view)")

	for _, cfg := range configs {
		fmt.Printf("%-26s", cfg.Label)
		for _, d := range densities {
			m, err := bench.MeasureDeployment(cfg, d)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f", m.FreePerContainerMiB)
		}
		fmt.Println()
	}
	fmt.Println("\nPer-container cost is flat for all runtimes — the paper's scaling")
	fmt.Println("observation — but the gap between them persists at every density,")
	fmt.Println("which is what makes runtime choice matter for dense deployments.")
}

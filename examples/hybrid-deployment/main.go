// Hybrid deployment: the paper's compatibility claim — Kubernetes pods can
// run traditional and Wasm containers side by side on the same node with no
// infrastructure changes, selected per pod via RuntimeClass.
package main

import (
	"fmt"
	"log"

	"wasmcontainers/internal/k8s"
	"wasmcontainers/internal/simos"
)

func main() {
	cluster, err := k8s.NewCluster(k8s.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A mixed fleet on one node: Wasm microservices under crun-wamr,
	// a Python service under plain crun, and one under Kubernetes' default
	// runC — three RuntimeClasses, one cluster.
	type svc struct {
		class, image string
		replicas     int
	}
	fleet := []svc{
		{"crun-wamr", "minimal-service:wasm", 6},
		{"crun-wamr", "file-io:wasm", 2},
		{"crun", "python-minimal-service:3.11", 3},
		{"runc", "python-minimal-service:3.11", 3},
	}

	var all []*k8s.Pod
	for _, s := range fleet {
		pods, err := cluster.Deploy(k8s.DeployOptions{
			NamePrefix:       s.class,
			RuntimeClassName: s.class,
			Image:            s.image,
			Replicas:         s.replicas,
		})
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, pods...)
	}
	cluster.Run()

	fmt.Println("pod                      runtime class  handler                     mem (MiB)  status")
	for _, p := range all {
		m, _ := cluster.Metrics.PodMetrics(p)
		cs := p.Status.Containers[0]
		fmt.Printf("%-24s %-14s %-28s %8.2f  %s\n",
			p.Name, p.Spec.RuntimeClassName, cs.Handler,
			float64(m.MemoryBytes)/float64(simos.MiB), p.Status.Phase)
	}

	running := cluster.RunningPods()
	fmt.Printf("\n%d/%d pods running on %s — wasm and python containers coexist;\n",
		running, len(all), cluster.Nodes[0].Name)
	fmt.Println("the wasm pods use the shared libiwasm.so, charged once for the node:")
	for _, lib := range cluster.Nodes[0].OS.SharedLibs() {
		fmt.Printf("  %-24s %6.2f MiB resident\n", lib.Name, float64(lib.Bytes)/float64(simos.MiB))
	}
}

// Quickstart: spin up the simulated Kubernetes cluster, deploy ten Wasm
// containers with the WAMR-crun runtime class, and read memory from both
// vantage points the paper uses.
package main

import (
	"fmt"
	"log"

	"wasmcontainers/internal/k8s"
	"wasmcontainers/internal/simos"
)

func main() {
	// One worker node: 20 cores, 256 GB (the paper's testbed).
	cluster, err := k8s.NewCluster(k8s.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Deploy 10 pods (one Wasm container each) under the crun-wamr
	// RuntimeClass — the paper's contribution.
	pods, err := cluster.Deploy(k8s.DeployOptions{
		NamePrefix:       "quickstart",
		RuntimeClassName: "crun-wamr",
		Image:            "minimal-service:wasm",
		Replicas:         10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Drive the simulation to quiescence.
	cluster.Run()

	last, err := cluster.LastStartTime(pods)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("started %d wasm containers in %.2f simulated seconds\n",
		len(pods), float64(last)/1e9)

	// Vantage point 1: the Kubernetes metrics-server (pod cgroups).
	for _, m := range cluster.Metrics.AllPodMetrics(pods)[:3] {
		fmt.Printf("  metrics-server: pod %-14s %6.2f MiB\n", m.Name, mib(m.MemoryBytes))
	}
	fmt.Println("  ...")

	// Vantage point 2: the node's `free` view.
	free := cluster.Nodes[0].OS.Free()
	fmt.Printf("free: total %.0f GiB, used %.1f MiB (%.2f MiB beyond idle per container)\n",
		float64(free.TotalBytes)/float64(simos.GiB),
		mib(free.UsedBytes),
		mib(cluster.Nodes[0].OS.UsedBeyondIdle())/float64(len(pods)))

	// Each container really executed its module.
	fmt.Printf("first container stdout: %q\n", pods[0].Status.Containers[0].Stdout)
	fmt.Printf("handler: %s\n", pods[0].Status.Containers[0].Handler)
}

func mib(b int64) float64 { return float64(b) / float64(simos.MiB) }

// Standalone Wasm: use the engine + WASI layers directly (no containers,
// no Kubernetes) — the embedding API the WAMR-crun handler is built on.
// Runs the file-io workload against an in-memory preopened directory and
// then calls a pure function in the cpu-bound module.
package main

import (
	"fmt"
	"log"
	"os"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/wasi"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/workloads"
)

func main() {
	// 1. A WASI command module with a preopened directory.
	eng := engine.New(engine.WAMR)
	bin, err := workloads.Binary("file-io")
	if err != nil {
		log.Fatal(err)
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		log.Fatal(err)
	}
	data := vfs.New()
	if err := data.MkdirAll("/data"); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(cm, wasi.Config{
		Args:   []string{"file-io"},
		Stdout: os.Stdout,
		Preopens: []wasi.Preopen{
			{GuestPath: "/data", FS: data, HostPath: "/data"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	content, err := data.ReadFile("/data/state.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guest wrote %q to the preopened dir (exit %d, %d instructions)\n",
		content, res.ExitCode, res.Instructions)

	// 2. A library-style module: call an export directly.
	cpuBin, err := workloads.Binary("cpu-bound")
	if err != nil {
		log.Fatal(err)
	}
	cpuMod, err := eng.Compile(cpuBin)
	if err != nil {
		log.Fatal(err)
	}
	store := exec.NewStore(exec.Config{})
	inst, err := store.Instantiate(cpuMod.Module, "cpu")
	if err != nil {
		log.Fatal(err)
	}
	out, err := inst.Call("count_primes", exec.I32(10_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count_primes(10000) = %d (%d instructions executed)\n",
		exec.AsI32(out[0]), store.InstructionCount())

	// 3. The same module on every engine profile: identical semantics,
	// different simulated cost models (interpreter vs JIT speed).
	for _, prof := range engine.Profiles() {
		e := engine.New(prof)
		m, err := e.Compile(cpuBin)
		if err != nil {
			log.Fatal(err)
		}
		s := exec.NewStore(exec.Config{})
		in, err := s.Instantiate(m.Module, prof.Name)
		if err != nil {
			log.Fatal(err)
		}
		v, err := in.Call("count_primes", exec.I32(1000))
		if err != nil {
			log.Fatal(err)
		}
		simulated := float64(s.InstructionCount()) * prof.NsPerInstruction / 1e6
		fmt.Printf("engine %-9s (%-11s): count_primes(1000) = %d, simulated exec %.2f ms\n",
			prof.Name, prof.Mode, exec.AsI32(v[0]), simulated)
	}
}

// Command pylite runs Python-subset scripts on the pylite interpreter (the
// repository's CPython stand-in for the paper's Python container baseline).
//
// Usage:
//
//	pylite script.py [args...]
//	pylite -c 'print(1 + 2)'
package main

import (
	"flag"
	"fmt"
	"os"

	"wasmcontainers/internal/pylite"
)

func main() {
	var (
		command  = flag.String("c", "", "program passed as a string")
		maxSteps = flag.Uint64("max-steps", 0, "abort after this many bytecode steps (0 = unlimited)")
		stats    = flag.Bool("stats", false, "print execution statistics")
	)
	flag.Parse()

	var src string
	var argv []string
	switch {
	case *command != "":
		src = *command
		argv = append([]string{"-c"}, flag.Args()...)
	case flag.NArg() >= 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		src = string(b)
		argv = flag.Args()
	default:
		fmt.Fprintln(os.Stderr, "usage: pylite [-c program] [script.py] [args...]")
		os.Exit(2)
	}

	vm := pylite.NewVM(os.Stdout)
	vm.MaxSteps = *maxSteps
	vm.Argv = argv
	if _, err := vm.RunSource(src); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "steps=%d heap=%dB\n", vm.Steps, vm.HeapBytes)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pylite: "+format+"\n", args...)
	os.Exit(1)
}

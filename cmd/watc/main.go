// Command watc assembles WebAssembly text format into binary modules.
//
// Usage:
//
//	watc -o out.wasm in.wat
//	watc -validate in.wat
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wat"
)

func main() {
	var (
		out      = flag.String("o", "", "output file (default: input with .wasm extension)")
		validate = flag.Bool("validate", false, "validate only, write nothing")
		dump     = flag.Bool("dump", false, "print a module summary")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: watc [-o out.wasm] [-validate] [-dump] in.wat")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatalf("%v", err)
	}
	m, err := wat.Compile(string(src))
	if err != nil {
		fatalf("%v", err)
	}
	if *dump {
		fmt.Printf("types:     %d\n", len(m.Types))
		fmt.Printf("imports:   %d\n", len(m.Imports))
		fmt.Printf("functions: %d\n", len(m.Functions))
		fmt.Printf("memories:  %d\n", len(m.Memories))
		fmt.Printf("tables:    %d\n", len(m.Tables))
		fmt.Printf("globals:   %d\n", len(m.Globals))
		fmt.Printf("exports:   %d\n", len(m.Exports))
		fmt.Printf("data segs: %d\n", len(m.Data))
	}
	if *validate {
		fmt.Println("ok")
		return
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".wat") + ".wasm"
	}
	bin := wasm.Encode(m)
	if err := os.WriteFile(dst, bin, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", dst, len(bin))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "watc: "+format+"\n", args...)
	os.Exit(1)
}

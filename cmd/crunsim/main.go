// Command crunsim exercises the WAMR-crun integration directly, without
// Kubernetes: it creates and starts OCI containers on a simulated node and
// reports their memory from both vantage points. It doubles as a small
// demonstration of the paper's Section III-C integration.
//
// Usage:
//
//	crunsim -n 100                  # 100 crun+WAMR wasm containers
//	crunsim -engine wasmtime -n 100
//	crunsim -static -n 100          # static engine linking (ablation)
//	crunsim -workload file-io -n 1 -stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"wasmcontainers/internal/bench"
	"wasmcontainers/internal/core"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/simos"
)

func main() {
	var (
		n          = flag.Int("n", 10, "number of containers to start")
		engineName = flag.String("engine", "wamr", "embedded engine: wamr, wasmtime, wasmer, wasmedge")
		workload   = flag.String("workload", "minimal-service", "wasm workload to run")
		static     = flag.Bool("static", false, "statically link the engine (ablation)")
		showOut    = flag.Bool("stdout", false, "print each container's captured stdout")
	)
	flag.Parse()

	prof, ok := engine.ByName(*engineName)
	if !ok {
		fatalf("unknown engine %q", *engineName)
	}
	node := simos.NewNode(simos.DefaultNodeConfig())
	crun := core.New(core.Config{Node: node, Engine: prof, StaticEngineLinking: *static})

	for i := 0; i < *n; i++ {
		bundle, err := bench.WasmBundle(*workload)
		if err != nil {
			fatalf("%v", err)
		}
		id := fmt.Sprintf("ctr-%d", i)
		bundle.Spec.Linux.CgroupsPath = "/crunsim/" + id
		if err := crun.Create(id, bundle); err != nil {
			fatalf("create %s: %v", id, err)
		}
		report, err := crun.Start(id)
		if err != nil {
			fatalf("start %s: %v", id, err)
		}
		if *showOut {
			fmt.Printf("--- %s (handler=%s, exit=%d)\n%s", id, report.Handler, report.ExitCode, report.Stdout)
		}
	}

	cg, _ := node.Cgroup("/crunsim")
	free := node.Free()
	fmt.Printf("containers:             %d (engine %s, linking %s)\n", *n, prof.Name, linking(*static))
	fmt.Printf("cgroup memory.current:  %.2f MiB total, %.2f MiB/ctr\n",
		mib(cg.MemoryCurrent()), mib(cg.MemoryCurrent())/float64(*n))
	fmt.Printf("free used-beyond-idle:  %.2f MiB total, %.2f MiB/ctr\n",
		mib(node.UsedBeyondIdle()), mib(node.UsedBeyondIdle())/float64(*n))
	fmt.Printf("node: used %.1f MiB of %.1f GiB, %d processes\n",
		mib(free.UsedBytes), float64(free.TotalBytes)/float64(simos.GiB), node.NumProcesses())
	for _, lib := range node.SharedLibs() {
		fmt.Printf("shared library: %-28s %8.2f MiB (refs: resident once)\n", lib.Name, mib(lib.Bytes))
	}
	_ = os.Stdout
}

func linking(static bool) string {
	if static {
		return "static"
	}
	return "dynamic"
}

func mib(b int64) float64 { return float64(b) / float64(simos.MiB) }

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "crunsim: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"wasmcontainers/internal/faults"
	"wasmcontainers/internal/gateway"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/obs/slo"
)

// runSLOSmoke is the self-test behind `make slo-smoke`: boot at dilation 0
// with 1 ms sample windows and the default SLO pair, then walk the alert
// lifecycle end to end —
//
//  1. healthy traffic: the page alert must stay silent (zero transitions),
//  2. a 100% trap-rate fault burst: the availability page must fire, and be
//     visible over GET /v1/slo,
//  3. recovery: the short burn window goes clean and the alert must clear.
//
// The drain then re-checks the admission identity per function, so the smoke
// fails loudly if alert evaluation ever corrupted serving state.
func runSLOSmoke(drainTimeout time.Duration) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "slo-smoke: FAIL: "+format+"\n", args...)
		return 1
	}

	fc := gateway.DefaultFunction()
	fc.MaxRetries = 0 // a trap is a final error: it must burn budget, not retry away
	gw, err := gateway.New(gateway.Config{
		Functions:      []gateway.FunctionConfig{fc},
		Bridge:         gateway.BridgeConfig{Dilation: 0},
		SampleInterval: time.Millisecond,
		SLOObjectives:  gateway.DefaultSLOObjectives(0.99, 0.95, 50*time.Millisecond),
		// Requests cost a few ms of sim time each; base 100 ms keeps the page
		// rule's short window (base/12) wide enough to see sustained failure.
		SLOBaseWindow: 100 * time.Millisecond,
		TailSampling:  &obs.TailConfig{},
	})
	if err != nil {
		return fail("gateway: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("listen: %v", err)
	}
	gw.Start()
	srv := &http.Server{Handler: gw}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	invokeN := func(n, wantStatus int) error {
		for i := 0; i < n; i++ {
			resp, err := client.Post(base+"/v1/functions/"+fc.Module,
				"application/octet-stream", strings.NewReader("ping"))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != wantStatus {
				return fmt.Errorf("invoke %d: status %d, want %d", i, resp.StatusCode, wantStatus)
			}
		}
		return nil
	}
	pageTransitions := func() int64 {
		var n int64
		for _, o := range gw.SLO().Status().Objectives {
			for _, a := range o.Alerts {
				if a.Severity == slo.Page {
					n += a.Transitions
				}
			}
		}
		return n
	}

	// Phase 1: healthy baseline stays silent.
	if err := invokeN(40, http.StatusOK); err != nil {
		return fail("baseline: %v", err)
	}
	if gw.SLO().Firing("") || pageTransitions() != 0 {
		return fail("baseline traffic raised an alert: %+v", gw.SLO().Status())
	}
	resp, err := client.Get(base + "/v1/timeseries")
	if err != nil {
		return fail("/v1/timeseries: %v", err)
	}
	var tsr struct {
		Stats struct {
			Published int64 `json:"published"`
		} `json:"stats"`
	}
	err = json.NewDecoder(resp.Body).Decode(&tsr)
	resp.Body.Close()
	if err != nil || tsr.Stats.Published == 0 {
		return fail("/v1/timeseries published no windows (err=%v): %+v", err, tsr)
	}

	// Phase 2: fault burst must fire the availability page. The injector is
	// engine state, so arming it hops onto the bridge loop goroutine.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	fn, _ := gw.Function(fc.Module)
	if err := gw.Bridge().Do(ctx, func() {
		fn.Engine().SetFaultInjector(faults.New(faults.Config{Seed: 42, TrapRate: 1}))
	}); err != nil {
		return fail("arm faults: %v", err)
	}
	fired := false
	for i := 0; i < 20 && !fired; i++ {
		if err := invokeN(10, http.StatusInternalServerError); err != nil {
			return fail("fault burst: %v", err)
		}
		fired = gw.SLO().Firing(slo.Page)
	}
	if !fired {
		return fail("page alert never fired under 100%% errors: %+v", gw.SLO().Status())
	}
	resp, err = client.Get(base + "/v1/slo")
	if err != nil {
		return fail("/v1/slo: %v", err)
	}
	var st slo.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return fail("/v1/slo decode: %v", err)
	}
	visible := false
	for _, o := range st.Objectives {
		for _, a := range o.Alerts {
			if a.Severity == slo.Page && a.Firing {
				visible = true
			}
		}
	}
	if !visible {
		return fail("firing page not visible over /v1/slo: %+v", st)
	}

	// Phase 3: recovery clears the page once the short window goes clean.
	if err := gw.Bridge().Do(ctx, func() { fn.Engine().SetFaultInjector(nil) }); err != nil {
		return fail("disarm faults: %v", err)
	}
	cleared := false
	for i := 0; i < 30 && !cleared; i++ {
		if err := invokeN(10, http.StatusOK); err != nil {
			return fail("recovery: %v", err)
		}
		cleared = !gw.SLO().Firing(slo.Page)
	}
	if !cleared {
		return fail("page alert never cleared after recovery: %+v", gw.SLO().Status())
	}

	if err := gw.Shutdown(ctx); err != nil {
		return fail("drain: %v", err)
	}
	_ = srv.Shutdown(ctx)
	for _, fn := range gw.Functions() {
		if st := fn.Dispatcher().Stats(); !identityHolds(st) {
			return fail("%s identity violated: %+v", fn.Module(), st)
		}
	}
	fmt.Fprintln(os.Stderr, "slo-smoke: ok")
	return 0
}

// Command continuumd is the deployment framework's network front door: a
// net/http server exposing function invoke and a minimal Docker-API-shaped
// control surface over the simulated cluster, with live Prometheus metrics.
// The simulation keeps costing guest execution; real concurrent connections
// drive admission through the gateway's real-time DES bridge.
//
// Usage:
//
//	continuumd                              # serve on 127.0.0.1:8080, real time
//	continuumd -addr :9000 -dilation 0      # as-fast-as-possible virtual time
//	continuumd -modules request-handler,cpu-bound -pool 8
//	continuumd -lazy                        # create functions on first request
//	continuumd -smoke                       # self-test: invoke, scrape, SIGTERM, drain
//	continuumd -shard-smoke                 # self-test: 3 modules, per-module metrics, drain
//	continuumd -slo -slo-window 5m          # burn-rate alerting over 1s sample windows
//	continuumd -slo-smoke                   # self-test: silent -> fault burst fires page -> clears
//	continuumd -cluster-smoke               # self-test: kill the serving node, assert re-home + 200s
//	continuumd -log-format json             # structured access log (one JSON object per request)
//	continuumd -debug-addr 127.0.0.1:6060   # pprof + Go runtime gauges in /metrics
//
// Endpoints:
//
//	POST /v1/functions/{module}     invoke (body = payload; timing headers)
//	POST /v1/containers/create      Docker-shaped create (body = {"Image","Runtime"})
//	POST /v1/containers/{id}/start  drive the pod to Running
//	GET  /v1/containers/json        list (?all=1 includes non-running)
//	GET  /v1/containers/{id}/stats  cgroup memory via the metrics-server
//	GET  /v1/cluster                node/pool/dispatcher introspection (+ SLO state)
//	GET  /metrics                   live Prometheus exposition
//	GET  /v1/trace                  Chrome trace-event JSON of the span ring
//	GET  /v1/timeseries             retained metric windows (counters, gauges, histograms)
//	GET  /v1/slo                    burn-rate engine state: budgets and alerts
//	GET  /healthz                   liveness; 503 while draining
//
// SIGTERM/SIGINT starts a graceful drain: new work is refused with 503,
// in-flight requests flush, then the final dispatcher stats (and the
// admission identity check) are printed and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wasmcontainers/internal/gateway"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		dilation     = flag.Float64("dilation", 1.0, "wall seconds per simulated second (0 = as fast as possible)")
		modules      = flag.String("modules", "request-handler", "comma-separated workload modules to serve")
		profile      = flag.String("profile", "wamr", "engine profile for every function (wamr, wasmtime, wasmer, wasmedge)")
		poolSize     = flag.Int("pool", 4, "warm pool size per function (0 = cold-only)")
		conc         = flag.Int("concurrency", 4, "max in-flight requests per function")
		queueDepth   = flag.Int("queue-depth", 64, "dispatcher wait-queue depth")
		queueDl      = flag.Duration("queue-deadline", time.Second, "max simulated queue wait before expiry")
		retries      = flag.Int("retries", 0, "retry attempts for failed invokes")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request retry budget (0 = unbounded)")
		brkThresh    = flag.Int("breaker-threshold", 0, "consecutive failures opening the circuit breaker (0 = disabled)")
		brkCooldown  = flag.Duration("breaker-cooldown", 100*time.Millisecond, "breaker open -> half-open delay")
		submitBuf    = flag.Int("submit-buffer", 256, "bridge submission channel bound (backpressure)")
		nodes        = flag.Int("nodes", 1, "simulated cluster nodes")
		accessLog    = flag.Bool("access-log", true, "log one line per request to stderr")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
		finalMetrics = flag.String("final-metrics", "", "write the final Prometheus snapshot to this path on shutdown")
		smoke        = flag.Bool("smoke", false, "self-test: invoke, scrape /metrics, SIGTERM, assert clean drain")
		lazy         = flag.Bool("lazy", false, "create functions on first request for any resolvable module (router shards added live)")
		shardSmoke   = flag.Bool("shard-smoke", false, "self-test: invoke 3 distinct modules, assert per-module router metrics, SIGTERM, assert clean drain")
		logFormat    = flag.String("log-format", "text", "access log format: text or json")
		sampleInt    = flag.Duration("sample-interval", time.Second, "simulated window length for /v1/timeseries (0 = sampling off)")
		sampleCap    = flag.Int("sample-capacity", 0, "retained time-series windows (0 = default)")
		sloOn        = flag.Bool("slo", false, "enable the burn-rate SLO engine over the sampled series")
		sloTarget    = flag.Float64("slo-target", 0.999, "availability SLO target")
		sloLatTgt    = flag.Float64("slo-latency-target", 0.99, "latency SLO target")
		sloLatThresh = flag.Duration("slo-latency-threshold", 250*time.Millisecond, "simulated latency counted against the latency SLO")
		sloWindow    = flag.Duration("slo-window", time.Hour, "base alerting window (the page rule's long window, in simulated time)")
		tailSample   = flag.Bool("tail-sample", false, "tail-based trace sampling: keep span trees only for errors, breaker trips, and latency outliers")
		tailLatency  = flag.Duration("tail-latency", 0, "simulated latency above which a healthy trace is still kept (0 = errors/breaker only)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and sample Go runtime gauges on this address (empty = off)")
		sloSmoke     = flag.Bool("slo-smoke", false, "self-test: healthy traffic stays silent, a fault burst fires the page alert, recovery clears it")
		clusterSmoke = flag.Bool("cluster-smoke", false, "self-test: multi-node boot, kill the serving node mid-traffic, assert re-home + continued 200s + clean drain")
	)
	flag.Parse()

	cfg := gateway.Config{
		Bridge:          gateway.BridgeConfig{Dilation: *dilation, SubmitBuffer: *submitBuf},
		ClusterNodes:    *nodes,
		AccessLogFormat: *logFormat,
		SampleInterval:  *sampleInt,
		SampleCapacity:  *sampleCap,
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	if *sloOn {
		cfg.SLOObjectives = gateway.DefaultSLOObjectives(*sloTarget, *sloLatTgt, *sloLatThresh)
		cfg.SLOBaseWindow = *sloWindow
	}
	if *tailSample {
		cfg.TailSampling = &obs.TailConfig{LatencyThreshold: *tailLatency}
	}
	for _, m := range strings.Split(*modules, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		fc := gateway.DefaultFunction()
		fc.Module = m
		fc.Profile = *profile
		fc.PoolSize = *poolSize
		fc.MaxConcurrency = *conc
		fc.QueueDepth = *queueDepth
		fc.QueueDeadline = *queueDl
		fc.MaxRetries = *retries
		fc.RequestTimeout = *reqTimeout
		fc.BreakerThreshold = *brkThresh
		fc.BreakerCooldown = *brkCooldown
		cfg.Functions = append(cfg.Functions, fc)
	}

	if *lazy || *shardSmoke {
		// Unregistered modules spin up on demand with the same shape as the
		// flag-configured functions; the router picks up one shard each.
		tmpl := gateway.DefaultFunction()
		if len(cfg.Functions) > 0 {
			tmpl = cfg.Functions[0]
		}
		cfg.LazyTemplate = &tmpl
	}

	if *smoke {
		cfg.AccessLog = nil // keep smoke output parseable
		os.Exit(runSmoke(cfg, *drainTimeout))
	}
	if *shardSmoke {
		cfg.AccessLog = nil
		os.Exit(runShardSmoke(cfg, *drainTimeout))
	}
	if *sloSmoke {
		os.Exit(runSLOSmoke(*drainTimeout))
	}
	if *clusterSmoke {
		cfg.AccessLog = nil
		if cfg.ClusterNodes < 3 {
			cfg.ClusterNodes = 3
		}
		os.Exit(runClusterSmoke(cfg, *drainTimeout))
	}

	if *debugAddr != "" {
		// The collector needs the registry before the gateway builds one, so
		// construct the telemetry here and hand it in.
		tele := obs.New(obs.Config{})
		cfg.Telemetry = tele
		if err := startDebug(*debugAddr, tele.Metrics()); err != nil {
			fmt.Fprintf(os.Stderr, "continuumd: debug server: %v\n", err)
			os.Exit(1)
		}
	}

	code, err := serveUntilSignal(cfg, *addr, *drainTimeout, *finalMetrics, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	os.Exit(code)
}

// serveUntilSignal runs the gateway until SIGTERM/SIGINT, then drains
// gracefully and reports final stats. ready (if non-nil) receives the bound
// address once the listener is up — the smoke path uses it.
func serveUntilSignal(cfg gateway.Config, addr string, drainTimeout time.Duration, finalMetrics string, ready chan<- string) (int, error) {
	gw, err := gateway.New(cfg)
	if err != nil {
		return 1, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return 1, err
	}
	gw.Start()
	srv := &http.Server{Handler: gw}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "continuumd: listening on %s (dilation %g, %d function(s))\n",
		ln.Addr(), cfg.Bridge.Dilation, len(cfg.Functions))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "continuumd: %s, draining (budget %s)\n", sig, drainTimeout)
	case err := <-serveErr:
		return 1, fmt.Errorf("continuumd: serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := gw.Shutdown(ctx)
	_ = srv.Shutdown(ctx)

	code := 0
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "continuumd: drain incomplete: %v\n", drainErr)
		code = 1
	}
	for _, fn := range gw.Functions() {
		st := fn.Dispatcher().Stats()
		ok := identityHolds(st)
		fmt.Fprintf(os.Stderr,
			"continuumd: %s submitted=%d completed=%d rejected=%d expired=%d failed=%d identity=%v\n",
			fn.Module(), st.Submitted, st.Completed, st.Rejected, st.Expired, st.Failed, ok)
		if !ok {
			code = 1
		}
	}
	if finalMetrics != "" {
		f, err := os.Create(finalMetrics)
		if err != nil {
			return 1, err
		}
		if err := obs.WritePrometheus(f, gw.Telemetry().Snapshot()); err != nil {
			f.Close()
			return 1, err
		}
		if err := f.Close(); err != nil {
			return 1, err
		}
		fmt.Fprintf(os.Stderr, "continuumd: final metrics written to %s\n", finalMetrics)
	}
	return code, nil
}

// identityHolds checks the dispatcher's admission conservation identity.
func identityHolds(st serve.DispatcherStats) bool {
	return st.Submitted == st.Completed+st.Rejected+st.Expired+st.Failed
}

// runSmoke is the self-test behind `make gateway-smoke`: boot on a random
// port, invoke a function over loopback, scrape /metrics for a non-empty
// latency histogram, SIGTERM ourselves, and assert the drain completed with
// the admission identity intact (serveUntilSignal exits non-zero otherwise).
func runSmoke(cfg gateway.Config, drainTimeout time.Duration) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "gateway-smoke: FAIL: "+format+"\n", args...)
		return 1
	}
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		code, err := serveUntilSignal(cfg, "127.0.0.1:0", drainTimeout, "", ready)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		exit <- code
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		return fail("server did not come up")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	module := cfg.Functions[0].Module
	for i := 0; i < 5; i++ {
		resp, err := client.Post(base+"/v1/functions/"+module, "application/octet-stream",
			strings.NewReader("ping"))
		if err != nil {
			return fail("invoke: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fail("invoke status = %d", resp.StatusCode)
		}
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fail("scrape /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fail("read /metrics: %v", err)
	}
	if !histogramNonEmpty(string(body), "dispatch_latency_ns") {
		return fail("/metrics has no populated dispatch_latency_ns histogram")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fail("self-SIGTERM: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			return fail("drain exited %d", code)
		}
	case <-time.After(drainTimeout + 10*time.Second):
		return fail("drain did not complete")
	}
	fmt.Fprintln(os.Stderr, "gateway-smoke: ok")
	return 0
}

// runShardSmoke is the self-test behind `make shard-smoke`: boot with lazy
// creation on, invoke three distinct modules (two of them created on first
// request), assert the per-module labeled router metrics appeared for all
// three, SIGTERM ourselves, and assert the drain completed with every
// shard's admission identity intact.
func runShardSmoke(cfg gateway.Config, drainTimeout time.Duration) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "shard-smoke: FAIL: "+format+"\n", args...)
		return 1
	}
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		code, err := serveUntilSignal(cfg, "127.0.0.1:0", drainTimeout, "", ready)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		exit <- code
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		return fail("server did not come up")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	modules := []string{cfg.Functions[0].Module, "request-handler-v1", "request-handler-v2"}
	for _, m := range modules {
		for i := 0; i < 3; i++ {
			resp, err := client.Post(base+"/v1/functions/"+m, "application/octet-stream",
				strings.NewReader("ping"))
			if err != nil {
				return fail("invoke %s: %v", m, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fail("invoke %s status = %d", m, resp.StatusCode)
			}
		}
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fail("scrape /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fail("read /metrics: %v", err)
	}
	text := string(body)
	for _, m := range modules {
		sample := fmt.Sprintf("router_completed_total{module=%q}", m)
		if !samplePositive(text, sample) {
			return fail("/metrics missing a positive %s", sample)
		}
	}
	if !samplePositive(text, "router_batches_total") {
		return fail("/metrics missing a positive router_batches_total")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fail("self-SIGTERM: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			return fail("drain exited %d", code)
		}
	case <-time.After(drainTimeout + 10*time.Second):
		return fail("drain did not complete")
	}
	fmt.Fprintln(os.Stderr, "shard-smoke: ok")
	return 0
}

// runClusterSmoke is the self-test behind `make cluster-smoke`: boot a
// multi-node cluster, invoke over loopback, kill the node the function is
// placed on mid-traffic via POST /v1/cluster/nodes/{node}/fail, and assert
// the charge re-homed to a survivor while invokes keep returning 200 and
// /v1/cluster reports the node dead — then SIGTERM ourselves and assert the
// drain completed with the admission identity intact.
func runClusterSmoke(cfg gateway.Config, drainTimeout time.Duration) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "cluster-smoke: FAIL: "+format+"\n", args...)
		return 1
	}
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		code, err := serveUntilSignal(cfg, "127.0.0.1:0", drainTimeout, "", ready)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		exit <- code
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		return fail("server did not come up")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	module := cfg.Functions[0].Module
	invoke := func() error {
		resp, err := client.Post(base+"/v1/functions/"+module, "application/octet-stream",
			strings.NewReader("ping"))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	getCluster := func() (gateway.ClusterStatus, error) {
		var st gateway.ClusterStatus
		resp, err := client.Get(base + "/v1/cluster")
		if err != nil {
			return st, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return st, fmt.Errorf("status %d", resp.StatusCode)
		}
		return st, json.NewDecoder(resp.Body).Decode(&st)
	}

	for i := 0; i < 3; i++ {
		if err := invoke(); err != nil {
			return fail("invoke before failover: %v", err)
		}
	}
	st, err := getCluster()
	if err != nil {
		return fail("GET /v1/cluster: %v", err)
	}
	if len(st.Nodes) < 3 {
		return fail("cluster has %d nodes, want >= 3", len(st.Nodes))
	}
	var home string
	for _, f := range st.Functions {
		if f.Module == module {
			home = f.Node
		}
	}
	if home == "" {
		return fail("function %s has no placement in /v1/cluster", module)
	}

	resp, err := client.Post(base+"/v1/cluster/nodes/"+home+"/fail", "application/json", nil)
	if err != nil {
		return fail("fail node %s: %v", home, err)
	}
	var fr gateway.NodeFailResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&fr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail("fail node %s: status %d", home, resp.StatusCode)
	}
	if decodeErr != nil {
		return fail("fail node %s: decode: %v", home, decodeErr)
	}
	rehomed := false
	for _, m := range fr.Rehomed {
		rehomed = rehomed || m == module
	}
	if !rehomed {
		return fail("node %s failed but %s not in rehomed set %v", home, module, fr.Rehomed)
	}

	for i := 0; i < 3; i++ {
		if err := invoke(); err != nil {
			return fail("invoke after failover: %v", err)
		}
	}
	st, err = getCluster()
	if err != nil {
		return fail("GET /v1/cluster after failover: %v", err)
	}
	for _, n := range st.Nodes {
		if n.Name == home && n.Alive {
			return fail("node %s still reported alive after fail", home)
		}
	}
	for _, f := range st.Functions {
		if f.Module != module {
			continue
		}
		if f.Node == home || f.Node == "" {
			return fail("function %s still placed on %q after failover", module, f.Node)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fail("self-SIGTERM: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			return fail("drain exited %d", code)
		}
	case <-time.After(drainTimeout + 10*time.Second):
		return fail("drain did not complete")
	}
	fmt.Fprintln(os.Stderr, "cluster-smoke: ok")
	return 0
}

// samplePositive reports whether the exposition text has a sample named
// exactly `sample` (including any label set) with a positive value.
func samplePositive(text, sample string) bool {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == sample && fields[1] != "0" {
			return true
		}
	}
	return false
}

// histogramNonEmpty reports whether the exposition text contains a
// <name>_count sample with a positive value.
func histogramNonEmpty(text, name string) bool {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+"_count") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" {
			return true
		}
	}
	return false
}

package main

import (
	"strings"
	"testing"

	"wasmcontainers/internal/obs"
)

// TestRuntimeCollectorFillsGauges pins the collector to the gauge names the
// exposition help registry declares, and checks one sample produces sane
// values.
func TestRuntimeCollectorFillsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	c := newRuntimeCollector(reg)
	c.collect()
	snap := reg.Snapshot()
	got := map[string]int64{}
	for _, g := range snap.Gauges {
		got[g.Name] = g.Value
	}
	for _, name := range []string{
		"go_goroutines", "go_heap_alloc_bytes", "go_heap_sys_bytes",
		"go_gc_pause_total_ns", "go_gc_cycles_total",
	} {
		v, ok := got[name]
		if !ok {
			t.Fatalf("gauge %s missing: %+v", name, got)
		}
		if v < 0 {
			t.Fatalf("gauge %s = %d, want >= 0", name, v)
		}
	}
	if got["go_goroutines"] == 0 || got["go_heap_alloc_bytes"] == 0 {
		t.Fatalf("live runtime reported zeros: %+v", got)
	}
	// The debug gauges must render with help text in the exposition.
	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# HELP go_goroutines") {
		t.Fatalf("exposition lacks go_goroutines help:\n%s", sb.String())
	}
}

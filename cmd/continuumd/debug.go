package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"wasmcontainers/internal/obs"
)

// startDebug serves net/http/pprof on addr and starts the Go-runtime
// collector: goroutine count, heap sizes, and GC cost sampled into the
// gateway's registry once per wall second, so one /metrics scrape
// correlates simulated serving pressure with real host cost. The debug
// surface binds its own listener so production traffic never reaches the
// profiler.
func startDebug(addr string, reg *obs.Registry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// The gateway's /metrics carries the same registry; mirroring it here
	// keeps the debug listener usable when the main port is firewalled off.
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.WritePrometheus(w, reg.Snapshot())
	})
	go func() { _ = http.Serve(ln, mux) }()

	c := newRuntimeCollector(reg)
	c.collect()
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for range t.C {
			c.collect()
		}
	}()
	fmt.Fprintf(os.Stderr, "continuumd: debug server (pprof + runtime metrics) on %s\n", ln.Addr())
	return nil
}

// runtimeCollector fills the go_* gauges declared in the obs help registry.
type runtimeCollector struct {
	goroutines *obs.Gauge
	heapAlloc  *obs.Gauge
	heapSys    *obs.Gauge
	gcPause    *obs.Gauge
	gcCycles   *obs.Gauge
}

func newRuntimeCollector(reg *obs.Registry) *runtimeCollector {
	return &runtimeCollector{
		goroutines: reg.Gauge("go_goroutines"),
		heapAlloc:  reg.Gauge("go_heap_alloc_bytes"),
		heapSys:    reg.Gauge("go_heap_sys_bytes"),
		gcPause:    reg.Gauge("go_gc_pause_total_ns"),
		gcCycles:   reg.Gauge("go_gc_cycles_total"),
	}
}

// collect samples the runtime once. ReadMemStats stops the world briefly, so
// the 1 Hz cadence is deliberate — do not call this per request.
func (c *runtimeCollector) collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(int64(runtime.NumGoroutine()))
	c.heapAlloc.Set(int64(ms.HeapAlloc))
	c.heapSys.Set(int64(ms.HeapSys))
	c.gcPause.Set(int64(ms.PauseTotalNs))
	c.gcCycles.Set(int64(ms.NumGC))
}

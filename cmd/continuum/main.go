// Command continuum is the experiment driver (named after the paper's
// deployment framework): it regenerates the paper's tables and figures on
// the simulated Kubernetes cluster.
//
// Usage:
//
//	continuum -list
//	continuum -exp fig3
//	continuum -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wasmcontainers/internal/bench"
)

func main() {
	var (
		expID  = flag.String("exp", "", "experiment id (table1, table2, fig3..fig10, ablation-*, or 'all')")
		list   = flag.Bool("list", false, "list available experiments")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonF  = flag.Bool("json", false, "emit JSON instead of aligned text")
		outDir = flag.String("outdir", "", "also write each result to <outdir>/<id>.{txt,csv,json}")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Description)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	run := func(e bench.Experiment) {
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *csv:
			fmt.Print(table.CSV())
		case *jsonF:
			fmt.Print(table.JSON())
		default:
			fmt.Println(table.Format())
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			base := filepath.Join(*outDir, e.ID)
			for ext, render := range map[string]func() string{
				".txt": table.Format, ".csv": table.CSV, ".json": table.JSON,
			} {
				if err := os.WriteFile(base+ext, []byte(render()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}

	if *expID == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, ok := bench.ExperimentByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *expID)
		os.Exit(2)
	}
	run(e)
}

// Command continuum is the experiment driver (named after the paper's
// deployment framework): it regenerates the paper's tables and figures on
// the simulated Kubernetes cluster.
//
// Usage:
//
//	continuum -list
//	continuum -exp fig3
//	continuum -exp all
//	continuum -exp serve -telemetry -outdir results
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"wasmcontainers/internal/bench"
	"wasmcontainers/internal/obs"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment id (table1, table2, fig3..fig10, ablation-*, or 'all')")
		list      = flag.Bool("list", false, "list available experiments")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonF     = flag.Bool("json", false, "emit JSON instead of aligned text")
		outDir    = flag.String("outdir", "", "also write each result to <outdir>/<id>.{txt,csv,json}")
		telemetry = flag.Bool("telemetry", false, "collect metrics and request-lifecycle spans; with -outdir, write <outdir>/<id>.metrics.prom and <outdir>/<id>.trace.json")
		traceOut  = flag.String("trace-out", "", "write the Chrome trace of the last experiment to this path (implies -telemetry)")
	)
	flag.Parse()
	if *traceOut != "" {
		*telemetry = true
	}

	if *list || *expID == "" {
		os.Exit(listExitCode(*expID, *list, os.Stdout))
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	run := func(e bench.Experiment) {
		// Fresh telemetry per experiment so each <id>.metrics.prom and
		// <id>.trace.json describes exactly one experiment's runs.
		var tele *obs.Telemetry
		if *telemetry {
			tele = obs.New(obs.Config{})
			bench.SetTelemetry(tele)
		}
		table, err := e.Run()
		bench.SetTelemetry(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if tele != nil {
			snap := tele.Snapshot()
			table.Telemetry = &snap
		}
		switch {
		case *csv:
			fmt.Print(table.CSV())
		case *jsonF:
			fmt.Print(table.JSON())
		default:
			fmt.Println(table.Format())
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fail(err)
			}
			base := filepath.Join(*outDir, e.ID)
			for ext, render := range map[string]func() string{
				".txt": table.Format, ".csv": table.CSV, ".json": table.JSON,
			} {
				if err := os.WriteFile(base+ext, []byte(render()), 0o644); err != nil {
					fail(err)
				}
			}
			if tele != nil {
				if err := writeTelemetry(base, tele); err != nil {
					fail(err)
				}
			}
		}
		if *traceOut != "" && tele != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				fail(err)
			}
			if err := obs.WriteChromeTrace(f, tele.Tracer().Spans()); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
	}

	if *expID == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, ok := bench.ExperimentByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *expID)
		os.Exit(2)
	}
	run(e)
}

// listExitCode prints the experiment catalog to w and returns the process
// exit code for a no-work invocation: 0 for an explicit -list, 2 when the
// user simply omitted -exp — that is a usage error, and scripts must see it
// fail rather than mistake the catalog for results.
func listExitCode(expID string, list bool, w io.Writer) int {
	fmt.Fprintln(w, "available experiments:")
	for _, e := range bench.Experiments() {
		fmt.Fprintf(w, "  %-18s %s\n", e.ID, e.Description)
	}
	if expID == "" && !list {
		return 2
	}
	return 0
}

// writeTelemetry emits <base>.metrics.prom (Prometheus text exposition) and
// <base>.trace.json (Chrome trace-event JSON) for one experiment.
func writeTelemetry(base string, tele *obs.Telemetry) error {
	pf, err := os.Create(base + ".metrics.prom")
	if err != nil {
		return err
	}
	if err := obs.WritePrometheus(pf, tele.Snapshot()); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	tf, err := os.Create(base + ".trace.json")
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(tf, tele.Tracer().Spans()); err != nil {
		tf.Close()
		return err
	}
	return tf.Close()
}

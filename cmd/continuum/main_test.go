package main

import (
	"strings"
	"testing"

	"wasmcontainers/internal/bench"
)

// TestListExitCode: omitting -exp is a usage error (exit 2) even though the
// catalog prints; an explicit -list is a successful invocation (exit 0).
func TestListExitCode(t *testing.T) {
	cases := []struct {
		name  string
		expID string
		list  bool
		code  int
	}{
		{"no exp, no list: usage error", "", false, 2},
		{"explicit -list", "", true, 0},
		{"-list with -exp still lists", "fig3", true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			if got := listExitCode(tc.expID, tc.list, &out); got != tc.code {
				t.Errorf("exit code = %d, want %d", got, tc.code)
			}
			text := out.String()
			if !strings.HasPrefix(text, "available experiments:") {
				t.Errorf("output missing header: %q", text)
			}
			for _, e := range bench.Experiments() {
				if !strings.Contains(text, e.ID) {
					t.Errorf("catalog missing experiment %q", e.ID)
				}
			}
		})
	}
}

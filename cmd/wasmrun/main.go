// Command wasmrun is a standalone WebAssembly runner (in the spirit of
// WAMR's iwasm): it executes a .wasm command module with WASI on real stdio,
// or invokes an exported function with integer arguments.
//
// Usage:
//
//	wasmrun module.wasm [args...]
//	wasmrun -invoke add module.wasm 2 40
//	wasmrun -engine wasmtime -dir /tmp module.wasm
//	wasmrun -workload minimal-service
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/wasi"
	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/workloads"
)

func main() {
	var (
		engineName = flag.String("engine", "wamr", "engine profile: wamr, wasmtime, wasmer, wasmedge")
		invoke     = flag.String("invoke", "", "invoke an exported function instead of _start")
		dir        = flag.String("dir", "", "preopen an (in-memory) directory at this guest path")
		workload   = flag.String("workload", "", "run a built-in workload instead of a file")
		env        = flag.String("env", "", "comma-separated KEY=VALUE environment entries")
		stats      = flag.Bool("stats", false, "print execution statistics")
	)
	flag.Parse()

	prof, ok := engine.ByName(*engineName)
	if !ok {
		fatalf("unknown engine %q (want wamr, wasmtime, wasmer, or wasmedge)", *engineName)
	}
	eng := engine.New(prof)

	var bin []byte
	var args []string
	var err error
	switch {
	case *workload != "":
		bin, err = workloads.Binary(*workload)
		if err != nil {
			fatalf("%v (available: %s)", err, strings.Join(workloads.Names(), ", "))
		}
		args = append([]string{*workload}, flag.Args()...)
	case flag.NArg() >= 1:
		bin, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		args = flag.Args()
	default:
		flag.Usage()
		os.Exit(2)
	}

	cm, err := eng.Compile(bin)
	if err != nil {
		fatalf("compile: %v", err)
	}

	if *invoke != "" {
		runInvoke(cm, *invoke, args[1:])
		return
	}

	cfg := wasi.Config{
		Args:   args,
		Stdin:  os.Stdin,
		Stdout: os.Stdout,
		Stderr: os.Stderr,
	}
	if *env != "" {
		cfg.Env = strings.Split(*env, ",")
	}
	if *dir != "" {
		fsys := vfs.New()
		if err := fsys.MkdirAll(*dir); err != nil {
			fatalf("%v", err)
		}
		cfg.Preopens = []wasi.Preopen{{GuestPath: *dir, FS: fsys, HostPath: *dir}}
	}
	res, err := eng.Run(cm, cfg)
	if err != nil {
		fatalf("run: %v", err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "engine=%s mode=%s instructions=%d memory=%dKiB simulated-exec=%v\n",
			prof.Name, prof.Mode, res.Instructions, res.GuestMemoryBytes/1024, res.SimulatedExecTime)
	}
	os.Exit(int(res.ExitCode))
}

// runInvoke calls an exported function with i32/i64 arguments inferred from
// its signature.
func runInvoke(cm *engine.CompiledModule, fn string, rawArgs []string) {
	store := exec.NewStore(exec.Config{})
	w := wasi.New(wasi.Config{Stdout: os.Stdout, Stderr: os.Stderr})
	w.Register(store)
	inst, err := store.Instantiate(cm.Module, "main")
	if err != nil {
		fatalf("instantiate: %v", err)
	}
	ft, ok := inst.FuncType(fn)
	if !ok {
		fatalf("no exported function %q", fn)
	}
	if len(rawArgs) != len(ft.Params) {
		fatalf("%s%s expects %d arguments, got %d", fn, ft, len(ft.Params), len(rawArgs))
	}
	vals := make([]exec.Value, len(rawArgs))
	for i, a := range rawArgs {
		switch ft.Params[i] {
		case wasm.ValueTypeI32:
			v, err := strconv.ParseInt(a, 0, 32)
			if err != nil {
				fatalf("argument %d: %v", i, err)
			}
			vals[i] = exec.I32(int32(v))
		case wasm.ValueTypeI64:
			v, err := strconv.ParseInt(a, 0, 64)
			if err != nil {
				fatalf("argument %d: %v", i, err)
			}
			vals[i] = exec.I64(v)
		case wasm.ValueTypeF64:
			v, err := strconv.ParseFloat(a, 64)
			if err != nil {
				fatalf("argument %d: %v", i, err)
			}
			vals[i] = exec.F64(v)
		case wasm.ValueTypeF32:
			v, err := strconv.ParseFloat(a, 32)
			if err != nil {
				fatalf("argument %d: %v", i, err)
			}
			vals[i] = exec.F32(float32(v))
		}
	}
	res, err := inst.Call(fn, vals...)
	if err != nil {
		fatalf("%v", err)
	}
	for i, r := range res {
		switch ft.Results[i] {
		case wasm.ValueTypeI32:
			fmt.Println(exec.AsI32(r))
		case wasm.ValueTypeI64:
			fmt.Println(exec.AsI64(r))
		case wasm.ValueTypeF32:
			fmt.Println(exec.AsF32(r))
		case wasm.ValueTypeF64:
			fmt.Println(exec.AsF64(r))
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "wasmrun: "+format+"\n", args...)
	os.Exit(1)
}

package k8s

import (
	"sort"

	"wasmcontainers/internal/simos"
)

// PodMetrics is one pod's resource usage as the metrics-server reports it.
type PodMetrics struct {
	Namespace string
	Name      string
	// MemoryBytes is the pod cgroup's memory.current (workload view).
	MemoryBytes int64
}

// MetricsServer mirrors the Kubernetes metrics-server: it reads pod memory
// from each node's cgroup hierarchy. This is the "measured by Kubernetes"
// vantage point of Figures 3 and 6; the `free` vantage point comes from
// simos.Node.Free / UsedBeyondIdle.
type MetricsServer struct {
	nodes []*WorkerNode
}

// NewMetricsServer attaches to the cluster's nodes.
func NewMetricsServer(nodes []*WorkerNode) *MetricsServer {
	return &MetricsServer{nodes: nodes}
}

// PodMetrics scrapes one pod, resolving the cgroup through the pod's bound
// node. Scanning every node would return the first hierarchy whose path
// matches — and the same /kubepods/pod-<uid> path can exist on more than one
// node (a stale hierarchy left by a failed placement, say), silently
// attributing another node's charge to this pod. Unbound pods report false.
func (m *MetricsServer) PodMetrics(p *Pod) (PodMetrics, bool) {
	n := m.nodeByName(p.Spec.NodeName)
	if n == nil {
		return PodMetrics{}, false
	}
	cg, ok := n.OS.Cgroup(p.CgroupParent())
	if !ok {
		return PodMetrics{}, false
	}
	return PodMetrics{
		Namespace:   p.Namespace,
		Name:        p.Name,
		MemoryBytes: cg.MemoryCurrent(),
	}, true
}

func (m *MetricsServer) nodeByName(name string) *WorkerNode {
	for _, n := range m.nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// AllPodMetrics scrapes every pod in the list, sorted by name.
func (m *MetricsServer) AllPodMetrics(pods []*Pod) []PodMetrics {
	out := make([]PodMetrics, 0, len(pods))
	for _, p := range pods {
		if pm, ok := m.PodMetrics(p); ok {
			out = append(out, pm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalWorkloadBytes sums memory.current over /kubepods on all nodes.
func (m *MetricsServer) TotalWorkloadBytes() int64 {
	var total int64
	for _, n := range m.nodes {
		if cg, ok := n.OS.Cgroup("/kubepods"); ok {
			total += cg.MemoryCurrent()
		}
	}
	return total
}

// NodeFree returns each node's simulated `free` output.
func (m *MetricsServer) NodeFree() []simos.MemInfo {
	out := make([]simos.MemInfo, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, n.OS.Free())
	}
	return out
}

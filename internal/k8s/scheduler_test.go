package k8s

import (
	"strings"
	"testing"
	"time"

	"wasmcontainers/internal/simos"
)

// Regression for the bind-time placement bug: the scheduler used to pick a
// node round-robin at admission semantics (blind cursor) and bind to it
// BindLatency later without re-checking node state, so a pod whose pick died
// in the window flipped straight to Failed. The fix re-evaluates candidates
// at bind time, so every pod here must land on the surviving node.
func TestBindTimeReEvaluationOnNodeDeath(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.NumNodes = 2
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node dies inside the bind window (1ms < BindLatency of 10ms).
	c.Engine.After(time.Millisecond, func() {
		if err := c.FailNode("worker-1"); err != nil {
			t.Errorf("FailNode: %v", err)
		}
	})
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	for _, p := range pods {
		if p.Status.Phase != PodRunning {
			t.Fatalf("pod %s: %s (%s) — bound to a dead node?", p.Name, p.Status.Phase, p.Status.Message)
		}
		if p.Spec.NodeName != "worker-0" {
			t.Fatalf("pod %s bound to %s, want worker-0", p.Name, p.Spec.NodeName)
		}
	}
}

// When no node is viable at bind time (survivors full), pods fail with a
// descriptive scheduler reason instead of binding blindly.
func TestBindTimeCapacityReEvaluation(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.NumNodes = 2
	cfg.KubeletConfig.MaxPods = 5
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wave1, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	for _, p := range wave1 {
		if p.Status.Phase != PodRunning {
			t.Fatalf("wave1 pod %s: %s (%s)", p.Name, p.Status.Phase, p.Status.Message)
		}
	}
	if err := c.FailNode("worker-1"); err != nil {
		t.Fatal(err)
	}
	// Survivor worker-0 holds 2 pods, capacity 5: exactly 3 of the 7 fit.
	wave2, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	running, failed := 0, 0
	for _, p := range wave2 {
		switch p.Status.Phase {
		case PodRunning:
			running++
			if p.Spec.NodeName != "worker-0" {
				t.Fatalf("pod %s running on %s, want worker-0", p.Name, p.Spec.NodeName)
			}
		case PodFailed:
			failed++
			if !strings.Contains(p.Status.Message, "no viable node") {
				t.Fatalf("pod %s failed with %q, want scheduler no-viable-node reason", p.Name, p.Status.Message)
			}
		default:
			t.Fatalf("pod %s stuck in %s", p.Name, p.Status.Phase)
		}
	}
	if running != 3 || failed != 4 {
		t.Fatalf("wave2 running=%d failed=%d, want 3/5 after capacity re-check", running, failed)
	}
}

// Artifact-hinted pods land on the node already holding their shared images
// (cache locality), not the round-robin pick.
func TestSchedulerArtifactLocality(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.NumNodes = 3
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// worker-2 already holds the module's code image (e.g. a warm pool).
	holder, err := c.Nodes[2].OS.Spawn("warm-holder", "/kubepods/warm-holder")
	if err != nil {
		t.Fatal(err)
	}
	holder.MapShared("wasm-code:cafe0123", 8*simos.MiB)
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 4,
		ArtifactHints: []string{"wasm-code:cafe0123"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	for _, p := range pods {
		if p.Status.Phase != PodRunning {
			t.Fatalf("pod %s: %s (%s)", p.Name, p.Status.Phase, p.Status.Message)
		}
		if p.Spec.NodeName != "worker-2" {
			t.Fatalf("hinted pod %s bound to %s, want artifact holder worker-2", p.Name, p.Spec.NodeName)
		}
	}
}

// Regression for the metrics-server attribution bug: PodMetrics used to scan
// every node and return the first cgroup whose path matched, so with several
// nodes a stale hierarchy on an earlier node shadowed the pod's real charge.
// The fix resolves through the pod's bound Spec.NodeName.
func TestMetricsServerNodeCollision(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.NumNodes = 2
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	// Round-robin put pod 2 on worker-1. Plant a ghost hierarchy with the
	// same cgroup path on worker-0 (node scanned first), charged far beyond
	// anything the real pod uses.
	victim := pods[1]
	if victim.Spec.NodeName != "worker-1" {
		t.Fatalf("setup: pod on %s, want worker-1", victim.Spec.NodeName)
	}
	const ghostBytes = 512 * simos.MiB
	ghost, err := c.Nodes[0].OS.Spawn("ghost", victim.CgroupParent())
	if err != nil {
		t.Fatal(err)
	}
	if err := ghost.MapPrivate(ghostBytes); err != nil {
		t.Fatal(err)
	}
	pm, ok := c.Metrics.PodMetrics(victim)
	if !ok {
		t.Fatal("pod not scraped")
	}
	if pm.MemoryBytes >= ghostBytes {
		t.Fatalf("metrics-server attributed the ghost node's cgroup: %d bytes", pm.MemoryBytes)
	}
	cg, ok := c.Nodes[1].OS.Cgroup(victim.CgroupParent())
	if !ok {
		t.Fatal("real cgroup missing on worker-1")
	}
	if pm.MemoryBytes != cg.MemoryCurrent() {
		t.Fatalf("scraped %d bytes, want worker-1's %d", pm.MemoryBytes, cg.MemoryCurrent())
	}
	// An unbound pod (never scheduled) reports absent rather than a guess.
	if _, ok := c.Metrics.PodMetrics(&Pod{UID: "uid-999999"}); ok {
		t.Fatal("unbound pod scraped")
	}
}

// Churn: two waves of pods race onto three nodes while one node dies between
// the waves' bind windows. Conservation must hold — every pod either runs on
// a live node or fails with a reason — and the whole run is deterministic.
func TestSchedulerChurnWithMidBindNodeDeath(t *testing.T) {
	run := func() (running, failed int, end int64) {
		cfg := DefaultClusterConfig()
		cfg.NumNodes = 3
		cfg.KubeletConfig.MaxPods = 25
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		all, err := c.Deploy(DeployOptions{
			RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Engine.After(7*time.Millisecond, func() {
			wave2, err := c.Deploy(DeployOptions{
				RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 40,
			})
			if err != nil {
				t.Errorf("wave2 deploy: %v", err)
				return
			}
			all = append(all, wave2...)
		})
		// Death at 12ms: wave 1 (bound at 10ms) loses its worker-1 pods
		// mid-sync; wave 2 (binding at 17ms) must avoid the dead node.
		c.Engine.After(12*time.Millisecond, func() {
			if err := c.FailNode("worker-1"); err != nil {
				t.Errorf("FailNode: %v", err)
			}
		})
		endT := c.Run()
		for _, p := range all {
			switch p.Status.Phase {
			case PodRunning:
				running++
				node := c.Node(p.Spec.NodeName)
				if node == nil || !node.Alive() {
					t.Fatalf("pod %s running on dead/unknown node %q", p.Name, p.Spec.NodeName)
				}
			case PodFailed:
				failed++
				if p.Status.Message == "" {
					t.Fatalf("pod %s failed without a reason", p.Name)
				}
			default:
				t.Fatalf("pod %s stuck in phase %s — conservation violated", p.Name, p.Status.Phase)
			}
		}
		if running+failed != len(all) {
			t.Fatalf("conservation: %d running + %d failed != %d pods", running, failed, len(all))
		}
		return running, failed, int64(endT)
	}
	r1, f1, e1 := run()
	r2, f2, e2 := run()
	if r1 != r2 || f1 != f2 || e1 != e2 {
		t.Fatalf("non-deterministic churn: (%d,%d,%d) vs (%d,%d,%d)", r1, f1, e1, r2, f2, e2)
	}
	if f1 == 0 {
		t.Fatal("churn scenario produced no failures — node death not exercised")
	}
	if r1 == 0 {
		t.Fatal("churn scenario produced no running pods")
	}
}

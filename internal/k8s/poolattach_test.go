package k8s

import (
	"testing"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/simos"
	"wasmcontainers/internal/workloads"
)

func TestWarmPoolMemoryIsKubeletVisible(t *testing.T) {
	c := newTestCluster(t)
	node := c.Nodes[0]
	before := c.Metrics.TotalWorkloadBytes()
	if before != 0 {
		t.Fatalf("workload bytes before attach = %d", before)
	}

	att, err := node.AttachWarmPool("gw")
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Wasmtime)
	bin, err := workloads.Binary("request-handler")
	if err != nil {
		t.Fatal(err)
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := serve.NewPool(eng, cm, serve.Config{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool.SetMemoryListener(att.Sync)

	want := simos.RoundPages(pool.MemoryBytes())
	if got := c.Metrics.TotalWorkloadBytes(); got != want {
		t.Fatalf("metrics-server sees %d pool bytes, want %d", got, want)
	}
	// The free vantage sees it too: pool memory is real node memory.
	if used := node.OS.UsedBeyondIdle(); used < want {
		t.Fatalf("free vantage sees %d, pool holds %d", used, want)
	}

	// A cold-started extra instance shows up while leased...
	wi, err := pool.ColdStart()
	if err != nil {
		t.Fatal(err)
	}
	grownWant := simos.RoundPages(pool.MemoryBytes())
	if grownWant <= want {
		t.Fatalf("pool memory did not grow on cold start")
	}
	if got := c.Metrics.TotalWorkloadBytes(); got != grownWant {
		t.Fatalf("metrics-server sees %d after cold start, want %d", got, grownWant)
	}
	// ...and is released again when the full pool discards it.
	pool.Release(wi, 0)
	if got := c.Metrics.TotalWorkloadBytes(); got != want {
		t.Fatalf("metrics-server sees %d after discard, want %d", got, want)
	}

	// Detach returns the node to its pre-pool state.
	pool.SetMemoryListener(nil)
	att.Detach()
	if got := c.Metrics.TotalWorkloadBytes(); got != 0 {
		t.Fatalf("workload bytes after detach = %d", got)
	}
}

func TestWarmPoolAttachmentPageRounding(t *testing.T) {
	c := newTestCluster(t)
	att, err := c.Nodes[0].AttachWarmPool("rounding")
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	att.Sync(1) // one byte still occupies one page
	if got := att.ChargedBytes(); got != simos.RoundPages(1) {
		t.Fatalf("charged %d, want one page", got)
	}
	att.Sync(0)
	if got := att.ChargedBytes(); got != 0 {
		t.Fatalf("charged %d after sync to zero", got)
	}
}

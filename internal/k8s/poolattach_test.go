package k8s

import (
	"strings"
	"testing"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/simos"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/workloads"
)

func TestWarmPoolMemoryIsKubeletVisible(t *testing.T) {
	c := newTestCluster(t)
	node := c.Nodes[0]
	before := c.Metrics.TotalWorkloadBytes()
	if before != 0 {
		t.Fatalf("workload bytes before attach = %d", before)
	}

	att, err := node.AttachWarmPool("gw")
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Wasmtime)
	bin, err := workloads.Binary("request-handler")
	if err != nil {
		t.Fatal(err)
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := serve.NewPool(eng, cm, serve.Config{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool.SetMemoryListener(att.Sync)

	want := simos.RoundPages(pool.MemoryBytes())
	if got := c.Metrics.TotalWorkloadBytes(); got != want {
		t.Fatalf("metrics-server sees %d pool bytes, want %d", got, want)
	}
	// The free vantage sees it too: pool memory is real node memory.
	if used := node.OS.UsedBeyondIdle(); used < want {
		t.Fatalf("free vantage sees %d, pool holds %d", used, want)
	}

	// A cold-started extra instance shows up while leased...
	wi, err := pool.ColdStart()
	if err != nil {
		t.Fatal(err)
	}
	grownWant := simos.RoundPages(pool.MemoryBytes())
	if grownWant <= want {
		t.Fatalf("pool memory did not grow on cold start")
	}
	if got := c.Metrics.TotalWorkloadBytes(); got != grownWant {
		t.Fatalf("metrics-server sees %d after cold start, want %d", got, grownWant)
	}
	// ...and is released again when the full pool discards it.
	pool.Release(wi, 0)
	if got := c.Metrics.TotalWorkloadBytes(); got != want {
		t.Fatalf("metrics-server sees %d after discard, want %d", got, want)
	}

	// Detach returns the node to its pre-pool state.
	pool.SetMemoryListener(nil)
	att.Detach()
	if got := c.Metrics.TotalWorkloadBytes(); got != 0 {
		t.Fatalf("workload bytes after detach = %d", got)
	}
}

// TestWarmPoolSharedArtifactsCountedOncePerNode: two pools serving the same
// module map its compiled code and baseline memory image via SyncShared, and
// the node charges each digest-keyed artifact once — only the per-instance
// private remainder scales with the number of pools.
func TestWarmPoolSharedArtifactsCountedOncePerNode(t *testing.T) {
	c := newTestCluster(t)
	node := c.Nodes[0]
	eng := engine.New(engine.Wasmtime)
	bin, err := workloads.Binary("request-handler")
	if err != nil {
		t.Fatal(err)
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		t.Fatal(err)
	}

	newAttachedPool := func(name string) (*serve.Pool, *WarmPoolAttachment) {
		att, err := node.AttachWarmPool(name)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := serve.NewPool(eng, cm, serve.Config{Size: 2})
		if err != nil {
			t.Fatal(err)
		}
		var shared int64
		for _, art := range pool.SharedArtifacts() {
			att.SyncShared(art.Name, art.Bytes)
			shared += art.Bytes
		}
		att.Sync(pool.MemoryBytes() - shared)
		return pool, att
	}

	pool1, att1 := newAttachedPool("gw1")
	arts := pool1.SharedArtifacts()
	if len(arts) != 2 {
		t.Fatalf("shared artifacts = %d, want code + baseline", len(arts))
	}
	var sharedBytes int64
	for _, a := range arts {
		if a.Bytes <= 0 {
			t.Fatalf("artifact %s has %d bytes", a.Name, a.Bytes)
		}
		sharedBytes += simos.RoundPages(a.Bytes)
	}
	used1 := node.OS.UsedBeyondIdle()
	if used1 < sharedBytes+att1.ChargedBytes() {
		t.Fatalf("free vantage %d misses artifacts (%d shared + %d private)",
			used1, sharedBytes, att1.ChargedBytes())
	}

	// A second pool of the same module adds only its private instance bytes:
	// the wasm-code and wasm-data mappings dedupe on their digest-keyed names.
	_, att2 := newAttachedPool("gw2")
	used2 := node.OS.UsedBeyondIdle()
	if delta := used2 - used1; delta != att2.ChargedBytes() {
		t.Fatalf("second pool cost %d, want private-only %d (shared artifacts recharged?)",
			delta, att2.ChargedBytes())
	}
	if att2.ChargedBytes() >= att1.ChargedBytes()+sharedBytes {
		t.Fatal("second pool's private charge swallowed the shared artifacts")
	}
}

// TestTier1ArtifactSharedOncePerNode: a module lowered to tier-1 code (eager
// policy, as after hotness tier-up) exposes a third digest-keyed artifact,
// wasm-t1:<digest>, and two pools of the module map it via SyncShared like
// compiled code and the baseline image — charged once per node.
func TestTier1ArtifactSharedOncePerNode(t *testing.T) {
	c := newTestCluster(t)
	node := c.Nodes[0]
	eng := engine.New(engine.Wasmtime)
	eng.SetTierPolicy(exec.TierPolicy{Mode: exec.TierModeEager})
	bin, err := workloads.Binary("request-handler")
	if err != nil {
		t.Fatal(err)
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Tier1Bytes() <= 0 {
		t.Fatal("eager policy did not publish a tier-1 artifact")
	}

	attach := func(name string) *WarmPoolAttachment {
		att, err := node.AttachWarmPool(name)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := serve.NewPool(eng, cm, serve.Config{Size: 2})
		if err != nil {
			t.Fatal(err)
		}
		arts := pool.SharedArtifacts()
		if len(arts) != 3 {
			t.Fatalf("shared artifacts = %v, want code + baseline + tier-1", arts)
		}
		sawT1 := false
		var shared int64
		for _, art := range arts {
			if strings.HasPrefix(art.Name, "wasm-t1:") {
				sawT1 = true
				if art.Bytes != cm.Tier1Bytes() {
					t.Fatalf("tier-1 artifact %d bytes, want %d", art.Bytes, cm.Tier1Bytes())
				}
			}
			att.SyncShared(art.Name, art.Bytes)
			shared += art.Bytes
		}
		if !sawT1 {
			t.Fatalf("no wasm-t1 artifact in %v", arts)
		}
		att.Sync(pool.MemoryBytes() - shared)
		return att
	}

	att1 := attach("gw1")
	used1 := node.OS.UsedBeyondIdle()
	// Second pool of the same module: the tier-1 mapping (like code and
	// baseline) dedupes on its digest-keyed name; only private bytes add up.
	att2 := attach("gw2")
	if delta := node.OS.UsedBeyondIdle() - used1; delta != att2.ChargedBytes() {
		t.Fatalf("second pool cost %d, want private-only %d (tier-1 recharged?)",
			delta, att2.ChargedBytes())
	}
	_ = att1
}

// TestMemoryPressureDrainsWarmPools: a node-level memory-pressure episode
// reclaims every attached pool's idle instances through the registered
// drainers, and the freed bytes leave the cluster's memory accounting in the
// same step — warm capacity is given back before any pod would have to fail.
func TestMemoryPressureDrainsWarmPools(t *testing.T) {
	c := newTestCluster(t)
	node := c.Nodes[0]
	att, err := node.AttachWarmPool("gw")
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Wasmtime)
	bin, err := workloads.Binary("request-handler")
	if err != nil {
		t.Fatal(err)
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := serve.NewPool(eng, cm, serve.Config{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool.SetMemoryListener(att.Sync)
	att.SetDrainer(func() int { return pool.DrainIdle(0) })

	full := c.Metrics.TotalWorkloadBytes()
	if full == 0 || pool.Idle() != 4 {
		t.Fatalf("pool not charged before pressure: bytes=%d idle=%d", full, pool.Idle())
	}
	if n := node.MemoryPressure(); n != 4 {
		t.Fatalf("pressure evicted %d instances, want 4", n)
	}
	if pool.Idle() != 0 {
		t.Fatalf("idle = %d after pressure drain", pool.Idle())
	}
	drained := c.Metrics.TotalWorkloadBytes()
	if drained >= full {
		t.Fatalf("cluster accounting unchanged by drain: %d -> %d", full, drained)
	}
	// A second episode finds nothing left to reclaim.
	if n := node.MemoryPressure(); n != 0 {
		t.Fatalf("second pressure episode evicted %d", n)
	}
	// Detached pools no longer answer pressure.
	att.SetDrainer(func() int { t.Error("detached pool drained"); return 0 })
	pool.SetMemoryListener(nil)
	att.Detach()
	node.MemoryPressure()
}

func TestWarmPoolAttachmentPageRounding(t *testing.T) {
	c := newTestCluster(t)
	att, err := c.Nodes[0].AttachWarmPool("rounding")
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	att.Sync(1) // one byte still occupies one page
	if got := att.ChargedBytes(); got != simos.RoundPages(1) {
		t.Fatalf("charged %d, want one page", got)
	}
	att.Sync(0)
	if got := att.ChargedBytes(); got != 0 {
		t.Fatalf("charged %d after sync to zero", got)
	}
}

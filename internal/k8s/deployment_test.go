package k8s

import "testing"

func TestDeploymentRollout(t *testing.T) {
	c := newTestCluster(t)
	d, err := c.CreateDeployment("svc", DeploymentSpec{
		Replicas:         8,
		RuntimeClassName: "crun-wamr",
		Image:            "minimal-service:wasm",
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if !d.RolloutComplete() {
		t.Fatalf("rollout incomplete: %d/%d ready", d.ReadyReplicas(), d.Spec.Replicas)
	}
	if d.LastTransition() <= 0 {
		t.Fatal("no transition time")
	}
}

func TestDeploymentScaleUp(t *testing.T) {
	c := newTestCluster(t)
	d, err := c.CreateDeployment("svc", DeploymentSpec{
		Replicas: 3, RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm",
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	memBefore := c.Nodes[0].OS.UsedBeyondIdle()
	if err := d.Scale(12); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if d.ReadyReplicas() != 12 {
		t.Fatalf("ready = %d, want 12", d.ReadyReplicas())
	}
	// Memory grows roughly linearly with the new pods.
	memAfter := c.Nodes[0].OS.UsedBeyondIdle()
	if memAfter <= memBefore {
		t.Fatal("scale-up did not grow memory")
	}
}

func TestDeploymentScaleDown(t *testing.T) {
	c := newTestCluster(t)
	d, err := c.CreateDeployment("svc", DeploymentSpec{
		Replicas: 10, RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm",
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	memAt10 := c.Metrics.TotalWorkloadBytes()
	if err := d.Scale(4); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if d.ReadyReplicas() != 4 || len(d.OwnedPods) != 4 {
		t.Fatalf("after scale-down: ready=%d owned=%d", d.ReadyReplicas(), len(d.OwnedPods))
	}
	memAt4 := c.Metrics.TotalWorkloadBytes()
	// 6 pods' worth of workload memory must be released.
	if memAt4 >= memAt10*5/10 {
		t.Fatalf("scale-down released too little: %d -> %d", memAt10, memAt4)
	}
}

func TestDeploymentScaleToZero(t *testing.T) {
	c := newTestCluster(t)
	d, err := c.CreateDeployment("svc", DeploymentSpec{
		Replicas: 5, RuntimeClassName: "wasmtime", Image: "minimal-service:wasm",
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if err := d.Scale(0); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if len(d.OwnedPods) != 0 {
		t.Fatalf("owned = %d", len(d.OwnedPods))
	}
	if got := c.Metrics.TotalWorkloadBytes(); got != 0 {
		t.Fatalf("workload memory after scale-to-zero: %d", got)
	}
	if err := d.Scale(-1); err == nil {
		t.Fatal("negative scale accepted")
	}
}

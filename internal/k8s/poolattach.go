package k8s

import (
	"fmt"

	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/simos"
)

// WarmPoolAttachment makes an in-process warm instance pool (internal/serve)
// visible to the cluster's memory accounting. The pool's accounted bytes are
// mirrored into a dedicated process under the node's /kubepods cgroup
// hierarchy, so the kubelet, the metrics-server vantage
// (MetricsServer.TotalWorkloadBytes) and the node's free-memory vantage all
// see pooled instances exactly like they see pod memory in the density
// experiments.
type WarmPoolAttachment struct {
	node    *WorkerNode
	proc    *simos.Process
	name    string
	charged int64

	// drain is the pool's memory-pressure response; nil until SetDrainer.
	drain func() int

	// obsCharged mirrors charged bytes into telemetry; obsPressure counts
	// instances evicted by pressure drains. Both nil (and free) when
	// observation is disabled.
	obsCharged  *obs.Gauge
	obsPressure *obs.Counter
}

// AttachWarmPool spawns the gateway process that will carry the pool's
// memory charge on this node. name distinguishes multiple pools; the process
// lands in cgroup /kubepods/warmpool-<name>.
func (n *WorkerNode) AttachWarmPool(name string) (*WarmPoolAttachment, error) {
	proc, err := n.OS.Spawn("warmpool-"+name, "/kubepods/warmpool-"+name)
	if err != nil {
		return nil, fmt.Errorf("k8s: attach warm pool %s: %w", name, err)
	}
	a := &WarmPoolAttachment{node: n, proc: proc, name: name}
	n.attachments = append(n.attachments, a)
	return a, nil
}

// SetObserver wires a warmpool_charged_bytes{pool=...} gauge tracking the
// private bytes the attachment currently carries in the node's cgroup
// hierarchy. Pass nil to disable (the default).
func (a *WarmPoolAttachment) SetObserver(t *obs.Telemetry) {
	if t == nil {
		a.obsCharged = nil
		return
	}
	a.obsCharged = t.Gauge(obs.Labeled("warmpool_charged_bytes", "pool", a.name))
	a.obsCharged.Set(a.charged)
	a.obsPressure = t.Counter(obs.Labeled("warmpool_pressure_evictions_total", "pool", a.name))
}

// Sync sets the attachment's charge to the pool's current accounted bytes,
// page-rounded like every other mapping on the simulated node. Pass it to
// serve.Pool.SetMemoryListener so every pool change lands in the cgroup
// hierarchy as it happens.
func (a *WarmPoolAttachment) Sync(bytes int64) {
	t := simos.RoundPages(bytes)
	switch {
	case t > a.charged:
		if err := a.proc.MapPrivate(t - a.charged); err != nil {
			// Node out of memory: carry what fits; the shortfall stays
			// uncharged, mirroring an over-committed host.
			return
		}
	case t < a.charged:
		a.proc.UnmapPrivate(a.charged - t)
	}
	a.charged = t
	a.obsCharged.Set(a.charged)
}

// SyncShared maps a digest-keyed read-only artifact of the pool's module —
// compiled code (wasm-code:<digest>) or the baseline memory image
// (wasm-data:<digest>) — as a shared mapping, exactly like the engine's
// shared library: the node accounts one copy per name no matter how many
// pools or container runtimes map it. Pair it with Sync carrying only the
// pool's private remainder (serve.Pool.MemoryBytes minus the artifact
// bytes) to split a pool's charge between per-node shared state and
// per-instance private state.
func (a *WarmPoolAttachment) SyncShared(name string, bytes int64) {
	if bytes <= 0 {
		return
	}
	a.proc.MapShared(name, bytes)
}

// ChargedBytes returns the private bytes currently mapped for the pool
// (shared artifacts mapped via SyncShared are accounted node-wide, not
// here).
func (a *WarmPoolAttachment) ChargedBytes() int64 { return a.charged }

// Process exposes the carrier process (tests and metrics).
func (a *WarmPoolAttachment) Process() *simos.Process { return a.proc }

// SetDrainer registers the pool's memory-pressure response — typically a
// closure over serve.Pool.DrainIdle — so node-level pressure episodes can
// reclaim the pool's idle instances through the attachment. Pass nil to
// unregister.
func (a *WarmPoolAttachment) SetDrainer(fn func() int) { a.drain = fn }

// Drain invokes the registered drainer (no-op without one) and returns how
// many instances the pool gave up. The freed bytes flow back through the
// pool's memory listener into Sync, so the node's cgroup charge shrinks in
// the same step.
func (a *WarmPoolAttachment) Drain() int {
	if a.drain == nil {
		return 0
	}
	n := a.drain()
	if n > 0 {
		a.obsPressure.Add(int64(n))
	}
	return n
}

// MemoryPressure simulates a kubelet memory-pressure episode on this node:
// warm-pool idle instances — the cheapest reclaimable memory on the node —
// are drained from every attached pool before the kubelet would have to
// start failing pods. Returns the total number of instances evicted.
func (n *WorkerNode) MemoryPressure() int {
	total := 0
	for _, a := range n.attachments {
		total += a.Drain()
	}
	return total
}

// Detach releases the charge, exits the carrier process, and removes the
// attachment from the node's pressure-drain list.
func (a *WarmPoolAttachment) Detach() {
	a.Sync(0)
	a.proc.Exit()
	for i, att := range a.node.attachments {
		if att == a {
			a.node.attachments = append(a.node.attachments[:i], a.node.attachments[i+1:]...)
			break
		}
	}
}

package k8s

import (
	"fmt"

	"wasmcontainers/internal/simos"
)

// WarmPoolAttachment makes an in-process warm instance pool (internal/serve)
// visible to the cluster's memory accounting. The pool's accounted bytes are
// mirrored into a dedicated process under the node's /kubepods cgroup
// hierarchy, so the kubelet, the metrics-server vantage
// (MetricsServer.TotalWorkloadBytes) and the node's free-memory vantage all
// see pooled instances exactly like they see pod memory in the density
// experiments.
type WarmPoolAttachment struct {
	node    *WorkerNode
	proc    *simos.Process
	charged int64
}

// AttachWarmPool spawns the gateway process that will carry the pool's
// memory charge on this node. name distinguishes multiple pools; the process
// lands in cgroup /kubepods/warmpool-<name>.
func (n *WorkerNode) AttachWarmPool(name string) (*WarmPoolAttachment, error) {
	proc, err := n.OS.Spawn("warmpool-"+name, "/kubepods/warmpool-"+name)
	if err != nil {
		return nil, fmt.Errorf("k8s: attach warm pool %s: %w", name, err)
	}
	return &WarmPoolAttachment{node: n, proc: proc}, nil
}

// Sync sets the attachment's charge to the pool's current accounted bytes,
// page-rounded like every other mapping on the simulated node. Pass it to
// serve.Pool.SetMemoryListener so every pool change lands in the cgroup
// hierarchy as it happens.
func (a *WarmPoolAttachment) Sync(bytes int64) {
	t := simos.RoundPages(bytes)
	switch {
	case t > a.charged:
		if err := a.proc.MapPrivate(t - a.charged); err != nil {
			// Node out of memory: carry what fits; the shortfall stays
			// uncharged, mirroring an over-committed host.
			return
		}
	case t < a.charged:
		a.proc.UnmapPrivate(a.charged - t)
	}
	a.charged = t
}

// ChargedBytes returns the bytes currently mapped for the pool.
func (a *WarmPoolAttachment) ChargedBytes() int64 { return a.charged }

// Process exposes the carrier process (tests and metrics).
func (a *WarmPoolAttachment) Process() *simos.Process { return a.proc }

// Detach releases the charge and exits the carrier process.
func (a *WarmPoolAttachment) Detach() {
	a.Sync(0)
	a.proc.Exit()
}

package k8s

import (
	"fmt"
	"sort"

	"wasmcontainers/internal/des"
)

// APIServer is the in-memory object store and notification hub. Handlers are
// invoked synchronously on mutation and are expected to schedule their real
// work on the discrete-event engine, which keeps the whole control plane
// deterministic.
type APIServer struct {
	pods           map[string]*Pod
	runtimeClasses map[string]RuntimeClass
	podHandlers    []func(*Pod)
	events         []Event
	now            func() int64
}

// NewAPIServer creates an empty API server; now supplies simulated time for
// event records.
func NewAPIServer(now func() int64) *APIServer {
	return &APIServer{
		pods:           make(map[string]*Pod),
		runtimeClasses: make(map[string]RuntimeClass),
		now:            now,
	}
}

// RegisterRuntimeClass installs a RuntimeClass object.
func (a *APIServer) RegisterRuntimeClass(rc RuntimeClass) {
	a.runtimeClasses[rc.Name] = rc
}

// RuntimeClass resolves a class name.
func (a *APIServer) RuntimeClass(name string) (RuntimeClass, bool) {
	rc, ok := a.runtimeClasses[name]
	return rc, ok
}

// WatchPods registers a handler called on every pod create/update.
func (a *APIServer) WatchPods(h func(*Pod)) { a.podHandlers = append(a.podHandlers, h) }

// CreatePod admits a pod.
func (a *APIServer) CreatePod(p *Pod) error {
	key := p.Namespace + "/" + p.Name
	if _, ok := a.pods[key]; ok {
		return fmt.Errorf("k8s: pod %s already exists", key)
	}
	if p.UID == "" {
		p.UID = fmt.Sprintf("uid-%05d", len(a.pods)+1)
	}
	if _, ok := a.runtimeClasses[p.Spec.RuntimeClassName]; p.Spec.RuntimeClassName != "" && !ok {
		return fmt.Errorf("k8s: unknown runtime class %q", p.Spec.RuntimeClassName)
	}
	p.Status.Phase = PodPending
	a.pods[key] = p
	a.Record("PodCreated", key, "admitted")
	a.notify(p)
	return nil
}

// UpdatePod re-notifies watchers after a mutation.
func (a *APIServer) UpdatePod(p *Pod) { a.notify(p) }

func (a *APIServer) notify(p *Pod) {
	for _, h := range a.podHandlers {
		h(p)
	}
}

// Pod fetches a pod by namespace/name.
func (a *APIServer) Pod(namespace, name string) (*Pod, bool) {
	p, ok := a.pods[namespace+"/"+name]
	return p, ok
}

// Pods lists all pods sorted by key.
func (a *APIServer) Pods() []*Pod {
	keys := make([]string, 0, len(a.pods))
	for k := range a.pods {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Pod, 0, len(keys))
	for _, k := range keys {
		out = append(out, a.pods[k])
	}
	return out
}

// Record appends a cluster event.
func (a *APIServer) Record(kind, object, msg string) {
	a.events = append(a.events, Event{Time: des.Time(a.now()), Kind: kind, Object: object, Message: msg})
}

// Events returns recorded events.
func (a *APIServer) Events() []Event { return a.events }

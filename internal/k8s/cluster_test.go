package k8s

import (
	"strings"
	"testing"

	"wasmcontainers/internal/simos"
)

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(DefaultClusterConfig())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestDeployWasmPodEndToEnd(t *testing.T) {
	c := newTestCluster(t)
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr",
		Image:            "minimal-service:wasm",
		Replicas:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	p := pods[0]
	if p.Status.Phase != PodRunning {
		t.Fatalf("pod phase = %s (%s)", p.Status.Phase, p.Status.Message)
	}
	cs := p.Status.Containers[0]
	if !cs.Ready || cs.ExitCode != 0 {
		t.Fatalf("container status = %+v", cs)
	}
	// The workload really ran: its banner is in the captured stdout.
	if cs.Stdout != "service ready\n" {
		t.Fatalf("stdout = %q", cs.Stdout)
	}
	if !strings.Contains(cs.Handler, "wamr") {
		t.Fatalf("handler = %q, want wamr path", cs.Handler)
	}
	// Startup took simulated seconds, not zero.
	if p.Status.RunningAt <= 0 {
		t.Fatal("no simulated startup time recorded")
	}
}

func TestAllRuntimeClassesStartTheWorkload(t *testing.T) {
	wasmClasses := []string{
		"crun-wamr", "crun-wasmtime", "crun-wasmer", "crun-wasmedge",
		"wasmtime", "wasmedge", "wasmer", "youki",
	}
	for _, rc := range wasmClasses {
		c := newTestCluster(t)
		pods, err := c.Deploy(DeployOptions{
			RuntimeClassName: rc, Image: "minimal-service:wasm", Replicas: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", rc, err)
		}
		c.Run()
		for _, p := range pods {
			if p.Status.Phase != PodRunning {
				t.Fatalf("%s: pod %s phase %s (%s)", rc, p.Name, p.Status.Phase, p.Status.Message)
			}
			if got := p.Status.Containers[0].Stdout; got != "service ready\n" {
				t.Fatalf("%s: stdout %q", rc, got)
			}
		}
	}
	for _, rc := range []string{"crun", "runc"} {
		c := newTestCluster(t)
		pods, err := c.Deploy(DeployOptions{
			RuntimeClassName: rc, Image: "python-minimal-service:3.11", Replicas: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", rc, err)
		}
		c.Run()
		for _, p := range pods {
			if p.Status.Phase != PodRunning {
				t.Fatalf("%s: pod %s phase %s (%s)", rc, p.Name, p.Status.Phase, p.Status.Message)
			}
			if got := p.Status.Containers[0].Stdout; got != "service ready\n" {
				t.Fatalf("%s: stdout %q", rc, got)
			}
		}
	}
}

func TestRunCRejectsWasm(t *testing.T) {
	c := newTestCluster(t)
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "runc", Image: "minimal-service:wasm", Replicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if pods[0].Status.Phase != PodFailed {
		t.Fatalf("expected PodFailed, got %s", pods[0].Status.Phase)
	}
	if !strings.Contains(pods[0].Status.Message, "wasm containers are not supported") {
		t.Fatalf("message = %q", pods[0].Status.Message)
	}
}

func TestMetricsServerVsFreeVantagePoints(t *testing.T) {
	c := newTestCluster(t)
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	metrics := c.Metrics.AllPodMetrics(pods)
	if len(metrics) != 10 {
		t.Fatalf("scraped %d pods, want 10", len(metrics))
	}
	var totalCgroup int64
	for _, m := range metrics {
		if m.MemoryBytes <= 0 {
			t.Fatalf("pod %s reports zero memory", m.Name)
		}
		totalCgroup += m.MemoryBytes
	}
	// The `free` view must exceed the metrics-server view: it additionally
	// sees shims, daemon growth, and page cache (the paper's Fig 3 vs 4 gap).
	freeView := c.Nodes[0].OS.UsedBeyondIdle()
	if freeView <= totalCgroup {
		t.Fatalf("free view %d <= cgroup view %d", freeView, totalCgroup)
	}
	gap := float64(freeView-totalCgroup) / float64(totalCgroup)
	if gap < 0.05 || gap > 1.0 {
		t.Fatalf("free-vs-metrics gap = %.1f%%, expected 5%%-100%%", gap*100)
	}
}

func TestPerContainerMemoryStableAcrossDensity(t *testing.T) {
	// Paper Section IV-B: per-container overhead does not vary significantly
	// with deployment size.
	perContainer := func(n int) float64 {
		c := newTestCluster(t)
		pods, err := c.Deploy(DeployOptions{
			RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: n,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Run()
		if c.RunningPods() != n {
			t.Fatalf("only %d/%d pods running", c.RunningPods(), n)
		}
		total := c.Metrics.TotalWorkloadBytes()
		_ = pods
		return float64(total) / float64(n)
	}
	at10 := perContainer(10)
	at100 := perContainer(100)
	ratio := at100 / at10
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("per-container memory drifted with density: %.0f vs %.0f bytes", at10, at100)
	}
}

func TestStartupLatencyScalesWithDensity(t *testing.T) {
	elapsed := func(n int) float64 {
		c := newTestCluster(t)
		pods, err := c.Deploy(DeployOptions{
			RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: n,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Run()
		last, err := c.LastStartTime(pods)
		if err != nil {
			t.Fatal(err)
		}
		return float64(last) / 1e9
	}
	t10 := elapsed(10)
	t100 := elapsed(100)
	if t10 <= 0 {
		t.Fatal("zero startup latency")
	}
	// 10 containers fit the 20 cores; 100 must queue and take notably longer.
	if t100 < 2*t10 {
		t.Fatalf("latency: 10 ctrs %.2fs, 100 ctrs %.2fs — expected queueing growth", t10, t100)
	}
}

func TestMaxPodsEnforced(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.KubeletConfig.MaxPods = 5
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	running, failed := 0, 0
	for _, p := range pods {
		switch p.Status.Phase {
		case PodRunning:
			running++
		case PodFailed:
			failed++
		}
	}
	if running != 5 || failed != 3 {
		t.Fatalf("running=%d failed=%d, want 5/3", running, failed)
	}
}

func TestTeardownReleasesMemory(t *testing.T) {
	c := newTestCluster(t)
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	before := c.Nodes[0].OS.UsedBeyondIdle()
	if before == 0 {
		t.Fatal("no memory in use after deployment")
	}
	if err := c.TeardownPods(pods); err != nil {
		t.Fatal(err)
	}
	after := c.Nodes[0].OS.UsedBeyondIdle()
	// Image layer cache and kubelet growth legitimately persist; workload
	// memory must be gone.
	if after >= before/2 {
		t.Fatalf("teardown released too little: before=%d after=%d", before, after)
	}
	if c.Metrics.TotalWorkloadBytes() != 0 {
		t.Fatalf("workload cgroups still charged: %d", c.Metrics.TotalWorkloadBytes())
	}
}

func TestDeterministicClusterRuns(t *testing.T) {
	run := func() (int64, int64) {
		c := newTestCluster(t)
		pods, err := c.Deploy(DeployOptions{
			RuntimeClassName: "wasmtime", Image: "minimal-service:wasm", Replicas: 25,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Run()
		last, err := c.LastStartTime(pods)
		if err != nil {
			t.Fatal(err)
		}
		return int64(last), c.Nodes[0].OS.UsedBeyondIdle()
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", t1, m1, t2, m2)
	}
}

func TestWasmArgsReachModule(t *testing.T) {
	// Deploy echo-args with extra args; the module prints them via WASI.
	c := newTestCluster(t)
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr",
		Image:            "echo-args:wasm",
		Replicas:         1,
		Args:             []string{"--mode", "bench"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	cs := pods[0].Status.Containers[0]
	want := "/app.wasm\n--mode\nbench\n"
	if cs.Stdout != want {
		t.Fatalf("stdout = %q, want %q", cs.Stdout, want)
	}
}

func TestNodeUtilizationDuringStartup(t *testing.T) {
	c := newTestCluster(t)
	_, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := c.Run()
	util := c.Nodes[0].Kubelet.CPUPool().Utilization(end)
	if util < 0.3 || util > 1.0 {
		t.Fatalf("utilization = %.2f, expected busy cores during 100-pod startup", util)
	}
	if c.Nodes[0].OS.Config().RAMBytes != 256*simos.GiB {
		t.Fatal("default node should be the paper's 256GB machine")
	}
}

func TestNodeOOMFailsPods(t *testing.T) {
	// A node too small for the requested fleet: pods fail rather than hang.
	cfg := DefaultClusterConfig()
	cfg.NodeConfig = simos.NodeConfig{
		Name: "tiny", RAMBytes: 2200 * simos.MiB, Cores: 4,
		BaseSystemBytes: 2000 * simos.MiB, BaseCacheBytes: 100 * simos.MiB,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wasmer", Image: "minimal-service:wasm", Replicas: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	running, failed := 0, 0
	for _, p := range pods {
		switch p.Status.Phase {
		case PodRunning:
			running++
		case PodFailed:
			failed++
		}
	}
	if failed == 0 {
		t.Fatalf("expected OOM failures on a %dMiB node (running=%d)", 2200, running)
	}
	if running == 0 {
		t.Fatal("expected at least some pods to fit")
	}
	// Failure messages mention memory exhaustion.
	for _, p := range pods {
		if p.Status.Phase == PodFailed && !strings.Contains(p.Status.Message, "out of memory") {
			t.Fatalf("unexpected failure message: %q", p.Status.Message)
		}
	}
}

func TestEventsRecorded(t *testing.T) {
	c := newTestCluster(t)
	_, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	kinds := map[string]int{}
	for _, e := range c.API.Events() {
		kinds[e.Kind]++
		if e.String() == "" {
			t.Fatal("empty event string")
		}
	}
	if kinds["PodCreated"] != 2 || kinds["PodScheduled"] != 2 || kinds["PodRunning"] != 2 {
		t.Fatalf("event counts = %v", kinds)
	}
}

func TestUnknownRuntimeClassRejectedAtAdmission(t *testing.T) {
	c := newTestCluster(t)
	_, err := c.Deploy(DeployOptions{
		RuntimeClassName: "no-such-class", Image: "minimal-service:wasm", Replicas: 1,
	})
	if err == nil {
		t.Fatal("unknown runtime class admitted")
	}
}

func TestDefaultRuntimeClassIsRunc(t *testing.T) {
	// A pod without a RuntimeClass runs under Kubernetes' default (runC).
	c := newTestCluster(t)
	pods, err := c.Deploy(DeployOptions{
		Image: "python-minimal-service:3.11", Replicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if pods[0].Status.Phase != PodRunning {
		t.Fatalf("pod %s: %s", pods[0].Status.Phase, pods[0].Status.Message)
	}
	if !strings.Contains(pods[0].Status.Containers[0].Handler, "runc") {
		t.Fatalf("handler = %q, want runc default", pods[0].Status.Containers[0].Handler)
	}
}

func TestMultiNodeScheduling(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.NumNodes = 3
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr", Image: "minimal-service:wasm", Replicas: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	perNode := map[string]int{}
	for _, p := range pods {
		if p.Status.Phase != PodRunning {
			t.Fatalf("pod %s: %s (%s)", p.Name, p.Status.Phase, p.Status.Message)
		}
		perNode[p.Spec.NodeName]++
	}
	if len(perNode) != 3 {
		t.Fatalf("pods landed on %d nodes, want 3: %v", len(perNode), perNode)
	}
	for node, n := range perNode {
		if n != 3 {
			t.Fatalf("node %s got %d pods, want 3 (round-robin)", node, n)
		}
	}
	// Each node's memory reflects its own pods only.
	for _, wn := range c.Nodes {
		if wn.OS.UsedBeyondIdle() <= 0 {
			t.Fatalf("node %s has no workload memory", wn.Name)
		}
	}
}

package k8s

import (
	"testing"

	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/simos"
)

// TestClusterTelemetry deploys pods on an observed cluster and checks the
// kubelet-level gauges and counters track what the cluster reports through
// its own accounting.
func TestClusterTelemetry(t *testing.T) {
	c := newTestCluster(t)
	tele := obs.New(obs.Config{Clock: func() int64 { return int64(c.Engine.Now()) }})
	c.SetObserver(tele)
	pods, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr",
		Image:            "minimal-service:wasm",
		Replicas:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if _, err := c.LastStartTime(pods); err != nil {
		t.Fatal(err)
	}
	reg := tele.Metrics()
	started := reg.Counter(obs.Labeled("kubelet_pods_started_total", "node", "worker-0"))
	if started.Value() != 3 {
		t.Fatalf("kubelet_pods_started_total = %d, want 3", started.Value())
	}
	managed := reg.Gauge(obs.Labeled("kubelet_managed_pods", "node", "worker-0"))
	if managed.Value() != 3 {
		t.Fatalf("kubelet_managed_pods = %d, want 3", managed.Value())
	}
	failed := reg.Counter(obs.Labeled("kubelet_pods_failed_total", "node", "worker-0"))
	if failed.Value() != 0 {
		t.Fatalf("kubelet_pods_failed_total = %d, want 0", failed.Value())
	}
	// The node-memory gauge mirrors the simulated node's beyond-idle usage at
	// the last pod transition, when all three workloads were resident.
	mem := reg.Gauge(obs.Labeled("node_memory_used_bytes", "node", "worker-0"))
	if got, used := mem.Value(), c.Nodes[0].OS.UsedBeyondIdle(); got != used {
		t.Fatalf("node_memory_used_bytes = %d, node reports %d", got, used)
	}
	if mem.Value() <= 0 {
		t.Fatal("node memory gauge never updated")
	}
}

// TestWarmPoolAttachmentTelemetry checks the warmpool_charged_bytes gauge
// follows Sync through growth, shrink, and detach.
func TestWarmPoolAttachmentTelemetry(t *testing.T) {
	c := newTestCluster(t)
	tele := obs.New(obs.Config{})
	att, err := c.Nodes[0].AttachWarmPool("gw")
	if err != nil {
		t.Fatal(err)
	}
	att.SetObserver(tele)
	g := tele.Metrics().Gauge(obs.Labeled("warmpool_charged_bytes", "pool", "gw"))
	att.Sync(3 * simos.MiB)
	if g.Value() != 3*simos.MiB {
		t.Fatalf("gauge = %d after sync, want %d", g.Value(), 3*simos.MiB)
	}
	att.Sync(1 * simos.MiB)
	if g.Value() != 1*simos.MiB {
		t.Fatalf("gauge = %d after shrink, want %d", g.Value(), 1*simos.MiB)
	}
	att.Detach()
	if g.Value() != 0 {
		t.Fatalf("gauge = %d after detach, want 0", g.Value())
	}
}

// TestKubeletFailureCounter drives pods into a kubelet-level failure (runC
// rejecting a wasm image at container start) and checks the failure counter
// catches them. Capacity overflow no longer reaches the kubelet: the
// scheduler rejects those pods at bind time, and that must NOT count as a
// kubelet failure.
func TestKubeletFailureCounter(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.KubeletConfig.MaxPods = 4
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tele := obs.New(obs.Config{})
	c.SetObserver(tele)
	if _, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr",
		Image:            "minimal-service:wasm",
		Replicas:         2,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(DeployOptions{
		RuntimeClassName: "runc",
		Image:            "minimal-service:wasm", // runC cannot run wasm: CRI fails the pod
		Replicas:         2,
	}); err != nil {
		t.Fatal(err)
	}
	c.Run()
	// Overflow wave: the node is at MaxPods (2 running + 2 failed counted on
	// admission... the two runc pods were accepted then failed), so these are
	// turned away by the scheduler, not the kubelet.
	if _, err := c.Deploy(DeployOptions{
		RuntimeClassName: "crun-wamr",
		Image:            "minimal-service:wasm",
		Replicas:         2,
	}); err != nil {
		t.Fatal(err)
	}
	c.Run()
	failed := tele.Metrics().Counter(obs.Labeled("kubelet_pods_failed_total", "node", "worker-0"))
	if failed.Value() != 2 {
		t.Fatalf("kubelet_pods_failed_total = %d, want 2 (CRI failures only)", failed.Value())
	}
	started := tele.Metrics().Counter(obs.Labeled("kubelet_pods_started_total", "node", "worker-0"))
	if started.Value() != 2 {
		t.Fatalf("kubelet_pods_started_total = %d, want 2", started.Value())
	}
}

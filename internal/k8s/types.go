// Package k8s is a miniature Kubernetes: an in-memory API server with
// watch-style notification, a scheduler, a kubelet per worker node driving
// the CRI under the discrete-event simulator, RuntimeClass dispatch, and a
// metrics-server that reads pod memory from cgroups. It reproduces the
// control path of the paper's Figure 1 end to end.
package k8s

import (
	"fmt"

	"wasmcontainers/internal/containerd"
	"wasmcontainers/internal/des"
)

// PodPhase is the pod lifecycle phase.
type PodPhase string

// Pod phases.
const (
	PodPending   PodPhase = "Pending"
	PodScheduled PodPhase = "Scheduled"
	PodRunning   PodPhase = "Running"
	PodFailed    PodPhase = "Failed"
)

// ContainerSpec is one container in a pod.
type ContainerSpec struct {
	Name  string
	Image string
	Args  []string
	Env   []string
}

// PodSpec is the desired state of a pod.
type PodSpec struct {
	RuntimeClassName string
	Containers       []ContainerSpec
	NodeName         string // set by the scheduler
	// ArtifactHints names shared artifacts (wasm-code:/wasm-data: images) the
	// pod's workload will map. The scheduler prefers nodes that already hold
	// them resident, so warm artifact caches beat blind spreading.
	ArtifactHints []string
}

// ContainerStatus is per-container observed state.
type ContainerStatus struct {
	Name string
	// Ready is true once the container's workload began executing.
	Ready bool
	// StartedAt is the simulated time the workload began executing.
	StartedAt des.Time
	ExitCode  uint32
	// Stdout captured from the workload's startup.
	Stdout string
	// Handler describes the execution path actually used.
	Handler string
}

// PodStatus is the observed state of a pod.
type PodStatus struct {
	Phase PodPhase
	// CreatedAt/ScheduledAt/RunningAt are simulated timestamps.
	CreatedAt   des.Time
	ScheduledAt des.Time
	RunningAt   des.Time
	Containers  []ContainerStatus
	Message     string
}

// Pod is the API object.
type Pod struct {
	Name      string
	Namespace string
	UID       string
	Spec      PodSpec
	Status    PodStatus
}

// CgroupParent returns the pod-level cgroup path.
func (p *Pod) CgroupParent() string { return "/kubepods/pod-" + p.UID }

// RuntimeClass maps a class name to a containerd handler, the Kubernetes
// mechanism that selects Wasm runtimes per pod.
type RuntimeClass struct {
	Name    string
	Handler containerd.RuntimeHandler
}

// DefaultRuntimeClasses registers every handler the paper benchmarks.
func DefaultRuntimeClasses() []RuntimeClass {
	return []RuntimeClass{
		{Name: "crun-wamr", Handler: containerd.HandlerCrunWAMR},
		{Name: "crun-wasmtime", Handler: containerd.HandlerCrunWasmtime},
		{Name: "crun-wasmer", Handler: containerd.HandlerCrunWasmer},
		{Name: "crun-wasmedge", Handler: containerd.HandlerCrunWasmEdge},
		{Name: "wasmtime", Handler: containerd.HandlerShimWasmtime},
		{Name: "wasmedge", Handler: containerd.HandlerShimWasmEdge},
		{Name: "wasmer", Handler: containerd.HandlerShimWasmer},
		{Name: "crun", Handler: containerd.HandlerCrun},
		{Name: "runc", Handler: containerd.HandlerRunc},
		{Name: "youki", Handler: containerd.HandlerYouki},
	}
}

// Event records a cluster-level occurrence (for tests and debugging).
type Event struct {
	Time    des.Time
	Kind    string
	Object  string
	Message string
}

func (e Event) String() string {
	return fmt.Sprintf("[%.3fs] %s %s: %s", float64(e.Time)/1e9, e.Kind, e.Object, e.Message)
}

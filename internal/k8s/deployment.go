package k8s

import (
	"fmt"

	"wasmcontainers/internal/des"
)

// Deployment is a minimal Deployment/ReplicaSet analog: it owns a set of
// identical single-container pods and reconciles the live count toward
// Replicas. The paper's motivation — "the high velocity of change in the
// number of running containers in large-scale deployment environments" —
// is exercised through Scale.
type Deployment struct {
	Name      string
	Namespace string
	Spec      DeploymentSpec
	// OwnedPods are the pods currently created for this deployment.
	OwnedPods []*Pod

	cluster *Cluster
	serial  int
}

// DeploymentSpec is the desired state.
type DeploymentSpec struct {
	Replicas         int
	RuntimeClassName string
	Image            string
	Args             []string
	Env              []string
}

// CreateDeployment registers a deployment and performs the first
// reconciliation. Call Cluster.Run (or keep stepping the engine) afterwards
// to let the pods start.
func (c *Cluster) CreateDeployment(name string, spec DeploymentSpec) (*Deployment, error) {
	if spec.Replicas < 0 {
		return nil, fmt.Errorf("k8s: negative replicas")
	}
	d := &Deployment{Name: name, Namespace: "default", Spec: spec, cluster: c}
	if err := d.reconcile(); err != nil {
		return nil, err
	}
	return d, nil
}

// Scale changes the desired replica count and reconciles immediately:
// scale-ups create pods; scale-downs stop and remove the newest pods first.
func (d *Deployment) Scale(replicas int) error {
	if replicas < 0 {
		return fmt.Errorf("k8s: negative replicas")
	}
	d.Spec.Replicas = replicas
	return d.reconcile()
}

func (d *Deployment) reconcile() error {
	c := d.cluster
	for len(d.OwnedPods) < d.Spec.Replicas {
		d.serial++
		pods, err := c.Deploy(DeployOptions{
			NamePrefix:       d.Name,
			RuntimeClassName: d.Spec.RuntimeClassName,
			Image:            d.Spec.Image,
			Replicas:         1,
			Args:             d.Spec.Args,
			Env:              d.Spec.Env,
		})
		if err != nil {
			return err
		}
		d.OwnedPods = append(d.OwnedPods, pods[0])
	}
	for len(d.OwnedPods) > d.Spec.Replicas {
		victim := d.OwnedPods[len(d.OwnedPods)-1]
		d.OwnedPods = d.OwnedPods[:len(d.OwnedPods)-1]
		// Pods still mid-startup are torn down once the engine quiesces;
		// schedule the teardown so in-flight events complete first.
		c.Engine.After(0, func() {
			if victim.Status.Phase == PodRunning || victim.Status.Phase == PodScheduled {
				if err := c.TeardownPods([]*Pod{victim}); err == nil {
					victim.Status.Phase = PodFailed
					victim.Status.Message = "scaled down"
					c.API.Record("PodDeleted", victim.Namespace+"/"+victim.Name, "scaled down")
				}
			}
		})
	}
	return nil
}

// ReadyReplicas counts owned pods whose workload started.
func (d *Deployment) ReadyReplicas() int {
	n := 0
	for _, p := range d.OwnedPods {
		if p.Status.Phase == PodRunning {
			n++
		}
	}
	return n
}

// RolloutComplete reports whether all desired replicas are ready.
func (d *Deployment) RolloutComplete() bool {
	return d.ReadyReplicas() == d.Spec.Replicas && len(d.OwnedPods) == d.Spec.Replicas
}

// LastTransition returns the latest workload start time among owned pods.
func (d *Deployment) LastTransition() des.Time {
	var last des.Time
	for _, p := range d.OwnedPods {
		for _, cs := range p.Status.Containers {
			if cs.StartedAt > last {
				last = cs.StartedAt
			}
		}
	}
	return last
}

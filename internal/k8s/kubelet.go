package k8s

import (
	"fmt"
	"sync/atomic"
	"time"

	"wasmcontainers/internal/containerd"
	"wasmcontainers/internal/cri"
	"wasmcontainers/internal/des"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/simos"
)

// KubeletConfig holds the knobs the paper's Section III-C changes (raising
// max pods per node to 500 for high-density experiments).
type KubeletConfig struct {
	MaxPods int
	// SyncDelay models the kubelet's reaction latency to a new pod binding.
	SyncDelay time.Duration
	// GrowthPerPod is kubelet heap growth per managed pod (system slice).
	GrowthPerPod int64
}

// DefaultKubeletConfig matches the paper's modified cluster configuration.
func DefaultKubeletConfig() KubeletConfig {
	return KubeletConfig{
		MaxPods:      500,
		SyncDelay:    15 * time.Millisecond,
		GrowthPerPod: 410 * 1024,
	}
}

// WorkerNode bundles everything running on one machine.
type WorkerNode struct {
	Name    string
	OS      *simos.Node
	Runtime *containerd.Client
	CRI     cri.RuntimeService
	Kubelet *Kubelet

	// attachments are the warm pools charged to this node, drained in
	// attachment order when the node comes under memory pressure.
	attachments []*WarmPoolAttachment

	// dead is atomic because the gateway flips it from the bridge goroutine
	// while HTTP control-surface handlers read it concurrently.
	dead atomic.Bool
}

// Alive reports whether the node is up. New clusters start with every node
// alive.
func (n *WorkerNode) Alive() bool { return !n.dead.Load() }

// Fail marks the node down: its kubelet refuses and abandons pod work, and
// the scheduler stops considering it. There is no recovery path — the
// simulated failure model is fail-stop.
func (n *WorkerNode) Fail() {
	n.dead.Store(true)
	n.Kubelet.setDown()
}

// Kubelet drives pods assigned to its node through the CRI, pacing the work
// on the node's simulated cores.
type Kubelet struct {
	cfg      KubeletConfig
	node     *simos.Node
	cri      cri.RuntimeService
	api      *APIServer
	eng      *des.Engine
	cpu      *des.CPUPool
	taskLock *des.Resource
	proc     *simos.Process
	podCount int
	down     atomic.Bool

	// Telemetry handles, nil when observation is disabled (nil handles no-op
	// without allocating).
	obsPods       *obs.Gauge
	obsStarted    *obs.Counter
	obsFailed     *obs.Counter
	obsNodeMemory *obs.Gauge
}

// SetObserver wires node-scoped telemetry into the kubelet: a managed-pods
// gauge, started/failed counters, and a node_memory_used_bytes{node=...}
// gauge refreshed from the simulated node's beyond-idle memory at every pod
// transition. Pass nil to disable (the default).
func (k *Kubelet) SetObserver(t *obs.Telemetry) {
	if t == nil {
		k.obsPods, k.obsStarted, k.obsFailed, k.obsNodeMemory = nil, nil, nil, nil
		return
	}
	node := k.node.Config().Name
	k.obsPods = t.Gauge(obs.Labeled("kubelet_managed_pods", "node", node))
	k.obsStarted = t.Counter(obs.Labeled("kubelet_pods_started_total", "node", node))
	k.obsFailed = t.Counter(obs.Labeled("kubelet_pods_failed_total", "node", node))
	k.obsNodeMemory = t.Gauge(obs.Labeled("node_memory_used_bytes", "node", node))
	k.obsPods.Set(int64(k.podCount))
	k.obsNodeMemory.Set(k.node.UsedBeyondIdle())
}

// NewKubelet wires a kubelet to its node.
func NewKubelet(cfg KubeletConfig, api *APIServer, eng *des.Engine, node *simos.Node, criSvc cri.RuntimeService) (*Kubelet, error) {
	proc, err := node.Spawn("kubelet", "/system.slice/kubelet")
	if err != nil {
		return nil, err
	}
	return &Kubelet{
		cfg:      cfg,
		node:     node,
		cri:      criSvc,
		api:      api,
		eng:      eng,
		cpu:      des.NewCPUPool(eng, node.Config().Cores),
		taskLock: des.NewResource(eng),
		proc:     proc,
	}, nil
}

// PodCount is the number of pods the kubelet has accepted (viability input
// for bind-time scheduling).
func (k *Kubelet) PodCount() int { return k.podCount }

// MaxPods is the node's pod capacity.
func (k *Kubelet) MaxPods() int { return k.cfg.MaxPods }

func (k *Kubelet) setDown() { k.down.Store(true) }

// CPUPool exposes the node's core pool (used by benchmarks for utilization).
func (k *Kubelet) CPUPool() *des.CPUPool { return k.cpu }

// TaskLock exposes the containerd task-service serialization point.
func (k *Kubelet) TaskLock() *des.Resource { return k.taskLock }

// HandlePod reacts to a pod bound to this node: it schedules the full CRI
// start sequence on the discrete-event engine.
func (k *Kubelet) HandlePod(p *Pod) {
	if p.Status.Phase != PodScheduled {
		return
	}
	if k.down.Load() {
		k.failPod(p, "kubelet: node "+k.node.Config().Name+" is down")
		return
	}
	if k.podCount >= k.cfg.MaxPods {
		p.Status.Phase = PodFailed
		p.Status.Message = fmt.Sprintf("kubelet: max pods (%d) exceeded", k.cfg.MaxPods)
		k.obsFailed.Inc()
		k.api.Record("PodFailed", p.Namespace+"/"+p.Name, p.Status.Message)
		return
	}
	k.podCount++
	k.proc.MapPrivate(k.cfg.GrowthPerPod)
	k.obsPods.Set(int64(k.podCount))
	k.obsNodeMemory.Set(k.node.UsedBeyondIdle())
	k.eng.After(k.cfg.SyncDelay, func() { k.syncPod(p) })
}

// syncPod runs sandbox + container creation, then paces each container's
// start through the task lock and the CPU pool.
func (k *Kubelet) syncPod(p *Pod) {
	// The pod may have been failed (node death) between HandlePod and the
	// sync firing; a dead kubelet also abandons queued syncs.
	if p.Status.Phase != PodScheduled || k.down.Load() {
		return
	}
	rcName := p.Spec.RuntimeClassName
	handler := containerd.HandlerRunc
	if rcName != "" {
		rc, ok := k.api.RuntimeClass(rcName)
		if !ok {
			k.failPod(p, fmt.Sprintf("unknown RuntimeClass %q", rcName))
			return
		}
		handler = rc.Handler
	}
	sbxID, err := k.cri.RunPodSandbox(cri.PodSandboxConfig{
		Name: p.Name, Namespace: p.Namespace, UID: p.UID,
		CgroupParent:   p.CgroupParent(),
		RuntimeHandler: handler,
	})
	if err != nil {
		k.failPod(p, err.Error())
		return
	}
	remaining := len(p.Spec.Containers)
	p.Status.Containers = make([]ContainerStatus, len(p.Spec.Containers))
	for i, cs := range p.Spec.Containers {
		i, cs := i, cs
		ctrID, err := k.cri.CreateContainer(sbxID, cri.ContainerConfig{
			Name: cs.Name, Image: cs.Image, Args: cs.Args, Env: cs.Env,
		})
		if err != nil {
			k.failPod(p, err.Error())
			return
		}
		// The real start: containerd performs the bookkeeping and returns
		// the simulated cost, which we then pace through the shared
		// task-service lock and the node's cores.
		report, err := k.cri.StartContainer(ctrID)
		if err != nil {
			k.failPod(p, err.Error())
			return
		}
		k.eng.After(report.Cost.FixedDelay, func() {
			k.taskLock.Acquire(report.Cost.TaskLockHold, func() {
				k.cpu.Submit(report.Cost.CPUWork, func() {
					if p.Status.Phase != PodScheduled {
						return // failed mid-start (node death)
					}
					p.Status.Containers[i] = ContainerStatus{
						Name:      cs.Name,
						Ready:     true,
						StartedAt: k.eng.Now(),
						ExitCode:  report.ExitCode,
						Stdout:    report.Stdout,
						Handler:   report.Handler,
					}
					remaining--
					if remaining == 0 {
						p.Status.Phase = PodRunning
						p.Status.RunningAt = k.eng.Now()
						k.obsStarted.Inc()
						k.obsNodeMemory.Set(k.node.UsedBeyondIdle())
						k.api.Record("PodRunning", p.Namespace+"/"+p.Name, report.Handler)
						k.api.UpdatePod(p)
					}
				})
			})
		})
	}
}

func (k *Kubelet) failPod(p *Pod, msg string) {
	p.Status.Phase = PodFailed
	p.Status.Message = msg
	k.obsFailed.Inc()
	k.api.Record("PodFailed", p.Namespace+"/"+p.Name, msg)
	k.api.UpdatePod(p)
}

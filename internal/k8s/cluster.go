package k8s

import (
	"fmt"
	"time"

	"wasmcontainers/internal/containerd"
	"wasmcontainers/internal/cri"
	"wasmcontainers/internal/des"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/simos"
)

// SchedulerConfig models scheduling latency.
type SchedulerConfig struct {
	// BindLatency is the time from pod admission to node binding.
	BindLatency time.Duration
}

// DefaultSchedulerConfig matches a lightly-loaded kube-scheduler.
func DefaultSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{BindLatency: 10 * time.Millisecond}
}

// Scheduler binds pending pods to nodes. Placement is decided at bind time
// (after BindLatency) against live node state: dead or full nodes are
// filtered out, artifact-hinted pods prefer nodes already holding their
// shared images, and the rest spread round-robin.
type Scheduler struct {
	cfg   SchedulerConfig
	api   *APIServer
	eng   *des.Engine
	nodes []*WorkerNode
	next  int
}

// NewScheduler wires the scheduler to the API server.
func NewScheduler(cfg SchedulerConfig, api *APIServer, eng *des.Engine, nodes []*WorkerNode) *Scheduler {
	s := &Scheduler{cfg: cfg, api: api, eng: eng, nodes: nodes}
	api.WatchPods(s.handle)
	return s
}

func (s *Scheduler) handle(p *Pod) {
	if p.Status.Phase != PodPending {
		return
	}
	p.Status.Phase = PodScheduled // claim immediately; bind after latency
	s.eng.After(s.cfg.BindLatency, func() { s.bind(p) })
}

// bind picks a node at bind time, not admission time: BindLatency later the
// world has moved — nodes fill toward MaxPods or die — so the candidate set
// is re-evaluated here instead of trusting a pick made when the pod was
// admitted. A pod whose node fails while it waits in the bind queue simply
// lands elsewhere.
func (s *Scheduler) bind(p *Pod) {
	if p.Status.Phase != PodScheduled {
		return // failed or deleted while waiting to bind
	}
	node := s.pick(p)
	if node == nil {
		p.Status.Phase = PodFailed
		p.Status.Message = "scheduler: no viable node (all failed or at max pods)"
		s.api.Record("PodFailed", p.Namespace+"/"+p.Name, p.Status.Message)
		s.api.UpdatePod(p)
		return
	}
	p.Spec.NodeName = node.Name
	p.Status.ScheduledAt = s.eng.Now()
	s.api.Record("PodScheduled", p.Namespace+"/"+p.Name, "bound to "+node.Name)
	node.Kubelet.HandlePod(p)
}

// pick filters the cluster down to viable nodes (alive and below MaxPods)
// and chooses among them. Pods carrying artifact hints are scored by how
// many of their shared images each node already holds resident — cache
// locality beats spreading — with free pod capacity as the tiebreak.
// Hint-less pods keep the round-robin spread.
func (s *Scheduler) pick(p *Pod) *WorkerNode {
	viable := make([]*WorkerNode, 0, len(s.nodes))
	for _, n := range s.nodes {
		if n.Alive() && n.Kubelet.PodCount() < n.Kubelet.MaxPods() {
			viable = append(viable, n)
		}
	}
	if len(viable) == 0 {
		return nil
	}
	if len(p.Spec.ArtifactHints) > 0 {
		var best *WorkerNode
		bestScore, bestCap := -1, -1
		for _, n := range viable {
			score := 0
			for _, h := range p.Spec.ArtifactHints {
				if n.OS.HasSharedLib(h) {
					score++
				}
			}
			capacity := n.Kubelet.MaxPods() - n.Kubelet.PodCount()
			if score > bestScore || (score == bestScore && capacity > bestCap) {
				best, bestScore, bestCap = n, score, capacity
			}
		}
		return best
	}
	// The cursor walks the full node list so the spread stays stable as
	// nodes fail: skip non-viable entries rather than re-indexing.
	for range s.nodes {
		n := s.nodes[s.next%len(s.nodes)]
		s.next++
		for _, v := range viable {
			if v == n {
				return n
			}
		}
	}
	return viable[0]
}

// ClusterConfig assembles a cluster.
type ClusterConfig struct {
	NodeConfig      simos.NodeConfig
	NumNodes        int
	KubeletConfig   KubeletConfig
	SchedulerConfig SchedulerConfig
}

// DefaultClusterConfig is the paper's testbed: one 20-core/256 GB worker.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		NodeConfig:      simos.DefaultNodeConfig(),
		NumNodes:        1,
		KubeletConfig:   DefaultKubeletConfig(),
		SchedulerConfig: DefaultSchedulerConfig(),
	}
}

// Cluster is a running simulated Kubernetes cluster.
type Cluster struct {
	Engine    *des.Engine
	API       *APIServer
	Scheduler *Scheduler
	Nodes     []*WorkerNode
	Metrics   *MetricsServer
	podSeq    int
}

// NewCluster builds and wires a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	eng := des.NewEngine()
	api := NewAPIServer(func() int64 { return int64(eng.Now()) })
	for _, rc := range DefaultRuntimeClasses() {
		api.RegisterRuntimeClass(rc)
	}
	images, err := containerd.NewImageStore()
	if err != nil {
		return nil, err
	}
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 1
	}
	var nodes []*WorkerNode
	for i := 0; i < cfg.NumNodes; i++ {
		nodeCfg := cfg.NodeConfig
		nodeCfg.Name = fmt.Sprintf("worker-%d", i)
		osNode := simos.NewNode(nodeCfg)
		client, err := containerd.NewClient(osNode, images)
		if err != nil {
			return nil, err
		}
		criSvc := cri.NewService(client)
		kubelet, err := NewKubelet(cfg.KubeletConfig, api, eng, osNode, criSvc)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, &WorkerNode{
			Name: nodeCfg.Name, OS: osNode, Runtime: client, CRI: criSvc, Kubelet: kubelet,
		})
	}
	c := &Cluster{
		Engine:  eng,
		API:     api,
		Nodes:   nodes,
		Metrics: NewMetricsServer(nodes),
	}
	c.Scheduler = NewScheduler(cfg.SchedulerConfig, api, eng, nodes)
	return c, nil
}

// DeployOptions shape a batch pod deployment.
type DeployOptions struct {
	NamePrefix       string
	RuntimeClassName string
	Image            string
	Replicas         int
	Args             []string
	Env              []string
	// ArtifactHints steer placement toward nodes already holding these
	// shared artifacts (see PodSpec.ArtifactHints).
	ArtifactHints []string
}

// Deploy creates Replicas single-container pods (the paper's unit: one
// container per pod) and returns them.
func (c *Cluster) Deploy(opts DeployOptions) ([]*Pod, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	if opts.NamePrefix == "" {
		opts.NamePrefix = "bench"
	}
	pods := make([]*Pod, 0, opts.Replicas)
	for i := 0; i < opts.Replicas; i++ {
		c.podSeq++
		p := &Pod{
			Name:      fmt.Sprintf("%s-%d", opts.NamePrefix, c.podSeq),
			Namespace: "default",
			UID:       fmt.Sprintf("uid-%06d", c.podSeq),
			Spec: PodSpec{
				RuntimeClassName: opts.RuntimeClassName,
				ArtifactHints:    opts.ArtifactHints,
				Containers: []ContainerSpec{{
					Name:  "app",
					Image: opts.Image,
					Args:  opts.Args,
					Env:   opts.Env,
				}},
			},
			Status: PodStatus{CreatedAt: c.Engine.Now()},
		}
		if err := c.API.CreatePod(p); err != nil {
			return nil, err
		}
		pods = append(pods, p)
	}
	return pods, nil
}

// SetObserver wires telemetry into every node's kubelet (pod gauges,
// started/failed counters, node-memory gauges). Pass nil to disable (the
// default).
func (c *Cluster) SetObserver(t *obs.Telemetry) {
	for _, n := range c.Nodes {
		n.Kubelet.SetObserver(t)
	}
}

// Node returns the named worker node, or nil.
func (c *Cluster) Node(name string) *WorkerNode { return c.nodeByName(name) }

// FailNode marks a node dead: the scheduler stops binding to it, its kubelet
// refuses new pods, and every pod already bound there flips to Failed with
// the node named in the reason. Idempotent; unknown names are an error.
func (c *Cluster) FailNode(name string) error {
	node := c.nodeByName(name)
	if node == nil {
		return fmt.Errorf("k8s: FailNode: unknown node %q", name)
	}
	if !node.Alive() {
		return nil
	}
	node.Fail()
	c.API.Record("NodeFailed", name, "node marked down")
	for _, p := range c.API.Pods() {
		if p.Spec.NodeName != name {
			continue
		}
		if p.Status.Phase == PodScheduled || p.Status.Phase == PodRunning {
			p.Status.Phase = PodFailed
			p.Status.Message = "node " + name + " failed"
			c.API.Record("PodFailed", p.Namespace+"/"+p.Name, p.Status.Message)
			c.API.UpdatePod(p)
		}
	}
	return nil
}

// Run drives the simulation until quiescent and returns the final time.
func (c *Cluster) Run() des.Time { return c.Engine.Run() }

// RunningPods counts pods in phase Running.
func (c *Cluster) RunningPods() int {
	n := 0
	for _, p := range c.API.Pods() {
		if p.Status.Phase == PodRunning {
			n++
		}
	}
	return n
}

// LastStartTime returns the time the last pod's workload began executing:
// the paper's startup-latency endpoint ("until our sample application starts
// executing in the last deployed container").
func (c *Cluster) LastStartTime(pods []*Pod) (des.Time, error) {
	var last des.Time
	for _, p := range pods {
		if p.Status.Phase != PodRunning {
			return 0, fmt.Errorf("k8s: pod %s/%s is %s (%s)", p.Namespace, p.Name, p.Status.Phase, p.Status.Message)
		}
		for _, cs := range p.Status.Containers {
			if cs.StartedAt > last {
				last = cs.StartedAt
			}
		}
	}
	return last, nil
}

// TeardownPods stops and removes the given pods, releasing node resources.
func (c *Cluster) TeardownPods(pods []*Pod) error {
	for _, p := range pods {
		node := c.nodeByName(p.Spec.NodeName)
		if node == nil {
			continue
		}
		sbxID := "sbx-" + p.UID
		if err := node.CRI.StopPodSandbox(sbxID); err != nil {
			return err
		}
		if err := node.CRI.RemovePodSandbox(sbxID); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) nodeByName(name string) *WorkerNode {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

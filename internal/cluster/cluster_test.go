package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/faults"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/workloads"
)

// testDCfg is the dispatcher shape the cluster tests share: queued admission
// with modest concurrency so replica ramps pay visible cold starts.
func testDCfg() serve.DispatcherConfig {
	return serve.DispatcherConfig{
		MaxConcurrency: 2,
		QueueDepth:     1 << 12,
		Policy:         serve.PolicyQueue,
		Export:         "handle",
		Arg:            4,
	}
}

// newTestServing builds a serving cluster with n handler-variant modules
// deployed (none placed — placement is lazy).
func newTestServing(t *testing.T, cfg Config, nmods int) (*Serving, []string) {
	t.Helper()
	if cfg.Dispatcher.Export == "" {
		cfg.Dispatcher = testDCfg()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	modules := make([]string, 0, nmods)
	for i := 0; i < nmods; i++ {
		name := fmt.Sprintf("%s%d", workloads.HandlerVariantPrefix, i)
		bin, err := workloads.Binary(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Deploy(name, bin); err != nil {
			t.Fatal(err)
		}
		modules = append(modules, name)
	}
	return s, modules
}

// drive runs one uniform RunMulti load script against the cluster.
func drive(t *testing.T, s *Serving, modules []string) serve.Report {
	t.Helper()
	rep, err := serve.RunMulti(s.Engine(), s, serve.MultiConfig{
		RatePerSec: 5000,
		Duration:   200 * time.Millisecond,
		Seed:       42,
		Modules:    modules,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// conserve checks the outcome identity over the aggregate stats.
func conserve(t *testing.T, rs serve.RouterStats) {
	t.Helper()
	a := rs.Aggregate
	if a.Submitted != a.Completed+a.Rejected+a.Expired+a.Failed {
		t.Fatalf("conservation: submitted %d != completed %d + rejected %d + expired %d + failed %d",
			a.Submitted, a.Completed, a.Rejected, a.Expired, a.Failed)
	}
}

// TestLocalityBeatsSpread is the tentpole's core claim at unit scale: on a
// 4-node cluster, locality placement holds fewer shared-artifact copies and
// pays fewer cold starts than blind spread, at equal completed work.
func TestLocalityBeatsSpread(t *testing.T) {
	run := func(p Policy) (*Serving, serve.Report) {
		// Pools start cold (PoolSize 0); the armed autoscaler warms each
		// replica once its queue builds, so a replica pays cold starts only
		// during its ramp — the per-node ramp tax spread placement multiplies.
		s, modules := newTestServing(t, Config{
			Nodes:   4,
			Profile: engine.WAMR,
			Policy:  p,
			Autoscale: AutoscaleConfig{
				Interval:    5 * time.Millisecond,
				QueueHigh:   4,
				MaxPoolSize: 8,
				ShrinkAfter: 1 << 20, // no shrink: this test isolates the ramp
			},
		}, 6)
		s.Arm(10 * time.Second)
		rep := drive(t, s, modules)
		return s, rep
	}
	loc, locRep := run(PolicyLocality)
	spr, sprRep := run(PolicySpread)

	if locRep.Offered != sprRep.Offered {
		t.Fatalf("offered diverged: locality %d, spread %d", locRep.Offered, sprRep.Offered)
	}
	conserve(t, loc.Stats())
	conserve(t, spr.Stats())
	if c := loc.Stats().Aggregate.Completed; c == 0 {
		t.Fatal("locality completed nothing")
	}

	locBytes, locCopies := loc.SharedArtifactBytes()
	sprBytes, sprCopies := spr.SharedArtifactBytes()
	if locCopies >= sprCopies {
		t.Fatalf("artifact copies: locality %d >= spread %d", locCopies, sprCopies)
	}
	if locBytes >= sprBytes {
		t.Fatalf("shared artifact bytes: locality %d >= spread %d", locBytes, sprBytes)
	}
	if lc, sc := loc.ColdStarts(), spr.ColdStarts(); lc == 0 || lc >= sc {
		t.Fatalf("cold starts: locality %d, spread %d — want 0 < locality < spread", lc, sc)
	}
	if placed := spr.ScaleStats().Placed; placed != 24 {
		t.Fatalf("spread placed %d replicas, want 24", placed)
	}
	if placed := loc.ScaleStats().Placed; placed != 6 {
		t.Fatalf("locality placed %d replicas, want 6", placed)
	}
}

// TestFailoverDrainRePlaceReRoute: killing the hosting node mid-run drains
// its in-flight work, re-places the module on the survivor, and re-routes
// the tail of the traffic — with the outcome identity intact across the
// handoff.
func TestFailoverDrainRePlaceReRoute(t *testing.T) {
	s, modules := newTestServing(t, Config{Nodes: 2, Profile: engine.WAMR}, 1)
	sim := s.Engine()
	m := modules[0]

	var submitErrs int
	for i := 0; i < 400; i++ {
		at := des.Time(i) * des.Time(100*time.Microsecond) // 40ms of arrivals
		sim.At(at, func() {
			if err := s.Submit(m, 0, nil); err != nil {
				submitErrs++
			}
		})
	}
	sim.At(des.Time(time.Millisecond), func() {
		nodes := s.ReplicaNodes(m)
		if len(nodes) != 1 || nodes[0] != "worker-0" {
			t.Errorf("before failure: replica on %v, want [worker-0]", nodes)
		}
	})
	sim.At(des.Time(20*time.Millisecond), func() {
		if err := s.FailNode(0); err != nil {
			t.Errorf("FailNode: %v", err)
		}
	})
	sim.Run()

	if submitErrs != 0 {
		t.Fatalf("%d submissions were refused", submitErrs)
	}
	if s.NodeAlive(0) || !s.NodeAlive(1) || s.LiveNodes() != 1 {
		t.Fatal("node liveness not reflecting the failure")
	}
	if nodes := s.ReplicaNodes(m); len(nodes) != 1 || nodes[0] != "worker-1" {
		t.Fatalf("after failure: replica on %v, want [worker-1]", nodes)
	}
	sc := s.ScaleStats()
	if sc.RePlaced != 1 || sc.Placed != 2 {
		t.Fatalf("placements = %+v, want Placed 2 with RePlaced 1", sc)
	}
	rs := s.Stats()
	conserve(t, rs)
	if rs.Aggregate.Submitted != 400 {
		t.Fatalf("submitted %d, want all 400 (none lost across failover)", rs.Aggregate.Submitted)
	}
	routed := s.RoutedByNode()
	if routed[0] == 0 || routed[1] == 0 {
		t.Fatalf("routed by node = %v, want both nodes to have served", routed)
	}
	if routed[0]+routed[1] != 400 {
		t.Fatalf("routed %d + %d != 400", routed[0], routed[1])
	}
	if !s.Quiesced() {
		t.Fatal("routers not quiescent after run")
	}
	// A second failure killing the last node leaves nothing to serve on.
	if err := s.FailNode(1); err != nil {
		t.Logf("FailNode(1): %v (no survivor to re-place on)", err)
	}
	if err := s.Submit(m, 0, nil); !errors.Is(err, ErrNoLiveNode) {
		t.Fatalf("submit on dead cluster: err = %v, want ErrNoLiveNode", err)
	}
}

// TestAutoscalerGrowsAndShrinks: a burst builds queues, the autoscaler
// doubles the hot replica's pool; once traffic stops, consecutive idle
// ticks shrink it back down.
func TestAutoscalerGrowsAndShrinks(t *testing.T) {
	dcfg := testDCfg()
	dcfg.MaxConcurrency = 1
	s, modules := newTestServing(t, Config{
		Nodes:      1,
		Profile:    engine.WAMR,
		PoolSize:   1, // pre-warmed: service time is warm-path, not a 2.6s cold ramp
		Dispatcher: dcfg,
		Autoscale: AutoscaleConfig{
			Interval:    5 * time.Millisecond,
			QueueHigh:   4,
			P99High:     time.Nanosecond, // any completed work satisfies the latency signal
			MaxPoolSize: 16,
			ShrinkAfter: 2,
		},
		Telemetry: obs.New(obs.Config{}),
	}, 1)
	sim := s.Engine()
	m := modules[0]
	s.Arm(500 * time.Millisecond)
	for i := 0; i < 300; i++ {
		at := des.Time(i) * des.Time(50*time.Microsecond) // 15ms burst
		sim.At(at, func() {
			if err := s.Submit(m, 0, nil); err != nil {
				t.Errorf("submit: %v", err)
			}
		})
	}
	sim.Run()

	sc := s.ScaleStats()
	if sc.Ups == 0 {
		t.Fatal("autoscaler never grew under a queue burst")
	}
	if sc.Downs == 0 {
		t.Fatal("autoscaler never shrank after idle")
	}
	conserve(t, s.Stats())
}

// TestLocalitySpill: with SpillQueue set, a loaded module overflows onto a
// second node instead of queueing forever behind one replica.
func TestLocalitySpill(t *testing.T) {
	dcfg := testDCfg()
	dcfg.MaxConcurrency = 1
	s, modules := newTestServing(t, Config{
		Nodes:      2,
		Profile:    engine.WAMR,
		Dispatcher: dcfg,
		Autoscale:  AutoscaleConfig{SpillQueue: 2},
	}, 1)
	sim := s.Engine()
	m := modules[0]
	for i := 0; i < 50; i++ {
		at := des.Time(i) * des.Time(10*time.Microsecond)
		sim.At(at, func() {
			if err := s.Submit(m, 0, nil); err != nil {
				t.Errorf("submit: %v", err)
			}
		})
	}
	sim.Run()

	if sp := s.ScaleStats().Spills; sp == 0 {
		t.Fatal("no spill despite a saturated replica")
	}
	if nodes := s.ReplicaNodes(m); len(nodes) != 2 {
		t.Fatalf("replica nodes = %v, want both", nodes)
	}
	conserve(t, s.Stats())
}

// TestClusterDeterminism: the same scenario — Zipf traffic, a pressure
// episode, a node death — replays to identical outcome stats, routing
// counts, and artifact accounting.
func TestClusterDeterminism(t *testing.T) {
	type fingerprint struct {
		stats  serve.RouterStats
		routed []int64
		bytes  int64
		copies int
		cold   int64
		scale  ScaleStats
	}
	run := func() fingerprint {
		s, modules := newTestServing(t, Config{Nodes: 3, Profile: engine.WAMR}, 4)
		in := faults.New(faults.Config{
			Seed:        7,
			TrapRate:    0.01,
			PressureAt:  []time.Duration{30 * time.Millisecond},
			NodeDeathAt: []time.Duration{60 * time.Millisecond},
		})
		s.SetFaultInjector(in)
		in.ArmPressure(s.Engine(), func() { s.MemoryPressure(0) })
		in.ArmNodeDeath(s.Engine(), func(int) {
			if err := s.FailNode(0); err != nil {
				t.Errorf("FailNode: %v", err)
			}
		})
		rep, err := serve.RunMulti(s.Engine(), s, serve.MultiConfig{
			RatePerSec: 3000,
			Duration:   100 * time.Millisecond,
			Seed:       11,
			Modules:    modules,
			ZipfS:      1.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Offered == 0 {
			t.Fatal("no load generated")
		}
		conserve(t, s.Stats())
		bytes, copies := s.SharedArtifactBytes()
		return fingerprint{
			stats:  s.Stats(),
			routed: s.RoutedByNode(),
			bytes:  bytes,
			copies: copies,
			cold:   s.ColdStarts(),
			scale:  s.ScaleStats(),
		}
	}
	a, b := run(), run()
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("replay diverged:\n run 1: %+v\n run 2: %+v", a, b)
	}
	if a.scale.RePlaced == 0 {
		t.Fatal("node death re-placed nothing")
	}
}

// TestDeployValidation covers the registration edges.
func TestDeployValidation(t *testing.T) {
	s, modules := newTestServing(t, Config{Nodes: 1, Profile: engine.WAMR}, 1)
	bin, err := workloads.Binary(modules[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(modules[0], bin); err == nil {
		t.Fatal("duplicate deploy accepted")
	}
	if err := s.Submit("nope", 0, nil); !errors.Is(err, ErrUnknownModule) {
		t.Fatalf("unknown module: err = %v, want ErrUnknownModule", err)
	}
	if err := s.FailNode(9); err == nil {
		t.Fatal("FailNode out of range accepted")
	}
	if got := s.Modules(); len(got) != 1 || got[0] != modules[0] {
		t.Fatalf("Modules() = %v", got)
	}
}

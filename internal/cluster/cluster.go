// Package cluster is the cluster-level serving tier: it spreads invokes
// across per-node serve.Routers on a simulated multi-node Kubernetes
// cluster, scales each replica's warm pool up on queue depth or windowed p99
// (and down on idle), and places module replicas by artifact locality — a
// node already holding the module's shared wasm-code:/wasm-data: images is
// preferred over an empty one, because the paper's memory win (one shared
// artifact copy per node) and the cold-start win (a warm compile cache)
// both compound only when replicas of a module stack on the same nodes.
// Node death and memory-pressure episodes from internal/faults drive the
// failover path end to end: dead nodes drain their in-flight work, lost
// replicas are re-placed on survivors, and subsequent requests re-route.
package cluster

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/faults"
	"wasmcontainers/internal/k8s"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/obs/tsdb"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/wasm/cache"
)

// ErrNoLiveNode refuses work when every node has failed.
var ErrNoLiveNode = errors.New("cluster: no live node")

// ErrUnknownModule mirrors serve.ErrUnknownModule for undeployed keys.
var ErrUnknownModule = serve.ErrUnknownModule

// Policy selects the placement strategy.
type Policy int

const (
	// PolicyLocality (default) routes a module's traffic to nodes already
	// hosting it, placing a new replica only for the first request or when
	// every hosting replica's queue passes Autoscale.SpillQueue. Nodes are
	// scored by resident shared artifacts, free memory as tiebreak.
	PolicyLocality Policy = iota
	// PolicySpread is the blind round-robin baseline the ablation measures
	// against: every live node ends up hosting every module, paying one
	// artifact copy and one cold ramp per node.
	PolicySpread
)

// String names the policy for experiment tables.
func (p Policy) String() string {
	if p == PolicySpread {
		return "spread"
	}
	return "locality"
}

// AutoscaleConfig shapes the horizontal autoscaler.
type AutoscaleConfig struct {
	// Interval is the evaluation tick on the DES clock; <= 0 disables the
	// autoscaler entirely (pools stay at Config.PoolSize).
	Interval time.Duration
	// QueueHigh grows a replica's pool (doubling, capped at MaxPoolSize)
	// when its queue depth reaches this at a tick. 0 means 8.
	QueueHigh int
	// P99High also grows loaded pools when the windowed p99 dispatch latency
	// (from the tsdb sampling dispatch_latency_ns) reaches this; 0 disables
	// the latency signal. Requires Config.Telemetry.
	P99High time.Duration
	// MaxPoolSize caps growth. 0 means 32.
	MaxPoolSize int
	// MinPoolSize floors shrink; 0 shrinks idle replicas back to cold-only.
	MinPoolSize int
	// ShrinkAfter halves an idle replica's pool after this many consecutive
	// idle ticks. 0 means 3.
	ShrinkAfter int
	// SpillQueue lets locality placement spill a module onto one more node
	// when every hosting replica's queue is at least this deep; 0 never
	// spills.
	SpillQueue int
	// MinFreeBytes stops pool growth on a node whose metrics-server
	// available-memory reading has dropped below this floor. 0 means 64 MiB.
	MinFreeBytes int64
}

// Config shapes one serving cluster.
type Config struct {
	// Nodes is the worker-node count; <= 0 means 1.
	Nodes int
	// Profile is the engine profile every replica runs.
	Profile engine.Profile
	// Policy selects locality (default) or spread placement.
	Policy Policy
	// PoolSize is a new replica's initial warm size. 0 (the usual setting)
	// starts cold and lets the autoscaler warm it on demand.
	PoolSize int
	// IdleTTL is each replica pool's idle eviction TTL; 0 keeps instances.
	IdleTTL time.Duration
	// Dispatcher configures every replica's dispatcher (admission, export,
	// retries...).
	Dispatcher serve.DispatcherConfig
	// Autoscale configures the autoscaler.
	Autoscale AutoscaleConfig
	// Telemetry enables node-labeled cluster metrics and the tsdb p99
	// signal; nil disables observation.
	Telemetry *obs.Telemetry
}

// ScaleStats counts control-loop decisions.
type ScaleStats struct {
	// Ups / Downs count pool grow / shrink actions.
	Ups, Downs int
	// Placed counts replica placements; RePlaced is the subset forced by
	// node failure; Spills the subset forced by SpillQueue overflow.
	Placed, RePlaced, Spills int
}

// nodeState is one worker node's serving surface: its router, its shared
// compile cache (replicas of a module on one node compile once), and its
// liveness. alive is only touched on the DES goroutine.
type nodeState struct {
	idx    int
	w      *k8s.WorkerNode
	router *serve.Router
	cache  *cache.Cache
	alive  bool
	routed int64

	obsRouted   *obs.Counter
	obsReplicas *obs.Gauge
	obsAlive    *obs.Gauge
}

// moduleState is one deployed module and its replicas. all keeps retired
// (dead-node) replicas so outcome stats stay conserved across failover.
type moduleState struct {
	name      string
	bin       []byte
	artifacts []string
	live      []*replica
	all       []*replica
}

// on returns this module's live replica on n, or nil.
func (m *moduleState) on(n *nodeState) *replica {
	for _, r := range m.live {
		if r.n == n {
			return r
		}
	}
	return nil
}

// replica is one module instance on one node: engine, warm pool, dispatcher,
// and the attachment charging it to the node.
type replica struct {
	m         *moduleState
	n         *nodeState
	eng       *engine.Engine
	pool      *serve.Pool
	disp      *serve.Dispatcher
	att       *k8s.WarmPoolAttachment
	idleTicks int
	obsRouted *obs.Counter
}

// Serving is the cluster front door. All request-path and control-loop
// methods run on the one goroutine driving the DES engine, like the
// dispatcher they feed.
type Serving struct {
	eng      *des.Engine
	cfg      Config
	K        *k8s.Cluster
	nodes    []*nodeState
	modules  map[string]*moduleState
	order    []string
	db       *tsdb.DB
	injector *faults.Injector
	rr       int
	attSeq   int
	scale    ScaleStats

	obsScaleUps   *obs.Counter
	obsScaleDowns *obs.Counter
	obsRePlaced   *obs.Counter
}

// New builds an idle serving cluster: nodes up, no modules deployed.
func New(cfg Config) (*Serving, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Autoscale.QueueHigh <= 0 {
		cfg.Autoscale.QueueHigh = 8
	}
	if cfg.Autoscale.MaxPoolSize <= 0 {
		cfg.Autoscale.MaxPoolSize = 32
	}
	if cfg.Autoscale.ShrinkAfter <= 0 {
		cfg.Autoscale.ShrinkAfter = 3
	}
	if cfg.Autoscale.MinFreeBytes <= 0 {
		cfg.Autoscale.MinFreeBytes = 64 << 20
	}
	kc := k8s.DefaultClusterConfig()
	kc.NumNodes = cfg.Nodes
	k, err := k8s.NewCluster(kc)
	if err != nil {
		return nil, err
	}
	s := &Serving{
		eng:     k.Engine,
		cfg:     cfg,
		K:       k,
		modules: map[string]*moduleState{},
	}
	tele := cfg.Telemetry
	k.SetObserver(tele)
	for i, w := range k.Nodes {
		n := &nodeState{
			idx:    i,
			w:      w,
			router: serve.NewRouter(s.eng, serve.RouterConfig{}),
			cache:  cache.New(engine.DefaultModuleCacheBytes),
			alive:  true,
		}
		if tele != nil {
			n.router.SetObserver(tele)
			n.obsRouted = tele.Counter(obs.Labeled("cluster_routed_total", "node", w.Name))
			n.obsReplicas = tele.Gauge(obs.Labeled("cluster_replicas", "node", w.Name))
			n.obsAlive = tele.Gauge(obs.Labeled("cluster_node_alive", "node", w.Name))
			n.obsAlive.Set(1)
		}
		s.nodes = append(s.nodes, n)
	}
	if tele != nil {
		s.obsScaleUps = tele.Counter("cluster_scale_ups_total")
		s.obsScaleDowns = tele.Counter("cluster_scale_downs_total")
		s.obsRePlaced = tele.Counter("cluster_replaced_total")
		if cfg.Autoscale.Interval > 0 && cfg.Autoscale.P99High > 0 {
			s.db = tsdb.New(tsdb.Config{Interval: cfg.Autoscale.Interval})
			s.db.TrackHistogram("dispatch_latency_ns", tele.Histogram("dispatch_latency_ns"))
		}
	}
	return s, nil
}

// Engine exposes the DES engine driving the cluster.
func (s *Serving) Engine() *des.Engine { return s.eng }

// Run drives the simulation until quiescent.
func (s *Serving) Run() des.Time { return s.eng.Run() }

// SetFaultInjector wires in onto every replica engine created from now on.
func (s *Serving) SetFaultInjector(in *faults.Injector) { s.injector = in }

// Deploy registers a module for serving. Placement is lazy: the first routed
// request creates the first replica.
func (s *Serving) Deploy(name string, bin []byte) error {
	if _, dup := s.modules[name]; dup {
		return fmt.Errorf("cluster: module %q already deployed", name)
	}
	s.modules[name] = &moduleState{name: name, bin: bin}
	s.order = append(s.order, name)
	return nil
}

// Modules lists deployed module names in deploy order.
func (s *Serving) Modules() []string { return append([]string(nil), s.order...) }

// Submit routes one request to the named module, placing a replica if the
// module has none reachable. Implements serve.MultiTarget.
func (s *Serving) Submit(key string, tid int64, done func(serve.RequestResult)) error {
	m, ok := s.modules[key]
	if !ok {
		return ErrUnknownModule
	}
	r, err := s.route(m)
	if err != nil {
		return err
	}
	r.n.routed++
	r.n.obsRouted.Inc()
	r.obsRouted.Inc()
	return r.n.router.Submit(key, tid, done)
}

// route picks (or places) the replica serving this request.
func (s *Serving) route(m *moduleState) (*replica, error) {
	if s.cfg.Policy == PolicySpread {
		// Blind round-robin over live nodes: every node ends up hosting its
		// own replica of every module — one artifact copy and one cold ramp
		// per node, the baseline the locality gate measures against.
		for range s.nodes {
			n := s.nodes[s.rr%len(s.nodes)]
			s.rr++
			if !n.alive {
				continue
			}
			if r := m.on(n); r != nil {
				return r, nil
			}
			return s.place(m, n, false)
		}
		return nil, ErrNoLiveNode
	}
	var best *replica
	bestLoad := 0
	for _, r := range m.live {
		load := r.disp.QueueLen() + r.disp.InFlight()
		if best == nil || load < bestLoad {
			best, bestLoad = r, load
		}
	}
	if best == nil {
		n := s.bestNode(m, false)
		if n == nil {
			return nil, ErrNoLiveNode
		}
		return s.place(m, n, false)
	}
	if sp := s.cfg.Autoscale.SpillQueue; sp > 0 && bestLoad >= sp {
		if n := s.bestNode(m, true); n != nil {
			s.scale.Spills++
			return s.place(m, n, false)
		}
	}
	return best, nil
}

// bestNode scores live nodes for m: resident shared artifacts first (cache
// locality beats spreading), free memory as capacity tiebreak, then index
// for determinism. excludeHosting skips nodes already running a replica
// (the spill path wants a fresh node).
func (s *Serving) bestNode(m *moduleState, excludeHosting bool) *nodeState {
	var best *nodeState
	bestScore, bestFree := -1, int64(-1)
	for _, n := range s.nodes {
		if !n.alive {
			continue
		}
		if excludeHosting && m.on(n) != nil {
			continue
		}
		score := 0
		for _, art := range m.artifacts {
			if n.w.OS.HasSharedLib(art) {
				score++
			}
		}
		free := n.w.OS.Free().AvailableBytes
		if score > bestScore || (score == bestScore && free > bestFree) {
			best, bestScore, bestFree = n, score, free
		}
	}
	return best
}

// place creates m's replica on n: compile through the node's shared cache,
// pool, dispatcher, router shard, and the attachment that splits the pool's
// charge into node-shared artifacts (SyncShared, one copy per node) and the
// private remainder.
func (s *Serving) place(m *moduleState, n *nodeState, replaced bool) (*replica, error) {
	eng := engine.NewWithCache(s.cfg.Profile, n.cache)
	if s.cfg.Telemetry != nil {
		eng.SetObserver(s.cfg.Telemetry)
	}
	if s.injector != nil {
		eng.SetFaultInjector(s.injector)
	}
	cm, err := eng.Compile(m.bin)
	if err != nil {
		return nil, err
	}
	pool, err := serve.NewPool(eng, cm, serve.Config{Size: s.cfg.PoolSize, IdleTTL: s.cfg.IdleTTL})
	if err != nil {
		return nil, err
	}
	s.attSeq++
	att, err := n.w.AttachWarmPool(fmt.Sprintf("%s-%d", m.name, s.attSeq))
	if err != nil {
		return nil, err
	}
	att.SetObserver(s.cfg.Telemetry)
	pool.SetMemoryListener(func(total int64) {
		var shared int64
		for _, a := range pool.SharedArtifacts() {
			att.SyncShared(a.Name, a.Bytes)
			shared += a.Bytes
		}
		if total < shared {
			total = shared // a just-published artifact the pool has not charged yet
		}
		att.Sync(total - shared)
	})
	att.SetDrainer(func() int { return pool.DrainIdle(s.eng.Now()) })
	m.artifacts = m.artifacts[:0]
	for _, a := range pool.SharedArtifacts() {
		m.artifacts = append(m.artifacts, a.Name)
	}
	d := serve.NewDispatcher(s.eng, pool, s.cfg.Dispatcher)
	if s.cfg.Telemetry != nil {
		d.SetObserver(s.cfg.Telemetry)
	}
	if err := n.router.Register(m.name, m.name, d); err != nil {
		return nil, err
	}
	r := &replica{m: m, n: n, eng: eng, pool: pool, disp: d, att: att}
	if s.cfg.Telemetry != nil {
		r.obsRouted = s.cfg.Telemetry.Counter(
			obs.Labeled2("cluster_routed_total", "module", m.name, "node", n.w.Name))
	}
	m.live = append(m.live, r)
	m.all = append(m.all, r)
	n.obsReplicas.Set(int64(len(s.replicasOn(n))))
	s.scale.Placed++
	if replaced {
		s.scale.RePlaced++
		s.obsRePlaced.Inc()
	}
	return r, nil
}

// replicasOn lists live replicas hosted by n.
func (s *Serving) replicasOn(n *nodeState) []*replica {
	var out []*replica
	for _, name := range s.order {
		if r := s.modules[name].on(n); r != nil {
			out = append(out, r)
		}
	}
	return out
}

// FailNode kills node idx fail-stop: the k8s node goes down, the node's
// replicas drain (queued and in-flight requests finish, then the attachment
// detaches and the node's memory charge disappears), and every module whose
// last replica died is immediately re-placed on a surviving node so traffic
// re-routes without waiting for the next request.
func (s *Serving) FailNode(idx int) error {
	if idx < 0 || idx >= len(s.nodes) {
		return fmt.Errorf("cluster: FailNode: no node %d", idx)
	}
	n := s.nodes[idx]
	if !n.alive {
		return nil
	}
	n.alive = false
	n.obsAlive.Set(0)
	if err := s.K.FailNode(n.w.Name); err != nil {
		return err
	}
	var lost []*moduleState
	for _, name := range s.order {
		m := s.modules[name]
		r := m.on(n)
		if r == nil {
			continue
		}
		for i, lr := range m.live {
			if lr == r {
				m.live = append(m.live[:i], m.live[i+1:]...)
				break
			}
		}
		s.drainReplica(r)
		if len(m.live) == 0 {
			lost = append(lost, m)
		}
	}
	n.obsReplicas.Set(0)
	for _, m := range lost {
		tgt := s.bestNode(m, false)
		if tgt == nil {
			return ErrNoLiveNode
		}
		if _, err := s.place(m, tgt, true); err != nil {
			return err
		}
	}
	return nil
}

// drainReplica retires one replica with connection-drain semantics: no new
// work (the router no longer selects it), queued and in-flight requests run
// to completion, then the pool's charge leaves the node.
func (s *Serving) drainReplica(r *replica) {
	r.disp.SetDraining(true)
	pool, att, disp := r.pool, r.att, r.disp
	finish := func() {
		pool.SetMemoryListener(nil)
		att.SetDrainer(nil)
		att.Detach()
	}
	if disp.Quiesced() {
		finish()
		return
	}
	disp.SetQuiesceHook(func() {
		disp.SetQuiesceHook(nil)
		finish()
	})
}

// MemoryPressure fires a memory-pressure episode on node idx, draining every
// attached pool's idle instances, and returns the eviction count.
func (s *Serving) MemoryPressure(idx int) int {
	if idx < 0 || idx >= len(s.nodes) {
		return 0
	}
	return s.nodes[idx].w.MemoryPressure()
}

// NodeCount is the configured node count, dead nodes included.
func (s *Serving) NodeCount() int { return len(s.nodes) }

// LiveNodes counts nodes still up.
func (s *Serving) LiveNodes() int {
	live := 0
	for _, n := range s.nodes {
		if n.alive {
			live++
		}
	}
	return live
}

// NodeAlive reports node idx's liveness.
func (s *Serving) NodeAlive(idx int) bool {
	return idx >= 0 && idx < len(s.nodes) && s.nodes[idx].alive
}

// RoutedByNode returns per-node routed-request counts, in node order.
func (s *Serving) RoutedByNode() []int64 {
	out := make([]int64, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = n.routed
	}
	return out
}

// ReplicaNodes returns the node names hosting live replicas of module, in
// node order (empty when the module is unknown or unplaced).
func (s *Serving) ReplicaNodes(module string) []string {
	m, ok := s.modules[module]
	if !ok {
		return nil
	}
	var out []string
	for _, n := range s.nodes {
		if m.on(n) != nil {
			out = append(out, n.w.Name)
		}
	}
	return out
}

// Arm starts the autoscaler tick chain (and the tsdb window clock when the
// p99 signal is configured) until the given horizon of simulated time. Call
// before Run / the load generator; without it pools stay at Config.PoolSize.
func (s *Serving) Arm(until time.Duration) {
	a := s.cfg.Autoscale
	if a.Interval <= 0 {
		return
	}
	if s.db != nil {
		s.db.ArmDES(s.eng, int64(until))
	}
	var tick func()
	tick = func() {
		s.tick()
		if time.Duration(s.eng.Now())+a.Interval <= until {
			s.eng.After(a.Interval, tick)
		}
	}
	s.eng.After(a.Interval, tick)
}

// tick is one autoscaler evaluation: per live replica, grow the pool on
// queue depth or windowed p99 (skipping nodes the metrics-server reports
// memory-starved), shrink it after ShrinkAfter consecutive idle ticks.
func (s *Serving) tick() {
	a := s.cfg.Autoscale
	var p99 time.Duration
	if s.db != nil && a.P99High > 0 {
		p99 = time.Duration(s.db.QuantileOver("dispatch_latency_ns", 0.99, 2*a.Interval))
	}
	free := s.K.Metrics.NodeFree()
	for _, name := range s.order {
		for _, r := range s.modules[name].live {
			q := r.disp.QueueLen()
			target := r.pool.TargetSize()
			hot := q >= a.QueueHigh || (a.P99High > 0 && p99 >= a.P99High && q > 0)
			switch {
			case hot:
				r.idleTicks = 0
				if free[r.n.idx].AvailableBytes < a.MinFreeBytes {
					continue // the node can't carry more warm instances
				}
				next := target * 2
				if next < 1 {
					next = 1
				}
				if next > a.MaxPoolSize {
					next = a.MaxPoolSize
				}
				if next > target {
					if _, err := r.pool.Resize(next); err == nil {
						s.scale.Ups++
						s.obsScaleUps.Inc()
					}
				}
			case q == 0 && r.disp.InFlight() == 0:
				r.idleTicks++
				if r.idleTicks >= a.ShrinkAfter && target > a.MinPoolSize {
					next := target / 2
					if next < a.MinPoolSize {
						next = a.MinPoolSize
					}
					if _, err := r.pool.Resize(next); err == nil {
						s.scale.Downs++
						s.obsScaleDowns.Inc()
					}
					r.idleTicks = 0
				}
			default:
				r.idleTicks = 0
			}
		}
	}
}

// ScaleStats snapshots the control-loop counters.
func (s *Serving) ScaleStats() ScaleStats { return s.scale }

// ColdStarts sums dry-pool fallback instantiations over every replica ever
// placed (retired ones included): the cluster-wide cold-start bill.
func (s *Serving) ColdStarts() int64 {
	var total int64
	for _, name := range s.order {
		for _, r := range s.modules[name].all {
			total += r.pool.Stats().ColdStarts
		}
	}
	return total
}

// SharedArtifactBytes sums the wasm-* shared artifacts resident on live
// nodes and how many copies exist cluster-wide: the number locality
// placement minimizes (spread pays one copy of every artifact per node).
func (s *Serving) SharedArtifactBytes() (bytes int64, copies int) {
	for _, n := range s.nodes {
		if !n.alive {
			continue
		}
		for _, lib := range n.w.OS.SharedLibs() {
			if strings.HasPrefix(lib.Name, "wasm-") {
				bytes += lib.Bytes
				copies++
			}
		}
	}
	return bytes, copies
}

// Quiesced reports whether every node's router holds no work.
func (s *Serving) Quiesced() bool {
	for _, n := range s.nodes {
		if !n.router.Quiesced() {
			return false
		}
	}
	return true
}

// Stats aggregates one ShardStats per module over every replica it ever had
// (live and retired), so the conservation identity spans failover.
// Implements serve.MultiTarget.
func (s *Serving) Stats() serve.RouterStats {
	out := serve.RouterStats{Mode: serve.RouterSharded}
	for _, name := range s.order {
		m := s.modules[name]
		var st serve.DispatcherStats
		q, inf := 0, 0
		for _, r := range m.all {
			d := r.disp.Stats()
			st.Submitted += d.Submitted
			st.Completed += d.Completed
			st.Rejected += d.Rejected
			st.Expired += d.Expired
			st.Failed += d.Failed
			st.Retries += d.Retries
			st.TimedOut += d.TimedOut
			st.BreakerOpens += d.BreakerOpens
			st.BreakerShortCircuits += d.BreakerShortCircuits
			q += r.disp.QueueLen()
			inf += r.disp.InFlight()
		}
		out.Shards = append(out.Shards, serve.ShardStats{
			Key: name, Module: name, Stats: st, QueueLen: q, InFlight: inf,
		})
		out.Aggregate.Submitted += st.Submitted
		out.Aggregate.Completed += st.Completed
		out.Aggregate.Rejected += st.Rejected
		out.Aggregate.Expired += st.Expired
		out.Aggregate.Failed += st.Failed
		out.Aggregate.Retries += st.Retries
		out.Aggregate.TimedOut += st.TimedOut
		out.Aggregate.BreakerOpens += st.BreakerOpens
		out.Aggregate.BreakerShortCircuits += st.BreakerShortCircuits
	}
	for _, n := range s.nodes {
		rs := n.router.Stats()
		out.Batches += rs.Batches
		out.BatchedRequests += rs.BatchedRequests
		if rs.MaxBatch > out.MaxBatch {
			out.MaxBatch = rs.MaxBatch
		}
	}
	return out
}

package des

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.At(30, func() { order = append(order, 3) })
	eng.At(10, func() { order = append(order, 1) })
	eng.At(20, func() { order = append(order, 2) })
	eng.At(10, func() { order = append(order, 11) }) // same time: schedule order
	end := eng.Run()
	if end != 30 {
		t.Fatalf("end time = %d, want 30", end)
	}
	want := []int{1, 11, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	eng.After(5*time.Nanosecond, func() {
		fired = append(fired, eng.Now())
		eng.After(7*time.Nanosecond, func() {
			fired = append(fired, eng.Now())
		})
	})
	eng.Run()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 12 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestPastEventsClamp(t *testing.T) {
	eng := NewEngine()
	eng.At(100, func() {
		eng.At(50, func() {
			if eng.Now() != 100 {
				t.Errorf("past event ran at %d, want clamped to 100", eng.Now())
			}
		})
	})
	eng.Run()
}

func TestCPUPoolSingleCore(t *testing.T) {
	eng := NewEngine()
	pool := NewCPUPool(eng, 1)
	var done []Time
	for i := 0; i < 3; i++ {
		pool.Submit(10*time.Nanosecond, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	// Serialized on one core: 10, 20, 30.
	if len(done) != 3 || done[0] != 10 || done[1] != 20 || done[2] != 30 {
		t.Fatalf("done = %v", done)
	}
}

func TestCPUPoolParallelism(t *testing.T) {
	eng := NewEngine()
	pool := NewCPUPool(eng, 4)
	var finishes []Time
	for i := 0; i < 8; i++ {
		pool.Submit(10*time.Nanosecond, func() { finishes = append(finishes, eng.Now()) })
	}
	end := eng.Run()
	// 8 tasks × 10ns on 4 cores = 2 waves: all finish by t=20.
	if end != 20 {
		t.Fatalf("makespan = %d, want 20", end)
	}
	first := 0
	for _, f := range finishes {
		if f == 10 {
			first++
		}
	}
	if first != 4 {
		t.Fatalf("%d tasks finished in the first wave, want 4", first)
	}
	if u := pool.Utilization(end); u != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestResourceContention(t *testing.T) {
	eng := NewEngine()
	res := NewResource(eng)
	var finishes []Time
	// Three immediate acquisitions of 10ns each serialize.
	for i := 0; i < 3; i++ {
		res.Acquire(10*time.Nanosecond, func() { finishes = append(finishes, eng.Now()) })
	}
	eng.Run()
	if len(finishes) != 3 || finishes[2] != 30 {
		t.Fatalf("finishes = %v", finishes)
	}
	if res.Waits != 10+20 {
		t.Fatalf("total waits = %d, want 30", res.Waits)
	}
	if res.Acquisitions != 3 {
		t.Fatalf("acquisitions = %d", res.Acquisitions)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() []Time {
		eng := NewEngine()
		pool := NewCPUPool(eng, 3)
		res := NewResource(eng)
		var log []Time
		for i := 0; i < 10; i++ {
			d := time.Duration(3+i%4) * time.Nanosecond
			pool.Submit(d, func() {
				res.Acquire(2*time.Nanosecond, func() { log = append(log, eng.Now()) })
			})
		}
		eng.Run()
		return log
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestStepAndPending(t *testing.T) {
	eng := NewEngine()
	if eng.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	fired := 0
	eng.At(5, func() { fired++ })
	eng.At(9, func() { fired++ })
	if eng.Pending() != 2 {
		t.Fatalf("pending = %d", eng.Pending())
	}
	if !eng.Step() || fired != 1 || eng.Now() != 5 {
		t.Fatalf("first step: fired=%d now=%d", fired, eng.Now())
	}
	if !eng.Step() || fired != 2 || eng.Now() != 9 {
		t.Fatalf("second step: fired=%d now=%d", fired, eng.Now())
	}
	if eng.Step() {
		t.Fatal("Step past end returned true")
	}
}

func TestSubmitAtFutureReadyTime(t *testing.T) {
	eng := NewEngine()
	pool := NewCPUPool(eng, 2)
	var done Time
	pool.SubmitAt(100, 10*time.Nanosecond, func() { done = eng.Now() })
	eng.Run()
	if done != 110 {
		t.Fatalf("done at %d, want 110", done)
	}
	if pool.Cores() != 2 {
		t.Fatal("core count")
	}
}

func TestNextAt(t *testing.T) {
	eng := NewEngine()
	if _, ok := eng.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	eng.At(40, func() {})
	eng.At(15, func() {})
	if at, ok := eng.NextAt(); !ok || at != 15 {
		t.Fatalf("NextAt = %d,%v, want 15,true", at, ok)
	}
	// Peeking does not consume: stepping still fires the earliest event.
	if !eng.Step() || eng.Now() != 15 {
		t.Fatalf("Step after NextAt landed at %d, want 15", eng.Now())
	}
	if at, ok := eng.NextAt(); !ok || at != 40 {
		t.Fatalf("NextAt after step = %d,%v, want 40,true", at, ok)
	}
}

// Package des is a deterministic discrete-event simulator used to model
// container startup on a multi-core node: a virtual clock, an event queue,
// an FCFS core pool, and serially-contended resources (locks). All startup
// latency numbers in the benchmark harness come from this engine, so runs
// are exactly reproducible.
package des

import (
	"container/heap"
	"time"
)

// Time is simulated time in nanoseconds since simulation start.
type Time int64

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker preserving schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine drives the simulation.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

// NewEngine creates an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute time t (clamped to now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+Time(d), fn) }

// Run processes events until the queue is empty and returns the final time.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Step processes a single event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// NextAt returns the scheduled time of the earliest pending event, or false
// when the queue is empty. It lets an external run layer (the gateway's
// real-time bridge) pace Step calls against a wall clock instead of draining
// the queue as fast as Run does.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// CPUPool models n identical cores scheduled FCFS. Work submitted to the
// pool starts on the earliest-free core at or after the submission time.
type CPUPool struct {
	eng    *Engine
	freeAt []Time
	// BusyTime accumulates total core-busy nanoseconds (utilization metric).
	BusyTime int64
}

// NewCPUPool creates a pool of n cores.
func NewCPUPool(eng *Engine, n int) *CPUPool {
	return &CPUPool{eng: eng, freeAt: make([]Time, n)}
}

// Cores returns the core count.
func (p *CPUPool) Cores() int { return len(p.freeAt) }

// Submit enqueues cpuTime of work that becomes ready at the current engine
// time; done runs (at the finish time) when the work completes.
func (p *CPUPool) Submit(cpuTime Duration, done func()) {
	p.SubmitAt(p.eng.now, cpuTime, done)
}

// SubmitAt enqueues work that becomes ready at time ready.
func (p *CPUPool) SubmitAt(ready Time, cpuTime Duration, done func()) {
	// Earliest-free core.
	best := 0
	for i, t := range p.freeAt {
		if t < p.freeAt[best] {
			best = i
		}
	}
	start := ready
	if p.freeAt[best] > start {
		start = p.freeAt[best]
	}
	finish := start + Time(cpuTime)
	p.freeAt[best] = finish
	p.BusyTime += int64(cpuTime)
	p.eng.At(finish, done)
}

// Utilization returns mean core utilization over [0, until].
func (p *CPUPool) Utilization(until Time) float64 {
	if until == 0 {
		return 0
	}
	return float64(p.BusyTime) / float64(int64(until)*int64(len(p.freeAt)))
}

// Resource models a serially-held resource (e.g. the containerd task-service
// lock). Acquisitions queue FCFS.
type Resource struct {
	eng    *Engine
	freeAt Time
	// Waits accumulates total queueing delay (contention metric).
	Waits int64
	// Acquisitions counts total acquisitions.
	Acquisitions int64
}

// NewResource creates an uncontended resource.
func NewResource(eng *Engine) *Resource { return &Resource{eng: eng} }

// Acquire schedules done to run after the resource has been held for hold
// nanoseconds, queueing behind earlier holders.
func (r *Resource) Acquire(hold Duration, done func()) {
	start := r.eng.now
	if r.freeAt > start {
		r.Waits += int64(r.freeAt - start)
		start = r.freeAt
	}
	r.freeAt = start + Time(hold)
	r.Acquisitions++
	r.eng.At(r.freeAt, done)
}

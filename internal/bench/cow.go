package bench

import (
	"fmt"
	"time"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/metrics"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/wat"
)

// cowWAT is the copy-on-write ablation workload: a 16-page (1 MiB) linear
// memory — large enough that full-copy resets visibly cost O(memory) — whose
// handler dirties the first n pages per request.
const cowWAT = `
(module
  (memory (export "memory") 16)
  (func (export "handle") (param $n i32) (result i32)
    (local $i i32)
    block $done
      loop $l
        local.get $i
        local.get $n
        i32.ge_u
        br_if $done
        (i32.store (i32.mul (local.get $i) (i32.const 65536)) (i32.add (local.get $i) (i32.const 1)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        br $l
      end
    end
    (memory.size)))
`

// cowTouchPages is how many of the 16 pages each request dirties (12.5%).
const cowTouchPages = 2

// cowReps is how many releases each reset-latency median summarizes.
const cowReps = 128

// cowDensities are the pod counts of the paper's density sweeps.
var cowDensities = []int{10, 100, 400}

// AblationCoW quantifies copy-on-write warm instances for every engine
// profile at the paper's densities. Before this design each warm instance
// held its full linear memory privately plus a same-sized reset snapshot,
// and Release memcpy'd the whole memory; now all instances alias one shared
// baseline image (accounted once per node, like the compiled code), an idle
// instance costs only its engine-side state, and Release copies back just
// the pages the request dirtied. Reset latencies are real host wall-clock
// over the interpreter's actual memory work.
func AblationCoW() (*Table, error) {
	bin, err := wat.CompileToBinary(cowWAT)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Ablation: copy-on-write warm instances, shared baseline image + dirty-page reset",
		Columns: []string{
			"engine", "pods", "baseline (KiB)", "warm KiB/inst (CoW)",
			"warm KiB/inst (snapshot era)", "saved/node (MiB)",
			"reset p50 (us)", "full-restore p50 (us)", "reset speedup",
		},
	}
	for _, p := range engine.Profiles() {
		eng := engine.New(p)
		cm, err := eng.Compile(bin)
		if err != nil {
			return nil, err
		}
		for _, density := range cowDensities {
			pool, err := serve.NewPool(eng, cm, serve.Config{Size: density})
			if err != nil {
				return nil, err
			}
			baseline := pool.SharedBaselineBytes()

			// Per-instance accounted bytes under CoW: total minus the shared
			// artifacts, over the instance count.
			perNew := (pool.MemoryBytes() - pool.SharedCodeBytes() - baseline) / int64(density)
			// The snapshot-era instance privately held its whole linear
			// memory plus a same-sized reset snapshot on top of engine state.
			perOld := perNew + 2*baseline
			saved := int64(density)*(perOld-perNew) - baseline

			// Dirty-page reset latency through the real pool Release path.
			dirty := make([]float64, 0, cowReps)
			for i := 0; i < cowReps; i++ {
				wi, ok := pool.Acquire(0)
				if !ok {
					return nil, fmt.Errorf("cow: pool dry")
				}
				if _, err := wi.Invoke("handle", exec.I32(cowTouchPages)); err != nil {
					return nil, err
				}
				start := time.Now()
				pool.Release(wi, 0)
				dirty = append(dirty, float64(time.Since(start).Nanoseconds())/1e3)
			}
			// Legacy full-memory restore on the same workload.
			inst, err := eng.Instantiate(cm)
			if err != nil {
				return nil, err
			}
			snapshot := inst.MemorySnapshot()
			full := make([]float64, 0, cowReps)
			for i := 0; i < cowReps; i++ {
				if _, err := inst.Invoke("handle", exec.I32(cowTouchPages)); err != nil {
					return nil, err
				}
				start := time.Now()
				inst.ResetMemory(snapshot)
				full = append(full, float64(time.Since(start).Nanoseconds())/1e3)
			}

			ds := metrics.Summarize(dirty)
			fs := metrics.Summarize(full)
			t.Rows = append(t.Rows, []string{
				p.Name,
				fmt.Sprintf("%d", density),
				fmt.Sprintf("%.0f", float64(baseline)/1024),
				fmt.Sprintf("%.0f", float64(perNew)/1024),
				fmt.Sprintf("%.0f", float64(perOld)/1024),
				fmt.Sprintf("%.1f", float64(saved)/(1024*1024)),
				fmt.Sprintf("%.1f", ds.P50),
				fmt.Sprintf("%.1f", fs.P50),
				fmt.Sprintf("%.1fx", fs.P50/ds.P50),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload: 16-page (1 MiB) linear memory, each request dirties %d pages (%.0f%%)",
			cowTouchPages, 100*float64(cowTouchPages)/16),
		"snapshot era = per-instance private linear memory + same-sized reset snapshot (how the pool worked before CoW)",
		"saved/node = instance bytes no longer duplicated, minus the one shared baseline copy the node still holds",
	)
	return t, nil
}

package bench

import (
	"fmt"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/faults"
	"wasmcontainers/internal/k8s"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/workloads"
)

// faultSeed fixes the injector PRNG for every cell so the whole ablation is
// reproducible: same seed, same fault sequence, same counters.
const faultSeed = 42

// FaultMeasurement is one cell of the faults ablation grid.
type FaultMeasurement struct {
	Engine    string
	FaultRate float64
	Resilient bool
	Report    serve.Report
	Faults    faults.Stats
	// PressureEvictions counts warm instances the node reclaimed during the
	// injected memory-pressure episodes.
	PressureEvictions int
}

// resilientDispatcherConfig adds the resilience layer to a baseline serving
// dispatcher config: capped-exponential retries, a per-request timeout, and
// the per-pool circuit breaker.
func resilientDispatcherConfig(cfg serve.DispatcherConfig) serve.DispatcherConfig {
	cfg.MaxRetries = 2
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryBackoffCap = 8 * time.Millisecond
	cfg.RequestTimeout = 500 * time.Millisecond
	cfg.BreakerThreshold = 5
	cfg.BreakerCooldown = 20 * time.Millisecond
	return cfg
}

// MeasureFaultServing runs one chaos serving experiment: the standard warm
// pool on a simulated worker node, with a seeded fault injector arming
// instantiation failures, guest traps, slow cold starts (all at faultRate;
// traps and failures both at or above the acceptance floor when faultRate
// is), and two node memory-pressure episodes that drain warm-pool idle
// instances through the kubelet attachment. The resilient arm turns on
// retries, timeout, and the circuit breaker; the baseline arm serves the
// same faults with the plain dispatcher. The admission identity
// Submitted == Completed + Rejected + Expired + Failed is verified before
// returning — a violation is an error, not a table cell.
func MeasureFaultServing(p engine.Profile, faultRate float64, resilient bool, ratePerSec float64, window time.Duration) (FaultMeasurement, error) {
	cluster, err := k8s.NewCluster(k8s.DefaultClusterConfig())
	if err != nil {
		return FaultMeasurement{}, err
	}
	node := cluster.Nodes[0]
	att, err := node.AttachWarmPool(fmt.Sprintf("%s-faults", p.Name))
	if err != nil {
		return FaultMeasurement{}, err
	}
	defer att.Detach()

	sim := des.NewEngine()
	tele := Telemetry()
	if tr := tele.Tracer(); tr != nil {
		tr.SetClock(func() int64 { return int64(sim.Now()) })
		tr.SetPID(nextRunPID())
	}

	eng := engine.New(p)
	eng.SetObserver(tele)
	att.SetObserver(tele)
	bin, err := workloads.Binary(ServingWorkload)
	if err != nil {
		return FaultMeasurement{}, err
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		return FaultMeasurement{}, err
	}
	const poolSize = 8
	pool, err := serve.NewPool(eng, cm, serve.Config{Size: poolSize, IdleTTL: 2 * time.Second})
	if err != nil {
		return FaultMeasurement{}, err
	}
	pool.SetMemoryListener(att.Sync)
	att.SetDrainer(func() int { return pool.DrainIdle(sim.Now()) })

	// Armed only after pool pre-warming: standby instances must exist so the
	// pressure episodes have something to reclaim, and only request-path work
	// is subjected to faults.
	in := faults.New(faults.Config{
		Seed:                faultSeed,
		InstantiateFailRate: faultRate,
		TrapRate:            faultRate,
		SlowColdRate:        faultRate,
		SlowColdFactor:      4,
		PressureAt:          []time.Duration{window / 3, 2 * window / 3},
	})
	eng.SetFaultInjector(in)
	evictions := 0
	in.ArmPressure(sim, func() { evictions += node.MemoryPressure() })

	cfg := serve.DispatcherConfig{
		MaxConcurrency: poolSize,
		QueueDepth:     64,
		Policy:         serve.PolicyQueue,
		QueueDeadline:  time.Second,
		Export:         "handle",
		Arg:            servingArg,
	}
	if resilient {
		cfg = resilientDispatcherConfig(cfg)
	}
	d := serve.NewDispatcher(sim, pool, cfg)
	d.SetObserver(tele)
	rep := serve.Run(sim, d, serve.LoadConfig{
		RatePerSec: ratePerSec,
		Duration:   window,
		Seed:       1,
	})
	pool.SetMemoryListener(nil)
	att.SetDrainer(nil)

	st := rep.Dispatcher
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		return FaultMeasurement{}, fmt.Errorf(
			"faults %s: accounting identity broken: %+v", p.Name, st)
	}
	if d.InFlight() != 0 || d.QueueLen() != 0 {
		return FaultMeasurement{}, fmt.Errorf(
			"faults %s: stalled requests after drain: inflight=%d queue=%d",
			p.Name, d.InFlight(), d.QueueLen())
	}
	return FaultMeasurement{
		Engine:            p.Name,
		FaultRate:         faultRate,
		Resilient:         resilient,
		Report:            rep,
		Faults:            in.Stats(),
		PressureEvictions: evictions,
	}, nil
}

// FaultRates is the ablation's injected fault-rate axis (applied to
// instantiation, traps, and slow cold starts alike). The top rates clear the
// 10% acceptance floor.
var FaultRates = []float64{0, 0.10, 0.25}

// retryAmplification is attempts per admitted request: 1.0 means no retries
// fired; 1.3 means the fault load inflated pool traffic by 30%.
func retryAmplification(st serve.DispatcherStats) float64 {
	admitted := st.Completed + st.Failed
	if admitted == 0 {
		return 0
	}
	return float64(admitted+st.Retries) / float64(admitted)
}

// AblationFaults sweeps fault rate x dispatcher policy (baseline vs
// resilient) for every engine profile under the chaos serving experiment,
// reporting goodput, failure accounting, retry amplification, breaker
// activity, pressure evictions, and tail latency under faults.
func AblationFaults() (*Table, error) {
	const (
		window = time.Second
		rate   = 150.0
	)
	t := &Table{
		Title: "Ablation: fault injection x resilience policy (1s open-loop, 150 r/s, seeded chaos)",
		Columns: []string{
			"engine", "fault rate", "policy", "offered", "goodput (r/s)",
			"failed", "rejected", "expired", "retries", "retry amp",
			"breaker opens", "pressure evictions", "p99 (ms)",
		},
	}
	for _, p := range engine.Profiles() {
		for _, fr := range FaultRates {
			for _, resilient := range []bool{false, true} {
				m, err := MeasureFaultServing(p, fr, resilient, rate, window)
				if err != nil {
					return nil, err
				}
				st := m.Report.Dispatcher
				policy := "baseline"
				if resilient {
					policy = "resilient"
				}
				t.Rows = append(t.Rows, []string{
					m.Engine,
					fmt.Sprintf("%.2f", fr),
					policy,
					fmt.Sprintf("%d", m.Report.Offered),
					fmt.Sprintf("%.0f", float64(st.Completed)/window.Seconds()),
					fmt.Sprintf("%d", st.Failed),
					fmt.Sprintf("%d", st.Rejected),
					fmt.Sprintf("%d", st.Expired),
					fmt.Sprintf("%d", st.Retries),
					fmt.Sprintf("%.2f", retryAmplification(st)),
					fmt.Sprintf("%d", st.BreakerOpens),
					fmt.Sprintf("%d", m.PressureEvictions),
					fmt.Sprintf("%.3f", m.Report.Latency.P99*1e3),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"faults (seeded, deterministic): instantiation failures, guest traps with partial execution, 4x slow cold starts, 2 node memory-pressure episodes draining warm pools",
		"resilient policy: 2 retries w/ capped exponential backoff (1ms..8ms), 500ms request timeout, breaker opens after 5 consecutive failures (20ms half-open cooldown)",
		"accounting identity Submitted == Completed+Rejected+Expired+Failed verified for every cell; failed-request latency is included in the percentiles' source histogram",
	)
	return t, nil
}

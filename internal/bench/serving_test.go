package bench

import (
	"strings"
	"testing"
	"time"

	"wasmcontainers/internal/engine"
)

// The serving acceptance claim: for every engine profile, warm p50 latency
// is at least 10x below cold p50, and standing pool memory is visible to
// the kubelet/metrics-server vantage.
func TestServingWarmBeatsColdTenXPerEngine(t *testing.T) {
	const window = 500 * time.Millisecond
	for _, p := range engine.Profiles() {
		warm, err := MeasureServing(p, 2, 50, window)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := MeasureServing(p, 0, 20, window)
		if err != nil {
			t.Fatal(err)
		}
		w := warm.Report.WarmLatency
		c := cold.Report.ColdLatency
		if w.N == 0 || c.N == 0 {
			t.Fatalf("%s: missing samples (warm n=%d, cold n=%d)", p.Name, w.N, c.N)
		}
		if w.P50*10 > c.P50 {
			t.Errorf("%s: warm p50 %.6fs not 10x under cold p50 %.6fs", p.Name, w.P50, c.P50)
		}
		if warm.PoolKubeletMiB <= 0 {
			t.Errorf("%s: pool memory invisible to kubelet vantage", p.Name)
		}
		// A cold-only pool holds no instances; its only standby memory is the
		// single shared compiled-code artifact, far below one warm instance.
		coldBytes := cold.PoolKubeletMiB * 1024 * 1024
		if coldBytes <= 0 || coldBytes >= float64(p.WarmInstanceBytes) {
			t.Errorf("%s: cold-only pool standby memory %.0f B, want shared code only (0 < b < %d)",
				p.Name, coldBytes, p.WarmInstanceBytes)
		}
	}
}

func TestServingMeasurementDeterministic(t *testing.T) {
	a, err := MeasureServing(engine.WAMR, 2, 80, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureServing(engine.WAMR, 2, 80, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("serving measurement not reproducible:\n%+v\n%+v", a, b)
	}
}

func TestTableJSONRoundTrips(t *testing.T) {
	tab := &Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	j := tab.JSON()
	for _, want := range []string{`"Title": "t"`, `"Columns"`, `"Rows"`, `"Notes"`} {
		if !strings.Contains(j, want) {
			t.Fatalf("JSON missing %s:\n%s", want, j)
		}
	}
	if !strings.HasSuffix(j, "\n") {
		t.Fatal("JSON output not newline-terminated")
	}
}

package bench

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/obs"
)

// The serving acceptance claim: for every engine profile, warm p50 latency
// is at least 10x below cold p50, and standing pool memory is visible to
// the kubelet/metrics-server vantage.
func TestServingWarmBeatsColdTenXPerEngine(t *testing.T) {
	const window = 500 * time.Millisecond
	for _, p := range engine.Profiles() {
		warm, err := MeasureServing(p, 2, 50, window)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := MeasureServing(p, 0, 20, window)
		if err != nil {
			t.Fatal(err)
		}
		w := warm.Report.WarmLatency
		c := cold.Report.ColdLatency
		if w.N == 0 || c.N == 0 {
			t.Fatalf("%s: missing samples (warm n=%d, cold n=%d)", p.Name, w.N, c.N)
		}
		if w.P50*10 > c.P50 {
			t.Errorf("%s: warm p50 %.6fs not 10x under cold p50 %.6fs", p.Name, w.P50, c.P50)
		}
		if warm.PoolKubeletMiB <= 0 {
			t.Errorf("%s: pool memory invisible to kubelet vantage", p.Name)
		}
		// A cold-only pool holds no instances; its only standby memory is the
		// single shared compiled-code artifact, far below one warm instance.
		coldBytes := cold.PoolKubeletMiB * 1024 * 1024
		if coldBytes <= 0 || coldBytes >= float64(p.WarmInstanceBytes) {
			t.Errorf("%s: cold-only pool standby memory %.0f B, want shared code only (0 < b < %d)",
				p.Name, coldBytes, p.WarmInstanceBytes)
		}
	}
}

func TestServingMeasurementDeterministic(t *testing.T) {
	a, err := MeasureServing(engine.WAMR, 2, 80, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureServing(engine.WAMR, 2, 80, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("serving measurement not reproducible:\n%+v\n%+v", a, b)
	}
}

func TestTableJSONRoundTrips(t *testing.T) {
	tab := &Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	j := tab.JSON()
	for _, want := range []string{`"Title": "t"`, `"Columns"`, `"Rows"`, `"Notes"`} {
		if !strings.Contains(j, want) {
			t.Fatalf("JSON missing %s:\n%s", want, j)
		}
	}
	if !strings.HasSuffix(j, "\n") {
		t.Fatal("JSON output not newline-terminated")
	}
	// The schema version is stamped at render time, and without telemetry the
	// snapshot block is omitted entirely.
	var parsed struct {
		SchemaVersion int             `json:"schema_version"`
		Telemetry     json.RawMessage `json:"telemetry"`
	}
	if err := json.Unmarshal([]byte(j), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.SchemaVersion != TableSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", parsed.SchemaVersion, TableSchemaVersion)
	}
	if parsed.Telemetry != nil {
		t.Fatalf("telemetry block present without a snapshot: %s", parsed.Telemetry)
	}
}

// TestTableJSONCarriesTelemetrySnapshot attaches a snapshot the way
// cmd/continuum -telemetry does and checks it round-trips through the JSON
// rendering.
func TestTableJSONCarriesTelemetrySnapshot(t *testing.T) {
	tele := obs.New(obs.Config{})
	tele.Counter("dispatch_completed_total").Add(7)
	tele.Histogram("dispatch_latency_ns").Record(1500)
	snap := tele.Snapshot()
	tab := &Table{Title: "t", Columns: []string{"a"}, Rows: [][]string{{"1"}}, Telemetry: &snap}
	var parsed struct {
		SchemaVersion int           `json:"schema_version"`
		Telemetry     *obs.Snapshot `json:"telemetry"`
	}
	if err := json.Unmarshal([]byte(tab.JSON()), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Telemetry == nil {
		t.Fatal("telemetry block missing")
	}
	if len(parsed.Telemetry.Counters) != 1 || parsed.Telemetry.Counters[0].Value != 7 {
		t.Fatalf("counters = %+v", parsed.Telemetry.Counters)
	}
	if len(parsed.Telemetry.Histograms) != 1 || parsed.Telemetry.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", parsed.Telemetry.Histograms)
	}
}

// TestMeasureServingWithTelemetry runs one observed serving measurement end
// to end through the package-level sink (the cmd/continuum -telemetry path)
// and checks the run leaves both metrics and lifecycle spans behind, on the
// simulated timeline.
func TestMeasureServingWithTelemetry(t *testing.T) {
	tele := obs.New(obs.Config{})
	SetTelemetry(tele)
	defer SetTelemetry(nil)
	m, err := MeasureServing(engine.WAMR, 2, 80, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	reg := tele.Metrics()
	if got := reg.Counter("dispatch_completed_total").Value(); got != m.Report.Dispatcher.Completed {
		t.Errorf("dispatch_completed_total = %d, want %d", got, m.Report.Dispatcher.Completed)
	}
	if got := reg.Counter("loadgen_offered_total").Value(); got != m.Report.Offered {
		t.Errorf("loadgen_offered_total = %d, want %d", got, m.Report.Offered)
	}
	if got := reg.Counter(obs.Labeled("engine_instantiates_total", "engine", "wamr")).Value(); got == 0 {
		t.Error("no engine instantiates observed")
	}
	if got := reg.Counter("modcache_misses_total").Value(); got != 1 {
		t.Errorf("modcache_misses_total = %d, want 1 compile", got)
	}
	phases := map[string]bool{}
	for _, s := range tele.Tracer().Spans() {
		phases[s.Name] = true
		if s.PID == 0 {
			t.Fatalf("span missing run PID: %+v", s)
		}
	}
	for _, want := range []string{"module-load", "instantiate", "acquire", "invoke", "reset"} {
		if !phases[want] {
			t.Errorf("no %q spans in observed serving run (got %v)", want, phases)
		}
	}
}

package bench

import (
	"fmt"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/k8s"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/wasm/cache"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/workloads"
)

// ServingWorkload is the guest module every gateway request invokes.
const ServingWorkload = "request-handler"

// servingArg sizes each request: ~27k interpreted instructions, a few
// simulated milliseconds warm versus whole simulated seconds cold.
const servingArg = 500

// ServingMeasurement is one cell of the serving sweep.
type ServingMeasurement struct {
	Engine     string
	PoolSize   int
	RatePerSec float64
	Report     serve.Report
	// PoolKubeletMiB is the pool memory the metrics-server vantage reports
	// right after pool creation: pooled instances occupy node memory before
	// a single request arrives, exactly like idle pods in the density runs.
	PoolKubeletMiB float64
	// TierUps counts tier-0 -> tier-1 lowerings over the run (0 or 1 per
	// module) and Tier1Bytes the artifact still published at the end.
	TierUps    uint64
	Tier1Bytes int64
	// CacheStats is the engine module cache's final kind-split counters.
	CacheStats cache.Stats
}

// MeasureServing runs one open-loop load experiment: a warm pool of poolSize
// instances (0 = cold-only) for one engine profile, attached to a simulated
// worker node so pool memory is kubelet-visible, under a Poisson arrival
// stream of ratePerSec for the given simulated window. Tiering runs under the
// default hotness policy.
func MeasureServing(p engine.Profile, poolSize int, ratePerSec float64, window time.Duration) (ServingMeasurement, error) {
	return MeasureServingTiered(p, poolSize, ratePerSec, window, exec.DefaultTierPolicy())
}

// MeasureServingTiered is MeasureServing with an explicit tier policy — the
// knob the tiers ablation turns (off / hotness / eager).
func MeasureServingTiered(p engine.Profile, poolSize int, ratePerSec float64, window time.Duration, policy exec.TierPolicy) (ServingMeasurement, error) {
	cluster, err := k8s.NewCluster(k8s.DefaultClusterConfig())
	if err != nil {
		return ServingMeasurement{}, err
	}
	att, err := cluster.Nodes[0].AttachWarmPool(fmt.Sprintf("%s-%d", p.Name, poolSize))
	if err != nil {
		return ServingMeasurement{}, err
	}
	defer att.Detach()

	// The DES engine exists before any instrumented work so the tracer can
	// run on simulated time for the whole lifecycle: module compile and pool
	// pre-instantiation land at t=0, the request phases at their simulated
	// instants. Real compile/instantiate nanoseconds ride along as span
	// attributes and histograms.
	sim := des.NewEngine()
	tele := Telemetry()
	if tr := tele.Tracer(); tr != nil {
		tr.SetClock(func() int64 { return int64(sim.Now()) })
		tr.SetPID(nextRunPID())
	}

	eng := engine.New(p)
	eng.SetTierPolicy(policy)
	eng.SetObserver(tele)
	att.SetObserver(tele)
	bin, err := workloads.Binary(ServingWorkload)
	if err != nil {
		return ServingMeasurement{}, err
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		return ServingMeasurement{}, err
	}
	pool, err := serve.NewPool(eng, cm, serve.Config{Size: poolSize, IdleTTL: 2 * time.Second})
	if err != nil {
		return ServingMeasurement{}, err
	}
	pool.SetMemoryListener(att.Sync)
	// Sample the kubelet vantage before any traffic: this is what the pool
	// costs the node while merely standing by.
	kubeletMiB := mib(cluster.Metrics.TotalWorkloadBytes())

	conc := poolSize
	if conc == 0 {
		conc = 8
	}
	d := serve.NewDispatcher(sim, pool, serve.DispatcherConfig{
		MaxConcurrency: conc,
		QueueDepth:     64,
		Policy:         serve.PolicyQueue,
		QueueDeadline:  time.Second,
		Export:         "handle",
		Arg:            servingArg,
	})
	d.SetObserver(tele)
	rep := serve.Run(sim, d, serve.LoadConfig{
		RatePerSec: ratePerSec,
		Duration:   window,
		Seed:       1,
	})
	pool.SetMemoryListener(nil)
	return ServingMeasurement{
		Engine:         p.Name,
		PoolSize:       poolSize,
		RatePerSec:     ratePerSec,
		Report:         rep,
		PoolKubeletMiB: kubeletMiB,
		TierUps:        cm.Code.TierUps(),
		Tier1Bytes:     cm.Tier1Bytes(),
		CacheStats:     eng.CacheStats(),
	}, nil
}

// ServingPoolSizes and ServingRates define the sweep grid.
var (
	ServingPoolSizes = []int{0, 4, 16}
	ServingRates     = []float64{100, 300}
)

// Serving sweeps pool size x arrival rate for every engine profile and
// renders the gateway serving table: latency percentiles, admission
// outcomes, and the kubelet-visible pool memory.
func Serving() (*Table, error) {
	const window = 2 * time.Second
	t := &Table{
		Title: "Serving: warm-pool gateway, pool size x arrival rate (2s open-loop Poisson)",
		Columns: []string{
			"engine", "pool", "rate (r/s)", "offered", "done", "rejected",
			"cold", "p50 (ms)", "p95 (ms)", "p99 (ms)", "pool mem kubelet (MiB)",
		},
	}
	warmP50 := map[string]float64{}
	coldP50 := map[string]float64{}
	for _, p := range engine.Profiles() {
		for _, size := range ServingPoolSizes {
			for _, rate := range ServingRates {
				m, err := MeasureServing(p, size, rate, window)
				if err != nil {
					return nil, err
				}
				rep := m.Report
				t.Rows = append(t.Rows, []string{
					m.Engine,
					fmt.Sprintf("%d", size),
					fmt.Sprintf("%.0f", rate),
					fmt.Sprintf("%d", rep.Offered),
					fmt.Sprintf("%d", rep.Dispatcher.Completed),
					fmt.Sprintf("%d", rep.Dispatcher.Rejected+rep.Dispatcher.Expired),
					fmt.Sprintf("%d", rep.Pool.ColdStarts),
					fmt.Sprintf("%.3f", rep.Latency.P50*1e3),
					fmt.Sprintf("%.3f", rep.Latency.P95*1e3),
					fmt.Sprintf("%.3f", rep.Latency.P99*1e3),
					fmt.Sprintf("%.2f", m.PoolKubeletMiB),
				})
				// Reference cells for the warm-vs-cold note: the largest pool
				// and the cold-only pool, each at the lowest (uncongested) rate.
				if rate == ServingRates[0] {
					if size == ServingPoolSizes[len(ServingPoolSizes)-1] && rep.WarmLatency.N > 0 {
						warmP50[p.Name] = rep.WarmLatency.P50
					}
					if size == 0 && rep.ColdLatency.N > 0 {
						coldP50[p.Name] = rep.ColdLatency.P50
					}
				}
			}
		}
	}
	for _, p := range engine.Profiles() {
		w, c := warmP50[p.Name], coldP50[p.Name]
		if w > 0 && c > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: warm p50 %.3f ms vs cold p50 %.0f ms (%.0fx faster warm)",
				p.Name, w*1e3, c*1e3, c/w))
		}
	}
	t.Notes = append(t.Notes,
		"pool memory is charged to /kubepods/warmpool-* and visible to the metrics-server, like pod memory in fig3-fig7")
	return t, nil
}

package bench

import (
	"fmt"
	"time"

	"wasmcontainers/internal/cluster"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/faults"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/workloads"
)

// Cluster ablation shape: a Zipf-skewed multi-module stream over a growing
// node count, with artifact-locality placement ablated against blind spread.
// The arrival window is short; the makespan is dominated by each replica's
// cold ramp (a dry-pool cold start costs seconds of simulated time), which
// is exactly the asymmetry the placement policy decides how many times to
// pay.
const (
	clusterModules     = 12
	clusterRatePerSec  = 5000.0
	clusterWindow      = 300 * time.Millisecond
	clusterHorizon     = 10 * time.Second
	clusterZipfS       = 1.1
	clusterSeed        = 17
	clusterDeathAt     = clusterWindow / 2
	clusterConcurrency = 2
)

// ClusterMeasurement is one cell of the cluster ablation grid.
type ClusterMeasurement struct {
	Nodes   int
	Policy  cluster.Policy
	Faulted bool
	Report  serve.Report
	Stats   serve.RouterStats
	Scale   cluster.ScaleStats
	Faults  faults.Stats
	// ArtifactBytes / ArtifactCopies are the shared wasm-* images resident
	// on live nodes after the run; cold starts are the cluster-wide dry-pool
	// fallback count.
	ArtifactBytes  int64
	ArtifactCopies int
	ColdStarts     int64
}

// clusterDCfg is the per-replica dispatcher every cell uses.
func clusterDCfg() serve.DispatcherConfig {
	return serve.DispatcherConfig{
		MaxConcurrency: clusterConcurrency,
		QueueDepth:     1 << 14,
		Policy:         serve.PolicyQueue,
		Export:         "handle",
		Arg:            servingArg,
	}
}

// busiestNode returns the index of the live node hosting the most replicas,
// so the fault arm always kills a node that actually has state to lose.
func busiestNode(s *cluster.Serving) int {
	counts := map[string]int{}
	for _, m := range s.Modules() {
		for _, n := range s.ReplicaNodes(m) {
			counts[n]++
		}
	}
	best, bestCount := 0, -1
	for i := 0; i < s.NodeCount(); i++ {
		if !s.NodeAlive(i) {
			continue
		}
		if c := counts[fmt.Sprintf("worker-%d", i)]; c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// MeasureClusterServing runs one cell: nodes x policy, optionally with a
// mid-run node death (plus two memory-pressure episodes) injected through
// the fault layer on the DES clock. The autoscaler is armed in every cell —
// pools start cold and are warmed on queue depth, so each replica pays one
// cold ramp and the policy decides how many replicas exist to ramp.
func MeasureClusterServing(nodes int, policy cluster.Policy, faulted bool) (ClusterMeasurement, error) {
	s, err := cluster.New(cluster.Config{
		Nodes:      nodes,
		Profile:    engine.WAMR,
		Policy:     policy,
		Dispatcher: clusterDCfg(),
		Autoscale: cluster.AutoscaleConfig{
			Interval:    5 * time.Millisecond,
			QueueHigh:   4,
			MaxPoolSize: 8,
			ShrinkAfter: 200, // ~1s idle: past the drain, so ramps are paid once
		},
	})
	if err != nil {
		return ClusterMeasurement{}, err
	}
	modules := make([]string, 0, clusterModules)
	for i := 0; i < clusterModules; i++ {
		name := fmt.Sprintf("%s%d", workloads.HandlerVariantPrefix, i)
		bin, err := workloads.Binary(name)
		if err != nil {
			return ClusterMeasurement{}, err
		}
		if err := s.Deploy(name, bin); err != nil {
			return ClusterMeasurement{}, err
		}
		modules = append(modules, name)
	}

	var in *faults.Injector
	if faulted {
		in = faults.New(faults.Config{
			Seed:        clusterSeed,
			NodeDeathAt: []time.Duration{clusterDeathAt},
			PressureAt:  []time.Duration{clusterWindow / 3, 2 * clusterWindow / 3},
		})
		s.SetFaultInjector(in)
		in.ArmNodeDeath(s.Engine(), func(int) { _ = s.FailNode(busiestNode(s)) })
		in.ArmPressure(s.Engine(), func() { s.MemoryPressure(busiestNode(s)) })
	}
	s.Arm(clusterHorizon)

	rep, err := serve.RunMulti(s.Engine(), s, serve.MultiConfig{
		RatePerSec: clusterRatePerSec,
		Duration:   clusterWindow,
		Seed:       clusterSeed,
		Modules:    modules,
		ZipfS:      clusterZipfS,
	})
	if err != nil {
		return ClusterMeasurement{}, err
	}
	rs := s.Stats()
	a := rs.Aggregate
	if a.Submitted != a.Completed+a.Rejected+a.Expired+a.Failed {
		return ClusterMeasurement{}, fmt.Errorf(
			"cluster %d nodes %s faulted=%v: accounting identity broken: %+v",
			nodes, policy, faulted, a)
	}
	if !s.Quiesced() {
		return ClusterMeasurement{}, fmt.Errorf(
			"cluster %d nodes %s faulted=%v: routers not quiescent after drain",
			nodes, policy, faulted)
	}
	bytes, copies := s.SharedArtifactBytes()
	return ClusterMeasurement{
		Nodes:          nodes,
		Policy:         policy,
		Faulted:        faulted,
		Report:         rep,
		Stats:          rs,
		Scale:          s.ScaleStats(),
		Faults:         in.Stats(),
		ArtifactBytes:  bytes,
		ArtifactCopies: copies,
		ColdStarts:     s.ColdStarts(),
	}, nil
}

// AblationCluster sweeps the node count against the placement policy and
// adds a node-death arm on the largest locality cell. Gates are embedded as
// errors, not table cells:
//
//   - at 4+ nodes, locality placement must beat spread on both resident
//     shared-artifact bytes and cluster-wide cold starts (the paper's
//     memory and start-latency wins compound only when replicas stack),
//   - every cell must hold the admission identity
//     Submitted == Completed + Rejected + Expired + Failed after drain —
//     including the node-death arm, where requests cross a failover,
//   - the node-death arm must actually exercise failover: one node death
//     fired, at least one replica re-placed, and completed work afterwards.
func AblationCluster() (*Table, error) {
	t := &Table{
		Title: "Ablation: cluster routing, 1-8 nodes x placement policy (12 modules, zipf 1.1), plus node-death failover",
		Columns: []string{
			"nodes", "policy", "fault", "offered", "completed", "cold starts",
			"artifact copies", "artifact MiB", "replicas", "re-placed", "scale ups", "p99 (ms)",
		},
	}
	row := func(m ClusterMeasurement) {
		fault := "-"
		if m.Faulted {
			fault = fmt.Sprintf("node death @%s", clusterDeathAt)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m.Nodes),
			m.Policy.String(),
			fault,
			fmt.Sprintf("%d", m.Report.Offered),
			fmt.Sprintf("%d", m.Stats.Aggregate.Completed),
			fmt.Sprintf("%d", m.ColdStarts),
			fmt.Sprintf("%d", m.ArtifactCopies),
			fmt.Sprintf("%.1f", float64(m.ArtifactBytes)/(1<<20)),
			fmt.Sprintf("%d", m.Scale.Placed),
			fmt.Sprintf("%d", m.Scale.RePlaced),
			fmt.Sprintf("%d", m.Scale.Ups),
			fmt.Sprintf("%.2f", m.Report.Latency.P99*1000),
		})
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		var byPolicy [2]ClusterMeasurement
		for _, policy := range []cluster.Policy{cluster.PolicyLocality, cluster.PolicySpread} {
			m, err := MeasureClusterServing(nodes, policy, false)
			if err != nil {
				return nil, err
			}
			byPolicy[policy] = m
			row(m)
		}
		loc, spr := byPolicy[cluster.PolicyLocality], byPolicy[cluster.PolicySpread]
		if nodes >= 4 {
			// Embedded gate: locality beats spread where there is room to spread.
			if loc.ArtifactBytes >= spr.ArtifactBytes {
				return nil, fmt.Errorf(
					"cluster %d nodes: locality artifact bytes %d >= spread %d",
					nodes, loc.ArtifactBytes, spr.ArtifactBytes)
			}
			if loc.ColdStarts == 0 || loc.ColdStarts >= spr.ColdStarts {
				return nil, fmt.Errorf(
					"cluster %d nodes: cold starts locality %d, spread %d — want 0 < locality < spread",
					nodes, loc.ColdStarts, spr.ColdStarts)
			}
		}
	}
	// Node-death arm: largest locality cell with a mid-run failover.
	m, err := MeasureClusterServing(4, cluster.PolicyLocality, true)
	if err != nil {
		return nil, err
	}
	if m.Faults.NodeDeaths != 1 {
		return nil, fmt.Errorf("cluster fault arm: %d node deaths fired, want 1", m.Faults.NodeDeaths)
	}
	if m.Scale.RePlaced == 0 {
		return nil, fmt.Errorf("cluster fault arm: node death re-placed no replicas: %+v", m.Scale)
	}
	if m.Stats.Aggregate.Completed == 0 {
		return nil, fmt.Errorf("cluster fault arm: nothing completed across the failover")
	}
	row(m)
	return t, nil
}

// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Table I/II, Figures 3-10) on the
// simulated cluster, plus the ablation studies DESIGN.md calls out. Each
// experiment returns a Table whose rows mirror what the paper plots.
package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"wasmcontainers/internal/k8s"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/obs/tsdb"
	"wasmcontainers/internal/simos"
)

// TableSchemaVersion identifies the JSON layout of Table. Bump it when
// renaming or removing fields so downstream consumers of results/<id>.json
// can detect incompatible output. v3 added the `timeseries` rollup block:
// consumers at v3 may rely on sampling experiments populating it.
const TableSchemaVersion = 3

// WasmImage and PythonImage are the benchmark images (the paper's minimal
// microservice in both forms).
const (
	WasmImage   = "minimal-service:wasm"
	PythonImage = "python-minimal-service:3.11"
)

// Densities are the paper's deployment sizes (containers per node, one
// container per pod).
var Densities = []int{10, 100, 400}

// RuntimeConfig is one benchmarked runtime configuration.
type RuntimeConfig struct {
	// Label as it appears on the figure axis.
	Label string
	// RuntimeClass selects the handler.
	RuntimeClass string
	// Image is the workload image.
	Image string
	// Ours marks the paper's contribution (plotted in red).
	Ours bool
	// Wasm marks Wasm configurations (vs Python baselines).
	Wasm bool
}

// Configuration groups matching the paper's figures.
var (
	// OursConfig is crun with embedded WAMR.
	OursConfig = RuntimeConfig{Label: "crun-wamr (ours)", RuntimeClass: "crun-wamr", Image: WasmImage, Ours: true, Wasm: true}

	// CrunEngineConfigs are the Figure 3/4 set: Wasm engines embedded in crun.
	CrunEngineConfigs = []RuntimeConfig{
		OursConfig,
		{Label: "crun-wasmtime", RuntimeClass: "crun-wasmtime", Image: WasmImage, Wasm: true},
		{Label: "crun-wasmer", RuntimeClass: "crun-wasmer", Image: WasmImage, Wasm: true},
		{Label: "crun-wasmedge", RuntimeClass: "crun-wasmedge", Image: WasmImage, Wasm: true},
	}

	// RunwasiConfigs are the Figure 5 set: runwasi shims plus ours.
	RunwasiConfigs = []RuntimeConfig{
		OursConfig,
		{Label: "containerd-shim-wasmtime", RuntimeClass: "wasmtime", Image: WasmImage, Wasm: true},
		{Label: "containerd-shim-wasmedge", RuntimeClass: "wasmedge", Image: WasmImage, Wasm: true},
		{Label: "containerd-shim-wasmer", RuntimeClass: "wasmer", Image: WasmImage, Wasm: true},
	}

	// PythonConfigs are the Figure 6/7 set: ours vs Python containers, with
	// the best runwasi shim for reference.
	PythonConfigs = []RuntimeConfig{
		OursConfig,
		{Label: "crun-python", RuntimeClass: "crun", Image: PythonImage},
		{Label: "runc-python", RuntimeClass: "runc", Image: PythonImage},
		{Label: "containerd-shim-wasmtime", RuntimeClass: "wasmtime", Image: WasmImage, Wasm: true},
	}

	// AllConfigs is the Figure 8/9/10 set: every benchmarked runtime.
	AllConfigs = []RuntimeConfig{
		OursConfig,
		{Label: "crun-wasmtime", RuntimeClass: "crun-wasmtime", Image: WasmImage, Wasm: true},
		{Label: "crun-wasmer", RuntimeClass: "crun-wasmer", Image: WasmImage, Wasm: true},
		{Label: "crun-wasmedge", RuntimeClass: "crun-wasmedge", Image: WasmImage, Wasm: true},
		{Label: "containerd-shim-wasmtime", RuntimeClass: "wasmtime", Image: WasmImage, Wasm: true},
		{Label: "containerd-shim-wasmedge", RuntimeClass: "wasmedge", Image: WasmImage, Wasm: true},
		{Label: "containerd-shim-wasmer", RuntimeClass: "wasmer", Image: WasmImage, Wasm: true},
		{Label: "crun-python", RuntimeClass: "crun", Image: PythonImage},
		{Label: "runc-python", RuntimeClass: "runc", Image: PythonImage},
	}
)

// Table is a printable experiment result.
type Table struct {
	// SchemaVersion stamps the JSON layout (TableSchemaVersion); zero until
	// JSON() renders the table.
	SchemaVersion int `json:"schema_version"`
	Title         string
	Columns       []string
	Rows          [][]string
	// Notes carries derived observations (reduction percentages etc.).
	Notes []string
	// Telemetry is the metrics snapshot of the run that produced the table,
	// attached by cmd/continuum when -telemetry is set; omitted otherwise.
	Telemetry *obs.Snapshot `json:"telemetry,omitempty"`
	// TimeSeries is the windowed-metrics rollup (counter rates, gauge
	// ranges, p99-over-time) of the run that produced the table, attached by
	// experiments that sample a tsdb; omitted otherwise.
	TimeSeries *tsdb.Summary `json:"timeseries,omitempty"`
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	sb.WriteString(t.Title + "\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	for i := range t.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]))
		if i < len(t.Columns)-1 {
			sb.WriteString("  ")
		}
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (quotes around cells
// containing commas).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// JSON renders the table as indented JSON (machine-readable counterpart of
// Format/CSV; written as <id>.json by cmd/continuum). It stamps the current
// schema version.
func (t *Table) JSON() string {
	t.SchemaVersion = TableSchemaVersion
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b) + "\n"
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// MemoryMeasurement holds both vantage points for one run.
type MemoryMeasurement struct {
	Config  RuntimeConfig
	Density int
	// MetricsPerContainerMiB is memory.current summed over pods / N.
	MetricsPerContainerMiB float64
	// FreePerContainerMiB is used-beyond-idle / N from the simulated free.
	FreePerContainerMiB float64
	// StartupSeconds is the time until the last workload began executing.
	StartupSeconds float64
}

// MeasureDeployment deploys `density` pods of cfg on a fresh cluster and
// returns both memory vantage points plus startup latency.
func MeasureDeployment(cfg RuntimeConfig, density int) (MemoryMeasurement, error) {
	cluster, err := k8s.NewCluster(k8s.DefaultClusterConfig())
	if err != nil {
		return MemoryMeasurement{}, err
	}
	tele := Telemetry()
	if tr := tele.Tracer(); tr != nil {
		tr.SetClock(func() int64 { return int64(cluster.Engine.Now()) })
		tr.SetPID(nextRunPID())
	}
	cluster.SetObserver(tele)
	// Pre-pull the image: the paper measures with images already present,
	// so layer cache is excluded from per-container figures.
	if err := cluster.Nodes[0].Runtime.PrePull(cfg.Image); err != nil {
		return MemoryMeasurement{}, err
	}
	freeBaseline := cluster.Nodes[0].OS.UsedBeyondIdle()
	pods, err := cluster.Deploy(k8s.DeployOptions{
		NamePrefix:       cfg.RuntimeClass,
		RuntimeClassName: cfg.RuntimeClass,
		Image:            cfg.Image,
		Replicas:         density,
	})
	if err != nil {
		return MemoryMeasurement{}, err
	}
	cluster.Run()
	last, err := cluster.LastStartTime(pods)
	if err != nil {
		return MemoryMeasurement{}, fmt.Errorf("%s x%d: %w", cfg.Label, density, err)
	}
	cgroupTotal := cluster.Metrics.TotalWorkloadBytes()
	freeTotal := cluster.Nodes[0].OS.UsedBeyondIdle() - freeBaseline
	return MemoryMeasurement{
		Config:                 cfg,
		Density:                density,
		MetricsPerContainerMiB: mib(cgroupTotal) / float64(density),
		FreePerContainerMiB:    mib(freeTotal) / float64(density),
		StartupSeconds:         float64(last) / 1e9,
	}, nil
}

func mib(b int64) float64 { return float64(b) / float64(simos.MiB) }

// MemoryFigure runs a config set across all densities and renders the
// figure-style table for the chosen vantage point.
func MemoryFigure(title string, configs []RuntimeConfig, useFree bool) (*Table, []MemoryMeasurement, error) {
	cols := []string{"runtime"}
	for _, d := range Densities {
		cols = append(cols, fmt.Sprintf("%d ctrs (MiB/ctr)", d))
	}
	t := &Table{Title: title, Columns: cols}
	var all []MemoryMeasurement
	for _, cfg := range configs {
		row := []string{cfg.Label}
		for _, d := range Densities {
			m, err := MeasureDeployment(cfg, d)
			if err != nil {
				return nil, nil, err
			}
			all = append(all, m)
			v := m.MetricsPerContainerMiB
			if useFree {
				v = m.FreePerContainerMiB
			}
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	addReductionNotes(t, all, useFree)
	return t, all, nil
}

// addReductionNotes appends ours-vs-best-other reduction notes.
func addReductionNotes(t *Table, ms []MemoryMeasurement, useFree bool) {
	byLabel := map[string][]float64{}
	var order []string
	for _, m := range ms {
		v := m.MetricsPerContainerMiB
		if useFree {
			v = m.FreePerContainerMiB
		}
		if _, ok := byLabel[m.Config.Label]; !ok {
			order = append(order, m.Config.Label)
		}
		byLabel[m.Config.Label] = append(byLabel[m.Config.Label], v)
	}
	oursAvg, ok := avgOf(byLabel, OursConfig.Label)
	if !ok {
		return
	}
	type other struct {
		label string
		avg   float64
	}
	var others []other
	for _, l := range order {
		if l == OursConfig.Label {
			continue
		}
		if a, ok := avgOf(byLabel, l); ok {
			others = append(others, other{l, a})
		}
	}
	sort.Slice(others, func(i, j int) bool { return others[i].avg < others[j].avg })
	for _, o := range others {
		t.Notes = append(t.Notes, fmt.Sprintf("ours vs %s: %.2f%% less memory per container",
			o.label, 100*(1-oursAvg/o.avg)))
	}
}

func avgOf(m map[string][]float64, key string) (float64, bool) {
	vs, ok := m[key]
	if !ok || len(vs) == 0 {
		return 0, false
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs)), true
}

// StartupFigure measures time-to-last-start for every config at one density.
func StartupFigure(title string, configs []RuntimeConfig, density int) (*Table, []MemoryMeasurement, error) {
	t := &Table{
		Title:   title,
		Columns: []string{"runtime", fmt.Sprintf("time to start %d containers (s)", density)},
	}
	var all []MemoryMeasurement
	for _, cfg := range configs {
		m, err := MeasureDeployment(cfg, density)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, m)
		t.Rows = append(t.Rows, []string{cfg.Label, fmt.Sprintf("%.2f", m.StartupSeconds)})
	}
	return t, all, nil
}

package bench

import (
	"fmt"
	"sort"

	"wasmcontainers/internal/containerd"
	"wasmcontainers/internal/core"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/k8s"
	"wasmcontainers/internal/metrics"
)

// Experiment regenerates one table or figure from the paper.
type Experiment struct {
	ID          string
	Description string
	Run         func() (*Table, error)
}

// Experiments returns the full registry, keyed in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Description: "Software stack for the evaluation (Table I)", Run: Table1},
		{ID: "table2", Description: "Experiments overview (Table II)", Run: Table2},
		{ID: "fig3", Description: "Memory/ctr, Wasm runtimes in crun, metrics-server (Fig. 3)", Run: Fig3},
		{ID: "fig4", Description: "Memory/ctr, Wasm runtimes in crun, free (Fig. 4)", Run: Fig4},
		{ID: "fig5", Description: "Memory/ctr, runwasi shims, free (Fig. 5)", Run: Fig5},
		{ID: "fig6", Description: "Memory/ctr vs Python containers, metrics-server (Fig. 6)", Run: Fig6},
		{ID: "fig7", Description: "Memory/ctr vs Python containers, free (Fig. 7)", Run: Fig7},
		{ID: "fig8", Description: "Time to start 10 concurrent containers (Fig. 8)", Run: Fig8},
		{ID: "fig9", Description: "Time to start 400 concurrent containers (Fig. 9)", Run: Fig9},
		{ID: "fig10", Description: "Memory/ctr overview, all runtimes, all densities (Fig. 10)", Run: Fig10},
		{ID: "ablation-dynload", Description: "Ablation: dynamic vs static engine linking in crun", Run: AblationDynamicLoading},
		{ID: "ablation-shim", Description: "Ablation: shim-hosted vs crun-embedded engine", Run: AblationShimArchitecture},
		{ID: "ablation-mode", Description: "Ablation: interpreter vs JIT engine mode", Run: AblationEngineMode},
		{ID: "ablation-density", Description: "Ablation: per-container overhead from 10 to 500 pods", Run: AblationDensity},
		{ID: "ablation-multitenant", Description: "Ablation: mixed-tenant node (wasm + python, future work)", Run: AblationMultiTenant},
		{ID: "startup-distribution", Description: "Per-pod start-time distribution at density 100", Run: StartupDistribution},
		{ID: "serve", Description: "Warm-pool gateway: latency vs pool size and arrival rate", Run: Serving},
		{ID: "cache", Description: "Ablation: content-addressed module cache, cold vs cached instantiate", Run: AblationModuleCache},
		{ID: "cow", Description: "Ablation: copy-on-write warm instances, shared baseline + dirty-page reset", Run: AblationCoW},
		{ID: "faults", Description: "Ablation: fault injection x resilience policy (retries, breaker, pressure)", Run: AblationFaults},
		{ID: "tiers", Description: "Ablation: execution tiers (tier0-only vs hotness tier-up vs eager tier-1)", Run: AblationTiers},
		{ID: "gateway", Description: "Live HTTP gateway (continuumd) over loopback: concurrent clients vs the DES bridge", Run: Gateway},
		{ID: "shard", Description: "Ablation: sharded dispatch + request batching vs single-queue baseline (64 modules, zipf)", Run: AblationShard},
		{ID: "slo", Description: "Ablation: SLO burn-rate alerting under a mid-run fault onset (baseline silent, page fires in-window)", Run: AblationSLO},
		{ID: "cluster", Description: "Ablation: cluster routing, 1-8 nodes x locality vs spread placement, plus node-death failover", Run: AblationCluster},
	}
}

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table1 prints the evaluated software stack (the paper's Table I).
func Table1() (*Table, error) {
	return &Table{
		Title:   "Table I: software stack for the evaluation",
		Columns: []string{"software", "version"},
		Rows: [][]string{
			{"Linux", "5.4.0-187-generic (simulated)"},
			{"Kubernetes", "1.27.0 (simulated)"},
			{"containerd", containerd.Version + " (simulated)"},
			{"runC", "1.1.12 (simulated)"},
			{"crun", core.Version + " (simulated, WAMR-patched)"},
			{"WAMR", engine.WAMR.Version},
			{"WasmEdge", engine.WasmEdge.Version},
			{"Wasmer", engine.Wasmer.Version},
			{"Wasmtime", engine.Wasmtime.Version},
		},
	}, nil
}

// Table2 prints the experiment matrix (the paper's Table II).
func Table2() (*Table, error) {
	return &Table{
		Title:   "Table II: experiments overview (10-400 containers, 1 container per pod)",
		Columns: []string{"section", "metric", "container runtime", "language runtime"},
		Rows: [][]string{
			{"IV-B (fig3,fig4)", "Memory", "crun", "WAMR, WasmEdge, Wasmer, Wasmtime"},
			{"IV-C (fig5)", "Memory", "crun, containerd", "WAMR, WasmEdge, Wasmer, Wasmtime"},
			{"IV-D (fig6,fig7)", "Memory", "crun, runC", "WAMR, Python"},
			{"IV-E (fig8,fig9)", "Latency", "crun, runC, containerd", "WAMR, WasmEdge, Wasmer, Wasmtime, Python"},
		},
	}, nil
}

// Fig3 is memory per container for Wasm engines embedded in crun, as the
// Kubernetes metrics-server reports it.
func Fig3() (*Table, error) {
	t, _, err := MemoryFigure("Fig. 3: avg memory/container, Wasm runtimes in crun (metrics-server)", CrunEngineConfigs, false)
	return t, err
}

// Fig4 is the same measured via the simulated `free` command.
func Fig4() (*Table, error) {
	t, _, err := MemoryFigure("Fig. 4: avg memory/container, Wasm runtimes in crun (free)", CrunEngineConfigs, true)
	return t, err
}

// Fig5 compares ours against the runwasi shims (free vantage).
func Fig5() (*Table, error) {
	t, _, err := MemoryFigure("Fig. 5: avg memory/container, runwasi shims (free)", RunwasiConfigs, true)
	return t, err
}

// Fig6 compares ours against Python containers (metrics-server vantage).
func Fig6() (*Table, error) {
	t, _, err := MemoryFigure("Fig. 6: avg memory/container vs Python containers (metrics-server)", PythonConfigs, false)
	return t, err
}

// Fig7 is the same via free.
func Fig7() (*Table, error) {
	t, _, err := MemoryFigure("Fig. 7: avg memory/container vs Python containers (free)", PythonConfigs, true)
	return t, err
}

// Fig8 is startup latency for 10 concurrent containers, all runtimes.
func Fig8() (*Table, error) {
	t, _, err := StartupFigure("Fig. 8: time to start 10 concurrent containers", AllConfigs, 10)
	return t, err
}

// Fig9 is startup latency for 400 concurrent containers.
func Fig9() (*Table, error) {
	t, _, err := StartupFigure("Fig. 9: time to start 400 concurrent containers", AllConfigs, 400)
	return t, err
}

// Fig10 averages memory per container over all densities for every runtime,
// in both vantage points.
func Fig10() (*Table, error) {
	t := &Table{
		Title:   "Fig. 10: avg memory/container over all deployment sizes",
		Columns: []string{"runtime", "metrics-server (MiB/ctr)", "free (MiB/ctr)"},
	}
	type agg struct{ metrics, free float64 }
	for _, cfg := range AllConfigs {
		var a agg
		for _, d := range Densities {
			m, err := MeasureDeployment(cfg, d)
			if err != nil {
				return nil, err
			}
			a.metrics += m.MetricsPerContainerMiB
			a.free += m.FreePerContainerMiB
		}
		n := float64(len(Densities))
		t.Rows = append(t.Rows, []string{
			cfg.Label,
			fmt.Sprintf("%.2f", a.metrics/n),
			fmt.Sprintf("%.2f", a.free/n),
		})
	}
	return t, nil
}

// AblationDynamicLoading contrasts the paper's dynamic-library engine
// loading with a statically-linked build of crun+WAMR at density 100.
func AblationDynamicLoading() (*Table, error) {
	const density = 100
	measure := func(static bool) (float64, error) {
		cluster, err := k8s.NewCluster(k8s.DefaultClusterConfig())
		if err != nil {
			return 0, err
		}
		// Swap the handler implementation: the cluster's containerd client
		// lazily builds crun; we pre-install a static-linking variant by
		// deploying through a dedicated runtime class is not expressible, so
		// measure directly at the runtime layer instead.
		_ = cluster
		return measureCrunDirect(static, density)
	}
	dyn, err := measure(false)
	if err != nil {
		return nil, err
	}
	static, err := measure(true)
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:   "Ablation: dynamic vs static WAMR linking in crun (100 containers)",
		Columns: []string{"linking", "free view (MiB/ctr)"},
		Rows: [][]string{
			{"dynamic (ours)", fmt.Sprintf("%.2f", dyn)},
			{"static", fmt.Sprintf("%.2f", static)},
		},
		Notes: []string{fmt.Sprintf("dynamic loading saves %.2f%% per container", 100*(1-dyn/static))},
	}, nil
}

// AblationShimArchitecture compares the same engine hosted in crun vs its
// runwasi shim, isolating the architecture cost (Wasmtime, density 100).
func AblationShimArchitecture() (*Table, error) {
	embedded, err := MeasureDeployment(RuntimeConfig{
		Label: "crun-wasmtime", RuntimeClass: "crun-wasmtime", Image: WasmImage,
	}, 100)
	if err != nil {
		return nil, err
	}
	shim, err := MeasureDeployment(RuntimeConfig{
		Label: "containerd-shim-wasmtime", RuntimeClass: "wasmtime", Image: WasmImage,
	}, 100)
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:   "Ablation: crun-embedded vs runwasi shim (Wasmtime, 100 containers)",
		Columns: []string{"architecture", "metrics (MiB/ctr)", "free (MiB/ctr)", "startup (s)"},
		Rows: [][]string{
			{"embedded in crun", f2(embedded.MetricsPerContainerMiB), f2(embedded.FreePerContainerMiB), f2(embedded.StartupSeconds)},
			{"runwasi shim", f2(shim.MetricsPerContainerMiB), f2(shim.FreePerContainerMiB), f2(shim.StartupSeconds)},
		},
		Notes: []string{
			"the shim avoids crun's per-container engine heap but serializes on the containerd task service",
		},
	}, nil
}

// AblationEngineMode contrasts interpreter-mode WAMR with JIT-mode Wasmtime
// on per-instruction speed and memory, using the CPU-bound workload.
func AblationEngineMode() (*Table, error) {
	t := &Table{
		Title:   "Ablation: interpreter vs JIT engine mode (cpu-bound workload)",
		Columns: []string{"engine", "mode", "exec ns/instr", "embed footprint (MiB)", "startup CPU (ms)"},
	}
	for _, p := range engine.Profiles() {
		t.Rows = append(t.Rows, []string{
			p.Name, string(p.Mode),
			fmt.Sprintf("%.0f", p.NsPerInstruction),
			fmt.Sprintf("%.2f", float64(p.EmbedPrivateBytes)/(1024*1024)),
			fmt.Sprintf("%d", p.EmbedCPUWork.Milliseconds()),
		})
	}
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i][0] < t.Rows[j][0] })
	t.Notes = append(t.Notes, "interpreter mode trades per-instruction speed for an order of magnitude less code-cache memory")
	return t, nil
}

// AblationDensity sweeps density 10..500 for ours, showing per-container
// stability up to the paper's raised 500-pods-per-node kubelet limit.
func AblationDensity() (*Table, error) {
	t := &Table{
		Title:   "Ablation: crun-wamr per-container overhead vs density (up to 500 pods/node)",
		Columns: []string{"density", "metrics (MiB/ctr)", "free (MiB/ctr)", "startup (s)"},
	}
	for _, d := range []int{10, 50, 100, 200, 400, 500} {
		m, err := MeasureDeployment(OursConfig, d)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d),
			f2(m.MetricsPerContainerMiB), f2(m.FreePerContainerMiB), f2(m.StartupSeconds),
		})
	}
	return t, nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// AblationMultiTenant explores the paper's stated future work: multiple
// tenants (namespace-like groups) sharing one node, mixing Wasm and Python
// services. It reports per-tenant cgroup memory and shows tenant isolation
// in the workload view while the node amortizes shared engine libraries.
func AblationMultiTenant() (*Table, error) {
	cluster, err := k8s.NewCluster(k8s.DefaultClusterConfig())
	if err != nil {
		return nil, err
	}
	tenants := []struct {
		name     string
		class    string
		image    string
		replicas int
	}{
		{"tenant-a (wasm, ours)", "crun-wamr", WasmImage, 40},
		{"tenant-b (wasm, shim)", "wasmtime", WasmImage, 40},
		{"tenant-c (python)", "crun", PythonImage, 40},
	}
	podsByTenant := map[string][]*k8s.Pod{}
	for _, tn := range tenants {
		pods, err := cluster.Deploy(k8s.DeployOptions{
			NamePrefix:       tn.name[:8],
			RuntimeClassName: tn.class,
			Image:            tn.image,
			Replicas:         tn.replicas,
		})
		if err != nil {
			return nil, err
		}
		podsByTenant[tn.name] = pods
	}
	cluster.Run()

	t := &Table{
		Title:   "Ablation: multi-tenant node (3 tenants x 40 containers)",
		Columns: []string{"tenant", "pods running", "cgroup total (MiB)", "MiB/ctr"},
	}
	for _, tn := range tenants {
		var total int64
		running := 0
		for _, p := range podsByTenant[tn.name] {
			if p.Status.Phase == k8s.PodRunning {
				running++
			}
			if pm, ok := cluster.Metrics.PodMetrics(p); ok {
				total += pm.MemoryBytes
			}
		}
		t.Rows = append(t.Rows, []string{
			tn.name,
			fmt.Sprintf("%d/%d", running, tn.replicas),
			fmt.Sprintf("%.2f", mib(total)),
			fmt.Sprintf("%.2f", mib(total)/float64(tn.replicas)),
		})
	}
	free := cluster.Nodes[0].OS.UsedBeyondIdle()
	t.Notes = append(t.Notes,
		fmt.Sprintf("node free-view total: %.2f MiB for 120 mixed containers", mib(free)))
	for _, lib := range cluster.Nodes[0].OS.SharedLibs() {
		t.Notes = append(t.Notes, fmt.Sprintf("shared across tenants: %s (%.2f MiB, resident once)",
			lib.Name, mib(lib.Bytes)))
	}
	return t, nil
}

// StartupDistribution reports the per-pod workload-start distribution at one
// density for ours vs the wasmtime shim: the shim's serialized task-service
// admissions spread starts out almost uniformly, while the crun path's
// CPU-bound starts cluster in waves of 20 (the core count).
func StartupDistribution() (*Table, error) {
	const density = 100
	t := &Table{
		Title:   "Startup distribution: per-pod workload start times (100 containers)",
		Columns: []string{"runtime", "p50 (s)", "p95 (s)", "max (s)", "spread max-min (s)"},
	}
	for _, cfg := range []RuntimeConfig{
		OursConfig,
		{Label: "containerd-shim-wasmtime", RuntimeClass: "wasmtime", Image: WasmImage},
	} {
		cluster, err := k8s.NewCluster(k8s.DefaultClusterConfig())
		if err != nil {
			return nil, err
		}
		pods, err := cluster.Deploy(k8s.DeployOptions{
			RuntimeClassName: cfg.RuntimeClass, Image: cfg.Image, Replicas: density,
		})
		if err != nil {
			return nil, err
		}
		cluster.Run()
		var starts []float64
		for _, p := range pods {
			if p.Status.Phase != k8s.PodRunning {
				return nil, fmt.Errorf("pod %s not running", p.Name)
			}
			starts = append(starts, float64(p.Status.Containers[0].StartedAt)/1e9)
		}
		s := metrics.Summarize(starts)
		t.Rows = append(t.Rows, []string{
			cfg.Label,
			fmt.Sprintf("%.2f", s.P50),
			fmt.Sprintf("%.2f", s.P95),
			fmt.Sprintf("%.2f", s.Max),
			fmt.Sprintf("%.2f", s.Max-s.Min),
		})
	}
	t.Notes = append(t.Notes, "paper endpoint = max (time the LAST container starts)")
	return t, nil
}

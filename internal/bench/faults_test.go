package bench

import (
	"reflect"
	"testing"
	"time"

	"wasmcontainers/internal/engine"
)

// TestFaultServingDeterministicAndAccounted is the acceptance check for the
// chaos harness: a fixed-seed cell with instantiate and invoke fault rates
// above the 10% floor completes (MeasureFaultServing itself errors on a
// broken accounting identity or stalled requests), actually exercises every
// fault axis, and reproduces identical counters across two runs.
func TestFaultServingDeterministicAndAccounted(t *testing.T) {
	run := func() FaultMeasurement {
		m, err := MeasureFaultServing(engine.WAMR, 0.25, true, 100, 500*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := run()
	if a.Faults.InstantiateFailures == 0 || a.Faults.Traps == 0 {
		t.Fatalf("chaos did not bite: %+v", a.Faults)
	}
	if a.Faults.PressureEvents != 2 {
		t.Fatalf("pressure events = %d, want 2", a.Faults.PressureEvents)
	}
	if a.PressureEvictions == 0 {
		t.Fatal("pressure episodes reclaimed no warm instances")
	}
	if st := a.Report.Dispatcher; st.Retries == 0 || st.Completed == 0 {
		t.Fatalf("resilience layer inert: %+v", st)
	}
	if b := run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different chaos measurement:\n%+v\n%+v", a, b)
	}
}

// TestFaultFreeResilientMatchesBaseline: with the fault rate at zero, the
// resilient dispatcher must behave exactly like the baseline — the retry,
// timeout, and breaker machinery may not perturb a healthy run.
func TestFaultFreeResilientMatchesBaseline(t *testing.T) {
	base, err := MeasureFaultServing(engine.WAMR, 0, false, 100, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureFaultServing(engine.WAMR, 0, true, 100, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Report, res.Report) {
		t.Fatalf("resilience machinery perturbed a fault-free run:\n%+v\n%+v",
			base.Report, res.Report)
	}
}

package bench

import (
	"strings"
	"testing"

	"wasmcontainers/internal/k8s"
)

// deployForTest spins a cluster and deploys n pods of one config.
func deployForTest(t *testing.T, class, image string, n int) (*k8s.Cluster, []*k8s.Pod) {
	t.Helper()
	cluster, err := k8s.NewCluster(k8s.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	pods, err := cluster.Deploy(k8s.DeployOptions{
		RuntimeClassName: class, Image: image, Replicas: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run()
	return cluster, pods
}

func TestMeasureDeploymentBasics(t *testing.T) {
	m, err := MeasureDeployment(OursConfig, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.MetricsPerContainerMiB <= 0 || m.FreePerContainerMiB <= 0 {
		t.Fatalf("non-positive measurements: %+v", m)
	}
	if m.FreePerContainerMiB <= m.MetricsPerContainerMiB {
		t.Fatal("free view should exceed metrics view")
	}
	if m.StartupSeconds <= 0 {
		t.Fatal("no startup time")
	}
}

func TestMeasurementDeterminism(t *testing.T) {
	a, err := MeasureDeployment(OursConfig, 25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureDeployment(OursConfig, 25)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("measurements differ:\n%+v\n%+v", a, b)
	}
}

func TestMemoryFigureRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure is heavy")
	}
	table, ms, err := MemoryFigure("test figure", []RuntimeConfig{OursConfig}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 || len(ms) != len(Densities) {
		t.Fatalf("rows=%d measurements=%d", len(table.Rows), len(ms))
	}
	out := table.Format()
	if !strings.Contains(out, "crun-wamr (ours)") {
		t.Fatalf("missing label in:\n%s", out)
	}
}

func TestStartupFigureRendering(t *testing.T) {
	table, ms, err := StartupFigure("startup", []RuntimeConfig{OursConfig}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || len(table.Rows) != 1 {
		t.Fatal("wrong shape")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation-dynload", "ablation-shim", "ablation-mode", "ablation-density",
	}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("ExperimentByID accepted a bogus id")
	}
}

func TestWasmBundleIsWasm(t *testing.T) {
	b, err := WasmBundle("minimal-service")
	if err != nil {
		t.Fatal(err)
	}
	if !b.Spec.IsWasm() {
		t.Fatal("bundle not recognized as wasm")
	}
	if _, err := b.Rootfs.Stat("/app.wasm"); err != nil {
		t.Fatal(err)
	}
	if _, err := WasmBundle("no-such-workload"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestTable1HasPaperVersions(t *testing.T) {
	table, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := table.Format()
	for _, v := range []string{"2.1.0", "0.14.0", "4.3.5", "23.0.1", "1.27.0"} {
		if !strings.Contains(out, v) {
			t.Errorf("Table I missing version %s:\n%s", v, out)
		}
	}
}

func TestTable2MatchesExperimentMatrix(t *testing.T) {
	table, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("Table II has %d rows, want 4", len(table.Rows))
	}
}

func TestMultiTenantExperiment(t *testing.T) {
	e, ok := ExperimentByID("ablation-multitenant")
	if !ok {
		t.Fatal("missing experiment")
	}
	table, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		if !strings.HasPrefix(row[1], "40/40") {
			t.Fatalf("tenant not fully running: %v", row)
		}
	}
	// Shared libraries must be reported as resident once.
	found := false
	for _, n := range table.Notes {
		if strings.Contains(n, "libiwasm.so") {
			found = true
		}
	}
	if !found {
		t.Fatal("shared library note missing")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1,5", `quo"te`}},
	}
	got := tab.CSV()
	want := "a,b\n\"1,5\",\"quo\"\"te\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

// TestAllFiguresAtReducedDensity runs every figure function end to end with
// the density grid shrunk, exercising the full registry quickly.
func TestAllFiguresAtReducedDensity(t *testing.T) {
	saved := Densities
	Densities = []int{5}
	defer func() { Densities = saved }()
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig10"} {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		table, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
		for _, row := range table.Rows {
			if len(row) != len(table.Columns) {
				t.Fatalf("%s: ragged row %v", id, row)
			}
		}
	}
	// Startup figures with a smaller density.
	if _, _, err := StartupFigure("t", []RuntimeConfig{OursConfig}, 5); err != nil {
		t.Fatal(err)
	}
}

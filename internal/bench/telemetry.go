package bench

import (
	"sync"
	"sync/atomic"

	"wasmcontainers/internal/obs"
)

// The harness-wide telemetry sink. Experiments run strictly sequentially, so
// a package-level slot (rather than threading a parameter through every
// Measure* signature) keeps the instrumentation additive; the mutex only
// protects against a scraper reading while an experiment swaps the sink.
var (
	teleMu     sync.Mutex
	activeTele *obs.Telemetry
	telePIDSeq atomic.Int64
)

// SetTelemetry installs the telemetry sink every subsequent Measure* run
// observes into, or disables observation with nil (the default). Runs under
// the same sink are distinguished by trace PID: each MeasureServing /
// MeasureDeployment claims the next PID so a multi-run experiment renders as
// one process group per run in the Chrome trace viewer.
func SetTelemetry(t *obs.Telemetry) {
	teleMu.Lock()
	defer teleMu.Unlock()
	activeTele = t
}

// Telemetry returns the currently installed sink, nil when disabled.
func Telemetry() *obs.Telemetry {
	teleMu.Lock()
	defer teleMu.Unlock()
	return activeTele
}

// nextRunPID claims a fresh trace process ID for one measurement run.
func nextRunPID() int64 { return telePIDSeq.Add(1) }

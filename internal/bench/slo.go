package bench

import (
	"fmt"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/faults"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/obs/slo"
	"wasmcontainers/internal/obs/tsdb"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/workloads"
)

// sloSampleInterval is the ablation's tsdb window length; sloBaseWindow is
// the page rule's long window (its short window is base/12 = 20 ms). The
// fault onset lands mid-run, so the acceptance gate — the page alert firing
// within one evaluation window (the long window) of onset — has the whole
// second half of the run to be checked against.
const (
	sloSampleInterval = 5 * time.Millisecond
	sloBaseWindow     = 240 * time.Millisecond
)

// SLOMeasurement is one arm of the slo ablation.
type SLOMeasurement struct {
	Faulted bool
	Report  serve.Report
	Status  slo.Status
	TSDB    *tsdb.Summary
	// OnsetNs is the sim time the fault injector armed (0 for baseline).
	OnsetNs int64
	// FirstFireNs is the window-close sim time at which the availability
	// page first fired; -1 when it never fired.
	FirstFireNs int64
}

// MeasureSLOServing runs one arm of the slo ablation: the standard serving
// stack with a tsdb sampling on the DES clock (ArmDES event chain, so
// windows close at deterministic sim times) and the burn-rate engine
// evaluating an availability objective after each window. The faulted arm
// arms a 100% trap-rate injector at window/2 via a scheduled DES event; the
// baseline arm runs clean. Both arms verify the admission identity.
func MeasureSLOServing(faulted bool, ratePerSec float64, window time.Duration) (SLOMeasurement, error) {
	sim := des.NewEngine()
	// A local telemetry sink, independent of the harness-wide -telemetry
	// flag: the tsdb samples these counters, so the experiment needs them
	// live unconditionally.
	tele := obs.New(obs.Config{})
	if tr := tele.Tracer(); tr != nil {
		tr.SetClock(func() int64 { return int64(sim.Now()) })
	}

	eng := engine.New(engine.WAMR)
	eng.SetObserver(tele)
	bin, err := workloads.Binary(ServingWorkload)
	if err != nil {
		return SLOMeasurement{}, err
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		return SLOMeasurement{}, err
	}
	const poolSize = 8
	pool, err := serve.NewPool(eng, cm, serve.Config{Size: poolSize})
	if err != nil {
		return SLOMeasurement{}, err
	}
	d := serve.NewDispatcher(sim, pool, serve.DispatcherConfig{
		MaxConcurrency: poolSize,
		QueueDepth:     64,
		Policy:         serve.PolicyQueue,
		QueueDeadline:  time.Second,
		Export:         "handle",
		Arg:            servingArg,
	})
	d.SetObserver(tele)

	var sloEng *slo.Engine // set below; Evaluate is nil-safe
	firstFire := int64(-1)
	db := tsdb.New(tsdb.Config{
		Interval: sloSampleInterval,
		OnWindow: func(w *tsdb.Window) {
			sloEng.Evaluate(w)
			if firstFire < 0 && sloEng.Firing(slo.Page) {
				firstFire = w.End
			}
		},
	})
	for _, n := range []string{
		"dispatch_submitted_total", "dispatch_completed_total",
		"dispatch_failed_total", "dispatch_rejected_total", "dispatch_expired_total",
	} {
		db.TrackCounter(n, tele.Counter(n))
	}
	db.TrackHistogram("dispatch_latency_ns", tele.Histogram("dispatch_latency_ns"))
	sloEng = slo.New(slo.Config{
		DB:         db,
		Telemetry:  tele,
		BaseWindow: sloBaseWindow,
		Objectives: []slo.Objective{{
			Name: "availability", Kind: slo.Availability, Target: 0.99,
			BadSeries: []string{
				"dispatch_failed_total", "dispatch_rejected_total", "dispatch_expired_total",
			},
			TotalSeries: "dispatch_submitted_total",
		}},
	})
	if sloEng == nil {
		return SLOMeasurement{}, fmt.Errorf("slo: engine failed to construct")
	}
	db.ArmDES(sim, int64(window))

	var onset int64
	if faulted {
		onset = int64(window) / 2
		sim.At(des.Time(onset), func() {
			eng.SetFaultInjector(faults.New(faults.Config{Seed: faultSeed, TrapRate: 1}))
		})
	}

	rep := serve.Run(sim, d, serve.LoadConfig{
		RatePerSec: ratePerSec,
		Duration:   window,
		Seed:       1,
	})
	st := rep.Dispatcher
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		return SLOMeasurement{}, fmt.Errorf("slo faulted=%v: accounting identity broken: %+v", faulted, st)
	}
	return SLOMeasurement{
		Faulted:     faulted,
		Report:      rep,
		Status:      sloEng.Status(),
		TSDB:        db.Summary(),
		OnsetNs:     onset,
		FirstFireNs: firstFire,
	}, nil
}

// pageState extracts the availability page alert from a status.
func pageState(st slo.Status) (slo.AlertState, error) {
	for _, o := range st.Objectives {
		for _, a := range o.Alerts {
			if a.Severity == slo.Page {
				return a, nil
			}
		}
	}
	return slo.AlertState{}, fmt.Errorf("slo: no page alert declared: %+v", st)
}

// AblationSLO runs the burn-rate alerting ablation: a clean baseline arm and
// an arm with a 100% trap-rate fault onset at mid-run, both sampled into 5 ms
// tsdb windows with the availability page rule (14.4x burn over 240 ms /
// 20 ms). Gates are embedded as errors, not table cells:
//
//   - the baseline arm must never fire (zero page transitions),
//   - the faulted arm must fire within one evaluation window (the page
//     rule's long window) of the fault onset.
//
// The faulted arm's tsdb rollup is attached to the table as the `timeseries`
// block, giving results/slo.json the p99-over-time trajectory across the
// onset.
func AblationSLO() (*Table, error) {
	const (
		window = time.Second
		rate   = 150.0
	)
	t := &Table{
		Title: "Ablation: SLO burn-rate alerting (availability 99%, page 14.4x over 240ms/20ms) under a mid-run fault onset",
		Columns: []string{
			"arm", "offered", "completed", "failed", "windows",
			"page fired", "fire delay (ms)", "budget left", "final long burn",
		},
	}
	for _, faulted := range []bool{false, true} {
		m, err := MeasureSLOServing(faulted, rate, window)
		if err != nil {
			return nil, err
		}
		page, err := pageState(m.Status)
		if err != nil {
			return nil, err
		}
		arm := "baseline"
		fired := m.FirstFireNs >= 0
		delay := "-"
		if faulted {
			arm = "fault@500ms"
			// Embedded gate: fire within one evaluation window of onset.
			if !fired {
				return nil, fmt.Errorf("slo: faulted arm never fired the page: %+v", m.Status)
			}
			if d := m.FirstFireNs - m.OnsetNs; d > int64(sloBaseWindow) {
				return nil, fmt.Errorf("slo: page fired %.1fms after onset, want <= %s",
					float64(d)/1e6, sloBaseWindow)
			}
			delay = fmt.Sprintf("%.1f", float64(m.FirstFireNs-m.OnsetNs)/1e6)
			t.TimeSeries = m.TSDB
		} else if fired || page.Transitions != 0 {
			// Embedded gate: the clean arm stays silent.
			return nil, fmt.Errorf("slo: baseline arm raised the page: %+v", m.Status)
		}
		if m.TSDB == nil || m.TSDB.Windows.Published == 0 {
			return nil, fmt.Errorf("slo: faulted=%v published no windows", faulted)
		}
		st := m.Report.Dispatcher
		budget := "-"
		if len(m.Status.Objectives) > 0 {
			budget = fmt.Sprintf("%.3f", m.Status.Objectives[0].BudgetRemaining)
		}
		t.Rows = append(t.Rows, []string{
			arm,
			fmt.Sprintf("%d", m.Report.Offered),
			fmt.Sprintf("%d", st.Completed),
			fmt.Sprintf("%d", st.Failed),
			fmt.Sprintf("%d", m.TSDB.Windows.Published),
			fmt.Sprintf("%v", fired),
			delay,
			budget,
			fmt.Sprintf("%.1fx", page.LongBurn),
		})
	}
	t.Notes = append(t.Notes,
		"windows close on the DES clock (ArmDES event chain), so both arms are bit-reproducible; the fault onset is a scheduled DES event at t=500ms",
		"gates embedded as errors: baseline must stay silent; the faulted arm must fire the availability page within one long window (240ms) of onset",
		"the timeseries block is the faulted arm's rollup: counter rates, and dispatch_latency_ns p99 per 5ms window across the onset",
	)
	return t, nil
}

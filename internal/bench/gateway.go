package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"wasmcontainers/internal/gateway"
	"wasmcontainers/internal/metrics"
	"wasmcontainers/internal/serve"
)

// GatewayClients is the concurrency sweep of the gateway experiment: real
// HTTP client goroutines hammering one function over loopback.
var GatewayClients = []int{1, 4, 8}

// gatewayRequestsPerClient keeps the experiment quick while still producing
// enough traffic for stable percentiles and real contention.
const gatewayRequestsPerClient = 25

// gatewayRun is one cell of the sweep: a live continuumd-style server under
// c concurrent clients.
type gatewayRun struct {
	Clients  int
	OK       int
	Backoff  int // 429 + 503: admission refusals with retry advice
	Timeout  int // 504: queue deadline or request timeout
	Other    int
	Stats    serve.DispatcherStats
	SimMs    metrics.Summary // simulated latency of successful invokes
	WallMs   metrics.Summary // wall-clock time of successful round trips
	Identity bool
}

// measureGateway serves one function at dilation 0 (as fast as the loop can
// step, the deterministic mode) on a loopback listener, runs the client
// fleet, then drains gracefully and checks the admission identity.
func measureGateway(clients int) (gatewayRun, error) {
	fc := gateway.DefaultFunction()
	gw, err := gateway.New(gateway.Config{
		Functions: []gateway.FunctionConfig{fc},
		Bridge:    gateway.BridgeConfig{Dilation: 0},
		Telemetry: Telemetry(),
	})
	if err != nil {
		return gatewayRun{}, err
	}
	gw.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return gatewayRun{}, err
	}
	srv := &http.Server{Handler: gw}
	go srv.Serve(ln)
	url := fmt.Sprintf("http://%s/v1/functions/%s", ln.Addr(), fc.Module)

	run := gatewayRun{Clients: clients}
	var (
		mu     sync.Mutex
		simMs  []float64
		wallMs []float64
		wg     sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < gatewayRequestsPerClient; i++ {
				start := time.Now()
				resp, err := client.Post(url, "application/octet-stream", strings.NewReader("bench"))
				if err != nil {
					mu.Lock()
					run.Other++
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				wall := time.Since(start)
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					run.OK++
					wallMs = append(wallMs, float64(wall)/1e6)
					var sm float64
					if _, err := fmt.Sscanf(resp.Header.Get("X-Sim-Latency-Ms"), "%f", &sm); err == nil {
						simMs = append(simMs, sm)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					run.Backoff++
				case http.StatusGatewayTimeout:
					run.Timeout++
				default:
					run.Other++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		return gatewayRun{}, fmt.Errorf("gateway drain: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return gatewayRun{}, err
	}
	fn, _ := gw.Function(fc.Module)
	st := fn.Dispatcher().Stats()
	run.Stats = st
	run.Identity = st.Submitted == st.Completed+st.Rejected+st.Expired+st.Failed
	run.SimMs = metrics.Summarize(simMs)
	run.WallMs = metrics.Summarize(wallMs)
	return run, nil
}

// Gateway is the `gateway` experiment: the real network front door over the
// simulated cluster, exercised by genuinely concurrent HTTP clients. It
// validates the DES bridge under load — every admission outcome maps to an
// HTTP status, and the dispatcher's conservation identity survives a
// graceful drain — and reports simulated next to wall latency.
func Gateway() (*Table, error) {
	t := &Table{
		Title: "Gateway: continuumd over loopback, concurrent clients, dilation 0",
		Columns: []string{
			"clients", "offered", "http 200", "http 429/503", "http 504", "other",
			"done", "rejected", "expired", "sim p50 (ms)", "sim p95 (ms)",
			"wall p50 (ms)", "identity",
		},
	}
	for _, clients := range GatewayClients {
		run, err := measureGateway(clients)
		if err != nil {
			return nil, err
		}
		offered := clients * gatewayRequestsPerClient
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", run.Clients),
			fmt.Sprintf("%d", offered),
			fmt.Sprintf("%d", run.OK),
			fmt.Sprintf("%d", run.Backoff),
			fmt.Sprintf("%d", run.Timeout),
			fmt.Sprintf("%d", run.Other),
			fmt.Sprintf("%d", run.Stats.Completed),
			fmt.Sprintf("%d", run.Stats.Rejected),
			fmt.Sprintf("%d", run.Stats.Expired),
			fmt.Sprintf("%.3f", run.SimMs.P50),
			fmt.Sprintf("%.3f", run.SimMs.P95),
			fmt.Sprintf("%.3f", run.WallMs.P50),
			fmt.Sprintf("%t", run.Identity),
		})
		if !run.Identity {
			return nil, fmt.Errorf("gateway: conservation identity broken at %d clients: %+v",
				clients, run.Stats)
		}
	}
	t.Notes = append(t.Notes,
		"each row is a live HTTP server on loopback: N client goroutines x "+
			fmt.Sprintf("%d", gatewayRequestsPerClient)+" sequential POST /v1/functions/request-handler",
		"dilation 0 runs virtual time as fast as the event loop steps it; sim latency is the DES cost, wall latency the real round trip",
		"identity: Submitted == Completed + Rejected + Expired + Failed after SIGTERM-style drain",
	)
	return t, nil
}

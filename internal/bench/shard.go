package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/workloads"
)

// The shard ablation isolates the multi-function dispatch architecture: the
// same multi-module request stream admitted through the sharded router
// (lock-free shard lookup, per-DES-event batch coalescing, lock-free stats
// scrapes) versus the single-queue baseline (one global mutex across every
// submission and every introspection read — the architecture the router
// replaced). Two harnesses:
//
//   - a wall-clock funnel: N client goroutines push module keys to the one
//     DES goroutine and scrape router stats after every request, exactly the
//     per-request introspection the gateway hot path performs (X-Queue-Len
//     headers, /metrics, /v1/cluster). The submit-path throughput ratio at 8
//     clients is the headline number and a hard gate (>= 2x).
//   - a virtual-time latency sweep: RunMulti under Zipf s=1.1 vs uniform
//     popularity across 64 modules, showing p99 degrading gracefully when
//     one shard runs hot while the rest idle.

const (
	// shardModules is the workload's module-population size: 64 distinct
	// handler variants, each its own digest, pool, and dispatcher shard.
	shardModules = 64
	// shardFunnelRequests is the per-cell request count for the wall-clock
	// funnel; large enough that setup noise vanishes and the submit phase
	// is tens of milliseconds, small enough that the four cells stay under
	// a few wall seconds.
	shardFunnelRequests = 96000
	// shardFunnelReps reruns each wall-clock cell and keeps the best
	// throughput: contention benchmarks are noisy downward (scheduler
	// preemption), never noisy upward.
	shardFunnelReps = 3
	// shardArg keeps guest execution almost free so admission cost, not
	// interpretation, dominates the funnel's wall clock.
	shardArg = 4
	// shardZipfS is the popularity skew the ISSUE targets.
	shardZipfS = 1.1
	// shardSpeedupFloor is the acceptance gate on sharded vs single-queue
	// throughput at shardFunnelClients concurrent clients.
	shardSpeedupFloor = 2.0
	// shardFunnelClients is the concurrency level the gate applies to.
	shardFunnelClients = 8
	// shardFunnelScrapers is how many goroutines hammer hot-path
	// introspection for the whole submit phase, modeling the metrics poller
	// and response-header reads of a live gateway under load.
	shardFunnelScrapers = 4
	// shardP99Ceiling bounds how much worse Zipf-skewed p99 may be than the
	// uniform workload's at the same rate — "degrades gracefully": the hot
	// shard queues, it does not take the tail to infinity or starve the
	// cold shards.
	shardP99Ceiling = 10.0
)

// newShardRouter builds a router over n handler-variant modules on a fresh
// DES engine: one compiled module, single-instance warm pool, and dispatcher
// per shard.
func newShardRouter(mode serve.RouterMode, n int) (*des.Engine, *serve.Router, []string, error) {
	sim := des.NewEngine()
	rt := serve.NewRouter(sim, serve.RouterConfig{Mode: mode})
	eng := engine.New(engine.WAMR)
	modules := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", workloads.HandlerVariantPrefix, i)
		bin, err := workloads.Binary(name)
		if err != nil {
			return nil, nil, nil, err
		}
		cm, err := eng.Compile(bin)
		if err != nil {
			return nil, nil, nil, err
		}
		pool, err := serve.NewPool(eng, cm, serve.Config{Size: 1})
		if err != nil {
			return nil, nil, nil, err
		}
		d := serve.NewDispatcher(sim, pool, serve.DispatcherConfig{
			MaxConcurrency: 2,
			QueueDepth:     1 << 17,
			Policy:         serve.PolicyQueue,
			Export:         "handle",
			Arg:            shardArg,
		})
		if err := rt.Register(name, name, d); err != nil {
			return nil, nil, nil, err
		}
		modules = append(modules, name)
	}
	return sim, rt, modules, nil
}

// shardFunnelResult is one wall-clock funnel cell.
type shardFunnelResult struct {
	Mode       serve.RouterMode
	Clients    int
	Requests   int
	SubmitWall time.Duration // submission phase: all requests through the submit path
	DrainWall  time.Duration // execution phase: engine stepped dry (same work in both modes)
	Throughput float64       // requests per wall second through the submit path
	Stats      serve.RouterStats
}

// runShardFunnel pushes shardFunnelRequests Zipf-picked module keys from
// `clients` producer goroutines through a channel to the DES goroutine,
// which injects each at the current virtual instant — the backlog-drain
// shape the gateway bridge's greedy channel drain produces when requests
// arrive faster than events step. Every producer scrapes rt.Stats() after
// every push, the introspection load the gateway puts on the hot path
// (X-Queue-Len headers, /metrics, /v1/cluster).
//
// The submit clock covers exactly the submit path: in single-queue mode
// every request pays full per-request admission under the global mutex,
// contended by the scrapers; in sharded mode the lookup is one atomic load,
// the scrapers never block, and admission is amortized into per-shard
// batches. The execution drain that follows retires identical work in both
// modes and is reported separately.
func runShardFunnel(mode serve.RouterMode, clients int) (shardFunnelResult, error) {
	sim, rt, modules, err := newShardRouter(mode, shardModules)
	if err != nil {
		return shardFunnelResult{}, err
	}
	perClient := shardFunnelRequests / clients
	total := perClient * clients
	// Keys travel in bursts, the shape the gateway bridge's greedy channel
	// drain hands the DES goroutine; the channel hop is amortized identically
	// in both modes so the per-request cost left is admission itself.
	const burst = 64
	keyCh := make(chan []string, 64)

	// Continuous introspection runs for the whole submit phase, the load a
	// metrics poller plus the per-request header reads put on a live
	// gateway: in sharded mode these are atomic reads the submit path never
	// notices; in the single-queue baseline every one serializes against
	// admission on the global lock.
	var scrapeStop atomic.Bool
	var scrapeWG sync.WaitGroup
	for s := 0; s < shardFunnelScrapers; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for !scrapeStop.Load() {
				for _, m := range modules {
					q, f, _ := rt.ShardLoad(m)
					_ = q + f
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			zipf := rand.NewZipf(rng, shardZipfS, 1, uint64(len(modules)-1))
			batch := make([]string, 0, burst)
			for i := 0; i < perClient; i++ {
				m := modules[zipf.Uint64()]
				batch = append(batch, m)
				// The per-request introspection read the gateway performs for
				// its response headers: lock-free in sharded mode, a
				// global-mutex acquisition in the baseline.
				q, f, _ := rt.ShardLoad(m)
				_ = q + f
				if len(batch) == burst {
					keyCh <- batch
					batch = make([]string, 0, burst)
				}
			}
			if len(batch) > 0 {
				keyCh <- batch
			}
		}(c)
	}
	go func() { wg.Wait(); close(keyCh) }()

	// The consumer is the one DES goroutine of the router's threading
	// contract: every waiting key enters at the same virtual instant. The
	// submit clock accumulates only time spent inside the submit loop, per
	// burst — channel waits and producer/scraper timeslices stay outside it,
	// while any blocking the introspection load imposes on admission (the
	// architectural difference under test) lands inside it.
	var submitBusy time.Duration
	for batch := range keyCh {
		t0 := time.Now()
		for _, key := range batch {
			if err := rt.Submit(key, 0, nil); err != nil {
				return shardFunnelResult{}, err
			}
		}
		submitBusy += time.Since(t0)
	}
	scrapeStop.Store(true)
	scrapeWG.Wait()

	drainStart := time.Now()
	sim.Run()
	drainWall := time.Since(drainStart)

	st := rt.Stats()
	if got := st.Aggregate.Submitted; got != int64(total) {
		return shardFunnelResult{}, fmt.Errorf("shard funnel (%s, %d clients): submitted %d, want %d",
			mode, clients, got, total)
	}
	for _, sh := range st.Shards {
		if !sh.IdentityHolds() {
			return shardFunnelResult{}, fmt.Errorf("shard funnel (%s, %d clients): shard %s identity violated: %+v",
				mode, clients, sh.Module, sh.Stats)
		}
	}
	if !st.IdentityHolds() {
		return shardFunnelResult{}, fmt.Errorf("shard funnel (%s, %d clients): aggregate identity violated: %+v",
			mode, clients, st.Aggregate)
	}
	return shardFunnelResult{
		Mode:       mode,
		Clients:    clients,
		Requests:   total,
		SubmitWall: submitBusy,
		DrainWall:  drainWall,
		Throughput: float64(total) / submitBusy.Seconds(),
		Stats:      st,
	}, nil
}

// bestShardFunnel runs a funnel cell shardFunnelReps times and keeps the
// highest-throughput rep.
func bestShardFunnel(mode serve.RouterMode, clients int) (shardFunnelResult, error) {
	var best shardFunnelResult
	for rep := 0; rep < shardFunnelReps; rep++ {
		r, err := runShardFunnel(mode, clients)
		if err != nil {
			return shardFunnelResult{}, err
		}
		if r.Throughput > best.Throughput {
			best = r
		}
	}
	return best, nil
}

// shardLatencyCell is one virtual-time RunMulti sweep cell.
type shardLatencyCell struct {
	Dist    string
	Rate    float64
	Report  serve.Report
	Hottest serve.ModuleReport
	Stats   serve.RouterStats
}

// runShardLatency sweeps RunMulti at one rate under the given popularity
// distribution (zipfS 0 = uniform). Pure virtual time: deterministic.
func runShardLatency(zipfS float64, rate float64) (shardLatencyCell, error) {
	sim, rt, modules, err := newShardRouter(serve.RouterSharded, shardModules)
	if err != nil {
		return shardLatencyCell{}, err
	}
	rep, err := serve.RunMulti(sim, rt, serve.MultiConfig{
		RatePerSec: rate,
		Duration:   time.Second,
		Seed:       42,
		Modules:    modules,
		ZipfS:      zipfS,
	})
	if err != nil {
		return shardLatencyCell{}, err
	}
	st := rt.Stats()
	if !st.IdentityHolds() {
		return shardLatencyCell{}, fmt.Errorf("shard latency (s=%.1f rate=%.0f): identity violated: %+v",
			zipfS, rate, st.Aggregate)
	}
	cell := shardLatencyCell{Rate: rate, Report: rep, Stats: st, Dist: "uniform"}
	if zipfS > 0 {
		cell.Dist = fmt.Sprintf("zipf s=%.1f", zipfS)
	}
	if len(rep.Modules) > 0 {
		cell.Hottest = rep.Modules[0]
	}
	return cell, nil
}

// AblationShard is the sharded-dispatch experiment: wall-clock submit-path
// throughput (sharded vs single-queue, 1 and 8 clients) plus the Zipf
// latency sweep. The >= 2x speedup at 8 clients and the graceful-p99 bound
// are hard gates — the experiment fails rather than report a regression.
func AblationShard() (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf(
			"Ablation: sharded dispatch + batching vs single-queue (%d modules, zipf s=%.1f, %d reqs/cell, best of %d)",
			shardModules, shardZipfS, shardFunnelRequests, shardFunnelReps),
		Columns: []string{
			"harness", "mode", "clients/dist", "requests", "submit ms / rate",
			"drain ms / p50 ms", "submit req/s / p99 ms", "batches", "max batch",
		},
	}

	// Wall-clock funnel grid: mode x clients.
	funnel := map[string]shardFunnelResult{}
	for _, mode := range []serve.RouterMode{serve.RouterSingleQueue, serve.RouterSharded} {
		for _, clients := range []int{1, shardFunnelClients} {
			r, err := bestShardFunnel(mode, clients)
			if err != nil {
				return nil, err
			}
			funnel[fmt.Sprintf("%s/%d", mode, clients)] = r
			t.Rows = append(t.Rows, []string{
				"funnel", mode.String(), fmt.Sprintf("%d clients", clients),
				fmt.Sprintf("%d", r.Requests),
				fmt.Sprintf("%.1f", float64(r.SubmitWall.Microseconds())/1000),
				fmt.Sprintf("%.1f", float64(r.DrainWall.Microseconds())/1000),
				fmt.Sprintf("%.0f", r.Throughput),
				fmt.Sprintf("%d", r.Stats.Batches),
				fmt.Sprintf("%d", r.Stats.MaxBatch),
			})
		}
	}

	base := funnel[fmt.Sprintf("%s/%d", serve.RouterSingleQueue, shardFunnelClients)]
	shrd := funnel[fmt.Sprintf("%s/%d", serve.RouterSharded, shardFunnelClients)]
	speedup := shrd.Throughput / base.Throughput
	if speedup < shardSpeedupFloor {
		return nil, fmt.Errorf(
			"shard: sharded submit-path throughput at %d clients is %.0f req/s vs single-queue %.0f (%.2fx), below the %.1fx gate",
			shardFunnelClients, shrd.Throughput, base.Throughput, speedup, shardSpeedupFloor)
	}
	if shrd.Stats.MaxBatch < 2 {
		return nil, fmt.Errorf("shard: sharded funnel never coalesced a batch (max batch %d)", shrd.Stats.MaxBatch)
	}

	// Virtual-time latency sweep: zipf vs uniform at rising rates.
	var p99Ratio float64
	for _, rate := range []float64{2000, 8000, 32000} {
		zipf, err := runShardLatency(shardZipfS, rate)
		if err != nil {
			return nil, err
		}
		uni, err := runShardLatency(0, rate)
		if err != nil {
			return nil, err
		}
		for _, cell := range []shardLatencyCell{uni, zipf} {
			hot := "-"
			if cell.Hottest.Offered > 0 {
				hot = fmt.Sprintf("hot %.0f%%", 100*float64(cell.Hottest.Offered)/float64(cell.Report.Offered))
			}
			t.Rows = append(t.Rows, []string{
				"latency", "sharded", cell.Dist,
				fmt.Sprintf("%d", cell.Report.Offered),
				fmt.Sprintf("%.0f/s %s", cell.Rate, hot),
				fmt.Sprintf("%.3f", cell.Report.Latency.P50*1e3),
				fmt.Sprintf("%.3f", cell.Report.Latency.P99*1e3),
				fmt.Sprintf("%d", cell.Stats.Batches),
				fmt.Sprintf("%d", cell.Stats.MaxBatch),
			})
		}
		if uni.Report.Latency.P99 > 0 {
			ratio := zipf.Report.Latency.P99 / uni.Report.Latency.P99
			if ratio > p99Ratio {
				p99Ratio = ratio
			}
			if ratio > shardP99Ceiling {
				return nil, fmt.Errorf(
					"shard: zipf p99 %.3fms is %.1fx uniform p99 %.3fms at %.0f req/s, above the %.0fx graceful-degradation bound",
					zipf.Report.Latency.P99*1e3, ratio, uni.Report.Latency.P99*1e3, rate, shardP99Ceiling)
			}
		}
		if zipf.Report.Dispatcher.Completed == 0 {
			return nil, fmt.Errorf("shard: zipf sweep at %.0f req/s completed nothing", rate)
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("submit-path speedup at %d clients: %.2fx (sharded %.0f req/s vs single-queue %.0f; gate >= %.1fx)",
			shardFunnelClients, speedup, shrd.Throughput, base.Throughput, shardSpeedupFloor),
		fmt.Sprintf("sharded funnel batching at %d clients: %d batches over %d requests (mean %.1f/batch, max %d)",
			shardFunnelClients, shrd.Stats.Batches, shrd.Stats.BatchedRequests,
			float64(shrd.Stats.BatchedRequests)/float64(max(shrd.Stats.Batches, 1)), shrd.Stats.MaxBatch),
		fmt.Sprintf("worst zipf/uniform p99 ratio across rates: %.2fx (bound %.0fx) — hot shard queues, cold shards unaffected",
			p99Ratio, shardP99Ceiling),
		"conservation identity (submitted == completed+rejected+expired+failed) verified per shard and in aggregate for every cell",
	)
	return t, nil
}

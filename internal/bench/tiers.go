package bench

import (
	"fmt"
	"time"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/workloads"
)

// The tiers ablation isolates the execution-tier policy: the same warm-pool
// serving run under tier-0 only (the switch interpreter), hotness-triggered
// tier-up (the default), and eager lowering at compile time. Tier-1 execution
// retires bit-identical instruction counts (the differential tests enforce
// it), so the ablation shows pure dispatch-cost savings: warm latency drops,
// memory grows by exactly one LRU-evictable tier-1 artifact per module.

// tierModes is the ablation grid's policy axis.
var tierModes = []struct {
	Name   string
	Policy exec.TierPolicy
}{
	{"tier0-only", exec.TierPolicy{Mode: exec.TierModeOff}},
	{"hotness", exec.DefaultTierPolicy()},
	{"eager", exec.TierPolicy{Mode: exec.TierModeEager}},
}

// tiersPoolSize and tiersRate pick one busy, warm-dominated serving cell so
// the policy axis is the only thing moving between rows.
const (
	tiersPoolSize = 8
	tiersRate     = 300.0
	tiersWindow   = 2 * time.Second
)

// verifyTierEquivalence is the embedded smoke check: one invoke of the
// serving workload on a tier-0-only instance and on an eagerly tiered one
// must agree on result values and on the retired instruction count, and the
// tiered engine must actually have tiered up. `make tiers-smoke` runs the
// tiers experiment for exactly this gate.
func verifyTierEquivalence() error {
	bin, err := workloads.Binary(ServingWorkload)
	if err != nil {
		return err
	}
	invoke := func(policy exec.TierPolicy) (*engine.Engine, engine.InvokeResult, error) {
		eng := engine.New(engine.WAMR)
		eng.SetTierPolicy(policy)
		cm, err := eng.Compile(bin)
		if err != nil {
			return nil, engine.InvokeResult{}, err
		}
		inst, err := eng.Instantiate(cm)
		if err != nil {
			return nil, engine.InvokeResult{}, err
		}
		res, err := inst.Invoke("handle", exec.I32(servingArg))
		return eng, res, err
	}
	_, r0, err := invoke(exec.TierPolicy{Mode: exec.TierModeOff})
	if err != nil {
		return err
	}
	eng1, r1, err := invoke(exec.TierPolicy{Mode: exec.TierModeEager})
	if err != nil {
		return err
	}
	if r0.Tier != 0 || r1.Tier != 1 {
		return fmt.Errorf("tiers: wrong execution tiers (%d, %d), want (0, 1)", r0.Tier, r1.Tier)
	}
	if r0.Instructions != r1.Instructions {
		return fmt.Errorf("tiers: instruction counts diverged: tier0 %d, tier1 %d",
			r0.Instructions, r1.Instructions)
	}
	if len(r0.Values) != len(r1.Values) {
		return fmt.Errorf("tiers: result arity diverged")
	}
	for i := range r0.Values {
		if r0.Values[i] != r1.Values[i] {
			return fmt.Errorf("tiers: result %d diverged: %d vs %d", i, r0.Values[i], r1.Values[i])
		}
	}
	if st := eng1.CacheStats(); st.Tier1.Misses == 0 || st.Tier1Bytes <= 0 {
		return fmt.Errorf("tiers: eager tier-up not recorded in the module cache: %+v", st)
	}
	return nil
}

// AblationTiers sweeps the tier policy across every engine profile on one
// warm serving cell and renders warm latency, tier-up activity, and the
// once-per-node tier-1 artifact charge. A hotness cell that never tiers up,
// or a tiered cell whose invokes are not visibly cheaper warm than
// tier0-only, is an error — the experiment is its own smoke test.
func AblationTiers() (*Table, error) {
	if err := verifyTierEquivalence(); err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf(
			"Ablation: execution tiers (pool %d, %.0f req/s, %.0fs window; identical instruction streams by construction)",
			tiersPoolSize, tiersRate, tiersWindow.Seconds()),
		Columns: []string{
			"engine", "tier policy", "done", "cold", "tier-ups",
			"tier1 KiB", "warm p50 (ms)", "p95 (ms)",
		},
	}
	warmP50 := map[string]map[string]float64{}
	for _, p := range engine.Profiles() {
		warmP50[p.Name] = map[string]float64{}
		for _, mode := range tierModes {
			m, err := MeasureServingTiered(p, tiersPoolSize, tiersRate, tiersWindow, mode.Policy)
			if err != nil {
				return nil, err
			}
			rep := m.Report
			if err := checkTierCell(p, mode.Name, m); err != nil {
				return nil, err
			}
			if rep.WarmLatency.N > 0 {
				warmP50[p.Name][mode.Name] = rep.WarmLatency.P50
			}
			t.Rows = append(t.Rows, []string{
				p.Name,
				mode.Name,
				fmt.Sprintf("%d", rep.Dispatcher.Completed),
				fmt.Sprintf("%d", rep.Pool.ColdStarts),
				fmt.Sprintf("%d", m.TierUps),
				fmt.Sprintf("%.1f", float64(m.Tier1Bytes)/1024),
				fmt.Sprintf("%.3f", rep.WarmLatency.P50*1e3),
				fmt.Sprintf("%.3f", rep.Latency.P95*1e3),
			})
		}
	}
	for _, p := range engine.Profiles() {
		t0, hot := warmP50[p.Name]["tier0-only"], warmP50[p.Name]["hotness"]
		if t0 > 0 && hot > 0 && t0 > hot {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: warm p50 %.3f ms tier0-only vs %.3f ms after hotness tier-up (%.2fx)",
				p.Name, t0*1e3, hot*1e3, t0/hot))
		}
	}
	t.Notes = append(t.Notes,
		"tier-1 code is a digest-keyed artifact charged once per node (wasm-t1:<digest>) and LRU-evictable; eviction falls back to tier 0",
		"tier0-only vs tiered rows complete the same requests with bit-identical per-request instruction counts")
	return t, nil
}

// checkTierCell asserts per-cell invariants: policy off must never tier up;
// hotness and eager must (the serving cell is far past any threshold), must
// publish a tier-1 artifact, and must beat tier0-only's warm p50 when the
// profile models a real tier-1 speedup.
func checkTierCell(p engine.Profile, mode string, m ServingMeasurement) error {
	switch mode {
	case "tier0-only":
		if m.TierUps != 0 || m.Tier1Bytes != 0 {
			return fmt.Errorf("tiers %s/%s: tier-up under a tier-0-only policy (%d ups, %d bytes)",
				p.Name, mode, m.TierUps, m.Tier1Bytes)
		}
	default:
		if m.TierUps == 0 {
			return fmt.Errorf("tiers %s/%s: no tier-up in a %d req/s warm cell", p.Name, mode, int(tiersRate))
		}
		if m.Tier1Bytes <= 0 {
			return fmt.Errorf("tiers %s/%s: tier-up published no artifact", p.Name, mode)
		}
		if m.CacheStats.Tier1.Misses == 0 {
			return fmt.Errorf("tiers %s/%s: artifact missing from cache accounting: %+v",
				p.Name, mode, m.CacheStats)
		}
	}
	return nil
}

package bench

// The claims suite asserts that the reproduction preserves the paper's
// headline results (Section IV). Each test names the claim it checks. Most
// claims are "at least X%" bounds; tests assert the bound with a small
// tolerance, and where the paper gives an exact figure we assert the same
// direction and a roughly-matching factor.

import (
	"fmt"
	"testing"

	"wasmcontainers/internal/metrics"
)

// measure caches deployments across claims tests (each full 400-container
// run costs real time).
var measured = map[string]MemoryMeasurement{}

func m(t *testing.T, class, image string, density int) MemoryMeasurement {
	t.Helper()
	key := fmt.Sprintf("%s/%s/%d", class, image, density)
	if v, ok := measured[key]; ok {
		return v
	}
	v, err := MeasureDeployment(RuntimeConfig{
		Label: class, RuntimeClass: class, Image: image,
		Ours: class == "crun-wamr",
	}, density)
	if err != nil {
		t.Fatalf("measure %s x%d: %v", class, density, err)
	}
	measured[key] = v
	return v
}

const density = 100 // representative density for memory claims

// Claim (abstract, IV-B): ours reduces memory 11%-78% per container vs
// existing Wasm runtimes.
func TestClaimOverallWasmReduction(t *testing.T) {
	ours := m(t, "crun-wamr", WasmImage, density)
	for _, class := range []string{"crun-wasmtime", "crun-wasmer", "crun-wasmedge", "wasmtime", "wasmedge", "wasmer"} {
		other := m(t, class, WasmImage, density)
		red := metrics.Reduction(ours.FreePerContainerMiB, other.FreePerContainerMiB)
		if red < 11 || red > 79 {
			t.Errorf("vs %s: reduction %.1f%%, paper range is 11%%-78%%", class, red)
		}
	}
}

// Claim (IV-B): ours uses at least 50.34% less memory than any other crun
// Wasm runtime per the metrics server.
func TestClaimFig3MetricsServerReduction(t *testing.T) {
	ours := m(t, "crun-wamr", WasmImage, density)
	for _, class := range []string{"crun-wasmtime", "crun-wasmer", "crun-wasmedge"} {
		other := m(t, class, WasmImage, density)
		red := metrics.Reduction(ours.MetricsPerContainerMiB, other.MetricsPerContainerMiB)
		if red < 50.34-1.0 {
			t.Errorf("vs %s (metrics server): %.2f%%, paper claims >= 50.34%%", class, red)
		}
	}
}

// Claim (IV-B): ours uses at least 40.0% less memory than any other crun
// Wasm runtime per free.
func TestClaimFig4FreeReduction(t *testing.T) {
	ours := m(t, "crun-wamr", WasmImage, density)
	for _, class := range []string{"crun-wasmtime", "crun-wasmer", "crun-wasmedge"} {
		other := m(t, class, WasmImage, density)
		red := metrics.Reduction(ours.FreePerContainerMiB, other.FreePerContainerMiB)
		if red < 40.0-1.0 {
			t.Errorf("vs %s (free): %.2f%%, paper claims >= 40.0%%", class, red)
		}
	}
}

// Claim (IV-B): free reports higher usage than the metrics server, up to
// ~42% more.
func TestClaimFreeExceedsMetricsServer(t *testing.T) {
	maxGap := 0.0
	for _, class := range []string{"crun-wamr", "crun-wasmtime", "crun-wasmedge", "wasmtime", "wasmer"} {
		mm := m(t, class, WasmImage, density)
		gap := metrics.Increase(mm.FreePerContainerMiB, mm.MetricsPerContainerMiB)
		if gap <= 0 {
			t.Errorf("%s: free (%.2f) does not exceed metrics server (%.2f)",
				class, mm.FreePerContainerMiB, mm.MetricsPerContainerMiB)
		}
		if gap > maxGap {
			maxGap = gap
		}
	}
	if maxGap < 25 || maxGap > 55 {
		t.Errorf("max free-vs-metrics gap %.1f%%, paper reports up to 42%%", maxGap)
	}
}

// Claim (IV-B): per-container memory does not vary significantly between
// deployment densities.
func TestClaimDensityStability(t *testing.T) {
	for _, class := range []string{"crun-wamr", "crun-wasmtime", "wasmtime"} {
		at10 := m(t, class, WasmImage, 10)
		at400 := m(t, class, WasmImage, 400)
		drift := at10.MetricsPerContainerMiB / at400.MetricsPerContainerMiB
		if drift < 0.95 || drift > 1.05 {
			t.Errorf("%s: metrics-server per-container drifted %0.2fx between 10 and 400", class, drift)
		}
	}
}

// Claim (IV-C): ours beats the best runwasi shim (containerd-shim-wasmtime)
// by at least 10.87% and the worst (wasmer) by ~77.53% (free view).
func TestClaimFig5RunwasiReductions(t *testing.T) {
	ours := m(t, "crun-wamr", WasmImage, density)
	best := m(t, "wasmtime", WasmImage, density)
	red := metrics.Reduction(ours.FreePerContainerMiB, best.FreePerContainerMiB)
	if red < 10.87-1.0 {
		t.Errorf("vs containerd-shim-wasmtime: %.2f%%, paper claims >= 10.87%%", red)
	}
	worst := m(t, "wasmer", WasmImage, density)
	redWorst := metrics.Reduction(ours.FreePerContainerMiB, worst.FreePerContainerMiB)
	if redWorst < 74 || redWorst > 81 {
		t.Errorf("vs containerd-shim-wasmer: %.2f%%, paper reports 77.53%%", redWorst)
	}
}

// Claim (IV-D): ours uses at least ~18% less memory than Python containers
// per the metrics server (17.98% crun, 18.15% runC), and is the only Wasm
// runtime below the Python baselines there.
func TestClaimFig6PythonMetricsServer(t *testing.T) {
	ours := m(t, "crun-wamr", WasmImage, density)
	crunPy := m(t, "crun", PythonImage, density)
	runcPy := m(t, "runc", PythonImage, density)
	if red := metrics.Reduction(ours.MetricsPerContainerMiB, crunPy.MetricsPerContainerMiB); red < 16.9 {
		t.Errorf("vs crun-python: %.2f%%, paper claims >= 17.98%%", red)
	}
	if red := metrics.Reduction(ours.MetricsPerContainerMiB, runcPy.MetricsPerContainerMiB); red < 16.9 {
		t.Errorf("vs runc-python: %.2f%%, paper claims >= 18.15%%", red)
	}
	// Every other Wasm runtime sits above Python in the metrics-server view.
	for _, class := range []string{"crun-wasmtime", "crun-wasmer", "crun-wasmedge", "wasmtime", "wasmedge", "wasmer"} {
		other := m(t, class, WasmImage, density)
		if other.MetricsPerContainerMiB < crunPy.MetricsPerContainerMiB {
			t.Errorf("%s (%.2f MiB) undercuts python (%.2f MiB); paper says ours is the only one",
				class, other.MetricsPerContainerMiB, crunPy.MetricsPerContainerMiB)
		}
	}
}

// Claim (IV-D): free view — ours >= 16.38% under crun-python and >= 17.87%
// under runc-python; shim-wasmtime also undercuts Python (by >= 4.66%).
func TestClaimFig7PythonFree(t *testing.T) {
	ours := m(t, "crun-wamr", WasmImage, density)
	crunPy := m(t, "crun", PythonImage, density)
	runcPy := m(t, "runc", PythonImage, density)
	if red := metrics.Reduction(ours.FreePerContainerMiB, crunPy.FreePerContainerMiB); red < 16.38-1 {
		t.Errorf("vs crun-python (free): %.2f%%, paper claims >= 16.38%%", red)
	}
	if red := metrics.Reduction(ours.FreePerContainerMiB, runcPy.FreePerContainerMiB); red < 17.87-1 {
		t.Errorf("vs runc-python (free): %.2f%%, paper claims >= 17.87%%", red)
	}
	shim := m(t, "wasmtime", WasmImage, density)
	if red := metrics.Reduction(shim.FreePerContainerMiB, crunPy.FreePerContainerMiB); red < 4.66-1 {
		t.Errorf("shim-wasmtime vs python (free): %.2f%%, paper claims >= 4.66%%", red)
	}
}

// Claim (IV-E, Fig 8): at 10 containers, ours starts under ~3.3s, beats
// every other crun engine, beats both Python baselines, but loses to the
// wasmtime/wasmedge shims by up to ~11.45%.
func TestClaimFig8Startup10(t *testing.T) {
	ours := m(t, "crun-wamr", WasmImage, 10)
	if ours.StartupSeconds > 3.35 {
		t.Errorf("ours at 10 ctrs: %.2fs, paper reports 3.24s", ours.StartupSeconds)
	}
	for _, class := range []string{"crun-wasmtime", "crun-wasmer", "crun-wasmedge"} {
		other := m(t, class, WasmImage, 10)
		if other.StartupSeconds <= ours.StartupSeconds {
			t.Errorf("%s (%.2fs) should be slower than ours (%.2fs) at 10 ctrs",
				class, other.StartupSeconds, ours.StartupSeconds)
		}
	}
	for _, py := range []string{"crun", "runc"} {
		pyM := m(t, py, PythonImage, 10)
		red := metrics.Reduction(ours.StartupSeconds, pyM.StartupSeconds)
		if red < 1.5 || red > 20 {
			t.Errorf("vs %s-python startup: %.1f%% faster, paper range 3%%-18%%", py, red)
		}
	}
	for _, shim := range []string{"wasmtime", "wasmedge"} {
		shimM := m(t, shim, WasmImage, 10)
		adv := metrics.Reduction(shimM.StartupSeconds, ours.StartupSeconds)
		if adv <= 0 || adv > 14 {
			t.Errorf("shim %s advantage at 10 ctrs: %.1f%%, paper reports up to 11.45%%", shim, adv)
		}
	}
}

// Claim (IV-E, Fig 9): at 400 containers the ranking flips — ours beats
// shim-wasmedge by ~18.82% and shim-wasmtime by ~28.38%, but is ~6.93%
// slower than crun-wasmtime; ours still beats both Python baselines.
func TestClaimFig9Startup400(t *testing.T) {
	ours := m(t, "crun-wamr", WasmImage, 400)
	shimEdge := m(t, "wasmedge", WasmImage, 400)
	shimTime := m(t, "wasmtime", WasmImage, 400)
	if red := metrics.Reduction(ours.StartupSeconds, shimEdge.StartupSeconds); red < 16 || red > 22 {
		t.Errorf("vs shim-wasmedge at 400: %.1f%% faster, paper reports 18.82%%", red)
	}
	if red := metrics.Reduction(ours.StartupSeconds, shimTime.StartupSeconds); red < 25 || red > 32 {
		t.Errorf("vs shim-wasmtime at 400: %.1f%% faster, paper reports 28.38%%", red)
	}
	crunTime := m(t, "crun-wasmtime", WasmImage, 400)
	slower := metrics.Increase(ours.StartupSeconds, crunTime.StartupSeconds)
	if slower < 4 || slower > 10 {
		t.Errorf("vs crun-wasmtime at 400: %.1f%% slower, paper reports 6.93%%", slower)
	}
	for _, py := range []string{"crun", "runc"} {
		pyM := m(t, py, PythonImage, 400)
		if ours.StartupSeconds >= pyM.StartupSeconds {
			t.Errorf("ours (%.1fs) should beat %s-python (%.1fs) at 400", ours.StartupSeconds, py, pyM.StartupSeconds)
		}
	}
}

// Claim (III-C): dynamic library loading keeps the engine out of per-
// container memory; static linking pays the library in every container.
func TestClaimDynamicLoadingAblation(t *testing.T) {
	dyn, err := measureCrunDirect(false, 50)
	if err != nil {
		t.Fatal(err)
	}
	static, err := measureCrunDirect(true, 50)
	if err != nil {
		t.Fatal(err)
	}
	if dyn >= static {
		t.Fatalf("dynamic (%.2f) should be below static (%.2f)", dyn, static)
	}
	// WAMR's library is ~1.5 MiB: the static penalty per container should be
	// roughly that.
	penalty := static - dyn
	if penalty < 1.0 || penalty > 2.0 {
		t.Fatalf("static-linking penalty %.2f MiB/ctr, expected ~1.5", penalty)
	}
}

// Table sanity: every registered experiment runs and renders.
func TestAllCheapExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy")
	}
	for _, id := range []string{"table1", "table2", "ablation-mode"} {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		table, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 || table.Format() == "" {
			t.Fatalf("%s: empty table", id)
		}
	}
}

// Per-container deviation across pods is negligible (paper: < 0.1 MB).
func TestClaimNegligiblePerContainerDeviation(t *testing.T) {
	cluster, pods := deployForTest(t, "crun-wamr", WasmImage, 50)
	var samples []float64
	for _, pm := range cluster.Metrics.AllPodMetrics(pods) {
		samples = append(samples, float64(pm.MemoryBytes)/(1024*1024))
	}
	s := metrics.Summarize(samples)
	if s.Max-s.Min > 0.1 {
		t.Fatalf("per-container spread %.3f MiB exceeds 0.1 MiB: %s", s.Max-s.Min, s)
	}
}

// Claim (IV-E): at 10 containers ours executes "below the average across
// all tested runtimes".
func TestClaimFig8BelowAverage(t *testing.T) {
	var total float64
	var ours float64
	for _, cfg := range AllConfigs {
		mm := m(t, cfg.RuntimeClass, cfg.Image, 10)
		total += mm.StartupSeconds
		if cfg.Ours {
			ours = mm.StartupSeconds
		}
	}
	avg := total / float64(len(AllConfigs))
	if ours >= avg {
		t.Fatalf("ours %.2fs not below all-runtime average %.2fs", ours, avg)
	}
}

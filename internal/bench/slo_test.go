package bench

import (
	"encoding/json"
	"testing"
	"time"

	"wasmcontainers/internal/obs/tsdb"
)

// TestTableJSONSchemaV3TimeSeries pins the results/<id>.json contract: the
// schema version is 3 and an attached tsdb rollup renders under the
// `timeseries` key.
func TestTableJSONSchemaV3TimeSeries(t *testing.T) {
	tbl := &Table{
		Title:      "x",
		Columns:    []string{"a"},
		Rows:       [][]string{{"1"}},
		TimeSeries: &tsdb.Summary{IntervalNs: int64(time.Second)},
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(tbl.JSON()), &decoded); err != nil {
		t.Fatal(err)
	}
	if v, _ := decoded["schema_version"].(float64); int(v) != 3 {
		t.Fatalf("schema_version = %v, want 3", decoded["schema_version"])
	}
	ts, ok := decoded["timeseries"].(map[string]any)
	if !ok {
		t.Fatalf("timeseries block missing: %v", decoded)
	}
	if v, _ := ts["interval_ns"].(float64); int64(v) != int64(time.Second) {
		t.Fatalf("timeseries interval = %v", ts["interval_ns"])
	}
	// Without a rollup the key must stay absent, not render as null.
	tbl.TimeSeries = nil
	decoded = nil
	if err := json.Unmarshal([]byte(tbl.JSON()), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, present := decoded["timeseries"]; present {
		t.Fatal("empty timeseries must be omitted")
	}
}

// TestMeasureSLOServingGatesAndDeterminism runs the faulted arm twice on a
// short window: the page must fire within one long window of onset, and both
// runs must produce byte-identical rollups (the tsdb closes windows on the
// DES clock, so wall time cannot leak in).
func TestMeasureSLOServingGatesAndDeterminism(t *testing.T) {
	run := func() SLOMeasurement {
		m, err := MeasureSLOServing(true, 150, 600*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := run()
	if a.FirstFireNs < 0 {
		t.Fatalf("page never fired: %+v", a.Status)
	}
	if d := a.FirstFireNs - a.OnsetNs; d <= 0 || d > int64(sloBaseWindow) {
		t.Fatalf("fire delay %.1fms outside (0, %s]", float64(d)/1e6, sloBaseWindow)
	}
	aj, err := json.Marshal(a.TSDB)
	if err != nil {
		t.Fatal(err)
	}
	b := run()
	bj, err := json.Marshal(b.TSDB)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("rollups differ across identical runs:\n%s\n%s", aj, bj)
	}
	if a.FirstFireNs != b.FirstFireNs {
		t.Fatalf("fire times differ: %d vs %d", a.FirstFireNs, b.FirstFireNs)
	}

	// The baseline arm stays silent.
	m, err := MeasureSLOServing(false, 150, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if m.FirstFireNs >= 0 {
		t.Fatalf("baseline fired: %+v", m.Status)
	}
}

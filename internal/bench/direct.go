package bench

import (
	"fmt"

	"wasmcontainers/internal/core"
	"wasmcontainers/internal/oci"
	"wasmcontainers/internal/simos"
	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/workloads"
)

// WasmBundle builds an OCI bundle holding the named workload module,
// annotated for the Wasm handler. Shared by ablations, examples, and tests.
func WasmBundle(workload string) (*oci.Bundle, error) {
	bin, err := workloads.Binary(workload)
	if err != nil {
		return nil, err
	}
	rootfs := vfs.New()
	if err := rootfs.WriteFile("/app.wasm", bin); err != nil {
		return nil, err
	}
	if err := rootfs.MkdirAll("/tmp"); err != nil {
		return nil, err
	}
	spec := &oci.Spec{
		Version: oci.SpecVersion,
		Process: oci.Process{Args: []string{"/app.wasm"}, Env: []string{"PATH=/usr/bin"}, Cwd: "/"},
		Root:    oci.Root{Path: "rootfs"},
		Annotations: map[string]string{
			oci.WasmVariantAnnotation: "compat",
		},
		Linux: &oci.Linux{Namespaces: oci.DefaultNamespaces()},
	}
	return oci.NewBundle("/run/bundles/"+workload, spec, rootfs)
}

// measureCrunDirect starts n Wasm containers straight through the crun
// runtime (no Kubernetes) and returns the free-view MiB per container; used
// by the dynamic-vs-static linking ablation where the difference is purely a
// crun property.
func measureCrunDirect(static bool, n int) (float64, error) {
	node := simos.NewNode(simos.DefaultNodeConfig())
	crun := core.New(core.Config{Node: node, StaticEngineLinking: static})
	for i := 0; i < n; i++ {
		bundle, err := WasmBundle("minimal-service")
		if err != nil {
			return 0, err
		}
		bundle.Spec.Linux.CgroupsPath = fmt.Sprintf("/crun/ctr-%d", i)
		id := fmt.Sprintf("ctr-%d", i)
		if err := crun.Create(id, bundle); err != nil {
			return 0, err
		}
		if _, err := crun.Start(id); err != nil {
			return 0, err
		}
	}
	return mib(node.UsedBeyondIdle()) / float64(n), nil
}

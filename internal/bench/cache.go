package bench

import (
	"fmt"
	"time"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/metrics"
	"wasmcontainers/internal/workloads"
)

// cacheReps is how many instantiations each cell of the cache ablation times.
// The medians of host wall-clock microbenchmarks at microsecond scale need a
// few hundred reps to sit still under scheduler noise.
const cacheReps = 256

// cacheDensity is the pod count used to report the node-level shared-code
// saving: without the cache every pod would hold its own compiled copy.
const cacheDensity = 100

// AblationModuleCache contrasts the cold compile+instantiate path (every pod
// pays decode + validate + precompile) with the content-addressed cache hit
// path (one compile per module digest per node), for every engine profile.
// Latencies are real host wall-clock over the interpreter's actual work, not
// simulated time: the cache elides host-side compilation, which is the same
// work regardless of which engine profile's cost model wraps it.
func AblationModuleCache() (*Table, error) {
	bin, err := workloads.Binary("request-handler")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Ablation: content-addressed module cache, cold vs cached instantiate",
		Columns: []string{
			"engine", "cold p50 (us)", "cached p50 (us)", "speedup",
			"code (KiB)", fmt.Sprintf("saved/node @%d pods (KiB)", cacheDensity),
			"hits", "misses",
		},
	}
	for _, p := range engine.Profiles() {
		cold := make([]float64, 0, cacheReps)
		for i := 0; i < cacheReps; i++ {
			// A fresh engine per rep means a fresh private cache: this is the
			// no-sharing baseline where every pod recompiles the module.
			eng := engine.New(p)
			start := time.Now()
			cm, err := eng.Compile(bin)
			if err != nil {
				return nil, err
			}
			if _, err := eng.Instantiate(cm); err != nil {
				return nil, err
			}
			cold = append(cold, float64(time.Since(start).Nanoseconds())/1e3)
		}

		eng := engine.New(p)
		cm, err := eng.Compile(bin) // warm the cache: the one real compile
		if err != nil {
			return nil, err
		}
		cached := make([]float64, 0, cacheReps)
		for i := 0; i < cacheReps; i++ {
			start := time.Now()
			cm, err = eng.Compile(bin)
			if err != nil {
				return nil, err
			}
			if _, err := eng.Instantiate(cm); err != nil {
				return nil, err
			}
			cached = append(cached, float64(time.Since(start).Nanoseconds())/1e3)
		}
		st := eng.CacheStats()

		cs := metrics.Summarize(cold)
		ws := metrics.Summarize(cached)
		codeKiB := float64(cm.CodeBytes()) / 1024
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%.1f", cs.P50),
			fmt.Sprintf("%.1f", ws.P50),
			fmt.Sprintf("%.2fx", cs.P50/ws.P50),
			fmt.Sprintf("%.1f", codeKiB),
			fmt.Sprintf("%.1f", codeKiB*float64(cacheDensity-1)),
			fmt.Sprintf("%d", st.Hits),
			fmt.Sprintf("%d", st.Misses),
		})
	}
	t.Notes = append(t.Notes,
		"cold = fresh engine (empty cache) per instantiate; cached = one node-level cache shared by all instantiations",
		fmt.Sprintf("saved/node = compiled-code bytes not duplicated when %d pods of one module share a digest", cacheDensity),
	)
	return t, nil
}

package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/oci"
	"wasmcontainers/internal/simos"
	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/workloads"
)

func testNode() *simos.Node {
	return simos.NewNode(simos.NodeConfig{
		Name: "t", RAMBytes: 16 * simos.GiB, Cores: 4,
		BaseSystemBytes: 256 * simos.MiB,
	})
}

// wasmBundle builds a bundle for the named workload with annotations.
func wasmBundle(t *testing.T, workload, cgroup string) *oci.Bundle {
	t.Helper()
	bin, err := workloads.Binary(workload)
	if err != nil {
		t.Fatal(err)
	}
	rootfs := vfs.New()
	if err := rootfs.WriteFile("/app.wasm", bin); err != nil {
		t.Fatal(err)
	}
	rootfs.MkdirAll("/data")
	spec := &oci.Spec{
		Version:     oci.SpecVersion,
		Process:     oci.Process{Args: []string{"/app.wasm"}, Env: []string{"SVC=test"}, Cwd: "/"},
		Root:        oci.Root{Path: "rootfs"},
		Annotations: map[string]string{oci.WasmVariantAnnotation: "compat"},
		Linux:       &oci.Linux{CgroupsPath: cgroup, Namespaces: oci.DefaultNamespaces()},
	}
	b, err := oci.NewBundle("/bundles/"+workload, spec, rootfs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func pythonBundle(t *testing.T, script, cgroup string) *oci.Bundle {
	t.Helper()
	rootfs := vfs.New()
	rootfs.MkdirAll("/app")
	if err := rootfs.WriteFile("/app/app.py", []byte(script)); err != nil {
		t.Fatal(err)
	}
	spec := &oci.Spec{
		Version: oci.SpecVersion,
		Process: oci.Process{Args: []string{"python3", "/app/app.py"}, Cwd: "/"},
		Root:    oci.Root{Path: "rootfs"},
		Linux:   &oci.Linux{CgroupsPath: cgroup, Namespaces: oci.DefaultNamespaces()},
	}
	b, err := oci.NewBundle("/bundles/py", spec, rootfs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCrunWasmLifecycle(t *testing.T) {
	node := testNode()
	crun := New(Config{Node: node})
	b := wasmBundle(t, "minimal-service", "/pods/p1/app")
	if err := crun.Create("c1", b); err != nil {
		t.Fatal(err)
	}
	st, err := crun.State("c1")
	if err != nil || st.Status != oci.StatusCreated {
		t.Fatalf("state after create: %+v, %v", st, err)
	}
	report, err := crun.Start("c1")
	if err != nil {
		t.Fatal(err)
	}
	if report.Stdout != "service ready\n" || report.ExitCode != 0 {
		t.Fatalf("report = %+v", report)
	}
	if report.Handler != "wasm:wamr" {
		t.Fatalf("handler = %q", report.Handler)
	}
	if report.Cost.CPUWork <= 0 || report.Instructions == 0 {
		t.Fatalf("cost/telemetry missing: %+v", report)
	}
	st, _ = crun.State("c1")
	if st.Status != oci.StatusRunning || st.Pid == 0 {
		t.Fatalf("state after start: %+v", st)
	}
	// Memory is charged to the pod cgroup.
	cg, ok := node.Cgroup("/pods/p1")
	if !ok || cg.MemoryCurrent() <= 0 {
		t.Fatal("no memory charged to pod cgroup")
	}
	// Double start fails.
	if _, err := crun.Start("c1"); !errors.Is(err, oci.ErrBadState) {
		t.Fatalf("double start: %v", err)
	}
	// Kill then delete.
	if err := crun.Delete("c1"); !errors.Is(err, oci.ErrBadState) {
		t.Fatalf("delete running: %v", err)
	}
	if err := crun.Kill("c1", 9); err != nil {
		t.Fatal(err)
	}
	if cg.MemoryCurrent() != 0 {
		t.Fatalf("memory leaked after kill: %d", cg.MemoryCurrent())
	}
	if err := crun.Delete("c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := crun.State("c1"); !errors.Is(err, oci.ErrNotFound) {
		t.Fatalf("state after delete: %v", err)
	}
}

func TestCrunWASIArgumentForwarding(t *testing.T) {
	// Integration aspect 2: OCI process args/env reach the module via WASI.
	node := testNode()
	crun := New(Config{Node: node})
	b := wasmBundle(t, "echo-args", "/pods/echo/app")
	b.Spec.Process.Args = []string{"/app.wasm", "--listen", ":9000"}
	if err := crun.Create("echo", b); err != nil {
		t.Fatal(err)
	}
	report, err := crun.Start("echo")
	if err != nil {
		t.Fatal(err)
	}
	want := "/app.wasm\n--listen\n:9000\n"
	if report.Stdout != want {
		t.Fatalf("stdout = %q, want %q", report.Stdout, want)
	}
}

func TestCrunPreopenedDirectories(t *testing.T) {
	// Integration aspect 2 (cont.): mounts become preopened dirs; the
	// file-io workload persists a file into the bundle rootfs.
	node := testNode()
	crun := New(Config{Node: node})
	b := wasmBundle(t, "file-io", "/pods/io/app")
	if err := crun.Create("io", b); err != nil {
		t.Fatal(err)
	}
	report, err := crun.Start("io")
	if err != nil {
		t.Fatal(err)
	}
	if report.Stdout != "ok\n" {
		t.Fatalf("stdout = %q", report.Stdout)
	}
	data, err := b.Rootfs.ReadFile("/state.bin")
	if err != nil || string(data) != "persisted-payload" {
		t.Fatalf("guest file: %q, %v", data, err)
	}
}

func TestCrunEngineSelection(t *testing.T) {
	// The same crun code embeds all four engines; footprints differ.
	footprints := map[string]int64{}
	for _, prof := range engine.Profiles() {
		node := testNode()
		crun := New(Config{Node: node, Engine: prof})
		if crun.EngineName() != prof.Name {
			t.Fatalf("engine name = %s", crun.EngineName())
		}
		b := wasmBundle(t, "minimal-service", "/pods/x/app")
		if err := crun.Create("c", b); err != nil {
			t.Fatal(err)
		}
		if _, err := crun.Start("c"); err != nil {
			t.Fatal(err)
		}
		cg, _ := node.Cgroup("/pods/x")
		footprints[prof.Name] = cg.MemoryCurrent()
	}
	if !(footprints["wamr"] < footprints["wasmedge"] &&
		footprints["wasmedge"] < footprints["wasmtime"] &&
		footprints["wasmtime"] < footprints["wasmer"]) {
		t.Fatalf("footprint ordering wrong: %v", footprints)
	}
}

func TestCrunDynamicVsStaticLinking(t *testing.T) {
	// Integration aspect 1: dynamic loading shares the engine library.
	run := func(static bool, n int) int64 {
		node := testNode()
		crun := New(Config{Node: node, StaticEngineLinking: static})
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("c%d", i)
			b := wasmBundle(t, "minimal-service", "/pods/"+id+"/app")
			if err := crun.Create(id, b); err != nil {
				t.Fatal(err)
			}
			if _, err := crun.Start(id); err != nil {
				t.Fatal(err)
			}
		}
		return node.UsedBeyondIdle()
	}
	const n = 8
	dyn := run(false, n)
	static := run(true, n)
	libBytes := engine.WAMR.SharedLibBytes
	// Static pays the library n times; dynamic pays once.
	wantDelta := libBytes * int64(n-1)
	delta := static - dyn
	if delta < wantDelta-int64(n)*simos.PageSize || delta > wantDelta+int64(n)*simos.PageSize {
		t.Fatalf("static-dynamic delta = %d, want ~%d", delta, wantDelta)
	}
}

func TestCrunPythonHandler(t *testing.T) {
	node := testNode()
	crun := New(Config{Node: node})
	b := pythonBundle(t, "print('py in crun')", "/pods/py/app")
	if err := crun.Create("py", b); err != nil {
		t.Fatal(err)
	}
	report, err := crun.Start("py")
	if err != nil {
		t.Fatal(err)
	}
	if report.Stdout != "py in crun\n" || report.Handler != "native:pylite" {
		t.Fatalf("report = %+v", report)
	}
}

func TestCrunPythonGuestErrorIsExitCode(t *testing.T) {
	node := testNode()
	crun := New(Config{Node: node})
	b := pythonBundle(t, "x = 1 / 0", "/pods/err/app")
	if err := crun.Create("err", b); err != nil {
		t.Fatal(err)
	}
	report, err := crun.Start("err")
	if err != nil {
		t.Fatal(err)
	}
	if report.ExitCode != 1 {
		t.Fatalf("exit = %d, want 1", report.ExitCode)
	}
	if !strings.Contains(report.Stdout, "division by zero") {
		t.Fatalf("stdout = %q", report.Stdout)
	}
}

func TestCrunMissingModule(t *testing.T) {
	node := testNode()
	crun := New(Config{Node: node})
	b := wasmBundle(t, "minimal-service", "/pods/m/app")
	b.Spec.Process.Args = []string{"/nonexistent.wasm"}
	if err := crun.Create("m", b); err != nil {
		t.Fatal(err)
	}
	if _, err := crun.Start("m"); err == nil {
		t.Fatal("start with missing module succeeded")
	}
}

func TestCrunRejectsNonPythonNative(t *testing.T) {
	node := testNode()
	crun := New(Config{Node: node})
	rootfs := vfs.New()
	spec := &oci.Spec{
		Version: oci.SpecVersion,
		Process: oci.Process{Args: []string{"/bin/sh"}},
		Root:    oci.Root{Path: "rootfs"},
		Linux:   &oci.Linux{CgroupsPath: "/pods/sh/app"},
	}
	b, err := oci.NewBundle("/b", spec, rootfs)
	if err != nil {
		t.Fatal(err)
	}
	if err := crun.Create("sh", b); err != nil {
		t.Fatal(err)
	}
	if _, err := crun.Start("sh"); !errors.Is(err, oci.ErrNoHandler) {
		t.Fatalf("expected ErrNoHandler, got %v", err)
	}
}

func TestCrunStartCostComposition(t *testing.T) {
	// The WAMR path's cost = crun create + engine start (+ real exec time).
	node := testNode()
	crun := New(Config{Node: node})
	b := wasmBundle(t, "minimal-service", "/pods/c/app")
	crun.Create("c", b)
	report, err := crun.Start("c")
	if err != nil {
		t.Fatal(err)
	}
	minCPU := DefaultCreateCPUWork + engine.WAMR.EmbedCPUWork
	if report.Cost.CPUWork < minCPU {
		t.Fatalf("CPU work %v below composed minimum %v", report.Cost.CPUWork, minCPU)
	}
	if report.Cost.FixedDelay != engine.WAMR.EmbedFixedDelay {
		t.Fatalf("fixed delay %v", report.Cost.FixedDelay)
	}
}

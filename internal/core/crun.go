// Package core implements the paper's primary contribution: the crun OCI
// runtime with an embedded WebAssembly Micro Runtime (WAMR) handler. The
// three integration aspects of Section III-C are all present as real control
// flow:
//
//  1. Dynamic library loading — the engine's shared library is mapped into
//     the container process on first use and its resident text is shared
//     across every Wasm container on the node (and costs nothing when no
//     Wasm container runs). A static-linking mode exists for the ablation
//     benchmark.
//  2. WASI argument handling — process args, environment variables, and
//     pre-opened directories from the OCI spec are forwarded to the Wasm
//     module through the wasi package.
//  3. Sandboxed execution — each module runs in its own store/instance with
//     bounded call depth, its own linear memory, and a VFS-backed root, on
//     top of the pod's namespace/cgroup isolation.
//
// The same crun implementation also embeds Wasmtime, Wasmer, and WasmEdge
// (the paper's Figure 3/4 baselines) and executes non-Wasm entrypoints via
// the pylite handler (Python containers).
package core

import (
	"bytes"
	"fmt"
	"path"
	"strings"
	"time"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/oci"
	"wasmcontainers/internal/pylite"
	"wasmcontainers/internal/simos"
	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/wasi"
	"wasmcontainers/internal/wasm/cache"
)

// Version is the simulated crun version (the paper's patched build).
const Version = "1.15-wamr"

// Config configures a crun instance on a node.
type Config struct {
	// Node is the machine containers run on.
	Node *simos.Node
	// Engine is the embedded Wasm engine profile; defaults to WAMR (the
	// paper's integration).
	Engine engine.Profile
	// StaticEngineLinking disables dynamic library loading (ablation): the
	// engine's library bytes are charged privately to every container
	// process instead of being shared node-wide.
	StaticEngineLinking bool
	// ModuleCache, when set, is a node-level compiled-module cache shared
	// with other runtimes on the node, so identical module binaries compile
	// once per node rather than once per runtime. Nil gives this crun a
	// private cache (still deduplicating across its own containers).
	ModuleCache *cache.Cache
	// CreateCPUWork is the CPU cost of crun's own create+start path.
	CreateCPUWork time.Duration
	// CreateFixedDelay is crun's non-CPU setup latency.
	CreateFixedDelay time.Duration
	// MaxGuestSteps bounds pylite programs (0 = default).
	MaxGuestSteps uint64
}

// DefaultCreateCPUWork is crun's create-path CPU cost (it is the fastest of
// the three low-level runtimes, per the paper's Section III-B rationale).
const DefaultCreateCPUWork = 500 * time.Millisecond

// Crun is the low-level OCI runtime with embedded Wasm support.
type Crun struct {
	cfg    Config
	table  *oci.ContainerTable
	eng    *engine.Engine
	python *PythonHandler
	// procs maps container id -> simulated process.
	procs map[string]*simos.Process
}

// New creates a crun runtime on the given node.
func New(cfg Config) *Crun {
	if cfg.Engine.Name == "" {
		cfg.Engine = engine.WAMR
	}
	if cfg.CreateCPUWork == 0 {
		cfg.CreateCPUWork = DefaultCreateCPUWork
	}
	return &Crun{
		cfg:    cfg,
		table:  oci.NewContainerTable(),
		eng:    engine.NewWithCache(cfg.Engine, cfg.ModuleCache),
		python: NewPythonHandler(cfg.MaxGuestSteps),
		procs:  make(map[string]*simos.Process),
	}
}

// Name implements oci.Runtime.
func (c *Crun) Name() string { return "crun" }

// Version implements oci.Runtime.
func (c *Crun) Version() string { return Version }

// EngineName returns the embedded engine's name.
func (c *Crun) EngineName() string { return c.cfg.Engine.Name }

// Create implements oci.Runtime.
func (c *Crun) Create(id string, bundle *oci.Bundle) error {
	if err := bundle.Spec.Validate(); err != nil {
		return err
	}
	_, err := c.table.Add(id, bundle)
	return err
}

// Start implements oci.Runtime: it spawns the container process, dispatches
// to the Wasm or native handler, runs the entrypoint for real, and charges
// the process's memory according to the engine profile.
func (c *Crun) Start(id string) (*oci.StartReport, error) {
	ctr, err := c.table.Get(id)
	if err != nil {
		return nil, err
	}
	if ctr.Status != oci.StatusCreated {
		return nil, fmt.Errorf("%w: %s is %s", oci.ErrBadState, id, ctr.Status)
	}
	spec := ctr.Bundle.Spec
	cgPath := spec.Linux.CgroupsPath
	if cgPath == "" {
		cgPath = "/unmanaged/" + id
	}

	var report *oci.StartReport
	if spec.IsWasm() {
		report, err = c.startWasm(id, ctr, cgPath)
	} else {
		report, err = c.python.Start(c.cfg.Node, c.Name(), id, ctr, cgPath, c.procs)
	}
	if err != nil {
		return nil, err
	}
	report.Cost.CPUWork += c.cfg.CreateCPUWork
	report.Cost.FixedDelay += c.cfg.CreateFixedDelay
	ctr.Status = oci.StatusRunning
	ctr.Pid = report.Pid
	ctr.Handler = report.Handler
	return report, nil
}

// startWasm is the WAMR-crun integration path.
func (c *Crun) startWasm(id string, ctr *oci.Container, cgPath string) (*oci.StartReport, error) {
	spec := ctr.Bundle.Spec
	rootfs := ctr.Bundle.Rootfs

	// Locate the module inside the bundle rootfs.
	modulePath := spec.Process.Args[0]
	if !strings.HasPrefix(modulePath, "/") {
		modulePath = path.Join(spec.Process.Cwd, modulePath)
	}
	bin, err := rootfs.ReadFile(modulePath)
	if err != nil {
		return nil, fmt.Errorf("crun: wasm handler: reading module %s: %w", modulePath, err)
	}
	cm, err := c.eng.Compile(bin)
	if err != nil {
		return nil, fmt.Errorf("crun: wasm handler: %w", err)
	}

	// Integration aspect 2: WASI argument handling. Args/env come from the
	// OCI process spec; every mount destination plus the bundle root become
	// pre-opened directories.
	var stdout bytes.Buffer
	wasiCfg := wasi.Config{
		Args:   spec.Process.Args,
		Env:    spec.Process.Env,
		Stdout: &stdout,
		Stderr: &stdout,
		Preopens: []wasi.Preopen{
			{GuestPath: "/", FS: rootfs, HostPath: "/"},
		},
	}
	for _, m := range spec.Mounts {
		wasiCfg.Preopens = append(wasiCfg.Preopens, wasi.Preopen{
			GuestPath: m.Destination, FS: rootfs, HostPath: m.Destination,
		})
	}

	// Integration aspect 3: sandboxed execution — the module really runs
	// here, isolated in its own store.
	res, err := c.eng.Run(cm, wasiCfg)
	if err != nil {
		return nil, fmt.Errorf("crun: wasm handler: %w", err)
	}

	// Spawn the container process and charge memory.
	proc, err := c.cfg.Node.Spawn(fmt.Sprintf("crun-%s[%s]", c.cfg.Engine.Name, id), cgPath)
	if err != nil {
		return nil, err
	}
	// Copy-on-write guest memory: the container's private charge covers only
	// the pages its run dirtied; the clean remainder aliases the module's
	// shared baseline image, mapped once per node below.
	if err := proc.MapPrivate(c.eng.EmbedFootprint(res.GuestPrivateBytes)); err != nil {
		proc.Exit()
		return nil, err
	}
	// Integration aspect 1: dynamic library loading (shared across all Wasm
	// containers) vs static linking (ablation: charged per container).
	if c.cfg.StaticEngineLinking {
		if err := proc.MapPrivate(c.cfg.Engine.SharedLibBytes); err != nil {
			proc.Exit()
			return nil, err
		}
	} else {
		proc.MapShared(c.cfg.Engine.SharedLibName, c.cfg.Engine.SharedLibBytes)
	}
	// The compiled-module artifact is content-addressed and immutable, so
	// like the engine library it is mapped shared: N containers running the
	// same module charge the node one copy of compiled code. The baseline
	// memory image (post-instantiation linear memory) is its data-side twin,
	// mapped shared under the same digest.
	proc.MapShared(fmt.Sprintf("wasm-code:%x", cm.Digest[:8]), cm.CodeBytes())
	if b := cm.BaselineBytes(); b > 0 {
		proc.MapShared(fmt.Sprintf("wasm-data:%x", cm.Digest[:8]), b)
	}
	c.procs[id] = proc

	delay, cpu := c.eng.EmbedStartCost(res.SimulatedExecTime)
	return &oci.StartReport{
		Cost:         oci.StartCost{FixedDelay: delay, CPUWork: cpu},
		Pid:          proc.PID,
		ExitCode:     res.ExitCode,
		Stdout:       stdout.String(),
		Instructions: res.Instructions,
		Handler:      "wasm:" + c.cfg.Engine.Name,
	}, nil
}

// State implements oci.Runtime.
func (c *Crun) State(id string) (oci.State, error) {
	ctr, err := c.table.Get(id)
	if err != nil {
		return oci.State{}, err
	}
	return oci.State{
		Version: oci.SpecVersion, ID: id, Status: ctr.Status, Pid: ctr.Pid,
		Bundle: ctr.Bundle.Path, Annotations: ctr.Bundle.Spec.Annotations,
	}, nil
}

// Kill implements oci.Runtime.
func (c *Crun) Kill(id string, signal int) error {
	ctr, err := c.table.Get(id)
	if err != nil {
		return err
	}
	if ctr.Status != oci.StatusRunning {
		return fmt.Errorf("%w: %s is %s", oci.ErrBadState, id, ctr.Status)
	}
	if p, ok := c.procs[id]; ok {
		p.Exit()
		delete(c.procs, id)
	}
	ctr.Status = oci.StatusStopped
	return nil
}

// Delete implements oci.Runtime.
func (c *Crun) Delete(id string) error {
	ctr, err := c.table.Get(id)
	if err != nil {
		return err
	}
	if ctr.Status == oci.StatusRunning {
		return fmt.Errorf("%w: %s is running", oci.ErrBadState, id)
	}
	return c.table.Remove(id)
}

// List implements oci.Runtime.
func (c *Crun) List() []string { return c.table.List() }

// PythonHandler executes non-Wasm (Python) entrypoints via the pylite
// interpreter; it is shared by crun, runC, and youki.
type PythonHandler struct {
	maxSteps uint64
}

// PythonProfile holds the CPython-equivalent footprint/cost model.
var PythonProfile = struct {
	Version        string
	PrivateBytes   int64
	SharedLibName  string
	SharedLibBytes int64
	FixedDelay     time.Duration
	CPUWork        time.Duration
	NsPerStep      float64
}{
	Version:        "3.11",
	PrivateBytes:   4690 * 1024,
	SharedLibName:  "libpython3.11.so",
	SharedLibBytes: 5 * 1024 * 1024,
	FixedDelay:     50 * time.Millisecond,
	CPUWork:        2770 * time.Millisecond,
	NsPerStep:      40,
}

// DefaultMaxGuestSteps bounds runaway guest programs.
const DefaultMaxGuestSteps = 50_000_000

// NewPythonHandler creates the handler.
func NewPythonHandler(maxSteps uint64) *PythonHandler {
	if maxSteps == 0 {
		maxSteps = DefaultMaxGuestSteps
	}
	return &PythonHandler{maxSteps: maxSteps}
}

// Start runs a Python entrypoint: `python3 <script>` (or any argv whose
// first element names a python binary).
func (h *PythonHandler) Start(node *simos.Node, runtimeName, id string, ctr *oci.Container, cgPath string, procs map[string]*simos.Process) (*oci.StartReport, error) {
	spec := ctr.Bundle.Spec
	args := spec.Process.Args
	if len(args) < 2 || !strings.Contains(args[0], "python") {
		return nil, fmt.Errorf("%w: %v", oci.ErrNoHandler, args)
	}
	scriptPath := args[1]
	if !strings.HasPrefix(scriptPath, "/") {
		scriptPath = path.Join(spec.Process.Cwd, scriptPath)
	}
	src, err := readScript(ctr.Bundle.Rootfs, scriptPath)
	if err != nil {
		return nil, fmt.Errorf("%s: python handler: %w", runtimeName, err)
	}

	var stdout bytes.Buffer
	vm := pylite.NewVM(&stdout)
	vm.MaxSteps = h.maxSteps
	vm.Argv = args[1:]
	exitCode := uint32(0)
	if _, err := vm.RunSource(src); err != nil {
		// A guest error is a non-zero exit, not a runtime failure.
		exitCode = 1
		fmt.Fprintf(&stdout, "%v\n", err)
	}

	proc, err := node.Spawn(fmt.Sprintf("%s-python[%s]", runtimeName, id), cgPath)
	if err != nil {
		return nil, err
	}
	if err := proc.MapPrivate(PythonProfile.PrivateBytes + vm.HeapBytes); err != nil {
		proc.Exit()
		return nil, err
	}
	proc.MapShared(PythonProfile.SharedLibName, PythonProfile.SharedLibBytes)
	procs[id] = proc

	execTime := time.Duration(float64(vm.Steps) * PythonProfile.NsPerStep)
	return &oci.StartReport{
		Cost: oci.StartCost{
			FixedDelay: PythonProfile.FixedDelay,
			CPUWork:    PythonProfile.CPUWork + execTime,
		},
		Pid:          proc.PID,
		ExitCode:     exitCode,
		Stdout:       stdout.String(),
		Instructions: vm.Steps,
		Handler:      "native:pylite",
	}, nil
}

func readScript(fsys *vfs.FS, p string) (string, error) {
	b, err := fsys.ReadFile(p)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

package cri

import (
	"strings"
	"testing"

	"wasmcontainers/internal/containerd"
	"wasmcontainers/internal/simos"
)

func testService(t *testing.T) (*Service, *simos.Node) {
	t.Helper()
	node := simos.NewNode(simos.NodeConfig{
		Name: "t", RAMBytes: 32 * simos.GiB, Cores: 8,
		BaseSystemBytes: 512 * simos.MiB,
	})
	images, err := containerd.NewImageStore()
	if err != nil {
		t.Fatal(err)
	}
	client, err := containerd.NewClient(node, images)
	if err != nil {
		t.Fatal(err)
	}
	return NewService(client), node
}

func sandboxCfg(uid string, handler containerd.RuntimeHandler) PodSandboxConfig {
	return PodSandboxConfig{
		Name: "pod-" + uid, Namespace: "default", UID: uid,
		CgroupParent:   "/kubepods/pod-" + uid,
		RuntimeHandler: handler,
	}
}

func TestSandboxLifecycle(t *testing.T) {
	svc, node := testService(t)
	sbx, err := svc.RunPodSandbox(sandboxCfg("u1", containerd.HandlerCrunWAMR))
	if err != nil {
		t.Fatal(err)
	}
	// Pause container charged to the pod cgroup.
	cg, ok := node.Cgroup("/kubepods/pod-u1")
	if !ok || cg.MemoryCurrent() != simos.RoundPages(containerd.PauseContainerBytes) {
		t.Fatalf("pause memory = %d", cg.MemoryCurrent())
	}
	// Duplicate sandbox rejected.
	if _, err := svc.RunPodSandbox(sandboxCfg("u1", containerd.HandlerCrunWAMR)); err == nil {
		t.Fatal("duplicate sandbox accepted")
	}

	ctrID, err := svc.CreateContainer(sbx, ContainerConfig{
		Name: "app", Image: "minimal-service:wasm",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.StartContainer(ctrID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stdout != "service ready\n" {
		t.Fatalf("stdout = %q", rep.Stdout)
	}
	if cg.MemoryCurrent() <= simos.RoundPages(containerd.PauseContainerBytes) {
		t.Fatal("container memory not charged to pod cgroup")
	}

	if err := svc.StopPodSandbox(sbx); err != nil {
		t.Fatal(err)
	}
	if cg.MemoryCurrent() != 0 {
		t.Fatalf("memory after stop = %d", cg.MemoryCurrent())
	}
	if err := svc.RemovePodSandbox(sbx); err != nil {
		t.Fatal(err)
	}
	if _, ok := node.Cgroup("/kubepods/pod-u1"); ok {
		t.Fatal("pod cgroup not removed")
	}
	if len(svc.ListContainers()) != 0 {
		t.Fatal("containers not removed")
	}
}

func TestCreateContainerErrors(t *testing.T) {
	svc, _ := testService(t)
	if _, err := svc.CreateContainer("sbx-missing", ContainerConfig{Name: "x", Image: "minimal-service:wasm"}); err == nil {
		t.Fatal("container created in missing sandbox")
	}
	sbx, _ := svc.RunPodSandbox(sandboxCfg("u2", containerd.HandlerCrunWAMR))
	if _, err := svc.CreateContainer(sbx, ContainerConfig{Name: "x", Image: "ghost:image"}); err == nil {
		t.Fatal("unknown image accepted")
	}
	if _, err := svc.StartContainer("nope"); err == nil {
		t.Fatal("started missing container")
	}
	if err := svc.StopPodSandbox("sbx-none"); err == nil {
		t.Fatal("stopped missing sandbox")
	}
	if err := svc.RemovePodSandbox("sbx-none"); err == nil {
		t.Fatal("removed missing sandbox")
	}
}

func TestRuntimeHandlerPropagation(t *testing.T) {
	svc, _ := testService(t)
	sbx, _ := svc.RunPodSandbox(sandboxCfg("u3", containerd.HandlerShimWasmEdge))
	ctrID, err := svc.CreateContainer(sbx, ContainerConfig{Name: "app", Image: "minimal-service:wasm"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.StartContainer(ctrID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Handler, "wasmedge") {
		t.Fatalf("handler = %q, want wasmedge path", rep.Handler)
	}
}

func TestContainerArgsAndEnvForwarding(t *testing.T) {
	svc, _ := testService(t)
	sbx, _ := svc.RunPodSandbox(sandboxCfg("u4", containerd.HandlerCrunWAMR))
	ctrID, err := svc.CreateContainer(sbx, ContainerConfig{
		Name: "app", Image: "echo-args:wasm",
		Args: []string{"--x", "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.StartContainer(ctrID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stdout != "/app.wasm\n--x\n1\n" {
		t.Fatalf("stdout = %q", rep.Stdout)
	}
}

// Package cri implements the Kubernetes Container Runtime Interface subset
// the kubelet needs (RunPodSandbox / CreateContainer / StartContainer /
// StopPodSandbox / RemovePodSandbox), backed by the containerd package. This
// is the boundary drawn in the paper's Figure 1 between Kubernetes and the
// high-level container runtime.
package cri

import (
	"fmt"
	"sync"

	"wasmcontainers/internal/containerd"
	"wasmcontainers/internal/simos"
)

// PodSandboxConfig describes a pod sandbox.
type PodSandboxConfig struct {
	Name      string
	Namespace string
	UID       string
	// CgroupParent is the pod-level cgroup (e.g. /kubepods/pod-<uid>).
	CgroupParent string
	// RuntimeHandler selects the containerd runtime (RuntimeClass handler).
	RuntimeHandler containerd.RuntimeHandler
}

// ContainerConfig describes one container in a sandbox.
type ContainerConfig struct {
	Name  string
	Image string
	Args  []string
	Env   []string
}

// ContainerStartReport propagates containerd's cost/telemetry to the kubelet.
type ContainerStartReport = containerd.TaskReport

// RuntimeService is the CRI surface the kubelet consumes.
type RuntimeService interface {
	RunPodSandbox(cfg PodSandboxConfig) (string, error)
	CreateContainer(sandboxID string, cfg ContainerConfig) (string, error)
	StartContainer(containerID string) (*ContainerStartReport, error)
	StopPodSandbox(sandboxID string) error
	RemovePodSandbox(sandboxID string) error
	ListContainers() []string
}

// sandbox is the CRI-side record of a pod sandbox.
type sandbox struct {
	cfg        PodSandboxConfig
	pauseProc  *simos.Process
	containers []string
}

// Service implements RuntimeService over containerd.
type Service struct {
	mu        sync.Mutex
	client    *containerd.Client
	node      *simos.Node
	sandboxes map[string]*sandbox
	ctrToSbx  map[string]string
}

// NewService creates the CRI service for a node's containerd.
func NewService(client *containerd.Client) *Service {
	return &Service{
		client:    client,
		node:      client.Node(),
		sandboxes: make(map[string]*sandbox),
		ctrToSbx:  make(map[string]string),
	}
}

// RunPodSandbox creates the pod cgroup and pause container.
func (s *Service) RunPodSandbox(cfg PodSandboxConfig) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := "sbx-" + cfg.UID
	if _, ok := s.sandboxes[id]; ok {
		return "", fmt.Errorf("cri: sandbox %s exists", id)
	}
	s.node.CreateCgroup(cfg.CgroupParent)
	pause, err := s.node.Spawn("pause["+cfg.UID+"]", cfg.CgroupParent+"/pause")
	if err != nil {
		return "", err
	}
	if err := pause.MapPrivate(containerd.PauseContainerBytes); err != nil {
		pause.Exit()
		return "", err
	}
	s.sandboxes[id] = &sandbox{cfg: cfg, pauseProc: pause}
	return id, nil
}

// CreateContainer registers a container in a sandbox.
func (s *Service) CreateContainer(sandboxID string, cfg ContainerConfig) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sbx, ok := s.sandboxes[sandboxID]
	if !ok {
		return "", fmt.Errorf("cri: sandbox %s not found", sandboxID)
	}
	ctrID := sandboxID + "/" + cfg.Name
	_, err := s.client.CreateContainer(ctrID, cfg.Image, sbx.cfg.RuntimeHandler, containerd.ContainerOpts{
		CgroupsPath: sbx.cfg.CgroupParent + "/" + cfg.Name,
		ExtraEnv:    cfg.Env,
		ExtraArgs:   cfg.Args,
	})
	if err != nil {
		return "", err
	}
	sbx.containers = append(sbx.containers, ctrID)
	s.ctrToSbx[ctrID] = sandboxID
	return ctrID, nil
}

// StartContainer starts a created container through its shim.
func (s *Service) StartContainer(containerID string) (*ContainerStartReport, error) {
	ctr, ok := s.client.Container(containerID)
	if !ok {
		return nil, fmt.Errorf("cri: container %s not found", containerID)
	}
	task := ctr.Task()
	if task == nil {
		var err error
		task, err = ctr.NewTask()
		if err != nil {
			return nil, err
		}
	}
	return task.Start()
}

// StopPodSandbox kills all containers and the pause process.
func (s *Service) StopPodSandbox(sandboxID string) error {
	s.mu.Lock()
	sbx, ok := s.sandboxes[sandboxID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("cri: sandbox %s not found", sandboxID)
	}
	for _, ctrID := range sbx.containers {
		if ctr, ok := s.client.Container(ctrID); ok && ctr.Task() != nil {
			if err := ctr.Task().Kill(); err != nil {
				return err
			}
		}
	}
	if sbx.pauseProc != nil {
		sbx.pauseProc.Exit()
		sbx.pauseProc = nil
	}
	return nil
}

// RemovePodSandbox deletes containers, the sandbox record, and pod cgroups.
func (s *Service) RemovePodSandbox(sandboxID string) error {
	s.mu.Lock()
	sbx, ok := s.sandboxes[sandboxID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("cri: sandbox %s not found", sandboxID)
	}
	for _, ctrID := range sbx.containers {
		if err := s.client.Delete(ctrID); err != nil {
			return err
		}
		s.mu.Lock()
		delete(s.ctrToSbx, ctrID)
		s.mu.Unlock()
		s.node.RemoveCgroup(sbx.cfg.CgroupParent + "/" + ctrNameFromID(ctrID))
	}
	s.node.RemoveCgroup(sbx.cfg.CgroupParent + "/pause")
	s.node.RemoveCgroup(sbx.cfg.CgroupParent)
	s.mu.Lock()
	delete(s.sandboxes, sandboxID)
	s.mu.Unlock()
	return nil
}

func ctrNameFromID(ctrID string) string {
	for i := len(ctrID) - 1; i >= 0; i-- {
		if ctrID[i] == '/' {
			return ctrID[i+1:]
		}
	}
	return ctrID
}

// ListContainers lists containerd container IDs.
func (s *Service) ListContainers() []string { return s.client.Containers() }

// Package pylite implements a small Python-subset interpreter: an
// indentation-aware lexer, a recursive-descent parser, a bytecode compiler,
// and a stack-based virtual machine with a tracked heap. It serves as the
// CPython stand-in for the paper's non-Wasm Python container baseline: the
// benchmark applications actually execute, and the interpreter reports
// instruction counts and heap usage that feed the simulated process
// footprint model.
package pylite

import (
	"fmt"
	"strings"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokName
	TokInt
	TokFloat
	TokString
	TokOp      // operators and punctuation
	TokKeyword // def, if, while, ...
)

var keywords = map[string]bool{
	"def": true, "return": true, "if": true, "elif": true, "else": true,
	"while": true, "for": true, "in": true, "break": true, "continue": true,
	"pass": true, "and": true, "or": true, "not": true,
	"True": true, "False": true, "None": true, "global": true,
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pylite: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func synErr(line, col int, format string, args ...interface{}) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes source, inserting INDENT/DEDENT/NEWLINE tokens per Python's
// layout rules (spaces only; tabs count as 8).
func Lex(src string) ([]Token, error) {
	var toks []Token
	indents := []int{0}
	lines := strings.Split(src, "\n")
	parenDepth := 0

	for li := 0; li < len(lines); li++ {
		line := lines[li]
		lineNo := li + 1

		// Measure indentation (skip blank/comment-only lines entirely when
		// not inside parentheses).
		if parenDepth == 0 {
			trimmed := strings.TrimLeft(line, " \t")
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				continue
			}
			indent := 0
			for _, c := range line {
				if c == ' ' {
					indent++
				} else if c == '\t' {
					indent += 8 - indent%8
				} else {
					break
				}
			}
			cur := indents[len(indents)-1]
			if indent > cur {
				indents = append(indents, indent)
				toks = append(toks, Token{Kind: TokIndent, Line: lineNo})
			}
			for indent < indents[len(indents)-1] {
				indents = indents[:len(indents)-1]
				toks = append(toks, Token{Kind: TokDedent, Line: lineNo})
			}
			if indent != indents[len(indents)-1] {
				return nil, synErr(lineNo, 1, "inconsistent indentation")
			}
		}

		// Tokenize the line content.
		col := 0
		for col < len(line) {
			c := line[col]
			switch {
			case c == ' ' || c == '\t':
				col++
			case c == '#':
				col = len(line)
			case c >= '0' && c <= '9':
				start := col
				isFloat := false
				for col < len(line) && (isDigit(line[col]) || line[col] == '.' || line[col] == '_') {
					if line[col] == '.' {
						if isFloat {
							break
						}
						isFloat = true
					}
					col++
				}
				kind := TokInt
				if isFloat {
					kind = TokFloat
				}
				toks = append(toks, Token{Kind: kind, Text: strings.ReplaceAll(line[start:col], "_", ""), Line: lineNo, Col: start + 1})
			case isNameStart(c):
				start := col
				for col < len(line) && isNameChar(line[col]) {
					col++
				}
				text := line[start:col]
				kind := TokName
				if keywords[text] {
					kind = TokKeyword
				}
				toks = append(toks, Token{Kind: kind, Text: text, Line: lineNo, Col: start + 1})
			case c == '"' || c == '\'':
				quote := c
				col++
				var sb strings.Builder
				closed := false
				for col < len(line) {
					if line[col] == '\\' && col+1 < len(line) {
						switch line[col+1] {
						case 'n':
							sb.WriteByte('\n')
						case 't':
							sb.WriteByte('\t')
						case '\\':
							sb.WriteByte('\\')
						case quote:
							sb.WriteByte(quote)
						default:
							sb.WriteByte(line[col+1])
						}
						col += 2
						continue
					}
					if line[col] == quote {
						closed = true
						col++
						break
					}
					sb.WriteByte(line[col])
					col++
				}
				if !closed {
					return nil, synErr(lineNo, col, "unterminated string")
				}
				toks = append(toks, Token{Kind: TokString, Text: sb.String(), Line: lineNo, Col: col})
			default:
				op, n := scanOp(line[col:])
				if n == 0 {
					return nil, synErr(lineNo, col+1, "unexpected character %q", string(c))
				}
				switch op {
				case "(", "[", "{":
					parenDepth++
				case ")", "]", "}":
					if parenDepth > 0 {
						parenDepth--
					}
				}
				toks = append(toks, Token{Kind: TokOp, Text: op, Line: lineNo, Col: col + 1})
				col += n
			}
		}
		if parenDepth == 0 {
			toks = append(toks, Token{Kind: TokNewline, Line: lineNo})
		}
	}
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, Token{Kind: TokDedent, Line: len(lines)})
	}
	toks = append(toks, Token{Kind: TokEOF, Line: len(lines)})
	return toks, nil
}

func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isNameStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isNameChar(c byte) bool  { return isNameStart(c) || isDigit(c) }

// twoCharOps lists multi-character operators, longest first.
var twoCharOps = []string{
	"//", "**", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
}

var oneCharOps = "+-*/%<>=(),[]{}:."

func scanOp(s string) (string, int) {
	for _, op := range twoCharOps {
		if strings.HasPrefix(s, op) {
			return op, len(op)
		}
	}
	if strings.IndexByte(oneCharOps, s[0]) >= 0 {
		return s[:1], 1
	}
	return "", 0
}

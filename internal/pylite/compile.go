package pylite

import "fmt"

// Op is a bytecode operation.
type Op byte

// Bytecode operations.
const (
	OpConst Op = iota // push consts[arg]
	OpLoadGlobal
	OpStoreGlobal
	OpLoadLocal
	OpStoreLocal
	OpLoadBuiltin
	OpBinary // arg = binKind
	OpUnaryNeg
	OpUnaryNot
	OpJump          // absolute target
	OpJumpIfFalse   // pop; jump when falsy
	OpJumpFalseKeep // jump when falsy, keeping the value; else pop
	OpJumpTrueKeep  // jump when truthy, keeping the value; else pop
	OpCall          // arg = nargs
	OpReturn
	OpBuildList // arg = n elems
	OpBuildDict // arg = n pairs
	OpIndex
	OpStoreIndex // stack: obj idx val -> (stores)
	OpAttr       // push bound method names[arg]
	OpPop
	OpGetIter
	OpForIter // push next or jump to arg when exhausted
	OpSlice   // stack: obj lo hi -> obj[lo:hi]; arg bit0=hasLo, bit1=hasHi
)

// Binary operator kinds (OpBinary arg).
const (
	binAdd = iota
	binSub
	binMul
	binDiv
	binFloorDiv
	binMod
	binPow
	binEq
	binNe
	binLt
	binLe
	binGt
	binGe
	binIn
)

var binKinds = map[string]int{
	"+": binAdd, "-": binSub, "*": binMul, "/": binDiv, "//": binFloorDiv,
	"%": binMod, "**": binPow, "==": binEq, "!=": binNe, "<": binLt,
	"<=": binLe, ">": binGt, ">=": binGe, "in": binIn,
}

// Instr is one bytecode instruction.
type Instr struct {
	Op   Op
	Arg  int
	Line int
}

// Code is a compiled function (or module) body.
type Code struct {
	Name       string
	Params     []string
	NumLocals  int
	Instrs     []Instr
	Consts     []Value
	Names      []string // attribute/global names
	LocalNames []string
}

// CompileModule compiles a parsed module into executable code.
func CompileModule(m *Module) (*Code, error) {
	c := &compilerCtx{code: &Code{Name: "<module>"}, isModule: true}
	if err := c.stmts(m.Body); err != nil {
		return nil, err
	}
	// Implicit None return.
	c.emitConst(nil, 0)
	c.emit(OpReturn, 0, 0)
	return c.code, nil
}

// Compile parses and compiles source in one step.
func Compile(src string) (*Code, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileModule(m)
}

type loopCtx struct {
	breakJumps []int
	contTarget int
	contJumps  []int
}

type compilerCtx struct {
	code     *Code
	isModule bool
	locals   map[string]int
	globals  map[string]bool // names declared global inside a function
	loops    []*loopCtx
}

func (c *compilerCtx) emit(op Op, arg, line int) int {
	c.code.Instrs = append(c.code.Instrs, Instr{Op: op, Arg: arg, Line: line})
	return len(c.code.Instrs) - 1
}

func (c *compilerCtx) emitConst(v Value, line int) {
	for i, existing := range c.code.Consts {
		if sameConst(existing, v) {
			c.emit(OpConst, i, line)
			return
		}
	}
	c.code.Consts = append(c.code.Consts, v)
	c.emit(OpConst, len(c.code.Consts)-1, line)
}

func sameConst(a, b Value) bool {
	switch av := a.(type) {
	case nil:
		return b == nil
	case int64:
		bv, ok := b.(int64)
		return ok && av == bv
	case float64:
		bv, ok := b.(float64)
		return ok && av == bv
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	}
	return false
}

func (c *compilerCtx) nameIndex(name string) int {
	for i, n := range c.code.Names {
		if n == name {
			return i
		}
	}
	c.code.Names = append(c.code.Names, name)
	return len(c.code.Names) - 1
}

func (c *compilerCtx) patch(at int, target int) { c.code.Instrs[at].Arg = target }

func (c *compilerCtx) here() int { return len(c.code.Instrs) }

func (c *compilerCtx) stmts(body []Stmt) error {
	for _, s := range body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compilerCtx) stmt(s Stmt) error {
	switch n := s.(type) {
	case *ExprStmt:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(OpPop, 0, n.Line)
	case *Assign:
		return c.assign(n)
	case *If:
		return c.ifStmt(n)
	case *While:
		return c.whileStmt(n)
	case *For:
		return c.forStmt(n)
	case *FuncDef:
		return c.funcDef(n)
	case *Return:
		if c.isModule {
			return synErr(n.Line, 1, "return outside function")
		}
		if n.Value != nil {
			if err := c.expr(n.Value); err != nil {
				return err
			}
		} else {
			c.emitConst(nil, n.Line)
		}
		c.emit(OpReturn, 0, n.Line)
	case *Break:
		if len(c.loops) == 0 {
			return synErr(n.Line, 1, "break outside loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.breakJumps = append(lc.breakJumps, c.emit(OpJump, -1, n.Line))
	case *Continue:
		if len(c.loops) == 0 {
			return synErr(n.Line, 1, "continue outside loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.contJumps = append(lc.contJumps, c.emit(OpJump, -1, n.Line))
	case *Pass:
		// no code
	case *GlobalDecl:
		if c.isModule {
			return nil // no-op at module level
		}
		for _, name := range n.Names {
			c.globals[name] = true
		}
	default:
		return fmt.Errorf("pylite: unknown statement %T", s)
	}
	return nil
}

func (c *compilerCtx) assign(n *Assign) error {
	switch target := n.Target.(type) {
	case *Name:
		if n.Op != "" {
			if err := c.loadName(target.Ident, n.Line); err != nil {
				return err
			}
			if err := c.expr(n.Value); err != nil {
				return err
			}
			c.emit(OpBinary, binKinds[n.Op], n.Line)
		} else {
			if err := c.expr(n.Value); err != nil {
				return err
			}
		}
		return c.storeName(target.Ident, n.Line)
	case *Index:
		if err := c.expr(target.X); err != nil {
			return err
		}
		if err := c.expr(target.I); err != nil {
			return err
		}
		if n.Op != "" {
			// obj idx -> need obj idx (obj idx -> indexed value) op rhs.
			// Recompute the index expression; side effects in index exprs of
			// augmented assignments are rare enough to accept re-evaluation.
			if err := c.expr(target.X); err != nil {
				return err
			}
			if err := c.expr(target.I); err != nil {
				return err
			}
			c.emit(OpIndex, 0, n.Line)
			if err := c.expr(n.Value); err != nil {
				return err
			}
			c.emit(OpBinary, binKinds[n.Op], n.Line)
		} else {
			if err := c.expr(n.Value); err != nil {
				return err
			}
		}
		c.emit(OpStoreIndex, 0, n.Line)
		return nil
	}
	return synErr(n.Line, 1, "invalid assignment target")
}

func (c *compilerCtx) loadName(name string, line int) error {
	if !c.isModule {
		if c.globals[name] {
			c.emit(OpLoadGlobal, c.nameIndex(name), line)
			return nil
		}
		if slot, ok := c.locals[name]; ok {
			c.emit(OpLoadLocal, slot, line)
			return nil
		}
	}
	// Module level or unresolved: global, falling back to builtins at run
	// time.
	c.emit(OpLoadGlobal, c.nameIndex(name), line)
	return nil
}

func (c *compilerCtx) storeName(name string, line int) error {
	if !c.isModule && !c.globals[name] {
		slot, ok := c.locals[name]
		if !ok {
			slot = len(c.locals)
			c.locals[name] = slot
			c.code.LocalNames = append(c.code.LocalNames, name)
			if len(c.locals) > c.code.NumLocals {
				c.code.NumLocals = len(c.locals)
			}
		}
		c.emit(OpStoreLocal, slot, line)
		return nil
	}
	c.emit(OpStoreGlobal, c.nameIndex(name), line)
	return nil
}

func (c *compilerCtx) ifStmt(n *If) error {
	var endJumps []int
	for i, cond := range n.Conds {
		if err := c.expr(cond); err != nil {
			return err
		}
		skip := c.emit(OpJumpIfFalse, -1, n.Line)
		if err := c.stmts(n.Bodies[i]); err != nil {
			return err
		}
		endJumps = append(endJumps, c.emit(OpJump, -1, n.Line))
		c.patch(skip, c.here())
	}
	if n.Else != nil {
		if err := c.stmts(n.Else); err != nil {
			return err
		}
	}
	for _, j := range endJumps {
		c.patch(j, c.here())
	}
	return nil
}

func (c *compilerCtx) whileStmt(n *While) error {
	top := c.here()
	if err := c.expr(n.Cond); err != nil {
		return err
	}
	exit := c.emit(OpJumpIfFalse, -1, n.Line)
	lc := &loopCtx{contTarget: top}
	c.loops = append(c.loops, lc)
	if err := c.stmts(n.Body); err != nil {
		return err
	}
	c.loops = c.loops[:len(c.loops)-1]
	c.emit(OpJump, top, n.Line)
	end := c.here()
	c.patch(exit, end)
	for _, j := range lc.breakJumps {
		c.patch(j, end)
	}
	for _, j := range lc.contJumps {
		c.patch(j, top)
	}
	return nil
}

func (c *compilerCtx) forStmt(n *For) error {
	if err := c.expr(n.Iter); err != nil {
		return err
	}
	c.emit(OpGetIter, 0, n.Line)
	top := c.here()
	forIter := c.emit(OpForIter, -1, n.Line)
	if err := c.storeName(n.Var, n.Line); err != nil {
		return err
	}
	lc := &loopCtx{contTarget: top}
	c.loops = append(c.loops, lc)
	if err := c.stmts(n.Body); err != nil {
		return err
	}
	c.loops = c.loops[:len(c.loops)-1]
	c.emit(OpJump, top, n.Line)
	end := c.here()
	c.patch(forIter, end)
	for _, j := range lc.breakJumps {
		c.patch(j, end)
	}
	for _, j := range lc.contJumps {
		c.patch(j, top)
	}
	// OpForIter leaves the exhausted iterator on the stack at `end`.
	c.emit(OpPop, 0, n.Line)
	return nil
}

func (c *compilerCtx) funcDef(n *FuncDef) error {
	if !c.isModule {
		return synErr(n.Line, 1, "nested functions are not supported")
	}
	fc := &compilerCtx{
		code:    &Code{Name: n.Name, Params: n.Params},
		locals:  make(map[string]int),
		globals: make(map[string]bool),
	}
	for i, p := range n.Params {
		fc.locals[p] = i
		fc.code.LocalNames = append(fc.code.LocalNames, p)
	}
	fc.code.NumLocals = len(n.Params)
	// Pre-scan for global declarations (they may appear after first use).
	for _, s := range n.Body {
		if g, ok := s.(*GlobalDecl); ok {
			for _, name := range g.Names {
				fc.globals[name] = true
			}
		}
	}
	if err := fc.stmts(n.Body); err != nil {
		return err
	}
	fc.emitConst(nil, n.Line)
	fc.emit(OpReturn, 0, n.Line)
	c.code.Consts = append(c.code.Consts, &FuncValue{Code: fc.code})
	c.emit(OpConst, len(c.code.Consts)-1, n.Line)
	return c.storeName(n.Name, n.Line)
}

func (c *compilerCtx) expr(e Expr) error {
	switch n := e.(type) {
	case *IntLit:
		c.emitConst(n.Value, n.Line)
	case *FloatLit:
		c.emitConst(n.Value, n.Line)
	case *StrLit:
		c.emitConst(n.Value, n.Line)
	case *BoolLit:
		c.emitConst(n.Value, n.Line)
	case *NoneLit:
		c.emitConst(nil, n.Line)
	case *Name:
		return c.loadName(n.Ident, n.Line)
	case *ListLit:
		for _, el := range n.Elems {
			if err := c.expr(el); err != nil {
				return err
			}
		}
		c.emit(OpBuildList, len(n.Elems), n.Line)
	case *DictLit:
		for i := range n.Keys {
			if err := c.expr(n.Keys[i]); err != nil {
				return err
			}
			if err := c.expr(n.Values[i]); err != nil {
				return err
			}
		}
		c.emit(OpBuildDict, len(n.Keys), n.Line)
	case *BinOp:
		switch n.Op {
		case "and":
			if err := c.expr(n.L); err != nil {
				return err
			}
			j := c.emit(OpJumpFalseKeep, -1, n.Line)
			if err := c.expr(n.R); err != nil {
				return err
			}
			c.patch(j, c.here())
		case "or":
			if err := c.expr(n.L); err != nil {
				return err
			}
			j := c.emit(OpJumpTrueKeep, -1, n.Line)
			if err := c.expr(n.R); err != nil {
				return err
			}
			c.patch(j, c.here())
		default:
			if err := c.expr(n.L); err != nil {
				return err
			}
			if err := c.expr(n.R); err != nil {
				return err
			}
			kind, ok := binKinds[n.Op]
			if !ok {
				return synErr(n.Line, 1, "unsupported operator %q", n.Op)
			}
			c.emit(OpBinary, kind, n.Line)
		}
	case *UnaryOp:
		if err := c.expr(n.X); err != nil {
			return err
		}
		if n.Op == "-" {
			c.emit(OpUnaryNeg, 0, n.Line)
		} else {
			c.emit(OpUnaryNot, 0, n.Line)
		}
	case *Call:
		if err := c.expr(n.Fn); err != nil {
			return err
		}
		for _, a := range n.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		c.emit(OpCall, len(n.Args), n.Line)
	case *Index:
		if err := c.expr(n.X); err != nil {
			return err
		}
		if err := c.expr(n.I); err != nil {
			return err
		}
		c.emit(OpIndex, 0, n.Line)
	case *Slice:
		if err := c.expr(n.X); err != nil {
			return err
		}
		arg := 0
		if n.Lo != nil {
			if err := c.expr(n.Lo); err != nil {
				return err
			}
			arg |= 1
		}
		if n.Hi != nil {
			if err := c.expr(n.Hi); err != nil {
				return err
			}
			arg |= 2
		}
		c.emit(OpSlice, arg, n.Line)
	case *Attr:
		if err := c.expr(n.X); err != nil {
			return err
		}
		c.emit(OpAttr, c.nameIndex(n.Name), n.Line)
	default:
		return fmt.Errorf("pylite: unknown expression %T", e)
	}
	return nil
}

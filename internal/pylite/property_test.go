package pylite

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// evalExpr runs `print(expr)` and returns stdout without the newline.
func evalExpr(t *testing.T, expr string) string {
	t.Helper()
	var out bytes.Buffer
	vm := NewVM(&out)
	if _, err := vm.RunSource("print(" + expr + ")"); err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	s := out.String()
	return s[:len(s)-1]
}

// Property: integer arithmetic matches Python semantics (floored division
// and modulo), checked against a Go reference implementation.
func TestPropertyIntegerDivMod(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		av, bv := int64(a), int64(b)
		gotDiv := evalExprQ(t, fmt.Sprintf("%d // %d", av, bv))
		gotMod := evalExprQ(t, fmt.Sprintf("%d %% %d", av, bv))
		wantDiv := floorDivInt(av, bv)
		wantMod := pyModInt(av, bv)
		return gotDiv == fmt.Sprint(wantDiv) && gotMod == fmt.Sprint(wantMod)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func evalExprQ(t *testing.T, expr string) string {
	var out bytes.Buffer
	vm := NewVM(&out)
	if _, err := vm.RunSource("print(" + expr + ")"); err != nil {
		return "error"
	}
	s := out.String()
	if len(s) == 0 {
		return ""
	}
	return s[:len(s)-1]
}

// Property: floored div/mod identity a == (a//b)*b + a%b.
func TestPropertyDivModIdentity(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 {
			return true
		}
		q := floorDivInt(int64(a), int64(b))
		r := pyModInt(int64(a), int64(b))
		// Remainder has the sign of the divisor.
		if r != 0 && (r < 0) != (b < 0) {
			return false
		}
		return q*int64(b)+r == int64(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: list append/pop round-trips arbitrary int sequences.
func TestPropertyListRoundTrip(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) > 50 {
			xs = xs[:50]
		}
		vm := NewVM(nil)
		vm.Globals["input"] = goList(xs)
		_, err := vm.RunSource(`
out = []
for x in input:
    out.append(x)
n = len(out)
`)
		if err != nil {
			return false
		}
		n, _ := vm.Globals["n"].(int64)
		out, _ := vm.Globals["out"].(*List)
		if int(n) != len(xs) || out == nil || len(out.Items) != len(xs) {
			return false
		}
		for i, x := range xs {
			if out.Items[i].(int64) != int64(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func goList(xs []int16) *List {
	l := &List{}
	for _, x := range xs {
		l.Items = append(l.Items, int64(x))
	}
	return l
}

// Property: sorted() output is ordered and a permutation of the input.
func TestPropertySorted(t *testing.T) {
	f := func(xs []int32) bool {
		if len(xs) > 40 {
			xs = xs[:40]
		}
		vm := NewVM(nil)
		in := &List{}
		counts := map[int64]int{}
		for _, x := range xs {
			in.Items = append(in.Items, int64(x))
			counts[int64(x)]++
		}
		vm.Globals["xs"] = in
		if _, err := vm.RunSource("ys = sorted(xs)"); err != nil {
			return false
		}
		ys := vm.Globals["ys"].(*List)
		if len(ys.Items) != len(xs) {
			return false
		}
		var prev int64 = math.MinInt64
		for _, it := range ys.Items {
			v := it.(int64)
			if v < prev {
				return false
			}
			prev = v
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: dict set/get is consistent for int keys.
func TestPropertyDictConsistency(t *testing.T) {
	f := func(keys []int16, vals []int16) bool {
		d := NewDict()
		want := map[int64]int64{}
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			k, v := int64(keys[i]), int64(vals[i])
			if err := d.Set(k, v); err != nil {
				return false
			}
			want[k] = v
		}
		if d.Len() != len(want) {
			return false
		}
		for k, v := range want {
			got, ok, err := d.Get(k)
			if err != nil || !ok || got.(int64) != v {
				return false
			}
		}
		// Keys() preserves first-insertion order and contains each key once.
		seen := map[string]bool{}
		for _, k := range d.Keys() {
			s, _ := dictKey(k)
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return len(seen) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: string repr round-trips through str() for printable subsets.
func TestPropertyStrFormatting(t *testing.T) {
	if got := evalExpr(t, "str(True) + str(False) + str(None)"); got != "TrueFalseNone" {
		t.Fatalf("got %q", got)
	}
	f := func(v int64) bool {
		return evalExprQ(t, fmt.Sprintf("str(%d)", v)) == fmt.Sprint(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the VM is deterministic — same program, same output and step
// count.
func TestPropertyDeterminism(t *testing.T) {
	src := `
acc = 0
for i in range(500):
    if i % 3 == 0:
        acc += i
    else:
        acc -= 1
print(acc)
`
	run := func() (string, uint64) {
		var out bytes.Buffer
		vm := NewVM(&out)
		if _, err := vm.RunSource(src); err != nil {
			t.Fatal(err)
		}
		return out.String(), vm.Steps
	}
	o1, s1 := run()
	o2, s2 := run()
	if o1 != o2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%q,%d) vs (%q,%d)", o1, s1, o2, s2)
	}
}

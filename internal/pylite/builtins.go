package pylite

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// builtinTable constructs the builtin namespace shared by all VMs.
func builtinTable() map[string]*Builtin {
	bs := []*Builtin{
		{Name: "print", Arity: -1, Fn: biPrint},
		{Name: "len", Arity: 1, Fn: biLen},
		{Name: "range", Arity: -1, Fn: biRange},
		{Name: "str", Arity: 1, Fn: func(vm *VM, a []Value) (Value, error) { return Str(a[0]), nil }},
		{Name: "repr", Arity: 1, Fn: func(vm *VM, a []Value) (Value, error) { return Repr(a[0]), nil }},
		{Name: "int", Arity: 1, Fn: biInt},
		{Name: "float", Arity: 1, Fn: biFloat},
		{Name: "bool", Arity: 1, Fn: func(vm *VM, a []Value) (Value, error) { return Truthy(a[0]), nil }},
		{Name: "abs", Arity: 1, Fn: biAbs},
		{Name: "min", Arity: -1, Fn: biMin},
		{Name: "max", Arity: -1, Fn: biMax},
		{Name: "sum", Arity: 1, Fn: biSum},
		{Name: "sorted", Arity: 1, Fn: biSorted},
		{Name: "ord", Arity: 1, Fn: biOrd},
		{Name: "chr", Arity: 1, Fn: biChr},
		{Name: "argv", Arity: 0, Fn: biArgv},
		{Name: "type", Arity: 1, Fn: func(vm *VM, a []Value) (Value, error) { return TypeName(a[0]), nil }},
	}
	out := make(map[string]*Builtin, len(bs))
	for _, b := range bs {
		out[b.Name] = b
	}
	return out
}

func biPrint(vm *VM, args []Value) (Value, error) {
	if vm.Stdout == nil {
		return nil, nil
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = Str(a)
	}
	fmt.Fprintln(vm.Stdout, strings.Join(parts, " "))
	return nil, nil
}

func biLen(vm *VM, args []Value) (Value, error) {
	switch x := args[0].(type) {
	case string:
		return int64(len(x)), nil
	case *List:
		return int64(len(x.Items)), nil
	case *Dict:
		return int64(x.Len()), nil
	case *Range:
		if x.Step > 0 && x.Stop > x.Start {
			return (x.Stop - x.Start + x.Step - 1) / x.Step, nil
		}
		if x.Step < 0 && x.Stop < x.Start {
			return (x.Start - x.Stop - x.Step - 1) / -x.Step, nil
		}
		return int64(0), nil
	}
	return nil, fmt.Errorf("object of type %s has no len()", TypeName(args[0]))
}

func biRange(vm *VM, args []Value) (Value, error) {
	ints := make([]int64, len(args))
	for i, a := range args {
		n, ok := toInt(a)
		if !ok {
			return nil, fmt.Errorf("range() arguments must be integers")
		}
		ints[i] = n
	}
	switch len(ints) {
	case 1:
		return &Range{Start: 0, Stop: ints[0], Step: 1}, nil
	case 2:
		return &Range{Start: ints[0], Stop: ints[1], Step: 1}, nil
	case 3:
		if ints[2] == 0 {
			return nil, fmt.Errorf("range() step must not be zero")
		}
		return &Range{Start: ints[0], Stop: ints[1], Step: ints[2]}, nil
	}
	return nil, fmt.Errorf("range() takes 1 to 3 arguments")
}

func biInt(vm *VM, args []Value) (Value, error) {
	switch x := args[0].(type) {
	case int64:
		return x, nil
	case float64:
		return int64(math.Trunc(x)), nil
	case bool:
		if x {
			return int64(1), nil
		}
		return int64(0), nil
	case string:
		v, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid literal for int(): %q", x)
		}
		return v, nil
	}
	return nil, fmt.Errorf("int() argument must be a string or a number")
}

func biFloat(vm *VM, args []Value) (Value, error) {
	if f, ok := toFloat(args[0]); ok {
		return f, nil
	}
	if s, ok := args[0].(string); ok {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("could not convert string to float: %q", s)
		}
		return v, nil
	}
	return nil, fmt.Errorf("float() argument must be a string or a number")
}

func biAbs(vm *VM, args []Value) (Value, error) {
	switch x := args[0].(type) {
	case int64:
		if x < 0 {
			return -x, nil
		}
		return x, nil
	case float64:
		return math.Abs(x), nil
	}
	return nil, fmt.Errorf("bad operand type for abs(): %s", TypeName(args[0]))
}

func extremum(args []Value, wantLess bool) (Value, error) {
	var items []Value
	if len(args) == 1 {
		if lst, ok := args[0].(*List); ok {
			items = lst.Items
		} else {
			return nil, fmt.Errorf("single argument must be a list")
		}
	} else {
		items = args
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("arg is an empty sequence")
	}
	best := items[0]
	for _, it := range items[1:] {
		if valueLess(it, best) == wantLess {
			best = it
		}
	}
	return best, nil
}

func biMin(vm *VM, args []Value) (Value, error) { return extremum(args, true) }
func biMax(vm *VM, args []Value) (Value, error) { return extremum(args, false) }

func biSum(vm *VM, args []Value) (Value, error) {
	lst, ok := args[0].(*List)
	if !ok {
		return nil, fmt.Errorf("sum() argument must be a list")
	}
	var isum int64
	var fsum float64
	isFloat := false
	for _, it := range lst.Items {
		switch v := it.(type) {
		case int64:
			isum += v
			fsum += float64(v)
		case float64:
			isFloat = true
			fsum += v
		case bool:
			if v {
				isum++
				fsum++
			}
		default:
			return nil, fmt.Errorf("unsupported operand type for sum: %s", TypeName(it))
		}
	}
	if isFloat {
		return fsum, nil
	}
	return isum, nil
}

func biSorted(vm *VM, args []Value) (Value, error) {
	lst, ok := args[0].(*List)
	if !ok {
		return nil, fmt.Errorf("sorted() argument must be a list")
	}
	out := append([]Value(nil), lst.Items...)
	sort.SliceStable(out, func(i, j int) bool { return valueLess(out[i], out[j]) })
	vm.HeapBytes += int64(16 + 8*len(out))
	return &List{Items: out}, nil
}

func biOrd(vm *VM, args []Value) (Value, error) {
	s, ok := args[0].(string)
	if !ok || len(s) != 1 {
		return nil, fmt.Errorf("ord() expected a character")
	}
	return int64(s[0]), nil
}

func biChr(vm *VM, args []Value) (Value, error) {
	n, ok := toInt(args[0])
	if !ok || n < 0 || n > 255 {
		return nil, fmt.Errorf("chr() arg not in range(256)")
	}
	return string(rune(n)), nil
}

func biArgv(vm *VM, args []Value) (Value, error) {
	out := make([]Value, len(vm.Argv))
	for i, a := range vm.Argv {
		out[i] = a
	}
	return &List{Items: out}, nil
}

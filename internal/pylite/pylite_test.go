package pylite

import (
	"bytes"
	"strings"
	"testing"
)

// runSrc executes source and returns stdout.
func runSrc(t *testing.T, src string) string {
	t.Helper()
	var out bytes.Buffer
	vm := NewVM(&out)
	if _, err := vm.RunSource(src); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

// runErr executes source and returns the error.
func runErr(t *testing.T, src string) error {
	t.Helper()
	vm := NewVM(nil)
	_, err := vm.RunSource(src)
	return err
}

func TestPrintAndArithmetic(t *testing.T) {
	out := runSrc(t, `
x = 2 + 3 * 4
y = (2 + 3) * 4
print(x, y)
print(7 // 2, 7 % 2, 7 / 2)
print(-7 // 2, -7 % 2)
print(2 ** 10)
`)
	want := "14 20\n3 1 3.5\n-4 1\n1024\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestWhileLoopAndAugAssign(t *testing.T) {
	out := runSrc(t, `
total = 0
i = 1
while i <= 100:
    total += i
    i += 1
print(total)
`)
	if out != "5050\n" {
		t.Fatalf("got %q", out)
	}
}

func TestForRangeAndBreakContinue(t *testing.T) {
	out := runSrc(t, `
evens = []
for i in range(20):
    if i % 2 == 1:
        continue
    if i > 10:
        break
    evens.append(i)
print(evens)
print(len(evens))
`)
	want := "[0, 2, 4, 6, 8, 10]\n6\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	out := runSrc(t, `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def fact(n):
    result = 1
    for i in range(2, n + 1):
        result = result * i
    return result

print(fib(15), fact(10))
`)
	if out != "610 3628800\n" {
		t.Fatalf("got %q", out)
	}
}

func TestGlobalsDeclaration(t *testing.T) {
	out := runSrc(t, `
counter = 0

def bump():
    global counter
    counter = counter + 1

bump()
bump()
bump()
print(counter)
`)
	if out != "3\n" {
		t.Fatalf("got %q", out)
	}
}

func TestListsAndMethods(t *testing.T) {
	out := runSrc(t, `
xs = [3, 1, 2]
xs.append(10)
xs.sort()
print(xs)
print(xs.pop())
print(xs.index(2))
xs.reverse()
print(xs)
print(xs + [99])
print([0] * 4)
`)
	want := "[1, 2, 3, 10]\n10\n1\n[3, 2, 1]\n[3, 2, 1, 99]\n[0, 0, 0, 0]\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestDicts(t *testing.T) {
	out := runSrc(t, `
d = {"a": 1, "b": 2}
d["c"] = 3
print(d["a"], d["c"])
print(d.get("missing", 42))
print("b" in d, "z" in d)
print(len(d))
total = 0
for k in d:
    total += d[k]
print(total)
print(d.keys())
`)
	want := "1 3\n42\nTrue False\n3\n6\n['a', 'b', 'c']\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestStringsAndMethods(t *testing.T) {
	out := runSrc(t, `
s = "Hello, World"
print(s.upper())
print(s.lower())
print(s.split(", "))
print("-".join(["a", "b", "c"]))
print(s[0], s[-1])
print(len(s))
print("Wor" in s)
print(s.replace("World", "WASM"))
print(s.startswith("Hell"), s.find("World"))
`)
	want := "HELLO, WORLD\nhello, world\n['Hello', 'World']\na-b-c\nH d\n12\nTrue\nHello, WASM\nTrue 7\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestBuiltins(t *testing.T) {
	out := runSrc(t, `
print(abs(-5), abs(2.5))
print(min(3, 1, 2), max([4, 9, 2]))
print(sum([1, 2, 3, 4]))
print(sorted([3, 1, 2]))
print(int("42") + 1, float("2.5") * 2)
print(str(99) + "!")
print(ord("A"), chr(66))
print(bool(0), bool("x"), bool([]))
print(type(1), type("s"), type([]))
`)
	want := "5 2.5\n1 9\n10\n[1, 2, 3]\n43 5.0\n99!\n65 B\nFalse True False\nint str list\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestBooleanShortCircuit(t *testing.T) {
	out := runSrc(t, `
def boom():
    print("boom")
    return True

x = False and boom()
y = True or boom()
print(x, y)
print(1 and 2)
print(0 or "fallback")
print(not 0, not "x")
`)
	want := "False True\n2\nfallback\nTrue False\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestElifChains(t *testing.T) {
	src := `
def classify(n):
    if n < 0:
        return "neg"
    elif n == 0:
        return "zero"
    elif n < 100:
        return "small"
    else:
        return "big"

print(classify(-1), classify(0), classify(50), classify(1000))
`
	out := runSrc(t, src)
	if out != "neg zero small big\n" {
		t.Fatalf("got %q", out)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"div by zero", `x = 1 / 0`, "division by zero"},
		{"undefined name", `print(nothing)`, "not defined"},
		{"index range", `xs = [1]
print(xs[5])`, "out of range"},
		{"key error", `d = {}
print(d["k"])`, "KeyError"},
		{"not callable", `x = 5
x()`, "not callable"},
		{"recursion", `
def f():
    return f()
f()`, "recursion"},
		{"bad arity", `
def g(a, b):
    return a
g(1)`, "takes 2 arguments"},
	}
	for _, c := range cases {
		err := runErr(t, c.src)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`def f(`,
		`if x`,
		"x = 1\n  y = 2",
		`x = "unterminated`,
		`return 5`,
		`break`,
	}
	for _, src := range cases {
		vm := NewVM(nil)
		if _, err := vm.RunSource(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestStepLimit(t *testing.T) {
	vm := NewVM(nil)
	vm.MaxSteps = 10_000
	_, err := vm.RunSource(`
while True:
    pass
`)
	if err != ErrTooManySteps {
		t.Fatalf("got %v, want ErrTooManySteps", err)
	}
}

func TestHeapAccounting(t *testing.T) {
	vm := NewVM(nil)
	if _, err := vm.RunSource(`
xs = []
for i in range(1000):
    xs.append(i)
`); err != nil {
		t.Fatal(err)
	}
	if vm.HeapBytes < 8000 {
		t.Fatalf("heap bytes = %d, want >= 8000", vm.HeapBytes)
	}
	if vm.Steps == 0 {
		t.Fatal("no steps counted")
	}
}

func TestMinimalServiceApp(t *testing.T) {
	// The exact program the Python-container baseline runs.
	src := `
counters = []
i = 0
while i < 256:
    counters.append(0)
    i = i + 1
print("service ready")
`
	out := runSrc(t, src)
	if out != "service ready\n" {
		t.Fatalf("got %q", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	out := runSrc(t, `
print(1.5, 2.0, 1 / 4)
print(3.14159)
`)
	want := "1.5 2.0 0.25\n3.14159\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestComparisonsAndIn(t *testing.T) {
	out := runSrc(t, `
print(1 < 2, 2 <= 2, 3 > 4, "a" < "b")
print(2 in range(5), 7 in range(5))
print(3 in [1, 2, 3], 9 not in [1, 2, 3])
print("ab" == "ab", 1 == 1.0, [1, 2] == [1, 2])
`)
	want := "True True False True\nTrue False\nTrue True\nTrue True True\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestArgvBuiltin(t *testing.T) {
	var out bytes.Buffer
	vm := NewVM(&out)
	vm.Argv = []string{"app.py", "--port", "8080"}
	if _, err := vm.RunSource(`print(argv())`); err != nil {
		t.Fatal(err)
	}
	if out.String() != "['app.py', '--port', '8080']\n" {
		t.Fatalf("got %q", out.String())
	}
}

func TestSlicing(t *testing.T) {
	out := runSrc(t, `
s = "hello world"
print(s[0:5], s[6:], s[:5], s[:])
print(s[-5:], s[:-6])
print(s[8:3])
xs = [0, 1, 2, 3, 4, 5]
print(xs[1:4], xs[:2], xs[4:], xs[-2:])
ys = xs[:]
ys.append(6)
print(len(xs), len(ys))
print(xs[2:100], xs[-100:2])
`)
	want := "hello world hello hello world\nworld hello\n\n[1, 2, 3] [0, 1] [4, 5] [4, 5]\n6 7\n[2, 3, 4, 5] [0, 1]\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestSliceErrors(t *testing.T) {
	if err := runErr(t, `x = 5
y = x[1:2]`); err == nil {
		t.Fatal("sliced an int")
	}
	if err := runErr(t, `xs = [1]
y = xs["a":2]`); err == nil {
		t.Fatal("string slice bound accepted")
	}
}

func TestMultiLineCollections(t *testing.T) {
	out := runSrc(t, `
xs = [
    1,
    2,
    3,
]
d = {
    "a": 1,
    "b": 2,
}
y = (1 +
     2 +
     3)
print(len(xs), len(d), y)
`)
	if out != "3 2 6\n" {
		t.Fatalf("got %q", out)
	}
}

func TestNestedDataStructures(t *testing.T) {
	out := runSrc(t, `
grid = [[1, 2], [3, 4], [5, 6]]
total = 0
for row in grid:
    for v in row:
        total += v
print(total, grid[1][0])
registry = {"svc": {"port": 8080, "replicas": 3}}
print(registry["svc"]["port"])
registry["svc"]["replicas"] += 1
print(registry["svc"]["replicas"])
`)
	if out != "21 3\n8080\n4\n" {
		t.Fatalf("got %q", out)
	}
}

func TestDictItemsAndPop(t *testing.T) {
	out := runSrc(t, `
d = {"x": 1, "y": 2, "z": 3}
for pair in d.items():
    print(pair[0], pair[1])
v = d.pop("y")
print(v, len(d), "y" in d)
print(d.pop("missing", 42))
`)
	want := "x 1\ny 2\nz 3\n2 2 False\n42\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
	// pop of a missing key without default raises.
	if err := runErr(t, `d = {}
d.pop("k")`); err == nil {
		t.Fatal("pop missing key succeeded")
	}
}

func TestDictDeleteReindexing(t *testing.T) {
	out := runSrc(t, `
d = {}
for i in range(6):
    d[i] = i * 10
d.pop(2)
d.pop(0)
print(d.keys())
d[99] = 1
print(d.keys())
print(d[5], d[99])
`)
	want := "[1, 3, 4, 5]\n[1, 3, 4, 5, 99]\n50 1\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

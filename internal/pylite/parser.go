package pylite

import "strconv"

// Parse lexes and parses source into a module AST.
func Parse(src string) (*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	body, err := p.statements(func() bool { return p.peek().Kind == TokEOF })
	if err != nil {
		return nil, err
	}
	return &Module{Body: body}, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind TokKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.peek()
	if t.Kind != kind || (text != "" && t.Text != text) {
		want := text
		if want == "" {
			want = kindName(kind)
		}
		return t, synErr(t.Line, t.Col, "expected %s, got %q", want, tokenDesc(t))
	}
	return p.next(), nil
}

func kindName(k TokKind) string {
	switch k {
	case TokNewline:
		return "newline"
	case TokIndent:
		return "indent"
	case TokDedent:
		return "dedent"
	case TokName:
		return "identifier"
	default:
		return "token"
	}
}

func tokenDesc(t Token) string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokNewline:
		return "newline"
	case TokIndent:
		return "indent"
	case TokDedent:
		return "dedent"
	default:
		return t.Text
	}
}

// statements parses until stop() is true, consuming statement terminators.
func (p *parser) statements(stop func() bool) ([]Stmt, error) {
	var out []Stmt
	for !stop() {
		if p.accept(TokNewline, "") {
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// block parses NEWLINE INDENT statements DEDENT.
func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIndent, ""); err != nil {
		return nil, err
	}
	body, err := p.statements(func() bool { return p.peek().Kind == TokDedent || p.peek().Kind == TokEOF })
	if err != nil {
		return nil, err
	}
	p.accept(TokDedent, "")
	return body, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "def":
			return p.funcDef()
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "for":
			return p.forStmt()
		case "return":
			p.next()
			var val Expr
			if p.peek().Kind != TokNewline {
				var err error
				val, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			p.accept(TokNewline, "")
			return &Return{Value: val, Line: t.Line}, nil
		case "break":
			p.next()
			p.accept(TokNewline, "")
			return &Break{Line: t.Line}, nil
		case "continue":
			p.next()
			p.accept(TokNewline, "")
			return &Continue{Line: t.Line}, nil
		case "pass":
			p.next()
			p.accept(TokNewline, "")
			return &Pass{Line: t.Line}, nil
		case "global":
			p.next()
			var names []string
			for {
				n, err := p.expect(TokName, "")
				if err != nil {
					return nil, err
				}
				names = append(names, n.Text)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			p.accept(TokNewline, "")
			return &GlobalDecl{Names: names, Line: t.Line}, nil
		}
	}
	// Expression or assignment.
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	tok := p.peek()
	if tok.Kind == TokOp {
		switch tok.Text {
		case "=":
			p.next()
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.accept(TokNewline, "")
			if !assignable(lhs) {
				return nil, synErr(tok.Line, tok.Col, "cannot assign to this expression")
			}
			return &Assign{Target: lhs, Value: rhs, Line: tok.Line}, nil
		case "+=", "-=", "*=", "/=", "%=":
			p.next()
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.accept(TokNewline, "")
			if !assignable(lhs) {
				return nil, synErr(tok.Line, tok.Col, "cannot assign to this expression")
			}
			return &Assign{Target: lhs, Op: tok.Text[:1], Value: rhs, Line: tok.Line}, nil
		}
	}
	p.accept(TokNewline, "")
	return &ExprStmt{X: lhs, Line: t.Line}, nil
}

func assignable(e Expr) bool {
	switch e.(type) {
	case *Name, *Index:
		return true
	}
	return false
}

func (p *parser) funcDef() (Stmt, error) {
	t := p.next() // def
	name, err := p.expect(TokName, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	var params []string
	for p.peek().Kind == TokName {
		params = append(params, p.next().Text)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDef{Name: name.Text, Params: params, Body: body, Line: t.Line}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.next() // if
	node := &If{Line: t.Line}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node.Conds = append(node.Conds, cond)
	node.Bodies = append(node.Bodies, body)
	for p.peek().Kind == TokKeyword && p.peek().Text == "elif" {
		p.next()
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		node.Conds = append(node.Conds, c)
		node.Bodies = append(node.Bodies, b)
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "else" {
		p.next()
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		node.Else = b
	}
	return node, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	t := p.next()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Line: t.Line}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.next()
	name, err := p.expect(TokName, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "in"); err != nil {
		return nil, err
	}
	iter, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &For{Var: name.Text, Iter: iter, Body: body, Line: t.Line}, nil
}

// Expression grammar (precedence climbing):
//   or > and > not > comparison > add > mul > unary > power > postfix > atom

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokKeyword && p.peek().Text == "or" {
		t := p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "or", L: l, R: r, Line: t.Line}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokKeyword && p.peek().Text == "and" {
		t := p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "and", L: l, R: r, Line: t.Line}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.peek().Kind == TokKeyword && p.peek().Text == "not" {
		t := p.next()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "not", X: x, Line: t.Line}, nil
	}
	return p.comparison()
}

var compareOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) comparison() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && compareOps[t.Text] {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.Text, L: l, R: r, Line: t.Line}
			continue
		}
		if t.Kind == TokKeyword && t.Text == "in" {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "in", L: l, R: r, Line: t.Line}
			continue
		}
		if t.Kind == TokKeyword && t.Text == "not" && p.toks[p.pos+1].Text == "in" {
			p.next()
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &UnaryOp{Op: "not", X: &BinOp{Op: "in", L: l, R: r, Line: t.Line}, Line: t.Line}
			continue
		}
		return l, nil
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.Text, L: l, R: r, Line: t.Line}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/" || t.Text == "//" || t.Text == "%") {
			p.next()
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.Text, L: l, R: r, Line: t.Line}
			continue
		}
		return l, nil
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokOp && (t.Text == "-" || t.Text == "+") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if t.Text == "+" {
			return x, nil
		}
		return &UnaryOp{Op: "-", X: x, Line: t.Line}, nil
	}
	return p.power()
}

func (p *parser) power() (Expr, error) {
	l, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokOp && p.peek().Text == "**" {
		t := p.next()
		r, err := p.unary() // right associative
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "**", L: l, R: r, Line: t.Line}, nil
	}
	return l, nil
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp {
			return x, nil
		}
		switch t.Text {
		case "(":
			p.next()
			var args []Expr
			for !(p.peek().Kind == TokOp && p.peek().Text == ")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			x = &Call{Fn: x, Args: args, Line: t.Line}
		case "[":
			p.next()
			// Slice with empty lower bound: x[:hi]
			if p.peek().Kind == TokOp && p.peek().Text == ":" {
				p.next()
				var hi Expr
				if !(p.peek().Kind == TokOp && p.peek().Text == "]") {
					var err error
					hi, err = p.expr()
					if err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(TokOp, "]"); err != nil {
					return nil, err
				}
				x = &Slice{X: x, Hi: hi, Line: t.Line}
				continue
			}
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			// Slice with a lower bound: x[lo:...]
			if p.peek().Kind == TokOp && p.peek().Text == ":" {
				p.next()
				var hi Expr
				if !(p.peek().Kind == TokOp && p.peek().Text == "]") {
					hi, err = p.expr()
					if err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(TokOp, "]"); err != nil {
					return nil, err
				}
				x = &Slice{X: x, Lo: idx, Hi: hi, Line: t.Line}
				continue
			}
			if _, err := p.expect(TokOp, "]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: idx, Line: t.Line}
		case ".":
			p.next()
			name, err := p.expect(TokName, "")
			if err != nil {
				return nil, err
			}
			x = &Attr{X: x, Name: name.Text, Line: t.Line}
		default:
			return x, nil
		}
	}
}

func (p *parser) atom() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, synErr(t.Line, t.Col, "invalid integer %q", t.Text)
		}
		return &IntLit{Value: v, Line: t.Line}, nil
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, synErr(t.Line, t.Col, "invalid float %q", t.Text)
		}
		return &FloatLit{Value: v, Line: t.Line}, nil
	case TokString:
		p.next()
		return &StrLit{Value: t.Text, Line: t.Line}, nil
	case TokName:
		p.next()
		return &Name{Ident: t.Text, Line: t.Line}, nil
	case TokKeyword:
		switch t.Text {
		case "True":
			p.next()
			return &BoolLit{Value: true, Line: t.Line}, nil
		case "False":
			p.next()
			return &BoolLit{Value: false, Line: t.Line}, nil
		case "None":
			p.next()
			return &NoneLit{Line: t.Line}, nil
		}
	case TokOp:
		switch t.Text {
		case "(":
			p.next()
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.next()
			lit := &ListLit{Line: t.Line}
			for !(p.peek().Kind == TokOp && p.peek().Text == "]") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				lit.Elems = append(lit.Elems, e)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, "]"); err != nil {
				return nil, err
			}
			return lit, nil
		case "{":
			p.next()
			lit := &DictLit{Line: t.Line}
			for !(p.peek().Kind == TokOp && p.peek().Text == "}") {
				k, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokOp, ":"); err != nil {
					return nil, err
				}
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				lit.Keys = append(lit.Keys, k)
				lit.Values = append(lit.Values, v)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, "}"); err != nil {
				return nil, err
			}
			return lit, nil
		}
	}
	return nil, synErr(t.Line, t.Col, "unexpected %q", tokenDesc(t))
}

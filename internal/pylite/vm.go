package pylite

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is any pylite runtime value: nil (None), int64, float64, string,
// bool, *List, *Dict, *Range, *FuncValue, *Builtin, or *BoundMethod.
type Value interface{}

// List is a mutable sequence.
type List struct {
	Items []Value
}

// Dict is a string/int-keyed mapping that preserves insertion order.
type Dict struct {
	keys []Value
	vals map[string]Value
	ord  map[string]int
}

// NewDict creates an empty dict.
func NewDict() *Dict {
	return &Dict{vals: make(map[string]Value), ord: make(map[string]int)}
}

func dictKey(v Value) (string, error) {
	switch k := v.(type) {
	case string:
		return "s:" + k, nil
	case int64:
		return "i:" + strconv.FormatInt(k, 10), nil
	case bool:
		if k {
			return "i:1", nil
		}
		return "i:0", nil
	case nil:
		return "n:", nil
	case float64:
		return "f:" + strconv.FormatFloat(k, 'g', -1, 64), nil
	}
	return "", fmt.Errorf("unhashable type: %s", TypeName(v))
}

// Set inserts or replaces a key.
func (d *Dict) Set(k, v Value) error {
	s, err := dictKey(k)
	if err != nil {
		return err
	}
	if _, exists := d.vals[s]; !exists {
		d.ord[s] = len(d.keys)
		d.keys = append(d.keys, k)
	}
	d.vals[s] = v
	return nil
}

// Get fetches a key.
func (d *Dict) Get(k Value) (Value, bool, error) {
	s, err := dictKey(k)
	if err != nil {
		return nil, false, err
	}
	v, ok := d.vals[s]
	return v, ok, nil
}

// Delete removes a key if present.
func (d *Dict) Delete(k Value) {
	s, err := dictKey(k)
	if err != nil {
		return
	}
	if _, ok := d.vals[s]; !ok {
		return
	}
	idx := d.ord[s]
	d.keys = append(d.keys[:idx], d.keys[idx+1:]...)
	delete(d.vals, s)
	delete(d.ord, s)
	// Reindex subsequent keys.
	for i := idx; i < len(d.keys); i++ {
		ks, _ := dictKey(d.keys[i])
		d.ord[ks] = i
	}
}

// Len returns the number of entries.
func (d *Dict) Len() int { return len(d.keys) }

// Keys returns the keys in insertion order.
func (d *Dict) Keys() []Value { return d.keys }

// Range is the value returned by range().
type Range struct {
	Start, Stop, Step int64
}

// FuncValue is a user-defined function.
type FuncValue struct {
	Code *Code
}

// Builtin is a native function.
type Builtin struct {
	Name  string
	Arity int // -1 means variadic
	Fn    func(vm *VM, args []Value) (Value, error)
}

// BoundMethod pairs a receiver with a method name.
type BoundMethod struct {
	Recv Value
	Name string
}

// iterator is the internal protocol for for-loops.
type iterator interface {
	next() (Value, bool)
}

type rangeIter struct {
	cur, stop, step int64
}

func (it *rangeIter) next() (Value, bool) {
	if (it.step > 0 && it.cur >= it.stop) || (it.step < 0 && it.cur <= it.stop) {
		return nil, false
	}
	v := it.cur
	it.cur += it.step
	return v, true
}

type listIter struct {
	list *List
	i    int
}

func (it *listIter) next() (Value, bool) {
	if it.i >= len(it.list.Items) {
		return nil, false
	}
	v := it.list.Items[it.i]
	it.i++
	return v, true
}

type strIter struct {
	s string
	i int
}

func (it *strIter) next() (Value, bool) {
	if it.i >= len(it.s) {
		return nil, false
	}
	v := string(it.s[it.i])
	it.i++
	return v, true
}

type sliceIter struct {
	items []Value
	i     int
}

func (it *sliceIter) next() (Value, bool) {
	if it.i >= len(it.items) {
		return nil, false
	}
	v := it.items[it.i]
	it.i++
	return v, true
}

// RuntimeError is a pylite execution failure.
type RuntimeError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("pylite: runtime error at line %d: %s", e.Line, e.Msg)
}

// ErrTooManySteps aborts runaway programs when VM.MaxSteps is set.
var ErrTooManySteps = errors.New("pylite: step limit exceeded")

// VM executes compiled pylite code.
type VM struct {
	Stdout io.Writer
	// Globals is the module namespace.
	Globals map[string]Value
	// Steps counts executed bytecode instructions.
	Steps uint64
	// MaxSteps bounds execution; 0 means unlimited.
	MaxSteps uint64
	// HeapBytes approximates live allocated bytes (lists, dicts, strings).
	HeapBytes int64
	// Argv is exposed to guest code via the argv() builtin.
	Argv []string

	builtins map[string]*Builtin
	depth    int
}

// NewVM creates a VM writing program output to stdout (nil discards).
func NewVM(stdout io.Writer) *VM {
	vm := &VM{
		Stdout:  stdout,
		Globals: make(map[string]Value),
	}
	vm.builtins = builtinTable()
	return vm
}

// maxFrameDepth bounds pylite recursion.
const maxFrameDepth = 200

// Run executes a compiled module body.
func (vm *VM) Run(code *Code) (Value, error) {
	return vm.exec(code, nil)
}

// RunSource parses, compiles, and executes source.
func (vm *VM) RunSource(src string) (Value, error) {
	code, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return vm.Run(code)
}

func (vm *VM) exec(code *Code, args []Value) (Value, error) {
	vm.depth++
	defer func() { vm.depth-- }()
	if vm.depth > maxFrameDepth {
		return nil, &RuntimeError{Msg: "maximum recursion depth exceeded"}
	}
	locals := make([]Value, code.NumLocals)
	copy(locals, args)
	var stack []Value
	push := func(v Value) { stack = append(stack, v) }
	pop := func() Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	pc := 0
	for pc < len(code.Instrs) {
		in := code.Instrs[pc]
		vm.Steps++
		if vm.MaxSteps > 0 && vm.Steps > vm.MaxSteps {
			return nil, ErrTooManySteps
		}
		switch in.Op {
		case OpConst:
			push(code.Consts[in.Arg])
		case OpLoadGlobal:
			name := code.Names[in.Arg]
			if v, ok := vm.Globals[name]; ok {
				push(v)
			} else if b, ok := vm.builtins[name]; ok {
				push(b)
			} else {
				return nil, &RuntimeError{Line: in.Line, Msg: fmt.Sprintf("name %q is not defined", name)}
			}
		case OpStoreGlobal:
			vm.Globals[code.Names[in.Arg]] = pop()
		case OpLoadLocal:
			v := locals[in.Arg]
			if v == nil && in.Arg >= len(args) {
				// Reading an unassigned local slot: Python raises too.
				name := "?"
				if in.Arg < len(code.LocalNames) {
					name = code.LocalNames[in.Arg]
				}
				if !localEverStored(code, in.Arg, pc) {
					return nil, &RuntimeError{Line: in.Line, Msg: fmt.Sprintf("local variable %q referenced before assignment", name)}
				}
			}
			push(v)
		case OpStoreLocal:
			locals[in.Arg] = pop()
		case OpBinary:
			r := pop()
			l := pop()
			v, err := vm.binary(in.Arg, l, r, in.Line)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpUnaryNeg:
			switch v := pop().(type) {
			case int64:
				push(-v)
			case float64:
				push(-v)
			case bool:
				if v {
					push(int64(-1))
				} else {
					push(int64(0))
				}
			default:
				return nil, &RuntimeError{Line: in.Line, Msg: "bad operand type for unary -"}
			}
		case OpUnaryNot:
			push(!Truthy(pop()))
		case OpJump:
			pc = in.Arg
			continue
		case OpJumpIfFalse:
			if !Truthy(pop()) {
				pc = in.Arg
				continue
			}
		case OpJumpFalseKeep:
			if !Truthy(stack[len(stack)-1]) {
				pc = in.Arg
				continue
			}
			pop()
		case OpJumpTrueKeep:
			if Truthy(stack[len(stack)-1]) {
				pc = in.Arg
				continue
			}
			pop()
		case OpCall:
			n := in.Arg
			callArgs := make([]Value, n)
			copy(callArgs, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			fn := pop()
			v, err := vm.call(fn, callArgs, in.Line)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpReturn:
			return pop(), nil
		case OpBuildList:
			n := in.Arg
			items := make([]Value, n)
			copy(items, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			vm.HeapBytes += int64(16 + 8*n)
			push(&List{Items: items})
		case OpBuildDict:
			n := in.Arg
			d := NewDict()
			base := len(stack) - 2*n
			for i := 0; i < n; i++ {
				if err := d.Set(stack[base+2*i], stack[base+2*i+1]); err != nil {
					return nil, &RuntimeError{Line: in.Line, Msg: err.Error()}
				}
			}
			stack = stack[:base]
			vm.HeapBytes += int64(48 + 32*n)
			push(d)
		case OpIndex:
			i := pop()
			x := pop()
			v, err := vm.index(x, i, in.Line)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpStoreIndex:
			v := pop()
			i := pop()
			x := pop()
			if err := vm.storeIndex(x, i, v, in.Line); err != nil {
				return nil, err
			}
		case OpAttr:
			x := pop()
			push(&BoundMethod{Recv: x, Name: code.Names[in.Arg]})
		case OpPop:
			pop()
		case OpGetIter:
			x := pop()
			it, err := vm.getIter(x, in.Line)
			if err != nil {
				return nil, err
			}
			push(it)
		case OpSlice:
			var hiV, loV Value
			if in.Arg&2 != 0 {
				hiV = pop()
			}
			if in.Arg&1 != 0 {
				loV = pop()
			}
			x := pop()
			v, err := vm.slice(x, loV, hiV, in.Line)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpForIter:
			it := stack[len(stack)-1].(iterator)
			v, ok := it.next()
			if !ok {
				pc = in.Arg
				continue
			}
			push(v)
		}
		pc++
	}
	return nil, nil
}

// localEverStored reports whether any instruction before pc stores slot.
func localEverStored(code *Code, slot, pc int) bool {
	for i := 0; i < pc && i < len(code.Instrs); i++ {
		if code.Instrs[i].Op == OpStoreLocal && code.Instrs[i].Arg == slot {
			return true
		}
	}
	return false
}

// Truthy follows Python truthiness.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	case *List:
		return len(x.Items) > 0
	case *Dict:
		return x.Len() > 0
	case *Range:
		it := rangeIter{cur: x.Start, stop: x.Stop, step: x.Step}
		_, ok := it.next()
		return ok
	}
	return true
}

// TypeName reports the Python-style type name of v.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "NoneType"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "str"
	case *List:
		return "list"
	case *Dict:
		return "dict"
	case *Range:
		return "range"
	case *FuncValue:
		return "function"
	case *Builtin, *BoundMethod:
		return "builtin_function_or_method"
	}
	return fmt.Sprintf("%T", v)
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func toInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func (vm *VM) binary(kind int, l, r Value, line int) (Value, error) {
	rerr := func(format string, args ...interface{}) error {
		return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, args...)}
	}
	switch kind {
	case binAdd:
		if ls, ok := l.(string); ok {
			rs, ok := r.(string)
			if !ok {
				return nil, rerr("can only concatenate str to str")
			}
			vm.HeapBytes += int64(len(ls) + len(rs))
			return ls + rs, nil
		}
		if ll, ok := l.(*List); ok {
			rl, ok := r.(*List)
			if !ok {
				return nil, rerr("can only concatenate list to list")
			}
			out := make([]Value, 0, len(ll.Items)+len(rl.Items))
			out = append(out, ll.Items...)
			out = append(out, rl.Items...)
			vm.HeapBytes += int64(16 + 8*len(out))
			return &List{Items: out}, nil
		}
	case binMul:
		// str * int and list * int replication.
		if ls, ok := l.(string); ok {
			if n, ok := toInt(r); ok {
				if n < 0 {
					n = 0
				}
				vm.HeapBytes += int64(len(ls)) * n
				return strings.Repeat(ls, int(n)), nil
			}
		}
		if ll, ok := l.(*List); ok {
			if n, ok := toInt(r); ok {
				var out []Value
				for i := int64(0); i < n; i++ {
					out = append(out, ll.Items...)
				}
				vm.HeapBytes += int64(8 * len(out))
				return &List{Items: out}, nil
			}
		}
	case binIn:
		return vm.contains(l, r, line)
	case binEq:
		return valueEqual(l, r), nil
	case binNe:
		return !valueEqual(l, r), nil
	}

	// String comparison.
	if ls, lok := l.(string); lok {
		if rs, rok := r.(string); rok {
			switch kind {
			case binLt:
				return ls < rs, nil
			case binLe:
				return ls <= rs, nil
			case binGt:
				return ls > rs, nil
			case binGe:
				return ls >= rs, nil
			}
		}
	}

	// Numeric tower: int op int stays int (except /), otherwise float.
	li, lInt := toInt(l)
	ri, rInt := toInt(r)
	if lInt && rInt {
		switch kind {
		case binAdd:
			return li + ri, nil
		case binSub:
			return li - ri, nil
		case binMul:
			return li * ri, nil
		case binDiv:
			if ri == 0 {
				return nil, rerr("division by zero")
			}
			return float64(li) / float64(ri), nil
		case binFloorDiv:
			if ri == 0 {
				return nil, rerr("integer division or modulo by zero")
			}
			return floorDivInt(li, ri), nil
		case binMod:
			if ri == 0 {
				return nil, rerr("integer division or modulo by zero")
			}
			return pyModInt(li, ri), nil
		case binPow:
			return powInt(li, ri), nil
		case binLt:
			return li < ri, nil
		case binLe:
			return li <= ri, nil
		case binGt:
			return li > ri, nil
		case binGe:
			return li >= ri, nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if lok && rok {
		switch kind {
		case binAdd:
			return lf + rf, nil
		case binSub:
			return lf - rf, nil
		case binMul:
			return lf * rf, nil
		case binDiv:
			if rf == 0 {
				return nil, rerr("float division by zero")
			}
			return lf / rf, nil
		case binFloorDiv:
			if rf == 0 {
				return nil, rerr("float floor division by zero")
			}
			return math.Floor(lf / rf), nil
		case binMod:
			if rf == 0 {
				return nil, rerr("float modulo by zero")
			}
			m := math.Mod(lf, rf)
			if m != 0 && (m < 0) != (rf < 0) {
				m += rf
			}
			return m, nil
		case binPow:
			return math.Pow(lf, rf), nil
		case binLt:
			return lf < rf, nil
		case binLe:
			return lf <= rf, nil
		case binGt:
			return lf > rf, nil
		case binGe:
			return lf >= rf, nil
		}
	}
	return nil, rerr("unsupported operand types: %s and %s", TypeName(l), TypeName(r))
}

func floorDivInt(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func pyModInt(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

func powInt(a, b int64) Value {
	if b < 0 {
		return math.Pow(float64(a), float64(b))
	}
	result := int64(1)
	base := a
	for e := b; e > 0; e >>= 1 {
		if e&1 == 1 {
			result *= base
		}
		base *= base
	}
	return result
}

func valueEqual(l, r Value) bool {
	if li, ok := toFloat(l); ok {
		if ri, ok := toFloat(r); ok {
			return li == ri
		}
		return false
	}
	switch lv := l.(type) {
	case nil:
		return r == nil
	case string:
		rv, ok := r.(string)
		return ok && lv == rv
	case *List:
		rv, ok := r.(*List)
		if !ok || len(lv.Items) != len(rv.Items) {
			return false
		}
		for i := range lv.Items {
			if !valueEqual(lv.Items[i], rv.Items[i]) {
				return false
			}
		}
		return true
	}
	return l == r
}

func (vm *VM) contains(needle, hay Value, line int) (Value, error) {
	switch h := hay.(type) {
	case string:
		n, ok := needle.(string)
		if !ok {
			return nil, &RuntimeError{Line: line, Msg: "'in <string>' requires string operand"}
		}
		return strings.Contains(h, n), nil
	case *List:
		for _, it := range h.Items {
			if valueEqual(it, needle) {
				return true, nil
			}
		}
		return false, nil
	case *Dict:
		_, ok, err := h.Get(needle)
		if err != nil {
			return nil, &RuntimeError{Line: line, Msg: err.Error()}
		}
		return ok, nil
	case *Range:
		n, ok := toInt(needle)
		if !ok {
			return false, nil
		}
		if h.Step > 0 {
			return n >= h.Start && n < h.Stop && (n-h.Start)%h.Step == 0, nil
		}
		return n <= h.Start && n > h.Stop && (h.Start-n)%(-h.Step) == 0, nil
	}
	return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("argument of type %s is not iterable", TypeName(hay))}
}

func (vm *VM) index(x, i Value, line int) (Value, error) {
	switch c := x.(type) {
	case *List:
		n, ok := toInt(i)
		if !ok {
			return nil, &RuntimeError{Line: line, Msg: "list indices must be integers"}
		}
		if n < 0 {
			n += int64(len(c.Items))
		}
		if n < 0 || n >= int64(len(c.Items)) {
			return nil, &RuntimeError{Line: line, Msg: "list index out of range"}
		}
		return c.Items[n], nil
	case string:
		n, ok := toInt(i)
		if !ok {
			return nil, &RuntimeError{Line: line, Msg: "string indices must be integers"}
		}
		if n < 0 {
			n += int64(len(c))
		}
		if n < 0 || n >= int64(len(c)) {
			return nil, &RuntimeError{Line: line, Msg: "string index out of range"}
		}
		return string(c[n]), nil
	case *Dict:
		v, ok, err := c.Get(i)
		if err != nil {
			return nil, &RuntimeError{Line: line, Msg: err.Error()}
		}
		if !ok {
			return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("KeyError: %s", Repr(i))}
		}
		return v, nil
	}
	return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s is not subscriptable", TypeName(x))}
}

func (vm *VM) storeIndex(x, i, v Value, line int) error {
	switch c := x.(type) {
	case *List:
		n, ok := toInt(i)
		if !ok {
			return &RuntimeError{Line: line, Msg: "list indices must be integers"}
		}
		if n < 0 {
			n += int64(len(c.Items))
		}
		if n < 0 || n >= int64(len(c.Items)) {
			return &RuntimeError{Line: line, Msg: "list assignment index out of range"}
		}
		c.Items[n] = v
		return nil
	case *Dict:
		if err := c.Set(i, v); err != nil {
			return &RuntimeError{Line: line, Msg: err.Error()}
		}
		vm.HeapBytes += 32
		return nil
	}
	return &RuntimeError{Line: line, Msg: fmt.Sprintf("%s does not support item assignment", TypeName(x))}
}

// slice implements Python slicing with clamping and negative indices.
func (vm *VM) slice(x, loV, hiV Value, line int) (Value, error) {
	length := func() (int64, bool) {
		switch c := x.(type) {
		case string:
			return int64(len(c)), true
		case *List:
			return int64(len(c.Items)), true
		}
		return 0, false
	}
	n, ok := length()
	if !ok {
		return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s is not subscriptable", TypeName(x))}
	}
	resolve := func(v Value, def int64) (int64, error) {
		if v == nil {
			return def, nil
		}
		i, ok := toInt(v)
		if !ok {
			return 0, &RuntimeError{Line: line, Msg: "slice indices must be integers"}
		}
		if i < 0 {
			i += n
		}
		if i < 0 {
			i = 0
		}
		if i > n {
			i = n
		}
		return i, nil
	}
	lo, err := resolve(loV, 0)
	if err != nil {
		return nil, err
	}
	hi, err := resolve(hiV, n)
	if err != nil {
		return nil, err
	}
	if hi < lo {
		hi = lo
	}
	switch c := x.(type) {
	case string:
		vm.HeapBytes += hi - lo
		return c[lo:hi], nil
	case *List:
		out := append([]Value(nil), c.Items[lo:hi]...)
		vm.HeapBytes += int64(16 + 8*len(out))
		return &List{Items: out}, nil
	}
	return nil, &RuntimeError{Line: line, Msg: "unreachable slice target"}
}

func (vm *VM) getIter(x Value, line int) (iterator, error) {
	switch c := x.(type) {
	case *Range:
		return &rangeIter{cur: c.Start, stop: c.Stop, step: c.Step}, nil
	case *List:
		return &listIter{list: c}, nil
	case string:
		return &strIter{s: c}, nil
	case *Dict:
		return &sliceIter{items: append([]Value(nil), c.Keys()...)}, nil
	}
	return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s object is not iterable", TypeName(x))}
}

func (vm *VM) call(fn Value, args []Value, line int) (Value, error) {
	switch f := fn.(type) {
	case *FuncValue:
		if len(args) != len(f.Code.Params) {
			return nil, &RuntimeError{Line: line,
				Msg: fmt.Sprintf("%s() takes %d arguments (%d given)", f.Code.Name, len(f.Code.Params), len(args))}
		}
		return vm.exec(f.Code, args)
	case *Builtin:
		if f.Arity >= 0 && len(args) != f.Arity {
			return nil, &RuntimeError{Line: line,
				Msg: fmt.Sprintf("%s() takes %d arguments (%d given)", f.Name, f.Arity, len(args))}
		}
		v, err := f.Fn(vm, args)
		if err != nil {
			if _, ok := err.(*RuntimeError); !ok {
				err = &RuntimeError{Line: line, Msg: err.Error()}
			}
			return nil, err
		}
		return v, nil
	case *BoundMethod:
		return vm.callMethod(f, args, line)
	}
	return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s is not callable", TypeName(fn))}
}

func (vm *VM) callMethod(m *BoundMethod, args []Value, line int) (Value, error) {
	rerr := func(format string, a ...interface{}) error {
		return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, a...)}
	}
	switch recv := m.Recv.(type) {
	case *List:
		switch m.Name {
		case "append":
			if len(args) != 1 {
				return nil, rerr("append() takes one argument")
			}
			recv.Items = append(recv.Items, args[0])
			vm.HeapBytes += 8
			return nil, nil
		case "pop":
			if len(recv.Items) == 0 {
				return nil, rerr("pop from empty list")
			}
			idx := int64(len(recv.Items) - 1)
			if len(args) == 1 {
				var ok bool
				idx, ok = toInt(args[0])
				if !ok {
					return nil, rerr("pop index must be an integer")
				}
				if idx < 0 {
					idx += int64(len(recv.Items))
				}
			}
			if idx < 0 || idx >= int64(len(recv.Items)) {
				return nil, rerr("pop index out of range")
			}
			v := recv.Items[idx]
			recv.Items = append(recv.Items[:idx], recv.Items[idx+1:]...)
			return v, nil
		case "sort":
			sort.SliceStable(recv.Items, func(i, j int) bool {
				return valueLess(recv.Items[i], recv.Items[j])
			})
			return nil, nil
		case "reverse":
			for i, j := 0, len(recv.Items)-1; i < j; i, j = i+1, j-1 {
				recv.Items[i], recv.Items[j] = recv.Items[j], recv.Items[i]
			}
			return nil, nil
		case "index":
			if len(args) != 1 {
				return nil, rerr("index() takes one argument")
			}
			for i, it := range recv.Items {
				if valueEqual(it, args[0]) {
					return int64(i), nil
				}
			}
			return nil, rerr("%s is not in list", Repr(args[0]))
		}
	case *Dict:
		switch m.Name {
		case "get":
			if len(args) < 1 || len(args) > 2 {
				return nil, rerr("get() takes one or two arguments")
			}
			v, ok, err := recv.Get(args[0])
			if err != nil {
				return nil, rerr("%v", err)
			}
			if !ok {
				if len(args) == 2 {
					return args[1], nil
				}
				return nil, nil
			}
			return v, nil
		case "keys":
			return &List{Items: append([]Value(nil), recv.Keys()...)}, nil
		case "values":
			var out []Value
			for _, k := range recv.Keys() {
				v, _, _ := recv.Get(k)
				out = append(out, v)
			}
			return &List{Items: out}, nil
		case "items":
			var out []Value
			for _, k := range recv.Keys() {
				v, _, _ := recv.Get(k)
				out = append(out, &List{Items: []Value{k, v}})
			}
			vm.HeapBytes += int64(24 * recv.Len())
			return &List{Items: out}, nil
		case "pop":
			if len(args) < 1 || len(args) > 2 {
				return nil, rerr("pop() takes one or two arguments")
			}
			v, ok, err := recv.Get(args[0])
			if err != nil {
				return nil, rerr("%v", err)
			}
			if !ok {
				if len(args) == 2 {
					return args[1], nil
				}
				return nil, rerr("KeyError: %s", Repr(args[0]))
			}
			recv.Delete(args[0])
			return v, nil
		}
	case string:
		switch m.Name {
		case "upper":
			return strings.ToUpper(recv), nil
		case "lower":
			return strings.ToLower(recv), nil
		case "strip":
			return strings.TrimSpace(recv), nil
		case "split":
			sep := " "
			if len(args) == 1 {
				s, ok := args[0].(string)
				if !ok {
					return nil, rerr("split() separator must be a string")
				}
				sep = s
			}
			var out []Value
			for _, part := range strings.Split(recv, sep) {
				out = append(out, part)
			}
			return &List{Items: out}, nil
		case "join":
			if len(args) != 1 {
				return nil, rerr("join() takes one argument")
			}
			lst, ok := args[0].(*List)
			if !ok {
				return nil, rerr("join() argument must be a list")
			}
			parts := make([]string, 0, len(lst.Items))
			for _, it := range lst.Items {
				s, ok := it.(string)
				if !ok {
					return nil, rerr("join() list items must be strings")
				}
				parts = append(parts, s)
			}
			return strings.Join(parts, recv), nil
		case "startswith":
			if len(args) != 1 {
				return nil, rerr("startswith() takes one argument")
			}
			p, _ := args[0].(string)
			return strings.HasPrefix(recv, p), nil
		case "find":
			if len(args) != 1 {
				return nil, rerr("find() takes one argument")
			}
			p, _ := args[0].(string)
			return int64(strings.Index(recv, p)), nil
		case "replace":
			if len(args) != 2 {
				return nil, rerr("replace() takes two arguments")
			}
			oldS, _ := args[0].(string)
			newS, _ := args[1].(string)
			return strings.ReplaceAll(recv, oldS, newS), nil
		}
	}
	return nil, rerr("%s object has no method %q", TypeName(m.Recv), m.Name)
}

func valueLess(a, b Value) bool {
	if af, ok := toFloat(a); ok {
		if bf, ok := toFloat(b); ok {
			return af < bf
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return as < bs
	}
	return false
}

// Str renders a value as Python str() would (no quotes on strings).
func Str(v Value) string {
	switch x := v.(type) {
	case nil:
		return "None"
	case bool:
		if x {
			return "True"
		}
		return "False"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e16 {
			return strconv.FormatFloat(x, 'f', 1, 64)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	}
	return Repr(v)
}

// Repr renders a value as Python repr() would.
func Repr(v Value) string {
	switch x := v.(type) {
	case string:
		return "'" + strings.ReplaceAll(x, "'", "\\'") + "'"
	case *List:
		parts := make([]string, len(x.Items))
		for i, it := range x.Items {
			parts[i] = Repr(it)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Dict:
		var parts []string
		for _, k := range x.Keys() {
			val, _, _ := x.Get(k)
			parts = append(parts, Repr(k)+": "+Repr(val))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Range:
		return fmt.Sprintf("range(%d, %d)", x.Start, x.Stop)
	case *FuncValue:
		return "<function " + x.Code.Name + ">"
	case *Builtin:
		return "<built-in function " + x.Name + ">"
	}
	return Str(v)
}

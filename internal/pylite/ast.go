package pylite

// The AST mirrors the supported Python subset. Nodes carry source lines for
// error reporting.

// Stmt is any statement node.
type Stmt interface{ stmtNode() }

// Expr is any expression node.
type Expr interface{ exprNode() }

// Module is the root: a sequence of statements.
type Module struct {
	Body []Stmt
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X    Expr
	Line int
}

// Assign is NAME = expr, target[idx] = expr, or augmented assignment
// (op non-empty, e.g. "+").
type Assign struct {
	Target Expr // *Name or *Index
	Op     string
	Value  Expr
	Line   int
}

// If is a chain of conditions and bodies, with an optional else body.
type If struct {
	Conds  []Expr
	Bodies [][]Stmt
	Else   []Stmt
	Line   int
}

// While is a condition-driven loop.
type While struct {
	Cond Expr
	Body []Stmt
	Line int
}

// For is `for NAME in iterable:`; iterables are range(...) results, lists,
// strings, and dict keys.
type For struct {
	Var  string
	Iter Expr
	Body []Stmt
	Line int
}

// FuncDef declares a function.
type FuncDef struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Return exits a function with an optional value.
type Return struct {
	Value Expr // nil means None
	Line  int
}

// Break exits the innermost loop.
type Break struct{ Line int }

// Continue restarts the innermost loop.
type Continue struct{ Line int }

// Pass does nothing.
type Pass struct{ Line int }

// GlobalDecl marks names as module-globals inside a function.
type GlobalDecl struct {
	Names []string
	Line  int
}

func (*ExprStmt) stmtNode()   {}
func (*Assign) stmtNode()     {}
func (*If) stmtNode()         {}
func (*While) stmtNode()      {}
func (*For) stmtNode()        {}
func (*FuncDef) stmtNode()    {}
func (*Return) stmtNode()     {}
func (*Break) stmtNode()      {}
func (*Continue) stmtNode()   {}
func (*Pass) stmtNode()       {}
func (*GlobalDecl) stmtNode() {}

// Name references a variable.
type Name struct {
	Ident string
	Line  int
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Line  int
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value float64
	Line  int
}

// StrLit is a string literal.
type StrLit struct {
	Value string
	Line  int
}

// BoolLit is True or False.
type BoolLit struct {
	Value bool
	Line  int
}

// NoneLit is None.
type NoneLit struct{ Line int }

// ListLit is [a, b, ...].
type ListLit struct {
	Elems []Expr
	Line  int
}

// DictLit is {k: v, ...}.
type DictLit struct {
	Keys, Values []Expr
	Line         int
}

// BinOp is a binary operation (+ - * / // % ** == != < <= > >= and or in).
type BinOp struct {
	Op   string
	L, R Expr
	Line int
}

// UnaryOp is -x or not x.
type UnaryOp struct {
	Op   string
	X    Expr
	Line int
}

// Call invokes fn(args...).
type Call struct {
	Fn   Expr
	Args []Expr
	Line int
}

// Index is x[i].
type Index struct {
	X, I Expr
	Line int
}

// Slice is x[lo:hi]; nil bounds mean start/end.
type Slice struct {
	X      Expr
	Lo, Hi Expr // either may be nil
	Line   int
}

// Attr is x.name (used for method calls like list.append).
type Attr struct {
	X    Expr
	Name string
	Line int
}

func (*Name) exprNode()     {}
func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*StrLit) exprNode()   {}
func (*BoolLit) exprNode()  {}
func (*NoneLit) exprNode()  {}
func (*ListLit) exprNode()  {}
func (*DictLit) exprNode()  {}
func (*BinOp) exprNode()    {}
func (*UnaryOp) exprNode()  {}
func (*Call) exprNode()     {}
func (*Index) exprNode()    {}
func (*Slice) exprNode()    {}
func (*Attr) exprNode()     {}

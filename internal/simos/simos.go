// Package simos models a Linux worker node at the granularity the paper
// measures: processes with private (anonymous) memory, shared libraries
// whose resident text is counted once per node, a cgroup-v2 hierarchy that
// charges workload memory the way the Kubernetes metrics-server reads it,
// and a `free`-style whole-system view that additionally sees base system
// daemons, page cache, and buffers. The difference between the two vantage
// points — `free` reporting up to ~40% more than the metrics server — is an
// explicit, inspectable property of this model, mirroring Figures 3 vs 4 of
// the paper.
package simos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Byte size helpers.
const (
	KiB int64 = 1024
	MiB int64 = 1024 * KiB
	GiB int64 = 1024 * MiB
	// PageSize is the x86-64 page size used for rounding.
	PageSize int64 = 4096
)

// RoundPages rounds n up to whole pages.
func RoundPages(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + PageSize - 1) / PageSize * PageSize
}

// NodeConfig describes the simulated machine (defaults follow the paper's
// testbed: Intel Xeon Silver 4210R, 20 cores, 256 GB RAM).
type NodeConfig struct {
	Name     string
	RAMBytes int64
	Cores    int
	// BaseSystemBytes is memory used by the kernel, systemd, kubelet,
	// containerd daemon, and friends before any pod runs.
	BaseSystemBytes int64
	// BaseCacheBytes is page cache/buffers present at idle.
	BaseCacheBytes int64
}

// DefaultNodeConfig returns the paper's evaluation machine.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		Name:            "worker-0",
		RAMBytes:        256 * GiB,
		Cores:           20,
		BaseSystemBytes: 1400 * MiB,
		BaseCacheBytes:  800 * MiB,
	}
}

// Node is a simulated machine.
type Node struct {
	mu  sync.Mutex
	cfg NodeConfig

	nextPID int
	procs   map[int]*Process
	libs    map[string]*SharedLib

	rootCg *Cgroup
	cgs    map[string]*Cgroup

	// cacheBytes is current page cache beyond the idle baseline (grows with
	// image layers and container filesystems).
	cacheBytes int64
}

// NewNode creates a node from cfg.
func NewNode(cfg NodeConfig) *Node {
	n := &Node{
		cfg:     cfg,
		nextPID: 1,
		procs:   make(map[int]*Process),
		libs:    make(map[string]*SharedLib),
		cgs:     make(map[string]*Cgroup),
	}
	n.rootCg = &Cgroup{Path: "/", node: n}
	n.cgs["/"] = n.rootCg
	return n
}

// Config returns the node configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// SharedLib is a dynamically-loaded library (or a shared executable text
// segment). Resident bytes are counted once per node while mapped by at
// least one process — this is the mechanism behind the paper's crun-WAMR
// "dynamic library loading" memory advantage.
type SharedLib struct {
	Name  string
	Bytes int64
	refs  int
}

// Process is a simulated OS process.
type Process struct {
	PID  int
	Name string
	node *Node
	cg   *Cgroup
	// privateBytes is anonymous memory private to this process (heap,
	// stacks, JIT code caches, guard-page-backed reservations that were
	// touched).
	privateBytes int64
	// cacheBytes is page cache attributed to this process's cgroup (e.g.
	// its container layer files), charged cgroup-style to the first toucher.
	cacheBytes int64
	libs       map[string]*SharedLib
	exited     bool
}

// Cgroup is a node in the cgroup-v2 hierarchy.
type Cgroup struct {
	Path     string
	node     *Node
	parent   *Cgroup
	children []*Cgroup
	procs    []*Process
}

// Errors.
var (
	ErrNoSuchProcess = errors.New("simos: no such process")
	ErrNoSuchCgroup  = errors.New("simos: no such cgroup")
	ErrOutOfMemory   = errors.New("simos: out of memory")
)

// CreateCgroup creates (or returns) a cgroup at path, creating parents.
func (n *Node) CreateCgroup(path string) *Cgroup {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.createCgroupLocked(path)
}

func (n *Node) createCgroupLocked(path string) *Cgroup {
	if cg, ok := n.cgs[path]; ok {
		return cg
	}
	// Find parent by trimming the last segment.
	parentPath := "/"
	if i := lastSlash(path); i > 0 {
		parentPath = path[:i]
	}
	parent := n.createCgroupLocked(parentPath)
	cg := &Cgroup{Path: path, node: n, parent: parent}
	parent.children = append(parent.children, cg)
	n.cgs[path] = cg
	return cg
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// RemoveCgroup deletes an empty cgroup.
func (n *Node) RemoveCgroup(path string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	cg, ok := n.cgs[path]
	if !ok {
		return ErrNoSuchCgroup
	}
	if len(cg.procs) > 0 || len(cg.children) > 0 {
		return fmt.Errorf("simos: cgroup %s not empty", path)
	}
	if cg.parent != nil {
		kids := cg.parent.children[:0]
		for _, c := range cg.parent.children {
			if c != cg {
				kids = append(kids, c)
			}
		}
		cg.parent.children = kids
	}
	delete(n.cgs, path)
	return nil
}

// Spawn creates a process inside the cgroup at cgPath (created on demand).
func (n *Node) Spawn(name, cgPath string) (*Process, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.usedLocked() >= n.cfg.RAMBytes {
		return nil, ErrOutOfMemory
	}
	cg := n.createCgroupLocked(cgPath)
	p := &Process{
		PID:  n.nextPID,
		Name: name,
		node: n,
		cg:   cg,
		libs: make(map[string]*SharedLib),
	}
	n.nextPID++
	n.procs[p.PID] = p
	cg.procs = append(cg.procs, p)
	return p, nil
}

// Process lookup.
func (n *Node) Process(pid int) (*Process, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.procs[pid]
	return p, ok
}

// NumProcesses returns the count of live processes.
func (n *Node) NumProcesses() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.procs)
}

// MapPrivate charges anonymous memory to the process (page-rounded).
func (p *Process) MapPrivate(bytes int64) error {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	if p.exited {
		return ErrNoSuchProcess
	}
	b := RoundPages(bytes)
	if p.node.usedLocked()+b > p.node.cfg.RAMBytes {
		return ErrOutOfMemory
	}
	p.privateBytes += b
	return nil
}

// UnmapPrivate releases anonymous memory.
func (p *Process) UnmapPrivate(bytes int64) {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	b := RoundPages(bytes)
	if b > p.privateBytes {
		b = p.privateBytes
	}
	p.privateBytes -= b
}

// MapShared maps a named shared library into the process. The library's
// bytes are charged to the node once, no matter how many processes map it.
func (p *Process) MapShared(name string, bytes int64) {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	lib, ok := p.node.libs[name]
	if !ok {
		lib = &SharedLib{Name: name, Bytes: RoundPages(bytes)}
		p.node.libs[name] = lib
	}
	if _, mapped := p.libs[name]; !mapped {
		lib.refs++
		p.libs[name] = lib
	}
}

// ChargeCache attributes page-cache bytes to this process's cgroup (cgroup
// v2 charges the first toucher), also raising the node cache figure.
func (p *Process) ChargeCache(bytes int64) {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	b := RoundPages(bytes)
	p.cacheBytes += b
	p.node.cacheBytes += b
}

// PrivateBytes reports the process's anonymous memory.
func (p *Process) PrivateBytes() int64 {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	return p.privateBytes
}

// RSS approximates resident set size: private plus a proportional share of
// each mapped library.
func (p *Process) RSS() int64 {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	rss := p.privateBytes
	for _, lib := range p.libs {
		rss += lib.Bytes / int64(lib.refs)
	}
	return rss
}

// Exit terminates the process, releasing private memory, library references,
// and its cgroup cache charges.
func (p *Process) Exit() {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	if p.exited {
		return
	}
	p.exited = true
	p.privateBytes = 0
	p.node.cacheBytes -= p.cacheBytes
	p.cacheBytes = 0
	for name, lib := range p.libs {
		lib.refs--
		if lib.refs == 0 {
			delete(p.node.libs, name)
		}
		delete(p.libs, name)
	}
	delete(p.node.procs, p.PID)
	procs := p.cg.procs[:0]
	for _, q := range p.cg.procs {
		if q != p {
			procs = append(procs, q)
		}
	}
	p.cg.procs = procs
}

// Cgroup returns the process's cgroup.
func (p *Process) Cgroup() *Cgroup { return p.cg }

// MemoryCurrent mirrors cgroup v2 memory.current: anonymous memory of all
// member processes (recursively) plus charged page cache.
func (cg *Cgroup) MemoryCurrent() int64 {
	cg.node.mu.Lock()
	defer cg.node.mu.Unlock()
	return cg.memoryCurrentLocked()
}

func (cg *Cgroup) memoryCurrentLocked() int64 {
	var total int64
	for _, p := range cg.procs {
		total += p.privateBytes + p.cacheBytes
	}
	for _, c := range cg.children {
		total += c.memoryCurrentLocked()
	}
	return total
}

// Lookup finds a cgroup by path.
func (n *Node) Cgroup(path string) (*Cgroup, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cg, ok := n.cgs[path]
	return cg, ok
}

// usedLocked computes whole-system used memory (the `free` view):
// base system + page cache + all process private memory + each shared
// library once.
func (n *Node) usedLocked() int64 {
	used := n.cfg.BaseSystemBytes + n.cfg.BaseCacheBytes + n.cacheBytes
	for _, p := range n.procs {
		used += p.privateBytes
	}
	for _, lib := range n.libs {
		used += lib.Bytes
	}
	return used
}

// MemInfo is the output of the simulated `free` command.
type MemInfo struct {
	TotalBytes     int64
	UsedBytes      int64
	FreeBytes      int64
	CacheBytes     int64
	AvailableBytes int64
}

// Free reports whole-system memory like `free -b`.
func (n *Node) Free() MemInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	used := n.usedLocked()
	cache := n.cfg.BaseCacheBytes + n.cacheBytes
	return MemInfo{
		TotalBytes:     n.cfg.RAMBytes,
		UsedBytes:      used,
		FreeBytes:      n.cfg.RAMBytes - used,
		CacheBytes:     cache,
		AvailableBytes: n.cfg.RAMBytes - used + cache,
	}
}

// UsedBeyondIdle reports used memory above the idle baseline: the quantity
// the paper divides by container count for the `free`-based figures.
func (n *Node) UsedBeyondIdle() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.usedLocked() - n.cfg.BaseSystemBytes - n.cfg.BaseCacheBytes
}

// ProcessList returns a snapshot of processes sorted by PID (a `ps` stand-in).
type ProcessInfo struct {
	PID     int
	Name    string
	Cgroup  string
	Private int64
	RSS     int64
}

// Processes lists live processes.
func (n *Node) Processes() []ProcessInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ProcessInfo, 0, len(n.procs))
	for _, p := range n.procs {
		rss := p.privateBytes
		for _, lib := range p.libs {
			rss += lib.Bytes / int64(lib.refs)
		}
		out = append(out, ProcessInfo{
			PID: p.PID, Name: p.Name, Cgroup: p.cg.Path,
			Private: p.privateBytes, RSS: rss,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// HasSharedLib reports whether a shared library (or digest-keyed shared
// artifact) named name is resident on the node. The scheduler's locality
// scoring uses this to find nodes already holding a module's images.
func (n *Node) HasSharedLib(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.libs[name]
	return ok
}

// SharedLibs lists resident shared libraries sorted by name.
func (n *Node) SharedLibs() []SharedLib {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]SharedLib, 0, len(n.libs))
	for _, lib := range n.libs {
		out = append(out, *lib)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

package simos

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestNode() *Node {
	return NewNode(NodeConfig{
		Name: "test", RAMBytes: 8 * GiB, Cores: 4,
		BaseSystemBytes: 512 * MiB, BaseCacheBytes: 128 * MiB,
	})
}

func TestSpawnAndMemoryAccounting(t *testing.T) {
	n := newTestNode()
	p, err := n.Spawn("svc", "/pods/p1")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MapPrivate(10 * MiB); err != nil {
		t.Fatal(err)
	}
	if got := p.PrivateBytes(); got != 10*MiB {
		t.Fatalf("private = %d, want %d", got, 10*MiB)
	}
	free := n.Free()
	wantUsed := 512*MiB + 128*MiB + 10*MiB
	if free.UsedBytes != wantUsed {
		t.Fatalf("used = %d, want %d", free.UsedBytes, wantUsed)
	}
	if n.UsedBeyondIdle() != 10*MiB {
		t.Fatalf("beyond idle = %d", n.UsedBeyondIdle())
	}
}

func TestSharedLibraryCountedOnce(t *testing.T) {
	n := newTestNode()
	var procs []*Process
	for i := 0; i < 10; i++ {
		p, err := n.Spawn("crun", "/pods/shared")
		if err != nil {
			t.Fatal(err)
		}
		p.MapShared("libwamr.so", 2*MiB)
		procs = append(procs, p)
	}
	// Ten processes map the same 2 MiB library: the node pays once.
	if got := n.UsedBeyondIdle(); got != 2*MiB {
		t.Fatalf("beyond idle = %d, want %d (library charged once)", got, 2*MiB)
	}
	// RSS attributes a proportional share to each process.
	if rss := procs[0].RSS(); rss != 2*MiB/10 {
		t.Fatalf("rss share = %d, want %d", rss, 2*MiB/10)
	}
	// Last process exiting releases the library.
	for _, p := range procs {
		p.Exit()
	}
	if got := n.UsedBeyondIdle(); got != 0 {
		t.Fatalf("after exits, beyond idle = %d, want 0", got)
	}
	if len(n.SharedLibs()) != 0 {
		t.Fatal("library not released")
	}
}

func TestCgroupHierarchyCharging(t *testing.T) {
	n := newTestNode()
	p1, _ := n.Spawn("app1", "/kubepods/pod1/ctr1")
	p2, _ := n.Spawn("app2", "/kubepods/pod1/ctr2")
	p3, _ := n.Spawn("app3", "/kubepods/pod2/ctr1")
	p1.MapPrivate(4 * MiB)
	p2.MapPrivate(6 * MiB)
	p3.MapPrivate(10 * MiB)
	p1.ChargeCache(1 * MiB)

	pod1, ok := n.Cgroup("/kubepods/pod1")
	if !ok {
		t.Fatal("pod1 cgroup missing")
	}
	if got := pod1.MemoryCurrent(); got != 11*MiB {
		t.Fatalf("pod1 memory.current = %d, want %d", got, 11*MiB)
	}
	root, _ := n.Cgroup("/kubepods")
	if got := root.MemoryCurrent(); got != 21*MiB {
		t.Fatalf("kubepods memory.current = %d, want %d", got, 21*MiB)
	}
	// The metrics-server view (cgroup) excludes base system memory; the free
	// view includes it.
	if free := n.Free(); free.UsedBytes <= root.MemoryCurrent() {
		t.Fatal("free view should exceed cgroup view")
	}
}

func TestExitReleasesEverything(t *testing.T) {
	n := newTestNode()
	p, _ := n.Spawn("tmp", "/pods/x")
	p.MapPrivate(20 * MiB)
	p.ChargeCache(5 * MiB)
	p.MapShared("libpython3.so", 3*MiB)
	p.Exit()
	if n.UsedBeyondIdle() != 0 {
		t.Fatalf("leaked %d bytes after exit", n.UsedBeyondIdle())
	}
	if n.NumProcesses() != 0 {
		t.Fatal("process still listed")
	}
	// Double exit is harmless.
	p.Exit()
}

func TestOutOfMemory(t *testing.T) {
	n := NewNode(NodeConfig{RAMBytes: 1 * GiB, Cores: 1, BaseSystemBytes: 900 * MiB})
	p, err := n.Spawn("big", "/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MapPrivate(500 * MiB); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestPageRounding(t *testing.T) {
	if RoundPages(1) != PageSize {
		t.Fatalf("RoundPages(1) = %d", RoundPages(1))
	}
	if RoundPages(PageSize) != PageSize {
		t.Fatalf("RoundPages(PageSize) = %d", RoundPages(PageSize))
	}
	if RoundPages(PageSize+1) != 2*PageSize {
		t.Fatalf("RoundPages(PageSize+1) = %d", RoundPages(PageSize+1))
	}
	if RoundPages(0) != 0 || RoundPages(-5) != 0 {
		t.Fatal("non-positive rounding")
	}
}

func TestCgroupRemoval(t *testing.T) {
	n := newTestNode()
	p, _ := n.Spawn("a", "/pods/gone")
	if err := n.RemoveCgroup("/pods/gone"); err == nil {
		t.Fatal("removed non-empty cgroup")
	}
	p.Exit()
	if err := n.RemoveCgroup("/pods/gone"); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Cgroup("/pods/gone"); ok {
		t.Fatal("cgroup still present")
	}
	if err := n.RemoveCgroup("/pods/gone"); !errors.Is(err, ErrNoSuchCgroup) {
		t.Fatalf("expected ErrNoSuchCgroup, got %v", err)
	}
}

func TestProcessListing(t *testing.T) {
	n := newTestNode()
	n.Spawn("z-proc", "/a")
	n.Spawn("a-proc", "/b")
	ps := n.Processes()
	if len(ps) != 2 || ps[0].PID >= ps[1].PID {
		t.Fatalf("process list = %+v", ps)
	}
}

// Property: memory accounting is conservative — after any sequence of
// spawn/map/share/cache/exit operations, exiting everything returns the
// node to its idle baseline.
func TestPropertyMemoryConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		n := newTestNode()
		var procs []*Process
		for _, op := range ops {
			switch op % 5 {
			case 0:
				p, err := n.Spawn("p", "/g/cg")
				if err != nil {
					return false
				}
				procs = append(procs, p)
			case 1:
				if len(procs) > 0 {
					procs[int(op)%len(procs)].MapPrivate(int64(op) * 1024)
				}
			case 2:
				if len(procs) > 0 {
					procs[int(op)%len(procs)].MapShared("lib"+string(rune('a'+op%3)), int64(op+1)*2048)
				}
			case 3:
				if len(procs) > 0 {
					procs[int(op)%len(procs)].ChargeCache(int64(op) * 512)
				}
			case 4:
				if len(procs) > 0 {
					i := int(op) % len(procs)
					procs[i].Exit()
					procs = append(procs[:i], procs[i+1:]...)
				}
			}
		}
		for _, p := range procs {
			p.Exit()
		}
		return n.UsedBeyondIdle() == 0 && n.NumProcesses() == 0 && len(n.SharedLibs()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the free view always exceeds or equals the cgroup view of any
// subtree, since free additionally counts base system memory.
func TestPropertyFreeDominatesCgroups(t *testing.T) {
	f := func(privates []uint16) bool {
		n := newTestNode()
		for i, pv := range privates {
			if i >= 30 {
				break
			}
			p, err := n.Spawn("w", "/kubepods/pod")
			if err != nil {
				return false
			}
			if err := p.MapPrivate(int64(pv) * 256); err != nil {
				return false
			}
		}
		cg, ok := n.Cgroup("/kubepods")
		if !ok {
			return len(privates) == 0
		}
		return n.Free().UsedBytes >= cg.MemoryCurrent()+n.Config().BaseSystemBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

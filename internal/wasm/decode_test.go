package wasm

import (
	"strings"
	"testing"
)

// minimalModule builds a tiny valid module for mutation tests.
func minimalModule() *Module {
	body := new(BodyBuilder).I32Const(42).End()
	return &Module{
		Types:     []FuncType{{Results: []ValueType{ValueTypeI32}}},
		Functions: []uint32{0},
		Codes:     []Code{{Body: body.Bytes()}},
		Exports:   []Export{{Name: "answer", Kind: ExternalFunc, Index: 0}},
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	m := minimalModule()
	m.Memories = []MemoryType{{Limits: Limits{Min: 1, Max: 16, HasMax: true}}}
	m.Tables = []TableType{{ElemType: ValueTypeFuncref, Limits: Limits{Min: 2}}}
	m.Globals = []Global{{Type: GlobalType{ValType: ValueTypeI64, Mutable: true}, Init: I64Const(-7)}}
	m.Data = []DataSegment{{Offset: I32Const(0), Data: []byte("abc")}}
	m.Elements = []ElementSegment{{Offset: I32Const(0), Indices: []uint32{0}}}
	m.Customs = []CustomSection{{Name: "producers", Data: []byte{1, 2, 3}}}

	bin := Encode(m)
	got, err := Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Types) != 1 || len(got.Functions) != 1 || len(got.Codes) != 1 {
		t.Fatalf("structure lost: %+v", got)
	}
	if got.Memories[0].Limits != m.Memories[0].Limits {
		t.Fatalf("memory limits: %+v", got.Memories[0])
	}
	if got.Globals[0].Init.Value != m.Globals[0].Init.Value {
		t.Fatalf("global init lost")
	}
	if string(got.Data[0].Data) != "abc" {
		t.Fatalf("data lost")
	}
	if got.Customs[0].Name != "producers" {
		t.Fatalf("custom section lost")
	}
	// Re-encoding is byte-identical (canonical encoder).
	if string(Encode(got)) != string(bin) {
		t.Fatal("Encode(Decode(Encode(m))) differs from Encode(m)")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode([]byte("\x00asn\x01\x00\x00\x00")); err != ErrNotWasm {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := Decode(nil); err != ErrNotWasm {
		t.Fatalf("empty: %v", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	_, err := Decode([]byte("\x00asm\x02\x00\x00\x00"))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}
}

func TestDecodeRejectsOutOfOrderSections(t *testing.T) {
	m := minimalModule()
	bin := Encode(m)
	// Valid encode produces type(1), function(3), export(7), code(10).
	// Append a duplicate type section at the end: out of order.
	dup := append([]byte{}, bin...)
	dup = append(dup, byte(SectionType), 4, 1, 0x60, 0, 0)
	if _, err := Decode(dup); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order section: %v", err)
	}
}

func TestDecodeRejectsTruncatedSection(t *testing.T) {
	m := minimalModule()
	bin := Encode(m)
	for cut := len(bin) - 1; cut > 8; cut -= 3 {
		if _, err := Decode(bin[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsFunctionCodeMismatch(t *testing.T) {
	m := minimalModule()
	m.Functions = append(m.Functions, 0) // two functions, one body
	bin := Encode(m)
	if _, err := Decode(bin); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("mismatch: %v", err)
	}
}

func TestDecodeRejectsTrailingSectionBytes(t *testing.T) {
	// A type section declaring 0 types but with an extra byte.
	bin := []byte("\x00asm\x01\x00\x00\x00")
	bin = append(bin, byte(SectionType), 2, 0, 0xAA)
	if _, err := Decode(bin); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestDecodeRejectsBadValueType(t *testing.T) {
	bin := []byte("\x00asm\x01\x00\x00\x00")
	// type section: 1 type, form 0x60, 1 param of bogus type 0x55.
	bin = append(bin, byte(SectionType), 5, 1, 0x60, 1, 0x55, 0)
	if _, err := Decode(bin); err == nil {
		t.Fatal("bogus value type accepted")
	}
}

func TestDecodeRejectsDuplicateExports(t *testing.T) {
	m := minimalModule()
	m.Exports = append(m.Exports, Export{Name: "answer", Kind: ExternalFunc, Index: 0})
	if _, err := Decode(Encode(m)); err == nil || !strings.Contains(err.Error(), "duplicate export") {
		t.Fatalf("dup export: %v", err)
	}
}

func TestDecodeRejectsInvalidUTF8Name(t *testing.T) {
	m := minimalModule()
	m.Exports[0].Name = string([]byte{0xff, 0xfe})
	if _, err := Decode(Encode(m)); err == nil || !strings.Contains(err.Error(), "UTF-8") {
		t.Fatalf("bad utf8: %v", err)
	}
}

func TestDecodeRejectsBodyWithoutEnd(t *testing.T) {
	m := minimalModule()
	m.Codes[0].Body = []byte{byte(OpI32Const), 1} // no end opcode
	if _, err := Decode(Encode(m)); err == nil || !strings.Contains(err.Error(), "end") {
		t.Fatalf("missing end: %v", err)
	}
}

func TestDecodeRejectsTooManyLocals(t *testing.T) {
	// Hand-encode a code section declaring 60000 i32 locals in one group.
	bin := []byte("\x00asm\x01\x00\x00\x00")
	bin = append(bin, byte(SectionType), 4, 1, 0x60, 0, 0)
	bin = append(bin, byte(SectionFunction), 2, 1, 0)
	var body []byte
	body = appendU32(body, 1)     // one local group
	body = appendU32(body, 60000) // count
	body = append(body, byte(ValueTypeI32))
	body = append(body, byte(OpEnd))
	var codeSec []byte
	codeSec = appendU32(codeSec, 1)
	codeSec = appendU32(codeSec, uint32(len(body)))
	codeSec = append(codeSec, body...)
	bin = append(bin, byte(SectionCode))
	bin = appendU32(bin, uint32(len(codeSec)))
	bin = append(bin, codeSec...)
	if _, err := Decode(bin); err == nil || !strings.Contains(err.Error(), "too many locals") {
		t.Fatalf("too many locals: %v", err)
	}
}

func TestDecodeStartSection(t *testing.T) {
	m := minimalModule()
	m.Types = append(m.Types, FuncType{})
	m.Functions = append(m.Functions, 1)
	m.Codes = append(m.Codes, Code{Body: new(BodyBuilder).End().Bytes()})
	m.StartSet = true
	m.Start = 1
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !got.StartSet || got.Start != 1 {
		t.Fatalf("start lost: %+v", got)
	}
}

func TestModuleIndexSpaces(t *testing.T) {
	m := &Module{
		Types: []FuncType{
			{Params: []ValueType{ValueTypeI32}},
			{Results: []ValueType{ValueTypeI64}},
		},
		Imports: []Import{
			{Module: "env", Name: "f", Kind: ExternalFunc, Func: 0},
			{Module: "env", Name: "g", Kind: ExternalGlobal, Global: GlobalType{ValType: ValueTypeF64}},
			{Module: "env", Name: "m", Kind: ExternalMemory, Memory: MemoryType{Limits: Limits{Min: 1}}},
			{Module: "env", Name: "t", Kind: ExternalTable, Table: TableType{ElemType: ValueTypeFuncref, Limits: Limits{Min: 1}}},
		},
		Functions: []uint32{1},
		Globals:   []Global{{Type: GlobalType{ValType: ValueTypeI32}, Init: I32Const(0)}},
	}
	if n := m.NumImportedFuncs(); n != 1 {
		t.Fatalf("imported funcs = %d", n)
	}
	if n := m.NumImportedGlobals(); n != 1 {
		t.Fatalf("imported globals = %d", n)
	}
	// Function 0 is the import (type 0); function 1 is defined (type 1).
	ft, err := m.FuncTypeAt(0)
	if err != nil || len(ft.Params) != 1 {
		t.Fatalf("func 0: %v %v", ft, err)
	}
	ft, err = m.FuncTypeAt(1)
	if err != nil || len(ft.Results) != 1 {
		t.Fatalf("func 1: %v %v", ft, err)
	}
	if _, err := m.FuncTypeAt(2); err == nil {
		t.Fatal("out-of-range function accepted")
	}
	// Global index space: 0 imported f64, 1 defined i32.
	gt, ok := m.GlobalTypeAt(0)
	if !ok || gt.ValType != ValueTypeF64 {
		t.Fatalf("global 0: %+v %v", gt, ok)
	}
	gt, ok = m.GlobalTypeAt(1)
	if !ok || gt.ValType != ValueTypeI32 {
		t.Fatalf("global 1: %+v %v", gt, ok)
	}
	if _, ok := m.GlobalTypeAt(2); ok {
		t.Fatal("global 2 should not resolve")
	}
	// Memory and table resolution across imports.
	if _, ok := m.MemoryAt(0); !ok {
		t.Fatal("imported memory not found")
	}
	if _, ok := m.TableAt(0); !ok {
		t.Fatal("imported table not found")
	}
}

func TestFuncTypeString(t *testing.T) {
	ft := FuncType{
		Params:  []ValueType{ValueTypeI32, ValueTypeF64},
		Results: []ValueType{ValueTypeI64},
	}
	if got := ft.String(); got != "(i32, f64) -> (i64)" {
		t.Fatalf("String() = %q", got)
	}
	if ValueTypeFuncref.String() != "funcref" {
		t.Fatal("funcref name")
	}
	if !ValueTypeF32.IsNumeric() || ValueTypeFuncref.IsNumeric() {
		t.Fatal("IsNumeric")
	}
}

func TestExternalKindString(t *testing.T) {
	names := map[ExternalKind]string{
		ExternalFunc: "func", ExternalTable: "table",
		ExternalMemory: "memory", ExternalGlobal: "global",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestOpcodeNames(t *testing.T) {
	if OpcodeName(OpI32Add) != "i32.add" {
		t.Fatal("i32.add name")
	}
	if OpcodeName(OpCallIndirect) != "call_indirect" {
		t.Fatal("call_indirect name")
	}
	if !strings.HasPrefix(OpcodeName(Opcode(0xff)), "op(0x") {
		t.Fatal("unknown opcode name")
	}
}

func TestNameSectionRoundTrip(t *testing.T) {
	m := minimalModule()
	EncodeNameSection(m, NameMap{
		ModuleName: "demo",
		FuncNames:  map[uint32]string{0: "answer", 5: "helper"},
	})
	decoded, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	nm := DecodeNameSection(decoded)
	if nm.ModuleName != "demo" {
		t.Fatalf("module name = %q", nm.ModuleName)
	}
	if nm.FuncNames[0] != "answer" || nm.FuncNames[5] != "helper" {
		t.Fatalf("func names = %v", nm.FuncNames)
	}
	// Re-encoding replaces rather than duplicates.
	EncodeNameSection(decoded, NameMap{FuncNames: map[uint32]string{0: "renamed"}})
	count := 0
	for _, cs := range decoded.Customs {
		if cs.Name == "name" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d name sections", count)
	}
	if got := DecodeNameSection(decoded).FuncNames[0]; got != "renamed" {
		t.Fatalf("renamed = %q", got)
	}
}

func TestNameSectionMalformedIsSoft(t *testing.T) {
	m := minimalModule()
	m.Customs = []CustomSection{{Name: "name", Data: []byte{0xff, 0xff, 0xff}}}
	nm := DecodeNameSection(m)
	if len(nm.FuncNames) != 0 {
		t.Fatal("garbage produced names")
	}
	// Absent section.
	if nm := DecodeNameSection(minimalModule()); nm.ModuleName != "" || len(nm.FuncNames) != 0 {
		t.Fatal("absent section produced names")
	}
}

func TestFloatConstRoundTrip(t *testing.T) {
	// Globals with f32/f64 initializers exercise the float const expression
	// encode/decode paths.
	m := minimalModule()
	m.Globals = []Global{
		{Type: GlobalType{ValType: ValueTypeF32}, Init: ConstExpr{Op: ConstF32, Value: 0x40490fdb}},
		{Type: GlobalType{ValType: ValueTypeF64}, Init: ConstExpr{Op: ConstF64, Value: 0x400921fb54442d18}},
	}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(got); err != nil {
		t.Fatal(err)
	}
	if got.Globals[0].Init.Value != 0x40490fdb {
		t.Fatalf("f32 const bits = %#x", got.Globals[0].Init.Value)
	}
	if got.Globals[1].Init.Value != 0x400921fb54442d18 {
		t.Fatalf("f64 const bits = %#x", got.Globals[1].Init.Value)
	}
	// global.get initializer round-trips too.
	m2 := minimalModule()
	m2.Imports = []Import{{Module: "env", Name: "base", Kind: ExternalGlobal,
		Global: GlobalType{ValType: ValueTypeI32}}}
	m2.Globals = []Global{{Type: GlobalType{ValType: ValueTypeI32}, Init: GlobalGet(0)}}
	got2, err := Decode(Encode(m2))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Globals[0].Init.Op != ConstGlobalGet || got2.Globals[0].Init.Value != 0 {
		t.Fatalf("global.get init lost: %+v", got2.Globals[0].Init)
	}
}

func TestImportsOfAllKindsRoundTrip(t *testing.T) {
	m := &Module{
		Types: []FuncType{{Params: []ValueType{ValueTypeI32}}},
		Imports: []Import{
			{Module: "env", Name: "f", Kind: ExternalFunc, Func: 0},
			{Module: "env", Name: "t", Kind: ExternalTable,
				Table: TableType{ElemType: ValueTypeFuncref, Limits: Limits{Min: 1, Max: 8, HasMax: true}}},
			{Module: "env", Name: "m", Kind: ExternalMemory,
				Memory: MemoryType{Limits: Limits{Min: 2}}},
			{Module: "env", Name: "g", Kind: ExternalGlobal,
				Global: GlobalType{ValType: ValueTypeF64}},
		},
	}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(got); err != nil {
		t.Fatal(err)
	}
	if len(got.Imports) != 4 {
		t.Fatalf("imports = %d", len(got.Imports))
	}
	if got.Imports[1].Table.Limits.Max != 8 {
		t.Fatalf("table import limits = %+v", got.Imports[1].Table)
	}
	if got.Imports[2].Memory.Limits.Min != 2 {
		t.Fatalf("memory import limits = %+v", got.Imports[2].Memory)
	}
	if got.Imports[3].Global.ValType != ValueTypeF64 {
		t.Fatalf("global import = %+v", got.Imports[3].Global)
	}
}

func TestBodyBuilderFloatAndMisc(t *testing.T) {
	// f32.const/f64.const/misc through the builder, executed elsewhere; here
	// we check the encodings decode back.
	body := new(BodyBuilder).
		F32Const(2.5).Op(OpDrop).
		F64Const(-7.25).Op(OpDrop).
		End()
	m := &Module{
		Types:     []FuncType{{}},
		Functions: []uint32{0},
		Codes:     []Code{{Body: body.Bytes()}},
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(Encode(m)); err != nil {
		t.Fatal(err)
	}
}

func TestCodeLocalGroupCompression(t *testing.T) {
	// Mixed local types compress into runs; decode re-expands them.
	body := new(BodyBuilder).End()
	m := &Module{
		Types:     []FuncType{{}},
		Functions: []uint32{0},
		Codes: []Code{{
			Locals: []ValueType{
				ValueTypeI32, ValueTypeI32, ValueTypeI32,
				ValueTypeF64,
				ValueTypeI64, ValueTypeI64,
			},
			Body: body.Bytes(),
		}},
	}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	want := []ValueType{ValueTypeI32, ValueTypeI32, ValueTypeI32, ValueTypeF64, ValueTypeI64, ValueTypeI64}
	if len(got.Codes[0].Locals) != len(want) {
		t.Fatalf("locals = %v", got.Codes[0].Locals)
	}
	for i, vt := range want {
		if got.Codes[0].Locals[i] != vt {
			t.Fatalf("locals[%d] = %s, want %s", i, got.Codes[0].Locals[i], vt)
		}
	}
}

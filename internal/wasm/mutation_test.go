package wasm

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics feeds thousands of random mutations of a valid
// module (plus pure-random byte strings) to the decoder and validator; both
// must return errors gracefully, never panic, and never loop.
func TestDecodeNeverPanics(t *testing.T) {
	base := Encode(minimalModule())
	rng := rand.New(rand.NewSource(42))

	try := func(b []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %x: %v", b, r)
			}
		}()
		m, err := Decode(b)
		if err == nil {
			// Valid decode must also survive validation.
			_ = Validate(m)
			// And re-encoding must not panic either.
			_ = Encode(m)
		}
	}

	// Single-byte mutations at every offset.
	for off := 0; off < len(base); off++ {
		for _, delta := range []byte{1, 0x7f, 0x80, 0xff} {
			mut := append([]byte(nil), base...)
			mut[off] ^= delta
			try(mut)
		}
	}
	// Truncations.
	for cut := 0; cut <= len(base); cut++ {
		try(base[:cut])
	}
	// Random multi-byte mutations.
	for i := 0; i < 3000; i++ {
		mut := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			mut[rng.Intn(len(mut))] = byte(rng.Uint32())
		}
		try(mut)
	}
	// Pure random inputs.
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		try(b)
	}
	// Random bytes with a valid header.
	for i := 0; i < 2000; i++ {
		b := append([]byte("\x00asm\x01\x00\x00\x00"), make([]byte, rng.Intn(64))...)
		rng.Read(b[8:])
		try(b)
	}
}

// TestDecodeExtendedRandomSections builds structurally plausible random
// sections (valid id + length framing, random payload) and asserts graceful
// handling.
func TestDecodeExtendedRandomSections(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		b := []byte("\x00asm\x01\x00\x00\x00")
		nSections := 1 + rng.Intn(4)
		for s := 0; s < nSections; s++ {
			payload := make([]byte, rng.Intn(24))
			rng.Read(payload)
			b = append(b, byte(rng.Intn(13)))
			b = appendU32(b, uint32(len(payload)))
			b = append(b, payload...)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", b, r)
				}
			}()
			if m, err := Decode(b); err == nil {
				_ = Validate(m)
			}
		}()
	}
}

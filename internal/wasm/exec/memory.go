package exec

import (
	"encoding/binary"

	"wasmcontainers/internal/wasm"
)

// Memory is a linear memory instance. Data is always a multiple of the
// 64 KiB page size long.
type Memory struct {
	Type wasm.MemoryType
	data []byte
	// maxPages caps growth; defaults to the type's max or the engine limit.
	maxPages uint32
	// grows counts successful memory.grow calls (telemetry for the
	// engine-profile memory models).
	grows int
}

// NewMemory allocates a memory instance for the given type. limitPages is an
// engine-imposed cap applied on top of the type's own maximum.
func NewMemory(t wasm.MemoryType, limitPages uint32) *Memory {
	max := uint32(wasm.MaxMemoryPages)
	if t.Limits.HasMax && t.Limits.Max < max {
		max = t.Limits.Max
	}
	if limitPages > 0 && limitPages < max {
		max = limitPages
	}
	return &Memory{
		Type:     t,
		data:     make([]byte, int(t.Limits.Min)*wasm.PageSize),
		maxPages: max,
	}
}

// Pages returns the current size in 64 KiB pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.data) / wasm.PageSize) }

// Size returns the current size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Grows returns how many times the memory has grown since instantiation.
func (m *Memory) Grows() int { return m.grows }

// Grow extends the memory by delta pages, returning the previous page count
// or -1 (as per memory.grow semantics) if the limit would be exceeded.
func (m *Memory) Grow(delta uint32) int32 {
	cur := m.Pages()
	if delta == 0 {
		return int32(cur)
	}
	newPages := uint64(cur) + uint64(delta)
	if newPages > uint64(m.maxPages) {
		return -1
	}
	grown := make([]byte, int(newPages)*wasm.PageSize)
	copy(grown, m.data)
	m.data = grown
	m.grows++
	return int32(cur)
}

// Bytes exposes the backing store. Callers must not resize it.
func (m *Memory) Bytes() []byte { return m.data }

// Restore rewinds the memory to a previously captured snapshot of its
// backing bytes: contents are copied back and the size snaps to the
// snapshot's length, releasing pages acquired by memory.grow since the
// snapshot. Warm instance pools use this to guarantee no guest state leaks
// between requests. The snapshot length must be a page multiple (as
// returned by Bytes on a live memory).
func (m *Memory) Restore(snapshot []byte) {
	if len(m.data) != len(snapshot) {
		m.data = make([]byte, len(snapshot))
	}
	copy(m.data, snapshot)
}

// inBounds reports whether [addr, addr+n) lies within the memory. n must be
// small (access width); the arithmetic is done in uint64 to avoid overflow.
func (m *Memory) inBounds(addr uint32, offset uint32, n int) (uint64, bool) {
	ea := uint64(addr) + uint64(offset)
	return ea, ea+uint64(n) <= uint64(len(m.data))
}

// Read copies n bytes at addr into a fresh slice, returning false on OOB.
func (m *Memory) Read(addr, n uint32) ([]byte, bool) {
	ea := uint64(addr)
	if ea+uint64(n) > uint64(len(m.data)) {
		return nil, false
	}
	out := make([]byte, n)
	copy(out, m.data[ea:])
	return out, true
}

// View returns a slice aliasing memory [addr, addr+n), or false on OOB.
func (m *Memory) View(addr, n uint32) ([]byte, bool) {
	ea := uint64(addr)
	if ea+uint64(n) > uint64(len(m.data)) {
		return nil, false
	}
	return m.data[ea : ea+uint64(n)], true
}

// Write copies b into memory at addr, returning false on OOB.
func (m *Memory) Write(addr uint32, b []byte) bool {
	ea := uint64(addr)
	if ea+uint64(len(b)) > uint64(len(m.data)) {
		return false
	}
	copy(m.data[ea:], b)
	return true
}

// ReadUint32 reads a little-endian u32, returning false on OOB.
func (m *Memory) ReadUint32(addr uint32) (uint32, bool) {
	if ea, ok := m.inBounds(addr, 0, 4); ok {
		return binary.LittleEndian.Uint32(m.data[ea:]), true
	}
	return 0, false
}

// WriteUint32 writes a little-endian u32, returning false on OOB.
func (m *Memory) WriteUint32(addr uint32, v uint32) bool {
	if ea, ok := m.inBounds(addr, 0, 4); ok {
		binary.LittleEndian.PutUint32(m.data[ea:], v)
		return true
	}
	return false
}

// ReadUint64 reads a little-endian u64, returning false on OOB.
func (m *Memory) ReadUint64(addr uint32) (uint64, bool) {
	if ea, ok := m.inBounds(addr, 0, 8); ok {
		return binary.LittleEndian.Uint64(m.data[ea:]), true
	}
	return 0, false
}

// WriteUint64 writes a little-endian u64, returning false on OOB.
func (m *Memory) WriteUint64(addr uint32, v uint64) bool {
	if ea, ok := m.inBounds(addr, 0, 8); ok {
		binary.LittleEndian.PutUint64(m.data[ea:], v)
		return true
	}
	return false
}

// ReadString reads n bytes at addr as a string, returning false on OOB.
func (m *Memory) ReadString(addr, n uint32) (string, bool) {
	b, ok := m.Read(addr, n)
	if !ok {
		return "", false
	}
	return string(b), true
}

// load fetches width bytes for the interpreter; returns the zero-extended
// little-endian value.
func (m *Memory) load(addr, offset uint32, width int) (uint64, bool) {
	ea, ok := m.inBounds(addr, offset, width)
	if !ok {
		return 0, false
	}
	switch width {
	case 1:
		return uint64(m.data[ea]), true
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.data[ea:])), true
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.data[ea:])), true
	default:
		return binary.LittleEndian.Uint64(m.data[ea:]), true
	}
}

// store writes width bytes for the interpreter.
func (m *Memory) store(addr, offset uint32, width int, v uint64) bool {
	ea, ok := m.inBounds(addr, offset, width)
	if !ok {
		return false
	}
	switch width {
	case 1:
		m.data[ea] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.data[ea:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.data[ea:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(m.data[ea:], v)
	}
	return true
}

// Table is a table instance holding function references.
type Table struct {
	Type wasm.TableType
	// elems holds function indices into the owning instance's function space;
	// nil entries are uninitialized.
	elems []*function
}

// NewTable allocates a table instance.
func NewTable(t wasm.TableType) *Table {
	return &Table{Type: t, elems: make([]*function, t.Limits.Min)}
}

// Len returns the current table length.
func (t *Table) Len() int { return len(t.elems) }

// GlobalVar is a global variable instance.
type GlobalVar struct {
	Type wasm.GlobalType
	Val  Value
}

// Get returns the current value.
func (g *GlobalVar) Get() Value { return g.Val }

// Set updates a mutable global. Setting an immutable global is a bug in the
// embedder; the interpreter never does it.
func (g *GlobalVar) Set(v Value) { g.Val = v }

package exec

import (
	"encoding/binary"
	"math/bits"

	"wasmcontainers/internal/wasm"
)

// Memory is a linear memory instance. Data is always a multiple of the
// 64 KiB page size long.
//
// Every mutation path sets a bit in a per-page dirty bitmap. Together with a
// shared immutable BaselineImage (the post-instantiation memory contents,
// typically held by the module's ModuleCode and shared by every instance of
// that digest on the node) this gives copy-on-write semantics at page
// granularity: an instance's private cost is its dirty pages, and resetting
// between requests copies back only those pages instead of the whole memory.
type Memory struct {
	Type wasm.MemoryType
	data []byte
	// maxPages caps growth; defaults to the type's max or the engine limit.
	maxPages uint32
	// grows counts successful memory.grow calls (telemetry for the
	// engine-profile memory models).
	grows int
	// dirty has one bit per 64 KiB page of data, set on first write since the
	// last baseline capture/attach/reset. Always sized to cover len(data).
	dirty []uint64
	// baseline is the shared read-only image dirty pages diverge from; nil
	// until captured or attached.
	baseline *BaselineImage
}

// NewMemory allocates a memory instance for the given type. limitPages is an
// engine-imposed cap applied on top of the type's own maximum.
func NewMemory(t wasm.MemoryType, limitPages uint32) *Memory {
	max := uint32(wasm.MaxMemoryPages)
	if t.Limits.HasMax && t.Limits.Max < max {
		max = t.Limits.Max
	}
	if limitPages > 0 && limitPages < max {
		max = limitPages
	}
	pages := uint64(t.Limits.Min)
	return &Memory{
		Type:     t,
		data:     make([]byte, int(pages)*wasm.PageSize),
		maxPages: max,
		dirty:    make([]uint64, (pages+63)/64),
	}
}

// Pages returns the current size in 64 KiB pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.data) / wasm.PageSize) }

// Size returns the current size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Grows returns how many times the memory has grown since instantiation.
func (m *Memory) Grows() int { return m.grows }

// markPage flags the page containing byte offset ea as dirty. ea must be in
// bounds (callers mark after their bounds check).
func (m *Memory) markPage(ea uint64) {
	p := ea >> 16
	m.dirty[p>>6] |= 1 << (p & 63)
}

// markRange flags every page overlapping [ea, ea+n).
func (m *Memory) markRange(ea, n uint64) {
	if n == 0 {
		return
	}
	for p := ea >> 16; p <= (ea+n-1)>>16; p++ {
		m.dirty[p>>6] |= 1 << (p & 63)
	}
}

// markAll conservatively flags every current page dirty.
func (m *Memory) markAll() {
	pages := uint64(m.Pages())
	for p := uint64(0); p < pages; p++ {
		m.dirty[p>>6] |= 1 << (p & 63)
	}
}

// Grow extends the memory by delta pages, returning the previous page count
// or -1 (as per memory.grow semantics) if the limit would be exceeded.
// Reallocation keeps capacity headroom (amortized doubling up to maxPages),
// so a guest growing one page at a time pays O(n) total copying, not O(n²).
// New pages are zero and marked dirty: relative to any baseline they are
// private memory, released again by ResetToBaseline.
func (m *Memory) Grow(delta uint32) int32 {
	cur := m.Pages()
	if delta == 0 {
		return int32(cur)
	}
	newPages := uint64(cur) + uint64(delta)
	if newPages > uint64(m.maxPages) {
		return -1
	}
	newLen := int(newPages) * wasm.PageSize
	if newLen <= cap(m.data) {
		// Reslice within existing capacity. Pages in [cur, newPages) may hold
		// stale bytes from before a shrink (ResetToBaseline reslices down
		// without clearing); memory.grow must expose zeroes.
		oldLen := len(m.data)
		m.data = m.data[:newLen]
		clear(m.data[oldLen:])
	} else {
		newCap := 2 * cap(m.data)
		if newCap < newLen {
			newCap = newLen
		}
		if maxLen := int(m.maxPages) * wasm.PageSize; newCap > maxLen {
			newCap = maxLen
		}
		grown := make([]byte, newLen, newCap)
		copy(grown, m.data)
		m.data = grown
	}
	for need := int(newPages+63) / 64; len(m.dirty) < need; {
		m.dirty = append(m.dirty, 0)
	}
	for p := uint64(cur); p < newPages; p++ {
		m.dirty[p>>6] |= 1 << (p & 63)
	}
	m.grows++
	return int32(cur)
}

// Bytes exposes the backing store. Callers must not resize it, and must not
// write through it (writes bypass dirty tracking; use Write or WritableView).
func (m *Memory) Bytes() []byte { return m.data }

// Restore rewinds the memory to a previously captured snapshot of its
// backing bytes: contents are copied back and the size snaps to the
// snapshot's length, releasing pages acquired by memory.grow since the
// snapshot. This is the legacy full-copy reset (kept as the baseline the
// CoW benchmarks compare against); warm pools now use ResetToBaseline. The
// snapshot length must be a page multiple (as returned by Bytes on a live
// memory). Because the snapshot's relation to any attached baseline is
// unknown, every page is conservatively marked dirty.
func (m *Memory) Restore(snapshot []byte) {
	if len(m.data) != len(snapshot) {
		m.data = make([]byte, len(snapshot))
	}
	copy(m.data, snapshot)
	for need := (len(snapshot)/wasm.PageSize + 63) / 64; len(m.dirty) < need; {
		m.dirty = append(m.dirty, 0)
	}
	m.markAll()
}

// BaselineImage is an immutable copy of a memory's post-instantiation
// contents, shared by reference between every instance of a module digest.
// It is the memory-side twin of the shared compiled-code artifact: accounted
// once per node, with instances charged only their private dirty pages.
type BaselineImage struct {
	data []byte
}

// Bytes returns the accounted size of the image.
func (b *BaselineImage) Bytes() int64 { return int64(len(b.data)) }

// Pages returns the image size in 64 KiB pages.
func (b *BaselineImage) Pages() uint32 { return uint32(len(b.data) / wasm.PageSize) }

// CaptureBaseline snapshots the current contents as a new shared baseline,
// attaches it, and clears the dirty bitmap: from here on the memory's
// private cost is the pages it diverges by.
func (m *Memory) CaptureBaseline() *BaselineImage {
	b := &BaselineImage{data: append([]byte(nil), m.data...)}
	m.baseline = b
	clear(m.dirty)
	return b
}

// AttachBaseline adopts an existing shared baseline. The memory's current
// contents must already equal the image byte-for-byte (instantiation of a
// given module is deterministic, so every fresh instance reaches the same
// state); only the length is checked. Returns false on length mismatch, in
// which case the memory is left untouched.
func (m *Memory) AttachBaseline(b *BaselineImage) bool {
	if b == nil || len(b.data) != len(m.data) {
		return false
	}
	m.baseline = b
	clear(m.dirty)
	return true
}

// Baseline returns the attached shared image, or nil.
func (m *Memory) Baseline() *BaselineImage { return m.baseline }

// DirtyPages counts pages written since the last baseline capture/attach or
// reset (including pages acquired by memory.grow).
func (m *Memory) DirtyPages() int {
	n := 0
	for _, w := range m.dirty {
		n += bits.OnesCount64(w)
	}
	return n
}

// PrivateBytes is the memory's copy-on-write private cost: dirty pages when
// a baseline is attached, the whole memory otherwise.
func (m *Memory) PrivateBytes() int64 {
	if m.baseline == nil {
		return int64(len(m.data))
	}
	return int64(m.DirtyPages()) * wasm.PageSize
}

// ResetToBaseline rewinds the memory to the attached baseline by copying
// back only dirty pages, releasing pages grown beyond the baseline and
// clearing the dirty bitmap. Cost is proportional to pages touched since the
// last reset, not memory size. Returns the number of pages copied, or -1 if
// no baseline is attached (the memory is left unchanged).
func (m *Memory) ResetToBaseline() int {
	b := m.baseline
	if b == nil {
		return -1
	}
	if len(m.data) > len(b.data) {
		// Drop grown pages: their dirty bits are discarded with them.
		m.data = m.data[:len(b.data)]
	}
	basePages := uint64(len(b.data)) / wasm.PageSize
	copied := 0
	for wi, w := range m.dirty {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << bit
			p := uint64(wi)*64 + uint64(bit)
			if p >= basePages {
				continue
			}
			off := p * wasm.PageSize
			copy(m.data[off:off+wasm.PageSize], b.data[off:off+wasm.PageSize])
			copied++
		}
		m.dirty[wi] = 0
	}
	if need := int(basePages+63) / 64; len(m.dirty) > need {
		m.dirty = m.dirty[:need]
	}
	return copied
}

// inBounds reports whether [addr, addr+n) lies within the memory. n must be
// small (access width); the arithmetic is done in uint64 to avoid overflow.
func (m *Memory) inBounds(addr uint32, offset uint32, n int) (uint64, bool) {
	ea := uint64(addr) + uint64(offset)
	return ea, ea+uint64(n) <= uint64(len(m.data))
}

// Read copies n bytes at addr into a fresh slice, returning false on OOB.
func (m *Memory) Read(addr, n uint32) ([]byte, bool) {
	ea := uint64(addr)
	if ea+uint64(n) > uint64(len(m.data)) {
		return nil, false
	}
	out := make([]byte, n)
	copy(out, m.data[ea:])
	return out, true
}

// View returns a slice aliasing memory [addr, addr+n), or false on OOB.
// The view is for reading; writing through it would bypass dirty tracking
// (use WritableView for that).
func (m *Memory) View(addr, n uint32) ([]byte, bool) {
	ea := uint64(addr)
	if ea+uint64(n) > uint64(len(m.data)) {
		return nil, false
	}
	return m.data[ea : ea+uint64(n)], true
}

// WritableView is View for host functions that fill guest memory in place
// (avoiding a staging allocation): the covered pages are marked dirty up
// front, so writes through the returned slice stay visible to the
// copy-on-write reset.
func (m *Memory) WritableView(addr, n uint32) ([]byte, bool) {
	ea := uint64(addr)
	if ea+uint64(n) > uint64(len(m.data)) {
		return nil, false
	}
	m.markRange(ea, uint64(n))
	return m.data[ea : ea+uint64(n)], true
}

// Write copies b into memory at addr, returning false on OOB.
func (m *Memory) Write(addr uint32, b []byte) bool {
	ea := uint64(addr)
	if ea+uint64(len(b)) > uint64(len(m.data)) {
		return false
	}
	copy(m.data[ea:], b)
	m.markRange(ea, uint64(len(b)))
	return true
}

// WriteString copies s into memory at addr without an intermediate []byte
// allocation, returning false on OOB.
func (m *Memory) WriteString(addr uint32, s string) bool {
	ea := uint64(addr)
	if ea+uint64(len(s)) > uint64(len(m.data)) {
		return false
	}
	copy(m.data[ea:], s)
	m.markRange(ea, uint64(len(s)))
	return true
}

// ReadUint32 reads a little-endian u32, returning false on OOB.
func (m *Memory) ReadUint32(addr uint32) (uint32, bool) {
	if ea, ok := m.inBounds(addr, 0, 4); ok {
		return binary.LittleEndian.Uint32(m.data[ea:]), true
	}
	return 0, false
}

// WriteUint32 writes a little-endian u32, returning false on OOB.
func (m *Memory) WriteUint32(addr uint32, v uint32) bool {
	if ea, ok := m.inBounds(addr, 0, 4); ok {
		binary.LittleEndian.PutUint32(m.data[ea:], v)
		m.markPage(ea)
		m.markPage(ea + 3)
		return true
	}
	return false
}

// ReadUint64 reads a little-endian u64, returning false on OOB.
func (m *Memory) ReadUint64(addr uint32) (uint64, bool) {
	if ea, ok := m.inBounds(addr, 0, 8); ok {
		return binary.LittleEndian.Uint64(m.data[ea:]), true
	}
	return 0, false
}

// WriteUint64 writes a little-endian u64, returning false on OOB.
func (m *Memory) WriteUint64(addr uint32, v uint64) bool {
	if ea, ok := m.inBounds(addr, 0, 8); ok {
		binary.LittleEndian.PutUint64(m.data[ea:], v)
		m.markPage(ea)
		m.markPage(ea + 7)
		return true
	}
	return false
}

// ReadString reads n bytes at addr as a string, returning false on OOB.
func (m *Memory) ReadString(addr, n uint32) (string, bool) {
	ea := uint64(addr)
	if ea+uint64(n) > uint64(len(m.data)) {
		return "", false
	}
	return string(m.data[ea : ea+uint64(n)]), true
}

// load fetches width bytes for the interpreter; returns the zero-extended
// little-endian value.
func (m *Memory) load(addr, offset uint32, width int) (uint64, bool) {
	ea, ok := m.inBounds(addr, offset, width)
	if !ok {
		return 0, false
	}
	switch width {
	case 1:
		return uint64(m.data[ea]), true
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.data[ea:])), true
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.data[ea:])), true
	default:
		return binary.LittleEndian.Uint64(m.data[ea:]), true
	}
}

// store writes width bytes for the interpreter. The hot-loop dirty marking
// is one shift/or on the first page plus a compare for the (rare) access
// that straddles a page boundary.
func (m *Memory) store(addr, offset uint32, width int, v uint64) bool {
	ea, ok := m.inBounds(addr, offset, width)
	if !ok {
		return false
	}
	switch width {
	case 1:
		m.data[ea] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.data[ea:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.data[ea:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(m.data[ea:], v)
	}
	p := ea >> 16
	m.dirty[p>>6] |= 1 << (p & 63)
	if last := (ea + uint64(width) - 1) >> 16; last != p {
		m.dirty[last>>6] |= 1 << (last & 63)
	}
	return true
}

// Table is a table instance holding function references.
type Table struct {
	Type wasm.TableType
	// elems holds function indices into the owning instance's function space;
	// nil entries are uninitialized.
	elems []*function
}

// NewTable allocates a table instance.
func NewTable(t wasm.TableType) *Table {
	return &Table{Type: t, elems: make([]*function, t.Limits.Min)}
}

// Len returns the current table length.
func (t *Table) Len() int { return len(t.elems) }

// GlobalVar is a global variable instance.
type GlobalVar struct {
	Type wasm.GlobalType
	Val  Value
}

// Get returns the current value.
func (g *GlobalVar) Get() Value { return g.Val }

// Set updates a mutable global. Setting an immutable global is a bug in the
// embedder; the interpreter never does it.
func (g *GlobalVar) Set(v Value) { g.Val = v }

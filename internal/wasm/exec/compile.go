package exec

import (
	"encoding/binary"
	"fmt"

	"wasmcontainers/internal/wasm"
)

// instr is one pre-decoded instruction. Branch targets are resolved to
// instruction indices at compile time, and every branch carries the stack
// fixup (how many values to keep from the top, how many to drop beneath
// them) so the interpreter needs no label stack.
type instr struct {
	op   wasm.Opcode
	misc uint32 // 0xFC sub-opcode, or load/store width, or br-table index
	a    uint64 // primary immediate: const bits, target pc, func/local index, mem offset
	b    uint64 // secondary immediate: packed drop<<32|keep for branches
}

func packDropKeep(drop, keep int) uint64 {
	if drop < 0 {
		drop = 0
	}
	return uint64(drop)<<32 | uint64(uint32(keep))
}

func unpackDropKeep(b uint64) (drop, keep int) {
	return int(b >> 32), int(uint32(b))
}

// brTableEntry is one resolved br_table target.
type brTableEntry struct {
	pc       uint64
	dropKeep uint64
}

// compiledCode is the executable form of a function body.
type compiledCode struct {
	instrs    []instr
	brTables  [][]brTableEntry
	maxHeight int // static operand-stack bound
}

// sizeBytes approximates the resident size of the compiled artifact: the
// instruction stream, the branch tables, and a fixed header. This is what the
// module cache's byte bound and the shared-code memory accounting charge.
func (cc *compiledCode) sizeBytes() int64 {
	n := int64(len(cc.instrs)) * 24
	for _, t := range cc.brTables {
		n += int64(len(t)) * 16
	}
	return n + 64
}

// ctFrame is a compile-time control frame.
type ctFrame struct {
	op           wasm.Opcode
	base         int // operand-stack height beneath the block's parameters
	nIn          int
	nOut         int
	startPC      int   // pc of the block/loop/if instruction
	patches      []int // instr indices whose target must be patched to the end pc
	tablePatches []tablePatch
	elsePC       int  // pc of the else instruction, or -1
	wasUnrea     bool // saved outer unreachable state
}

// tablePatch records a br_table entry whose target is the enclosing block's
// end and must be patched once that end's pc is known.
type tablePatch struct {
	instr int // index of the br_table instruction
	entry int // entry within its jump table
}

type compiler struct {
	m        *wasm.Module
	code     *wasm.Code
	ft       wasm.FuncType
	instrs   []instr
	brTables [][]brTableEntry
	ctrl     []ctFrame
	height   int
	maxH     int
	unrea    bool
}

// compileBody lowers a validated function body to compiledCode. The body is
// assumed valid: compileBody panics on structural impossibilities rather than
// returning rich errors.
func compileBody(m *wasm.Module, ft wasm.FuncType, code *wasm.Code) (*compiledCode, error) {
	c := &compiler{m: m, code: code, ft: ft}
	c.pushCtrl(0, 0, len(ft.Results), -1)

	buf := code.Body
	pos := 0
	readU32 := func() uint32 {
		v, n := mustReadU32(buf[pos:])
		pos += n
		return v
	}
	for pos < len(buf) {
		op := wasm.Opcode(buf[pos])
		pos++
		switch op {
		case wasm.OpUnreachable:
			c.emit(instr{op: op})
			c.setUnreachable()
		case wasm.OpNop:
			// Not emitted: pure padding.
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			bt, n := mustReadS33(buf[pos:])
			pos += n
			nIn, nOut := c.blockArity(bt)
			if op == wasm.OpIf {
				c.pop(1) // condition
			}
			pc := c.emit(instr{op: op})
			c.pop(nIn)
			c.pushCtrl(op, nIn, nOut, pc)
			c.push(nIn)
		case wasm.OpElse:
			f := &c.ctrl[len(c.ctrl)-1]
			// Terminate the then-branch with a jump to end (patched later).
			jmp := c.emit(instr{op: wasm.OpElse})
			f.patches = append(f.patches, jmp)
			f.elsePC = jmp
			c.height = f.base + f.nIn
			c.unrea = f.wasUnrea
			// Re-borrow the frame's unreachable baseline for the else arm.
			c.ctrl[len(c.ctrl)-1].wasUnrea = c.unrea
		case wasm.OpEnd:
			endPC := c.emit(instr{op: wasm.OpEnd})
			f := c.ctrl[len(c.ctrl)-1]
			c.ctrl = c.ctrl[:len(c.ctrl)-1]
			for _, p := range f.patches {
				c.instrs[p].a = uint64(endPC)
			}
			for _, tp := range f.tablePatches {
				c.brTables[c.instrs[tp.instr].misc][tp.entry].pc = uint64(endPC)
			}
			if f.op == wasm.OpIf && f.elsePC == -1 {
				// No else: the if jumps to end when false.
				c.instrs[f.startPC].a = uint64(endPC)
			} else if f.op == wasm.OpIf {
				// With else: false jumps just past the else jump.
				c.instrs[f.startPC].a = uint64(f.elsePC + 1)
			}
			c.height = f.base + f.nOut
			c.maxTrack()
			c.unrea = f.wasUnrea
			if len(c.ctrl) == 0 {
				// Implicit function end: emit a return for the interpreter.
				c.instrs[endPC] = instr{op: wasm.OpReturn, b: packDropKeep(0, len(c.ft.Results))}
				cc := &compiledCode{instrs: c.instrs, brTables: c.brTables, maxHeight: c.maxH + 1}
				fuse(cc)
				return cc, nil
			}
		case wasm.OpBr, wasm.OpBrIf:
			depth := readU32()
			if op == wasm.OpBrIf {
				c.pop(1)
			}
			pc, dk := c.branchTo(depth)
			idx := c.emit(instr{op: op, a: pc, b: dk})
			c.patchIfForward(depth, idx)
			if op == wasm.OpBr {
				c.setUnreachable()
			}
		case wasm.OpBrTable:
			n := readU32()
			targets := make([]uint32, n)
			for i := range targets {
				targets[i] = readU32()
			}
			def := readU32()
			c.pop(1) // index
			entries := make([]brTableEntry, 0, n+1)
			patchIdx := len(c.instrs)
			for _, t := range append(targets, def) {
				pc, dk := c.branchTo(t)
				entries = append(entries, brTableEntry{pc: pc, dropKeep: dk})
			}
			c.brTables = append(c.brTables, entries)
			c.emit(instr{op: op, misc: uint32(len(c.brTables) - 1)})
			// Register forward patches: entry i of table misc.
			for i, t := range append(targets, def) {
				c.patchTableIfForward(t, patchIdx, i)
			}
			c.setUnreachable()
		case wasm.OpReturn:
			c.emit(instr{op: op, b: packDropKeep(0, len(c.ft.Results))})
			c.setUnreachable()
		case wasm.OpCall:
			fi := readU32()
			ft, err := c.m.FuncTypeAt(fi)
			if err != nil {
				return nil, err
			}
			c.pop(len(ft.Params))
			c.emit(instr{op: op, a: uint64(fi)})
			c.push(len(ft.Results))
		case wasm.OpCallIndirect:
			ti := readU32()
			pos++ // reserved table byte
			ft := c.m.Types[ti]
			c.pop(1 + len(ft.Params))
			c.emit(instr{op: op, a: uint64(ti)})
			c.push(len(ft.Results))
		case wasm.OpDrop:
			c.pop(1)
			c.emit(instr{op: op})
		case wasm.OpSelect:
			c.pop(3)
			c.emit(instr{op: op})
			c.push(1)
		case wasm.OpLocalGet:
			c.emit(instr{op: op, a: uint64(readU32())})
			c.push(1)
		case wasm.OpLocalSet:
			c.pop(1)
			c.emit(instr{op: op, a: uint64(readU32())})
		case wasm.OpLocalTee:
			c.emit(instr{op: op, a: uint64(readU32())})
		case wasm.OpGlobalGet:
			c.emit(instr{op: op, a: uint64(readU32())})
			c.push(1)
		case wasm.OpGlobalSet:
			c.pop(1)
			c.emit(instr{op: op, a: uint64(readU32())})
		case wasm.OpMemorySize:
			pos++ // reserved
			c.emit(instr{op: op})
			c.push(1)
		case wasm.OpMemoryGrow:
			pos++ // reserved
			c.pop(1)
			c.emit(instr{op: op})
			c.push(1)
		case wasm.OpI32Const:
			v, n := mustReadS32(buf[pos:])
			pos += n
			c.emit(instr{op: op, a: uint64(uint32(v))})
			c.push(1)
		case wasm.OpI64Const:
			v, n := mustReadS64(buf[pos:])
			pos += n
			c.emit(instr{op: op, a: uint64(v)})
			c.push(1)
		case wasm.OpF32Const:
			c.emit(instr{op: op, a: uint64(binary.LittleEndian.Uint32(buf[pos:]))})
			pos += 4
			c.push(1)
		case wasm.OpF64Const:
			c.emit(instr{op: op, a: binary.LittleEndian.Uint64(buf[pos:])})
			pos += 8
			c.push(1)
		case wasm.OpMisc:
			sub, n := mustReadU32(buf[pos:])
			pos += n
			switch sub {
			case wasm.MiscMemoryCopy:
				pos += 2
				c.pop(3)
			case wasm.MiscMemoryFill:
				pos++
				c.pop(3)
			default: // trunc_sat: 1 -> 1
				c.pop(1)
				c.push(0) // net zero; value replaced
			}
			c.emit(instr{op: op, misc: sub})
			if sub < wasm.MiscMemoryCopy {
				c.push(1)
			}
		default:
			// Fixed-arity numeric and memory instructions.
			in, out, width, isMem := fixedShape(op)
			if isMem {
				// align, offset immediates
				_, n1 := mustReadU32(buf[pos:])
				pos += n1
				off, n2 := mustReadU32(buf[pos:])
				pos += n2
				c.pop(in)
				c.emit(instr{op: op, misc: uint32(width), a: uint64(off)})
				c.push(out)
			} else {
				c.pop(in)
				c.emit(instr{op: op})
				c.push(out)
			}
		}
	}
	return nil, fmt.Errorf("exec: function body ended without end opcode")
}

func (c *compiler) emit(i instr) int {
	c.instrs = append(c.instrs, i)
	return len(c.instrs) - 1
}

func (c *compiler) push(n int) {
	c.height += n
	c.maxTrack()
}

func (c *compiler) maxTrack() {
	if c.height > c.maxH {
		c.maxH = c.height
	}
}

func (c *compiler) pop(n int) {
	c.height -= n
	if c.height < 0 {
		// Only possible in unreachable code, which never executes.
		c.height = 0
	}
}

func (c *compiler) pushCtrl(op wasm.Opcode, nIn, nOut, startPC int) {
	c.ctrl = append(c.ctrl, ctFrame{
		op: op, base: c.height, nIn: nIn, nOut: nOut,
		startPC: startPC, elsePC: -1, wasUnrea: c.unrea,
	})
}

func (c *compiler) setUnreachable() {
	f := &c.ctrl[len(c.ctrl)-1]
	c.height = f.base + f.nIn
	c.unrea = true
}

// branchTo computes the resolved target pc (loops) or a placeholder (forward
// branches, patched at the matching end) plus the drop/keep packing.
func (c *compiler) branchTo(depth uint32) (pc uint64, dropKeep uint64) {
	f := &c.ctrl[len(c.ctrl)-1-int(depth)]
	keep := f.nOut
	if f.op == wasm.OpLoop {
		keep = f.nIn
	}
	drop := c.height - keep - f.base
	if f.op == wasm.OpLoop {
		return uint64(f.startPC), packDropKeep(drop, keep)
	}
	return 0, packDropKeep(drop, keep) // pc patched later
}

func (c *compiler) patchIfForward(depth uint32, instrIdx int) {
	f := &c.ctrl[len(c.ctrl)-1-int(depth)]
	if f.op != wasm.OpLoop {
		f.patches = append(f.patches, instrIdx)
	}
}

func (c *compiler) patchTableIfForward(depth uint32, tableInstr, entry int) {
	f := &c.ctrl[len(c.ctrl)-1-int(depth)]
	if f.op != wasm.OpLoop {
		// Encode the patch as a closure-free record: reuse patches with a
		// synthetic index that the end handler recognizes.
		f.tablePatches = append(f.tablePatches, tablePatch{instr: tableInstr, entry: entry})
	}
}

func (c *compiler) blockArity(bt int64) (in, out int) {
	if bt >= 0 {
		t := c.m.Types[int(bt)]
		return len(t.Params), len(t.Results)
	}
	if bt == wasm.BlockTypeEmpty {
		return 0, 0
	}
	return 0, 1
}

// fixedShape returns stack arity and memory-access width for fixed-signature
// instructions. isMem marks load/store instructions carrying memarg
// immediates; width is the access size in bytes.
func fixedShape(op wasm.Opcode) (in, out, width int, isMem bool) {
	switch op {
	case wasm.OpI32Load, wasm.OpF32Load:
		return 1, 1, 4, true
	case wasm.OpI64Load, wasm.OpF64Load:
		return 1, 1, 8, true
	case wasm.OpI32Load8S, wasm.OpI32Load8U, wasm.OpI64Load8S, wasm.OpI64Load8U:
		return 1, 1, 1, true
	case wasm.OpI32Load16S, wasm.OpI32Load16U, wasm.OpI64Load16S, wasm.OpI64Load16U:
		return 1, 1, 2, true
	case wasm.OpI64Load32S, wasm.OpI64Load32U:
		return 1, 1, 4, true
	case wasm.OpI32Store, wasm.OpF32Store:
		return 2, 0, 4, true
	case wasm.OpI64Store, wasm.OpF64Store:
		return 2, 0, 8, true
	case wasm.OpI32Store8, wasm.OpI64Store8:
		return 2, 0, 1, true
	case wasm.OpI32Store16, wasm.OpI64Store16:
		return 2, 0, 2, true
	case wasm.OpI64Store32:
		return 2, 0, 4, true
	}
	// Non-memory fixed ops: classify by arity.
	switch op {
	case wasm.OpI32Eqz, wasm.OpI64Eqz,
		wasm.OpI32Clz, wasm.OpI32Ctz, wasm.OpI32Popcnt,
		wasm.OpI64Clz, wasm.OpI64Ctz, wasm.OpI64Popcnt,
		wasm.OpF32Abs, wasm.OpF32Neg, wasm.OpF32Ceil, wasm.OpF32Floor, wasm.OpF32Trunc, wasm.OpF32Nearest, wasm.OpF32Sqrt,
		wasm.OpF64Abs, wasm.OpF64Neg, wasm.OpF64Ceil, wasm.OpF64Floor, wasm.OpF64Trunc, wasm.OpF64Nearest, wasm.OpF64Sqrt,
		wasm.OpI32WrapI64, wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI32TruncF64S, wasm.OpI32TruncF64U,
		wasm.OpI64ExtendI32S, wasm.OpI64ExtendI32U, wasm.OpI64TruncF32S, wasm.OpI64TruncF32U,
		wasm.OpI64TruncF64S, wasm.OpI64TruncF64U,
		wasm.OpF32ConvertI32S, wasm.OpF32ConvertI32U, wasm.OpF32ConvertI64S, wasm.OpF32ConvertI64U, wasm.OpF32DemoteF64,
		wasm.OpF64ConvertI32S, wasm.OpF64ConvertI32U, wasm.OpF64ConvertI64S, wasm.OpF64ConvertI64U, wasm.OpF64PromoteF32,
		wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64, wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64,
		wasm.OpI32Extend8S, wasm.OpI32Extend16S, wasm.OpI64Extend8S, wasm.OpI64Extend16S, wasm.OpI64Extend32S:
		return 1, 1, 0, false
	default:
		// Everything else in the fixed set is a binary op producing one value.
		return 2, 1, 0, false
	}
}

// mustReadU32 and friends decode immediates from already-validated bodies.
func mustReadU32(b []byte) (uint32, int) {
	v, n, err := wasm.ReadU32(b)
	if err != nil {
		panic("exec: corrupt validated body: " + err.Error())
	}
	return v, n
}

func mustReadS32(b []byte) (int32, int) {
	v, n, err := wasm.ReadS32(b)
	if err != nil {
		panic("exec: corrupt validated body: " + err.Error())
	}
	return v, n
}

func mustReadS64(b []byte) (int64, int) {
	v, n, err := wasm.ReadS64(b)
	if err != nil {
		panic("exec: corrupt validated body: " + err.Error())
	}
	return v, n
}

func mustReadS33(b []byte) (int64, int) {
	v, n, err := wasm.ReadS33(b)
	if err != nil {
		panic("exec: corrupt validated body: " + err.Error())
	}
	return v, n
}

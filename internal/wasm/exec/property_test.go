package exec

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"wasmcontainers/internal/wasm"
)

// binFunc builds and instantiates a (t, t) -> (t) module applying one
// operator, returning a Go closure over the interpreter.
func binFunc(t *testing.T, vt wasm.ValueType, op wasm.Opcode) func(a, b Value) (Value, error) {
	t.Helper()
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).
		OpU32(wasm.OpLocalGet, 1).
		Op(op).
		End()
	out := vt
	if isComparisonOp(op) {
		out = wasm.ValueTypeI32
	}
	m := buildModule(t, singleFunc([]wasm.ValueType{vt, vt}, []wasm.ValueType{out}, nil, b))
	inst := instantiate(t, m)
	return func(a, bb Value) (Value, error) {
		res, err := inst.Call("f", a, bb)
		if err != nil {
			return 0, err
		}
		return res[0], nil
	}
}

// Property: i32 add/sub/mul match Go's wrapping arithmetic.
func TestPropertyI32Arithmetic(t *testing.T) {
	add := binFunc(t, i32, wasm.OpI32Add)
	sub := binFunc(t, i32, wasm.OpI32Sub)
	mul := binFunc(t, i32, wasm.OpI32Mul)
	f := func(a, b int32) bool {
		r1, _ := add(I32(a), I32(b))
		r2, _ := sub(I32(a), I32(b))
		r3, _ := mul(I32(a), I32(b))
		return AsI32(r1) == a+b && AsI32(r2) == a-b && AsI32(r3) == a*b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: i32 division follows wasm semantics (truncated, trapping).
func TestPropertyI32Division(t *testing.T) {
	div := binFunc(t, i32, wasm.OpI32DivS)
	rem := binFunc(t, i32, wasm.OpI32RemS)
	f := func(a, b int32) bool {
		rd, errD := div(I32(a), I32(b))
		rr, errR := rem(I32(a), I32(b))
		if b == 0 {
			return IsTrap(errD, TrapIntegerDivideByZero) && IsTrap(errR, TrapIntegerDivideByZero)
		}
		if a == math.MinInt32 && b == -1 {
			return IsTrap(errD, TrapIntegerOverflow) && errR == nil && AsI32(rr) == 0
		}
		return errD == nil && AsI32(rd) == a/b && errR == nil && AsI32(rr) == a%b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: shifts and rotates mask the shift count by 31/63.
func TestPropertyShiftsAndRotates(t *testing.T) {
	shl := binFunc(t, i32, wasm.OpI32Shl)
	shrU := binFunc(t, i32, wasm.OpI32ShrU)
	rotl := binFunc(t, i32, wasm.OpI32Rotl)
	f := func(a uint32, s uint32) bool {
		r1, _ := shl(uint64(a), uint64(s))
		r2, _ := shrU(uint64(a), uint64(s))
		r3, _ := rotl(uint64(a), uint64(s))
		return AsU32(r1) == a<<(s&31) &&
			AsU32(r2) == a>>(s&31) &&
			AsU32(r3) == bits.RotateLeft32(a, int(s&31))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: i64 bitwise ops match Go.
func TestPropertyI64Bitwise(t *testing.T) {
	and := binFunc(t, i64t, wasm.OpI64And)
	or := binFunc(t, i64t, wasm.OpI64Or)
	xor := binFunc(t, i64t, wasm.OpI64Xor)
	f := func(a, b uint64) bool {
		r1, _ := and(a, b)
		r2, _ := or(a, b)
		r3, _ := xor(a, b)
		return r1 == a&b && r2 == a|b && r3 == a^b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: comparisons agree with Go for both signednesses.
func TestPropertyComparisons(t *testing.T) {
	ltS := binFunc(t, i32, wasm.OpI32LtS)
	gtU := binFunc(t, i32, wasm.OpI32GtU)
	f := func(a, b int32) bool {
		r1, _ := ltS(I32(a), I32(b))
		r2, _ := gtU(I32(a), I32(b))
		wantLt := uint64(0)
		if a < b {
			wantLt = 1
		}
		wantGt := uint64(0)
		if uint32(a) > uint32(b) {
			wantGt = 1
		}
		return r1 == wantLt && r2 == wantGt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: f64 add is IEEE-754 (matches Go exactly, including NaN bits
// propagating as some NaN).
func TestPropertyF64Arithmetic(t *testing.T) {
	add := binFunc(t, f64t, wasm.OpF64Add)
	f := func(a, b float64) bool {
		r, err := add(F64(a), F64(b))
		if err != nil {
			return false
		}
		want := a + b
		if math.IsNaN(want) {
			return math.IsNaN(AsF64(r))
		}
		return AsF64(r) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: memory store-then-load round-trips any value at any in-bounds
// aligned address.
func TestPropertyMemoryRoundTrip(t *testing.T) {
	b := new(wasm.BodyBuilder)
	b.OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).MemArg(wasm.OpI64Store, 3, 0)
	b.OpU32(wasm.OpLocalGet, 0).MemArg(wasm.OpI64Load, 3, 0)
	b.End()
	m := singleFunc([]wasm.ValueType{i32, i64t}, []wasm.ValueType{i64t}, nil, b)
	m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}}
	inst := instantiate(t, buildModule(t, m))
	f := func(addr uint16, v uint64) bool {
		a := uint32(addr) % (65536 - 8)
		res, err := inst.Call("f", uint64(a), v)
		return err == nil && res[0] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sign-extension operators match Go's conversions.
func TestPropertySignExtension(t *testing.T) {
	ext8 := unaryFunc(t, i32, wasm.OpI32Extend8S)
	ext16 := unaryFunc(t, i32, wasm.OpI32Extend16S)
	f := func(v int32) bool {
		r1, _ := ext8(I32(v))
		r2, _ := ext16(I32(v))
		return AsI32(r1) == int32(int8(v)) && AsI32(r2) == int32(int16(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: clz/ctz/popcnt match math/bits.
func TestPropertyBitCounting(t *testing.T) {
	clz := unaryFunc(t, i32, wasm.OpI32Clz)
	ctz := unaryFunc(t, i32, wasm.OpI32Ctz)
	pop := unaryFunc(t, i32, wasm.OpI32Popcnt)
	f := func(v uint32) bool {
		r1, _ := clz(uint64(v))
		r2, _ := ctz(uint64(v))
		r3, _ := pop(uint64(v))
		return AsU32(r1) == uint32(bits.LeadingZeros32(v)) &&
			AsU32(r2) == uint32(bits.TrailingZeros32(v)) &&
			AsU32(r3) == uint32(bits.OnesCount32(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: trunc_sat never traps and clamps to integer bounds.
func TestPropertyTruncSatTotal(t *testing.T) {
	b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Misc(wasm.MiscI64TruncSatF64S).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{i64t}, nil, b))
	inst := instantiate(t, m)
	f := func(v float64) bool {
		res, err := inst.Call("f", F64(v))
		if err != nil {
			return false
		}
		got := AsI64(res[0])
		switch {
		case math.IsNaN(v):
			return got == 0
		case v <= math.MinInt64:
			return got == math.MinInt64
		case v >= math.MaxInt64:
			return got == math.MaxInt64
		default:
			return got == int64(math.Trunc(v))
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func unaryFunc(t *testing.T, vt wasm.ValueType, op wasm.Opcode) func(Value) (Value, error) {
	t.Helper()
	b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Op(op).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{vt}, []wasm.ValueType{vt}, nil, b))
	inst := instantiate(t, m)
	return func(v Value) (Value, error) {
		res, err := inst.Call("f", v)
		if err != nil {
			return 0, err
		}
		return res[0], nil
	}
}

// Cross-module linking: module B imports a function exported by module A.
func TestCrossModuleLinking(t *testing.T) {
	s := NewStore(Config{})
	// Module A: exports inc(x) = x + 1.
	inc := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).I32Const(1).Op(wasm.OpI32Add).End()
	a := &wasm.Module{
		Types:     []wasm.FuncType{{Params: []wasm.ValueType{i32}, Results: []wasm.ValueType{i32}}},
		Functions: []uint32{0},
		Codes:     []wasm.Code{{Body: inc.Bytes()}},
		Exports:   []wasm.Export{{Name: "inc", Kind: wasm.ExternalFunc, Index: 0}},
	}
	if err := wasm.Validate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Instantiate(a, "lib"); err != nil {
		t.Fatal(err)
	}
	// Module B: imports lib.inc and calls it twice.
	body := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpCall, 0).OpU32(wasm.OpCall, 0).End()
	bMod := &wasm.Module{
		Types:     []wasm.FuncType{{Params: []wasm.ValueType{i32}, Results: []wasm.ValueType{i32}}},
		Imports:   []wasm.Import{{Module: "lib", Name: "inc", Kind: wasm.ExternalFunc, Func: 0}},
		Functions: []uint32{0},
		Codes:     []wasm.Code{{Body: body.Bytes()}},
		Exports:   []wasm.Export{{Name: "inc2", Kind: wasm.ExternalFunc, Index: 1}},
	}
	if err := wasm.Validate(bMod); err != nil {
		t.Fatal(err)
	}
	instB, err := s.Instantiate(bMod, "app")
	if err != nil {
		t.Fatal(err)
	}
	res, err := instB.Call("inc2", I32(40))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 42 {
		t.Fatalf("inc2(40) = %d, want 42", got)
	}
}

// Unknown imports fail instantiation with a helpful error.
func TestUnknownImportError(t *testing.T) {
	s := NewStore(Config{})
	m := &wasm.Module{
		Types:   []wasm.FuncType{{}},
		Imports: []wasm.Import{{Module: "ghost", Name: "fn", Kind: wasm.ExternalFunc, Func: 0}},
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	_, err := s.Instantiate(m, "")
	if err == nil {
		t.Fatal("expected link error")
	}
}

// Element segments out of bounds fail instantiation.
func TestElementSegmentBounds(t *testing.T) {
	s := NewStore(Config{})
	body := new(wasm.BodyBuilder).End()
	m := &wasm.Module{
		Types:     []wasm.FuncType{{}},
		Functions: []uint32{0},
		Tables:    []wasm.TableType{{ElemType: wasm.ValueTypeFuncref, Limits: wasm.Limits{Min: 1}}},
		Elements:  []wasm.ElementSegment{{Offset: wasm.I32Const(5), Indices: []uint32{0}}},
		Codes:     []wasm.Code{{Body: body.Bytes()}},
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Instantiate(m, ""); err == nil {
		t.Fatal("out-of-bounds element segment accepted")
	}
}

// Data segments out of bounds fail instantiation.
func TestDataSegmentBounds(t *testing.T) {
	s := NewStore(Config{})
	m := &wasm.Module{
		Memories: []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}},
		Data:     []wasm.DataSegment{{Offset: wasm.I32Const(wasm.PageSize - 1), Data: []byte("xy")}},
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Instantiate(m, ""); err == nil {
		t.Fatal("out-of-bounds data segment accepted")
	}
}

// isComparisonOp reports whether op produces an i32 boolean.
func isComparisonOp(op wasm.Opcode) bool {
	return (op >= wasm.OpI32Eq && op <= wasm.OpF64Ge) || op == wasm.OpI32Eqz || op == wasm.OpI64Eqz
}

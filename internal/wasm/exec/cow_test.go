package exec

import (
	"bytes"
	"testing"

	"wasmcontainers/internal/wasm"
)

func newCowMemory(minPages uint32) *Memory {
	return NewMemory(wasm.MemoryType{Limits: wasm.Limits{Min: minPages}}, 0)
}

func TestDirtyTrackingMutationPaths(t *testing.T) {
	m := newCowMemory(4)
	m.CaptureBaseline()
	if n := m.DirtyPages(); n != 0 {
		t.Fatalf("dirty after capture = %d, want 0", n)
	}

	// store marks the written page; a store straddling a page boundary marks
	// both pages it touches.
	if !m.store(100, 0, 4, 0xdeadbeef) {
		t.Fatal("store failed")
	}
	if n := m.DirtyPages(); n != 1 {
		t.Fatalf("dirty after store = %d, want 1", n)
	}
	if !m.store(wasm.PageSize-2, 0, 4, 1) { // spans pages 0 and 1
		t.Fatal("spanning store failed")
	}
	if n := m.DirtyPages(); n != 2 {
		t.Fatalf("dirty after spanning store = %d, want 2", n)
	}

	// Write marks every page the slice covers.
	if !m.Write(2*wasm.PageSize-10, make([]byte, 20)) { // pages 1 and 2
		t.Fatal("Write failed")
	}
	if n := m.DirtyPages(); n != 3 {
		t.Fatalf("dirty after Write = %d, want 3", n)
	}

	// WriteUint32/64, WriteString, WritableView mark too.
	m.WriteUint32(3*wasm.PageSize+8, 7)
	if n := m.DirtyPages(); n != 4 {
		t.Fatalf("dirty after WriteUint32 = %d, want 4", n)
	}
	m.ResetToBaseline()
	m.WriteUint64(5, 9)
	m.WriteString(wasm.PageSize+1, "hello")
	if buf, ok := m.WritableView(2*wasm.PageSize, 8); !ok {
		t.Fatal("WritableView failed")
	} else {
		buf[0] = 1
	}
	if n := m.DirtyPages(); n != 3 {
		t.Fatalf("dirty after WriteUint64+WriteString+WritableView = %d, want 3", n)
	}

	// Reads never mark.
	m.ResetToBaseline()
	m.Read(0, 128)
	m.View(0, 128)
	m.ReadUint32(0)
	m.ReadUint64(0)
	m.ReadString(0, 16)
	m.load(0, 0, 8)
	if n := m.DirtyPages(); n != 0 {
		t.Fatalf("dirty after reads = %d, want 0", n)
	}
}

func TestResetToBaselineCopiesOnlyDirtyPages(t *testing.T) {
	m := newCowMemory(8)
	// Pre-baseline content on every page, as data segments would leave it.
	for p := uint32(0); p < 8; p++ {
		m.Write(p*wasm.PageSize, []byte{byte(p + 1)})
	}
	b := m.CaptureBaseline()
	if b.Pages() != 8 || b.Bytes() != 8*wasm.PageSize {
		t.Fatalf("baseline = %d pages / %d bytes", b.Pages(), b.Bytes())
	}

	// Dirty two of eight pages.
	m.store(3*wasm.PageSize+17, 0, 1, 0xff)
	m.WriteUint32(6*wasm.PageSize, 0xffffffff)
	if copied := m.ResetToBaseline(); copied != 2 {
		t.Fatalf("reset copied %d pages, want 2", copied)
	}
	if !bytes.Equal(m.Bytes(), b.data) {
		t.Fatal("memory does not match baseline after reset")
	}
	if n := m.DirtyPages(); n != 0 {
		t.Fatalf("dirty after reset = %d, want 0", n)
	}
	if m.PrivateBytes() != 0 {
		t.Fatalf("private bytes after reset = %d, want 0", m.PrivateBytes())
	}

	// A clean memory resets for free.
	if copied := m.ResetToBaseline(); copied != 0 {
		t.Fatalf("clean reset copied %d pages", copied)
	}
}

func TestGrowThenResetShrinksToBaseline(t *testing.T) {
	m := newCowMemory(1)
	m.CaptureBaseline()

	if prev := m.Grow(3); prev != 1 {
		t.Fatalf("grow returned %d, want 1", prev)
	}
	// Grown pages count as private/dirty: they have no baseline backing.
	if n := m.DirtyPages(); n != 3 {
		t.Fatalf("dirty after grow = %d, want 3", n)
	}
	if m.PrivateBytes() != 3*wasm.PageSize {
		t.Fatalf("private after grow = %d", m.PrivateBytes())
	}
	m.store(2*wasm.PageSize, 0, 8, 42) // write into a grown page

	if copied := m.ResetToBaseline(); copied != 0 {
		t.Fatalf("reset copied %d pages, want 0 (grown pages are dropped, not copied)", copied)
	}
	if m.Pages() != 1 {
		t.Fatalf("pages after reset = %d, want baseline 1", m.Pages())
	}
	if m.DirtyPages() != 0 || m.PrivateBytes() != 0 {
		t.Fatalf("dirty=%d private=%d after reset", m.DirtyPages(), m.PrivateBytes())
	}

	// Re-growing within retained capacity must expose zero pages, not the
	// stale bytes from before the reset.
	if prev := m.Grow(2); prev != 1 {
		t.Fatalf("regrow returned %d", prev)
	}
	if v, _ := m.ReadUint64(2 * wasm.PageSize); v != 0 {
		t.Fatalf("regrown page not zeroed: %#x", v)
	}
}

func TestGrowAmortizedCapacity(t *testing.T) {
	m := newCowMemory(1)
	const target = 64
	allocs := 0
	lastCap := cap(m.data)
	for m.Pages() < target {
		if m.Grow(1) < 0 {
			t.Fatal("grow failed")
		}
		if cap(m.data) != lastCap {
			allocs++
			lastCap = cap(m.data)
		}
	}
	// Doubling from 1 to 64 pages needs ~log2(64) reallocations, not 63.
	if allocs > 8 {
		t.Fatalf("%d reallocations growing to %d pages; capacity headroom not amortizing", allocs, target)
	}
	if m.Grows() != target-1 {
		t.Fatalf("grows = %d", m.Grows())
	}
}

func TestGrowRespectsMaxWithHeadroom(t *testing.T) {
	m := NewMemory(wasm.MemoryType{Limits: wasm.Limits{Min: 1, HasMax: true, Max: 3}}, 0)
	if m.Grow(1) != 1 || m.Grow(1) != 2 {
		t.Fatal("grow within max failed")
	}
	if cap(m.data) > 3*wasm.PageSize {
		t.Fatalf("capacity %d exceeds max memory size", cap(m.data))
	}
	if m.Grow(1) != -1 {
		t.Fatal("grow past max succeeded")
	}
}

func TestAttachBaselineSharesOneImage(t *testing.T) {
	a := newCowMemory(2)
	a.Write(10, []byte("baseline"))
	img := a.CaptureBaseline()

	b := newCowMemory(2)
	b.Write(10, []byte("baseline")) // deterministic instantiation stand-in
	if !b.AttachBaseline(img) {
		t.Fatal("attach failed")
	}
	if a.Baseline() != b.Baseline() {
		t.Fatal("instances do not share one baseline image")
	}

	// Dirtying a never leaks into b, and both reset against the same image.
	a.Write(10, []byte("DIRTYDIR"))
	if s, _ := b.ReadString(10, 8); s != "baseline" {
		t.Fatalf("b observed a's dirty page: %q", s)
	}
	a.ResetToBaseline()
	if s, _ := a.ReadString(10, 8); s != "baseline" {
		t.Fatalf("a after reset: %q", s)
	}

	// Size mismatch refuses the attach.
	c := newCowMemory(3)
	if c.AttachBaseline(img) {
		t.Fatal("attach accepted a size-mismatched image")
	}
}

func TestRestoreMarksAllDirty(t *testing.T) {
	m := newCowMemory(2)
	snap := append([]byte(nil), m.Bytes()...)
	m.CaptureBaseline()
	m.Restore(snap)
	// Restore's relation to the baseline is unknown: conservatively every
	// page is dirty, so a later CoW reset rewrites them all.
	if n := m.DirtyPages(); n != 2 {
		t.Fatalf("dirty after Restore = %d, want 2", n)
	}
}

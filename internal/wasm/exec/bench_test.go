package exec

import (
	"testing"

	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wat"
)

// Benchmark workloads for the interpreter hot loop. Each module is small and
// self-contained so the benchmarks measure dispatch, frame setup, and memory
// access rather than module loading.

// benchFibWAT is the classic recursive fib: call-heavy, exercises frame
// setup/teardown and the OpCall result path.
const benchFibWAT = `
(module
  (func $fib (export "fib") (param $n i32) (result i32)
    local.get $n
    i32.const 2
    i32.lt_s
    if (result i32)
      local.get $n
    else
      local.get $n
      i32.const 1
      i32.sub
      call $fib
      local.get $n
      i32.const 2
      i32.sub
      call $fib
      i32.add
    end))
`

// benchLoopWAT is a tight arithmetic loop: exercises branch dispatch, local
// access, and the const+add / cmp+br_if superinstruction patterns.
const benchLoopWAT = `
(module
  (func (export "spin") (param $n i32) (result i32) (local $i i32) (local $acc i32)
    block $done
      loop $l
        local.get $i
        local.get $n
        i32.ge_u
        br_if $done
        local.get $acc
        local.get $i
        i32.add
        local.set $acc
        local.get $i
        i32.const 1
        i32.add
        local.set $i
        br $l
      end
    end
    local.get $acc))
`

// benchMemWAT churns linear memory with load/store pairs across a 4 KiB
// window: exercises the bounds-checked memory fast path.
const benchMemWAT = `
(module
  (memory 1)
  (func (export "churn") (param $n i32) (result i32) (local $i i32) (local $acc i32)
    block $done
      loop $l
        local.get $i
        local.get $n
        i32.ge_u
        br_if $done
        ;; mem[(i*4) & 0xfff] = i
        local.get $i
        i32.const 4
        i32.mul
        i32.const 4095
        i32.and
        local.get $i
        i32.store
        ;; acc += mem[(i*4) & 0xfff]
        local.get $i
        i32.const 4
        i32.mul
        i32.const 4095
        i32.and
        i32.load
        local.get $acc
        i32.add
        local.set $acc
        local.get $i
        i32.const 1
        i32.add
        local.set $i
        br $l
      end
    end
    local.get $acc))
`

// benchIndirectWAT dispatches through a function table: exercises the
// call_indirect type check and table lookup.
const benchIndirectWAT = `
(module
  (type $op (func (param i32) (result i32)))
  (table 2 funcref)
  (elem (i32.const 0) $inc $dbl)
  (func $inc (type $op) local.get 0 i32.const 1 i32.add)
  (func $dbl (type $op) local.get 0 i32.const 2 i32.mul)
  (func (export "dispatch") (param $n i32) (result i32) (local $i i32) (local $acc i32)
    block $done
      loop $l
        local.get $i
        local.get $n
        i32.ge_u
        br_if $done
        local.get $acc
        local.get $i
        i32.const 1
        i32.and
        call_indirect (type $op)
        local.set $acc
        local.get $i
        i32.const 1
        i32.add
        local.set $i
        br $l
      end
    end
    local.get $acc))
`

func benchInstance(b *testing.B, src string) *Instance {
	b.Helper()
	m, err := wat.Compile(src)
	if err != nil {
		b.Fatalf("wat: %v", err)
	}
	s := NewStore(Config{})
	inst, err := s.Instantiate(m, "")
	if err != nil {
		b.Fatalf("instantiate: %v", err)
	}
	return inst
}

func BenchmarkInterpFib(b *testing.B) {
	inst := benchInstance(b, benchFibWAT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Call("fib", 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpLoop(b *testing.B) {
	inst := benchInstance(b, benchLoopWAT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Call("spin", 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpLoopFueled(b *testing.B) {
	m, err := wat.Compile(benchLoopWAT)
	if err != nil {
		b.Fatalf("wat: %v", err)
	}
	s := NewStore(Config{Fuel: 1 << 62})
	inst, err := s.Instantiate(m, "")
	if err != nil {
		b.Fatalf("instantiate: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Call("spin", 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpMemoryChurn(b *testing.B) {
	inst := benchInstance(b, benchMemWAT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Call("churn", 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpCallIndirect(b *testing.B) {
	inst := benchInstance(b, benchIndirectWAT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Call("dispatch", 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoryGrowIncremental grows a memory one page at a time to 256
// pages per iteration: with capacity-headroom (amortized doubling)
// reallocation this is O(n) total copying, where the old
// reallocate-per-grow scheme was O(n²).
func BenchmarkMemoryGrowIncremental(b *testing.B) {
	t := wasm.MemoryType{Limits: wasm.Limits{Min: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMemory(t, 0)
		for m.Pages() < 256 {
			if m.Grow(1) < 0 {
				b.Fatal("grow failed")
			}
		}
	}
}

// --- tier micro-benchmarks --------------------------------------------------
//
// BenchmarkInvokeTier0/Tier1 pairs measure the same workload with the module
// pinned to one tier, so the ratio is the direct-threading speedup the
// tier-up policy buys once a function is hot.

func benchTierInstance(b *testing.B, src string, tier1 bool) *Instance {
	b.Helper()
	inst := benchInstance(b, src)
	if tier1 {
		tc, _ := inst.Code().EnsureTier1()
		if tc.Lowered() != tc.NumFuncs() {
			b.Fatalf("lowered %d of %d functions", tc.Lowered(), tc.NumFuncs())
		}
	}
	return inst
}

func benchTierCall(b *testing.B, src, name string, arg Value, tier1 bool) {
	inst := benchTierInstance(b, src, tier1)
	s := inst.Store()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Call(name, arg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	want := 0
	if tier1 {
		want = 1
	}
	if s.LastInvokeTier() != want {
		b.Fatalf("served at tier %d, want %d", s.LastInvokeTier(), want)
	}
}

func BenchmarkInvokeTier0Fib(b *testing.B) { benchTierCall(b, benchFibWAT, "fib", I32(20), false) }
func BenchmarkInvokeTier1Fib(b *testing.B) { benchTierCall(b, benchFibWAT, "fib", I32(20), true) }
func BenchmarkInvokeTier0Loop(b *testing.B) {
	benchTierCall(b, benchLoopWAT, "spin", I32(100000), false)
}
func BenchmarkInvokeTier1Loop(b *testing.B) {
	benchTierCall(b, benchLoopWAT, "spin", I32(100000), true)
}
func BenchmarkInvokeTier0Churn(b *testing.B) {
	benchTierCall(b, benchMemWAT, "churn", I32(100000), false)
}
func BenchmarkInvokeTier1Churn(b *testing.B) {
	benchTierCall(b, benchMemWAT, "churn", I32(100000), true)
}

func BenchmarkInvokeTier0Indirect(b *testing.B) {
	benchTierCall(b, benchIndirectWAT, "dispatch", I32(100000), false)
}
func BenchmarkInvokeTier1Indirect(b *testing.B) {
	benchTierCall(b, benchIndirectWAT, "dispatch", I32(100000), true)
}

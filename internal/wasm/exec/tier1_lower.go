package exec

import (
	"wasmcontainers/internal/wasm"
)

// Accounting estimates for the tier-1 artifact: one closure plus its ops-
// table entry per surviving instruction, and a fixed per-function header.
const (
	t1OpBytes   = 56
	t1FuncBytes = 96
)

// lowerTier1 lowers every function body of mc to tier 1. Functions whose
// operand-stack heights cannot be statically inferred (only possible in
// unreachable code corners) keep a nil slot and stay at tier 0 forever.
func lowerTier1(mc *ModuleCode) *Tier1Code {
	tc := &Tier1Code{funcs: make([]*t1func, len(mc.codes))}
	nImported := 0
	for _, imp := range mc.m.Imports {
		if imp.Kind == wasm.ExternalFunc {
			nImported++
		}
	}
	for i, cc := range mc.codes {
		ft := mc.m.Types[mc.m.Functions[i]]
		np := len(ft.Params)
		nl := np + len(mc.m.Codes[i].Locals)
		f := lowerFunc(mc.m, cc, np, nl, len(ft.Results), tc.funcs, nImported)
		tc.funcs[i] = f
		if f != nil {
			tc.lowered++
			tc.bytes += int64(len(f.ops))*t1OpBytes + t1FuncBytes
		}
	}
	tc.bytes += 64
	return tc
}

// inferHeights computes the operand-stack height at entry to every reachable
// instruction of a fused body by dataflow from pc 0. Wasm validation makes
// the height at each pc path-independent, so a single forward pass suffices;
// any inconsistency (or an out-of-range height) aborts the lowering and the
// function stays at tier 0. Unreachable pcs are left at -1.
func inferHeights(m *wasm.Module, cc *compiledCode) []int {
	n := len(cc.instrs)
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	maxH := cc.maxHeight
	work := make([]int, 0, 64)
	ok := true
	visit := func(pc, ht int) {
		if pc < 0 || pc >= n || ht < 0 || ht > maxH {
			ok = false
			return
		}
		if h[pc] == -1 {
			h[pc] = ht
			work = append(work, pc)
			return
		}
		if h[pc] != ht {
			ok = false
		}
	}
	visit(0, 0)
	for len(work) > 0 && ok {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		ht := h[pc]
		in := &cc.instrs[pc]
		switch in.op {
		case wasm.OpUnreachable, wasm.OpReturn:
			// Terminal.
		case wasm.OpBlock, wasm.OpLoop, wasm.OpEnd:
			visit(pc+1, ht)
		case wasm.OpIf:
			visit(pc+1, ht-1)
			visit(int(in.a), ht-1)
		case wasm.OpElse:
			visit(int(in.a), ht)
		case wasm.OpBr:
			d, _ := unpackDropKeep(in.b)
			visit(int(in.a), ht-d)
		case wasm.OpBrIf:
			d, _ := unpackDropKeep(in.b)
			visit(pc+1, ht-1)
			visit(int(in.a), ht-1-d)
		case opCmpBrIf:
			d, _ := unpackDropKeep(in.b)
			visit(pc+1, ht-2)
			visit(int(in.a), ht-2-d)
		case wasm.OpBrTable:
			for _, ent := range cc.brTables[in.misc] {
				d, _ := unpackDropKeep(ent.dropKeep)
				visit(int(ent.pc), ht-1-d)
			}
		case wasm.OpCall:
			ft, err := m.FuncTypeAt(uint32(in.a))
			if err != nil {
				ok = false
				break
			}
			visit(pc+1, ht-len(ft.Params)+len(ft.Results))
		case wasm.OpCallIndirect:
			ft := m.Types[in.a]
			visit(pc+1, ht-1-len(ft.Params)+len(ft.Results))
		case wasm.OpDrop, wasm.OpLocalSet, wasm.OpGlobalSet:
			visit(pc+1, ht-1)
		case wasm.OpSelect:
			visit(pc+1, ht-2)
		case wasm.OpLocalGet, wasm.OpGlobalGet, wasm.OpMemorySize,
			wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			visit(pc+1, ht+1)
		case wasm.OpLocalTee, wasm.OpMemoryGrow, opI32AddConst, opI64AddConst:
			visit(pc+1, ht)
		case opLocalGetPair:
			visit(pc+1, ht+2)
		case opLocalBinop:
			visit(pc+1, ht+1)
		case wasm.OpMisc:
			if in.misc == wasm.MiscMemoryCopy || in.misc == wasm.MiscMemoryFill {
				visit(pc+1, ht-3)
			} else {
				visit(pc+1, ht)
			}
		default:
			nin, nout, _, _ := fixedShape(in.op)
			visit(pc+1, ht-nin+nout)
		}
	}
	if !ok {
		return nil
	}
	return h
}

// t1Erased reports ops with no tier-1 runtime effect: structure markers and
// drops (a drop is a pure height change, and heights are static). Their
// instruction counts are folded into the surviving neighbors.
func t1Erased(op wasm.Opcode) bool {
	switch op {
	case wasm.OpBlock, wasm.OpLoop, wasm.OpEnd, wasm.OpDrop:
		return true
	}
	return false
}

// t1builder carries the per-function lowering state shared by the closure
// builders.
type t1builder struct {
	m       *wasm.Module
	cc      *compiledCode
	heights []int
	skip    []int    // skip[pc]: next surviving pc at or after pc
	skipCnt []uint64 // erased instructions in [pc, skip[pc])
	idxOf   []int    // surviving pc -> dense tier-1 index (-1 for erased)
	nl      int
	bad     bool

	// tcFuncs is the artifact's (still being filled) function table and
	// nImported the module's imported-function count: a call to a local
	// function resolves its tier-1 body through this shared slice directly,
	// skipping the per-call atomic artifact lookup. Imports still resolve
	// dynamically (their body lives in another module's artifact).
	tcFuncs   []*t1func
	nImported int
}

func (b *t1builder) fail() { b.bad = true }

// tgt maps a tier-0 branch target (possibly an erased marker) to the tier-1
// index of the first surviving instruction at or after it.
func (b *t1builder) tgt(pc int) int {
	sp := b.skip[pc]
	if sp >= len(b.idxOf) {
		b.fail()
		return 0
	}
	return b.idxOf[sp]
}

// fall returns the fall-through successor index and the credit (erased
// instructions crossed) for the instruction at pc.
func (b *t1builder) fall(pc int) (next int, credit uint64) {
	return b.tgt(pc + 1), b.skipCnt[pc+1]
}

// slot returns the register slot k values below the top of the operand
// stack at entry height ht (k=1 is the top), failing on underflow.
func (b *t1builder) slot(ht, k int) int {
	if ht-k < 0 {
		b.fail()
		return 0
	}
	return b.nl + ht - k
}

// branch movement: where a taken branch's kept values move. drop==0 yields
// dst==src and the closures skip the copy.
func (b *t1builder) moveFor(htAfterPops int, dropKeep uint64) (dst, src, keep int) {
	drop, keep := unpackDropKeep(dropKeep)
	src = b.nl + htAfterPops - keep
	dst = src - drop
	if dst < b.nl || src < b.nl {
		b.fail()
	}
	return dst, src, keep
}

// lowerFunc lowers one fused body to a tier-1 closure table, or nil when the
// body resists static lowering.
func lowerFunc(m *wasm.Module, cc *compiledCode, np, nl, nr int, tcFuncs []*t1func, nImported int) *t1func {
	heights := inferHeights(m, cc)
	if heights == nil {
		return nil
	}
	instrs := cc.instrs
	n := len(instrs)
	skip := make([]int, n+1)
	skipCnt := make([]uint64, n+1)
	skip[n] = n
	for pc := n - 1; pc >= 0; pc-- {
		if t1Erased(instrs[pc].op) {
			skip[pc] = skip[pc+1]
			skipCnt[pc] = skipCnt[pc+1] + 1
		} else {
			skip[pc] = pc
		}
	}
	idxOf := make([]int, n)
	k := 0
	for pc := 0; pc < n; pc++ {
		if t1Erased(instrs[pc].op) {
			idxOf[pc] = -1
		} else {
			idxOf[pc] = k
			k++
		}
	}
	b := &t1builder{
		m: m, cc: cc, heights: heights,
		skip: skip, skipCnt: skipCnt, idxOf: idxOf, nl: nl,
		tcFuncs: tcFuncs, nImported: nImported,
	}
	ops := make([]t1op, 0, k)
	for pc := 0; pc < n; pc++ {
		if idxOf[pc] < 0 {
			continue
		}
		ops = append(ops, b.build(pc))
		if b.bad {
			return nil
		}
	}
	return &t1func{
		ops:   ops,
		np:    np,
		nl:    nl,
		nr:    nr,
		slots: nl + cc.maxHeight,
		lead:  skipCnt[0],
	}
}

// build lowers the surviving instruction at pc to its closure.
func (b *t1builder) build(pc int) t1op {
	in := &b.cc.instrs[pc]
	ht := b.heights[pc]
	if ht < 0 {
		// Statically unreachable: dataflow covers every executable path, so
		// this closure can never run. A loud failure beats silent corruption
		// if that invariant is ever broken.
		return func(fr *t1frame) int {
			panic("exec: tier-1 executed statically unreachable code")
		}
	}
	if op := b.tryFuse(pc); op != nil {
		return op
	}
	switch in.op {
	case wasm.OpUnreachable:
		return func(fr *t1frame) int {
			fr.executed++
			fr.err = newTrap(TrapUnreachable)
			return t1Trapped
		}
	case wasm.OpIf:
		c := b.slot(ht, 1)
		nT, crT := b.fall(pc)
		nF := b.tgt(int(in.a))
		cT := 1 + crT
		cF := 1 + b.skipCnt[in.a]
		return func(fr *t1frame) int {
			if fr.regs[c] != 0 {
				fr.executed += cT
				return nT
			}
			fr.executed += cF
			return nF
		}
	case wasm.OpElse:
		t := b.tgt(int(in.a))
		cnt := 1 + b.skipCnt[in.a]
		return func(fr *t1frame) int {
			fr.executed += cnt
			return t
		}
	case wasm.OpBr:
		t := b.tgt(int(in.a))
		cred := b.skipCnt[in.a]
		dst, src, keep := b.moveFor(ht, in.b)
		return func(fr *t1frame) int {
			fr.executed++
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if keep > 0 && dst != src {
				copy(fr.regs[dst:dst+keep], fr.regs[src:src+keep])
			}
			fr.executed += cred
			return t
		}
	case wasm.OpBrIf:
		c := b.slot(ht, 1)
		t := b.tgt(int(in.a))
		crT := b.skipCnt[in.a]
		next, crF := b.fall(pc)
		dst, src, keep := b.moveFor(ht-1, in.b)
		return func(fr *t1frame) int {
			fr.executed++
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if fr.regs[c] != 0 {
				if keep > 0 && dst != src {
					copy(fr.regs[dst:dst+keep], fr.regs[src:src+keep])
				}
				fr.executed += crT
				return t
			}
			fr.executed += crF
			return next
		}
	case opCmpBrIf:
		return b.buildCmpBrIf(pc, in, ht, b.slot(ht, 2), b.slot(ht, 1), 2)
	case wasm.OpBrTable:
		c := b.slot(ht, 1)
		src := b.cc.brTables[in.misc]
		tbl := make([]t1tblEnt, len(src))
		for i, ent := range src {
			dst, s0, keep := b.moveFor(ht-1, ent.dropKeep)
			tbl[i] = t1tblEnt{
				tgt: b.tgt(int(ent.pc)), cred: b.skipCnt[ent.pc],
				dst: dst, src: s0, keep: keep,
			}
		}
		return func(fr *t1frame) int {
			fr.executed++
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			i := AsU32(fr.regs[c])
			e := &tbl[len(tbl)-1]
			if int(i) < len(tbl)-1 {
				e = &tbl[i]
			}
			if e.keep > 0 && e.dst != e.src {
				copy(fr.regs[e.dst:e.dst+e.keep], fr.regs[e.src:e.src+e.keep])
			}
			fr.executed += e.cred
			return e.tgt
		}
	case wasm.OpReturn:
		_, keep := unpackDropKeep(in.b)
		rs := b.slot(ht, keep)
		if keep == 0 {
			return func(fr *t1frame) int {
				fr.executed++
				return t1Return
			}
		}
		if keep == 1 {
			return func(fr *t1frame) int {
				fr.executed++
				fr.regs[0] = fr.regs[rs]
				return t1Return
			}
		}
		return func(fr *t1frame) int {
			fr.executed++
			copy(fr.regs[:keep], fr.regs[rs:rs+keep])
			return t1Return
		}
	case wasm.OpCall:
		fi := uint32(in.a)
		ft, err := b.m.FuncTypeAt(fi)
		if err != nil {
			b.fail()
			return nil
		}
		aslot := b.slot(ht, len(ft.Params))
		next, crF := b.fall(pc)
		if lk := int(fi) - b.nImported; lk >= 0 {
			tcFuncs := b.tcFuncs
			return func(fr *t1frame) int {
				fr.executed++
				if !fr.chargeFuel() {
					fr.err = newTrap(TrapOutOfFuel)
					return t1Trapped
				}
				callee := fr.inst.funcs[fi]
				var err error
				if t1 := tcFuncs[lk]; t1 != nil {
					var done bool
					if done, err = fr.s.t1FastCall(fr, callee, t1, aslot); !done {
						err = fr.inst.invokeNested(callee,
							fr.regs[aslot:aslot+callee.numParams],
							fr.regs[aslot:aslot+len(callee.typ.Results)])
					}
				} else {
					err = fr.callFunc(callee, aslot)
				}
				if err != nil {
					fr.err = err
					return t1Trapped
				}
				fr.executed += crF
				return next
			}
		}
		return func(fr *t1frame) int {
			fr.executed++
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if err := fr.callFunc(fr.inst.funcs[fi], aslot); err != nil {
				fr.err = err
				return t1Trapped
			}
			fr.executed += crF
			return next
		}
	case wasm.OpCallIndirect:
		ti := uint32(in.a)
		ft := b.m.Types[ti]
		c := b.slot(ht, 1)
		aslot := b.slot(ht, 1+len(ft.Params))
		next, crF := b.fall(pc)
		return func(fr *t1frame) int {
			fr.executed++
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			inst := fr.inst
			ei := AsU32(fr.regs[c])
			if inst.table == nil || int(ei) >= inst.table.Len() {
				fr.err = newTrap(TrapTableOutOfBounds)
				return t1Trapped
			}
			callee := inst.table.elems[ei]
			if callee == nil {
				fr.err = newTrap(TrapUninitializedElement)
				return t1Trapped
			}
			if !callee.typ.Equal(inst.Module.Types[ti]) {
				fr.err = newTrap(TrapIndirectCallTypeMismatch)
				return t1Trapped
			}
			if err := fr.callFunc(callee, aslot); err != nil {
				fr.err = err
				return t1Trapped
			}
			fr.executed += crF
			return next
		}
	case wasm.OpSelect:
		c := b.slot(ht, 1)
		v2 := b.slot(ht, 2)
		v1 := b.slot(ht, 3)
		next, crF := b.fall(pc)
		cnt := 1 + crF
		return func(fr *t1frame) int {
			if fr.regs[c] == 0 {
				fr.regs[v1] = fr.regs[v2]
			}
			fr.executed += cnt
			return next
		}
	case wasm.OpLocalGet:
		i := int(in.a)
		d := b.nl + ht
		next, crF := b.fall(pc)
		cnt := 1 + crF
		return func(fr *t1frame) int {
			fr.regs[d] = fr.regs[i]
			fr.executed += cnt
			return next
		}
	case wasm.OpLocalSet:
		i := int(in.a)
		c := b.slot(ht, 1)
		next, crF := b.fall(pc)
		cnt := 1 + crF
		return func(fr *t1frame) int {
			fr.regs[i] = fr.regs[c]
			fr.executed += cnt
			return next
		}
	case wasm.OpLocalTee:
		i := int(in.a)
		c := b.slot(ht, 1)
		next, crF := b.fall(pc)
		cnt := 1 + crF
		return func(fr *t1frame) int {
			fr.regs[i] = fr.regs[c]
			fr.executed += cnt
			return next
		}
	case wasm.OpGlobalGet:
		gi := int(in.a)
		d := b.nl + ht
		next, crF := b.fall(pc)
		cnt := 1 + crF
		return func(fr *t1frame) int {
			fr.regs[d] = fr.inst.globals[gi].Val
			fr.executed += cnt
			return next
		}
	case wasm.OpGlobalSet:
		gi := int(in.a)
		c := b.slot(ht, 1)
		next, crF := b.fall(pc)
		cnt := 1 + crF
		return func(fr *t1frame) int {
			fr.inst.globals[gi].Val = fr.regs[c]
			fr.executed += cnt
			return next
		}
	case wasm.OpMemorySize:
		d := b.nl + ht
		next, crF := b.fall(pc)
		cnt := 1 + crF
		return func(fr *t1frame) int {
			fr.regs[d] = I32(int32(fr.mem.Pages()))
			fr.executed += cnt
			return next
		}
	case wasm.OpMemoryGrow:
		c := b.slot(ht, 1)
		next, crF := b.fall(pc)
		cnt := 1 + crF
		return func(fr *t1frame) int {
			fr.regs[c] = I32(fr.mem.Grow(AsU32(fr.regs[c])))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		v := in.a
		d := b.nl + ht
		next, crF := b.fall(pc)
		cnt := 1 + crF
		return func(fr *t1frame) int {
			fr.regs[d] = v
			fr.executed += cnt
			return next
		}
	case opI32AddConst:
		k := int32(uint32(in.a))
		c := b.slot(ht, 1)
		next, crF := b.fall(pc)
		cnt := 2 + crF // two fused originals
		return func(fr *t1frame) int {
			fr.regs[c] = I32(AsI32(fr.regs[c]) + k)
			fr.executed += cnt
			return next
		}
	case opI64AddConst:
		k := in.a
		c := b.slot(ht, 1)
		next, crF := b.fall(pc)
		cnt := 2 + crF
		return func(fr *t1frame) int {
			fr.regs[c] += k
			fr.executed += cnt
			return next
		}
	case opLocalGetPair:
		i := int(in.a >> 32)
		j := int(uint32(in.a))
		d := b.nl + ht
		next, crF := b.fall(pc)
		cnt := 2 + crF
		return func(fr *t1frame) int {
			fr.regs[d] = fr.regs[i]
			fr.regs[d+1] = fr.regs[j]
			fr.executed += cnt
			return next
		}
	case opLocalBinop:
		i := int(in.a >> 32)
		j := int(uint32(in.a))
		next, crF := b.fall(pc)
		return b.buildBinopSlots(wasm.Opcode(in.misc), i, j, b.nl+ht, 3, crF, next)
	case wasm.OpMisc:
		return b.buildMisc(pc, in, ht)
	default:
		nin, _, width, isMem := fixedShape(in.op)
		if isMem {
			if width > 0 && nin == 1 {
				return b.buildLoad(in, ht, pc)
			}
			return b.buildStore(in, b.slot(ht, 1), b.slot(ht, 2), 1, pc)
		}
		if nin == 1 {
			return b.buildUnary(in.op, ht, pc)
		}
		x := b.slot(ht, 2)
		// [binop][return] with one result: park it in the result slot and
		// leave the frame in the same closure.
		if q := b.adj(pc); q >= 0 && b.cc.instrs[q].op == wasm.OpReturn {
			if _, keep := unpackDropKeep(b.cc.instrs[q].b); keep == 1 {
				return b.buildBinopSlots(in.op, x, x+1, 0, 1, b.skipCnt[pc+1]+1, t1Return)
			}
		}
		next, crF := b.fall(pc)
		return b.buildBinopSlots(in.op, x, x+1, x, 1, crF, next)
	}
}

// t1tblEnt is one resolved br_table entry in tier-1 form.
type t1tblEnt struct {
	tgt            int
	cred           uint64
	dst, src, keep int
}

package exec

import (
	"math"
	"strings"
	"testing"

	"wasmcontainers/internal/wasm"
)

// buildModule assembles, validates, and returns a module; it fails the test
// on any error.
func buildModule(t testing.TB, m *wasm.Module) *wasm.Module {
	t.Helper()
	// Round-trip through the binary format so decode/encode are exercised by
	// every interpreter test.
	bin := wasm.Encode(m)
	decoded, err := wasm.Decode(bin)
	if err != nil {
		t.Fatalf("Decode(Encode(m)): %v", err)
	}
	if err := wasm.Validate(decoded); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return decoded
}

func instantiate(t testing.TB, m *wasm.Module) *Instance {
	t.Helper()
	s := NewStore(Config{})
	inst, err := s.Instantiate(m, "test")
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	return inst
}

// i32 (p...)->(r) module with a single function exported as "f".
func singleFunc(params, results []wasm.ValueType, locals []wasm.ValueType, body *wasm.BodyBuilder) *wasm.Module {
	return &wasm.Module{
		Types:     []wasm.FuncType{{Params: params, Results: results}},
		Functions: []uint32{0},
		Codes:     []wasm.Code{{Locals: locals, Body: body.Bytes()}},
		Exports:   []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 0}},
	}
}

var i32 = wasm.ValueTypeI32
var i64t = wasm.ValueTypeI64
var f32t = wasm.ValueTypeF32
var f64t = wasm.ValueTypeF64

func TestI32Arithmetic(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).
		OpU32(wasm.OpLocalGet, 1).
		Op(wasm.OpI32Add).
		End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i32, i32}, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	res, err := inst.Call("f", I32(2), I32(40))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 42 {
		t.Fatalf("2+40 = %d, want 42", got)
	}
	// Wrapping behaviour.
	res, _ = inst.Call("f", I32(math.MaxInt32), I32(1))
	if got := AsI32(res[0]); got != math.MinInt32 {
		t.Fatalf("overflow add = %d, want MinInt32", got)
	}
}

func TestFactorialLoop(t *testing.T) {
	// local0 = n (param), local1 = acc
	// acc = 1; loop { if n <= 1 break; acc *= n; n -= 1; continue }
	b := new(wasm.BodyBuilder)
	b.I32Const(1).OpU32(wasm.OpLocalSet, 1)
	b.Block(wasm.OpBlock, wasm.BlockTypeEmpty)
	b.Block(wasm.OpLoop, wasm.BlockTypeEmpty)
	b.OpU32(wasm.OpLocalGet, 0).I32Const(1).Op(wasm.OpI32LeS).OpU32(wasm.OpBrIf, 1)
	b.OpU32(wasm.OpLocalGet, 1).OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI32Mul).OpU32(wasm.OpLocalSet, 1)
	b.OpU32(wasm.OpLocalGet, 0).I32Const(1).Op(wasm.OpI32Sub).OpU32(wasm.OpLocalSet, 0)
	b.OpU32(wasm.OpBr, 0)
	b.End() // loop
	b.End() // block
	b.OpU32(wasm.OpLocalGet, 1)
	b.End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, []wasm.ValueType{i32}, b))
	inst := instantiate(t, m)
	cases := map[int32]int32{0: 1, 1: 1, 5: 120, 10: 3628800}
	for n, want := range cases {
		res, err := inst.Call("f", I32(n))
		if err != nil {
			t.Fatalf("fact(%d): %v", n, err)
		}
		if got := AsI32(res[0]); got != want {
			t.Fatalf("fact(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRecursiveFib(t *testing.T) {
	// fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
	b := new(wasm.BodyBuilder)
	b.OpU32(wasm.OpLocalGet, 0).I32Const(2).Op(wasm.OpI32LtS)
	b.Block(wasm.OpIf, wasm.BlockTypeEmpty)
	b.OpU32(wasm.OpLocalGet, 0).Op(wasm.OpReturn)
	b.End()
	b.OpU32(wasm.OpLocalGet, 0).I32Const(1).Op(wasm.OpI32Sub).OpU32(wasm.OpCall, 0)
	b.OpU32(wasm.OpLocalGet, 0).I32Const(2).Op(wasm.OpI32Sub).OpU32(wasm.OpCall, 0)
	b.Op(wasm.OpI32Add)
	b.End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	res, err := inst.Call("f", I32(15))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	// store (addr, val); load back with offset immediate.
	b := new(wasm.BodyBuilder)
	b.OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).MemArg(wasm.OpI32Store, 2, 0)
	b.OpU32(wasm.OpLocalGet, 0).MemArg(wasm.OpI32Load, 2, 0)
	b.End()
	m := singleFunc([]wasm.ValueType{i32, i32}, []wasm.ValueType{i32}, nil, b)
	m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}}
	inst := instantiate(t, buildModule(t, m))
	res, err := inst.Call("f", I32(128), I32(0x1234abcd))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsU32(res[0]); got != 0x1234abcd {
		t.Fatalf("load = %#x, want 0x1234abcd", got)
	}
	// Out-of-bounds store must trap.
	_, err = inst.Call("f", I32(65533), I32(1))
	if !IsTrap(err, TrapMemoryOutOfBounds) {
		t.Fatalf("expected OOB trap, got %v", err)
	}
}

func TestDivTraps(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).
		OpU32(wasm.OpLocalGet, 1).
		Op(wasm.OpI32DivS).
		End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i32, i32}, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	if _, err := inst.Call("f", I32(1), I32(0)); !IsTrap(err, TrapIntegerDivideByZero) {
		t.Fatalf("div by zero: got %v", err)
	}
	if _, err := inst.Call("f", I32(math.MinInt32), I32(-1)); !IsTrap(err, TrapIntegerOverflow) {
		t.Fatalf("MinInt32 / -1: got %v", err)
	}
	res, err := inst.Call("f", I32(-7), I32(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != -3 {
		t.Fatalf("-7/2 = %d, want -3 (truncated)", got)
	}
}

func TestBrTable(t *testing.T) {
	// switch(n): case 0 -> 100, case 1 -> 200, default -> 999
	b := new(wasm.BodyBuilder)
	b.Block(wasm.OpBlock, wasm.BlockTypeEmpty) // depth 2 -> default
	b.Block(wasm.OpBlock, wasm.BlockTypeEmpty) // depth 1 -> case 1
	b.Block(wasm.OpBlock, wasm.BlockTypeEmpty) // depth 0 -> case 0
	b.OpU32(wasm.OpLocalGet, 0)
	b.BrTable([]uint32{0, 1}, 2)
	b.End()
	b.I32Const(100).Op(wasm.OpReturn)
	b.End()
	b.I32Const(200).Op(wasm.OpReturn)
	b.End()
	b.I32Const(999)
	b.End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	cases := map[int32]int32{0: 100, 1: 200, 2: 999, 50: 999}
	for n, want := range cases {
		res, err := inst.Call("f", I32(n))
		if err != nil {
			t.Fatalf("case %d: %v", n, err)
		}
		if got := AsI32(res[0]); got != want {
			t.Fatalf("case %d = %d, want %d", n, got, want)
		}
	}
}

func TestCallIndirect(t *testing.T) {
	// Table with [add, mul]; f(sel, a, b) = table[sel](a, b)
	add := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(wasm.OpI32Add).End()
	mul := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(wasm.OpI32Mul).End()
	main := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 1).OpU32(wasm.OpLocalGet, 2).OpU32(wasm.OpLocalGet, 0).
		CallIndirect(0).End()
	m := &wasm.Module{
		Types: []wasm.FuncType{
			{Params: []wasm.ValueType{i32, i32}, Results: []wasm.ValueType{i32}},
			{Params: []wasm.ValueType{i32, i32, i32}, Results: []wasm.ValueType{i32}},
		},
		Functions: []uint32{0, 0, 1},
		Tables:    []wasm.TableType{{ElemType: wasm.ValueTypeFuncref, Limits: wasm.Limits{Min: 4}}},
		Elements: []wasm.ElementSegment{
			{TableIndex: 0, Offset: wasm.I32Const(0), Indices: []uint32{0, 1}},
		},
		Codes: []wasm.Code{
			{Body: add.Bytes()},
			{Body: mul.Bytes()},
			{Body: main.Bytes()},
		},
		Exports: []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 2}},
	}
	inst := instantiate(t, buildModule(t, m))
	res, err := inst.Call("f", I32(0), I32(6), I32(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 13 {
		t.Fatalf("table[0](6,7) = %d, want 13", got)
	}
	res, err = inst.Call("f", I32(1), I32(6), I32(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 42 {
		t.Fatalf("table[1](6,7) = %d, want 42", got)
	}
	// Uninitialized element traps.
	if _, err := inst.Call("f", I32(3), I32(1), I32(1)); !IsTrap(err, TrapUninitializedElement) {
		t.Fatalf("uninitialized element: got %v", err)
	}
	// Out-of-range index traps.
	if _, err := inst.Call("f", I32(9), I32(1), I32(1)); !IsTrap(err, TrapTableOutOfBounds) {
		t.Fatalf("out of range: got %v", err)
	}
}

func TestGlobals(t *testing.T) {
	// counter global; f() { counter += 1; return counter }
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpGlobalGet, 0).I32Const(1).Op(wasm.OpI32Add).
		OpU32(wasm.OpGlobalSet, 0).
		OpU32(wasm.OpGlobalGet, 0).
		End()
	m := singleFunc(nil, []wasm.ValueType{i32}, nil, b)
	m.Globals = []wasm.Global{{
		Type: wasm.GlobalType{ValType: i32, Mutable: true},
		Init: wasm.I32Const(10),
	}}
	inst := instantiate(t, buildModule(t, m))
	for want := int32(11); want <= 13; want++ {
		res, err := inst.Call("f")
		if err != nil {
			t.Fatal(err)
		}
		if got := AsI32(res[0]); got != want {
			t.Fatalf("counter = %d, want %d", got, want)
		}
	}
}

func TestHostFunctionAndMemorySharing(t *testing.T) {
	// The module calls an imported host function that doubles its argument
	// and also writes a marker into guest memory.
	s := NewStore(Config{})
	s.NewHostModule("env").AddFunc("double", HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValueType{i32}, Results: []wasm.ValueType{i32}},
		Fn: func(ctx *HostContext, args []Value) ([]Value, error) {
			ctx.Memory.WriteUint32(0, 0xfeedface)
			return []Value{I32(AsI32(args[0]) * 2)}, nil
		},
	})
	b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpCall, 0).End()
	m := &wasm.Module{
		Types: []wasm.FuncType{{Params: []wasm.ValueType{i32}, Results: []wasm.ValueType{i32}}},
		Imports: []wasm.Import{
			{Module: "env", Name: "double", Kind: wasm.ExternalFunc, Func: 0},
		},
		Functions: []uint32{0},
		Memories:  []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}},
		Codes:     []wasm.Code{{Body: b.Bytes()}},
		Exports:   []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 1}},
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	inst, err := s.Instantiate(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("f", I32(21))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 42 {
		t.Fatalf("double(21) = %d, want 42", got)
	}
	if v, _ := inst.Memory().ReadUint32(0); v != 0xfeedface {
		t.Fatalf("host write not visible: %#x", v)
	}
}

func TestMemoryGrowAndSize(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).MemoryOp(wasm.OpMemoryGrow).Op(wasm.OpDrop).
		MemoryOp(wasm.OpMemorySize).
		End()
	m := singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b)
	m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 4, HasMax: true}}}
	inst := instantiate(t, buildModule(t, m))
	res, err := inst.Call("f", I32(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 3 {
		t.Fatalf("size after grow(2) = %d, want 3", got)
	}
	// Growing past max fails (-1) but size stays.
	res, err = inst.Call("f", I32(100))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 3 {
		t.Fatalf("size after failed grow = %d, want 3", got)
	}
}

func TestCallStackExhaustion(t *testing.T) {
	// Infinite recursion must trap, not crash.
	b := new(wasm.BodyBuilder).OpU32(wasm.OpCall, 0).End()
	m := buildModule(t, singleFunc(nil, nil, nil, b))
	s := NewStore(Config{MaxCallDepth: 100})
	inst, err := s.Instantiate(m, "rec")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("f"); !IsTrap(err, TrapCallStackExhausted) {
		t.Fatalf("expected stack exhaustion, got %v", err)
	}
}

func TestFuelMetering(t *testing.T) {
	// Infinite loop with finite fuel.
	b := new(wasm.BodyBuilder)
	b.Block(wasm.OpLoop, wasm.BlockTypeEmpty)
	b.OpU32(wasm.OpBr, 0)
	b.End()
	b.End()
	m := buildModule(t, singleFunc(nil, nil, nil, b))
	s := NewStore(Config{Fuel: 10000})
	inst, err := s.Instantiate(m, "spin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("f"); !IsTrap(err, TrapOutOfFuel) {
		t.Fatalf("expected out of fuel, got %v", err)
	}
	if s.FuelLeft() != 0 {
		t.Fatalf("fuel left = %d, want 0", s.FuelLeft())
	}
}

func TestUnreachableTrap(t *testing.T) {
	b := new(wasm.BodyBuilder).Op(wasm.OpUnreachable).End()
	m := buildModule(t, singleFunc(nil, nil, nil, b))
	inst := instantiate(t, m)
	if _, err := inst.Call("f"); !IsTrap(err, TrapUnreachable) {
		t.Fatalf("expected unreachable trap, got %v", err)
	}
}

func TestFloatSemantics(t *testing.T) {
	// f64 min with -0 and NaN handling.
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(wasm.OpF64Min).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{f64t, f64t}, []wasm.ValueType{f64t}, nil, b))
	inst := instantiate(t, m)

	res, _ := inst.Call("f", F64(math.Copysign(0, -1)), F64(0))
	if got := AsF64(res[0]); !math.Signbit(got) || got != 0 {
		t.Fatalf("min(-0, +0) = %v (signbit %v), want -0", got, math.Signbit(got))
	}
	res, _ = inst.Call("f", F64(math.NaN()), F64(1))
	if got := AsF64(res[0]); !math.IsNaN(got) {
		t.Fatalf("min(NaN, 1) = %v, want NaN", got)
	}
	res, _ = inst.Call("f", F64(1.5), F64(2.5))
	if got := AsF64(res[0]); got != 1.5 {
		t.Fatalf("min(1.5, 2.5) = %v, want 1.5", got)
	}
}

func TestTruncTraps(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI32TruncF64S).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	if _, err := inst.Call("f", F64(math.NaN())); !IsTrap(err, TrapInvalidConversion) {
		t.Fatalf("trunc NaN: got %v", err)
	}
	if _, err := inst.Call("f", F64(3e9)); !IsTrap(err, TrapIntegerOverflow) {
		t.Fatalf("trunc 3e9: got %v", err)
	}
	res, err := inst.Call("f", F64(-2.9))
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != -2 {
		t.Fatalf("trunc -2.9 = %d, want -2", got)
	}
}

func TestTruncSat(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).Misc(wasm.MiscI32TruncSatF64S).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	cases := []struct {
		in   float64
		want int32
	}{
		{math.NaN(), 0},
		{3e9, math.MaxInt32},
		{-3e9, math.MinInt32},
		{-2.9, -2},
	}
	for _, c := range cases {
		res, err := inst.Call("f", F64(c.in))
		if err != nil {
			t.Fatalf("trunc_sat(%v): %v", c.in, err)
		}
		if got := AsI32(res[0]); got != c.want {
			t.Fatalf("trunc_sat(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDataSegmentsAndMemoryInit(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).MemArg(wasm.OpI32Load8U, 0, 0).End()
	m := singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b)
	m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}}
	m.Data = []wasm.DataSegment{{Offset: wasm.I32Const(16), Data: []byte("hi")}}
	inst := instantiate(t, buildModule(t, m))
	res, _ := inst.Call("f", I32(16))
	if got := AsI32(res[0]); got != 'h' {
		t.Fatalf("mem[16] = %d, want 'h'", got)
	}
	res, _ = inst.Call("f", I32(17))
	if got := AsI32(res[0]); got != 'i' {
		t.Fatalf("mem[17] = %d, want 'i'", got)
	}
}

func TestStartFunction(t *testing.T) {
	// start writes 7 to global; exported getter reads it.
	start := new(wasm.BodyBuilder).I32Const(7).OpU32(wasm.OpGlobalSet, 0).End()
	get := new(wasm.BodyBuilder).OpU32(wasm.OpGlobalGet, 0).End()
	m := &wasm.Module{
		Types: []wasm.FuncType{
			{},
			{Results: []wasm.ValueType{i32}},
		},
		Functions: []uint32{0, 1},
		Globals: []wasm.Global{{
			Type: wasm.GlobalType{ValType: i32, Mutable: true},
			Init: wasm.I32Const(0),
		}},
		StartSet: true,
		Start:    0,
		Codes:    []wasm.Code{{Body: start.Bytes()}, {Body: get.Bytes()}},
		Exports:  []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 1}},
	}
	inst := instantiate(t, buildModule(t, m))
	res, err := inst.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 7 {
		t.Fatalf("global after start = %d, want 7", got)
	}
}

func TestIfElseMultilevel(t *testing.T) {
	// f(x) = x > 10 ? (x > 100 ? 3 : 2) : 1, via nested if/else with results.
	b := new(wasm.BodyBuilder)
	b.OpU32(wasm.OpLocalGet, 0).I32Const(10).Op(wasm.OpI32GtS)
	b.Block(wasm.OpIf, wasm.BlockTypeOf(i32))
	{
		b.OpU32(wasm.OpLocalGet, 0).I32Const(100).Op(wasm.OpI32GtS)
		b.Block(wasm.OpIf, wasm.BlockTypeOf(i32))
		b.I32Const(3)
		b.Op(wasm.OpElse)
		b.I32Const(2)
		b.End()
	}
	b.Op(wasm.OpElse)
	b.I32Const(1)
	b.End()
	b.End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	cases := map[int32]int32{5: 1, 50: 2, 500: 3}
	for x, want := range cases {
		res, err := inst.Call("f", I32(x))
		if err != nil {
			t.Fatalf("f(%d): %v", x, err)
		}
		if got := AsI32(res[0]); got != want {
			t.Fatalf("f(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestBranchWithValues(t *testing.T) {
	// block (result i32): push 5, push 37, br 0 keeps only top... but with
	// result arity 1 the branch carries 37 and drops 5.
	b := new(wasm.BodyBuilder)
	b.Block(wasm.OpBlock, wasm.BlockTypeOf(i32))
	b.I32Const(5)
	b.I32Const(37)
	b.OpU32(wasm.OpBr, 0)
	b.End()
	b.End()
	m := buildModule(t, singleFunc(nil, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	res, err := inst.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 37 {
		t.Fatalf("br with value = %d, want 37", got)
	}
}

func TestSignExtensionOps(t *testing.T) {
	b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI32Extend8S).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	res, _ := inst.Call("f", I32(0x80))
	if got := AsI32(res[0]); got != -128 {
		t.Fatalf("extend8_s(0x80) = %d, want -128", got)
	}
	res, _ = inst.Call("f", I32(0x7f))
	if got := AsI32(res[0]); got != 127 {
		t.Fatalf("extend8_s(0x7f) = %d, want 127", got)
	}
}

func TestMemoryCopyFill(t *testing.T) {
	// fill [0,8) with 0xAB then copy [0,8) to [8,16); read back byte 12.
	b := new(wasm.BodyBuilder)
	b.I32Const(0).I32Const(0xAB).I32Const(8).Misc(wasm.MiscMemoryFill)
	b.I32Const(8).I32Const(0).I32Const(8).Misc(wasm.MiscMemoryCopy)
	b.I32Const(12).MemArg(wasm.OpI32Load8U, 0, 0)
	b.End()
	m := singleFunc(nil, []wasm.ValueType{i32}, nil, b)
	m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}}
	inst := instantiate(t, buildModule(t, m))
	res, err := inst.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if got := AsI32(res[0]); got != 0xAB {
		t.Fatalf("mem[12] = %#x, want 0xAB", got)
	}
}

func TestInstructionCounting(t *testing.T) {
	b := new(wasm.BodyBuilder).I32Const(1).I32Const(2).Op(wasm.OpI32Add).Op(wasm.OpDrop).End()
	m := buildModule(t, singleFunc(nil, nil, nil, b))
	s := NewStore(Config{})
	inst, err := s.Instantiate(m, "count")
	if err != nil {
		t.Fatal(err)
	}
	before := s.InstructionCount()
	if _, err := inst.Call("f"); err != nil {
		t.Fatal(err)
	}
	delta := s.InstructionCount() - before
	// const, const, add, drop, return = 5
	if delta != 5 {
		t.Fatalf("instruction count delta = %d, want 5", delta)
	}
}

func TestHostPanicBecomesTrap(t *testing.T) {
	s := NewStore(Config{})
	s.NewHostModule("env").AddFunc("boom", HostFunc{
		Type: wasm.FuncType{},
		Fn: func(ctx *HostContext, args []Value) ([]Value, error) {
			panic("host bug")
		},
	})
	b := new(wasm.BodyBuilder).OpU32(wasm.OpCall, 0).End()
	m := &wasm.Module{
		Types:     []wasm.FuncType{{}},
		Imports:   []wasm.Import{{Module: "env", Name: "boom", Kind: wasm.ExternalFunc, Func: 0}},
		Functions: []uint32{0},
		Codes:     []wasm.Code{{Body: b.Bytes()}},
		Exports:   []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 1}},
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	inst, err := s.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Call("f")
	if !IsTrap(err, TrapHostError) {
		t.Fatalf("expected host-error trap, got %v", err)
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error %q does not mention the panic", err)
	}
	// The store remains usable after the contained panic.
	if _, err := inst.Call("f"); !IsTrap(err, TrapHostError) {
		t.Fatal("store unusable after host panic")
	}
}

func TestTrapCarriesWasmStack(t *testing.T) {
	// Build via WAT-equivalent: named funcs outer -> inner -> unreachable.
	inner := new(wasm.BodyBuilder).Op(wasm.OpUnreachable).End()
	outer := new(wasm.BodyBuilder).OpU32(wasm.OpCall, 0).End()
	m := &wasm.Module{
		Types:     []wasm.FuncType{{}},
		Functions: []uint32{0, 0},
		Codes:     []wasm.Code{{Body: inner.Bytes()}, {Body: outer.Bytes()}},
		Exports:   []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 1}},
	}
	wasm.EncodeNameSection(m, wasm.NameMap{FuncNames: map[uint32]string{0: "inner", 1: "outer"}})
	inst := instantiate(t, buildModule(t, m))
	_, err := inst.Call("f")
	if !IsTrap(err, TrapUnreachable) {
		t.Fatalf("got %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "$inner") || !strings.Contains(msg, "$outer") {
		t.Fatalf("trap message missing stack: %q", msg)
	}
	// Innermost first.
	if strings.Index(msg, "$inner") > strings.Index(msg, "$outer") {
		t.Fatalf("stack order wrong: %q", msg)
	}
}

func TestTrapStackBounded(t *testing.T) {
	b := new(wasm.BodyBuilder).OpU32(wasm.OpCall, 0).End()
	m := buildModule(t, singleFunc(nil, nil, nil, b))
	s := NewStore(Config{MaxCallDepth: 500})
	inst, err := s.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Call("f")
	tr, ok := err.(*Trap)
	if !ok || tr.Code != TrapCallStackExhausted {
		t.Fatalf("got %v", err)
	}
	if len(tr.Frames) > 16 {
		t.Fatalf("trap stack unbounded: %d frames", len(tr.Frames))
	}
}

package exec

import "wasmcontainers/internal/wasm"

// Superinstruction opcodes. These never appear in wasm binaries: the fusion
// pass below emits them into compiled code, in the gap between the spec's
// highest one-byte opcode (0xC4) and the 0xFC prefix. Each one replaces a
// dominant multi-instruction pattern with a single dispatch.
const (
	// opI32AddConst fuses "i32.const K; i32.add" (a = K as uint32 bits).
	opI32AddConst wasm.Opcode = 0xE0
	// opI64AddConst fuses "i64.const K; i64.add" (a = K).
	opI64AddConst wasm.Opcode = 0xE1
	// opLocalGetPair fuses "local.get i; local.get j" (a = i<<32 | j).
	opLocalGetPair wasm.Opcode = 0xE2
	// opLocalBinop fuses "local.get i; local.get j; <binop>"
	// (misc = binop opcode, a = i<<32 | j).
	opLocalBinop wasm.Opcode = 0xE3
	// opCmpBrIf fuses "<comparison>; br_if" (misc = comparison opcode,
	// a/b = the br_if's target pc and packed drop/keep).
	opCmpBrIf wasm.Opcode = 0xE4
)

// isCmpBinop reports whether op is a binary comparison (result 0/1,
// cannot trap). Eqz is unary and excluded.
func isCmpBinop(op wasm.Opcode) bool {
	switch {
	case op >= wasm.OpI32Eq && op <= wasm.OpI32GeU:
		return true
	case op >= wasm.OpI64Eq && op <= wasm.OpI64GeU:
		return true
	case op >= wasm.OpF32Eq && op <= wasm.OpF64Ge:
		return true
	}
	return false
}

// isFusableBinop reports whether op is a two-operand op handled by binaryOp,
// i.e. safe to execute from a fused superinstruction.
func isFusableBinop(op wasm.Opcode) bool {
	if isCmpBinop(op) {
		return true
	}
	switch {
	case op >= wasm.OpI32Add && op <= wasm.OpI32Rotr:
		return true
	case op >= wasm.OpI64Add && op <= wasm.OpI64Rotr:
		return true
	case op >= wasm.OpF32Add && op <= wasm.OpF32Copysign:
		return true
	case op >= wasm.OpF64Add && op <= wasm.OpF64Copysign:
		return true
	}
	return false
}

// fuse rewrites a compiled body, merging dominant instruction sequences into
// superinstructions. An instruction that is a branch target is never merged
// into a predecessor (a jump must be able to land on it), and every branch
// target is remapped to its post-fusion index. The interpreter credits each
// superinstruction with its original instruction count, so
// Store.InstructionCount — and all simulated timing derived from it — is
// unchanged by fusion.
func fuse(cc *compiledCode) {
	instrs := cc.instrs
	target := make([]bool, len(instrs))
	for i := range instrs {
		switch instrs[i].op {
		case wasm.OpIf, wasm.OpElse, wasm.OpBr, wasm.OpBrIf:
			target[instrs[i].a] = true
		}
	}
	for _, table := range cc.brTables {
		for _, ent := range table {
			target[ent.pc] = true
		}
	}

	out := make([]instr, 0, len(instrs))
	newIndex := make([]int, len(instrs))
	i := 0
	for i < len(instrs) {
		in := instrs[i]
		n := 1 // original instructions consumed by the emitted one
		switch {
		case in.op == wasm.OpLocalGet && i+2 < len(instrs) &&
			instrs[i+1].op == wasm.OpLocalGet && !target[i+1] &&
			!target[i+2] && isFusableBinop(instrs[i+2].op):
			in = instr{op: opLocalBinop, misc: uint32(instrs[i+2].op), a: in.a<<32 | instrs[i+1].a}
			n = 3
		case isCmpBinop(in.op) && i+1 < len(instrs) &&
			instrs[i+1].op == wasm.OpBrIf && !target[i+1]:
			in = instr{op: opCmpBrIf, misc: uint32(in.op), a: instrs[i+1].a, b: instrs[i+1].b}
			n = 2
		case in.op == wasm.OpLocalGet && i+1 < len(instrs) &&
			instrs[i+1].op == wasm.OpLocalGet && !target[i+1]:
			in = instr{op: opLocalGetPair, a: in.a<<32 | instrs[i+1].a}
			n = 2
		case in.op == wasm.OpI32Const && i+1 < len(instrs) &&
			instrs[i+1].op == wasm.OpI32Add && !target[i+1]:
			in = instr{op: opI32AddConst, a: in.a}
			n = 2
		case in.op == wasm.OpI64Const && i+1 < len(instrs) &&
			instrs[i+1].op == wasm.OpI64Add && !target[i+1]:
			in = instr{op: opI64AddConst, a: in.a}
			n = 2
		}
		idx := len(out)
		out = append(out, in)
		for j := 0; j < n; j++ {
			newIndex[i+j] = idx
		}
		i += n
	}

	for k := range out {
		switch out[k].op {
		case wasm.OpIf, wasm.OpElse, wasm.OpBr, wasm.OpBrIf, opCmpBrIf:
			out[k].a = uint64(newIndex[out[k].a])
		}
	}
	for ti := range cc.brTables {
		for ei := range cc.brTables[ti] {
			cc.brTables[ti][ei].pc = uint64(newIndex[cc.brTables[ti][ei].pc])
		}
	}
	cc.instrs = out
}

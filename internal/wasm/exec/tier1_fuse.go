package exec

import (
	"wasmcontainers/internal/wasm"
)

// Tier-1 peephole fusion. The register form makes adjacency fusion far more
// profitable than it is at tier 0: operands have fixed slots, so a pattern
// like "local.get; i32.const+add; local.set; br" collapses into ONE closure
// that reads a local, writes a local, charges fuel, and jumps — four dispatch
// steps become one indirect call. The consumed instructions keep their own
// standalone closures (branches may target them); the fused closure simply
// jumps past them with their instruction counts folded in, so the retired
// count and the block-granularity fuel schedule stay bit-identical to tier 0.

// adj returns the pc of the next surviving instruction after pc when every
// erased instruction in between is a pure structure marker. A Drop between
// the two changes the operand stack, so it breaks adjacency (-1).
func (b *t1builder) adj(pc int) int {
	instrs := b.cc.instrs
	for q := pc + 1; q < len(instrs); q++ {
		op := instrs[q].op
		if !t1Erased(op) {
			return q
		}
		if op == wasm.OpDrop {
			return -1
		}
	}
	return -1
}

// tryFuse attempts to lower a multi-instruction pattern starting at pc into
// one closure. Returns nil when no pattern applies (the caller falls through
// to single-instruction lowering).
func (b *t1builder) tryFuse(pc int) t1op {
	instrs := b.cc.instrs
	in := &instrs[pc]
	ht := b.heights[pc]
	switch in.op {
	case opLocalGetPair:
		// [local.get i; local.get j][<cmp>; br_if] — the universal hot-loop
		// header, compared straight out of the locals.
		q := b.adj(pc)
		if q >= 0 && instrs[q].op == opCmpBrIf {
			i := int(in.a >> 32)
			j := int(uint32(in.a))
			own := 2 + b.skipCnt[pc+1] + 2
			return b.buildCmpBrIf(q, &instrs[q], b.heights[q], i, j, own)
		}
	case opLocalBinop:
		// [local.get i; local.get j; <binop>][local.set k] — three-address
		// form: k = i op j with no stack traffic. When the set is followed by
		// the induction-variable step and the backedge, the whole loop
		// epilogue ("acc op= x; i += k; br loop") collapses into one closure.
		q := b.adj(pc)
		if q >= 0 && instrs[q].op == wasm.OpBrIf && isCmpBinop(wasm.Opcode(in.misc)) {
			// [local.get i; local.get j; <cmp>][br_if] — the other spelling of
			// the hot-loop header (the upstream fuser ate the gets into a
			// localBinop before cmp+br_if could pair up). Reuse the cmp-br-if
			// builder with a synthetic fused instr carrying br_if's target.
			i := int(in.a >> 32)
			j := int(uint32(in.a))
			syn := instr{op: opCmpBrIf, misc: in.misc, a: instrs[q].a, b: instrs[q].b}
			return b.buildCmpBrIf(q, &syn, b.heights[pc]+2, i, j, 3+b.skipCnt[pc+1]+1)
		}
		if q >= 0 && instrs[q].op == wasm.OpLocalSet {
			op := wasm.Opcode(in.misc)
			if fn := binFast(op); fn != nil {
				if g := b.adj(q); g >= 0 && instrs[g].op == wasm.OpLocalGet {
					if a := b.adj(g); a >= 0 && (instrs[a].op == opI32AddConst || instrs[a].op == opI64AddConst) {
						if s2 := b.adj(a); s2 >= 0 && instrs[s2].op == wasm.OpLocalSet {
							if br := b.adj(s2); br >= 0 && instrs[br].op == wasm.OpBr {
								if _, keep := unpackDropKeep(instrs[br].b); keep == 0 {
									return b.buildLoopStep(fn, pc, q, g, a, s2, br)
								}
							}
						}
					}
				}
			}
			next, crF := b.fall(q)
			return b.buildBinopSlots(op,
				int(in.a>>32), int(uint32(in.a)), int(instrs[q].a),
				3, b.skipCnt[pc+1]+1+crF, next)
		}
	case wasm.OpLocalGet:
		i := int(in.a)
		q := b.adj(pc)
		if q < 0 {
			return nil
		}
		qin := &instrs[q]
		c1 := b.skipCnt[pc+1]
		switch {
		case qin.op == opI32AddConst, qin.op == opI64AddConst:
			// [local.get i][const+add] and optionally [local.set d][br]:
			// the canonical induction-variable step.
			return b.buildLocalAddK(pc, q, i, c1)
		case qin.op == wasm.OpI32Const || qin.op == wasm.OpI64Const:
			// [local.get i][const k][binop] and optionally [local.set d]:
			// local op constant, no stack traffic. (const+add was already
			// folded upstream; this catches sub/mul/shift/cmp/div chains.)
			r := b.adj(q)
			if r < 0 || !isFusableBinop(instrs[r].op) {
				return nil
			}
			z := b.nl + ht
			fallPc := r
			extra := uint64(0)
			if r2 := b.adj(r); r2 >= 0 && instrs[r2].op == wasm.OpLocalSet {
				z = int(instrs[r2].a)
				extra = b.skipCnt[r+1] + 1
				fallPc = r2
			}
			next, crF := b.fall(fallPc)
			return b.buildBinopK(instrs[r].op, i, qin.a, z,
				3+c1+b.skipCnt[q+1], extra+crF, next)
		case qin.op == wasm.OpReturn:
			// [local.get i][return]: park the local in the result slot and
			// leave the frame directly.
			if _, keep := unpackDropKeep(qin.b); keep == 1 {
				cnt := 2 + c1
				return func(fr *t1frame) int {
					fr.regs[0] = fr.regs[i]
					fr.executed += cnt
					return t1Return
				}
			}
		case isFusableBinop(qin.op) && ht >= 1:
			// [local.get i][binop]: top-of-stack op local, in place.
			x := b.slot(ht, 1)
			z := x
			fallPc := q
			extra := uint64(0)
			if r := b.adj(q); r >= 0 && instrs[r].op == wasm.OpLocalSet {
				z = int(instrs[r].a)
				extra = b.skipCnt[q+1] + 1
				fallPc = r
			}
			next, crF := b.fall(fallPc)
			return b.buildBinopSlots(qin.op, x, i, z, 2+c1, extra+crF, next)
		case qin.op == wasm.OpLocalSet:
			// [local.get i][local.set j]: a register move.
			j := int(instrs[q].a)
			next, crF := b.fall(q)
			cnt := 2 + c1 + crF
			return func(fr *t1frame) int {
				fr.regs[j] = fr.regs[i]
				fr.executed += cnt
				return next
			}
		default:
			// [local.get i][store]: store a local without pushing it.
			if ht >= 1 {
				if nin, _, width, isMem := fixedShape(qin.op); isMem && nin == 2 && width > 0 {
					return b.buildStore(qin, i, b.slot(ht, 1), 2+c1, q)
				}
			}
		}
	case wasm.OpI32Const, wasm.OpI64Const:
		// [const k][binop] and optionally [local.set d]: fold the immediate
		// into the operator. (const+add pairs were already fused to
		// opI32/I64AddConst upstream, so this catches mul/and/shift/cmp/div.)
		if ht < 1 {
			return nil
		}
		q := b.adj(pc)
		if q < 0 || !isFusableBinop(instrs[q].op) {
			return nil
		}
		x := b.slot(ht, 1)
		z := x
		fallPc := q
		extra := uint64(0)
		if r := b.adj(q); r >= 0 && instrs[r].op == wasm.OpLocalSet {
			z = int(instrs[r].a)
			extra = b.skipCnt[q+1] + 1
			fallPc = r
		}
		next, crF := b.fall(fallPc)
		return b.buildBinopK(instrs[q].op, x, in.a, z,
			2+b.skipCnt[pc+1], extra+crF, next)
	}
	return nil
}

// buildLocalAddK lowers [local.get src][opI32/I64AddConst k] plus an optional
// [local.set dst] and, after a set, an optional value-free [br]: the loop
// counter update and backedge in one closure. pc is the local.get, q the
// fused add-const.
func (b *t1builder) buildLocalAddK(pc, q, src int, c1 uint64) t1op {
	instrs := b.cc.instrs
	qin := &instrs[q]
	is64 := qin.op == opI64AddConst
	k32 := int32(uint32(qin.a))
	k64 := qin.a
	ht := b.heights[pc]
	dst := b.nl + ht // pushed, unless a set redirects it
	cnt := 1 + c1 + 2
	fallPc := q
	if r := b.adj(q); r >= 0 && instrs[r].op == wasm.OpLocalSet {
		dst = int(instrs[r].a)
		cnt += b.skipCnt[q+1] + 1
		fallPc = r
		if r2 := b.adj(r); r2 >= 0 && instrs[r2].op == wasm.OpBr {
			if _, keep := unpackDropKeep(instrs[r2].b); keep == 0 {
				// Fold the backedge in: count through the br, charge fuel at
				// it (the tier-0 charge point), then jump.
				own := cnt + b.skipCnt[r+1] + 1
				cred := b.skipCnt[instrs[r2].a]
				t := b.tgt(int(instrs[r2].a))
				if is64 {
					return func(fr *t1frame) int {
						fr.regs[dst] = fr.regs[src] + k64
						fr.executed += own
						if !fr.chargeFuel() {
							fr.err = newTrap(TrapOutOfFuel)
							return t1Trapped
						}
						fr.executed += cred
						return t
					}
				}
				return func(fr *t1frame) int {
					fr.regs[dst] = I32(AsI32(fr.regs[src]) + k32)
					fr.executed += own
					if !fr.chargeFuel() {
						fr.err = newTrap(TrapOutOfFuel)
						return t1Trapped
					}
					fr.executed += cred
					return t
				}
			}
		}
	}
	next, crF := b.fall(fallPc)
	cnt += crF
	if is64 {
		return func(fr *t1frame) int {
			fr.regs[dst] = fr.regs[src] + k64
			fr.executed += cnt
			return next
		}
	}
	return func(fr *t1frame) int {
		fr.regs[dst] = I32(AsI32(fr.regs[src]) + k32)
		fr.executed += cnt
		return next
	}
}

// buildBinopK lowers a binop whose right operand is the constant k: reads
// regs[x], writes regs[z]. own counts the originals retired before the
// operator runs (so a trapping div-by-constant is accounted like tier 0);
// the specialized non-trapping forms collapse own+fall into one add.
func (b *t1builder) buildBinopK(op wasm.Opcode, x int, k Value, z int, own, fall uint64, next int) t1op {
	cnt := own + fall
	switch op {
	case wasm.OpI32Add:
		k32 := AsI32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) + k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Sub:
		k32 := AsI32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) - k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Mul:
		k32 := AsI32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) * k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32And:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] & k
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Or:
		return func(fr *t1frame) int {
			fr.regs[z] = (fr.regs[x] | k) & 0xffffffff
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Xor:
		return func(fr *t1frame) int {
			fr.regs[z] = (fr.regs[x] ^ k) & 0xffffffff
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Shl:
		sh := AsU32(k) & 31
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) << sh)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32ShrS:
		sh := AsU32(k) & 31
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) >> sh)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32ShrU:
		sh := AsU32(k) & 31
		return func(fr *t1frame) int {
			fr.regs[z] = uint64(AsU32(fr.regs[x]) >> sh)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Eq:
		k32 := AsU32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) == k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Ne:
		k32 := AsU32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) != k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32LtS:
		k32 := AsI32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI32(fr.regs[x]) < k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32LtU:
		k32 := AsU32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) < k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32GtS:
		k32 := AsI32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI32(fr.regs[x]) > k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32GtU:
		k32 := AsU32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) > k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32LeS:
		k32 := AsI32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI32(fr.regs[x]) <= k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32GeS:
		k32 := AsI32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI32(fr.regs[x]) >= k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32GeU:
		k32 := AsU32(k)
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) >= k32)
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Add:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] + k
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Sub:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] - k
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Mul:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] * k
			fr.executed += cnt
			return next
		}
	case wasm.OpI64And:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] & k
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Or:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] | k
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Xor:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] ^ k
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Shl:
		sh := k & 63
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] << sh
			fr.executed += cnt
			return next
		}
	case wasm.OpI64ShrU:
		sh := k & 63
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] >> sh
			fr.executed += cnt
			return next
		}
	}
	// Generic fold, including the trapping div/rem-by-constant.
	return func(fr *t1frame) int {
		fr.executed += own
		v, err := binaryOp(op, fr.regs[x], k)
		if err != nil {
			fr.err = err
			return t1Trapped
		}
		fr.regs[z] = v
		fr.executed += fall
		return next
	}
}

// binFast returns a non-trapping evaluator for the handful of binops worth
// folding into multi-op superinstructions, nil for anything that can trap or
// is too rare to matter.
func binFast(op wasm.Opcode) func(Value, Value) Value {
	switch op {
	case wasm.OpI32Add:
		return func(a, b Value) Value { return I32(AsI32(a) + AsI32(b)) }
	case wasm.OpI32Sub:
		return func(a, b Value) Value { return I32(AsI32(a) - AsI32(b)) }
	case wasm.OpI32Mul:
		return func(a, b Value) Value { return I32(AsI32(a) * AsI32(b)) }
	case wasm.OpI32And:
		return func(a, b Value) Value { return (a & b) & 0xffffffff }
	case wasm.OpI32Or:
		return func(a, b Value) Value { return (a | b) & 0xffffffff }
	case wasm.OpI32Xor:
		return func(a, b Value) Value { return (a ^ b) & 0xffffffff }
	case wasm.OpI64Add:
		return func(a, b Value) Value { return a + b }
	case wasm.OpI64Sub:
		return func(a, b Value) Value { return a - b }
	case wasm.OpI64Mul:
		return func(a, b Value) Value { return a * b }
	case wasm.OpI64And:
		return func(a, b Value) Value { return a & b }
	case wasm.OpI64Or:
		return func(a, b Value) Value { return a | b }
	case wasm.OpI64Xor:
		return func(a, b Value) Value { return a ^ b }
	}
	return nil
}

// buildLoopStep lowers the full counted-loop epilogue
// [localBinop i j -> set k][get src; addconst][set dst][br] into one closure:
// update the accumulator, step the induction variable, charge fuel at the
// backedge (tier 0's charge point), jump. pc..br are the chain's pcs.
func (b *t1builder) buildLoopStep(fn func(Value, Value) Value, pc, q, g, a, s2, br int) t1op {
	instrs := b.cc.instrs
	i := int(instrs[pc].a >> 32)
	j := int(uint32(instrs[pc].a))
	k := int(instrs[q].a)
	src := int(instrs[g].a)
	dst := int(instrs[s2].a)
	is64 := instrs[a].op == opI64AddConst
	k64 := instrs[a].a
	k32 := int32(uint32(instrs[a].a))
	own := 3 + b.skipCnt[pc+1] + 1 + b.skipCnt[q+1] + 1 + b.skipCnt[g+1] +
		2 + b.skipCnt[a+1] + 1 + b.skipCnt[s2+1] + 1
	cred := b.skipCnt[int(instrs[br].a)]
	t := b.tgt(int(instrs[br].a))
	if is64 {
		return func(fr *t1frame) int {
			fr.regs[k] = fn(fr.regs[i], fr.regs[j])
			fr.regs[dst] = fr.regs[src] + k64
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			fr.executed += cred
			return t
		}
	}
	return func(fr *t1frame) int {
		fr.regs[k] = fn(fr.regs[i], fr.regs[j])
		fr.regs[dst] = I32(AsI32(fr.regs[src]) + k32)
		fr.executed += own
		if !fr.chargeFuel() {
			fr.err = newTrap(TrapOutOfFuel)
			return t1Trapped
		}
		fr.executed += cred
		return t
	}
}

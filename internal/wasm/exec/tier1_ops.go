package exec

import (
	"encoding/binary"
	"math"

	"wasmcontainers/internal/wasm"
)

// buildBinopSlots lowers a two-operand op reading slots x and y and writing
// slot z. Plain binops use (x, x+1, x); the opLocalBinop superinstruction
// reads two locals and pushes. own is the original instruction count (1, or
// 3 for the fused form), fall the erased-successor credit. The hot integer
// and float ops get fully specialized closures; everything else — including
// every op that can trap — goes through the shared binaryOp evaluator, which
// still beats tier 0 by skipping the outer dispatch.
func (b *t1builder) buildBinopSlots(op wasm.Opcode, x, y, z int, own, fall uint64, next int) t1op {
	cnt := own + fall
	switch op {
	case wasm.OpI32Add:
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) + AsI32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Sub:
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) - AsI32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Mul:
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) * AsI32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32And:
		return func(fr *t1frame) int {
			fr.regs[z] = (fr.regs[x] & fr.regs[y]) & math.MaxUint32
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Or:
		return func(fr *t1frame) int {
			fr.regs[z] = (fr.regs[x] | fr.regs[y]) & math.MaxUint32
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Xor:
		return func(fr *t1frame) int {
			fr.regs[z] = (fr.regs[x] ^ fr.regs[y]) & math.MaxUint32
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Shl:
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) << (AsU32(fr.regs[y]) & 31))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32ShrS:
		return func(fr *t1frame) int {
			fr.regs[z] = I32(AsI32(fr.regs[x]) >> (AsU32(fr.regs[y]) & 31))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32ShrU:
		return func(fr *t1frame) int {
			fr.regs[z] = uint64(AsU32(fr.regs[x]) >> (AsU32(fr.regs[y]) & 31))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Eq:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) == AsU32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Ne:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) != AsU32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32LtS:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI32(fr.regs[x]) < AsI32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32LtU:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) < AsU32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32GtS:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI32(fr.regs[x]) > AsI32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32GtU:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) > AsU32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32LeS:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI32(fr.regs[x]) <= AsI32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32LeU:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) <= AsU32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32GeS:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI32(fr.regs[x]) >= AsI32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32GeU:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsU32(fr.regs[x]) >= AsU32(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Add:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] + fr.regs[y]
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Sub:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] - fr.regs[y]
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Mul:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] * fr.regs[y]
			fr.executed += cnt
			return next
		}
	case wasm.OpI64And:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] & fr.regs[y]
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Or:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] | fr.regs[y]
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Xor:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] ^ fr.regs[y]
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Shl:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] << (fr.regs[y] & 63)
			fr.executed += cnt
			return next
		}
	case wasm.OpI64ShrU:
		return func(fr *t1frame) int {
			fr.regs[z] = fr.regs[x] >> (fr.regs[y] & 63)
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Eq:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(fr.regs[x] == fr.regs[y])
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Ne:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(fr.regs[x] != fr.regs[y])
			fr.executed += cnt
			return next
		}
	case wasm.OpI64LtS:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI64(fr.regs[x]) < AsI64(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI64LtU:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(fr.regs[x] < fr.regs[y])
			fr.executed += cnt
			return next
		}
	case wasm.OpI64GtS:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(AsI64(fr.regs[x]) > AsI64(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI64GeU:
		return func(fr *t1frame) int {
			fr.regs[z] = boolVal(fr.regs[x] >= fr.regs[y])
			fr.executed += cnt
			return next
		}
	case wasm.OpF64Add:
		return func(fr *t1frame) int {
			fr.regs[z] = F64(AsF64(fr.regs[x]) + AsF64(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpF64Sub:
		return func(fr *t1frame) int {
			fr.regs[z] = F64(AsF64(fr.regs[x]) - AsF64(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpF64Mul:
		return func(fr *t1frame) int {
			fr.regs[z] = F64(AsF64(fr.regs[x]) * AsF64(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	case wasm.OpF64Div:
		return func(fr *t1frame) int {
			fr.regs[z] = F64(AsF64(fr.regs[x]) / AsF64(fr.regs[y]))
			fr.executed += cnt
			return next
		}
	}
	// Generic path, covering the trapping ops (div/rem) and the long tail.
	// The own-count lands before evaluation so a trapping instruction is
	// counted, exactly like the tier-0 loop.
	return func(fr *t1frame) int {
		fr.executed += own
		v, err := binaryOp(op, fr.regs[x], fr.regs[y])
		if err != nil {
			fr.err = err
			return t1Trapped
		}
		fr.regs[z] = v
		fr.executed += fall
		return next
	}
}

// buildCmpBrIf lowers the fused "<comparison>; br_if" superinstruction
// comparing regs[x] and regs[y] (operand slots or, when fused with a
// preceding local-get pair, local slots directly). own is the original
// instruction count retired before the fuel charge. The i32 comparisons —
// the shape of virtually every hot loop header — get inline closures; the
// rest evaluate through binaryOp.
func (b *t1builder) buildCmpBrIf(pc int, in *instr, ht, x, y int, own uint64) t1op {
	t := b.tgt(int(in.a))
	crT := b.skipCnt[in.a]
	next, crF := b.fall(pc)
	dst, src, keep := b.moveFor(ht-2, in.b)
	op := wasm.Opcode(in.misc)

	take := func(fr *t1frame) int {
		if keep > 0 && dst != src {
			copy(fr.regs[dst:dst+keep], fr.regs[src:src+keep])
		}
		fr.executed += crT
		return t
	}
	var test func(l, r Value) bool
	switch op {
	case wasm.OpI32Eq:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsU32(fr.regs[x]) == AsU32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	case wasm.OpI32Ne:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsU32(fr.regs[x]) != AsU32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	case wasm.OpI32LtS:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsI32(fr.regs[x]) < AsI32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	case wasm.OpI32LtU:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsU32(fr.regs[x]) < AsU32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	case wasm.OpI32GtS:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsI32(fr.regs[x]) > AsI32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	case wasm.OpI32GtU:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsU32(fr.regs[x]) > AsU32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	case wasm.OpI32LeS:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsI32(fr.regs[x]) <= AsI32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	case wasm.OpI32LeU:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsU32(fr.regs[x]) <= AsU32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	case wasm.OpI32GeS:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsI32(fr.regs[x]) >= AsI32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	case wasm.OpI32GeU:
		return func(fr *t1frame) int {
			fr.executed += own
			if !fr.chargeFuel() {
				fr.err = newTrap(TrapOutOfFuel)
				return t1Trapped
			}
			if AsU32(fr.regs[x]) >= AsU32(fr.regs[y]) {
				return take(fr)
			}
			fr.executed += crF
			return next
		}
	default:
		test = func(l, r Value) bool {
			v, _ := binaryOp(op, l, r) // comparisons cannot trap
			return v != 0
		}
	}
	return func(fr *t1frame) int {
		fr.executed += own
		if !fr.chargeFuel() {
			fr.err = newTrap(TrapOutOfFuel)
			return t1Trapped
		}
		if test(fr.regs[x], fr.regs[y]) {
			return take(fr)
		}
		fr.executed += crF
		return next
	}
}

// buildUnary lowers a one-operand fixed-shape op operating in place on the
// top slot.
func (b *t1builder) buildUnary(op wasm.Opcode, ht, pc int) t1op {
	c := b.slot(ht, 1)
	next, crF := b.fall(pc)
	cnt := 1 + crF
	switch op {
	case wasm.OpI32Eqz:
		return func(fr *t1frame) int {
			fr.regs[c] = boolVal(AsU32(fr.regs[c]) == 0)
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Eqz:
		return func(fr *t1frame) int {
			fr.regs[c] = boolVal(fr.regs[c] == 0)
			fr.executed += cnt
			return next
		}
	case wasm.OpI32WrapI64:
		return func(fr *t1frame) int {
			fr.regs[c] = I32(int32(fr.regs[c]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI64ExtendI32S:
		return func(fr *t1frame) int {
			fr.regs[c] = I64(int64(AsI32(fr.regs[c])))
			fr.executed += cnt
			return next
		}
	case wasm.OpI64ExtendI32U:
		return func(fr *t1frame) int {
			fr.regs[c] = uint64(AsU32(fr.regs[c]))
			fr.executed += cnt
			return next
		}
	}
	// Generic path: unaryOp covers the trapping float->int truncations.
	return func(fr *t1frame) int {
		fr.executed++
		v, err, ok := unaryOp(op, fr.regs[c])
		if !ok {
			fr.err = newTrap(TrapUnreachable)
			return t1Trapped
		}
		if err != nil {
			fr.err = err
			return t1Trapped
		}
		fr.regs[c] = v
		fr.executed += crF
		return next
	}
}

// buildLoad lowers a memory load: address in the top slot, replaced by the
// value. The bounds check and zero/sign extension replicate Memory.load and
// loadSigned exactly.
func (b *t1builder) buildLoad(in *instr, ht, pc int) t1op {
	c := b.slot(ht, 1)
	off := in.a
	next, crF := b.fall(pc)
	cnt := 1 + crF
	oob := func(fr *t1frame) int {
		fr.executed++
		fr.err = newTrap(TrapMemoryOutOfBounds)
		return t1Trapped
	}
	switch in.op {
	case wasm.OpI32Load, wasm.OpF32Load, wasm.OpI64Load32U:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+4 > uint64(len(m.data)) {
				return oob(fr)
			}
			fr.regs[c] = uint64(binary.LittleEndian.Uint32(m.data[ea:]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Load, wasm.OpF64Load:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+8 > uint64(len(m.data)) {
				return oob(fr)
			}
			fr.regs[c] = binary.LittleEndian.Uint64(m.data[ea:])
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Load8U, wasm.OpI64Load8U:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+1 > uint64(len(m.data)) {
				return oob(fr)
			}
			fr.regs[c] = uint64(m.data[ea])
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Load16U, wasm.OpI64Load16U:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+2 > uint64(len(m.data)) {
				return oob(fr)
			}
			fr.regs[c] = uint64(binary.LittleEndian.Uint16(m.data[ea:]))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Load8S:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+1 > uint64(len(m.data)) {
				return oob(fr)
			}
			fr.regs[c] = I32(int32(int8(m.data[ea])))
			fr.executed += cnt
			return next
		}
	case wasm.OpI32Load16S:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+2 > uint64(len(m.data)) {
				return oob(fr)
			}
			fr.regs[c] = I32(int32(int16(binary.LittleEndian.Uint16(m.data[ea:]))))
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Load8S:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+1 > uint64(len(m.data)) {
				return oob(fr)
			}
			fr.regs[c] = I64(int64(int8(m.data[ea])))
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Load16S:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+2 > uint64(len(m.data)) {
				return oob(fr)
			}
			fr.regs[c] = I64(int64(int16(binary.LittleEndian.Uint16(m.data[ea:]))))
			fr.executed += cnt
			return next
		}
	case wasm.OpI64Load32S:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+4 > uint64(len(m.data)) {
				return oob(fr)
			}
			fr.regs[c] = I64(int64(int32(binary.LittleEndian.Uint32(m.data[ea:]))))
			fr.executed += cnt
			return next
		}
	}
	b.fail()
	return nil
}

// buildStore lowers a memory store: value in regs[v] (the top slot, or a
// local slot when fused with a preceding local.get), address in regs[c].
// own is the original instruction count. The inline dirty-page marking
// (first page plus the rare straddle) is byte-for-byte the Memory.store hot
// path.
func (b *t1builder) buildStore(in *instr, v, c int, own uint64, pc int) t1op {
	off := in.a
	width := uint64(in.misc)
	next, crF := b.fall(pc)
	cnt := own + crF
	oob := func(fr *t1frame) int {
		fr.executed += own
		fr.err = newTrap(TrapMemoryOutOfBounds)
		return t1Trapped
	}
	switch width {
	case 1:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+1 > uint64(len(m.data)) {
				return oob(fr)
			}
			m.data[ea] = byte(fr.regs[v])
			p := ea >> 16
			m.dirty[p>>6] |= 1 << (p & 63)
			fr.executed += cnt
			return next
		}
	case 2:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+2 > uint64(len(m.data)) {
				return oob(fr)
			}
			binary.LittleEndian.PutUint16(m.data[ea:], uint16(fr.regs[v]))
			p := ea >> 16
			m.dirty[p>>6] |= 1 << (p & 63)
			if last := (ea + 1) >> 16; last != p {
				m.dirty[last>>6] |= 1 << (last & 63)
			}
			fr.executed += cnt
			return next
		}
	case 4:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+4 > uint64(len(m.data)) {
				return oob(fr)
			}
			binary.LittleEndian.PutUint32(m.data[ea:], uint32(fr.regs[v]))
			p := ea >> 16
			m.dirty[p>>6] |= 1 << (p & 63)
			if last := (ea + 3) >> 16; last != p {
				m.dirty[last>>6] |= 1 << (last & 63)
			}
			fr.executed += cnt
			return next
		}
	case 8:
		return func(fr *t1frame) int {
			m := fr.mem
			ea := uint64(AsU32(fr.regs[c])) + off
			if ea+8 > uint64(len(m.data)) {
				return oob(fr)
			}
			binary.LittleEndian.PutUint64(m.data[ea:], fr.regs[v])
			p := ea >> 16
			m.dirty[p>>6] |= 1 << (p & 63)
			if last := (ea + 7) >> 16; last != p {
				m.dirty[last>>6] |= 1 << (last & 63)
			}
			fr.executed += cnt
			return next
		}
	}
	b.fail()
	return nil
}

// buildMisc lowers the 0xFC-prefixed ops: the eight saturating truncations
// (in-place on the top slot) and the bulk-memory copy/fill.
func (b *t1builder) buildMisc(pc int, in *instr, ht int) t1op {
	next, crF := b.fall(pc)
	switch in.misc {
	case wasm.MiscMemoryCopy:
		c1 := b.slot(ht, 1) // n
		c2 := b.slot(ht, 2) // src
		c3 := b.slot(ht, 3) // dst
		return func(fr *t1frame) int {
			fr.executed++
			m := fr.mem
			nn := AsU32(fr.regs[c1])
			src := AsU32(fr.regs[c2])
			dst := AsU32(fr.regs[c3])
			if uint64(src)+uint64(nn) > uint64(len(m.data)) || uint64(dst)+uint64(nn) > uint64(len(m.data)) {
				fr.err = newTrap(TrapMemoryOutOfBounds)
				return t1Trapped
			}
			copy(m.data[dst:dst+nn], m.data[src:src+nn])
			m.markRange(uint64(dst), uint64(nn))
			fr.executed += crF
			return next
		}
	case wasm.MiscMemoryFill:
		c1 := b.slot(ht, 1) // n
		c2 := b.slot(ht, 2) // value
		c3 := b.slot(ht, 3) // dst
		return func(fr *t1frame) int {
			fr.executed++
			m := fr.mem
			nn := AsU32(fr.regs[c1])
			val := byte(fr.regs[c2])
			dst := AsU32(fr.regs[c3])
			if uint64(dst)+uint64(nn) > uint64(len(m.data)) {
				fr.err = newTrap(TrapMemoryOutOfBounds)
				return t1Trapped
			}
			for i := uint32(0); i < nn; i++ {
				m.data[dst+i] = val
			}
			m.markRange(uint64(dst), uint64(nn))
			fr.executed += crF
			return next
		}
	}
	// Saturating truncations: in place on the top slot, cannot trap.
	c := b.slot(ht, 1)
	cnt := 1 + crF
	switch in.misc {
	case wasm.MiscI32TruncSatF32S:
		return func(fr *t1frame) int {
			fr.regs[c] = I32(truncSatI32(float64(AsF32(fr.regs[c]))))
			fr.executed += cnt
			return next
		}
	case wasm.MiscI32TruncSatF32U:
		return func(fr *t1frame) int {
			fr.regs[c] = uint64(truncSatU32(float64(AsF32(fr.regs[c]))))
			fr.executed += cnt
			return next
		}
	case wasm.MiscI32TruncSatF64S:
		return func(fr *t1frame) int {
			fr.regs[c] = I32(truncSatI32(AsF64(fr.regs[c])))
			fr.executed += cnt
			return next
		}
	case wasm.MiscI32TruncSatF64U:
		return func(fr *t1frame) int {
			fr.regs[c] = uint64(truncSatU32(AsF64(fr.regs[c])))
			fr.executed += cnt
			return next
		}
	case wasm.MiscI64TruncSatF32S:
		return func(fr *t1frame) int {
			fr.regs[c] = I64(truncSatI64(float64(AsF32(fr.regs[c]))))
			fr.executed += cnt
			return next
		}
	case wasm.MiscI64TruncSatF32U:
		return func(fr *t1frame) int {
			fr.regs[c] = truncSatU64(float64(AsF32(fr.regs[c])))
			fr.executed += cnt
			return next
		}
	case wasm.MiscI64TruncSatF64S:
		return func(fr *t1frame) int {
			fr.regs[c] = I64(truncSatI64(AsF64(fr.regs[c])))
			fr.executed += cnt
			return next
		}
	case wasm.MiscI64TruncSatF64U:
		return func(fr *t1frame) int {
			fr.regs[c] = truncSatU64(AsF64(fr.regs[c]))
			fr.executed += cnt
			return next
		}
	}
	b.fail()
	return nil
}

package exec

import (
	"math"
	"testing"

	"wasmcontainers/internal/wasm"
)

// unaryCase drives one unary instruction with raw-bit inputs/outputs.
type unaryCase struct {
	op       wasm.Opcode
	in       wasm.ValueType
	out      wasm.ValueType
	arg      Value
	want     Value
	wantNaN  bool // compare as NaN instead of bit-equal
	is32Term bool // want is f32 NaN
}

func runUnaryCases(t *testing.T, cases []unaryCase) {
	t.Helper()
	for _, c := range cases {
		b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Op(c.op).End()
		m := buildModule(t, singleFunc([]wasm.ValueType{c.in}, []wasm.ValueType{c.out}, nil, b))
		inst := instantiate(t, m)
		res, err := inst.Call("f", c.arg)
		if err != nil {
			t.Fatalf("%s(%#x): %v", wasm.OpcodeName(c.op), c.arg, err)
		}
		got := res[0]
		if c.wantNaN {
			var isNaN bool
			if c.is32Term {
				isNaN = math.IsNaN(float64(AsF32(got)))
			} else {
				isNaN = math.IsNaN(AsF64(got))
			}
			if !isNaN {
				t.Errorf("%s(%#x) = %#x, want NaN", wasm.OpcodeName(c.op), c.arg, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("%s(%#x) = %#x, want %#x", wasm.OpcodeName(c.op), c.arg, got, c.want)
		}
	}
}

func TestF32Arithmetic(t *testing.T) {
	runUnaryCases(t, []unaryCase{
		{op: wasm.OpF32Abs, in: f32t, out: f32t, arg: F32(-2.5), want: F32(2.5)},
		{op: wasm.OpF32Neg, in: f32t, out: f32t, arg: F32(2.5), want: F32(-2.5)},
		{op: wasm.OpF32Ceil, in: f32t, out: f32t, arg: F32(1.1), want: F32(2)},
		{op: wasm.OpF32Floor, in: f32t, out: f32t, arg: F32(-1.1), want: F32(-2)},
		{op: wasm.OpF32Trunc, in: f32t, out: f32t, arg: F32(-1.9), want: F32(-1)},
		{op: wasm.OpF32Nearest, in: f32t, out: f32t, arg: F32(2.5), want: F32(2)}, // round-to-even
		{op: wasm.OpF32Nearest, in: f32t, out: f32t, arg: F32(3.5), want: F32(4)},
		{op: wasm.OpF32Sqrt, in: f32t, out: f32t, arg: F32(9), want: F32(3)},
		{op: wasm.OpF32Sqrt, in: f32t, out: f32t, arg: F32(-1), wantNaN: true, is32Term: true},
	})
}

func TestF64Rounding(t *testing.T) {
	runUnaryCases(t, []unaryCase{
		{op: wasm.OpF64Ceil, in: f64t, out: f64t, arg: F64(-0.5), want: F64(math.Copysign(0, -1))},
		{op: wasm.OpF64Nearest, in: f64t, out: f64t, arg: F64(0.5), want: F64(0)},
		{op: wasm.OpF64Nearest, in: f64t, out: f64t, arg: F64(1.5), want: F64(2)},
		{op: wasm.OpF64Trunc, in: f64t, out: f64t, arg: F64(1e100), want: F64(1e100)},
		{op: wasm.OpF64Sqrt, in: f64t, out: f64t, arg: F64(-4), wantNaN: true},
	})
}

func TestWrapAndExtend(t *testing.T) {
	runUnaryCases(t, []unaryCase{
		{op: wasm.OpI32WrapI64, in: i64t, out: i32, arg: I64(0x1_0000_0001), want: I32(1)},
		{op: wasm.OpI32WrapI64, in: i64t, out: i32, arg: I64(-1), want: I32(-1)},
		{op: wasm.OpI64ExtendI32S, in: i32, out: i64t, arg: I32(-5), want: I64(-5)},
		{op: wasm.OpI64ExtendI32U, in: i32, out: i64t, arg: I32(-5), want: I64(0xFFFFFFFB)},
		{op: wasm.OpI64Extend32S, in: i64t, out: i64t, arg: I64(0x80000000), want: I64(-2147483648)},
	})
}

func TestReinterpret(t *testing.T) {
	runUnaryCases(t, []unaryCase{
		{op: wasm.OpI32ReinterpretF32, in: f32t, out: i32, arg: F32(1.0), want: I32(0x3f800000)},
		{op: wasm.OpF32ReinterpretI32, in: i32, out: f32t, arg: I32(0x3f800000), want: F32(1.0)},
		{op: wasm.OpI64ReinterpretF64, in: f64t, out: i64t, arg: F64(1.0), want: I64(0x3ff0000000000000)},
		{op: wasm.OpF64ReinterpretI64, in: i64t, out: f64t, arg: I64(0x3ff0000000000000), want: F64(1.0)},
	})
}

func TestConvertIntToFloat(t *testing.T) {
	runUnaryCases(t, []unaryCase{
		{op: wasm.OpF64ConvertI32S, in: i32, out: f64t, arg: I32(-7), want: F64(-7)},
		{op: wasm.OpF64ConvertI32U, in: i32, out: f64t, arg: I32(-1), want: F64(4294967295)},
		{op: wasm.OpF32ConvertI64S, in: i64t, out: f32t, arg: I64(1 << 40), want: F32(float32(1 << 40))},
		{op: wasm.OpF64ConvertI64U, in: i64t, out: f64t, arg: I64(-1), want: F64(18446744073709551615.0)},
		{op: wasm.OpF32DemoteF64, in: f64t, out: f32t, arg: F64(1.5), want: F32(1.5)},
		{op: wasm.OpF64PromoteF32, in: f32t, out: f64t, arg: F32(1.5), want: F64(1.5)},
	})
}

func TestF32BinaryOps(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(wasm.OpF32Max).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{f32t, f32t}, []wasm.ValueType{f32t}, nil, b))
	inst := instantiate(t, m)
	res, _ := inst.Call("f", F32(1), F32(2))
	if AsF32(res[0]) != 2 {
		t.Fatalf("max(1,2) = %v", AsF32(res[0]))
	}
	// max(-0, +0) is +0.
	res, _ = inst.Call("f", F32(float32(math.Copysign(0, -1))), F32(0))
	if math.Signbit(float64(AsF32(res[0]))) {
		t.Fatal("max(-0, +0) returned -0")
	}
	// NaN propagates.
	res, _ = inst.Call("f", F32(float32(math.NaN())), F32(1))
	if !math.IsNaN(float64(AsF32(res[0]))) {
		t.Fatal("max(NaN, 1) not NaN")
	}

	cs := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(wasm.OpF32Copysign).End()
	m2 := buildModule(t, singleFunc([]wasm.ValueType{f32t, f32t}, []wasm.ValueType{f32t}, nil, cs))
	inst2 := instantiate(t, m2)
	res, _ = inst2.Call("f", F32(3), F32(-1))
	if AsF32(res[0]) != -3 {
		t.Fatalf("copysign(3,-1) = %v", AsF32(res[0]))
	}
}

func TestI64TruncEdges(t *testing.T) {
	b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI64TruncF64S).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{i64t}, nil, b))
	inst := instantiate(t, m)
	// -2^63 is exactly representable and valid.
	res, err := inst.Call("f", F64(-9223372036854775808.0))
	if err != nil {
		t.Fatal(err)
	}
	if AsI64(res[0]) != math.MinInt64 {
		t.Fatalf("trunc(-2^63) = %d", AsI64(res[0]))
	}
	// 2^63 overflows.
	if _, err := inst.Call("f", F64(9223372036854775808.0)); !IsTrap(err, TrapIntegerOverflow) {
		t.Fatalf("trunc(2^63): %v", err)
	}
	// Infinity overflows; NaN is invalid.
	if _, err := inst.Call("f", F64(math.Inf(1))); !IsTrap(err, TrapIntegerOverflow) {
		t.Fatalf("trunc(+inf): %v", err)
	}
	if _, err := inst.Call("f", F64(math.NaN())); !IsTrap(err, TrapInvalidConversion) {
		t.Fatalf("trunc(NaN): %v", err)
	}
}

func TestI64UnsignedDivRem(t *testing.T) {
	div := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(wasm.OpI64DivU).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i64t, i64t}, []wasm.ValueType{i64t}, nil, div))
	inst := instantiate(t, m)
	// -1 as u64 is 2^64-1.
	res, err := inst.Call("f", I64(-1), I64(2))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != (math.MaxUint64 / 2) {
		t.Fatalf("u64(-1)/2 = %d", res[0])
	}
	if _, err := inst.Call("f", I64(5), I64(0)); !IsTrap(err, TrapIntegerDivideByZero) {
		t.Fatalf("div by zero: %v", err)
	}
	// MinInt64 / -1 does NOT trap for unsigned division.
	if _, err := inst.Call("f", I64(math.MinInt64), I64(-1)); err != nil {
		t.Fatalf("unsigned MinInt64/-1 trapped: %v", err)
	}
}

func TestLocalTeeSemantics(t *testing.T) {
	// tee stores and keeps the value on the stack.
	b := new(wasm.BodyBuilder)
	b.OpU32(wasm.OpLocalGet, 0)
	b.OpU32(wasm.OpLocalTee, 1) // local1 = arg, value stays
	b.OpU32(wasm.OpLocalGet, 1)
	b.Op(wasm.OpI32Add) // arg + local1 = 2*arg
	b.End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, []wasm.ValueType{i32}, b))
	inst := instantiate(t, m)
	res, err := inst.Call("f", I32(21))
	if err != nil {
		t.Fatal(err)
	}
	if AsI32(res[0]) != 42 {
		t.Fatalf("tee result = %d", AsI32(res[0]))
	}
}

func TestIndirectCallTypeMismatchTrap(t *testing.T) {
	// Table holds a () -> i32 function; call it as (i32) -> i32.
	f0 := new(wasm.BodyBuilder).I32Const(1).End()
	main := new(wasm.BodyBuilder).
		I32Const(5). // argument
		I32Const(0). // table index
		CallIndirect(1).
		End()
	m := &wasm.Module{
		Types: []wasm.FuncType{
			{Results: []wasm.ValueType{i32}},
			{Params: []wasm.ValueType{i32}, Results: []wasm.ValueType{i32}},
		},
		Functions: []uint32{0, 1},
		Tables:    []wasm.TableType{{ElemType: wasm.ValueTypeFuncref, Limits: wasm.Limits{Min: 1}}},
		Elements:  []wasm.ElementSegment{{Offset: wasm.I32Const(0), Indices: []uint32{0}}},
		Codes: []wasm.Code{
			{Body: f0.Bytes()},
			{Body: main.Bytes()},
		},
		Exports: []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 1}},
	}
	inst := instantiate(t, buildModule(t, m))
	if _, err := inst.Call("f", I32(0)); !IsTrap(err, TrapIndirectCallTypeMismatch) {
		t.Fatalf("expected type-mismatch trap, got %v", err)
	}
}

package exec

import (
	"errors"
	"fmt"
	"math"

	"wasmcontainers/internal/wasm"
)

// Config bounds execution inside a Store.
type Config struct {
	// MaxCallDepth limits wasm call nesting; 0 means the default (2048).
	MaxCallDepth int
	// MemoryLimitPages caps every linear memory; 0 means the 4 GiB spec max.
	MemoryLimitPages uint32
	// Fuel, when positive, bounds the total number of instructions the store
	// may execute before trapping with TrapOutOfFuel.
	Fuel uint64
}

// DefaultMaxCallDepth is used when Config.MaxCallDepth is zero.
const DefaultMaxCallDepth = 2048

// Store owns all runtime state: instances, host modules, and execution
// accounting. A Store is not safe for concurrent use.
type Store struct {
	cfg         Config
	modules     map[string]*Instance
	hostModules map[string]*HostModule
	// instrCount counts executed instructions across all instances, used by
	// the engine profiles to derive deterministic timing.
	instrCount uint64
	fuelLeft   uint64
	fueled     bool
	depth      int
	// frameFree is a LIFO freelist of frame buffers (locals + operand stack)
	// recycled across calls so the interpreter does not allocate per call.
	frameFree [][]Value

	// Tier-1 execution state: one contiguous register window per call,
	// carved from t1stack. The stack is reallocated only while empty
	// (t1sp == 0), so live frames — which hold slices into it — are never
	// invalidated; a mid-stack shortfall records the wanted size in t1want
	// and falls back to tier 0 for that call.
	t1stack []Value
	t1sp    int
	t1want  int
	t1free  []*t1frame
	// lastInvokeTier records which tier served the most recent top-level
	// invoke (0 or 1), for engine-side per-tier telemetry.
	lastInvokeTier int
}

// minFrameSlots sizes freshly allocated frame buffers so small functions
// recycle well without repeated growth.
const minFrameSlots = 64

// getFrame returns a frame buffer with len == need (or more for recycled
// buffers, which callers slice down). The contents are arbitrary; run zeroes
// the locals region explicitly.
func (s *Store) getFrame(need int) []Value {
	if n := len(s.frameFree); n > 0 {
		buf := s.frameFree[n-1]
		s.frameFree = s.frameFree[:n-1]
		if cap(buf) >= need {
			return buf[:need]
		}
	}
	if need < minFrameSlots {
		need = minFrameSlots
	}
	return make([]Value, need)
}

// putFrame returns a buffer to the freelist for reuse by the next call.
func (s *Store) putFrame(buf []Value) {
	s.frameFree = append(s.frameFree, buf)
}

// spendFuel deducts one basic block's instruction count from the fuel tank,
// clamping to zero and reporting false when the block overdraws it.
func (s *Store) spendFuel(delta uint64) bool {
	if delta > s.fuelLeft {
		s.fuelLeft = 0
		return false
	}
	s.fuelLeft -= delta
	return true
}

// NewStore creates an empty store with the given configuration.
func NewStore(cfg Config) *Store {
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = DefaultMaxCallDepth
	}
	s := &Store{
		cfg:         cfg,
		modules:     make(map[string]*Instance),
		hostModules: make(map[string]*HostModule),
	}
	if cfg.Fuel > 0 {
		s.fueled = true
		s.fuelLeft = cfg.Fuel
	}
	return s
}

// InstructionCount returns the number of wasm instructions executed so far.
func (s *Store) InstructionCount() uint64 { return s.instrCount }

// LastInvokeTier reports which execution tier (0 or 1) served the most
// recent top-level invoke on this store.
func (s *Store) LastInvokeTier() int { return s.lastInvokeTier }

// AddFuel adds fuel to a fueled store.
func (s *Store) AddFuel(n uint64) {
	if s.fueled {
		s.fuelLeft += n
	}
}

// FuelLeft reports the remaining fuel (meaningful only for fueled stores).
func (s *Store) FuelLeft() uint64 { return s.fuelLeft }

// HostFunc is a function implemented by the embedder.
type HostFunc struct {
	Type wasm.FuncType
	// Fn receives the caller's context and raw argument values and returns
	// raw results matching Type.Results. Returning a *Trap or *ExitError
	// propagates it unchanged; other errors are wrapped as TrapHostError.
	Fn func(ctx *HostContext, args []Value) ([]Value, error)
}

// HostContext carries the calling instance's state into a host function.
type HostContext struct {
	Store    *Store
	Instance *Instance
	// Memory is the calling instance's memory (nil if it has none).
	Memory *Memory
}

// HostModule is a named collection of host-provided externs.
type HostModule struct {
	Name    string
	funcs   map[string]*HostFunc
	globals map[string]*GlobalVar
	mems    map[string]*Memory
	tables  map[string]*Table
}

// NewHostModule creates an empty host module registered under name.
func (s *Store) NewHostModule(name string) *HostModule {
	hm := &HostModule{
		Name:    name,
		funcs:   make(map[string]*HostFunc),
		globals: make(map[string]*GlobalVar),
		mems:    make(map[string]*Memory),
		tables:  make(map[string]*Table),
	}
	s.hostModules[name] = hm
	return hm
}

// AddFunc registers a host function under the given export name.
func (hm *HostModule) AddFunc(name string, f HostFunc) *HostModule {
	fn := f
	hm.funcs[name] = &fn
	return hm
}

// AddGlobal registers a host global.
func (hm *HostModule) AddGlobal(name string, g *GlobalVar) *HostModule {
	hm.globals[name] = g
	return hm
}

// AddMemory registers a host memory.
func (hm *HostModule) AddMemory(name string, m *Memory) *HostModule {
	hm.mems[name] = m
	return hm
}

// function is the unified runtime representation of wasm and host functions.
type function struct {
	typ       wasm.FuncType
	inst      *Instance // owning instance; nil for host functions
	host      *HostFunc
	code      *compiledCode
	numParams int
	numLocals int // locals beyond parameters
	idx       uint32
	debugName string
	// mc/mcIdx tie a module-defined function back to its shared ModuleCode
	// so call sites can pick up the tier-1 body published there. Both stay
	// zero/nil for host functions; imported wasm functions reference the
	// *function of their defining instance and so carry its ModuleCode.
	mc    *ModuleCode
	mcIdx int32
}

// Instance is an instantiated module.
type Instance struct {
	Module  *wasm.Module
	Name    string
	store   *Store
	code    *ModuleCode
	funcs   []*function
	mem     *Memory
	table   *Table
	globals []*GlobalVar
	names   wasm.NameMap
	depth   int
}

// funcLabel names a function for trap stacks: the name-section entry if
// present, else "func[N]".
func (inst *Instance) funcLabel(idx uint32) string {
	if name, ok := inst.names.FuncNames[idx]; ok {
		return "$" + name
	}
	return fmt.Sprintf("func[%d]", idx)
}

// Memory returns the instance's linear memory, or nil.
func (inst *Instance) Memory() *Memory { return inst.mem }

// Store returns the owning store.
func (inst *Instance) Store() *Store { return inst.store }

// Code returns the shared ModuleCode this instance executes from — the
// handle for tier policy and tier-up control.
func (inst *Instance) Code() *ModuleCode { return inst.code }

// errors for linking.
var (
	ErrUnknownImport    = errors.New("exec: unknown import")
	ErrIncompatibleLink = errors.New("exec: incompatible import type")
)

// Instantiate validates nothing (the module must already be validated),
// resolves imports against the store's host modules and named instances,
// allocates memories/tables/globals, applies element and data segments, runs
// the start function, and registers the instance under name (if non-empty).
// It compiles every body from scratch; callers that instantiate the same
// module repeatedly should Precompile once and use InstantiateCompiled.
func (s *Store) Instantiate(m *wasm.Module, name string) (*Instance, error) {
	mc, err := Precompile(m)
	if err != nil {
		return nil, err
	}
	return s.InstantiateCompiled(mc, name)
}

// InstantiateCompiled instantiates from a precompiled (and possibly shared)
// ModuleCode: per-instance state is allocated fresh, but the compiled bodies
// are referenced, not copied, so N instances share one artifact.
func (s *Store) InstantiateCompiled(mc *ModuleCode, name string) (*Instance, error) {
	m := mc.m
	inst := &Instance{Module: m, Name: name, store: s, code: mc, names: wasm.DecodeNameSection(m)}

	// Resolve imports in declaration order.
	for _, imp := range m.Imports {
		switch imp.Kind {
		case wasm.ExternalFunc:
			f, err := s.resolveFunc(imp)
			if err != nil {
				return nil, err
			}
			inst.funcs = append(inst.funcs, f)
		case wasm.ExternalMemory:
			mem, err := s.resolveMemory(imp)
			if err != nil {
				return nil, err
			}
			inst.mem = mem
		case wasm.ExternalTable:
			tbl, err := s.resolveTable(imp)
			if err != nil {
				return nil, err
			}
			inst.table = tbl
		case wasm.ExternalGlobal:
			g, err := s.resolveGlobal(imp)
			if err != nil {
				return nil, err
			}
			inst.globals = append(inst.globals, g)
		}
	}

	// Module-defined functions: reference the shared compiled bodies.
	nImported := len(inst.funcs)
	for i, ti := range m.Functions {
		ft := m.Types[ti]
		inst.funcs = append(inst.funcs, &function{
			typ:       ft,
			inst:      inst,
			code:      mc.codes[i],
			numParams: len(ft.Params),
			numLocals: len(m.Codes[i].Locals),
			idx:       uint32(nImported + i),
			mc:        mc,
			mcIdx:     int32(i),
		})
	}

	// Memories, tables, globals.
	for _, mt := range m.Memories {
		inst.mem = NewMemory(mt, s.cfg.MemoryLimitPages)
	}
	for _, tt := range m.Tables {
		inst.table = NewTable(tt)
	}
	for _, g := range m.Globals {
		val, err := inst.evalConst(g.Init)
		if err != nil {
			return nil, err
		}
		inst.globals = append(inst.globals, &GlobalVar{Type: g.Type, Val: val})
	}

	// Element segments: bounds-check then write (spec: all-or-nothing per
	// module in the MVP; we check all segments before applying any).
	type elemPatch struct {
		off     uint32
		indices []uint32
	}
	var elemPatches []elemPatch
	for i, seg := range m.Elements {
		offVal, err := inst.evalConst(seg.Offset)
		if err != nil {
			return nil, err
		}
		off := AsU32(offVal)
		if inst.table == nil || uint64(off)+uint64(len(seg.Indices)) > uint64(inst.table.Len()) {
			return nil, fmt.Errorf("exec: element segment %d out of bounds", i)
		}
		elemPatches = append(elemPatches, elemPatch{off: off, indices: seg.Indices})
	}
	type dataPatch struct {
		off  uint32
		data []byte
	}
	var dataPatches []dataPatch
	for i, seg := range m.Data {
		offVal, err := inst.evalConst(seg.Offset)
		if err != nil {
			return nil, err
		}
		off := AsU32(offVal)
		if inst.mem == nil || uint64(off)+uint64(len(seg.Data)) > uint64(inst.mem.Size()) {
			return nil, fmt.Errorf("exec: data segment %d out of bounds", i)
		}
		dataPatches = append(dataPatches, dataPatch{off: off, data: seg.Data})
	}
	for _, p := range elemPatches {
		for j, fi := range p.indices {
			inst.table.elems[p.off+uint32(j)] = inst.funcs[fi]
		}
	}
	for _, p := range dataPatches {
		inst.mem.Write(p.off, p.data)
	}

	if name != "" {
		s.modules[name] = inst
	}

	// Start function runs after initialization.
	if m.StartSet {
		if _, err := inst.invoke(inst.funcs[m.Start], nil); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

func (s *Store) resolveFunc(imp wasm.Import) (*function, error) {
	want := wasm.FuncType{}
	// The importing module guarantees imp.Func is a valid type index.
	if hm, ok := s.hostModules[imp.Module]; ok {
		hf, ok := hm.funcs[imp.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrUnknownImport, imp.Module, imp.Name)
		}
		return &function{typ: hf.Type, host: hf, numParams: len(hf.Type.Params), debugName: imp.Module + "." + imp.Name}, nil
	}
	if other, ok := s.modules[imp.Module]; ok {
		for _, e := range other.Module.Exports {
			if e.Kind == wasm.ExternalFunc && e.Name == imp.Name {
				return other.funcs[e.Index], nil
			}
		}
	}
	_ = want
	return nil, fmt.Errorf("%w: %s.%s", ErrUnknownImport, imp.Module, imp.Name)
}

func (s *Store) resolveMemory(imp wasm.Import) (*Memory, error) {
	if hm, ok := s.hostModules[imp.Module]; ok {
		if mem, ok := hm.mems[imp.Name]; ok {
			if mem.Pages() < imp.Memory.Limits.Min {
				return nil, fmt.Errorf("%w: memory %s.%s too small", ErrIncompatibleLink, imp.Module, imp.Name)
			}
			return mem, nil
		}
	}
	if other, ok := s.modules[imp.Module]; ok {
		for _, e := range other.Module.Exports {
			if e.Kind == wasm.ExternalMemory && e.Name == imp.Name && other.mem != nil {
				return other.mem, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: memory %s.%s", ErrUnknownImport, imp.Module, imp.Name)
}

func (s *Store) resolveTable(imp wasm.Import) (*Table, error) {
	if hm, ok := s.hostModules[imp.Module]; ok {
		if tbl, ok := hm.tables[imp.Name]; ok {
			return tbl, nil
		}
	}
	if other, ok := s.modules[imp.Module]; ok {
		for _, e := range other.Module.Exports {
			if e.Kind == wasm.ExternalTable && e.Name == imp.Name && other.table != nil {
				return other.table, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: table %s.%s", ErrUnknownImport, imp.Module, imp.Name)
}

func (s *Store) resolveGlobal(imp wasm.Import) (*GlobalVar, error) {
	if hm, ok := s.hostModules[imp.Module]; ok {
		if g, ok := hm.globals[imp.Name]; ok {
			if g.Type.ValType != imp.Global.ValType {
				return nil, fmt.Errorf("%w: global %s.%s", ErrIncompatibleLink, imp.Module, imp.Name)
			}
			return g, nil
		}
	}
	if other, ok := s.modules[imp.Module]; ok {
		for _, e := range other.Module.Exports {
			if e.Kind == wasm.ExternalGlobal && e.Name == imp.Name {
				return other.globals[e.Index], nil
			}
		}
	}
	return nil, fmt.Errorf("%w: global %s.%s", ErrUnknownImport, imp.Module, imp.Name)
}

// evalConst evaluates a constant initializer in this instance.
func (inst *Instance) evalConst(ce wasm.ConstExpr) (Value, error) {
	switch ce.Op {
	case wasm.ConstI32, wasm.ConstF32:
		return ce.Value & math.MaxUint32, nil
	case wasm.ConstI64, wasm.ConstF64:
		return ce.Value, nil
	case wasm.ConstGlobalGet:
		gi := int(ce.Value)
		if gi >= len(inst.globals) {
			return 0, fmt.Errorf("exec: constant expression references unknown global %d", gi)
		}
		return inst.globals[gi].Get(), nil
	}
	return 0, errors.New("exec: bad constant expression")
}

// Call invokes the exported function name with raw argument values.
func (inst *Instance) Call(name string, args ...Value) ([]Value, error) {
	idx, ok := inst.Module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("exec: no exported function %q", name)
	}
	f := inst.funcs[idx]
	if len(args) != len(f.typ.Params) {
		return nil, fmt.Errorf("exec: %q expects %d arguments, got %d", name, len(f.typ.Params), len(args))
	}
	return inst.invoke(f, args)
}

// FuncType returns the signature of the exported function name.
func (inst *Instance) FuncType(name string) (wasm.FuncType, bool) {
	idx, ok := inst.Module.ExportedFunc(name)
	if !ok {
		return wasm.FuncType{}, false
	}
	return inst.funcs[idx].typ, true
}

// GlobalByName returns the exported global, or nil.
func (inst *Instance) GlobalByName(name string) *GlobalVar {
	for _, e := range inst.Module.Exports {
		if e.Kind == wasm.ExternalGlobal && e.Name == name {
			return inst.globals[e.Index]
		}
	}
	return nil
}

// Package exec implements a WebAssembly interpreter over modules decoded by
// the wasm package: stores, instances, linear memories, tables, globals, host
// functions, and a pre-compiled stack interpreter with resolved branch
// targets. It supports the MVP instruction set plus sign-extension and
// saturating float-to-int conversions, deterministic traps, call-depth
// limits, and optional fuel metering.
package exec

import (
	"math"

	"wasmcontainers/internal/wasm"
)

// Value is a raw 64-bit representation of any WebAssembly value. Integer
// values are stored directly (i32 zero-extended); floats are stored as their
// IEEE-754 bit patterns.
type Value = uint64

// I32 converts a Go int32 into a Value.
func I32(v int32) Value { return uint64(uint32(v)) }

// I64 converts a Go int64 into a Value.
func I64(v int64) Value { return uint64(v) }

// F32 converts a Go float32 into a Value.
func F32(v float32) Value { return uint64(math.Float32bits(v)) }

// F64 converts a Go float64 into a Value.
func F64(v float64) Value { return math.Float64bits(v) }

// AsI32 extracts an i32 from a Value.
func AsI32(v Value) int32 { return int32(uint32(v)) }

// AsU32 extracts an unsigned i32 from a Value.
func AsU32(v Value) uint32 { return uint32(v) }

// AsI64 extracts an i64 from a Value.
func AsI64(v Value) int64 { return int64(v) }

// AsF32 extracts an f32 from a Value.
func AsF32(v Value) float32 { return math.Float32frombits(uint32(v)) }

// AsF64 extracts an f64 from a Value.
func AsF64(v Value) float64 { return math.Float64frombits(v) }

// ZeroOf returns the zero value of the given type (all types zero to 0 bits).
func ZeroOf(t wasm.ValueType) Value { return 0 }

package exec

import (
	"fmt"

	"wasmcontainers/internal/wasm"
)

// ModuleCode is the compiled, executable form of a validated module: every
// function body lowered to the interpreter's pre-decoded instruction format.
// It is immutable after Precompile and safe to share between any number of
// stores and instances concurrently — this is what the module-compilation
// cache hands out so N instances of the same module compile once and share
// one copy of compiled-code bytes, mirroring the paper's shared-runtime-code
// memory accounting.
type ModuleCode struct {
	m         *wasm.Module
	codes     []*compiledCode // one per module-defined function
	codeBytes int64
}

// Precompile lowers every function body of a validated module. The module
// must already have passed wasm.Validate; Precompile does not re-check.
func Precompile(m *wasm.Module) (*ModuleCode, error) {
	nImported := 0
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ExternalFunc {
			nImported++
		}
	}
	mc := &ModuleCode{m: m, codes: make([]*compiledCode, len(m.Functions))}
	for i, ti := range m.Functions {
		ft := m.Types[ti]
		cc, err := compileBody(m, ft, &m.Codes[i])
		if err != nil {
			return nil, fmt.Errorf("exec: compiling function %d: %w", nImported+i, err)
		}
		mc.codes[i] = cc
		mc.codeBytes += cc.sizeBytes()
	}
	return mc, nil
}

// Module returns the decoded module this code was compiled from.
func (mc *ModuleCode) Module() *wasm.Module { return mc.m }

// CodeBytes is the accounted size of the compiled artifact: what one copy of
// the lowered instruction streams and branch tables costs in memory. The
// cache's LRU bound and the engines' shared-code accounting both use it.
func (mc *ModuleCode) CodeBytes() int64 { return mc.codeBytes }

// NumFuncs returns the number of module-defined (non-imported) functions.
func (mc *ModuleCode) NumFuncs() int { return len(mc.codes) }

package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wasmcontainers/internal/wasm"
)

// ModuleCode is the compiled, executable form of a validated module: every
// function body lowered to the interpreter's pre-decoded instruction format.
// The compiled code is immutable after Precompile and safe to share between
// any number of stores and instances concurrently — this is what the
// module-compilation cache hands out so N instances of the same module
// compile once and share one copy of compiled-code bytes, mirroring the
// paper's shared-runtime-code memory accounting. The lone mutable slot is
// the lazily captured baseline memory image (guarded by baseMu): the
// memory-side twin of the code artifact, captured from the first instance
// and shared by reference with every later one.
type ModuleCode struct {
	m         *wasm.Module
	codes     []*compiledCode // one per module-defined function
	codeBytes int64

	baseMu   sync.Mutex
	baseline *BaselineImage

	// Tier-1 state. The published artifact is an atomic pointer so the
	// single-threaded stores sharing this ModuleCode pick it up without
	// locking on the invoke path; lowering itself is singleflighted under
	// tierMu. Hotness counters are per module-defined function and are
	// only touched by top-level invokes running at tier 0.
	policy   atomic.Pointer[TierPolicy]
	tier1    atomic.Pointer[Tier1Code]
	tierMu   sync.Mutex
	tierUps  atomic.Uint64
	onTierUp func(tc *Tier1Code, lowered time.Duration) // guarded by tierMu
	onDrop   func(tc *Tier1Code)                        // guarded by tierMu
	hot      []hotCount
}

// hotCount tracks one function's top-level invoke count and the instructions
// those invokes executed (including callees), the two signals the tier-up
// policy thresholds.
type hotCount struct {
	invokes atomic.Uint64
	instrs  atomic.Uint64
}

// TierMode selects how the second execution tier is engaged.
type TierMode int32

const (
	// TierModeOff never lowers to tier 1.
	TierModeOff TierMode = iota
	// TierModeHotness lowers the module once any function's hotness
	// counters cross the policy thresholds.
	TierModeHotness
	// TierModeEager expects the embedder to call EnsureTier1 up front
	// (at compile/instantiate time); the counters are never consulted.
	TierModeEager
)

// TierPolicy configures hotness-triggered tier-up. A zero threshold disables
// that criterion; with both zero, the first tier-0 invoke triggers tier-up.
type TierPolicy struct {
	Mode TierMode
	// InvokeThreshold tiers up once a function has served this many
	// top-level invokes.
	InvokeThreshold uint64
	// InstrThreshold tiers up once a function's top-level invokes have
	// executed this many instructions in total.
	InstrThreshold uint64
}

// DefaultTierPolicy is the hotness policy engines use unless overridden:
// tier up after 8 warm invokes or 256k executed instructions, whichever
// comes first.
func DefaultTierPolicy() TierPolicy {
	return TierPolicy{Mode: TierModeHotness, InvokeThreshold: 8, InstrThreshold: 1 << 18}
}

// Precompile lowers every function body of a validated module. The module
// must already have passed wasm.Validate; Precompile does not re-check.
func Precompile(m *wasm.Module) (*ModuleCode, error) {
	nImported := 0
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ExternalFunc {
			nImported++
		}
	}
	mc := &ModuleCode{
		m:     m,
		codes: make([]*compiledCode, len(m.Functions)),
		hot:   make([]hotCount, len(m.Functions)),
	}
	for i, ti := range m.Functions {
		ft := m.Types[ti]
		cc, err := compileBody(m, ft, &m.Codes[i])
		if err != nil {
			return nil, fmt.Errorf("exec: compiling function %d: %w", nImported+i, err)
		}
		mc.codes[i] = cc
		mc.codeBytes += cc.sizeBytes()
	}
	return mc, nil
}

// Module returns the decoded module this code was compiled from.
func (mc *ModuleCode) Module() *wasm.Module { return mc.m }

// CodeBytes is the accounted size of the compiled artifact: what one copy of
// the lowered instruction streams and branch tables costs in memory. The
// cache's LRU bound and the engines' shared-code accounting both use it.
func (mc *ModuleCode) CodeBytes() int64 { return mc.codeBytes }

// NumFuncs returns the number of module-defined (non-imported) functions.
func (mc *ModuleCode) NumFuncs() int { return len(mc.codes) }

// EnsureBaseline gives mem the module's shared baseline memory image. The
// first call captures mem's current (post-instantiation) contents as the
// image; later calls attach the same image by reference, so N instances of
// one digest share one copy and are individually charged only their dirty
// pages. Instantiation is deterministic, so every fresh instance arrives
// here with identical contents. Returns the shared image, or nil when mem is
// nil or its size no longer matches the captured image (the memory then
// keeps its own private baseline semantics).
func (mc *ModuleCode) EnsureBaseline(mem *Memory) *BaselineImage {
	if mem == nil {
		return nil
	}
	mc.baseMu.Lock()
	defer mc.baseMu.Unlock()
	if mc.baseline == nil {
		mc.baseline = mem.CaptureBaseline()
		return mc.baseline
	}
	if !mem.AttachBaseline(mc.baseline) {
		return nil
	}
	return mc.baseline
}

// BaselineBytes is the accounted size of the shared baseline image, 0 until
// a first instance has been captured. Like CodeBytes it is charged once per
// node regardless of instance count.
func (mc *ModuleCode) BaselineBytes() int64 {
	mc.baseMu.Lock()
	defer mc.baseMu.Unlock()
	if mc.baseline == nil {
		return 0
	}
	return mc.baseline.Bytes()
}

// SetTierPolicy installs the tier-up policy consulted by top-level invokes.
func (mc *ModuleCode) SetTierPolicy(p TierPolicy) { mc.policy.Store(&p) }

// TierPolicyValue returns the installed policy (zero value: TierModeOff).
func (mc *ModuleCode) TierPolicyValue() TierPolicy {
	if p := mc.policy.Load(); p != nil {
		return *p
	}
	return TierPolicy{}
}

// noteInvoke records one top-level tier-0 invoke of function i that executed
// instrs instructions (callees included), and reports whether the hotness
// policy says the module should tier up now.
func (mc *ModuleCode) noteInvoke(i int32, instrs uint64) bool {
	p := mc.policy.Load()
	if p == nil || p.Mode != TierModeHotness {
		return false
	}
	h := &mc.hot[i]
	inv := h.invokes.Add(1)
	tot := h.instrs.Add(instrs)
	if p.InvokeThreshold == 0 && p.InstrThreshold == 0 {
		return true
	}
	return (p.InvokeThreshold > 0 && inv >= p.InvokeThreshold) ||
		(p.InstrThreshold > 0 && tot >= p.InstrThreshold)
}

// EnsureTier1 publishes the tier-1 artifact for this module, lowering it on
// first call (singleflight: concurrent callers block on one lowering and all
// observe the same artifact). Reports whether this call performed the
// lowering.
func (mc *ModuleCode) EnsureTier1() (*Tier1Code, bool) {
	if tc := mc.tier1.Load(); tc != nil {
		return tc, false
	}
	mc.tierMu.Lock()
	if tc := mc.tier1.Load(); tc != nil {
		mc.tierMu.Unlock()
		return tc, false
	}
	start := time.Now()
	tc := lowerTier1(mc)
	mc.tier1.Store(tc)
	mc.tierUps.Add(1)
	cb := mc.onTierUp
	mc.tierMu.Unlock()
	// The listener runs outside tierMu: it typically records the artifact in
	// the module cache, whose eviction pass may take another module's tierMu.
	if cb != nil {
		cb(tc, time.Since(start))
	}
	return tc, true
}

// DropTier1 unpublishes the tier-1 artifact (cache eviction path): instances
// transparently fall back to tier 0 on their next invoke. The hotness
// counters are reset so the module must re-earn tier-up, preventing an
// evict/re-lower thrash loop under memory pressure.
func (mc *ModuleCode) DropTier1() {
	mc.tierMu.Lock()
	tc := mc.tier1.Load()
	if tc == nil {
		mc.tierMu.Unlock()
		return
	}
	mc.tier1.Store(nil)
	for i := range mc.hot {
		mc.hot[i].invokes.Store(0)
		mc.hot[i].instrs.Store(0)
	}
	cb := mc.onDrop
	mc.tierMu.Unlock()
	if cb != nil {
		cb(tc)
	}
}

// Tier1 returns the currently published tier-1 artifact, or nil.
func (mc *ModuleCode) Tier1() *Tier1Code { return mc.tier1.Load() }

// Tier1Bytes is the accounted size of the published tier-1 artifact (0 when
// not lowered). Like CodeBytes it is charged once per node.
func (mc *ModuleCode) Tier1Bytes() int64 {
	if tc := mc.tier1.Load(); tc != nil {
		return tc.bytes
	}
	return 0
}

// TierUps counts how many times this module has been lowered to tier 1
// (more than once only after DropTier1).
func (mc *ModuleCode) TierUps() uint64 { return mc.tierUps.Load() }

// SetTierUpListener registers callbacks fired when an artifact is published
// (onUp, with the lowering wall time) and unpublished (onDrop). Either may
// be nil. Callbacks run under the tier mutex; they must not call back into
// EnsureTier1/DropTier1 on this ModuleCode.
func (mc *ModuleCode) SetTierUpListener(onUp func(tc *Tier1Code, lowered time.Duration), onDrop func(tc *Tier1Code)) {
	mc.tierMu.Lock()
	defer mc.tierMu.Unlock()
	mc.onTierUp = onUp
	mc.onDrop = onDrop
}

// HotStats returns function i's hotness counters (top-level invokes and the
// instructions they executed).
func (mc *ModuleCode) HotStats(i int) (invokes, instrs uint64) {
	if i < 0 || i >= len(mc.hot) {
		return 0, 0
	}
	return mc.hot[i].invokes.Load(), mc.hot[i].instrs.Load()
}

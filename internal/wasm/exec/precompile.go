package exec

import (
	"fmt"
	"sync"

	"wasmcontainers/internal/wasm"
)

// ModuleCode is the compiled, executable form of a validated module: every
// function body lowered to the interpreter's pre-decoded instruction format.
// The compiled code is immutable after Precompile and safe to share between
// any number of stores and instances concurrently — this is what the
// module-compilation cache hands out so N instances of the same module
// compile once and share one copy of compiled-code bytes, mirroring the
// paper's shared-runtime-code memory accounting. The lone mutable slot is
// the lazily captured baseline memory image (guarded by baseMu): the
// memory-side twin of the code artifact, captured from the first instance
// and shared by reference with every later one.
type ModuleCode struct {
	m         *wasm.Module
	codes     []*compiledCode // one per module-defined function
	codeBytes int64

	baseMu   sync.Mutex
	baseline *BaselineImage
}

// Precompile lowers every function body of a validated module. The module
// must already have passed wasm.Validate; Precompile does not re-check.
func Precompile(m *wasm.Module) (*ModuleCode, error) {
	nImported := 0
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ExternalFunc {
			nImported++
		}
	}
	mc := &ModuleCode{m: m, codes: make([]*compiledCode, len(m.Functions))}
	for i, ti := range m.Functions {
		ft := m.Types[ti]
		cc, err := compileBody(m, ft, &m.Codes[i])
		if err != nil {
			return nil, fmt.Errorf("exec: compiling function %d: %w", nImported+i, err)
		}
		mc.codes[i] = cc
		mc.codeBytes += cc.sizeBytes()
	}
	return mc, nil
}

// Module returns the decoded module this code was compiled from.
func (mc *ModuleCode) Module() *wasm.Module { return mc.m }

// CodeBytes is the accounted size of the compiled artifact: what one copy of
// the lowered instruction streams and branch tables costs in memory. The
// cache's LRU bound and the engines' shared-code accounting both use it.
func (mc *ModuleCode) CodeBytes() int64 { return mc.codeBytes }

// NumFuncs returns the number of module-defined (non-imported) functions.
func (mc *ModuleCode) NumFuncs() int { return len(mc.codes) }

// EnsureBaseline gives mem the module's shared baseline memory image. The
// first call captures mem's current (post-instantiation) contents as the
// image; later calls attach the same image by reference, so N instances of
// one digest share one copy and are individually charged only their dirty
// pages. Instantiation is deterministic, so every fresh instance arrives
// here with identical contents. Returns the shared image, or nil when mem is
// nil or its size no longer matches the captured image (the memory then
// keeps its own private baseline semantics).
func (mc *ModuleCode) EnsureBaseline(mem *Memory) *BaselineImage {
	if mem == nil {
		return nil
	}
	mc.baseMu.Lock()
	defer mc.baseMu.Unlock()
	if mc.baseline == nil {
		mc.baseline = mem.CaptureBaseline()
		return mc.baseline
	}
	if !mem.AttachBaseline(mc.baseline) {
		return nil
	}
	return mc.baseline
}

// BaselineBytes is the accounted size of the shared baseline image, 0 until
// a first instance has been captured. Like CodeBytes it is charged once per
// node regardless of instance count.
func (mc *ModuleCode) BaselineBytes() int64 {
	mc.baseMu.Lock()
	defer mc.baseMu.Unlock()
	if mc.baseline == nil {
		return 0
	}
	return mc.baseline.Bytes()
}

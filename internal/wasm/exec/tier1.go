package exec

// Tier-1 execution: a direct-threaded, register-form lowering of the fused
// tier-0 instruction stream.
//
// Each instruction becomes one Go closure with its immediates, operand slots,
// and successor indices captured at lowering time, so the hot loop is just
// `pc = ops[pc](fr)`: no central switch, no per-step operand decoding, and no
// operand-stack pointer — the dataflow pass in tier1_lower.go assigns every
// stack position a fixed register slot. Structure markers (block/loop/end)
// and drops vanish from the instruction stream entirely, with their
// instruction counts folded into the surviving neighbors so
// Store.InstructionCount and the block-granularity fuel schedule are
// bit-identical to tier 0.
//
// Frames live in one contiguous per-store register stack: a call carves the
// callee's window so its parameter slots alias the caller's argument slots,
// making wasm->wasm calls zero-copy in both directions (the return closure
// parks results in slots [0,nr), which are the caller's argument slots). The
// stack is only reallocated while empty, so live frames never dangle; a
// mid-stack shortfall records the wanted size and falls back to tier 0 for
// that one call.

// Sentinel pc values returned by closures to leave the dispatch loop.
const (
	t1Return  = -1
	t1Trapped = -2 // trap or host error parked in fr.err
)

// t1op executes one lowered instruction and returns the next instruction
// index (or a sentinel). Closures capture only static per-instruction data,
// never per-instance state, so one artifact serves every instance.
type t1op func(fr *t1frame) int

// t1func is one function body lowered to tier 1.
type t1func struct {
	ops   []t1op
	np    int    // parameters
	nl    int    // parameters + declared locals
	nr    int    // results
	slots int    // nl + operand-stack bound: the frame's register window
	lead  uint64 // structure markers preceding the first real instruction
}

// Tier1Code is the per-module tier-1 artifact published on ModuleCode.
// A nil entry means that function could not be lowered (e.g. its heights
// were not statically inferable) and permanently stays at tier 0.
type Tier1Code struct {
	funcs   []*t1func
	bytes   int64
	lowered int
}

// Bytes is the accounted resident size of the artifact, what the module
// cache's LRU bound and the per-node shared-artifact accounting charge.
func (tc *Tier1Code) Bytes() int64 { return tc.bytes }

// Lowered reports how many functions were actually lowered.
func (tc *Tier1Code) Lowered() int { return tc.lowered }

// NumFuncs reports the number of module-defined functions covered.
func (tc *Tier1Code) NumFuncs() int { return len(tc.funcs) }

// t1frame is the mutable state threaded through every closure: the frame's
// register window plus the same per-frame instruction/fuel accounting the
// tier-0 loop keeps in locals. Frames are pooled on the store.
type t1frame struct {
	regs []Value // [0,nl): locals; [nl,slots): operand-stack registers
	base int     // offset of regs within store.t1stack
	inst *Instance
	mem  *Memory
	s    *Store
	// executed/charged mirror tier 0's per-frame counters exactly:
	// executed counts retired original instructions (markers included via
	// folded credits), charged tracks the portion already drawn as fuel.
	executed uint64
	charged  uint64
	err      error
}

// chargeFuel draws the current basic block's instruction count from the fuel
// tank at a control transfer, exactly like the tier-0 charge points. Reports
// false on exhaustion (the caller raises TrapOutOfFuel). Kept tiny so it
// inlines into the branch closures.
func (fr *t1frame) chargeFuel() bool {
	s := fr.s
	if !s.fueled {
		return true
	}
	d := fr.executed - fr.charged
	fr.charged = fr.executed
	if d > s.fuelLeft {
		s.fuelLeft = 0
		return false
	}
	s.fuelLeft -= d
	return true
}

// t1MinStack is the initial register-stack size in slots (here 128 KiB):
// large enough that typical call trees never trigger a mid-stack fallback.
const t1MinStack = 1 << 14

func (s *Store) getT1Frame() *t1frame {
	if n := len(s.t1free); n > 0 {
		fr := s.t1free[n-1]
		s.t1free = s.t1free[:n-1]
		return fr
	}
	return &t1frame{}
}

func (s *Store) putT1Frame(fr *t1frame) {
	fr.regs = nil
	fr.inst = nil
	fr.mem = nil
	fr.err = nil
	s.t1free = append(s.t1free, fr)
}

// t1body resolves f's tier-1 body, or nil when f is a host function, its
// module has not tiered up, or this particular function was not lowerable.
func (f *function) t1body() *t1func {
	mc := f.mc
	if mc == nil {
		return nil
	}
	tc := mc.tier1.Load()
	if tc == nil {
		return nil
	}
	return tc.funcs[f.mcIdx]
}

// t1Call runs f's tier-1 body as a top-level call (from Instance.invoke,
// which has already done the depth accounting). Returns ran=false — with the
// wanted stack size recorded for the next empty-stack grow — when the
// register stack cannot host the frame, in which case the caller runs tier 0.
func (s *Store) t1Call(f *function, t1 *t1func, args, res []Value) (ran bool, err error) {
	base := s.t1sp
	need := base + t1.slots
	if base == 0 {
		if w := len(s.t1stack); need > w || s.t1want > w {
			n := 2 * w
			if n < t1MinStack {
				n = t1MinStack
			}
			if n < need {
				n = need
			}
			if n < s.t1want {
				n = s.t1want
			}
			s.t1stack = make([]Value, n)
			s.t1want = 0
		}
	} else if need > len(s.t1stack) {
		if need > s.t1want {
			s.t1want = need
		}
		return false, nil
	}
	fr := s.getT1Frame()
	fr.s = s
	fr.inst = f.inst
	fr.mem = f.inst.mem
	fr.base = base
	regs := s.t1stack[base:need]
	fr.regs = regs
	n := copy(regs[:t1.nl], args)
	for i := n; i < t1.nl; i++ {
		regs[i] = 0
	}
	s.t1sp = need
	err = s.execT1(fr, t1)
	s.t1sp = base
	s.putT1Frame(fr)
	if err == nil {
		copy(res, regs[:t1.nr])
	}
	return true, err
}

// execT1 drives one frame through the dispatch loop, with the same entry
// fuel check and exit accounting flush as the tier-0 run.
func (s *Store) execT1(fr *t1frame, t1 *t1func) error {
	if s.fueled && s.fuelLeft == 0 {
		return newTrap(TrapOutOfFuel)
	}
	fr.executed = t1.lead
	fr.charged = 0
	ops := t1.ops
	pc := 0
	for pc >= 0 {
		pc = ops[pc](fr)
	}
	s.instrCount += fr.executed
	if s.fueled {
		if d := fr.executed - fr.charged; d > s.fuelLeft {
			s.fuelLeft = 0
		} else {
			s.fuelLeft -= d
		}
	}
	if pc == t1Trapped {
		err := fr.err
		fr.err = nil
		return err
	}
	return nil
}

// callFunc dispatches a nested call from inside a tier-1 frame. The callee's
// arguments sit at fr.regs[aslot:aslot+np] and its results land in
// fr.regs[aslot:aslot+nr], exactly the overlap contract of the tier-0 call
// sites. Tier-1 callees take the zero-copy fast path; host functions,
// un-lowered callees, and register-stack shortfalls all route through the
// shared invokeNested, which preserves tier-0 semantics bit for bit.
func (fr *t1frame) callFunc(callee *function, aslot int) error {
	if callee.host == nil {
		if t1 := callee.t1body(); t1 != nil {
			if done, err := fr.s.t1FastCall(fr, callee, t1, aslot); done {
				return err
			}
		}
	}
	np := callee.numParams
	nr := len(callee.typ.Results)
	return fr.inst.invokeNested(callee, fr.regs[aslot:aslot+np], fr.regs[aslot:aslot+nr])
}

// t1FastCall runs a tier-1 callee in place: its register window starts at
// the caller's first argument slot, so parameters and results are never
// copied. The store's stack pointer is raised over the callee's window for
// the duration so a host callback re-entering t1Call cannot overlap it.
// done=false means the stack could not host the callee here (the caller
// falls back to invokeNested).
func (s *Store) t1FastCall(fr *t1frame, callee *function, t1 *t1func, aslot int) (done bool, err error) {
	cbase := fr.base + aslot
	need := cbase + t1.slots
	if need > len(s.t1stack) {
		if need > s.t1want {
			s.t1want = need
		}
		return false, nil
	}
	s.depth++
	if s.depth > s.cfg.MaxCallDepth {
		s.depth--
		return true, newTrap(TrapCallStackExhausted)
	}
	savedSp := s.t1sp
	s.t1sp = need
	cfr := s.getT1Frame()
	cfr.s = s
	cfr.inst = callee.inst
	cfr.mem = callee.inst.mem
	cfr.base = cbase
	regs := s.t1stack[cbase:need]
	cfr.regs = regs
	for i := t1.np; i < t1.nl; i++ {
		regs[i] = 0
	}
	err = s.execT1(cfr, t1)
	s.putT1Frame(cfr)
	s.t1sp = savedSp
	s.depth--
	if err != nil {
		return true, pushFrame(err, callee)
	}
	return true, nil
}

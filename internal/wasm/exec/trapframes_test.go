package exec

import (
	"strings"
	"testing"

	"wasmcontainers/internal/wasm"
)

// TestDeepRecursionTrapKeepsEntryPoint exercises the bounded trap stack: a
// deep recursion must keep both the innermost frames (where the trap fired)
// and the outermost frames (the entry point), eliding the repetitive middle.
func TestDeepRecursionTrapKeepsEntryPoint(t *testing.T) {
	entry := new(wasm.BodyBuilder).OpU32(wasm.OpCall, 1).End()
	rec := new(wasm.BodyBuilder).OpU32(wasm.OpCall, 1).End()
	m := buildModule(t, &wasm.Module{
		Types:     []wasm.FuncType{{}},
		Functions: []uint32{0, 0},
		Codes: []wasm.Code{
			{Body: entry.Bytes()},
			{Body: rec.Bytes()},
		},
		Exports: []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 0}},
	})
	s := NewStore(Config{MaxCallDepth: 100})
	inst, err := s.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Call("f")
	if !IsTrap(err, TrapCallStackExhausted) {
		t.Fatalf("expected stack exhaustion, got %v", err)
	}
	trap := err.(*Trap)
	if len(trap.Frames) != maxTrapFrames {
		t.Fatalf("got %d frames, want %d", len(trap.Frames), maxTrapFrames)
	}
	if trap.Elided == 0 {
		t.Fatal("deep recursion did not elide any frames")
	}
	// Innermost frames are the recursing function; the final frame must be
	// the entry point (the old behaviour dropped it).
	if trap.Frames[0] != "func[1]" {
		t.Fatalf("innermost frame = %q, want func[1]", trap.Frames[0])
	}
	if got := trap.Frames[maxTrapFrames-1]; got != "func[0]" {
		t.Fatalf("outermost frame = %q, want func[0] (entry point)", got)
	}
	if msg := trap.Error(); !strings.Contains(msg, "frames elided") {
		t.Fatalf("trap message lacks elision marker:\n%s", msg)
	}
	// Shallow traps are unchanged: no elision, frames in order.
	s2 := NewStore(Config{MaxCallDepth: 10})
	inst2, err := s2.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst2.Call("f")
	trap2 := err.(*Trap)
	if trap2 == nil || trap2.Elided != 0 || len(trap2.Frames) != 10 {
		t.Fatalf("shallow trap: frames=%d elided=%d", len(trap2.Frames), trap2.Elided)
	}
}

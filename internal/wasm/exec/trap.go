package exec

import "fmt"

// TrapCode identifies the reason a WebAssembly computation trapped.
type TrapCode int

// Trap codes, matching the spec's runtime errors.
const (
	TrapUnreachable TrapCode = iota
	TrapMemoryOutOfBounds
	TrapTableOutOfBounds
	TrapIndirectCallTypeMismatch
	TrapUninitializedElement
	TrapIntegerDivideByZero
	TrapIntegerOverflow
	TrapInvalidConversion
	TrapCallStackExhausted
	TrapOutOfFuel
	TrapHostError
)

var trapMessages = map[TrapCode]string{
	TrapUnreachable:              "unreachable executed",
	TrapMemoryOutOfBounds:        "out of bounds memory access",
	TrapTableOutOfBounds:         "undefined element",
	TrapIndirectCallTypeMismatch: "indirect call type mismatch",
	TrapUninitializedElement:     "uninitialized element",
	TrapIntegerDivideByZero:      "integer divide by zero",
	TrapIntegerOverflow:          "integer overflow",
	TrapInvalidConversion:        "invalid conversion to integer",
	TrapCallStackExhausted:       "call stack exhausted",
	TrapOutOfFuel:                "all fuel consumed",
	TrapHostError:                "host function error",
}

// Trap is the error produced when execution aborts.
type Trap struct {
	Code TrapCode
	// Wrapped holds the underlying host error for TrapHostError.
	Wrapped error
	// Frames is the wasm call stack at the trap, innermost first, collected
	// as the trap unwinds (function names come from the module's name
	// section, falling back to "func[N]"). Deep stacks keep the innermost
	// frames and the outermost frames (so the entry point survives), with
	// Elided counting the middle frames that were dropped.
	Frames []string
	// Elided is the number of middle frames dropped from Frames.
	Elided int
}

// Error implements the error interface.
func (t *Trap) Error() string {
	msg, ok := trapMessages[t.Code]
	if !ok {
		msg = fmt.Sprintf("trap %d", t.Code)
	}
	out := "wasm trap: " + msg
	if t.Wrapped != nil {
		out = fmt.Sprintf("wasm trap: %s: %v", msg, t.Wrapped)
	}
	if len(t.Frames) > 0 {
		out += "\n  wasm stack:"
		for i, f := range t.Frames {
			if t.Elided > 0 && i == trapFrameHead {
				out += fmt.Sprintf("\n    ... %d frames elided ...", t.Elided)
			}
			out += "\n    " + f
		}
	}
	return out
}

// Unwrap exposes the wrapped host error.
func (t *Trap) Unwrap() error { return t.Wrapped }

func newTrap(code TrapCode) *Trap { return &Trap{Code: code} }

// IsTrap reports whether err is a Trap with the given code.
func IsTrap(err error, code TrapCode) bool {
	t, ok := err.(*Trap)
	return ok && t.Code == code
}

// ExitError is returned when the guest requests termination (e.g. WASI
// proc_exit). It is not a trap: a zero code is a successful exit.
type ExitError struct {
	Code uint32
}

// Error implements the error interface.
func (e *ExitError) Error() string { return fmt.Sprintf("module exited with code %d", e.Code) }

package exec

import (
	"fmt"
	"math"
	"math/bits"

	"wasmcontainers/internal/wasm"
)

// invoke runs f with the given arguments, dispatching to host functions, the
// tier-1 direct-threaded body when one has been published, or the tier-0
// interpreter loop. This is the top-level entry (Instance.Call and start
// functions); it is also where hotness is recorded and the tier-up policy
// evaluated, so nested calls — which can number tens of thousands per
// invoke — never touch the counters.
func (inst *Instance) invoke(f *function, args []Value) ([]Value, error) {
	s := inst.store
	if f.host != nil {
		res, err := inst.callHost(f.host, args)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	s.depth++
	if s.depth > s.cfg.MaxCallDepth {
		s.depth--
		return nil, newTrap(TrapCallStackExhausted)
	}
	res := make([]Value, len(f.typ.Results))
	var err error
	ran1 := false
	var tc *Tier1Code
	if mc := f.mc; mc != nil {
		if tc = mc.tier1.Load(); tc != nil {
			if t1 := tc.funcs[f.mcIdx]; t1 != nil {
				ran1, err = s.t1Call(f, t1, args, res)
			}
		}
	}
	if !ran1 {
		before := s.instrCount
		err = f.inst.run(f, args, res)
		if f.mc != nil && tc == nil {
			if f.mc.noteInvoke(f.mcIdx, s.instrCount-before) {
				f.mc.EnsureTier1()
			}
		}
	}
	s.lastInvokeTier = 0
	if ran1 {
		s.lastInvokeTier = 1
	}
	s.depth--
	if err != nil {
		return nil, pushFrame(err, f)
	}
	return res, nil
}

// Trap stacks are bounded so a deep-recursion trap stays readable: the
// innermost trapFrameHead frames are kept verbatim, and the remaining slots
// hold a sliding window of the outermost frames collected so far, so the
// entry point always survives. Trap.Elided counts the middle frames dropped
// in between.
const (
	maxTrapFrames = 16
	trapFrameHead = 8
)

// pushFrame appends f to a propagating trap's wasm stack.
func pushFrame(err error, f *function) error {
	t, ok := err.(*Trap)
	if !ok {
		return err
	}
	if len(t.Frames) < maxTrapFrames {
		t.Frames = append(t.Frames, f.inst.funcLabel(f.idx))
		return err
	}
	// Full: slide the outer window left, dropping its oldest frame, so the
	// newest (outermost so far, ultimately the entry point) stays.
	copy(t.Frames[trapFrameHead:], t.Frames[trapFrameHead+1:])
	t.Frames[maxTrapFrames-1] = f.inst.funcLabel(f.idx)
	t.Elided++
	return err
}

// run executes a compiled wasm function body. Arguments are copied into the
// frame's locals immediately, and results are written into res (len must be
// len(f.typ.Results)) just before returning — so callers may pass views of
// their own operand stack for both without aliasing hazards.
//
// Accounting is batched: the global instruction counter is flushed on exit,
// and fuel is charged per basic block — at control transfers (branches and
// calls) and on exit — rather than per instruction. A fueled store therefore
// traps at the first block boundary after exhaustion instead of on the exact
// instruction, which tightens the hot loop while still bounding execution
// (every loop iteration crosses a branch).
func (inst *Instance) run(f *function, args []Value, res []Value) error {
	s := inst.store
	if s.fueled && s.fuelLeft == 0 {
		return newTrap(TrapOutOfFuel)
	}
	code := f.code
	nl := f.numParams + f.numLocals
	buf := s.getFrame(nl + code.maxHeight)
	locals := buf[:nl]
	n := copy(locals, args)
	for i := n; i < nl; i++ {
		locals[i] = 0
	}
	stack := buf[nl:nl]
	mem := inst.mem

	instrs := code.instrs
	pc := 0
	executed := uint64(0)
	charged := uint64(0)
	defer func() {
		s.instrCount += executed
		if s.fueled {
			if d := executed - charged; d > s.fuelLeft {
				s.fuelLeft = 0
			} else {
				s.fuelLeft -= d
			}
		}
		s.putFrame(buf)
	}()

	for {
		in := &instrs[pc]
		executed++
		switch in.op {
		case wasm.OpUnreachable:
			return newTrap(TrapUnreachable)
		case wasm.OpBlock, wasm.OpLoop, wasm.OpEnd:
			// Structure markers: no effect at runtime.
		case wasm.OpIf:
			cond := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cond == 0 {
				pc = int(in.a)
				continue
			}
		case wasm.OpElse:
			// Jump emitted at the end of a then-branch.
			pc = int(in.a)
			continue
		case wasm.OpBr:
			if s.fueled {
				d := executed - charged
				charged = executed
				if !s.spendFuel(d) {
					return newTrap(TrapOutOfFuel)
				}
			}
			stack = adjustStack(stack, in.b)
			pc = int(in.a)
			continue
		case wasm.OpBrIf:
			if s.fueled {
				d := executed - charged
				charged = executed
				if !s.spendFuel(d) {
					return newTrap(TrapOutOfFuel)
				}
			}
			cond := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cond != 0 {
				stack = adjustStack(stack, in.b)
				pc = int(in.a)
				continue
			}
		case opCmpBrIf:
			// Fused "<comparison>; br_if": two original instructions.
			executed++
			if s.fueled {
				d := executed - charged
				charged = executed
				if !s.spendFuel(d) {
					return newTrap(TrapOutOfFuel)
				}
			}
			rhs, lhs := stack[len(stack)-1], stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			cond, _ := binaryOp(wasm.Opcode(in.misc), lhs, rhs) // comparisons cannot trap
			if cond != 0 {
				stack = adjustStack(stack, in.b)
				pc = int(in.a)
				continue
			}
		case wasm.OpBrTable:
			if s.fueled {
				d := executed - charged
				charged = executed
				if !s.spendFuel(d) {
					return newTrap(TrapOutOfFuel)
				}
			}
			idx := AsU32(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			table := code.brTables[in.misc]
			ent := table[len(table)-1] // default
			if int(idx) < len(table)-1 {
				ent = table[idx]
			}
			stack = adjustStack(stack, ent.dropKeep)
			pc = int(ent.pc)
			continue
		case wasm.OpReturn:
			_, keep := unpackDropKeep(in.b)
			copy(res, stack[len(stack)-keep:])
			return nil
		case wasm.OpCall:
			if s.fueled {
				d := executed - charged
				charged = executed
				if !s.spendFuel(d) {
					return newTrap(TrapOutOfFuel)
				}
			}
			callee := inst.funcs[in.a]
			np := callee.numParams
			nr := len(callee.typ.Results)
			base := len(stack) - np
			// The callee writes results over its argument slots: it copies
			// args into its own locals (or the host adapter buffers them)
			// before the result write, so the overlap is safe.
			if err := inst.invokeNested(callee, stack[base:], stack[base:base+nr]); err != nil {
				return err
			}
			stack = stack[:base+nr]
		case wasm.OpCallIndirect:
			if s.fueled {
				d := executed - charged
				charged = executed
				if !s.spendFuel(d) {
					return newTrap(TrapOutOfFuel)
				}
			}
			ti := uint32(in.a)
			elemIdx := AsU32(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			if inst.table == nil || int(elemIdx) >= inst.table.Len() {
				return newTrap(TrapTableOutOfBounds)
			}
			callee := inst.table.elems[elemIdx]
			if callee == nil {
				return newTrap(TrapUninitializedElement)
			}
			if !callee.typ.Equal(inst.Module.Types[ti]) {
				return newTrap(TrapIndirectCallTypeMismatch)
			}
			np := callee.numParams
			nr := len(callee.typ.Results)
			base := len(stack) - np
			if err := inst.invokeNested(callee, stack[base:], stack[base:base+nr]); err != nil {
				return err
			}
			stack = stack[:base+nr]
		case wasm.OpDrop:
			stack = stack[:len(stack)-1]
		case wasm.OpSelect:
			c := stack[len(stack)-1]
			v2 := stack[len(stack)-2]
			v1 := stack[len(stack)-3]
			stack = stack[:len(stack)-3]
			if c != 0 {
				stack = append(stack, v1)
			} else {
				stack = append(stack, v2)
			}
		case wasm.OpLocalGet:
			stack = append(stack, locals[in.a])
		case wasm.OpLocalSet:
			locals[in.a] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case wasm.OpLocalTee:
			locals[in.a] = stack[len(stack)-1]
		case wasm.OpGlobalGet:
			stack = append(stack, inst.globals[in.a].Val)
		case wasm.OpGlobalSet:
			inst.globals[in.a].Val = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case wasm.OpMemorySize:
			stack = append(stack, I32(int32(mem.Pages())))
		case wasm.OpMemoryGrow:
			delta := AsU32(stack[len(stack)-1])
			stack[len(stack)-1] = I32(mem.Grow(delta))
		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			stack = append(stack, in.a)
		case opI32AddConst:
			// Fused "i32.const K; i32.add": two original instructions.
			executed++
			stack[len(stack)-1] = I32(AsI32(stack[len(stack)-1]) + int32(uint32(in.a)))
		case opI64AddConst:
			executed++
			stack[len(stack)-1] = stack[len(stack)-1] + in.a
		case opLocalGetPair:
			// Fused "local.get i; local.get j".
			executed++
			stack = append(stack, locals[in.a>>32], locals[uint32(in.a)])
		case opLocalBinop:
			// Fused "local.get i; local.get j; <binop>": three originals.
			executed += 2
			v, err := binaryOp(wasm.Opcode(in.misc), locals[in.a>>32], locals[uint32(in.a)])
			if err != nil {
				return err
			}
			stack = append(stack, v)
		case wasm.OpMisc:
			var err error
			stack, err = inst.execMisc(in, stack, mem)
			if err != nil {
				return err
			}
		default:
			var err error
			stack, err = execNumericOrMem(in, stack, mem)
			if err != nil {
				return err
			}
		}
		pc++
	}
}

// callHost invokes a host function, containing panics as traps so a buggy
// host callback cannot take down the embedder (engines isolate host faults
// the same way).
func (inst *Instance) callHost(hf *HostFunc, args []Value) (res []Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Trap{Code: TrapHostError, Wrapped: fmt.Errorf("host function panicked: %v", r)}
		}
	}()
	ctx := &HostContext{Store: inst.store, Instance: inst, Memory: inst.mem}
	res, err = hf.Fn(ctx, args)
	if err != nil {
		switch err.(type) {
		case *Trap, *ExitError:
			return nil, err
		}
		return nil, &Trap{Code: TrapHostError, Wrapped: err}
	}
	return res, nil
}

// invokeNested dispatches a call from inside the interpreter loop. args and
// res may be overlapping views of the caller's operand stack: wasm callees
// copy args into their own frame locals before writing res, and the host
// path buffers results before the copy.
func (inst *Instance) invokeNested(callee *function, args, res []Value) error {
	if callee.host != nil {
		out, err := inst.callHost(callee.host, args)
		if err != nil {
			return err
		}
		if len(out) != len(res) {
			return &Trap{Code: TrapHostError, Wrapped: fmt.Errorf("host function returned %d values, want %d", len(out), len(res))}
		}
		copy(res, out)
		return nil
	}
	s := inst.store
	s.depth++
	if s.depth > s.cfg.MaxCallDepth {
		s.depth--
		return newTrap(TrapCallStackExhausted)
	}
	err := callee.inst.run(callee, args, res)
	s.depth--
	if err != nil {
		return pushFrame(err, callee)
	}
	return nil
}

// adjustStack applies a branch's drop/keep fixup.
func adjustStack(stack []Value, dropKeep uint64) []Value {
	drop, keep := unpackDropKeep(dropKeep)
	if drop == 0 {
		return stack
	}
	n := len(stack)
	copy(stack[n-keep-drop:], stack[n-keep:])
	return stack[:n-drop]
}

func (inst *Instance) execMisc(in *instr, stack []Value, mem *Memory) ([]Value, error) {
	switch in.misc {
	case wasm.MiscI32TruncSatF32S:
		v := AsF32(stack[len(stack)-1])
		stack[len(stack)-1] = I32(truncSatI32(float64(v)))
	case wasm.MiscI32TruncSatF32U:
		v := AsF32(stack[len(stack)-1])
		stack[len(stack)-1] = uint64(truncSatU32(float64(v)))
	case wasm.MiscI32TruncSatF64S:
		v := AsF64(stack[len(stack)-1])
		stack[len(stack)-1] = I32(truncSatI32(v))
	case wasm.MiscI32TruncSatF64U:
		v := AsF64(stack[len(stack)-1])
		stack[len(stack)-1] = uint64(truncSatU32(v))
	case wasm.MiscI64TruncSatF32S:
		v := AsF32(stack[len(stack)-1])
		stack[len(stack)-1] = I64(truncSatI64(float64(v)))
	case wasm.MiscI64TruncSatF32U:
		v := AsF32(stack[len(stack)-1])
		stack[len(stack)-1] = truncSatU64(float64(v))
	case wasm.MiscI64TruncSatF64S:
		v := AsF64(stack[len(stack)-1])
		stack[len(stack)-1] = I64(truncSatI64(v))
	case wasm.MiscI64TruncSatF64U:
		v := AsF64(stack[len(stack)-1])
		stack[len(stack)-1] = truncSatU64(v)
	case wasm.MiscMemoryCopy:
		n := AsU32(stack[len(stack)-1])
		src := AsU32(stack[len(stack)-2])
		dst := AsU32(stack[len(stack)-3])
		stack = stack[:len(stack)-3]
		if uint64(src)+uint64(n) > uint64(mem.Size()) || uint64(dst)+uint64(n) > uint64(mem.Size()) {
			return nil, newTrap(TrapMemoryOutOfBounds)
		}
		copy(mem.data[dst:dst+n], mem.data[src:src+n])
		mem.markRange(uint64(dst), uint64(n))
	case wasm.MiscMemoryFill:
		n := AsU32(stack[len(stack)-1])
		val := byte(stack[len(stack)-2])
		dst := AsU32(stack[len(stack)-3])
		stack = stack[:len(stack)-3]
		if uint64(dst)+uint64(n) > uint64(mem.Size()) {
			return nil, newTrap(TrapMemoryOutOfBounds)
		}
		for i := uint32(0); i < n; i++ {
			mem.data[dst+i] = val
		}
		mem.markRange(uint64(dst), uint64(n))
	}
	return stack, nil
}

// Saturating truncation helpers.
func truncSatI32(v float64) int32 {
	if math.IsNaN(v) {
		return 0
	}
	if v <= math.MinInt32 {
		return math.MinInt32
	}
	if v >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(v)
}

func truncSatU32(v float64) uint32 {
	if math.IsNaN(v) || v <= -1 {
		return 0
	}
	if v >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

func truncSatI64(v float64) int64 {
	if math.IsNaN(v) {
		return 0
	}
	if v <= math.MinInt64 {
		return math.MinInt64
	}
	if v >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

func truncSatU64(v float64) uint64 {
	if math.IsNaN(v) || v <= -1 {
		return 0
	}
	if v >= math.MaxUint64 {
		return math.MaxUint64
	}
	return uint64(v)
}

// Trapping truncation helpers (the MVP trunc instructions).
func truncI32(v float64) (int32, error) {
	if math.IsNaN(v) {
		return 0, newTrap(TrapInvalidConversion)
	}
	t := math.Trunc(v)
	if t < math.MinInt32 || t > math.MaxInt32 {
		return 0, newTrap(TrapIntegerOverflow)
	}
	return int32(t), nil
}

func truncU32(v float64) (uint32, error) {
	if math.IsNaN(v) {
		return 0, newTrap(TrapInvalidConversion)
	}
	t := math.Trunc(v)
	if t <= -1 || t > math.MaxUint32 {
		return 0, newTrap(TrapIntegerOverflow)
	}
	return uint32(t), nil
}

func truncI64(v float64) (int64, error) {
	if math.IsNaN(v) {
		return 0, newTrap(TrapInvalidConversion)
	}
	t := math.Trunc(v)
	// Note: 2^63 is exactly representable; values >= 2^63 overflow, and
	// values < -2^63 overflow (but -2^63 itself is fine).
	if t < math.MinInt64 || t >= math.MaxInt64 {
		return 0, newTrap(TrapIntegerOverflow)
	}
	return int64(t), nil
}

func truncU64(v float64) (uint64, error) {
	if math.IsNaN(v) {
		return 0, newTrap(TrapInvalidConversion)
	}
	t := math.Trunc(v)
	if t <= -1 || t >= math.MaxUint64 {
		return 0, newTrap(TrapIntegerOverflow)
	}
	return uint64(t), nil
}

// fmin/fmax follow wasm semantics: NaN-propagating, -0 < +0.
func fmin64(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if math.Signbit(a) || math.Signbit(b) {
			return math.Copysign(0, -1)
		}
		return 0
	}
	return math.Min(a, b)
}

func fmax64(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if !math.Signbit(a) || !math.Signbit(b) {
			return 0
		}
		return math.Copysign(0, -1)
	}
	return math.Max(a, b)
}

func boolVal(b bool) Value {
	if b {
		return 1
	}
	return 0
}

// execNumericOrMem executes all fixed-signature instructions.
func execNumericOrMem(in *instr, stack []Value, mem *Memory) ([]Value, error) {
	op := in.op
	n := len(stack)
	switch op {
	// Loads.
	case wasm.OpI32Load, wasm.OpI64Load, wasm.OpF32Load, wasm.OpF64Load,
		wasm.OpI32Load8U, wasm.OpI32Load16U, wasm.OpI64Load8U, wasm.OpI64Load16U, wasm.OpI64Load32U:
		addr := AsU32(stack[n-1])
		v, ok := mem.load(addr, uint32(in.a), int(in.misc))
		if !ok {
			return nil, newTrap(TrapMemoryOutOfBounds)
		}
		stack[n-1] = v
		return stack, nil
	case wasm.OpI32Load8S:
		return loadSigned(in, stack, mem, 8, true)
	case wasm.OpI32Load16S:
		return loadSigned(in, stack, mem, 16, true)
	case wasm.OpI64Load8S:
		return loadSigned(in, stack, mem, 8, false)
	case wasm.OpI64Load16S:
		return loadSigned(in, stack, mem, 16, false)
	case wasm.OpI64Load32S:
		return loadSigned(in, stack, mem, 32, false)
	// Stores.
	case wasm.OpI32Store, wasm.OpI64Store, wasm.OpF32Store, wasm.OpF64Store,
		wasm.OpI32Store8, wasm.OpI32Store16, wasm.OpI64Store8, wasm.OpI64Store16, wasm.OpI64Store32:
		val := stack[n-1]
		addr := AsU32(stack[n-2])
		if !mem.store(addr, uint32(in.a), int(in.misc), val) {
			return nil, newTrap(TrapMemoryOutOfBounds)
		}
		return stack[:n-2], nil
	}

	// Unary operators.
	if v, err, ok := unaryOp(op, stack[n-1]); ok {
		if err != nil {
			return nil, err
		}
		stack[n-1] = v
		return stack, nil
	}

	// Binary operators.
	rhs, lhs := stack[n-1], stack[n-2]
	v, err := binaryOp(op, lhs, rhs)
	if err != nil {
		return nil, err
	}
	stack[n-2] = v
	return stack[:n-1], nil
}

func loadSigned(in *instr, stack []Value, mem *Memory, width int, to32 bool) ([]Value, error) {
	n := len(stack)
	addr := AsU32(stack[n-1])
	raw, ok := mem.load(addr, uint32(in.a), width/8)
	if !ok {
		return nil, newTrap(TrapMemoryOutOfBounds)
	}
	var sv int64
	switch width {
	case 8:
		sv = int64(int8(raw))
	case 16:
		sv = int64(int16(raw))
	default:
		sv = int64(int32(raw))
	}
	if to32 {
		stack[n-1] = I32(int32(sv))
	} else {
		stack[n-1] = I64(sv)
	}
	return stack, nil
}

// unaryOp computes a unary instruction, or reports ok=false when op is not
// unary.
func unaryOp(op wasm.Opcode, v Value) (Value, error, bool) {
	switch op {
	case wasm.OpI32Eqz:
		return boolVal(AsU32(v) == 0), nil, true
	case wasm.OpI64Eqz:
		return boolVal(v == 0), nil, true
	case wasm.OpI32Clz:
		return I32(int32(bits.LeadingZeros32(AsU32(v)))), nil, true
	case wasm.OpI32Ctz:
		return I32(int32(bits.TrailingZeros32(AsU32(v)))), nil, true
	case wasm.OpI32Popcnt:
		return I32(int32(bits.OnesCount32(AsU32(v)))), nil, true
	case wasm.OpI64Clz:
		return I64(int64(bits.LeadingZeros64(v))), nil, true
	case wasm.OpI64Ctz:
		return I64(int64(bits.TrailingZeros64(v))), nil, true
	case wasm.OpI64Popcnt:
		return I64(int64(bits.OnesCount64(v))), nil, true
	case wasm.OpF32Abs:
		return F32(float32(math.Abs(float64(AsF32(v))))), nil, true
	case wasm.OpF32Neg:
		return F32(-AsF32(v)), nil, true
	case wasm.OpF32Ceil:
		return F32(float32(math.Ceil(float64(AsF32(v))))), nil, true
	case wasm.OpF32Floor:
		return F32(float32(math.Floor(float64(AsF32(v))))), nil, true
	case wasm.OpF32Trunc:
		return F32(float32(math.Trunc(float64(AsF32(v))))), nil, true
	case wasm.OpF32Nearest:
		return F32(float32(math.RoundToEven(float64(AsF32(v))))), nil, true
	case wasm.OpF32Sqrt:
		return F32(float32(math.Sqrt(float64(AsF32(v))))), nil, true
	case wasm.OpF64Abs:
		return F64(math.Abs(AsF64(v))), nil, true
	case wasm.OpF64Neg:
		return F64(-AsF64(v)), nil, true
	case wasm.OpF64Ceil:
		return F64(math.Ceil(AsF64(v))), nil, true
	case wasm.OpF64Floor:
		return F64(math.Floor(AsF64(v))), nil, true
	case wasm.OpF64Trunc:
		return F64(math.Trunc(AsF64(v))), nil, true
	case wasm.OpF64Nearest:
		return F64(math.RoundToEven(AsF64(v))), nil, true
	case wasm.OpF64Sqrt:
		return F64(math.Sqrt(AsF64(v))), nil, true
	case wasm.OpI32WrapI64:
		return I32(int32(v)), nil, true
	case wasm.OpI32TruncF32S:
		r, err := truncI32(float64(AsF32(v)))
		return I32(r), err, true
	case wasm.OpI32TruncF32U:
		r, err := truncU32(float64(AsF32(v)))
		return uint64(r), err, true
	case wasm.OpI32TruncF64S:
		r, err := truncI32(AsF64(v))
		return I32(r), err, true
	case wasm.OpI32TruncF64U:
		r, err := truncU32(AsF64(v))
		return uint64(r), err, true
	case wasm.OpI64ExtendI32S:
		return I64(int64(AsI32(v))), nil, true
	case wasm.OpI64ExtendI32U:
		return uint64(AsU32(v)), nil, true
	case wasm.OpI64TruncF32S:
		r, err := truncI64(float64(AsF32(v)))
		return I64(r), err, true
	case wasm.OpI64TruncF32U:
		r, err := truncU64(float64(AsF32(v)))
		return r, err, true
	case wasm.OpI64TruncF64S:
		r, err := truncI64(AsF64(v))
		return I64(r), err, true
	case wasm.OpI64TruncF64U:
		r, err := truncU64(AsF64(v))
		return r, err, true
	case wasm.OpF32ConvertI32S:
		return F32(float32(AsI32(v))), nil, true
	case wasm.OpF32ConvertI32U:
		return F32(float32(AsU32(v))), nil, true
	case wasm.OpF32ConvertI64S:
		return F32(float32(AsI64(v))), nil, true
	case wasm.OpF32ConvertI64U:
		return F32(float32(v)), nil, true
	case wasm.OpF32DemoteF64:
		return F32(float32(AsF64(v))), nil, true
	case wasm.OpF64ConvertI32S:
		return F64(float64(AsI32(v))), nil, true
	case wasm.OpF64ConvertI32U:
		return F64(float64(AsU32(v))), nil, true
	case wasm.OpF64ConvertI64S:
		return F64(float64(AsI64(v))), nil, true
	case wasm.OpF64ConvertI64U:
		return F64(float64(v)), nil, true
	case wasm.OpF64PromoteF32:
		return F64(float64(AsF32(v))), nil, true
	case wasm.OpI32ReinterpretF32, wasm.OpF32ReinterpretI32:
		return v & math.MaxUint32, nil, true
	case wasm.OpI64ReinterpretF64, wasm.OpF64ReinterpretI64:
		return v, nil, true
	case wasm.OpI32Extend8S:
		return I32(int32(int8(v))), nil, true
	case wasm.OpI32Extend16S:
		return I32(int32(int16(v))), nil, true
	case wasm.OpI64Extend8S:
		return I64(int64(int8(v))), nil, true
	case wasm.OpI64Extend16S:
		return I64(int64(int16(v))), nil, true
	case wasm.OpI64Extend32S:
		return I64(int64(int32(v))), nil, true
	}
	return 0, nil, false
}

// binaryOp computes a binary instruction over raw values.
func binaryOp(op wasm.Opcode, lhs, rhs Value) (Value, error) {
	switch op {
	// i32 comparisons.
	case wasm.OpI32Eq:
		return boolVal(AsU32(lhs) == AsU32(rhs)), nil
	case wasm.OpI32Ne:
		return boolVal(AsU32(lhs) != AsU32(rhs)), nil
	case wasm.OpI32LtS:
		return boolVal(AsI32(lhs) < AsI32(rhs)), nil
	case wasm.OpI32LtU:
		return boolVal(AsU32(lhs) < AsU32(rhs)), nil
	case wasm.OpI32GtS:
		return boolVal(AsI32(lhs) > AsI32(rhs)), nil
	case wasm.OpI32GtU:
		return boolVal(AsU32(lhs) > AsU32(rhs)), nil
	case wasm.OpI32LeS:
		return boolVal(AsI32(lhs) <= AsI32(rhs)), nil
	case wasm.OpI32LeU:
		return boolVal(AsU32(lhs) <= AsU32(rhs)), nil
	case wasm.OpI32GeS:
		return boolVal(AsI32(lhs) >= AsI32(rhs)), nil
	case wasm.OpI32GeU:
		return boolVal(AsU32(lhs) >= AsU32(rhs)), nil
	// i64 comparisons.
	case wasm.OpI64Eq:
		return boolVal(lhs == rhs), nil
	case wasm.OpI64Ne:
		return boolVal(lhs != rhs), nil
	case wasm.OpI64LtS:
		return boolVal(AsI64(lhs) < AsI64(rhs)), nil
	case wasm.OpI64LtU:
		return boolVal(lhs < rhs), nil
	case wasm.OpI64GtS:
		return boolVal(AsI64(lhs) > AsI64(rhs)), nil
	case wasm.OpI64GtU:
		return boolVal(lhs > rhs), nil
	case wasm.OpI64LeS:
		return boolVal(AsI64(lhs) <= AsI64(rhs)), nil
	case wasm.OpI64LeU:
		return boolVal(lhs <= rhs), nil
	case wasm.OpI64GeS:
		return boolVal(AsI64(lhs) >= AsI64(rhs)), nil
	case wasm.OpI64GeU:
		return boolVal(lhs >= rhs), nil
	// Float comparisons.
	case wasm.OpF32Eq:
		return boolVal(AsF32(lhs) == AsF32(rhs)), nil
	case wasm.OpF32Ne:
		return boolVal(AsF32(lhs) != AsF32(rhs)), nil
	case wasm.OpF32Lt:
		return boolVal(AsF32(lhs) < AsF32(rhs)), nil
	case wasm.OpF32Gt:
		return boolVal(AsF32(lhs) > AsF32(rhs)), nil
	case wasm.OpF32Le:
		return boolVal(AsF32(lhs) <= AsF32(rhs)), nil
	case wasm.OpF32Ge:
		return boolVal(AsF32(lhs) >= AsF32(rhs)), nil
	case wasm.OpF64Eq:
		return boolVal(AsF64(lhs) == AsF64(rhs)), nil
	case wasm.OpF64Ne:
		return boolVal(AsF64(lhs) != AsF64(rhs)), nil
	case wasm.OpF64Lt:
		return boolVal(AsF64(lhs) < AsF64(rhs)), nil
	case wasm.OpF64Gt:
		return boolVal(AsF64(lhs) > AsF64(rhs)), nil
	case wasm.OpF64Le:
		return boolVal(AsF64(lhs) <= AsF64(rhs)), nil
	case wasm.OpF64Ge:
		return boolVal(AsF64(lhs) >= AsF64(rhs)), nil
	// i32 arithmetic.
	case wasm.OpI32Add:
		return I32(AsI32(lhs) + AsI32(rhs)), nil
	case wasm.OpI32Sub:
		return I32(AsI32(lhs) - AsI32(rhs)), nil
	case wasm.OpI32Mul:
		return I32(AsI32(lhs) * AsI32(rhs)), nil
	case wasm.OpI32DivS:
		l, r := AsI32(lhs), AsI32(rhs)
		if r == 0 {
			return 0, newTrap(TrapIntegerDivideByZero)
		}
		if l == math.MinInt32 && r == -1 {
			return 0, newTrap(TrapIntegerOverflow)
		}
		return I32(l / r), nil
	case wasm.OpI32DivU:
		l, r := AsU32(lhs), AsU32(rhs)
		if r == 0 {
			return 0, newTrap(TrapIntegerDivideByZero)
		}
		return uint64(l / r), nil
	case wasm.OpI32RemS:
		l, r := AsI32(lhs), AsI32(rhs)
		if r == 0 {
			return 0, newTrap(TrapIntegerDivideByZero)
		}
		if l == math.MinInt32 && r == -1 {
			return 0, nil
		}
		return I32(l % r), nil
	case wasm.OpI32RemU:
		l, r := AsU32(lhs), AsU32(rhs)
		if r == 0 {
			return 0, newTrap(TrapIntegerDivideByZero)
		}
		return uint64(l % r), nil
	case wasm.OpI32And:
		return (lhs & rhs) & math.MaxUint32, nil
	case wasm.OpI32Or:
		return (lhs | rhs) & math.MaxUint32, nil
	case wasm.OpI32Xor:
		return (lhs ^ rhs) & math.MaxUint32, nil
	case wasm.OpI32Shl:
		return I32(AsI32(lhs) << (AsU32(rhs) & 31)), nil
	case wasm.OpI32ShrS:
		return I32(AsI32(lhs) >> (AsU32(rhs) & 31)), nil
	case wasm.OpI32ShrU:
		return uint64(AsU32(lhs) >> (AsU32(rhs) & 31)), nil
	case wasm.OpI32Rotl:
		return uint64(bits.RotateLeft32(AsU32(lhs), int(AsU32(rhs)&31))), nil
	case wasm.OpI32Rotr:
		return uint64(bits.RotateLeft32(AsU32(lhs), -int(AsU32(rhs)&31))), nil
	// i64 arithmetic.
	case wasm.OpI64Add:
		return lhs + rhs, nil
	case wasm.OpI64Sub:
		return lhs - rhs, nil
	case wasm.OpI64Mul:
		return lhs * rhs, nil
	case wasm.OpI64DivS:
		l, r := AsI64(lhs), AsI64(rhs)
		if r == 0 {
			return 0, newTrap(TrapIntegerDivideByZero)
		}
		if l == math.MinInt64 && r == -1 {
			return 0, newTrap(TrapIntegerOverflow)
		}
		return I64(l / r), nil
	case wasm.OpI64DivU:
		if rhs == 0 {
			return 0, newTrap(TrapIntegerDivideByZero)
		}
		return lhs / rhs, nil
	case wasm.OpI64RemS:
		l, r := AsI64(lhs), AsI64(rhs)
		if r == 0 {
			return 0, newTrap(TrapIntegerDivideByZero)
		}
		if l == math.MinInt64 && r == -1 {
			return 0, nil
		}
		return I64(l % r), nil
	case wasm.OpI64RemU:
		if rhs == 0 {
			return 0, newTrap(TrapIntegerDivideByZero)
		}
		return lhs % rhs, nil
	case wasm.OpI64And:
		return lhs & rhs, nil
	case wasm.OpI64Or:
		return lhs | rhs, nil
	case wasm.OpI64Xor:
		return lhs ^ rhs, nil
	case wasm.OpI64Shl:
		return lhs << (rhs & 63), nil
	case wasm.OpI64ShrS:
		return I64(AsI64(lhs) >> (rhs & 63)), nil
	case wasm.OpI64ShrU:
		return lhs >> (rhs & 63), nil
	case wasm.OpI64Rotl:
		return bits.RotateLeft64(lhs, int(rhs&63)), nil
	case wasm.OpI64Rotr:
		return bits.RotateLeft64(lhs, -int(rhs&63)), nil
	// f32 arithmetic.
	case wasm.OpF32Add:
		return F32(AsF32(lhs) + AsF32(rhs)), nil
	case wasm.OpF32Sub:
		return F32(AsF32(lhs) - AsF32(rhs)), nil
	case wasm.OpF32Mul:
		return F32(AsF32(lhs) * AsF32(rhs)), nil
	case wasm.OpF32Div:
		return F32(AsF32(lhs) / AsF32(rhs)), nil
	case wasm.OpF32Min:
		return F32(float32(fmin64(float64(AsF32(lhs)), float64(AsF32(rhs))))), nil
	case wasm.OpF32Max:
		return F32(float32(fmax64(float64(AsF32(lhs)), float64(AsF32(rhs))))), nil
	case wasm.OpF32Copysign:
		return F32(float32(math.Copysign(float64(AsF32(lhs)), float64(AsF32(rhs))))), nil
	// f64 arithmetic.
	case wasm.OpF64Add:
		return F64(AsF64(lhs) + AsF64(rhs)), nil
	case wasm.OpF64Sub:
		return F64(AsF64(lhs) - AsF64(rhs)), nil
	case wasm.OpF64Mul:
		return F64(AsF64(lhs) * AsF64(rhs)), nil
	case wasm.OpF64Div:
		return F64(AsF64(lhs) / AsF64(rhs)), nil
	case wasm.OpF64Min:
		return F64(fmin64(AsF64(lhs), AsF64(rhs))), nil
	case wasm.OpF64Max:
		return F64(fmax64(AsF64(lhs), AsF64(rhs))), nil
	case wasm.OpF64Copysign:
		return F64(math.Copysign(AsF64(lhs), AsF64(rhs))), nil
	}
	panic("exec: unhandled opcode " + wasm.OpcodeName(op))
}

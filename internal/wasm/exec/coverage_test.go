package exec

import (
	"math"
	"math/bits"
	"testing"

	"wasmcontainers/internal/wasm"
)

// TestBinaryOpBattery exercises every binary operator against a Go
// reference over a fixed grid of interesting operands.
func TestBinaryOpBattery(t *testing.T) {
	i32vals := []int32{0, 1, -1, 2, -2, 7, -7, 127, math.MaxInt32, math.MinInt32}
	i64vals := []int64{0, 1, -1, 3, -3, 1 << 40, math.MaxInt64, math.MinInt64}
	f64vals := []float64{0, -0.0, 1.5, -2.25, math.Inf(1), math.Inf(-1), math.NaN(), 1e300}
	f32vals := []float32{0, 1.5, -2.25, float32(math.Inf(1)), float32(math.NaN())}

	funcs := map[wasm.Opcode]func(a, b Value) (Value, error){}
	for _, op := range []wasm.Opcode{
		wasm.OpI32Eq, wasm.OpI32Ne, wasm.OpI32LtS, wasm.OpI32LtU, wasm.OpI32GtS, wasm.OpI32GtU,
		wasm.OpI32LeS, wasm.OpI32LeU, wasm.OpI32GeS, wasm.OpI32GeU,
		wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Mul, wasm.OpI32And, wasm.OpI32Or, wasm.OpI32Xor,
		wasm.OpI32Shl, wasm.OpI32ShrS, wasm.OpI32ShrU, wasm.OpI32Rotl, wasm.OpI32Rotr,
		wasm.OpI32DivU, wasm.OpI32RemU,
	} {
		funcs[op] = binFunc(t, i32, op)
	}
	for _, op := range []wasm.Opcode{
		wasm.OpI64Eq, wasm.OpI64Ne, wasm.OpI64LtS, wasm.OpI64LtU, wasm.OpI64GtS, wasm.OpI64GtU,
		wasm.OpI64LeS, wasm.OpI64LeU, wasm.OpI64GeS, wasm.OpI64GeU,
		wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Mul, wasm.OpI64And, wasm.OpI64Or, wasm.OpI64Xor,
		wasm.OpI64Shl, wasm.OpI64ShrS, wasm.OpI64ShrU, wasm.OpI64Rotl, wasm.OpI64Rotr,
		wasm.OpI64DivS, wasm.OpI64DivU, wasm.OpI64RemS, wasm.OpI64RemU,
	} {
		funcs[op] = binFunc(t, i64t, op)
	}
	for _, op := range []wasm.Opcode{
		wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Gt, wasm.OpF64Le, wasm.OpF64Ge,
		wasm.OpF64Add, wasm.OpF64Sub, wasm.OpF64Mul, wasm.OpF64Div,
		wasm.OpF64Min, wasm.OpF64Max, wasm.OpF64Copysign,
	} {
		funcs[op] = binFunc(t, f64t, op)
	}
	for _, op := range []wasm.Opcode{
		wasm.OpF32Eq, wasm.OpF32Ne, wasm.OpF32Lt, wasm.OpF32Gt, wasm.OpF32Le, wasm.OpF32Ge,
		wasm.OpF32Add, wasm.OpF32Sub, wasm.OpF32Mul, wasm.OpF32Div,
		wasm.OpF32Min, wasm.OpF32Max,
	} {
		funcs[op] = binFunc(t, f32t, op)
	}

	boolV := func(b bool) Value {
		if b {
			return 1
		}
		return 0
	}

	// i32 reference semantics.
	for _, a := range i32vals {
		for _, b := range i32vals {
			au, bu := uint32(a), uint32(b)
			check := func(op wasm.Opcode, want Value) {
				got, err := funcs[op](I32(a), I32(b))
				if err != nil {
					t.Fatalf("%s(%d,%d): %v", wasm.OpcodeName(op), a, b, err)
				}
				if got != want {
					t.Fatalf("%s(%d,%d) = %#x, want %#x", wasm.OpcodeName(op), a, b, got, want)
				}
			}
			check(wasm.OpI32Eq, boolV(a == b))
			check(wasm.OpI32Ne, boolV(a != b))
			check(wasm.OpI32LtS, boolV(a < b))
			check(wasm.OpI32LtU, boolV(au < bu))
			check(wasm.OpI32GtS, boolV(a > b))
			check(wasm.OpI32GtU, boolV(au > bu))
			check(wasm.OpI32LeS, boolV(a <= b))
			check(wasm.OpI32LeU, boolV(au <= bu))
			check(wasm.OpI32GeS, boolV(a >= b))
			check(wasm.OpI32GeU, boolV(au >= bu))
			check(wasm.OpI32Add, I32(a+b))
			check(wasm.OpI32Sub, I32(a-b))
			check(wasm.OpI32Mul, I32(a*b))
			check(wasm.OpI32And, I32(a&b))
			check(wasm.OpI32Or, I32(a|b))
			check(wasm.OpI32Xor, I32(a^b))
			check(wasm.OpI32Shl, I32(a<<(bu&31)))
			check(wasm.OpI32ShrS, I32(a>>(bu&31)))
			check(wasm.OpI32ShrU, uint64(au>>(bu&31)))
			check(wasm.OpI32Rotl, uint64(bits.RotateLeft32(au, int(bu&31))))
			check(wasm.OpI32Rotr, uint64(bits.RotateLeft32(au, -int(bu&31))))
			if b != 0 {
				check(wasm.OpI32DivU, uint64(au/bu))
				check(wasm.OpI32RemU, uint64(au%bu))
			}
		}
	}

	// i64 reference semantics.
	for _, a := range i64vals {
		for _, b := range i64vals {
			au, bu := uint64(a), uint64(b)
			check := func(op wasm.Opcode, want Value) {
				got, err := funcs[op](I64(a), I64(b))
				if err != nil {
					t.Fatalf("%s(%d,%d): %v", wasm.OpcodeName(op), a, b, err)
				}
				if got != want {
					t.Fatalf("%s(%d,%d) = %#x, want %#x", wasm.OpcodeName(op), a, b, got, want)
				}
			}
			check(wasm.OpI64Eq, boolV(a == b))
			check(wasm.OpI64Ne, boolV(a != b))
			check(wasm.OpI64LtS, boolV(a < b))
			check(wasm.OpI64LtU, boolV(au < bu))
			check(wasm.OpI64GtS, boolV(a > b))
			check(wasm.OpI64GtU, boolV(au > bu))
			check(wasm.OpI64LeS, boolV(a <= b))
			check(wasm.OpI64LeU, boolV(au <= bu))
			check(wasm.OpI64GeS, boolV(a >= b))
			check(wasm.OpI64GeU, boolV(au >= bu))
			check(wasm.OpI64Add, I64(a+b))
			check(wasm.OpI64Sub, I64(a-b))
			check(wasm.OpI64Mul, I64(a*b))
			check(wasm.OpI64And, I64(a&b))
			check(wasm.OpI64Or, I64(a|b))
			check(wasm.OpI64Xor, I64(a^b))
			check(wasm.OpI64Shl, I64(a<<(bu&63)))
			check(wasm.OpI64ShrS, I64(a>>(bu&63)))
			check(wasm.OpI64ShrU, au>>(bu&63))
			check(wasm.OpI64Rotl, bits.RotateLeft64(au, int(bu&63)))
			check(wasm.OpI64Rotr, bits.RotateLeft64(au, -int(bu&63)))
			if b != 0 {
				check(wasm.OpI64DivU, au/bu)
				check(wasm.OpI64RemU, au%bu)
				if !(a == math.MinInt64 && b == -1) {
					check(wasm.OpI64DivS, I64(a/b))
					check(wasm.OpI64RemS, I64(a%b))
				}
			}
		}
	}

	// f64 reference semantics.
	for _, a := range f64vals {
		for _, b := range f64vals {
			check := func(op wasm.Opcode, want float64) {
				got, err := funcs[op](F64(a), F64(b))
				if err != nil {
					t.Fatalf("%s(%v,%v): %v", wasm.OpcodeName(op), a, b, err)
				}
				gf := AsF64(got)
				if math.IsNaN(want) {
					if !math.IsNaN(gf) {
						t.Fatalf("%s(%v,%v) = %v, want NaN", wasm.OpcodeName(op), a, b, gf)
					}
					return
				}
				if gf != want || math.Signbit(gf) != math.Signbit(want) {
					t.Fatalf("%s(%v,%v) = %v, want %v", wasm.OpcodeName(op), a, b, gf, want)
				}
			}
			check(wasm.OpF64Add, a+b)
			check(wasm.OpF64Sub, a-b)
			check(wasm.OpF64Mul, a*b)
			if b != 0 {
				check(wasm.OpF64Div, a/b)
			}
			check(wasm.OpF64Copysign, math.Copysign(a, b))
			cb := func(op wasm.Opcode, want bool) {
				got, _ := funcs[op](F64(a), F64(b))
				if got != boolV(want) {
					t.Fatalf("%s(%v,%v) = %d, want %v", wasm.OpcodeName(op), a, b, got, want)
				}
			}
			cb(wasm.OpF64Eq, a == b)
			cb(wasm.OpF64Ne, a != b)
			cb(wasm.OpF64Lt, a < b)
			cb(wasm.OpF64Gt, a > b)
			cb(wasm.OpF64Le, a <= b)
			cb(wasm.OpF64Ge, a >= b)
		}
	}

	// f32: spot checks across the grid (reference through float32 math).
	for _, a := range f32vals {
		for _, b := range f32vals {
			got, err := funcs[wasm.OpF32Add](F32(a), F32(b))
			if err != nil {
				t.Fatal(err)
			}
			want := a + b
			gf := AsF32(got)
			if math.IsNaN(float64(want)) {
				if !math.IsNaN(float64(gf)) {
					t.Fatalf("f32.add(%v,%v) = %v", a, b, gf)
				}
			} else if gf != want {
				t.Fatalf("f32.add(%v,%v) = %v, want %v", a, b, gf, want)
			}
		}
	}
}

// TestUnsignedTruncations covers the trapping and saturating unsigned
// float->int conversions.
func TestUnsignedTruncations(t *testing.T) {
	// i32.trunc_f64_u trapping.
	b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI32TruncF64U).End()
	m := buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{i32}, nil, b))
	inst := instantiate(t, m)
	res, err := inst.Call("f", F64(4294967295))
	if err != nil || AsU32(res[0]) != math.MaxUint32 {
		t.Fatalf("trunc_u(2^32-1) = %v, %v", res, err)
	}
	if _, err := inst.Call("f", F64(-1)); !IsTrap(err, TrapIntegerOverflow) {
		t.Fatalf("trunc_u(-1): %v", err)
	}
	if _, err := inst.Call("f", F64(4294967296)); !IsTrap(err, TrapIntegerOverflow) {
		t.Fatalf("trunc_u(2^32): %v", err)
	}
	if _, err := inst.Call("f", F64(math.NaN())); !IsTrap(err, TrapInvalidConversion) {
		t.Fatalf("trunc_u(NaN): %v", err)
	}
	// i64.trunc_f64_u trapping.
	b64 := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI64TruncF64U).End()
	m64 := buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{i64t}, nil, b64))
	inst64 := instantiate(t, m64)
	res, err = inst64.Call("f", F64(1e18))
	if err != nil || res[0] != uint64(1e18) {
		t.Fatalf("trunc_u64(1e18) = %v, %v", res, err)
	}
	if _, err := inst64.Call("f", F64(-0.5)); err != nil {
		t.Fatalf("trunc_u64(-0.5) should be 0 (truncates toward zero): %v", err)
	}
	if _, err := inst64.Call("f", F64(2e19)); !IsTrap(err, TrapIntegerOverflow) {
		t.Fatalf("trunc_u64(2e19): %v", err)
	}

	// Saturating unsigned variants never trap.
	sat := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Misc(wasm.MiscI32TruncSatF64U).End()
	mSat := buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{i32}, nil, sat))
	instSat := instantiate(t, mSat)
	cases := []struct {
		in   float64
		want uint32
	}{
		{-5, 0}, {math.NaN(), 0}, {1e12, math.MaxUint32}, {7.9, 7},
	}
	for _, c := range cases {
		res, err := instSat.Call("f", F64(c.in))
		if err != nil || AsU32(res[0]) != c.want {
			t.Fatalf("trunc_sat_u(%v) = %v, %v (want %d)", c.in, res, err, c.want)
		}
	}
	sat64 := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Misc(wasm.MiscI64TruncSatF64U).End()
	mSat64 := buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{i64t}, nil, sat64))
	instSat64 := instantiate(t, mSat64)
	res, err = instSat64.Call("f", F64(1e30))
	if err != nil || res[0] != math.MaxUint64 {
		t.Fatalf("trunc_sat_u64(1e30) = %v, %v", res, err)
	}
	res, err = instSat64.Call("f", F64(-1e30))
	if err != nil || res[0] != 0 {
		t.Fatalf("trunc_sat_u64(-1e30) = %v, %v", res, err)
	}
	// f32-sourced saturating conversions.
	sat32src := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Misc(wasm.MiscI64TruncSatF32U).End()
	mSat32 := buildModule(t, singleFunc([]wasm.ValueType{f32t}, []wasm.ValueType{i64t}, nil, sat32src))
	instSat32 := instantiate(t, mSat32)
	res, err = instSat32.Call("f", F32(100.7))
	if err != nil || res[0] != 100 {
		t.Fatalf("trunc_sat_u64_f32(100.7) = %v, %v", res, err)
	}
}

// TestMemoryHelperAPIs covers the embedder-facing Memory methods.
func TestMemoryHelperAPIs(t *testing.T) {
	mem := NewMemory(wasm.MemoryType{Limits: wasm.Limits{Min: 1}}, 0)
	if mem.Size() != wasm.PageSize || mem.Pages() != 1 {
		t.Fatal("initial size")
	}
	if !mem.WriteUint64(8, 0x1122334455667788) {
		t.Fatal("WriteUint64")
	}
	if v, ok := mem.ReadUint64(8); !ok || v != 0x1122334455667788 {
		t.Fatalf("ReadUint64 = %#x, %v", v, ok)
	}
	if ok := mem.Write(100, []byte("hello")); !ok {
		t.Fatal("Write")
	}
	if s, ok := mem.ReadString(100, 5); !ok || s != "hello" {
		t.Fatalf("ReadString = %q", s)
	}
	b, ok := mem.Read(100, 5)
	if !ok || string(b) != "hello" {
		t.Fatal("Read")
	}
	b[0] = 'X' // Read returns a copy
	if s, _ := mem.ReadString(100, 5); s != "hello" {
		t.Fatal("Read aliases memory")
	}
	v, ok := mem.View(100, 5)
	if !ok {
		t.Fatal("View")
	}
	v[0] = 'Y' // View aliases
	if s, _ := mem.ReadString(100, 5); s != "Yello" {
		t.Fatal("View does not alias memory")
	}
	// Bounds behaviour.
	if _, ok := mem.Read(uint32(mem.Size())-2, 4); ok {
		t.Fatal("OOB Read succeeded")
	}
	if mem.Write(uint32(mem.Size())-1, []byte("ab")) {
		t.Fatal("OOB Write succeeded")
	}
	if _, ok := mem.ReadUint32(uint32(mem.Size()) - 3); ok {
		t.Fatal("OOB ReadUint32 succeeded")
	}
	if mem.WriteUint32(uint32(mem.Size())-3, 1) {
		t.Fatal("OOB WriteUint32 succeeded")
	}
	if len(mem.Bytes()) != mem.Size() {
		t.Fatal("Bytes length")
	}
	// Grow behaviour with engine cap.
	capped := NewMemory(wasm.MemoryType{Limits: wasm.Limits{Min: 1}}, 2)
	if capped.Grow(1) != 1 {
		t.Fatal("grow to cap")
	}
	if capped.Grow(1) != -1 {
		t.Fatal("grow past engine cap succeeded")
	}
	if capped.Grow(0) != 2 {
		t.Fatal("grow(0) should return current size")
	}
	if capped.Grows() != 1 {
		t.Fatalf("Grows = %d", capped.Grows())
	}
}

// TestHostGlobalsAndMemoriesImport covers host-module globals/memories.
func TestHostGlobalsAndMemoriesImport(t *testing.T) {
	s := NewStore(Config{})
	hostMem := NewMemory(wasm.MemoryType{Limits: wasm.Limits{Min: 2}}, 0)
	hostMem.WriteUint32(0, 0xabcd1234)
	s.NewHostModule("env").
		AddGlobal("base", &GlobalVar{Type: wasm.GlobalType{ValType: wasm.ValueTypeI32}, Val: I32(64)}).
		AddMemory("memory", hostMem)

	b := new(wasm.BodyBuilder).
		I32Const(0).MemArg(wasm.OpI32Load, 2, 0).
		OpU32(wasm.OpGlobalGet, 0).
		Op(wasm.OpI32Add).
		End()
	m := &wasm.Module{
		Types: []wasm.FuncType{{Results: []wasm.ValueType{i32}}},
		Imports: []wasm.Import{
			{Module: "env", Name: "base", Kind: wasm.ExternalGlobal,
				Global: wasm.GlobalType{ValType: wasm.ValueTypeI32}},
			{Module: "env", Name: "memory", Kind: wasm.ExternalMemory,
				Memory: wasm.MemoryType{Limits: wasm.Limits{Min: 1}}},
		},
		Functions: []uint32{0},
		Codes:     []wasm.Code{{Body: b.Bytes()}},
		Exports:   []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 0}},
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	inst, err := s.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if AsU32(res[0]) != 0xabcd1234+64 {
		t.Fatalf("got %#x", AsU32(res[0]))
	}
}

// TestFuelRefill covers AddFuel on a fueled store.
func TestFuelRefill(t *testing.T) {
	b := new(wasm.BodyBuilder)
	b.Block(wasm.OpLoop, wasm.BlockTypeEmpty)
	b.OpU32(wasm.OpBr, 0)
	b.End()
	b.End()
	m := buildModule(t, singleFunc(nil, nil, nil, b))
	s := NewStore(Config{Fuel: 100})
	inst, err := s.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("f"); !IsTrap(err, TrapOutOfFuel) {
		t.Fatal(err)
	}
	s.AddFuel(50)
	if s.FuelLeft() != 50 {
		t.Fatalf("fuel = %d", s.FuelLeft())
	}
	if _, err := inst.Call("f"); !IsTrap(err, TrapOutOfFuel) {
		t.Fatal(err)
	}
	// AddFuel on an unfueled store is a no-op.
	s2 := NewStore(Config{})
	s2.AddFuel(10)
	if s2.FuelLeft() != 0 {
		t.Fatal("unfueled store accepted fuel")
	}
}

// TestSignedLoadsInPackage covers loadSigned paths.
func TestSignedLoadsInPackage(t *testing.T) {
	cases := []struct {
		store wasm.Opcode
		load  wasm.Opcode
		out   wasm.ValueType
		val   Value
		want  Value
	}{
		{wasm.OpI32Store8, wasm.OpI32Load8S, i32, I32(0xFF), I32(-1)},
		{wasm.OpI32Store16, wasm.OpI32Load16S, i32, I32(0xFFFF), I32(-1)},
		{wasm.OpI64Store8, wasm.OpI64Load8S, i64t, I64(0x80), I64(-128)},
		{wasm.OpI64Store16, wasm.OpI64Load16S, i64t, I64(0xFFFF), I64(-1)},
		{wasm.OpI64Store32, wasm.OpI64Load32S, i64t, I64(0xFFFFFFFF), I64(-1)},
	}
	for _, c := range cases {
		b := new(wasm.BodyBuilder)
		b.I32Const(0).OpU32(wasm.OpLocalGet, 0).MemArg(c.store, 0, 0)
		b.I32Const(0).MemArg(c.load, 0, 0)
		b.End()
		in := i32
		if c.out == i64t {
			in = i64t
		}
		m := singleFunc([]wasm.ValueType{in}, []wasm.ValueType{c.out}, nil, b)
		m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}}
		inst := instantiate(t, buildModule(t, m))
		res, err := inst.Call("f", c.val)
		if err != nil {
			t.Fatalf("%s: %v", wasm.OpcodeName(c.load), err)
		}
		if res[0] != c.want {
			t.Fatalf("%s = %#x, want %#x", wasm.OpcodeName(c.load), res[0], c.want)
		}
	}
}

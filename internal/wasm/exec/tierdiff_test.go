package exec

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"wasmcontainers/internal/wasm"
)

// tierPair runs the same module in two independent stores — one at tier 0,
// one forced to tier 1 — and asserts after every call that results, traps,
// instruction counts, fuel, and memory state are bit-identical. This is the
// enforcement mechanism for the tiering contract: tier 1 is an observable
// no-op apart from wall time.
type tierPair struct {
	t      *testing.T
	s0, s1 *Store
	i0, i1 *Instance
}

func newTierPair(t *testing.T, m *wasm.Module, cfg Config, setup func(s *Store)) *tierPair {
	t.Helper()
	mk := func() (*Store, *Instance) {
		s := NewStore(cfg)
		if setup != nil {
			setup(s)
		}
		inst, err := s.Instantiate(m, "mod")
		if err != nil {
			t.Fatalf("Instantiate: %v", err)
		}
		return s, inst
	}
	s0, i0 := mk()
	s1, i1 := mk()
	tc, did := i1.Code().EnsureTier1()
	if !did || tc == nil {
		t.Fatalf("EnsureTier1 did not lower")
	}
	if tc.Lowered() != tc.NumFuncs() {
		t.Fatalf("lowered %d of %d functions", tc.Lowered(), tc.NumFuncs())
	}
	if tc.Bytes() <= 0 {
		t.Fatalf("tier-1 artifact bytes = %d, want > 0", tc.Bytes())
	}
	return &tierPair{t: t, s0: s0, s1: s1, i0: i0, i1: i1}
}

// call invokes the export on both tiers and cross-checks every observable.
func (p *tierPair) call(name string, args ...Value) ([]Value, error) {
	p.t.Helper()
	r0, e0 := p.i0.Call(name, args...)
	r1, e1 := p.i1.Call(name, args...)
	if (e0 == nil) != (e1 == nil) {
		p.t.Fatalf("%s%v: tier0 err=%v, tier1 err=%v", name, args, e0, e1)
	}
	if e0 != nil && e0.Error() != e1.Error() {
		p.t.Fatalf("%s%v: trap mismatch\n tier0: %v\n tier1: %v", name, args, e0, e1)
	}
	if len(r0) != len(r1) {
		p.t.Fatalf("%s%v: result arity %d vs %d", name, args, len(r0), len(r1))
	}
	for i := range r0 {
		if r0[i] != r1[i] {
			p.t.Fatalf("%s%v: result[%d] = %#x (tier0) vs %#x (tier1)", name, args, i, r0[i], r1[i])
		}
	}
	if tier := p.s1.LastInvokeTier(); tier != 1 {
		p.t.Fatalf("%s%v: tier-1 store served at tier %d", name, args, tier)
	}
	if c0, c1 := p.s0.InstructionCount(), p.s1.InstructionCount(); c0 != c1 {
		p.t.Fatalf("%s%v: instruction count %d (tier0) vs %d (tier1)", name, args, c0, c1)
	}
	if f0, f1 := p.s0.FuelLeft(), p.s1.FuelLeft(); f0 != f1 {
		p.t.Fatalf("%s%v: fuel left %d (tier0) vs %d (tier1)", name, args, f0, f1)
	}
	p.checkMemory()
	return r0, e0
}

func (p *tierPair) checkMemory() {
	p.t.Helper()
	m0, m1 := p.i0.Memory(), p.i1.Memory()
	if (m0 == nil) != (m1 == nil) {
		p.t.Fatalf("memory presence mismatch")
	}
	if m0 == nil {
		return
	}
	if !bytes.Equal(m0.Bytes(), m1.Bytes()) {
		p.t.Fatalf("final memory contents differ between tiers")
	}
	if d0, d1 := m0.DirtyPages(), m1.DirtyPages(); d0 != d1 {
		p.t.Fatalf("dirty pages %d (tier0) vs %d (tier1)", d0, d1)
	}
}

// --- corpus builders -------------------------------------------------------

func factorialModule(t *testing.T) *wasm.Module {
	b := new(wasm.BodyBuilder)
	b.I32Const(1).OpU32(wasm.OpLocalSet, 1)
	b.Block(wasm.OpBlock, wasm.BlockTypeEmpty)
	b.Block(wasm.OpLoop, wasm.BlockTypeEmpty)
	b.OpU32(wasm.OpLocalGet, 0).I32Const(1).Op(wasm.OpI32LeS).OpU32(wasm.OpBrIf, 1)
	b.OpU32(wasm.OpLocalGet, 1).OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI32Mul).OpU32(wasm.OpLocalSet, 1)
	b.OpU32(wasm.OpLocalGet, 0).I32Const(1).Op(wasm.OpI32Sub).OpU32(wasm.OpLocalSet, 0)
	b.OpU32(wasm.OpBr, 0)
	b.End().End()
	b.OpU32(wasm.OpLocalGet, 1)
	b.End()
	return buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, []wasm.ValueType{i32}, b))
}

func fibModule(t *testing.T) *wasm.Module {
	b := new(wasm.BodyBuilder)
	b.OpU32(wasm.OpLocalGet, 0).I32Const(2).Op(wasm.OpI32LtS)
	b.Block(wasm.OpIf, wasm.BlockTypeEmpty)
	b.OpU32(wasm.OpLocalGet, 0).Op(wasm.OpReturn)
	b.End()
	b.OpU32(wasm.OpLocalGet, 0).I32Const(1).Op(wasm.OpI32Sub).OpU32(wasm.OpCall, 0)
	b.OpU32(wasm.OpLocalGet, 0).I32Const(2).Op(wasm.OpI32Sub).OpU32(wasm.OpCall, 0)
	b.Op(wasm.OpI32Add)
	b.End()
	return buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b))
}

// churnModule writes n u64 slots then sums them back: store/load, i64 math,
// loop branches, dirty-page marking.
func churnModule(t *testing.T) *wasm.Module {
	b := new(wasm.BodyBuilder)
	// local0 = n (param), local1 = i, local2 = sum (i64)
	b.Block(wasm.OpBlock, wasm.BlockTypeEmpty)
	b.Block(wasm.OpLoop, wasm.BlockTypeEmpty)
	b.OpU32(wasm.OpLocalGet, 1).OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI32GeU).OpU32(wasm.OpBrIf, 1)
	b.OpU32(wasm.OpLocalGet, 1).I32Const(8).Op(wasm.OpI32Mul)
	b.OpU32(wasm.OpLocalGet, 1).Op(wasm.OpI64ExtendI32U).I64Const(0x9e3779b9).Op(wasm.OpI64Mul)
	b.MemArg(wasm.OpI64Store, 3, 0)
	b.OpU32(wasm.OpLocalGet, 2)
	b.OpU32(wasm.OpLocalGet, 1).I32Const(8).Op(wasm.OpI32Mul).MemArg(wasm.OpI64Load, 3, 0)
	b.Op(wasm.OpI64Add).OpU32(wasm.OpLocalSet, 2)
	b.OpU32(wasm.OpLocalGet, 1).I32Const(1).Op(wasm.OpI32Add).OpU32(wasm.OpLocalSet, 1)
	b.OpU32(wasm.OpBr, 0)
	b.End().End()
	b.OpU32(wasm.OpLocalGet, 2)
	b.End()
	m := singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i64t}, []wasm.ValueType{i32, i64t}, b)
	m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 4}}}
	return buildModule(t, m)
}

func TestTierDiffFactorial(t *testing.T) {
	p := newTierPair(t, factorialModule(t), Config{}, nil)
	for _, n := range []int32{0, 1, 5, 10, 12} {
		p.call("f", I32(n))
	}
}

func TestTierDiffRecursiveFib(t *testing.T) {
	p := newTierPair(t, fibModule(t), Config{}, nil)
	for _, n := range []int32{0, 1, 7, 15} {
		p.call("f", I32(n))
	}
}

func TestTierDiffMemoryChurn(t *testing.T) {
	p := newTierPair(t, churnModule(t), Config{}, nil)
	for _, n := range []int32{0, 1, 17, 4000} {
		p.call("f", I32(n))
	}
}

func TestTierDiffMemoryTraps(t *testing.T) {
	b := new(wasm.BodyBuilder)
	b.OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).MemArg(wasm.OpI32Store, 2, 0)
	b.OpU32(wasm.OpLocalGet, 0).MemArg(wasm.OpI32Load, 2, 0)
	b.End()
	m := singleFunc([]wasm.ValueType{i32, i32}, []wasm.ValueType{i32}, nil, b)
	m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}}
	p := newTierPair(t, buildModule(t, m), Config{}, nil)
	p.call("f", I32(128), I32(0x1234abcd))
	p.call("f", I32(65532), I32(7))      // last valid word
	p.call("f", I32(65533), I32(1))      // straddles the end: trap
	p.call("f", I32(-4), I32(9))         // huge unsigned address: trap
	p.call("f", I32(65536-4), I32(0x5a)) // boundary store
}

func TestTierDiffDivTraps(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(wasm.OpI32DivS).End()
	p := newTierPair(t, buildModule(t, singleFunc([]wasm.ValueType{i32, i32}, []wasm.ValueType{i32}, nil, b)), Config{}, nil)
	p.call("f", I32(-7), I32(2))
	p.call("f", I32(1), I32(0))
	p.call("f", I32(math.MinInt32), I32(-1))
}

func TestTierDiffBrTable(t *testing.T) {
	b := new(wasm.BodyBuilder)
	b.Block(wasm.OpBlock, wasm.BlockTypeEmpty)
	b.Block(wasm.OpBlock, wasm.BlockTypeEmpty)
	b.Block(wasm.OpBlock, wasm.BlockTypeEmpty)
	b.OpU32(wasm.OpLocalGet, 0)
	b.BrTable([]uint32{0, 1}, 2)
	b.End()
	b.I32Const(100).Op(wasm.OpReturn)
	b.End()
	b.I32Const(200).Op(wasm.OpReturn)
	b.End()
	b.I32Const(999)
	b.End()
	p := newTierPair(t, buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b)), Config{}, nil)
	for _, n := range []int32{0, 1, 2, 50, -1} {
		p.call("f", I32(n))
	}
}

func TestTierDiffCallIndirect(t *testing.T) {
	add := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(wasm.OpI32Add).End()
	mul := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(wasm.OpI32Mul).End()
	entry := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 1).OpU32(wasm.OpLocalGet, 2).
		OpU32(wasm.OpLocalGet, 0).
		CallIndirect(0).End()
	m := &wasm.Module{
		Types: []wasm.FuncType{
			{Params: []wasm.ValueType{i32, i32}, Results: []wasm.ValueType{i32}},
			{Params: []wasm.ValueType{i32, i32, i32}, Results: []wasm.ValueType{i32}},
		},
		Functions: []uint32{0, 0, 1},
		Tables:    []wasm.TableType{{ElemType: wasm.ValueTypeFuncref, Limits: wasm.Limits{Min: 3}}},
		Elements:  []wasm.ElementSegment{{Offset: wasm.I32Const(0), Indices: []uint32{0, 1}}},
		Codes:     []wasm.Code{{Body: add.Bytes()}, {Body: mul.Bytes()}, {Body: entry.Bytes()}},
		Exports:   []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 2}},
	}
	p := newTierPair(t, buildModule(t, m), Config{}, nil)
	p.call("f", I32(0), I32(6), I32(7))
	p.call("f", I32(1), I32(6), I32(7))
	p.call("f", I32(2), I32(1), I32(1)) // uninitialized element: trap
	p.call("f", I32(9), I32(1), I32(1)) // out of table bounds: trap
}

func TestTierDiffGlobalsAndSelect(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpGlobalGet, 0).I32Const(1).Op(wasm.OpI32Add).
		OpU32(wasm.OpGlobalSet, 0).
		OpU32(wasm.OpGlobalGet, 0).I32Const(-1).
		OpU32(wasm.OpLocalGet, 0).Op(wasm.OpSelect).
		End()
	m := singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b)
	m.Globals = []wasm.Global{{
		Type: wasm.GlobalType{ValType: i32, Mutable: true},
		Init: wasm.I32Const(10),
	}}
	p := newTierPair(t, buildModule(t, m), Config{}, nil)
	p.call("f", I32(1))
	p.call("f", I32(0))
	p.call("f", I32(5))
}

func TestTierDiffMemoryGrow(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).MemoryOp(wasm.OpMemoryGrow).Op(wasm.OpDrop).
		MemoryOp(wasm.OpMemorySize).
		End()
	m := singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b)
	m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 4, HasMax: true}}}
	p := newTierPair(t, buildModule(t, m), Config{}, nil)
	p.call("f", I32(2))
	p.call("f", I32(100))
	p.call("f", I32(0))
}

func TestTierDiffMemoryCopyFill(t *testing.T) {
	b := new(wasm.BodyBuilder)
	// fill [16, 16+n) with v, copy it to [4096+d, ...), load a probe byte.
	b.I32Const(16).OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Misc(wasm.MiscMemoryFill)
	b.I32Const(4096).I32Const(16).OpU32(wasm.OpLocalGet, 1).Misc(wasm.MiscMemoryCopy)
	b.I32Const(4096).MemArg(wasm.OpI32Load8U, 0, 0)
	b.End()
	m := singleFunc([]wasm.ValueType{i32, i32}, []wasm.ValueType{i32}, nil, b)
	m.Memories = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}}
	p := newTierPair(t, buildModule(t, m), Config{}, nil)
	p.call("f", I32(0x5a), I32(64))
	p.call("f", I32(0x00), I32(0))
	p.call("f", I32(0x7f), I32(1<<20)) // OOB fill: trap
}

func TestTierDiffUnreachableAndStack(t *testing.T) {
	b := new(wasm.BodyBuilder).Op(wasm.OpUnreachable).End()
	p := newTierPair(t, buildModule(t, singleFunc(nil, nil, nil, b)), Config{}, nil)
	p.call("f")

	rec := new(wasm.BodyBuilder).OpU32(wasm.OpCall, 0).End()
	p = newTierPair(t, buildModule(t, singleFunc(nil, nil, nil, rec)), Config{MaxCallDepth: 100}, nil)
	p.call("f")
}

func TestTierDiffTruncTraps(t *testing.T) {
	b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI32TruncF64S).End()
	p := newTierPair(t, buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{i32}, nil, b)), Config{}, nil)
	p.call("f", F64(12.9))
	p.call("f", F64(math.NaN()))
	p.call("f", F64(1e30))
	p.call("f", F64(-1e30))
}

// Fuel sweep over a loop: the block-granularity fuel schedule, the exact trap
// point, and the remaining fuel must be identical at every budget.
func TestTierDiffFuelSweep(t *testing.T) {
	for _, fuel := range []uint64{1, 5, 13, 37, 100, 1000, 100000} {
		p := newTierPair(t, factorialModule(t), Config{Fuel: fuel}, nil)
		p.call("f", I32(12))
		p.call("f", I32(12))
	}
	for _, fuel := range []uint64{1, 37, 1000, 50000} {
		p := newTierPair(t, fibModule(t), Config{Fuel: fuel}, nil)
		p.call("f", I32(12))
	}
	for _, fuel := range []uint64{1, 100, 12345} {
		p := newTierPair(t, churnModule(t), Config{Fuel: fuel}, nil)
		p.call("f", I32(1000))
	}
}

// Host imports are always invoked through the shared nested-call path; the
// surrounding tier-1 frames must still account identically.
func TestTierDiffHostImport(t *testing.T) {
	b := new(wasm.BodyBuilder).
		OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpCall, 0).
		OpU32(wasm.OpLocalGet, 0).Op(wasm.OpI32Add).
		End()
	m := &wasm.Module{
		Types: []wasm.FuncType{{Params: []wasm.ValueType{i32}, Results: []wasm.ValueType{i32}}},
		Imports: []wasm.Import{
			{Module: "env", Name: "double", Kind: wasm.ExternalFunc, Func: 0},
		},
		Functions: []uint32{0},
		Memories:  []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}},
		Codes:     []wasm.Code{{Body: b.Bytes()}},
		Exports:   []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 1}},
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	setup := func(s *Store) {
		s.NewHostModule("env").AddFunc("double", HostFunc{
			Type: wasm.FuncType{Params: []wasm.ValueType{i32}, Results: []wasm.ValueType{i32}},
			Fn: func(ctx *HostContext, args []Value) ([]Value, error) {
				ctx.Memory.WriteUint32(8, AsU32(args[0]))
				return []Value{I32(AsI32(args[0]) * 2)}, nil
			},
		})
	}
	p := newTierPair(t, m, Config{}, setup)
	p.call("f", I32(21))
	p.call("f", I32(-3))
}

// The full property corpus shapes, dual-tier: every binFunc/unaryFunc module
// from property_test.go is run through both tiers over a value sweep.
func TestTierDiffOperatorSweep(t *testing.T) {
	binOps := []struct {
		vt wasm.ValueType
		op wasm.Opcode
	}{
		{i32, wasm.OpI32Add}, {i32, wasm.OpI32Sub}, {i32, wasm.OpI32Mul},
		{i32, wasm.OpI32DivS}, {i32, wasm.OpI32DivU}, {i32, wasm.OpI32RemS}, {i32, wasm.OpI32RemU},
		{i32, wasm.OpI32And}, {i32, wasm.OpI32Or}, {i32, wasm.OpI32Xor},
		{i32, wasm.OpI32Shl}, {i32, wasm.OpI32ShrS}, {i32, wasm.OpI32ShrU},
		{i32, wasm.OpI32Rotl}, {i32, wasm.OpI32Rotr},
		{i32, wasm.OpI32Eq}, {i32, wasm.OpI32Ne}, {i32, wasm.OpI32LtS}, {i32, wasm.OpI32LtU},
		{i32, wasm.OpI32GtS}, {i32, wasm.OpI32GtU}, {i32, wasm.OpI32LeS}, {i32, wasm.OpI32LeU},
		{i32, wasm.OpI32GeS}, {i32, wasm.OpI32GeU},
		{i64t, wasm.OpI64Add}, {i64t, wasm.OpI64Sub}, {i64t, wasm.OpI64Mul},
		{i64t, wasm.OpI64DivS}, {i64t, wasm.OpI64RemU},
		{i64t, wasm.OpI64And}, {i64t, wasm.OpI64Or}, {i64t, wasm.OpI64Xor},
		{i64t, wasm.OpI64Shl}, {i64t, wasm.OpI64ShrS}, {i64t, wasm.OpI64ShrU},
		{i64t, wasm.OpI64Eq}, {i64t, wasm.OpI64LtS}, {i64t, wasm.OpI64GeU},
		{f32t, wasm.OpF32Add}, {f32t, wasm.OpF32Div}, {f32t, wasm.OpF32Min},
		{f64t, wasm.OpF64Add}, {f64t, wasm.OpF64Sub}, {f64t, wasm.OpF64Mul},
		{f64t, wasm.OpF64Div}, {f64t, wasm.OpF64Max}, {f64t, wasm.OpF64Copysign},
		{f64t, wasm.OpF64Eq}, {f64t, wasm.OpF64Lt},
	}
	vals := []Value{0, 1, 2, I32(-1), I32(math.MinInt32), uint64(math.MaxUint32),
		F64(1.5), F64(-0.0), F64(math.NaN()), F64(math.Inf(1)), I64(math.MinInt64), 63, 64}
	for _, tc := range binOps {
		b := new(wasm.BodyBuilder).
			OpU32(wasm.OpLocalGet, 0).OpU32(wasm.OpLocalGet, 1).Op(tc.op).End()
		out := tc.vt
		if isComparisonOp(tc.op) {
			out = i32
		}
		m := buildModule(t, singleFunc([]wasm.ValueType{tc.vt, tc.vt}, []wasm.ValueType{out}, nil, b))
		p := newTierPair(t, m, Config{}, nil)
		for _, a := range vals {
			for _, bb := range vals {
				p.call("f", a, bb)
			}
		}
	}
	unaryOps := []struct {
		vt wasm.ValueType
		op wasm.Opcode
	}{
		{i32, wasm.OpI32Eqz}, {i32, wasm.OpI32Clz}, {i32, wasm.OpI32Ctz}, {i32, wasm.OpI32Popcnt},
		{i32, wasm.OpI32Extend8S}, {i32, wasm.OpI32Extend16S},
		{i64t, wasm.OpI64Eqz}, {i64t, wasm.OpI64Clz}, {i64t, wasm.OpI64Extend32S},
		{f64t, wasm.OpF64Abs}, {f64t, wasm.OpF64Neg}, {f64t, wasm.OpF64Sqrt},
		{f64t, wasm.OpF64Floor}, {f64t, wasm.OpF64Nearest},
	}
	for _, tc := range unaryOps {
		b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Op(tc.op).End()
		out := tc.vt
		if isComparisonOp(tc.op) {
			out = i32
		}
		m := buildModule(t, singleFunc([]wasm.ValueType{tc.vt}, []wasm.ValueType{out}, nil, b))
		p := newTierPair(t, m, Config{}, nil)
		for _, v := range vals {
			p.call("f", v)
		}
	}
}

func TestTierDiffTruncSat(t *testing.T) {
	for _, misc := range []uint32{
		wasm.MiscI32TruncSatF64S, wasm.MiscI32TruncSatF64U,
		wasm.MiscI64TruncSatF64S, wasm.MiscI64TruncSatF64U,
	} {
		out := i32
		if misc >= wasm.MiscI64TruncSatF32S {
			out = i64t
		}
		b := new(wasm.BodyBuilder).OpU32(wasm.OpLocalGet, 0).Misc(misc).End()
		m := buildModule(t, singleFunc([]wasm.ValueType{f64t}, []wasm.ValueType{out}, nil, b))
		p := newTierPair(t, m, Config{}, nil)
		for _, v := range []float64{0, 1.7, -1.7, 1e30, -1e30, math.NaN(), math.Inf(-1)} {
			p.call("f", F64(v))
		}
	}
}

// Branches that carry values across erased block boundaries.
func TestTierDiffBranchWithValues(t *testing.T) {
	b := new(wasm.BodyBuilder)
	b.Block(wasm.OpBlock, wasm.BlockTypeOf(i32))
	b.I32Const(7)
	b.OpU32(wasm.OpLocalGet, 0)
	b.OpU32(wasm.OpBrIf, 0)
	b.Op(wasm.OpDrop)
	b.I32Const(13)
	b.End()
	b.End()
	m := buildModule(t, singleFunc([]wasm.ValueType{i32}, []wasm.ValueType{i32}, nil, b))
	p := newTierPair(t, m, Config{}, nil)
	p.call("f", I32(1))
	p.call("f", I32(0))
}

// --- tier-up mechanics ------------------------------------------------------

// The hotness policy must flip an instance to tier 1 mid-stream with no
// observable change other than LastInvokeTier.
func TestTierUpHotnessPolicy(t *testing.T) {
	m := factorialModule(t)
	s := NewStore(Config{})
	inst, err := s.Instantiate(m, "hot")
	if err != nil {
		t.Fatal(err)
	}
	inst.Code().SetTierPolicy(TierPolicy{Mode: TierModeHotness, InvokeThreshold: 3})
	want := AsI32(mustCall(t, inst, "f", I32(10))[0])
	for i := 0; i < 10; i++ {
		got := AsI32(mustCall(t, inst, "f", I32(10))[0])
		if got != want {
			t.Fatalf("invoke %d: %d, want %d", i, got, want)
		}
	}
	if inst.Code().Tier1() == nil {
		t.Fatal("hotness policy never tiered up")
	}
	if inst.Code().TierUps() != 1 {
		t.Fatalf("TierUps = %d, want 1", inst.Code().TierUps())
	}
	if s.LastInvokeTier() != 1 {
		t.Fatal("warm instance still serving at tier 0 after tier-up")
	}
}

func mustCall(t *testing.T, inst *Instance, name string, args ...Value) []Value {
	t.Helper()
	res, err := inst.Call(name, args...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

// Dropping the artifact (the cache-eviction path) must fall back to tier 0
// transparently and reset hotness so the module re-earns tier-up.
func TestDropTier1FallsBackToTier0(t *testing.T) {
	m := factorialModule(t)
	s := NewStore(Config{})
	inst, err := s.Instantiate(m, "drop")
	if err != nil {
		t.Fatal(err)
	}
	mc := inst.Code()
	mc.SetTierPolicy(TierPolicy{Mode: TierModeHotness, InvokeThreshold: 100})
	mc.EnsureTier1()
	want := AsI32(mustCall(t, inst, "f", I32(10))[0])
	if s.LastInvokeTier() != 1 {
		t.Fatal("not serving at tier 1 after EnsureTier1")
	}
	mc.DropTier1()
	if mc.Tier1() != nil {
		t.Fatal("artifact still published after DropTier1")
	}
	got := AsI32(mustCall(t, inst, "f", I32(10))[0])
	if got != want {
		t.Fatalf("after drop: %d, want %d", got, want)
	}
	if s.LastInvokeTier() != 0 {
		t.Fatal("still claiming tier 1 after drop")
	}
	if inv, _ := mc.HotStats(0); inv == 0 {
		t.Fatal("hotness not re-accumulating after drop")
	}
}

// Concurrent tier-up on a shared ModuleCode: the lowering is singleflighted
// (exactly one tierUp) and every store then serves tier 1. Run with -race.
func TestConcurrentTierUpSingleflight(t *testing.T) {
	m := factorialModule(t)
	mc, err := Precompile(m)
	if err != nil {
		t.Fatal(err)
	}
	mc.SetTierPolicy(TierPolicy{Mode: TierModeHotness, InvokeThreshold: 2})
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewStore(Config{})
			inst, err := s.InstantiateCompiled(mc, "")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 50; i++ {
				res, err := inst.Call("f", I32(10))
				if err != nil {
					errs <- err
					return
				}
				if AsI32(res[0]) != 3628800 {
					errs <- err
					return
				}
			}
			if s.LastInvokeTier() != 1 {
				t.Error("worker finished without reaching tier 1")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := mc.TierUps(); got != 1 {
		t.Fatalf("TierUps = %d, want exactly 1 (singleflight)", got)
	}
}

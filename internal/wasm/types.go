// Package wasm implements the WebAssembly binary format: the module data
// model, a binary decoder and encoder, and a full validator for the MVP
// feature set plus the sign-extension and non-trapping float-to-int
// conversion proposals. Execution lives in the exec subpackage.
package wasm

import (
	"fmt"
	"strings"
)

// ValueType is a WebAssembly value type.
type ValueType byte

// Value types as encoded in the binary format.
const (
	ValueTypeI32 ValueType = 0x7f
	ValueTypeI64 ValueType = 0x7e
	ValueTypeF32 ValueType = 0x7d
	ValueTypeF64 ValueType = 0x7c
	// ValueTypeFuncref is the reference type used in tables (MVP: the only
	// element type).
	ValueTypeFuncref ValueType = 0x70
)

// String returns the textual-format name of the value type.
func (v ValueType) String() string {
	switch v {
	case ValueTypeI32:
		return "i32"
	case ValueTypeI64:
		return "i64"
	case ValueTypeF32:
		return "f32"
	case ValueTypeF64:
		return "f64"
	case ValueTypeFuncref:
		return "funcref"
	default:
		return fmt.Sprintf("valuetype(0x%x)", byte(v))
	}
}

// IsNumeric reports whether v is one of the four numeric value types.
func (v ValueType) IsNumeric() bool {
	switch v {
	case ValueTypeI32, ValueTypeI64, ValueTypeF32, ValueTypeF64:
		return true
	}
	return false
}

// FuncType describes the signature of a function: parameter and result types.
type FuncType struct {
	Params  []ValueType
	Results []ValueType
}

// Equal reports whether two function types are structurally identical.
func (t FuncType) Equal(o FuncType) bool {
	if len(t.Params) != len(o.Params) || len(t.Results) != len(o.Results) {
		return false
	}
	for i, p := range t.Params {
		if o.Params[i] != p {
			return false
		}
	}
	for i, r := range t.Results {
		if o.Results[i] != r {
			return false
		}
	}
	return true
}

// String renders the signature in WAT-like notation, e.g. "(i32, i32) -> (i32)".
func (t FuncType) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, p := range t.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(") -> (")
	for i, r := range t.Results {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(r.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Limits bound the size of a memory or table. Max is valid only if HasMax.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// Valid reports whether the limits are well-formed under the given hard cap.
func (l Limits) Valid(cap uint32) bool {
	if l.Min > cap {
		return false
	}
	if l.HasMax && (l.Max > cap || l.Max < l.Min) {
		return false
	}
	return true
}

// MemoryType describes a linear memory. MVP memories hold at most 65536
// 64 KiB pages (4 GiB).
type MemoryType struct {
	Limits Limits
}

// TableType describes a table; the MVP element type is always funcref.
type TableType struct {
	ElemType ValueType
	Limits   Limits
}

// GlobalType describes a global variable.
type GlobalType struct {
	ValType ValueType
	Mutable bool
}

// External kinds used by import and export entries.
type ExternalKind byte

// Import/export descriptor kinds.
const (
	ExternalFunc   ExternalKind = 0
	ExternalTable  ExternalKind = 1
	ExternalMemory ExternalKind = 2
	ExternalGlobal ExternalKind = 3
)

// String returns the textual name of the external kind.
func (k ExternalKind) String() string {
	switch k {
	case ExternalFunc:
		return "func"
	case ExternalTable:
		return "table"
	case ExternalMemory:
		return "memory"
	case ExternalGlobal:
		return "global"
	default:
		return fmt.Sprintf("externalkind(%d)", byte(k))
	}
}

// Import is a single import entry.
type Import struct {
	Module string
	Name   string
	Kind   ExternalKind

	// Exactly one of the following is meaningful, selected by Kind.
	Func   uint32 // type index
	Table  TableType
	Memory MemoryType
	Global GlobalType
}

// Export is a single export entry.
type Export struct {
	Name  string
	Kind  ExternalKind
	Index uint32
}

// Global is a module-defined global with its constant initializer.
type Global struct {
	Type GlobalType
	Init ConstExpr
}

// ConstExpr is a constant initializer expression (MVP: one instruction).
type ConstExpr struct {
	Op opcodeKind // which constant form
	// Value holds the raw bits for const forms; for GlobalGet it is the index.
	Value uint64
}

type opcodeKind byte

// Constant expression forms.
const (
	ConstI32 opcodeKind = iota
	ConstI64
	ConstF32
	ConstF64
	ConstGlobalGet
)

// I32Const builds an i32 constant expression.
func I32Const(v int32) ConstExpr { return ConstExpr{Op: ConstI32, Value: uint64(uint32(v))} }

// I64Const builds an i64 constant expression.
func I64Const(v int64) ConstExpr { return ConstExpr{Op: ConstI64, Value: uint64(v)} }

// GlobalGet builds a global.get constant expression.
func GlobalGet(idx uint32) ConstExpr { return ConstExpr{Op: ConstGlobalGet, Value: uint64(idx)} }

// Type returns the value type produced by the expression; for global.get the
// type is resolved against the importedGlobals list.
func (c ConstExpr) Type(importedGlobals []GlobalType) (ValueType, bool) {
	switch c.Op {
	case ConstI32:
		return ValueTypeI32, true
	case ConstI64:
		return ValueTypeI64, true
	case ConstF32:
		return ValueTypeF32, true
	case ConstF64:
		return ValueTypeF64, true
	case ConstGlobalGet:
		idx := int(c.Value)
		if idx >= len(importedGlobals) {
			return 0, false
		}
		return importedGlobals[idx].ValType, true
	}
	return 0, false
}

// ElementSegment initializes a range of a table with function indices.
type ElementSegment struct {
	TableIndex uint32
	Offset     ConstExpr
	Indices    []uint32
}

// DataSegment initializes a range of a memory with bytes.
type DataSegment struct {
	MemoryIndex uint32
	Offset      ConstExpr
	Data        []byte
}

// Code is the body of a module-defined function.
type Code struct {
	// Locals lists the declared local variables (after parameters), expanded
	// one entry per local.
	Locals []ValueType
	// Body is the raw instruction stream, ending with the 0x0b end opcode.
	Body []byte
}

// CustomSection preserves the name and payload of a custom section.
type CustomSection struct {
	Name string
	Data []byte
}

// Hard limits from the embedding. These match common engine defaults.
const (
	// MaxMemoryPages is the number of 64 KiB pages addressable in 32-bit wasm.
	MaxMemoryPages = 65536
	// PageSize is the WebAssembly linear-memory page size.
	PageSize = 65536
	// MaxFunctionLocals bounds the number of locals per function.
	MaxFunctionLocals = 50000
)

// BlockTypeOf returns the s33 block-type encoding of a single result value
// type (e.g. i32 encodes as -1). Use BlockTypeEmpty for no result and a
// non-negative type index for multi-value signatures.
func BlockTypeOf(vt ValueType) int64 { return int64(int8(byte(vt) | 0x80)) }

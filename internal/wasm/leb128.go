package wasm

import (
	"errors"
	"fmt"
)

// LEB128 encoding/decoding as specified by the WebAssembly binary format.
// Unsigned and signed variants are bounded to the bit width of the target
// integer type; over-long or out-of-range encodings are rejected, matching
// the spec's canonical-validation rules for integer immediates.

var (
	errLEBTooLong    = errors.New("wasm: integer representation too long")
	errLEBTooLarge   = errors.New("wasm: integer too large")
	errUnexpectedEOF = errors.New("wasm: unexpected end of section or function")
)

// readU32 decodes an unsigned LEB128 value of at most 32 bits from b,
// returning the value and the number of bytes consumed.
func readU32(b []byte) (uint32, int, error) {
	var result uint32
	var shift uint
	for i := 0; i < 5; i++ {
		if i >= len(b) {
			return 0, 0, errUnexpectedEOF
		}
		c := b[i]
		if i == 4 && c > 0x0f {
			return 0, 0, errLEBTooLarge
		}
		result |= uint32(c&0x7f) << shift
		if c&0x80 == 0 {
			return result, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, errLEBTooLong
}

// readU64 decodes an unsigned LEB128 value of at most 64 bits.
func readU64(b []byte) (uint64, int, error) {
	var result uint64
	var shift uint
	for i := 0; i < 10; i++ {
		if i >= len(b) {
			return 0, 0, errUnexpectedEOF
		}
		c := b[i]
		if i == 9 && c > 0x01 {
			return 0, 0, errLEBTooLarge
		}
		result |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			return result, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, errLEBTooLong
}

// readS32 decodes a signed LEB128 value of at most 32 bits.
func readS32(b []byte) (int32, int, error) {
	var result int32
	var shift uint
	for i := 0; i < 5; i++ {
		if i >= len(b) {
			return 0, 0, errUnexpectedEOF
		}
		c := b[i]
		if i == 4 {
			// Last byte: only 4 payload bits remain; the upper bits must be a
			// proper sign extension.
			if c&0x80 != 0 {
				return 0, 0, errLEBTooLong
			}
			high := c & 0x78 // bits 3..6 beyond the 32-bit range (bit 3 is the sign)
			if high != 0 && high != 0x78 {
				return 0, 0, errLEBTooLarge
			}
		}
		result |= int32(c&0x7f) << shift
		shift += 7
		if c&0x80 == 0 {
			if shift < 32 && c&0x40 != 0 {
				result |= -1 << shift
			}
			return result, i + 1, nil
		}
	}
	return 0, 0, errLEBTooLong
}

// readS64 decodes a signed LEB128 value of at most 64 bits.
func readS64(b []byte) (int64, int, error) {
	var result int64
	var shift uint
	for i := 0; i < 10; i++ {
		if i >= len(b) {
			return 0, 0, errUnexpectedEOF
		}
		c := b[i]
		if i == 9 {
			if c&0x80 != 0 {
				return 0, 0, errLEBTooLong
			}
			if c != 0x00 && c != 0x7f {
				return 0, 0, errLEBTooLarge
			}
		}
		result |= int64(c&0x7f) << shift
		shift += 7
		if c&0x80 == 0 {
			if shift < 64 && c&0x40 != 0 {
				result |= -1 << shift
			}
			return result, i + 1, nil
		}
	}
	return 0, 0, errLEBTooLong
}

// readS33 decodes the signed 33-bit LEB128 used for block types.
func readS33(b []byte) (int64, int, error) {
	var result int64
	var shift uint
	for i := 0; i < 5; i++ {
		if i >= len(b) {
			return 0, 0, errUnexpectedEOF
		}
		c := b[i]
		if i == 4 {
			if c&0x80 != 0 {
				return 0, 0, errLEBTooLong
			}
			high := c & 0x70
			if high != 0 && high != 0x70 {
				return 0, 0, errLEBTooLarge
			}
		}
		result |= int64(c&0x7f) << shift
		shift += 7
		if c&0x80 == 0 {
			if shift < 33 && c&0x40 != 0 {
				result |= -1 << shift
			}
			return result, i + 1, nil
		}
	}
	return 0, 0, errLEBTooLong
}

// appendU32 appends the unsigned LEB128 encoding of v to dst.
func appendU32(dst []byte, v uint32) []byte {
	for {
		c := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			c |= 0x80
		}
		dst = append(dst, c)
		if v == 0 {
			return dst
		}
	}
}

// appendU64 appends the unsigned LEB128 encoding of v to dst.
func appendU64(dst []byte, v uint64) []byte {
	for {
		c := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			c |= 0x80
		}
		dst = append(dst, c)
		if v == 0 {
			return dst
		}
	}
}

// appendS32 appends the signed LEB128 encoding of v to dst.
func appendS32(dst []byte, v int32) []byte {
	return appendS64(dst, int64(v))
}

// appendS64 appends the signed LEB128 encoding of v to dst.
func appendS64(dst []byte, v int64) []byte {
	for {
		c := byte(v & 0x7f)
		v >>= 7
		if (v == 0 && c&0x40 == 0) || (v == -1 && c&0x40 != 0) {
			return append(dst, c)
		}
		dst = append(dst, c|0x80)
	}
}

// decodeError annotates a low-level decoding error with a byte offset.
func decodeError(off int, err error) error {
	return fmt.Errorf("wasm: at offset %d: %w", off, err)
}

// ReadU32 is the exported form of readU32, used by the exec compiler.
func ReadU32(b []byte) (uint32, int, error) { return readU32(b) }

// ReadS32 is the exported form of readS32.
func ReadS32(b []byte) (int32, int, error) { return readS32(b) }

// ReadS64 is the exported form of readS64.
func ReadS64(b []byte) (int64, int, error) { return readS64(b) }

// ReadS33 is the exported form of readS33 (block types).
func ReadS33(b []byte) (int64, int, error) { return readS33(b) }

// AppendU32 is the exported form of appendU32, used by the WAT assembler.
func AppendU32(dst []byte, v uint32) []byte { return appendU32(dst, v) }

// AppendS32 is the exported form of appendS32.
func AppendS32(dst []byte, v int32) []byte { return appendS32(dst, v) }

// AppendS64 is the exported form of appendS64.
func AppendS64(dst []byte, v int64) []byte { return appendS64(dst, v) }

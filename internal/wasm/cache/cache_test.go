package cache

import (
	"fmt"
	"sync"
	"testing"

	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/wat"
)

// modBinary assembles a distinct add-N module so each test module has a
// unique content digest.
func modBinary(t testing.TB, n int) []byte {
	t.Helper()
	src := fmt.Sprintf(`(module (func (export "run") (param i32) (result i32)
		local.get 0 i32.const %d i32.add))`, n)
	bin, err := wat.CompileToBinary(src)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestLoadCompilesOnceAndShares(t *testing.T) {
	c := New(0)
	bin := modBinary(t, 1)
	e1, err := c.Load(bin)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Load(bin)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 || e1.Module != e2.Module || e1.Code != e2.Code {
		t.Fatal("repeated loads did not share the entry")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 entry", st)
	}
	if st.Bytes != e1.Cost() || e1.Cost() <= 0 {
		t.Fatalf("bytes = %d, want entry cost %d > 0", st.Bytes, e1.Cost())
	}
}

func TestLoadBadBinaryNotCached(t *testing.T) {
	c := New(0)
	if _, err := c.Load([]byte("not wasm")); err == nil {
		t.Fatal("bad binary loaded")
	}
	if _, err := c.Load([]byte("not wasm")); err == nil {
		t.Fatal("bad binary loaded on retry")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 entries, 2 misses (errors retry)", st)
	}
}

// TestConcurrentLoadCompilesOnce hammers one binary from 8 goroutines and
// asserts a single compile served them all (run under -race in CI).
func TestConcurrentLoadCompilesOnce(t *testing.T) {
	c := New(0)
	bin := modBinary(t, 2)
	const workers = 8
	entries := make([]*Entry, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e, err := c.Load(bin)
				if err != nil {
					t.Error(err)
					return
				}
				entries[w] = e
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if entries[w] != entries[0] {
			t.Fatal("goroutines observed different entries")
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("module compiled %d times under contention, want 1", st.Misses)
	}
	if st.Hits != workers*50-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, workers*50-1)
	}
	// The shared artifact must actually execute: instantiate from several
	// goroutines at once (ModuleCode is immutable and shared).
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := exec.NewStore(exec.Config{})
			inst, err := s.InstantiateCompiled(entries[0].Code, "")
			if err != nil {
				t.Error(err)
				return
			}
			res, err := inst.Call("run", exec.I32(40))
			if err != nil {
				t.Error(err)
				return
			}
			if exec.AsI32(res[0]) != 42 {
				t.Errorf("run(40) = %d, want 42", exec.AsI32(res[0]))
			}
		}()
	}
	wg.Wait()
}

func TestEvictionRecompiles(t *testing.T) {
	binA := modBinary(t, 10)
	binB := modBinary(t, 11)
	// Bound the cache so it holds exactly one of the two entries.
	probe := New(0)
	ea, err := probe.Load(binA)
	if err != nil {
		t.Fatal(err)
	}
	c := New(ea.Cost() + ea.Cost()/2)
	if _, err := c.Load(binA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(binB); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 eviction leaving 1 entry", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over bound %d after eviction", st.Bytes, st.MaxBytes)
	}
	// A evicted: loading it again recompiles and the result still runs.
	e2, err := c.Load(binA)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != 3 {
		t.Fatalf("misses = %d, want 3 (evicted entry recompiled)", c.Stats().Misses)
	}
	s := exec.NewStore(exec.Config{})
	inst, err := s.InstantiateCompiled(e2.Code, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("run", exec.I32(1))
	if err != nil {
		t.Fatal(err)
	}
	if exec.AsI32(res[0]) != 11 {
		t.Fatalf("run(1) = %d, want 11", exec.AsI32(res[0]))
	}
}

package cache

import (
	"testing"

	"wasmcontainers/internal/wasm/exec"
)

// tierUp force-lowers the entry's tier-1 body and records it in the cache,
// the way an engine tier-up listener would.
func tierUp(t *testing.T, c *Cache, e *Entry) {
	t.Helper()
	if _, ok := e.Code.EnsureTier1(); !ok && e.Code.Tier1() == nil {
		t.Fatal("tier-up produced no artifact")
	}
	c.NoteTier1(e)
}

// callRun invokes the test module's "run" export on a fresh instance and
// returns the result plus the tier that served the call.
func callRun(t *testing.T, e *Entry, arg int32) (int32, int) {
	t.Helper()
	s := exec.NewStore(exec.Config{})
	inst, err := s.InstantiateCompiled(e.Code, "")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := inst.Call("run", exec.I32(arg))
	if err != nil {
		t.Fatal(err)
	}
	return exec.AsI32(vals[0]), s.LastInvokeTier()
}

func TestTier1NoteChargesOncePerArtifact(t *testing.T) {
	c := New(0)
	e, err := c.Load(modBinary(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	tierUp(t, c, e)
	st := c.Stats()
	if st.Tier1.Misses != 1 || st.Tier1.Hits != 0 {
		t.Fatalf("tier1 stats = %+v, want 1 miss", st.Tier1)
	}
	if st.Tier1Bytes != e.Code.Tier1Bytes() || st.Tier1Bytes <= 0 {
		t.Fatalf("tier1 bytes = %d, want %d > 0", st.Tier1Bytes, e.Code.Tier1Bytes())
	}
	if st.Entries != 2 || st.Bytes != e.Cost()+st.Tier1Bytes {
		t.Fatalf("stats = %+v: tier-1 artifact must be one extra entry charged once", st)
	}
	// Re-noting the same artifact is a touch, not a second charge.
	c.NoteTier1(e)
	st = c.Stats()
	if st.Tier1.Hits != 1 || st.Tier1.Misses != 1 || st.Tier1Bytes != e.Code.Tier1Bytes() {
		t.Fatalf("re-note stats = %+v", st)
	}
	// The per-kind split must sum to the flat totals.
	if st.Hits != st.Module.Hits+st.Tier1.Hits ||
		st.Misses != st.Module.Misses+st.Tier1.Misses ||
		st.Evictions != st.Module.Evictions+st.Tier1.Evictions {
		t.Fatalf("kind split does not sum to totals: %+v", st)
	}
}

func TestTier1EvictionFallsBackToTier0(t *testing.T) {
	// Size the bound from real artifact costs so exactly the tier-1 node is
	// pushed out: module1 + tier1 fit, module1 + tier1 + module2 do not, but
	// module1 + module2 do.
	scratch := New(0)
	e1s, err := scratch.Load(modBinary(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	e2s, err := scratch.Load(modBinary(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	e1s.Code.EnsureTier1()
	t1cost := e1s.Code.Tier1Bytes()
	if t1cost <= 0 {
		t.Fatal("no tier-1 bytes")
	}

	c := New(e1s.Cost() + t1cost + e2s.Cost() - 1)
	e1, err := c.Load(modBinary(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	tierUp(t, c, e1)
	// Touch the module so the tier-1 node is the LRU victim.
	if _, err := c.Load(modBinary(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(modBinary(t, 2)); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Tier1.Evictions != 1 || st.Module.Evictions != 0 {
		t.Fatalf("evictions = %+v, want exactly the tier-1 artifact evicted", st)
	}
	if st.Tier1Bytes != 0 {
		t.Fatalf("tier1 bytes = %d after eviction, want 0", st.Tier1Bytes)
	}
	if e1.Code.Tier1() != nil {
		t.Fatal("eviction did not unpublish the tier-1 artifact")
	}
	// The module itself stays resident and serves tier-0 invokes untroubled.
	got, tier := callRun(t, e1, 41)
	if got != 42 || tier != 0 {
		t.Fatalf("post-eviction run = %d on tier %d, want 42 on tier 0", got, tier)
	}
	if st2 := c.Stats(); st2.Module.Hits != st.Module.Hits {
		t.Fatal("tier-0 fallback should not touch the cache")
	}
	// Hotness counters were reset by the drop: the module can re-earn its
	// tier and be re-recorded. Freshen module 1 first so the re-noted
	// artifact displaces module 2, not its own module.
	if _, err := c.Load(modBinary(t, 1)); err != nil {
		t.Fatal(err)
	}
	tierUp(t, c, e1)
	st = c.Stats()
	if st.Tier1.Misses != 2 || st.Tier1Bytes != t1cost || st.Module.Evictions != 1 {
		t.Fatalf("re-tier-up stats = %+v", st)
	}
}

func TestModuleEvictionDropsItsTier1(t *testing.T) {
	scratch := New(0)
	e1s, err := scratch.Load(modBinary(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	e1s.Code.EnsureTier1()
	// Bound fits one module plus its tier-1 artifact, nothing more.
	c := New(e1s.Cost() + e1s.Code.Tier1Bytes())
	e1, err := c.Load(modBinary(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	tierUp(t, c, e1)
	// Loading a second module overflows the bound; the oldest artifact is
	// module 1, and its tier-1 sibling must not be left behind as garbage.
	if _, err := c.Load(modBinary(t, 2)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Module.Evictions != 1 || st.Tier1.Evictions != 1 {
		t.Fatalf("evictions = %+v, want module and its tier-1 artifact", st)
	}
	if st.Tier1Bytes != 0 || e1.Code.Tier1() != nil {
		t.Fatalf("tier-1 artifact survived its module's eviction: %+v", st)
	}
	if got, tier := callRun(t, e1, 1); got != 2 || tier != 0 {
		t.Fatalf("evicted-entry holder run = %d tier %d, want 2 tier 0", got, tier)
	}
}

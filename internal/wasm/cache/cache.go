// Package cache provides a content-addressed cache of compiled WebAssembly
// modules. Entries are keyed by the SHA-256 of the module binary and hold the
// decoded+validated module together with its precompiled executable code
// (exec.ModuleCode), both immutable and shared by reference — so N instances
// of the same module decode, validate, and compile exactly once and charge
// one copy of compiled-code bytes, the mechanism behind the paper's
// shared-runtime-code memory accounting for warm pools and high pod density.
//
// The cache is safe for concurrent use. Concurrent loads of the same binary
// are deduplicated singleflight-style: one goroutine compiles while the rest
// wait for its result. Resident entries are bounded by bytes with LRU
// eviction; an evicted entry stays valid for holders of its pointer and is
// simply recompiled on the next load.
package cache

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/exec"
)

// Digest is the content address of a module binary.
type Digest = [sha256.Size]byte

// Entry is one immutable cached compilation artifact.
type Entry struct {
	Digest  Digest
	BinSize int64
	Module  *wasm.Module
	Code    *exec.ModuleCode
}

// Cost is the bytes this entry charges against the cache bound: the compiled
// code plus the decoded module (approximated by its binary size, which the
// decoded structures reference).
func (e *Entry) Cost() int64 { return e.Code.CodeBytes() + e.BinSize }

// Stats is a snapshot of cache counters.
type Stats struct {
	// Hits counts loads served from a resident entry or by waiting on an
	// in-flight compile; Misses counts loads that compiled.
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
	MaxBytes  int64
}

// slot is an in-flight compile other loaders can wait on.
type slot struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Cache is a byte-bounded, content-addressed compiled-module cache.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[Digest]*list.Element // value: *Entry
	lru      *list.List               // front = most recently used
	slots    map[Digest]*slot

	hits      uint64
	misses    uint64
	evictions uint64
}

// New creates a cache bounded to maxBytes of entry cost. maxBytes <= 0 means
// unbounded.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		entries:  make(map[Digest]*list.Element),
		lru:      list.New(),
		slots:    make(map[Digest]*slot),
	}
}

// Load returns the compiled entry for bin, compiling it at most once no
// matter how many goroutines ask concurrently. Failed compiles are not
// cached: every waiter receives the error and a later Load retries.
func (c *Cache) Load(bin []byte) (*Entry, error) {
	digest := sha256.Sum256(bin)
	c.mu.Lock()
	if el, ok := c.entries[digest]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		e := el.Value.(*Entry)
		c.mu.Unlock()
		return e, nil
	}
	if sl, ok := c.slots[digest]; ok {
		// Someone is compiling this binary right now: wait for their result.
		c.hits++
		c.mu.Unlock()
		<-sl.done
		return sl.entry, sl.err
	}
	sl := &slot{done: make(chan struct{})}
	c.slots[digest] = sl
	c.misses++
	c.mu.Unlock()

	e, err := compile(bin, digest)

	c.mu.Lock()
	delete(c.slots, digest)
	sl.entry, sl.err = e, err
	if err == nil {
		c.insertLocked(e)
	}
	c.mu.Unlock()
	close(sl.done)
	return e, err
}

// compile runs the full pipeline outside the cache lock.
func compile(bin []byte, digest Digest) (*Entry, error) {
	m, err := wasm.Decode(bin)
	if err != nil {
		return nil, err
	}
	if err := wasm.Validate(m); err != nil {
		return nil, err
	}
	mc, err := exec.Precompile(m)
	if err != nil {
		return nil, err
	}
	return &Entry{Digest: digest, BinSize: int64(len(bin)), Module: m, Code: mc}, nil
}

// insertLocked adds e and evicts least-recently-used entries while over the
// bound — but never the entry just inserted, so oversized modules still cache.
func (c *Cache) insertLocked(e *Entry) {
	el := c.lru.PushFront(e)
	c.entries[e.Digest] = el
	c.bytes += e.Cost()
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		victim := back.Value.(*Entry)
		c.lru.Remove(back)
		delete(c.entries, victim.Digest)
		c.bytes -= victim.Cost()
		c.evictions++
	}
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}

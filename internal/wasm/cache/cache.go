// Package cache provides a content-addressed cache of compiled WebAssembly
// modules. Entries are keyed by the SHA-256 of the module binary and hold the
// decoded+validated module together with its precompiled executable code
// (exec.ModuleCode), both immutable and shared by reference — so N instances
// of the same module decode, validate, and compile exactly once and charge
// one copy of compiled-code bytes, the mechanism behind the paper's
// shared-runtime-code memory accounting for warm pools and high pod density.
//
// The cache is safe for concurrent use. Concurrent loads of the same binary
// are deduplicated singleflight-style: one goroutine compiles while the rest
// wait for its result. Resident entries are bounded by bytes with LRU
// eviction; an evicted entry stays valid for holders of its pointer and is
// simply recompiled on the next load.
package cache

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"time"

	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/exec"
)

// Digest is the content address of a module binary.
type Digest = [sha256.Size]byte

// Entry is one immutable cached compilation artifact.
type Entry struct {
	Digest  Digest
	BinSize int64
	Module  *wasm.Module
	Code    *exec.ModuleCode
}

// Cost is the bytes this entry charges against the cache bound: the compiled
// code plus the decoded module (approximated by its binary size, which the
// decoded structures reference).
func (e *Entry) Cost() int64 { return e.Code.CodeBytes() + e.BinSize }

// Stats is a snapshot of cache counters.
type Stats struct {
	// Hits counts loads served from a resident entry or by waiting on an
	// in-flight compile; Misses counts loads that compiled.
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
	MaxBytes  int64
}

// slot is an in-flight compile other loaders can wait on.
type slot struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Cache is a byte-bounded, content-addressed compiled-module cache.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[Digest]*list.Element // value: *Entry
	lru      *list.List               // front = most recently used
	slots    map[Digest]*slot

	hits      uint64
	misses    uint64
	evictions uint64

	// Telemetry handles, nil when observation is disabled (the handle
	// methods then no-op without allocating). The tracer needs an explicit
	// nil check at span call sites.
	obsHits      *obs.Counter
	obsMisses    *obs.Counter
	obsEvictions *obs.Counter
	obsBytes     *obs.Gauge
	obsCompileNs *obs.Histogram
	obsTracer    *obs.Tracer
}

// New creates a cache bounded to maxBytes of entry cost. maxBytes <= 0 means
// unbounded.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		entries:  make(map[Digest]*list.Element),
		lru:      list.New(),
		slots:    make(map[Digest]*slot),
	}
}

// SetObserver wires telemetry into the cache: hit/miss/eviction counters, a
// resident-bytes gauge, a compile-time histogram, and module-load spans with
// the decode/validate/lower phase split. Pass nil to disable (the default);
// the disabled path costs a nil check per counter and no allocations.
func (c *Cache) SetObserver(t *obs.Telemetry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t == nil {
		c.obsHits, c.obsMisses, c.obsEvictions = nil, nil, nil
		c.obsBytes, c.obsCompileNs, c.obsTracer = nil, nil, nil
		return
	}
	c.obsHits = t.Counter("modcache_hits_total")
	c.obsMisses = t.Counter("modcache_misses_total")
	c.obsEvictions = t.Counter("modcache_evictions_total")
	c.obsBytes = t.Gauge("modcache_resident_bytes")
	c.obsCompileNs = t.Histogram("modcache_compile_wall_ns")
	c.obsTracer = t.Tracer()
}

// Load returns the compiled entry for bin, compiling it at most once no
// matter how many goroutines ask concurrently. Failed compiles are not
// cached: every waiter receives the error and a later Load retries.
func (c *Cache) Load(bin []byte) (*Entry, error) {
	digest := sha256.Sum256(bin)
	c.mu.Lock()
	if el, ok := c.entries[digest]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		e := el.Value.(*Entry)
		hitTracer := c.obsTracer
		c.mu.Unlock()
		c.obsHits.Inc()
		if hitTracer != nil {
			now := hitTracer.Now()
			hitTracer.Span("module-load", "cache", 0, now, now, obs.I64("cache_hit", 1))
		}
		return e, nil
	}
	if sl, ok := c.slots[digest]; ok {
		// Someone is compiling this binary right now: wait for their result.
		c.hits++
		c.mu.Unlock()
		c.obsHits.Inc()
		<-sl.done
		return sl.entry, sl.err
	}
	sl := &slot{done: make(chan struct{})}
	c.slots[digest] = sl
	c.misses++
	tracer := c.obsTracer
	c.mu.Unlock()
	c.obsMisses.Inc()

	e, err := c.compileObserved(bin, digest, tracer)

	c.mu.Lock()
	delete(c.slots, digest)
	sl.entry, sl.err = e, err
	if err == nil {
		c.insertLocked(e)
		c.obsBytes.Set(c.bytes)
	}
	c.mu.Unlock()
	close(sl.done)
	return e, err
}

// compileObserved runs the full pipeline outside the cache lock, timing each
// phase when a tracer is attached. Span timestamps come from the tracer
// clock (simulated time under the DES); the wall-clock nanoseconds of the
// whole compile ride along as a span attribute and histogram sample, since
// compilation is real work even when the surrounding timeline is simulated.
func (c *Cache) compileObserved(bin []byte, digest Digest, tracer *obs.Tracer) (*Entry, error) {
	if tracer == nil {
		return compile(bin, digest)
	}
	start := tracer.Now()
	wallStart := time.Now()
	t0 := wallStart
	m, err := wasm.Decode(bin)
	decodeNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	err = wasm.Validate(m)
	validateNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	mc, err := exec.Precompile(m)
	lowerNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	wallNs := time.Since(wallStart).Nanoseconds()
	c.obsCompileNs.Record(wallNs)
	tracer.Span("module-load", "cache", 0, start, tracer.Now(),
		obs.I64("cache_hit", 0),
		obs.I64("decode_wall_ns", decodeNs),
		obs.I64("validate_wall_ns", validateNs),
		obs.I64("lower_wall_ns", lowerNs),
		obs.I64("wall_ns", wallNs),
		obs.I64("bin_bytes", int64(len(bin))))
	return &Entry{Digest: digest, BinSize: int64(len(bin)), Module: m, Code: mc}, nil
}

// compile runs the full pipeline outside the cache lock.
func compile(bin []byte, digest Digest) (*Entry, error) {
	m, err := wasm.Decode(bin)
	if err != nil {
		return nil, err
	}
	if err := wasm.Validate(m); err != nil {
		return nil, err
	}
	mc, err := exec.Precompile(m)
	if err != nil {
		return nil, err
	}
	return &Entry{Digest: digest, BinSize: int64(len(bin)), Module: m, Code: mc}, nil
}

// insertLocked adds e and evicts least-recently-used entries while over the
// bound — but never the entry just inserted, so oversized modules still cache.
func (c *Cache) insertLocked(e *Entry) {
	el := c.lru.PushFront(e)
	c.entries[e.Digest] = el
	c.bytes += e.Cost()
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		victim := back.Value.(*Entry)
		c.lru.Remove(back)
		delete(c.entries, victim.Digest)
		c.bytes -= victim.Cost()
		c.evictions++
		c.obsEvictions.Inc()
	}
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}

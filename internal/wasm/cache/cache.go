// Package cache provides a content-addressed cache of compiled WebAssembly
// modules. Entries are keyed by the SHA-256 of the module binary and hold the
// decoded+validated module together with its precompiled executable code
// (exec.ModuleCode), both immutable and shared by reference — so N instances
// of the same module decode, validate, and compile exactly once and charge
// one copy of compiled-code bytes, the mechanism behind the paper's
// shared-runtime-code memory accounting for warm pools and high pod density.
//
// The cache is safe for concurrent use. Concurrent loads of the same binary
// are deduplicated singleflight-style: one goroutine compiles while the rest
// wait for its result. Resident entries are bounded by bytes with LRU
// eviction; an evicted entry stays valid for holders of its pointer and is
// simply recompiled on the next load.
package cache

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"time"

	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/exec"
)

// Digest is the content address of a module binary.
type Digest = [sha256.Size]byte

// Entry is one immutable cached compilation artifact.
type Entry struct {
	Digest  Digest
	BinSize int64
	Module  *wasm.Module
	Code    *exec.ModuleCode
}

// Cost is the bytes this entry charges against the cache bound: the compiled
// code plus the decoded module (approximated by its binary size, which the
// decoded structures reference).
func (e *Entry) Cost() int64 { return e.Code.CodeBytes() + e.BinSize }

// Kind distinguishes the artifact kinds the cache accounts: the compiled
// (tier-0) module, and the optional tier-1 direct-threaded code lowered from
// it after tier-up.
type Kind int

// Artifact kinds.
const (
	KindModule Kind = iota
	KindTier1
	numKinds
)

// KindStats is one artifact kind's slice of the counters. For modules a hit
// is a Load served without compiling and a miss is a compile; for tier-1
// artifacts a miss is a tier-up recorded (the artifact was lowered) and a hit
// is a re-record of an already-resident artifact.
type KindStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats is a snapshot of cache counters. The flat Hits/Misses/Evictions are
// totals across artifact kinds; Module and Tier1 carry the per-kind split.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64

	Module KindStats
	Tier1  KindStats

	// Entries counts resident artifacts of both kinds; Bytes is their total
	// charged cost, of which Tier1Bytes is the tier-1 share.
	Entries    int
	Bytes      int64
	Tier1Bytes int64
	MaxBytes   int64
}

// node is one LRU-resident artifact: a compiled module entry or the tier-1
// code lowered from one. cost is frozen at insert time so the charge and the
// discharge always match.
type node struct {
	e    *Entry
	kind Kind
	cost int64
}

// slot is an in-flight compile other loaders can wait on.
type slot struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Cache is a byte-bounded, content-addressed compiled-module cache.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	t1bytes  int64
	entries  map[Digest]*list.Element // module nodes; value: *node
	t1       map[Digest]*list.Element // tier-1 nodes; value: *node
	lru      *list.List               // both kinds; front = most recently used
	slots    map[Digest]*slot

	hits      [numKinds]uint64
	misses    [numKinds]uint64
	evictions [numKinds]uint64

	// Telemetry handles, nil when observation is disabled (the handle
	// methods then no-op without allocating). The tracer needs an explicit
	// nil check at span call sites.
	obsHits      *obs.Counter
	obsMisses    *obs.Counter
	obsEvictions *obs.Counter
	obsBytes     *obs.Gauge
	obsT1Bytes   *obs.Gauge
	obsCompileNs *obs.Histogram
	obsTracer    *obs.Tracer
}

// New creates a cache bounded to maxBytes of entry cost. maxBytes <= 0 means
// unbounded.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		entries:  make(map[Digest]*list.Element),
		t1:       make(map[Digest]*list.Element),
		lru:      list.New(),
		slots:    make(map[Digest]*slot),
	}
}

// SetObserver wires telemetry into the cache: hit/miss/eviction counters, a
// resident-bytes gauge, a compile-time histogram, and module-load spans with
// the decode/validate/lower phase split. Pass nil to disable (the default);
// the disabled path costs a nil check per counter and no allocations.
func (c *Cache) SetObserver(t *obs.Telemetry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t == nil {
		c.obsHits, c.obsMisses, c.obsEvictions = nil, nil, nil
		c.obsBytes, c.obsT1Bytes = nil, nil
		c.obsCompileNs, c.obsTracer = nil, nil
		return
	}
	c.obsHits = t.Counter("modcache_hits_total")
	c.obsMisses = t.Counter("modcache_misses_total")
	c.obsEvictions = t.Counter("modcache_evictions_total")
	c.obsBytes = t.Gauge("modcache_resident_bytes")
	c.obsCompileNs = t.Histogram("modcache_compile_wall_ns")
	c.obsTracer = t.Tracer()
}

// Load returns the compiled entry for bin, compiling it at most once no
// matter how many goroutines ask concurrently. Failed compiles are not
// cached: every waiter receives the error and a later Load retries.
func (c *Cache) Load(bin []byte) (*Entry, error) {
	digest := sha256.Sum256(bin)
	c.mu.Lock()
	if el, ok := c.entries[digest]; ok {
		c.lru.MoveToFront(el)
		c.hits[KindModule]++
		e := el.Value.(*node).e
		hitTracer := c.obsTracer
		c.mu.Unlock()
		c.obsHits.Inc()
		if hitTracer != nil {
			now := hitTracer.Now()
			hitTracer.Span("module-load", "cache", 0, now, now, obs.I64("cache_hit", 1))
		}
		return e, nil
	}
	if sl, ok := c.slots[digest]; ok {
		// Someone is compiling this binary right now: wait for their result.
		c.hits[KindModule]++
		c.mu.Unlock()
		c.obsHits.Inc()
		<-sl.done
		return sl.entry, sl.err
	}
	sl := &slot{done: make(chan struct{})}
	c.slots[digest] = sl
	c.misses[KindModule]++
	tracer := c.obsTracer
	c.mu.Unlock()
	c.obsMisses.Inc()

	e, err := c.compileObserved(bin, digest, tracer)

	c.mu.Lock()
	delete(c.slots, digest)
	sl.entry, sl.err = e, err
	var drops []*Entry
	if err == nil {
		drops = c.insertLocked(e)
		c.obsBytes.Set(c.bytes)
		c.obsT1Bytes.Set(c.t1bytes)
	}
	c.mu.Unlock()
	close(sl.done)
	dropTier1(drops)
	return e, err
}

// NoteTier1 records e's tier-1 artifact as a resident cache artifact. Like
// compiled code and the baseline image, tier-1 code is charged once per node
// against the same byte bound no matter how many instances run it, and is
// LRU-evictable beside the module entries. Evicting a tier-1 node unpublishes
// the artifact (exec.ModuleCode.DropTier1): instances fall back to tier 0 on
// their next invoke, without error, and the module must re-earn tier-up.
// Call it from a tier-up listener or after an eager EnsureTier1.
func (c *Cache) NoteTier1(e *Entry) {
	cost := e.Code.Tier1Bytes()
	if cost <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.t1[e.Digest]; ok {
		n := el.Value.(*node)
		c.bytes += cost - n.cost
		c.t1bytes += cost - n.cost
		n.cost = cost
		c.lru.MoveToFront(el)
		c.hits[KindTier1]++
	} else {
		el := c.lru.PushFront(&node{e: e, kind: KindTier1, cost: cost})
		c.t1[e.Digest] = el
		c.bytes += cost
		c.t1bytes += cost
		c.misses[KindTier1]++
	}
	drops := c.evictLocked()
	c.obsBytes.Set(c.bytes)
	c.obsT1Bytes.Set(c.t1bytes)
	c.mu.Unlock()
	dropTier1(drops)
}

// dropTier1 unpublishes evicted tier-1 artifacts. It runs strictly outside
// the cache lock: DropTier1 takes the module's tier mutex, under which
// tier-up listeners may call back into the cache.
func dropTier1(drops []*Entry) {
	for _, e := range drops {
		e.Code.DropTier1()
	}
}

// compileObserved runs the full pipeline outside the cache lock, timing each
// phase when a tracer is attached. Span timestamps come from the tracer
// clock (simulated time under the DES); the wall-clock nanoseconds of the
// whole compile ride along as a span attribute and histogram sample, since
// compilation is real work even when the surrounding timeline is simulated.
func (c *Cache) compileObserved(bin []byte, digest Digest, tracer *obs.Tracer) (*Entry, error) {
	if tracer == nil {
		return compile(bin, digest)
	}
	start := tracer.Now()
	wallStart := time.Now()
	t0 := wallStart
	m, err := wasm.Decode(bin)
	decodeNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	err = wasm.Validate(m)
	validateNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	mc, err := exec.Precompile(m)
	lowerNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	wallNs := time.Since(wallStart).Nanoseconds()
	c.obsCompileNs.Record(wallNs)
	tracer.Span("module-load", "cache", 0, start, tracer.Now(),
		obs.I64("cache_hit", 0),
		obs.I64("decode_wall_ns", decodeNs),
		obs.I64("validate_wall_ns", validateNs),
		obs.I64("lower_wall_ns", lowerNs),
		obs.I64("wall_ns", wallNs),
		obs.I64("bin_bytes", int64(len(bin))))
	return &Entry{Digest: digest, BinSize: int64(len(bin)), Module: m, Code: mc}, nil
}

// compile runs the full pipeline outside the cache lock.
func compile(bin []byte, digest Digest) (*Entry, error) {
	m, err := wasm.Decode(bin)
	if err != nil {
		return nil, err
	}
	if err := wasm.Validate(m); err != nil {
		return nil, err
	}
	mc, err := exec.Precompile(m)
	if err != nil {
		return nil, err
	}
	return &Entry{Digest: digest, BinSize: int64(len(bin)), Module: m, Code: mc}, nil
}

// insertLocked adds e and evicts least-recently-used artifacts while over the
// bound — but never the entry just inserted, so oversized modules still
// cache. It returns entries whose tier-1 artifact must be dropped; the caller
// does so after releasing the lock.
func (c *Cache) insertLocked(e *Entry) []*Entry {
	el := c.lru.PushFront(&node{e: e, kind: KindModule, cost: e.Cost()})
	c.entries[e.Digest] = el
	c.bytes += e.Cost()
	return c.evictLocked()
}

// evictLocked walks the LRU tail while over the byte bound. Evicting a module
// also evicts its tier-1 sibling (tier-1 code is useless without the module
// it was lowered from); evicting a tier-1 node alone leaves the module
// resident and execution falls back to tier 0. Returns the entries whose
// tier-1 artifact the caller must unpublish outside the lock.
func (c *Cache) evictLocked() []*Entry {
	if c.maxBytes <= 0 {
		return nil
	}
	var drops []*Entry
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		n := back.Value.(*node)
		c.lru.Remove(back)
		c.bytes -= n.cost
		c.evictions[n.kind]++
		c.obsEvictions.Inc()
		switch n.kind {
		case KindModule:
			delete(c.entries, n.e.Digest)
			if t1el, ok := c.t1[n.e.Digest]; ok {
				t1n := t1el.Value.(*node)
				c.lru.Remove(t1el)
				delete(c.t1, n.e.Digest)
				c.bytes -= t1n.cost
				c.t1bytes -= t1n.cost
				c.evictions[KindTier1]++
				c.obsEvictions.Inc()
				drops = append(drops, n.e)
			}
		case KindTier1:
			delete(c.t1, n.e.Digest)
			c.t1bytes -= n.cost
			drops = append(drops, n.e)
		}
	}
	return drops
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits[KindModule] + c.hits[KindTier1],
		Misses:    c.misses[KindModule] + c.misses[KindTier1],
		Evictions: c.evictions[KindModule] + c.evictions[KindTier1],
		Module: KindStats{
			Hits:      c.hits[KindModule],
			Misses:    c.misses[KindModule],
			Evictions: c.evictions[KindModule],
		},
		Tier1: KindStats{
			Hits:      c.hits[KindTier1],
			Misses:    c.misses[KindTier1],
			Evictions: c.evictions[KindTier1],
		},
		Entries:    c.lru.Len(),
		Bytes:      c.bytes,
		Tier1Bytes: c.t1bytes,
		MaxBytes:   c.maxBytes,
	}
}

package wasm

import (
	"errors"
	"fmt"
)

// Validate checks the module against the WebAssembly validation rules for
// the MVP feature set (plus sign-extension and saturating-truncation
// instructions). It returns nil if the module is valid.
func Validate(m *Module) error {
	// Imports: type indices in range; single-table/single-memory rules are
	// enforced across imports + definitions.
	for _, imp := range m.Imports {
		switch imp.Kind {
		case ExternalFunc:
			if int(imp.Func) >= len(m.Types) {
				return fmt.Errorf("wasm: import %q.%q: unknown type %d", imp.Module, imp.Name, imp.Func)
			}
		case ExternalTable:
			if !imp.Table.Limits.Valid(1 << 31) {
				return fmt.Errorf("wasm: import %q.%q: invalid table limits", imp.Module, imp.Name)
			}
		case ExternalMemory:
			if !imp.Memory.Limits.Valid(MaxMemoryPages) {
				return fmt.Errorf("wasm: import %q.%q: memory size exceeds 4GiB", imp.Module, imp.Name)
			}
		case ExternalGlobal:
			// Imported globals must be immutable in the MVP.
			if imp.Global.Mutable {
				return fmt.Errorf("wasm: import %q.%q: mutable globals cannot be imported (MVP)", imp.Module, imp.Name)
			}
		}
	}
	if m.NumImportedTables()+len(m.Tables) > 1 {
		return errors.New("wasm: multiple tables (MVP allows at most one)")
	}
	if m.NumImportedMemories()+len(m.Memories) > 1 {
		return errors.New("wasm: multiple memories (MVP allows at most one)")
	}
	for i, t := range m.Tables {
		if !t.Limits.Valid(1 << 31) {
			return fmt.Errorf("wasm: table %d: invalid limits", i)
		}
	}
	for i, mem := range m.Memories {
		if !mem.Limits.Valid(MaxMemoryPages) {
			return fmt.Errorf("wasm: memory %d: size exceeds 4GiB", i)
		}
	}

	// Function section type indices.
	for i, ti := range m.Functions {
		if int(ti) >= len(m.Types) {
			return fmt.Errorf("wasm: function %d: unknown type %d", i, ti)
		}
	}

	// Globals: initializer must be constant, reference only *imported*
	// globals, and match the declared type.
	importedGlobals := m.ImportedGlobalTypes()
	for i, g := range m.Globals {
		vt, ok := g.Init.Type(importedGlobals)
		if !ok {
			return fmt.Errorf("wasm: global %d: initializer references unknown global", i)
		}
		if g.Init.Op == ConstGlobalGet {
			gi := int(g.Init.Value)
			if gi < len(importedGlobals) && importedGlobals[gi].Mutable {
				return fmt.Errorf("wasm: global %d: initializer references mutable global", i)
			}
		}
		if vt != g.Type.ValType {
			return fmt.Errorf("wasm: global %d: initializer type %s does not match declared %s", i, vt, g.Type.ValType)
		}
	}

	// Exports: indices in range per kind.
	numFuncs := m.NumImportedFuncs() + len(m.Functions)
	numTables := m.NumImportedTables() + len(m.Tables)
	numMems := m.NumImportedMemories() + len(m.Memories)
	numGlobals := len(importedGlobals) + len(m.Globals)
	for _, e := range m.Exports {
		var limit int
		switch e.Kind {
		case ExternalFunc:
			limit = numFuncs
		case ExternalTable:
			limit = numTables
		case ExternalMemory:
			limit = numMems
		case ExternalGlobal:
			limit = numGlobals
		}
		if int(e.Index) >= limit {
			return fmt.Errorf("wasm: export %q: unknown %s %d", e.Name, e.Kind, e.Index)
		}
	}

	// Start function: must exist and have type [] -> [].
	if m.StartSet {
		ft, err := m.FuncTypeAt(m.Start)
		if err != nil {
			return fmt.Errorf("wasm: start: %w", err)
		}
		if len(ft.Params) != 0 || len(ft.Results) != 0 {
			return fmt.Errorf("wasm: start function %d has non-empty signature %s", m.Start, ft)
		}
	}

	// Element segments: table 0 must exist; offsets are i32 consts; function
	// indices in range.
	for i, seg := range m.Elements {
		if numTables == 0 {
			return fmt.Errorf("wasm: element segment %d: no table defined", i)
		}
		if vt, ok := seg.Offset.Type(importedGlobals); !ok || vt != ValueTypeI32 {
			return fmt.Errorf("wasm: element segment %d: offset must be constant i32", i)
		}
		for _, fi := range seg.Indices {
			if int(fi) >= numFuncs {
				return fmt.Errorf("wasm: element segment %d: unknown function %d", i, fi)
			}
		}
	}

	// Data segments: memory 0 must exist; offsets are i32 consts.
	for i, seg := range m.Data {
		if numMems == 0 {
			return fmt.Errorf("wasm: data segment %d: no memory defined", i)
		}
		if vt, ok := seg.Offset.Type(importedGlobals); !ok || vt != ValueTypeI32 {
			return fmt.Errorf("wasm: data segment %d: offset must be constant i32", i)
		}
	}

	// Function bodies.
	if len(m.Codes) != len(m.Functions) {
		return fmt.Errorf("wasm: function and code counts differ (%d vs %d)", len(m.Functions), len(m.Codes))
	}
	for i := range m.Codes {
		fidx := uint32(m.NumImportedFuncs() + i)
		ft := m.Types[m.Functions[i]]
		if err := validateBody(m, ft, &m.Codes[i]); err != nil {
			return fmt.Errorf("wasm: function %d %s: %w", fidx, ft, err)
		}
	}
	return nil
}

// unknownType marks a stack slot of polymorphic (unreachable) type.
const unknownType ValueType = 0

type ctrlFrame struct {
	op          Opcode // Block, Loop, If, or 0 for the implicit function body
	startTypes  []ValueType
	endTypes    []ValueType
	stackHeight int
	unreachable bool
}

// labelTypes returns the types a branch to this frame must provide:
// loop labels take the start types, all others take the end types.
func (f *ctrlFrame) labelTypes() []ValueType {
	if f.op == OpLoop {
		return f.startTypes
	}
	return f.endTypes
}

type bodyValidator struct {
	m       *Module
	locals  []ValueType
	stack   []ValueType
	ctrl    []ctrlFrame
	hasMem  bool
	hasTbl  bool
	numFunc int
	numGlob int
}

func (v *bodyValidator) push(t ValueType) { v.stack = append(v.stack, t) }

func (v *bodyValidator) pop() (ValueType, error) {
	cur := &v.ctrl[len(v.ctrl)-1]
	if len(v.stack) == cur.stackHeight {
		if cur.unreachable {
			return unknownType, nil
		}
		return 0, errors.New("type mismatch: stack underflow")
	}
	t := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return t, nil
}

func (v *bodyValidator) popExpect(want ValueType) (ValueType, error) {
	got, err := v.pop()
	if err != nil {
		return 0, err
	}
	if got != want && got != unknownType && want != unknownType {
		return 0, fmt.Errorf("type mismatch: expected %s, found %s", want, got)
	}
	return got, nil
}

func (v *bodyValidator) popMany(want []ValueType) error {
	for i := len(want) - 1; i >= 0; i-- {
		if _, err := v.popExpect(want[i]); err != nil {
			return err
		}
	}
	return nil
}

func (v *bodyValidator) pushMany(ts []ValueType) {
	for _, t := range ts {
		v.push(t)
	}
}

func (v *bodyValidator) pushCtrl(op Opcode, in, out []ValueType) {
	v.ctrl = append(v.ctrl, ctrlFrame{op: op, startTypes: in, endTypes: out, stackHeight: len(v.stack)})
	v.pushMany(in)
}

func (v *bodyValidator) popCtrl() (ctrlFrame, error) {
	if len(v.ctrl) == 0 {
		return ctrlFrame{}, errors.New("unbalanced end")
	}
	frame := v.ctrl[len(v.ctrl)-1]
	if err := v.popMany(frame.endTypes); err != nil {
		return ctrlFrame{}, err
	}
	if len(v.stack) != frame.stackHeight {
		return ctrlFrame{}, fmt.Errorf("type mismatch: %d values remaining on stack at end of block", len(v.stack)-frame.stackHeight)
	}
	v.ctrl = v.ctrl[:len(v.ctrl)-1]
	return frame, nil
}

func (v *bodyValidator) setUnreachable() {
	cur := &v.ctrl[len(v.ctrl)-1]
	v.stack = v.stack[:cur.stackHeight]
	cur.unreachable = true
}

func (v *bodyValidator) frameAt(depth uint32) (*ctrlFrame, error) {
	if int(depth) >= len(v.ctrl) {
		return nil, fmt.Errorf("unknown label %d (depth %d)", depth, len(v.ctrl))
	}
	return &v.ctrl[len(v.ctrl)-1-int(depth)], nil
}

// blockTypeSignature resolves an s33-encoded block type to its signature.
func (v *bodyValidator) blockTypeSignature(bt int64) (in, out []ValueType, err error) {
	if bt >= 0 {
		if int(bt) >= len(v.m.Types) {
			return nil, nil, fmt.Errorf("unknown type %d in block type", bt)
		}
		t := v.m.Types[int(bt)]
		return t.Params, t.Results, nil
	}
	if bt == BlockTypeEmpty {
		return nil, nil, nil
	}
	vt := ValueType(uint8(bt & 0x7f))
	if !vt.IsNumeric() {
		return nil, nil, fmt.Errorf("invalid block type 0x%x", uint8(bt&0x7f))
	}
	return nil, []ValueType{vt}, nil
}

func validateBody(m *Module, ft FuncType, code *Code) error {
	v := &bodyValidator{
		m:       m,
		locals:  append(append([]ValueType(nil), ft.Params...), code.Locals...),
		hasMem:  m.NumImportedMemories()+len(m.Memories) > 0,
		hasTbl:  m.NumImportedTables()+len(m.Tables) > 0,
		numFunc: m.NumImportedFuncs() + len(m.Functions),
		numGlob: m.NumImportedGlobals() + len(m.Globals),
	}
	v.pushCtrl(0, nil, ft.Results)

	r := &reader{buf: code.Body}
	for r.remaining() > 0 {
		opByte, err := r.byte()
		if err != nil {
			return err
		}
		op := Opcode(opByte)
		if !knownOpcode(op) {
			return fmt.Errorf("illegal opcode 0x%x", opByte)
		}
		if err := v.step(op, r); err != nil {
			return fmt.Errorf("at body offset %d (%s): %w", r.off-1, OpcodeName(op), err)
		}
		if len(v.ctrl) == 0 {
			// The implicit function frame was popped by the final end; no
			// trailing instructions are allowed.
			if r.remaining() != 0 {
				return errors.New("instructions after function end")
			}
			return nil
		}
	}
	return errors.New("function body truncated (missing end)")
}

func (v *bodyValidator) step(op Opcode, r *reader) error {
	switch op {
	case OpUnreachable:
		v.setUnreachable()
	case OpNop:
	case OpBlock, OpLoop:
		val, n, err := readS33(r.buf[r.off:])
		if err != nil {
			return err
		}
		r.off += n
		in, out, err := v.blockTypeSignature(val)
		if err != nil {
			return err
		}
		if err := v.popMany(in); err != nil {
			return err
		}
		v.pushCtrl(op, in, out)
	case OpIf:
		val, n, err := readS33(r.buf[r.off:])
		if err != nil {
			return err
		}
		r.off += n
		if _, err := v.popExpect(ValueTypeI32); err != nil {
			return err
		}
		in, out, err := v.blockTypeSignature(val)
		if err != nil {
			return err
		}
		if err := v.popMany(in); err != nil {
			return err
		}
		v.pushCtrl(OpIf, in, out)
	case OpElse:
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		if frame.op != OpIf {
			return errors.New("else without matching if")
		}
		v.pushCtrl(OpElse, frame.startTypes, frame.endTypes)
	case OpEnd:
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		// An if with results and no else is invalid unless start==end types.
		if frame.op == OpIf && !typesEqual(frame.startTypes, frame.endTypes) {
			return errors.New("if without else has mismatched signature")
		}
		v.pushMany(frame.endTypes)
	case OpBr:
		depth, err := r.u32()
		if err != nil {
			return err
		}
		frame, err := v.frameAt(depth)
		if err != nil {
			return err
		}
		if err := v.popMany(frame.labelTypes()); err != nil {
			return err
		}
		v.setUnreachable()
	case OpBrIf:
		depth, err := r.u32()
		if err != nil {
			return err
		}
		if _, err := v.popExpect(ValueTypeI32); err != nil {
			return err
		}
		frame, err := v.frameAt(depth)
		if err != nil {
			return err
		}
		lt := frame.labelTypes()
		if err := v.popMany(lt); err != nil {
			return err
		}
		v.pushMany(lt)
	case OpBrTable:
		n, err := r.u32()
		if err != nil {
			return err
		}
		targets := make([]uint32, n)
		for i := range targets {
			if targets[i], err = r.u32(); err != nil {
				return err
			}
		}
		def, err := r.u32()
		if err != nil {
			return err
		}
		if _, err := v.popExpect(ValueTypeI32); err != nil {
			return err
		}
		defFrame, err := v.frameAt(def)
		if err != nil {
			return err
		}
		arity := defFrame.labelTypes()
		for _, t := range targets {
			f, err := v.frameAt(t)
			if err != nil {
				return err
			}
			if !typesEqual(f.labelTypes(), arity) {
				return errors.New("br_table targets have inconsistent label types")
			}
		}
		if err := v.popMany(arity); err != nil {
			return err
		}
		v.setUnreachable()
	case OpReturn:
		if err := v.popMany(v.ctrl[0].endTypes); err != nil {
			return err
		}
		v.setUnreachable()
	case OpCall:
		fi, err := r.u32()
		if err != nil {
			return err
		}
		if int(fi) >= v.numFunc {
			return fmt.Errorf("unknown function %d", fi)
		}
		ft, err := v.m.FuncTypeAt(fi)
		if err != nil {
			return err
		}
		if err := v.popMany(ft.Params); err != nil {
			return err
		}
		v.pushMany(ft.Results)
	case OpCallIndirect:
		ti, err := r.u32()
		if err != nil {
			return err
		}
		tbl, err := r.byte()
		if err != nil {
			return err
		}
		if tbl != 0 {
			return errors.New("call_indirect reserved byte must be zero (MVP)")
		}
		if !v.hasTbl {
			return errors.New("call_indirect without a table")
		}
		if int(ti) >= len(v.m.Types) {
			return fmt.Errorf("unknown type %d", ti)
		}
		if _, err := v.popExpect(ValueTypeI32); err != nil {
			return err
		}
		ft := v.m.Types[ti]
		if err := v.popMany(ft.Params); err != nil {
			return err
		}
		v.pushMany(ft.Results)
	case OpDrop:
		if _, err := v.pop(); err != nil {
			return err
		}
	case OpSelect:
		if _, err := v.popExpect(ValueTypeI32); err != nil {
			return err
		}
		t1, err := v.pop()
		if err != nil {
			return err
		}
		t2, err := v.pop()
		if err != nil {
			return err
		}
		if t1 != t2 && t1 != unknownType && t2 != unknownType {
			return fmt.Errorf("select operands differ: %s vs %s", t1, t2)
		}
		if t1 == unknownType {
			v.push(t2)
		} else {
			v.push(t1)
		}
	case OpLocalGet, OpLocalSet, OpLocalTee:
		li, err := r.u32()
		if err != nil {
			return err
		}
		if int(li) >= len(v.locals) {
			return fmt.Errorf("unknown local %d", li)
		}
		lt := v.locals[li]
		switch op {
		case OpLocalGet:
			v.push(lt)
		case OpLocalSet:
			if _, err := v.popExpect(lt); err != nil {
				return err
			}
		case OpLocalTee:
			if _, err := v.popExpect(lt); err != nil {
				return err
			}
			v.push(lt)
		}
	case OpGlobalGet, OpGlobalSet:
		gi, err := r.u32()
		if err != nil {
			return err
		}
		gt, ok := v.m.GlobalTypeAt(gi)
		if !ok {
			return fmt.Errorf("unknown global %d", gi)
		}
		if op == OpGlobalGet {
			v.push(gt.ValType)
		} else {
			if !gt.Mutable {
				return fmt.Errorf("global %d is immutable", gi)
			}
			if _, err := v.popExpect(gt.ValType); err != nil {
				return err
			}
		}
	case OpMemorySize, OpMemoryGrow:
		res, err := r.byte()
		if err != nil {
			return err
		}
		if res != 0 {
			return errors.New("memory instruction reserved byte must be zero")
		}
		if !v.hasMem {
			return errors.New("memory instruction without a memory")
		}
		if op == OpMemoryGrow {
			if _, err := v.popExpect(ValueTypeI32); err != nil {
				return err
			}
		}
		v.push(ValueTypeI32)
	case OpI32Const:
		if _, err := r.s32(); err != nil {
			return err
		}
		v.push(ValueTypeI32)
	case OpI64Const:
		if _, err := r.s64(); err != nil {
			return err
		}
		v.push(ValueTypeI64)
	case OpF32Const:
		if _, err := r.f32(); err != nil {
			return err
		}
		v.push(ValueTypeF32)
	case OpF64Const:
		if _, err := r.f64(); err != nil {
			return err
		}
		v.push(ValueTypeF64)
	case OpMisc:
		sub, err := r.u32()
		if err != nil {
			return err
		}
		return v.stepMisc(sub, r)
	default:
		return v.stepFixed(op, r)
	}
	return nil
}

func (v *bodyValidator) stepMisc(sub uint32, r *reader) error {
	switch sub {
	case MiscI32TruncSatF32S, MiscI32TruncSatF32U:
		return v.unop(ValueTypeF32, ValueTypeI32)
	case MiscI32TruncSatF64S, MiscI32TruncSatF64U:
		return v.unop(ValueTypeF64, ValueTypeI32)
	case MiscI64TruncSatF32S, MiscI64TruncSatF32U:
		return v.unop(ValueTypeF32, ValueTypeI64)
	case MiscI64TruncSatF64S, MiscI64TruncSatF64U:
		return v.unop(ValueTypeF64, ValueTypeI64)
	case MiscMemoryCopy:
		b, err := r.bytes(2)
		if err != nil {
			return err
		}
		if b[0] != 0 || b[1] != 0 {
			return errors.New("memory.copy reserved bytes must be zero")
		}
		if !v.hasMem {
			return errors.New("memory.copy without a memory")
		}
		return v.popMany([]ValueType{ValueTypeI32, ValueTypeI32, ValueTypeI32})
	case MiscMemoryFill:
		b, err := r.byte()
		if err != nil {
			return err
		}
		if b != 0 {
			return errors.New("memory.fill reserved byte must be zero")
		}
		if !v.hasMem {
			return errors.New("memory.fill without a memory")
		}
		return v.popMany([]ValueType{ValueTypeI32, ValueTypeI32, ValueTypeI32})
	default:
		return fmt.Errorf("illegal misc opcode %d", sub)
	}
}

func (v *bodyValidator) unop(in, out ValueType) error {
	if _, err := v.popExpect(in); err != nil {
		return err
	}
	v.push(out)
	return nil
}

func (v *bodyValidator) binop(in, out ValueType) error {
	if _, err := v.popExpect(in); err != nil {
		return err
	}
	if _, err := v.popExpect(in); err != nil {
		return err
	}
	v.push(out)
	return nil
}

// memAccess validates the align/offset immediates of a load or store against
// the natural alignment (log2 of access width).
func (v *bodyValidator) memAccess(r *reader, naturalAlign uint32) error {
	align, err := r.u32()
	if err != nil {
		return err
	}
	if _, err := r.u32(); err != nil { // offset
		return err
	}
	if align > naturalAlign {
		return fmt.Errorf("alignment 2^%d exceeds natural alignment 2^%d", align, naturalAlign)
	}
	if !v.hasMem {
		return errors.New("memory access without a memory")
	}
	return nil
}

func (v *bodyValidator) load(r *reader, naturalAlign uint32, out ValueType) error {
	if err := v.memAccess(r, naturalAlign); err != nil {
		return err
	}
	if _, err := v.popExpect(ValueTypeI32); err != nil {
		return err
	}
	v.push(out)
	return nil
}

func (v *bodyValidator) store(r *reader, naturalAlign uint32, val ValueType) error {
	if err := v.memAccess(r, naturalAlign); err != nil {
		return err
	}
	if _, err := v.popExpect(val); err != nil {
		return err
	}
	if _, err := v.popExpect(ValueTypeI32); err != nil {
		return err
	}
	return nil
}

// stepFixed handles all fixed-signature numeric/memory instructions.
func (v *bodyValidator) stepFixed(op Opcode, r *reader) error {
	switch op {
	// Loads.
	case OpI32Load:
		return v.load(r, 2, ValueTypeI32)
	case OpI64Load:
		return v.load(r, 3, ValueTypeI64)
	case OpF32Load:
		return v.load(r, 2, ValueTypeF32)
	case OpF64Load:
		return v.load(r, 3, ValueTypeF64)
	case OpI32Load8S, OpI32Load8U:
		return v.load(r, 0, ValueTypeI32)
	case OpI32Load16S, OpI32Load16U:
		return v.load(r, 1, ValueTypeI32)
	case OpI64Load8S, OpI64Load8U:
		return v.load(r, 0, ValueTypeI64)
	case OpI64Load16S, OpI64Load16U:
		return v.load(r, 1, ValueTypeI64)
	case OpI64Load32S, OpI64Load32U:
		return v.load(r, 2, ValueTypeI64)
	// Stores.
	case OpI32Store:
		return v.store(r, 2, ValueTypeI32)
	case OpI64Store:
		return v.store(r, 3, ValueTypeI64)
	case OpF32Store:
		return v.store(r, 2, ValueTypeF32)
	case OpF64Store:
		return v.store(r, 3, ValueTypeF64)
	case OpI32Store8:
		return v.store(r, 0, ValueTypeI32)
	case OpI32Store16:
		return v.store(r, 1, ValueTypeI32)
	case OpI64Store8:
		return v.store(r, 0, ValueTypeI64)
	case OpI64Store16:
		return v.store(r, 1, ValueTypeI64)
	case OpI64Store32:
		return v.store(r, 2, ValueTypeI64)
	// i32 tests/comparisons.
	case OpI32Eqz:
		return v.unop(ValueTypeI32, ValueTypeI32)
	case OpI32Eq, OpI32Ne, OpI32LtS, OpI32LtU, OpI32GtS, OpI32GtU, OpI32LeS, OpI32LeU, OpI32GeS, OpI32GeU:
		return v.binop(ValueTypeI32, ValueTypeI32)
	case OpI64Eqz:
		return v.unop(ValueTypeI64, ValueTypeI32)
	case OpI64Eq, OpI64Ne, OpI64LtS, OpI64LtU, OpI64GtS, OpI64GtU, OpI64LeS, OpI64LeU, OpI64GeS, OpI64GeU:
		return v.binop(ValueTypeI64, ValueTypeI32)
	case OpF32Eq, OpF32Ne, OpF32Lt, OpF32Gt, OpF32Le, OpF32Ge:
		return v.binop(ValueTypeF32, ValueTypeI32)
	case OpF64Eq, OpF64Ne, OpF64Lt, OpF64Gt, OpF64Le, OpF64Ge:
		return v.binop(ValueTypeF64, ValueTypeI32)
	// i32 arithmetic.
	case OpI32Clz, OpI32Ctz, OpI32Popcnt:
		return v.unop(ValueTypeI32, ValueTypeI32)
	case OpI32Add, OpI32Sub, OpI32Mul, OpI32DivS, OpI32DivU, OpI32RemS, OpI32RemU,
		OpI32And, OpI32Or, OpI32Xor, OpI32Shl, OpI32ShrS, OpI32ShrU, OpI32Rotl, OpI32Rotr:
		return v.binop(ValueTypeI32, ValueTypeI32)
	case OpI64Clz, OpI64Ctz, OpI64Popcnt:
		return v.unop(ValueTypeI64, ValueTypeI64)
	case OpI64Add, OpI64Sub, OpI64Mul, OpI64DivS, OpI64DivU, OpI64RemS, OpI64RemU,
		OpI64And, OpI64Or, OpI64Xor, OpI64Shl, OpI64ShrS, OpI64ShrU, OpI64Rotl, OpI64Rotr:
		return v.binop(ValueTypeI64, ValueTypeI64)
	case OpF32Abs, OpF32Neg, OpF32Ceil, OpF32Floor, OpF32Trunc, OpF32Nearest, OpF32Sqrt:
		return v.unop(ValueTypeF32, ValueTypeF32)
	case OpF32Add, OpF32Sub, OpF32Mul, OpF32Div, OpF32Min, OpF32Max, OpF32Copysign:
		return v.binop(ValueTypeF32, ValueTypeF32)
	case OpF64Abs, OpF64Neg, OpF64Ceil, OpF64Floor, OpF64Trunc, OpF64Nearest, OpF64Sqrt:
		return v.unop(ValueTypeF64, ValueTypeF64)
	case OpF64Add, OpF64Sub, OpF64Mul, OpF64Div, OpF64Min, OpF64Max, OpF64Copysign:
		return v.binop(ValueTypeF64, ValueTypeF64)
	// Conversions.
	case OpI32WrapI64:
		return v.unop(ValueTypeI64, ValueTypeI32)
	case OpI32TruncF32S, OpI32TruncF32U:
		return v.unop(ValueTypeF32, ValueTypeI32)
	case OpI32TruncF64S, OpI32TruncF64U:
		return v.unop(ValueTypeF64, ValueTypeI32)
	case OpI64ExtendI32S, OpI64ExtendI32U:
		return v.unop(ValueTypeI32, ValueTypeI64)
	case OpI64TruncF32S, OpI64TruncF32U:
		return v.unop(ValueTypeF32, ValueTypeI64)
	case OpI64TruncF64S, OpI64TruncF64U:
		return v.unop(ValueTypeF64, ValueTypeI64)
	case OpF32ConvertI32S, OpF32ConvertI32U:
		return v.unop(ValueTypeI32, ValueTypeF32)
	case OpF32ConvertI64S, OpF32ConvertI64U:
		return v.unop(ValueTypeI64, ValueTypeF32)
	case OpF32DemoteF64:
		return v.unop(ValueTypeF64, ValueTypeF32)
	case OpF64ConvertI32S, OpF64ConvertI32U:
		return v.unop(ValueTypeI32, ValueTypeF64)
	case OpF64ConvertI64S, OpF64ConvertI64U:
		return v.unop(ValueTypeI64, ValueTypeF64)
	case OpF64PromoteF32:
		return v.unop(ValueTypeF32, ValueTypeF64)
	case OpI32ReinterpretF32:
		return v.unop(ValueTypeF32, ValueTypeI32)
	case OpI64ReinterpretF64:
		return v.unop(ValueTypeF64, ValueTypeI64)
	case OpF32ReinterpretI32:
		return v.unop(ValueTypeI32, ValueTypeF32)
	case OpF64ReinterpretI64:
		return v.unop(ValueTypeI64, ValueTypeF64)
	case OpI32Extend8S, OpI32Extend16S:
		return v.unop(ValueTypeI32, ValueTypeI32)
	case OpI64Extend8S, OpI64Extend16S, OpI64Extend32S:
		return v.unop(ValueTypeI64, ValueTypeI64)
	default:
		return fmt.Errorf("illegal opcode 0x%x", byte(op))
	}
}

func typesEqual(a, b []ValueType) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

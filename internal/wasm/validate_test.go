package wasm

import (
	"strings"
	"testing"
)

// mod builds a single-function module from a body for validation tests.
func mod(ft FuncType, locals []ValueType, body *BodyBuilder) *Module {
	return &Module{
		Types:     []FuncType{ft},
		Functions: []uint32{0},
		Codes:     []Code{{Locals: locals, Body: body.Bytes()}},
	}
}

func expectValid(t *testing.T, m *Module) {
	t.Helper()
	if err := Validate(m); err != nil {
		t.Fatalf("expected valid, got: %v", err)
	}
}

func expectInvalid(t *testing.T, m *Module, fragment string) {
	t.Helper()
	err := Validate(m)
	if err == nil {
		t.Fatalf("expected invalid (%s), got valid", fragment)
	}
	if fragment != "" && !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestValidateSimpleFunctions(t *testing.T) {
	expectValid(t, mod(
		FuncType{Params: []ValueType{ValueTypeI32, ValueTypeI32}, Results: []ValueType{ValueTypeI32}},
		nil,
		new(BodyBuilder).OpU32(OpLocalGet, 0).OpU32(OpLocalGet, 1).Op(OpI32Add).End(),
	))
	expectValid(t, mod(FuncType{}, nil, new(BodyBuilder).End()))
}

func TestValidateStackErrors(t *testing.T) {
	// Add with only one operand.
	expectInvalid(t, mod(
		FuncType{Params: []ValueType{ValueTypeI32}, Results: []ValueType{ValueTypeI32}},
		nil,
		new(BodyBuilder).OpU32(OpLocalGet, 0).Op(OpI32Add).End(),
	), "underflow")

	// Wrong operand type.
	expectInvalid(t, mod(
		FuncType{Results: []ValueType{ValueTypeI32}},
		nil,
		new(BodyBuilder).I64Const(1).I32Const(2).Op(OpI32Add).End(),
	), "type mismatch")

	// Leftover value at end of function.
	expectInvalid(t, mod(
		FuncType{},
		nil,
		new(BodyBuilder).I32Const(1).End(),
	), "")

	// Missing result.
	expectInvalid(t, mod(
		FuncType{Results: []ValueType{ValueTypeI32}},
		nil,
		new(BodyBuilder).End(),
	), "")
}

func TestValidateLocalsAndGlobals(t *testing.T) {
	// Unknown local.
	expectInvalid(t, mod(
		FuncType{},
		nil,
		new(BodyBuilder).OpU32(OpLocalGet, 3).Op(OpDrop).End(),
	), "unknown local")

	// Local type mismatch on set.
	expectInvalid(t, mod(
		FuncType{},
		[]ValueType{ValueTypeI64},
		new(BodyBuilder).I32Const(1).OpU32(OpLocalSet, 0).End(),
	), "type mismatch")

	// Setting an immutable global.
	m := mod(FuncType{}, nil, new(BodyBuilder).I32Const(1).OpU32(OpGlobalSet, 0).End())
	m.Globals = []Global{{Type: GlobalType{ValType: ValueTypeI32}, Init: I32Const(0)}}
	expectInvalid(t, m, "immutable")

	// Getting an unknown global.
	expectInvalid(t, mod(FuncType{}, nil,
		new(BodyBuilder).OpU32(OpGlobalGet, 0).Op(OpDrop).End()), "unknown global")
}

func TestValidateControlFlow(t *testing.T) {
	// Branch depth out of range.
	expectInvalid(t, mod(FuncType{}, nil,
		new(BodyBuilder).OpU32(OpBr, 5).End()), "unknown label")

	// else without if.
	expectInvalid(t, mod(FuncType{}, nil,
		new(BodyBuilder).Op(OpElse).End()), "")

	// if with result but no else.
	b := new(BodyBuilder)
	b.I32Const(1)
	b.Block(OpIf, BlockTypeOf(ValueTypeI32))
	b.I32Const(2)
	b.End()
	b.Op(OpDrop)
	b.End()
	expectInvalid(t, mod(FuncType{}, nil, b), "mismatched signature")

	// Valid block returning a value through a branch.
	b = new(BodyBuilder)
	b.Block(OpBlock, BlockTypeOf(ValueTypeI32))
	b.I32Const(7)
	b.OpU32(OpBr, 0)
	b.End()
	b.Op(OpDrop)
	b.End()
	expectValid(t, mod(FuncType{}, nil, b))

	// br_table with inconsistent label arities.
	b = new(BodyBuilder)
	b.Block(OpBlock, BlockTypeOf(ValueTypeI32)) // outer yields i32
	b.Block(OpBlock, BlockTypeEmpty)            // inner yields nothing
	b.I32Const(0)
	b.BrTable([]uint32{0}, 1)
	b.End()
	b.I32Const(1)
	b.End()
	b.Op(OpDrop)
	b.End()
	expectInvalid(t, mod(FuncType{}, nil, b), "br_table")
}

func TestValidateUnreachableCode(t *testing.T) {
	// Code after unreachable may be arbitrarily typed (polymorphic stack).
	b := new(BodyBuilder)
	b.Op(OpUnreachable)
	b.Op(OpI32Add) // operands come from the polymorphic stack
	b.Op(OpDrop)
	b.End()
	expectValid(t, mod(FuncType{}, nil, b))

	// Return works the same way.
	b = new(BodyBuilder)
	b.I32Const(1)
	b.Op(OpReturn)
	b.Op(OpF64Mul)
	b.Op(OpDrop)
	b.End()
	expectValid(t, mod(FuncType{Results: []ValueType{ValueTypeI32}}, nil, b))
}

func TestValidateMemoryRules(t *testing.T) {
	// Memory access without a memory.
	expectInvalid(t, mod(FuncType{}, nil,
		new(BodyBuilder).I32Const(0).MemArg(OpI32Load, 2, 0).Op(OpDrop).End()),
		"without a memory")

	// Excessive alignment.
	m := mod(FuncType{}, nil,
		new(BodyBuilder).I32Const(0).MemArg(OpI32Load, 3, 0).Op(OpDrop).End())
	m.Memories = []MemoryType{{Limits: Limits{Min: 1}}}
	expectInvalid(t, m, "alignment")

	// memory.size without memory.
	expectInvalid(t, mod(FuncType{}, nil,
		new(BodyBuilder).MemoryOp(OpMemorySize).Op(OpDrop).End()), "without a memory")

	// Multiple memories are rejected.
	m = mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Memories = []MemoryType{{Limits: Limits{Min: 1}}, {Limits: Limits{Min: 1}}}
	expectInvalid(t, m, "multiple memories")

	// Memory bigger than 4GiB.
	m = mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Memories = []MemoryType{{Limits: Limits{Min: MaxMemoryPages + 1}}}
	expectInvalid(t, m, "4GiB")

	// Max below min.
	m = mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Memories = []MemoryType{{Limits: Limits{Min: 4, Max: 2, HasMax: true}}}
	expectInvalid(t, m, "")
}

func TestValidateCalls(t *testing.T) {
	// Unknown function.
	expectInvalid(t, mod(FuncType{}, nil,
		new(BodyBuilder).OpU32(OpCall, 9).End()), "unknown function")

	// call_indirect without a table.
	expectInvalid(t, mod(FuncType{}, nil,
		new(BodyBuilder).I32Const(0).CallIndirect(0).End()), "without a table")

	// Argument type mismatch.
	m := &Module{
		Types: []FuncType{
			{Params: []ValueType{ValueTypeI64}},
			{},
		},
		Functions: []uint32{0, 1},
		Codes: []Code{
			{Body: new(BodyBuilder).OpU32(OpLocalGet, 0).Op(OpDrop).End().Bytes()},
			{Body: new(BodyBuilder).I32Const(0).OpU32(OpCall, 0).End().Bytes()},
		},
	}
	expectInvalid(t, m, "type mismatch")
}

func TestValidateImportsAndExports(t *testing.T) {
	// Import with bad type index.
	m := &Module{
		Imports: []Import{{Module: "env", Name: "f", Kind: ExternalFunc, Func: 3}},
	}
	expectInvalid(t, m, "unknown type")

	// Mutable global import is illegal in MVP.
	m = &Module{
		Imports: []Import{{Module: "env", Name: "g", Kind: ExternalGlobal,
			Global: GlobalType{ValType: ValueTypeI32, Mutable: true}}},
	}
	expectInvalid(t, m, "mutable")

	// Export of unknown function.
	m = &Module{Exports: []Export{{Name: "x", Kind: ExternalFunc, Index: 0}}}
	expectInvalid(t, m, "unknown func")
}

func TestValidateStartFunction(t *testing.T) {
	// Start with parameters is illegal.
	m := mod(FuncType{Params: []ValueType{ValueTypeI32}}, nil,
		new(BodyBuilder).End())
	m.StartSet = true
	m.Start = 0
	expectInvalid(t, m, "signature")

	// Unknown start index.
	m = mod(FuncType{}, nil, new(BodyBuilder).End())
	m.StartSet = true
	m.Start = 7
	expectInvalid(t, m, "")
}

func TestValidateSegments(t *testing.T) {
	// Element segment without a table.
	m := mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Elements = []ElementSegment{{Offset: I32Const(0), Indices: []uint32{0}}}
	expectInvalid(t, m, "no table")

	// Element offset of wrong type.
	m = mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Tables = []TableType{{ElemType: ValueTypeFuncref, Limits: Limits{Min: 1}}}
	m.Elements = []ElementSegment{{Offset: I64Const(0), Indices: []uint32{0}}}
	expectInvalid(t, m, "constant i32")

	// Element referencing unknown function.
	m = mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Tables = []TableType{{ElemType: ValueTypeFuncref, Limits: Limits{Min: 1}}}
	m.Elements = []ElementSegment{{Offset: I32Const(0), Indices: []uint32{5}}}
	expectInvalid(t, m, "unknown function")

	// Data segment without memory.
	m = mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Data = []DataSegment{{Offset: I32Const(0), Data: []byte("x")}}
	expectInvalid(t, m, "no memory")
}

func TestValidateGlobalInitializers(t *testing.T) {
	// Initializer type mismatch.
	m := mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Globals = []Global{{Type: GlobalType{ValType: ValueTypeI32}, Init: I64Const(1)}}
	expectInvalid(t, m, "does not match")

	// global.get initializer may only reference imported globals.
	m = mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Globals = []Global{
		{Type: GlobalType{ValType: ValueTypeI32}, Init: I32Const(1)},
		{Type: GlobalType{ValType: ValueTypeI32}, Init: GlobalGet(0)},
	}
	expectInvalid(t, m, "unknown global")

	// Referencing an imported immutable global is fine.
	m = mod(FuncType{}, nil, new(BodyBuilder).End())
	m.Imports = []Import{{Module: "env", Name: "base", Kind: ExternalGlobal,
		Global: GlobalType{ValType: ValueTypeI32}}}
	m.Globals = []Global{{Type: GlobalType{ValType: ValueTypeI32}, Init: GlobalGet(0)}}
	expectValid(t, m)
}

func TestValidateSelectTyping(t *testing.T) {
	// select operands must agree.
	expectInvalid(t, mod(FuncType{Results: []ValueType{ValueTypeI32}}, nil,
		new(BodyBuilder).I32Const(1).I64Const(2).I32Const(0).Op(OpSelect).End()),
		"select")
	// Agreeing operands are fine.
	expectValid(t, mod(FuncType{Results: []ValueType{ValueTypeI64}}, nil,
		new(BodyBuilder).I64Const(1).I64Const(2).I32Const(0).Op(OpSelect).End()))
}

func TestValidateIllegalOpcode(t *testing.T) {
	expectInvalid(t, mod(FuncType{}, nil,
		&BodyBuilder{}), "")
	body := &BodyBuilder{}
	body.buf = append(body.buf, 0x25) // unassigned opcode
	body.End()
	expectInvalid(t, mod(FuncType{}, nil, body), "illegal opcode")
}

package wasm

import "fmt"

// SectionID identifies a section in the binary format.
type SectionID byte

// Section identifiers in binary order.
const (
	SectionCustom   SectionID = 0
	SectionType     SectionID = 1
	SectionImport   SectionID = 2
	SectionFunction SectionID = 3
	SectionTable    SectionID = 4
	SectionMemory   SectionID = 5
	SectionGlobal   SectionID = 6
	SectionExport   SectionID = 7
	SectionStart    SectionID = 8
	SectionElement  SectionID = 9
	SectionCode     SectionID = 10
	SectionData     SectionID = 11
)

// Module is a decoded (or programmatically built) WebAssembly module.
type Module struct {
	Types     []FuncType
	Imports   []Import
	Functions []uint32 // type indices of module-defined functions
	Tables    []TableType
	Memories  []MemoryType
	Globals   []Global
	Exports   []Export
	StartSet  bool
	Start     uint32
	Elements  []ElementSegment
	Data      []DataSegment
	Codes     []Code
	Customs   []CustomSection

	// Name is an optional identifier (from the "name" custom section or set
	// by the embedder) used in error messages.
	Name string
}

// NumImportedFuncs returns the count of imported functions.
func (m *Module) NumImportedFuncs() int {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == ExternalFunc {
			n++
		}
	}
	return n
}

// NumImportedGlobals returns the count of imported globals.
func (m *Module) NumImportedGlobals() int {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == ExternalGlobal {
			n++
		}
	}
	return n
}

// NumImportedTables returns the count of imported tables.
func (m *Module) NumImportedTables() int {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == ExternalTable {
			n++
		}
	}
	return n
}

// NumImportedMemories returns the count of imported memories.
func (m *Module) NumImportedMemories() int {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == ExternalMemory {
			n++
		}
	}
	return n
}

// FuncTypeAt resolves the signature of function index idx across the
// imported+defined function index space.
func (m *Module) FuncTypeAt(idx uint32) (FuncType, error) {
	i := int(idx)
	ni := m.NumImportedFuncs()
	if i < ni {
		n := 0
		for _, imp := range m.Imports {
			if imp.Kind != ExternalFunc {
				continue
			}
			if n == i {
				if int(imp.Func) >= len(m.Types) {
					return FuncType{}, fmt.Errorf("wasm: import %q.%q: type index %d out of range", imp.Module, imp.Name, imp.Func)
				}
				return m.Types[imp.Func], nil
			}
			n++
		}
	}
	di := i - ni
	if di < 0 || di >= len(m.Functions) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", idx)
	}
	ti := m.Functions[di]
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: function %d: type index %d out of range", idx, ti)
	}
	return m.Types[ti], nil
}

// ExportedFunc returns the function index exported under name.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == ExternalFunc && e.Name == name {
			return e.Index, true
		}
	}
	return 0, false
}

// ImportedGlobalTypes returns the types of imported globals in index order,
// used to type-check constant expressions that reference them.
func (m *Module) ImportedGlobalTypes() []GlobalType {
	var out []GlobalType
	for _, imp := range m.Imports {
		if imp.Kind == ExternalGlobal {
			out = append(out, imp.Global)
		}
	}
	return out
}

// TableAt resolves table index idx across the imported+defined table space.
func (m *Module) TableAt(idx uint32) (TableType, bool) {
	i := int(idx)
	var imported []TableType
	for _, imp := range m.Imports {
		if imp.Kind == ExternalTable {
			imported = append(imported, imp.Table)
		}
	}
	if i < len(imported) {
		return imported[i], true
	}
	i -= len(imported)
	if i < len(m.Tables) {
		return m.Tables[i], true
	}
	return TableType{}, false
}

// MemoryAt resolves memory index idx across the imported+defined memory space.
func (m *Module) MemoryAt(idx uint32) (MemoryType, bool) {
	i := int(idx)
	var imported []MemoryType
	for _, imp := range m.Imports {
		if imp.Kind == ExternalMemory {
			imported = append(imported, imp.Memory)
		}
	}
	if i < len(imported) {
		return imported[i], true
	}
	i -= len(imported)
	if i < len(m.Memories) {
		return m.Memories[i], true
	}
	return MemoryType{}, false
}

// GlobalTypeAt resolves the type of global index idx across the
// imported+defined global index space.
func (m *Module) GlobalTypeAt(idx uint32) (GlobalType, bool) {
	imported := m.ImportedGlobalTypes()
	i := int(idx)
	if i < len(imported) {
		return imported[i], true
	}
	i -= len(imported)
	if i < len(m.Globals) {
		return m.Globals[i].Type, true
	}
	return GlobalType{}, false
}

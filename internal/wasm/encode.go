package wasm

import (
	"encoding/binary"
	"math"
)

// Encode serializes the module to the WebAssembly binary format. The module
// is assumed to be structurally well-formed (Encode does not validate);
// Decode(Encode(m)) reproduces an equivalent module.
func Encode(m *Module) []byte {
	out := make([]byte, 0, 1024)
	out = append(out, magic...)
	out = append(out, version...)

	if len(m.Types) > 0 {
		out = appendSection(out, SectionType, encodeTypeSection(m))
	}
	if len(m.Imports) > 0 {
		out = appendSection(out, SectionImport, encodeImportSection(m))
	}
	if len(m.Functions) > 0 {
		var b []byte
		b = appendU32(b, uint32(len(m.Functions)))
		for _, ti := range m.Functions {
			b = appendU32(b, ti)
		}
		out = appendSection(out, SectionFunction, b)
	}
	if len(m.Tables) > 0 {
		var b []byte
		b = appendU32(b, uint32(len(m.Tables)))
		for _, t := range m.Tables {
			b = append(b, byte(t.ElemType))
			b = appendLimits(b, t.Limits)
		}
		out = appendSection(out, SectionTable, b)
	}
	if len(m.Memories) > 0 {
		var b []byte
		b = appendU32(b, uint32(len(m.Memories)))
		for _, mem := range m.Memories {
			b = appendLimits(b, mem.Limits)
		}
		out = appendSection(out, SectionMemory, b)
	}
	if len(m.Globals) > 0 {
		var b []byte
		b = appendU32(b, uint32(len(m.Globals)))
		for _, g := range m.Globals {
			b = append(b, byte(g.Type.ValType))
			if g.Type.Mutable {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = appendConstExpr(b, g.Init)
		}
		out = appendSection(out, SectionGlobal, b)
	}
	if len(m.Exports) > 0 {
		var b []byte
		b = appendU32(b, uint32(len(m.Exports)))
		for _, e := range m.Exports {
			b = appendName(b, e.Name)
			b = append(b, byte(e.Kind))
			b = appendU32(b, e.Index)
		}
		out = appendSection(out, SectionExport, b)
	}
	if m.StartSet {
		var b []byte
		b = appendU32(b, m.Start)
		out = appendSection(out, SectionStart, b)
	}
	if len(m.Elements) > 0 {
		var b []byte
		b = appendU32(b, uint32(len(m.Elements)))
		for _, seg := range m.Elements {
			b = appendU32(b, seg.TableIndex)
			b = appendConstExpr(b, seg.Offset)
			b = appendU32(b, uint32(len(seg.Indices)))
			for _, fi := range seg.Indices {
				b = appendU32(b, fi)
			}
		}
		out = appendSection(out, SectionElement, b)
	}
	if len(m.Codes) > 0 {
		var b []byte
		b = appendU32(b, uint32(len(m.Codes)))
		for _, c := range m.Codes {
			body := encodeCode(c)
			b = appendU32(b, uint32(len(body)))
			b = append(b, body...)
		}
		out = appendSection(out, SectionCode, b)
	}
	if len(m.Data) > 0 {
		var b []byte
		b = appendU32(b, uint32(len(m.Data)))
		for _, seg := range m.Data {
			b = appendU32(b, seg.MemoryIndex)
			b = appendConstExpr(b, seg.Offset)
			b = appendU32(b, uint32(len(seg.Data)))
			b = append(b, seg.Data...)
		}
		out = appendSection(out, SectionData, b)
	}
	for _, cs := range m.Customs {
		var b []byte
		b = appendName(b, cs.Name)
		b = append(b, cs.Data...)
		out = appendSection(out, SectionCustom, b)
	}
	return out
}

func appendSection(out []byte, id SectionID, payload []byte) []byte {
	out = append(out, byte(id))
	out = appendU32(out, uint32(len(payload)))
	return append(out, payload...)
}

func appendName(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendLimits(b []byte, l Limits) []byte {
	if l.HasMax {
		b = append(b, 1)
		b = appendU32(b, l.Min)
		return appendU32(b, l.Max)
	}
	b = append(b, 0)
	return appendU32(b, l.Min)
}

func appendConstExpr(b []byte, ce ConstExpr) []byte {
	switch ce.Op {
	case ConstI32:
		b = append(b, byte(OpI32Const))
		b = appendS32(b, int32(uint32(ce.Value)))
	case ConstI64:
		b = append(b, byte(OpI64Const))
		b = appendS64(b, int64(ce.Value))
	case ConstF32:
		b = append(b, byte(OpF32Const))
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], uint32(ce.Value))
		b = append(b, buf[:]...)
	case ConstF64:
		b = append(b, byte(OpF64Const))
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], ce.Value)
		b = append(b, buf[:]...)
	case ConstGlobalGet:
		b = append(b, byte(OpGlobalGet))
		b = appendU32(b, uint32(ce.Value))
	}
	return append(b, byte(OpEnd))
}

func encodeCode(c Code) []byte {
	// Compress runs of equal local types into (count, type) groups.
	var groups []struct {
		count uint32
		vt    ValueType
	}
	for _, vt := range c.Locals {
		if n := len(groups); n > 0 && groups[n-1].vt == vt {
			groups[n-1].count++
		} else {
			groups = append(groups, struct {
				count uint32
				vt    ValueType
			}{1, vt})
		}
	}
	var b []byte
	b = appendU32(b, uint32(len(groups)))
	for _, g := range groups {
		b = appendU32(b, g.count)
		b = append(b, byte(g.vt))
	}
	return append(b, c.Body...)
}

// BodyBuilder incrementally assembles a function body instruction stream.
// It is used by the WAT assembler and by tests that construct modules
// programmatically.
type BodyBuilder struct {
	buf []byte
}

// Bytes returns the assembled body. The caller must have emitted the final
// End for the implicit function block.
func (b *BodyBuilder) Bytes() []byte { return b.buf }

// Op appends a bare opcode.
func (b *BodyBuilder) Op(op Opcode) *BodyBuilder {
	b.buf = append(b.buf, byte(op))
	return b
}

// OpU32 appends an opcode with a single u32 immediate (call, local.get, br …).
func (b *BodyBuilder) OpU32(op Opcode, v uint32) *BodyBuilder {
	b.buf = append(b.buf, byte(op))
	b.buf = appendU32(b.buf, v)
	return b
}

// Block appends a block/loop/if opcode with the given block type (a value
// type, or BlockTypeEmpty, or a type index >= 0 encoded as s33).
func (b *BodyBuilder) Block(op Opcode, blockType int64) *BodyBuilder {
	b.buf = append(b.buf, byte(op))
	b.buf = appendS64(b.buf, blockType)
	return b
}

// I32Const appends an i32.const instruction.
func (b *BodyBuilder) I32Const(v int32) *BodyBuilder {
	b.buf = append(b.buf, byte(OpI32Const))
	b.buf = appendS32(b.buf, v)
	return b
}

// I64Const appends an i64.const instruction.
func (b *BodyBuilder) I64Const(v int64) *BodyBuilder {
	b.buf = append(b.buf, byte(OpI64Const))
	b.buf = appendS64(b.buf, v)
	return b
}

// F32Const appends an f32.const instruction.
func (b *BodyBuilder) F32Const(v float32) *BodyBuilder {
	b.buf = append(b.buf, byte(OpF32Const))
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
	b.buf = append(b.buf, buf[:]...)
	return b
}

// F64Const appends an f64.const instruction.
func (b *BodyBuilder) F64Const(v float64) *BodyBuilder {
	b.buf = append(b.buf, byte(OpF64Const))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	b.buf = append(b.buf, buf[:]...)
	return b
}

// MemArg appends a load/store opcode with align and offset immediates.
func (b *BodyBuilder) MemArg(op Opcode, align, offset uint32) *BodyBuilder {
	b.buf = append(b.buf, byte(op))
	b.buf = appendU32(b.buf, align)
	b.buf = appendU32(b.buf, offset)
	return b
}

// BrTable appends a br_table with the given targets and default.
func (b *BodyBuilder) BrTable(targets []uint32, def uint32) *BodyBuilder {
	b.buf = append(b.buf, byte(OpBrTable))
	b.buf = appendU32(b.buf, uint32(len(targets)))
	for _, t := range targets {
		b.buf = appendU32(b.buf, t)
	}
	b.buf = appendU32(b.buf, def)
	return b
}

// CallIndirect appends call_indirect with type index ti on table 0.
func (b *BodyBuilder) CallIndirect(ti uint32) *BodyBuilder {
	b.buf = append(b.buf, byte(OpCallIndirect))
	b.buf = appendU32(b.buf, ti)
	b.buf = append(b.buf, 0x00) // reserved table index
	return b
}

// MemoryOp appends memory.size or memory.grow (reserved zero immediate).
func (b *BodyBuilder) MemoryOp(op Opcode) *BodyBuilder {
	b.buf = append(b.buf, byte(op))
	b.buf = append(b.buf, 0x00)
	return b
}

// Misc appends a 0xFC-prefixed instruction. memory.copy carries two reserved
// zero bytes and memory.fill one; the saturating truncations carry none.
func (b *BodyBuilder) Misc(sub uint32) *BodyBuilder {
	b.buf = append(b.buf, byte(OpMisc))
	b.buf = appendU32(b.buf, sub)
	switch sub {
	case MiscMemoryCopy:
		b.buf = append(b.buf, 0x00, 0x00)
	case MiscMemoryFill:
		b.buf = append(b.buf, 0x00)
	}
	return b
}

// End appends the end opcode.
func (b *BodyBuilder) End() *BodyBuilder { return b.Op(OpEnd) }

func encodeTypeSection(m *Module) []byte {
	var b []byte
	b = appendU32(b, uint32(len(m.Types)))
	for _, t := range m.Types {
		b = append(b, 0x60)
		b = appendU32(b, uint32(len(t.Params)))
		for _, p := range t.Params {
			b = append(b, byte(p))
		}
		b = appendU32(b, uint32(len(t.Results)))
		for _, r := range t.Results {
			b = append(b, byte(r))
		}
	}
	return b
}

func encodeImportSection(m *Module) []byte {
	var b []byte
	b = appendU32(b, uint32(len(m.Imports)))
	for _, imp := range m.Imports {
		b = appendName(b, imp.Module)
		b = appendName(b, imp.Name)
		b = append(b, byte(imp.Kind))
		switch imp.Kind {
		case ExternalFunc:
			b = appendU32(b, imp.Func)
		case ExternalTable:
			b = append(b, byte(imp.Table.ElemType))
			b = appendLimits(b, imp.Table.Limits)
		case ExternalMemory:
			b = appendLimits(b, imp.Memory.Limits)
		case ExternalGlobal:
			b = append(b, byte(imp.Global.ValType))
			if imp.Global.Mutable {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	}
	return b
}

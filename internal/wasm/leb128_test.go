package wasm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestU32RoundTrip(t *testing.T) {
	cases := []uint32{0, 1, 127, 128, 300, 16384, math.MaxUint32, math.MaxUint32 - 1}
	for _, v := range cases {
		enc := appendU32(nil, v)
		got, n, err := readU32(enc)
		if err != nil || got != v || n != len(enc) {
			t.Fatalf("roundtrip %d: got %d (n=%d, err=%v)", v, got, n, err)
		}
	}
}

func TestS32RoundTrip(t *testing.T) {
	cases := []int32{0, 1, -1, 63, 64, -64, -65, 127, 128, math.MaxInt32, math.MinInt32}
	for _, v := range cases {
		enc := appendS32(nil, v)
		got, n, err := readS32(enc)
		if err != nil || got != v || n != len(enc) {
			t.Fatalf("roundtrip %d: got %d (n=%d, err=%v)", v, got, n, err)
		}
	}
}

func TestS64RoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 1 << 40, -(1 << 40)}
	for _, v := range cases {
		enc := appendS64(nil, v)
		got, n, err := readS64(enc)
		if err != nil || got != v || n != len(enc) {
			t.Fatalf("roundtrip %d: got %d (n=%d, err=%v)", v, got, n, err)
		}
	}
}

// Property: every uint32 round-trips through unsigned LEB128.
func TestU32RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		got, n, err := readU32(appendU32(nil, v))
		return err == nil && got == v && n >= 1 && n <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every int32/int64 round-trips through signed LEB128.
func TestSignedRoundTripProperty(t *testing.T) {
	f32 := func(v int32) bool {
		got, _, err := readS32(appendS32(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f32, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	f64 := func(v int64) bool {
		got, _, err := readS64(appendS64(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f64, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLEBErrors(t *testing.T) {
	// Truncated.
	if _, _, err := readU32([]byte{0x80}); err == nil {
		t.Error("truncated u32 accepted")
	}
	if _, _, err := readS64([]byte{0xff, 0xff}); err == nil {
		t.Error("truncated s64 accepted")
	}
	// Too long (6 continuation bytes for u32).
	if _, _, err := readU32([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}); err == nil {
		t.Error("overlong u32 accepted")
	}
	// Out of range: 2^32 needs bit 4 of byte 5.
	if _, _, err := readU32([]byte{0x80, 0x80, 0x80, 0x80, 0x10}); err == nil {
		t.Error("out-of-range u32 accepted")
	}
	// Non-canonical sign extension in final s32 byte.
	if _, _, err := readS32([]byte{0x80, 0x80, 0x80, 0x80, 0x40}); err == nil {
		t.Error("bad sign extension accepted")
	}
	// Empty input.
	if _, _, err := readU32(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestS33BlockTypes(t *testing.T) {
	// 0x40 encodes the empty block type (-64).
	v, n, err := readS33([]byte{0x40})
	if err != nil || v != BlockTypeEmpty || n != 1 {
		t.Fatalf("0x40: v=%d n=%d err=%v", v, n, err)
	}
	// 0x7f encodes i32 (-1).
	v, _, err = readS33([]byte{0x7f})
	if err != nil || v != BlockTypeOf(ValueTypeI32) {
		t.Fatalf("0x7f: v=%d err=%v", v, err)
	}
	// Type indices are non-negative.
	v, _, err = readS33([]byte{0x05})
	if err != nil || v != 5 {
		t.Fatalf("0x05: v=%d err=%v", v, err)
	}
}

func TestBlockTypeOfAllValueTypes(t *testing.T) {
	for _, vt := range []ValueType{ValueTypeI32, ValueTypeI64, ValueTypeF32, ValueTypeF64} {
		bt := BlockTypeOf(vt)
		if bt >= 0 || bt == BlockTypeEmpty {
			t.Errorf("BlockTypeOf(%s) = %d", vt, bt)
		}
		// Encoding then decoding via s33 yields the same value.
		enc := appendS64(nil, bt)
		dec, _, err := readS33(enc)
		if err != nil || dec != bt {
			t.Errorf("s33 roundtrip of %s: %d -> %d (%v)", vt, bt, dec, err)
		}
	}
}

package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unicode/utf8"
)

// Magic and version constants of the binary format.
var (
	magic   = []byte{0x00, 0x61, 0x73, 0x6d} // "\0asm"
	version = []byte{0x01, 0x00, 0x00, 0x00}
)

// ErrNotWasm is returned when the input does not begin with the Wasm magic.
var ErrNotWasm = errors.New("wasm: magic header not detected")

// reader is a bounds-checked cursor over the module bytes.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, errUnexpectedEOF
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, errUnexpectedEOF
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	v, n, err := readU32(r.buf[r.off:])
	if err != nil {
		return 0, err
	}
	r.off += n
	return v, nil
}

func (r *reader) s32() (int32, error) {
	v, n, err := readS32(r.buf[r.off:])
	if err != nil {
		return 0, err
	}
	r.off += n
	return v, nil
}

func (r *reader) s64() (int64, error) {
	v, n, err := readS64(r.buf[r.off:])
	if err != nil {
		return 0, err
	}
	r.off += n
	return v, nil
}

func (r *reader) f32() (float32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b)), nil
}

func (r *reader) f64() (float64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *reader) name() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	if !utf8.Valid(b) {
		return "", errors.New("wasm: malformed UTF-8 encoding in name")
	}
	return string(b), nil
}

func (r *reader) valueType() (ValueType, error) {
	b, err := r.byte()
	if err != nil {
		return 0, err
	}
	v := ValueType(b)
	switch v {
	case ValueTypeI32, ValueTypeI64, ValueTypeF32, ValueTypeF64:
		return v, nil
	}
	return 0, fmt.Errorf("wasm: invalid value type 0x%x", b)
}

func (r *reader) limits() (Limits, error) {
	flag, err := r.byte()
	if err != nil {
		return Limits{}, err
	}
	switch flag {
	case 0x00:
		min, err := r.u32()
		if err != nil {
			return Limits{}, err
		}
		return Limits{Min: min}, nil
	case 0x01:
		min, err := r.u32()
		if err != nil {
			return Limits{}, err
		}
		max, err := r.u32()
		if err != nil {
			return Limits{}, err
		}
		return Limits{Min: min, Max: max, HasMax: true}, nil
	default:
		return Limits{}, fmt.Errorf("wasm: invalid limits flag 0x%x", flag)
	}
}

func (r *reader) tableType() (TableType, error) {
	et, err := r.byte()
	if err != nil {
		return TableType{}, err
	}
	if ValueType(et) != ValueTypeFuncref {
		return TableType{}, fmt.Errorf("wasm: invalid element type 0x%x", et)
	}
	lim, err := r.limits()
	if err != nil {
		return TableType{}, err
	}
	return TableType{ElemType: ValueTypeFuncref, Limits: lim}, nil
}

func (r *reader) globalType() (GlobalType, error) {
	vt, err := r.valueType()
	if err != nil {
		return GlobalType{}, err
	}
	mut, err := r.byte()
	if err != nil {
		return GlobalType{}, err
	}
	if mut > 1 {
		return GlobalType{}, fmt.Errorf("wasm: invalid mutability flag 0x%x", mut)
	}
	return GlobalType{ValType: vt, Mutable: mut == 1}, nil
}

// constExpr decodes a constant initializer expression terminated by end.
func (r *reader) constExpr() (ConstExpr, error) {
	op, err := r.byte()
	if err != nil {
		return ConstExpr{}, err
	}
	var ce ConstExpr
	switch Opcode(op) {
	case OpI32Const:
		v, err := r.s32()
		if err != nil {
			return ConstExpr{}, err
		}
		ce = ConstExpr{Op: ConstI32, Value: uint64(uint32(v))}
	case OpI64Const:
		v, err := r.s64()
		if err != nil {
			return ConstExpr{}, err
		}
		ce = ConstExpr{Op: ConstI64, Value: uint64(v)}
	case OpF32Const:
		v, err := r.f32()
		if err != nil {
			return ConstExpr{}, err
		}
		ce = ConstExpr{Op: ConstF32, Value: uint64(math.Float32bits(v))}
	case OpF64Const:
		v, err := r.f64()
		if err != nil {
			return ConstExpr{}, err
		}
		ce = ConstExpr{Op: ConstF64, Value: math.Float64bits(v)}
	case OpGlobalGet:
		idx, err := r.u32()
		if err != nil {
			return ConstExpr{}, err
		}
		ce = ConstExpr{Op: ConstGlobalGet, Value: uint64(idx)}
	default:
		return ConstExpr{}, fmt.Errorf("wasm: illegal opcode 0x%x in constant expression", op)
	}
	end, err := r.byte()
	if err != nil {
		return ConstExpr{}, err
	}
	if Opcode(end) != OpEnd {
		return ConstExpr{}, errors.New("wasm: constant expression not terminated by end")
	}
	return ce, nil
}

// Decode parses a binary WebAssembly module. The returned module is
// structurally well-formed but not yet validated; call Validate.
func Decode(b []byte) (*Module, error) {
	r := &reader{buf: b}
	hdr, err := r.bytes(4)
	if err != nil || string(hdr) != string(magic) {
		return nil, ErrNotWasm
	}
	ver, err := r.bytes(4)
	if err != nil {
		return nil, errUnexpectedEOF
	}
	if string(ver) != string(version) {
		return nil, fmt.Errorf("wasm: unknown binary version %x", ver)
	}

	m := &Module{}
	lastSection := SectionID(0)

	for r.remaining() > 0 {
		idByte, err := r.byte()
		if err != nil {
			return nil, decodeError(r.off, err)
		}
		id := SectionID(idByte)
		size, err := r.u32()
		if err != nil {
			return nil, decodeError(r.off, err)
		}
		payload, err := r.bytes(int(size))
		if err != nil {
			return nil, decodeError(r.off, fmt.Errorf("section %d: %w", id, err))
		}
		if id != SectionCustom {
			if id > SectionData {
				return nil, fmt.Errorf("wasm: malformed section id %d", id)
			}
			if id <= lastSection {
				return nil, fmt.Errorf("wasm: unexpected section %d after %d (out of order or duplicate)", id, lastSection)
			}
			lastSection = id
		}
		sr := &reader{buf: payload}
		if err := decodeSection(m, id, sr); err != nil {
			return nil, fmt.Errorf("wasm: section %d: %w", id, err)
		}
		if id != SectionCustom && sr.remaining() != 0 {
			return nil, fmt.Errorf("wasm: section %d: %d trailing bytes", id, sr.remaining())
		}
	}
	if len(m.Codes) != len(m.Functions) {
		return nil, fmt.Errorf("wasm: function and code section have inconsistent lengths (%d vs %d)",
			len(m.Functions), len(m.Codes))
	}
	return m, nil
}

func decodeSection(m *Module, id SectionID, r *reader) error {
	switch id {
	case SectionCustom:
		return decodeCustomSection(m, r)
	case SectionType:
		return decodeTypeSection(m, r)
	case SectionImport:
		return decodeImportSection(m, r)
	case SectionFunction:
		return decodeFunctionSection(m, r)
	case SectionTable:
		return decodeTableSection(m, r)
	case SectionMemory:
		return decodeMemorySection(m, r)
	case SectionGlobal:
		return decodeGlobalSection(m, r)
	case SectionExport:
		return decodeExportSection(m, r)
	case SectionStart:
		idx, err := r.u32()
		if err != nil {
			return err
		}
		m.StartSet = true
		m.Start = idx
		return nil
	case SectionElement:
		return decodeElementSection(m, r)
	case SectionCode:
		return decodeCodeSection(m, r)
	case SectionData:
		return decodeDataSection(m, r)
	default:
		return fmt.Errorf("malformed section id %d", id)
	}
}

func decodeCustomSection(m *Module, r *reader) error {
	name, err := r.name()
	if err != nil {
		return err
	}
	rest, err := r.bytes(r.remaining())
	if err != nil {
		return err
	}
	m.Customs = append(m.Customs, CustomSection{Name: name, Data: append([]byte(nil), rest...)})
	return nil
}

func decodeTypeSection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	m.Types = make([]FuncType, 0, clampPrealloc(n))
	for i := uint32(0); i < n; i++ {
		form, err := r.byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return fmt.Errorf("type %d: invalid form 0x%x", i, form)
		}
		var ft FuncType
		np, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < np; j++ {
			vt, err := r.valueType()
			if err != nil {
				return err
			}
			ft.Params = append(ft.Params, vt)
		}
		nr, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nr; j++ {
			vt, err := r.valueType()
			if err != nil {
				return err
			}
			ft.Results = append(ft.Results, vt)
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func decodeImportSection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	m.Imports = make([]Import, 0, clampPrealloc(n))
	for i := uint32(0); i < n; i++ {
		mod, err := r.name()
		if err != nil {
			return err
		}
		name, err := r.name()
		if err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		imp := Import{Module: mod, Name: name, Kind: ExternalKind(kind)}
		switch imp.Kind {
		case ExternalFunc:
			if imp.Func, err = r.u32(); err != nil {
				return err
			}
		case ExternalTable:
			if imp.Table, err = r.tableType(); err != nil {
				return err
			}
		case ExternalMemory:
			lim, err := r.limits()
			if err != nil {
				return err
			}
			imp.Memory = MemoryType{Limits: lim}
		case ExternalGlobal:
			if imp.Global, err = r.globalType(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("import %d: malformed import kind %d", i, kind)
		}
		m.Imports = append(m.Imports, imp)
	}
	return nil
}

func decodeFunctionSection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	m.Functions = make([]uint32, 0, clampPrealloc(n))
	for i := uint32(0); i < n; i++ {
		ti, err := r.u32()
		if err != nil {
			return err
		}
		m.Functions = append(m.Functions, ti)
	}
	return nil
}

func decodeTableSection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		tt, err := r.tableType()
		if err != nil {
			return err
		}
		m.Tables = append(m.Tables, tt)
	}
	return nil
}

func decodeMemorySection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		lim, err := r.limits()
		if err != nil {
			return err
		}
		m.Memories = append(m.Memories, MemoryType{Limits: lim})
	}
	return nil
}

func decodeGlobalSection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		gt, err := r.globalType()
		if err != nil {
			return err
		}
		init, err := r.constExpr()
		if err != nil {
			return err
		}
		m.Globals = append(m.Globals, Global{Type: gt, Init: init})
	}
	return nil
}

func decodeExportSection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	seen := make(map[string]bool, clampPrealloc(n))
	for i := uint32(0); i < n; i++ {
		name, err := r.name()
		if err != nil {
			return err
		}
		if seen[name] {
			return fmt.Errorf("duplicate export name %q", name)
		}
		seen[name] = true
		kind, err := r.byte()
		if err != nil {
			return err
		}
		if kind > byte(ExternalGlobal) {
			return fmt.Errorf("export %q: malformed export kind %d", name, kind)
		}
		idx, err := r.u32()
		if err != nil {
			return err
		}
		m.Exports = append(m.Exports, Export{Name: name, Kind: ExternalKind(kind), Index: idx})
	}
	return nil
}

func decodeElementSection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		ti, err := r.u32()
		if err != nil {
			return err
		}
		if ti != 0 {
			return fmt.Errorf("element segment %d: MVP requires table index 0, got %d", i, ti)
		}
		off, err := r.constExpr()
		if err != nil {
			return err
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		seg := ElementSegment{TableIndex: ti, Offset: off, Indices: make([]uint32, 0, clampPrealloc(cnt))}
		for j := uint32(0); j < cnt; j++ {
			fi, err := r.u32()
			if err != nil {
				return err
			}
			seg.Indices = append(seg.Indices, fi)
		}
		m.Elements = append(m.Elements, seg)
	}
	return nil
}

func decodeCodeSection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	m.Codes = make([]Code, 0, clampPrealloc(n))
	for i := uint32(0); i < n; i++ {
		size, err := r.u32()
		if err != nil {
			return err
		}
		body, err := r.bytes(int(size))
		if err != nil {
			return err
		}
		br := &reader{buf: body}
		nLocalGroups, err := br.u32()
		if err != nil {
			return err
		}
		var code Code
		total := 0
		for j := uint32(0); j < nLocalGroups; j++ {
			cnt, err := br.u32()
			if err != nil {
				return err
			}
			vt, err := br.valueType()
			if err != nil {
				return err
			}
			total += int(cnt)
			if total > MaxFunctionLocals {
				return fmt.Errorf("function %d: too many locals (%d)", i, total)
			}
			for k := uint32(0); k < cnt; k++ {
				code.Locals = append(code.Locals, vt)
			}
		}
		rest, err := br.bytes(br.remaining())
		if err != nil {
			return err
		}
		if len(rest) == 0 || Opcode(rest[len(rest)-1]) != OpEnd {
			return fmt.Errorf("function %d: body does not end with end opcode", i)
		}
		code.Body = append([]byte(nil), rest...)
		m.Codes = append(m.Codes, code)
	}
	return nil
}

func decodeDataSection(m *Module, r *reader) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		mi, err := r.u32()
		if err != nil {
			return err
		}
		if mi != 0 {
			return fmt.Errorf("data segment %d: MVP requires memory index 0, got %d", i, mi)
		}
		off, err := r.constExpr()
		if err != nil {
			return err
		}
		size, err := r.u32()
		if err != nil {
			return err
		}
		data, err := r.bytes(int(size))
		if err != nil {
			return err
		}
		m.Data = append(m.Data, DataSegment{MemoryIndex: mi, Offset: off, Data: append([]byte(nil), data...)})
	}
	return nil
}

// clampPrealloc bounds slice preallocation against hostile section counts:
// a malformed module may claim billions of entries while carrying only a few
// bytes of payload. Decoding still reads exactly `n` entries (and fails on
// truncation); only the optimistic capacity is capped.
func clampPrealloc(n uint32) uint32 {
	const max = 4096
	if n > max {
		return max
	}
	return n
}

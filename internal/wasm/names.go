package wasm

// Support for the "name" custom section (function names), used to improve
// diagnostics: tooling like wasm-ld and wat2wasm emit it, and engines print
// the names in traps and profiles.

// NameMap holds decoded entries from the "name" custom section.
type NameMap struct {
	// ModuleName is the module-level name, if present.
	ModuleName string
	// FuncNames maps function index -> name.
	FuncNames map[uint32]string
}

// Name-section subsection ids.
const (
	nameSubModule = 0
	nameSubFuncs  = 1
)

// DecodeNameSection parses the "name" custom section from the module's
// custom sections. It returns an empty map when the section is absent, and
// fails softly (partial data, nil error) on malformed subsections, matching
// engine behaviour: a broken name section must not reject the module.
func DecodeNameSection(m *Module) NameMap {
	nm := NameMap{FuncNames: make(map[uint32]string)}
	for _, cs := range m.Customs {
		if cs.Name != "name" {
			continue
		}
		r := &reader{buf: cs.Data}
		for r.remaining() > 0 {
			id, err := r.byte()
			if err != nil {
				return nm
			}
			size, err := r.u32()
			if err != nil {
				return nm
			}
			payload, err := r.bytes(int(size))
			if err != nil {
				return nm
			}
			pr := &reader{buf: payload}
			switch id {
			case nameSubModule:
				if name, err := pr.name(); err == nil {
					nm.ModuleName = name
				}
			case nameSubFuncs:
				n, err := pr.u32()
				if err != nil {
					continue
				}
				for i := uint32(0); i < n; i++ {
					idx, err := pr.u32()
					if err != nil {
						break
					}
					name, err := pr.name()
					if err != nil {
						break
					}
					nm.FuncNames[idx] = name
				}
			}
		}
	}
	return nm
}

// EncodeNameSection builds a "name" custom section from the map, appended
// to the module's custom sections (replacing any existing one).
func EncodeNameSection(m *Module, nm NameMap) {
	var data []byte
	if nm.ModuleName != "" {
		var sub []byte
		sub = appendName(sub, nm.ModuleName)
		data = append(data, nameSubModule)
		data = appendU32(data, uint32(len(sub)))
		data = append(data, sub...)
	}
	if len(nm.FuncNames) > 0 {
		// Indices must be sorted for a canonical encoding.
		idxs := make([]uint32, 0, len(nm.FuncNames))
		for i := range nm.FuncNames {
			idxs = append(idxs, i)
		}
		for i := 1; i < len(idxs); i++ {
			for j := i; j > 0 && idxs[j-1] > idxs[j]; j-- {
				idxs[j-1], idxs[j] = idxs[j], idxs[j-1]
			}
		}
		var sub []byte
		sub = appendU32(sub, uint32(len(idxs)))
		for _, i := range idxs {
			sub = appendU32(sub, i)
			sub = appendName(sub, nm.FuncNames[i])
		}
		data = append(data, nameSubFuncs)
		data = appendU32(data, uint32(len(sub)))
		data = append(data, sub...)
	}
	// Replace an existing "name" section.
	customs := m.Customs[:0]
	for _, cs := range m.Customs {
		if cs.Name != "name" {
			customs = append(customs, cs)
		}
	}
	m.Customs = append(customs, CustomSection{Name: "name", Data: data})
}

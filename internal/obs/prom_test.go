package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden locks the full exposition format — HELP/TYPE
// headers, sorted label sets, histogram series, build info — against a golden
// file. The toolchain-dependent go_version label is normalized before
// comparison so the golden file is stable across Go releases.
func TestWritePrometheusGolden(t *testing.T) {
	tele := New(Config{})
	StampBuildInfo(tele.Metrics())
	// Labels added in reverse key order: the exporter must sort them.
	tele.Counter(Labeled(Labeled("dispatch_completed_total", "module", "echo"), "engine", "wamr")).Add(7)
	tele.Counter(Labeled(Labeled("dispatch_completed_total", "module", "fib"), "engine", "wamr")).Add(2)
	tele.Counter("dispatch_submitted_total").Add(9)
	tele.Gauge("dispatch_queue_depth").Set(3)
	h := tele.Histogram(Labeled("dispatch_latency_ns", "module", "echo"))
	h.Record(5)
	h.Record(5)
	h.Record(900)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, tele.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := strings.ReplaceAll(buf.String(), runtime.Version(), "GOVERSION")

	golden := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSortLabels(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{`a="1"`, `a="1"`},
		{`b="2",a="1"`, `a="1",b="2"`},
		{`z="9",m="5",a="1"`, `a="1",m="5",z="9"`},
		// Quoted commas and escaped quotes must not split pairs.
		{`b="x,y",a="1"`, `a="1",b="x,y"`},
		{`b="x\",z=\"w",a="1"`, `a="1",b="x\",z=\"w"`},
	} {
		if got := sortLabels(tc.in); got != tc.want {
			t.Errorf("sortLabels(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestStampBuildInfo(t *testing.T) {
	StampBuildInfo(nil) // nil registry must no-op
	tele := New(Config{})
	StampBuildInfo(tele.Metrics())
	snap := tele.Snapshot()
	if len(snap.Gauges) != 1 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	g := snap.Gauges[0]
	if g.Value != 1 ||
		!strings.HasPrefix(g.Name, "continuum_build_info{") ||
		!strings.Contains(g.Name, `version="`+Version+`"`) ||
		!strings.Contains(g.Name, `go_version="`+runtime.Version()+`"`) {
		t.Fatalf("build info gauge = %+v", g)
	}
}

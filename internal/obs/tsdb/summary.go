package tsdb

import "wasmcontainers/internal/obs"

// CounterSummary is one counter series' run-level rollup.
type CounterSummary struct {
	Name       string  `json:"name"`
	Total      int64   `json:"total"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// GaugeSummary is one gauge series' run-level rollup over window samples.
type GaugeSummary struct {
	Name string `json:"name"`
	Last int64  `json:"last"`
	Min  int64  `json:"min"`
	Max  int64  `json:"max"`
}

// HistogramSummary is one histogram series' run-level rollup. P99PerWindow is
// the per-window p99 across the retained windows (0 for empty windows) —
// the series successive bench runs diff for regressions over time.
type HistogramSummary struct {
	Name         string  `json:"name"`
	Count        int64   `json:"count"`
	P50          int64   `json:"p50"`
	P99          int64   `json:"p99"`
	P99PerWindow []int64 `json:"p99_per_window,omitempty"`
}

// Summary is the run-level view of a DB, emitted into bench result files as
// the `timeseries` block.
type Summary struct {
	IntervalNs int64              `json:"interval_ns"`
	Windows    Stats              `json:"windows"`
	Counters   []CounterSummary   `json:"counters,omitempty"`
	Gauges     []GaugeSummary     `json:"gauges,omitempty"`
	Histograms []HistogramSummary `json:"histograms,omitempty"`
}

// Summary rolls the retained windows up into a JSON-able report: per-counter
// totals and whole-run rates, per-gauge min/max/last, per-histogram merged
// quantiles plus the p99-over-time series. Nil when disabled or before the
// first window closes.
func (db *DB) Summary() *Summary {
	if db == nil {
		return nil
	}
	ws := db.Windows(0)
	if len(ws) == 0 {
		return nil
	}
	s := &Summary{IntervalNs: db.interval, Windows: db.Stats()}
	last := ws[len(ws)-1]
	covered := float64(last.End-ws[0].Start) / 1e9

	for _, c := range last.Counters {
		var delta int64
		for _, w := range ws {
			for _, cc := range w.Counters {
				if cc.Name == c.Name {
					delta += cc.Delta
					break
				}
			}
		}
		cs := CounterSummary{Name: c.Name, Total: c.Total}
		if covered > 0 {
			cs.RatePerSec = float64(delta) / covered
		}
		s.Counters = append(s.Counters, cs)
	}

	for _, g := range last.Gauges {
		gs := GaugeSummary{Name: g.Name, Last: g.Value}
		first := true
		for _, w := range ws {
			for _, gg := range w.Gauges {
				if gg.Name == g.Name {
					if first || gg.Value < gs.Min {
						gs.Min = gg.Value
					}
					if first || gg.Value > gs.Max {
						gs.Max = gg.Value
					}
					first = false
					break
				}
			}
		}
		s.Gauges = append(s.Gauges, gs)
	}

	for _, h := range last.Histograms {
		hs := HistogramSummary{Name: h.Name, Count: h.CountTotal}
		merged := make([]int64, obs.NumBuckets())
		scratch := make([]int64, obs.NumBuckets())
		for _, w := range ws {
			for _, hh := range w.Histograms {
				if hh.Name != h.Name {
					continue
				}
				for i := range scratch {
					scratch[i] = 0
				}
				for _, b := range hh.Buckets {
					merged[b.Idx] += b.Count
					scratch[b.Idx] = b.Count
				}
				hs.P99PerWindow = append(hs.P99PerWindow, obs.QuantileOf(scratch, 0.99))
				break
			}
		}
		hs.P50 = obs.QuantileOf(merged, 0.50)
		hs.P99 = obs.QuantileOf(merged, 0.99)
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// P99Drift compares one histogram series' p99 trajectory between a baseline
// summary and a current one — the regression check successive bench runs
// apply to their `timeseries` blocks. Windows align from the end (the tails
// of both runs), windows where the baseline saw no samples are skipped, and
// the worst relative increase is returned alongside the overall-p99 ratio.
// ok is false when either summary lacks the series or the baseline's overall
// p99 is zero.
func P99Drift(base, cur *Summary, series string) (maxWindowIncrease, overallRatio float64, ok bool) {
	b := findHistogram(base, series)
	c := findHistogram(cur, series)
	if b == nil || c == nil || b.P99 == 0 {
		return 0, 0, false
	}
	overallRatio = float64(c.P99) / float64(b.P99)
	n := len(b.P99PerWindow)
	if len(c.P99PerWindow) < n {
		n = len(c.P99PerWindow)
	}
	for i := 1; i <= n; i++ {
		bw := b.P99PerWindow[len(b.P99PerWindow)-i]
		cw := c.P99PerWindow[len(c.P99PerWindow)-i]
		if bw == 0 {
			continue
		}
		if inc := float64(cw)/float64(bw) - 1; inc > maxWindowIncrease {
			maxWindowIncrease = inc
		}
	}
	return maxWindowIncrease, overallRatio, true
}

func findHistogram(s *Summary, series string) *HistogramSummary {
	if s == nil {
		return nil
	}
	for i := range s.Histograms {
		if s.Histograms[i].Name == series {
			return &s.Histograms[i]
		}
	}
	return nil
}

package tsdb

import (
	"testing"
	"time"

	"wasmcontainers/internal/obs"
)

// BenchmarkAdvanceDisabled is the zero-cost gate for the disabled sample
// path: with sampling off the gateway still calls Advance on a nil *DB
// before every event step, so that call must not allocate (and must cost a
// single predicted branch). `make obs-overhead` greps this benchmark for
// `0 allocs/op`.
func BenchmarkAdvanceDisabled(b *testing.B) {
	var db *DB
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Advance(int64(i))
	}
}

// BenchmarkAdvanceSameWindow measures the enabled fast path: virtual time
// advances within the current window, so Advance is one atomic load and a
// compare. This is the per-event cost sampling adds to the bridge loop; it
// must also stay allocation-free.
func BenchmarkAdvanceSameWindow(b *testing.B) {
	db := New(Config{Interval: time.Hour})
	tele := obs.New(obs.Config{})
	db.TrackCounter("c", tele.Counter("c"))
	db.TrackHistogram("h", tele.Histogram("h"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Advance(int64(i))
	}
}

// BenchmarkCloseWindow measures one window close over a registered series
// set: the O(series) cost paid once per SampleInterval, amortized across
// every event inside the window.
func BenchmarkCloseWindow(b *testing.B) {
	db := New(Config{Interval: 1, Capacity: 64})
	tele := obs.New(obs.Config{})
	for _, n := range []string{"a", "b", "c", "d"} {
		db.TrackCounter(n, tele.Counter(n))
	}
	db.TrackGauge("g", tele.Gauge("g"))
	h := tele.Histogram("h")
	h.Record(100)
	db.TrackHistogram("h", h)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now++
		db.Advance(now)
	}
}

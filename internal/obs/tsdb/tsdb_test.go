package tsdb

import (
	"encoding/json"
	"testing"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/obs"
)

func newTestDB(t *testing.T, cfg Config) (*DB, *obs.Telemetry) {
	t.Helper()
	if cfg.Interval == 0 {
		cfg.Interval = 100 * time.Nanosecond
	}
	db := New(cfg)
	if db == nil {
		t.Fatal("New returned nil for a valid config")
	}
	return db, obs.New(obs.Config{})
}

func TestDisabledNilDB(t *testing.T) {
	var db *DB
	db.TrackCounter("c", nil)
	db.TrackGauge("g", nil)
	db.TrackHistogram("h", nil)
	db.Advance(1e9)
	db.ArmDES(des.NewEngine(), 1e9)
	if db.Windows(0) != nil || db.Last() != nil || db.Summary() != nil {
		t.Fatal("nil DB reads must be zero values")
	}
	if db.Rate("c", 0) != 0 || db.QuantileOver("h", 0.99, 0) != 0 || db.EWMA("c", 0.5) != 0 {
		t.Fatal("nil DB queries must be zero")
	}
	if db.Stats() != (Stats{}) || db.Interval() != 0 {
		t.Fatal("nil DB stats must be zero")
	}
	if New(Config{}) != nil {
		t.Fatal("zero interval must construct the disabled state")
	}
}

func TestCounterDeltasAcrossWindows(t *testing.T) {
	db, tele := newTestDB(t, Config{})
	c := tele.Counter("reqs_total")
	c.Add(5)
	db.TrackCounter("reqs_total", c) // prev seeds at 5: pre-tracking traffic is not a delta
	c.Add(3)
	db.Advance(100) // closes [0,100)
	c.Add(7)
	db.Advance(250) // closes [100,200) and fast-forwards nothing; also [200,300)? no: 250 < 300
	ws := db.Windows(0)
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0].Counters[0].Delta != 3 || ws[0].Counters[0].Total != 8 {
		t.Fatalf("window 0 = %+v", ws[0].Counters[0])
	}
	if ws[1].Counters[0].Delta != 7 || ws[1].Counters[0].Total != 15 {
		t.Fatalf("window 1 = %+v", ws[1].Counters[0])
	}
	if ws[0].Start != 0 || ws[0].End != 100 || ws[1].Start != 100 || ws[1].End != 200 {
		t.Fatalf("window edges = [%d,%d) [%d,%d)", ws[0].Start, ws[0].End, ws[1].Start, ws[1].End)
	}
}

func TestAdvanceFastPathAndMultiClose(t *testing.T) {
	db, tele := newTestDB(t, Config{})
	db.TrackGauge("depth", tele.Gauge("depth"))
	db.Advance(50) // no boundary crossed
	if db.Stats().Published != 0 {
		t.Fatal("no window may close before the first boundary")
	}
	tele.Gauge("depth").Set(4)
	db.Advance(350) // closes [0,100) [100,200) [200,300)
	if got := db.Stats().Published; got != 3 {
		t.Fatalf("published = %d, want 3", got)
	}
	for _, w := range db.Windows(0) {
		if w.Gauges[0].Value != 4 {
			t.Fatalf("gauge window = %+v", w)
		}
	}
}

func TestHistogramWindowsMergeToQuantile(t *testing.T) {
	db, tele := newTestDB(t, Config{})
	h := tele.Histogram("lat")
	db.TrackHistogram("lat", h)
	// Window 1: 99 fast samples; window 2: one slow outlier.
	for i := 0; i < 99; i++ {
		h.Record(10)
	}
	db.Advance(100)
	h.Record(1 << 20)
	db.Advance(200)
	ws := db.Windows(0)
	if ws[0].Histograms[0].CountDelta != 99 || ws[1].Histograms[0].CountDelta != 1 {
		t.Fatalf("count deltas = %d/%d", ws[0].Histograms[0].CountDelta, ws[1].Histograms[0].CountDelta)
	}
	// Merged p99 over both windows must land in the outlier's bucket range.
	p99 := db.QuantileOver("lat", 0.995, 0)
	lo, hi := obs.BucketRange(obsBucketOf(1 << 20))
	if p99 < lo || p99 > hi {
		t.Fatalf("merged p99.5 = %d, want within [%d,%d]", p99, lo, hi)
	}
	// A one-window lookback sees only the outlier.
	if got := db.QuantileOver("lat", 0.5, 100*time.Nanosecond); got < lo || got > hi {
		t.Fatalf("trailing-window p50 = %d, want outlier bucket [%d,%d]", got, lo, hi)
	}
}

// obsBucketOf finds the shared-layout bucket index holding v.
func obsBucketOf(v int64) int {
	for i := 0; i < obs.NumBuckets(); i++ {
		lo, hi := obs.BucketRange(i)
		if v >= lo && v <= hi {
			return i
		}
	}
	return -1
}

func TestRate(t *testing.T) {
	db, tele := newTestDB(t, Config{Interval: time.Second})
	c := tele.Counter("reqs_total")
	db.TrackCounter("reqs_total", c)
	c.Add(10)
	db.Advance(1e9)
	c.Add(30)
	db.Advance(2e9)
	if got := db.Rate("reqs_total", 0); got != 20 {
		t.Fatalf("rate over 2s = %v, want 20", got)
	}
	if got := db.Rate("reqs_total", time.Second); got != 30 {
		t.Fatalf("rate over trailing 1s = %v, want 30", got)
	}
	if db.Rate("unknown", 0) != 0 {
		t.Fatal("unknown series rate must be 0")
	}
}

func TestEWMA(t *testing.T) {
	db, tele := newTestDB(t, Config{Interval: time.Second})
	c := tele.Counter("reqs_total")
	g := tele.Gauge("depth")
	db.TrackCounter("reqs_total", c)
	db.TrackGauge("depth", g)
	c.Add(10)
	g.Set(100)
	db.Advance(1e9)
	c.Add(20)
	g.Set(0)
	db.Advance(2e9)
	// Counter: rates 10, 20 → ewma(0.5) = 15. Gauge: values 100, 0 → 50.
	if got := db.EWMA("reqs_total", 0.5); got != 15 {
		t.Fatalf("counter EWMA = %v, want 15", got)
	}
	if got := db.EWMA("depth", 0.5); got != 50 {
		t.Fatalf("gauge EWMA = %v, want 50", got)
	}
	if db.EWMA("reqs_total", 0) != 0 || db.EWMA("reqs_total", 1.5) != 0 {
		t.Fatal("invalid alpha must read 0")
	}
}

func TestRingEvictionAndWindowsMax(t *testing.T) {
	db, tele := newTestDB(t, Config{Capacity: 4})
	db.TrackCounter("c", tele.Counter("c"))
	for i := int64(1); i <= 10; i++ {
		db.Advance(i * 100)
	}
	ws := db.Windows(0)
	if len(ws) != 4 {
		t.Fatalf("retained = %d, want 4", len(ws))
	}
	if ws[0].Seq != 6 || ws[3].Seq != 9 {
		t.Fatalf("retained seqs = %d..%d, want 6..9", ws[0].Seq, ws[3].Seq)
	}
	if got := db.Windows(2); len(got) != 2 || got[1].Seq != 9 {
		t.Fatalf("Windows(2) = %+v", got)
	}
	if db.Last().Seq != 9 {
		t.Fatalf("Last().Seq = %d", db.Last().Seq)
	}
}

func TestIdleGapFastForward(t *testing.T) {
	db, _ := newTestDB(t, Config{Capacity: 8})
	db.Advance(100 * 1000) // 1000 boundaries crossed, capacity 8
	st := db.Stats()
	if st.Published != 8 {
		t.Fatalf("published = %d, want capacity 8", st.Published)
	}
	if st.Skipped != 992 {
		t.Fatalf("skipped = %d, want 992", st.Skipped)
	}
	last := db.Last()
	if last.End != 100*1000 {
		t.Fatalf("last window ends at %d, want 100000", last.End)
	}
	if last.Seq != 999 {
		t.Fatalf("last seq = %d, want 999 (skips keep numbering)", last.Seq)
	}
}

func TestArmDESClosesWindowsDeterministically(t *testing.T) {
	run := func() []byte {
		eng := des.NewEngine()
		tele := obs.New(obs.Config{})
		db := New(Config{Interval: 100 * time.Nanosecond})
		c := tele.Counter("reqs_total")
		db.TrackCounter("reqs_total", c)
		// Workload: one increment every 30ns until t=1000.
		for t := int64(0); t <= 1000; t += 30 {
			eng.At(des.Time(t), func() { c.Inc() })
		}
		db.ArmDES(eng, 1000)
		eng.Run()
		out, err := json.Marshal(db.Windows(0))
		if err != nil {
			panic(err)
		}
		return out
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("two identical DES runs produced different series:\n%s\n%s", a, b)
	}
	var ws []Window
	if err := json.Unmarshal(a, &ws); err != nil {
		t.Fatal(err)
	}
	if len(ws) != 10 {
		t.Fatalf("windows = %d, want 10", len(ws))
	}
	var total int64
	for _, w := range ws {
		total += w.Counters[0].Delta
	}
	// 34 increments total (t=0..990 step 30); the ones at/after the last
	// boundary may land outside a closed window depending on event order,
	// but every closed window's deltas must be conserved.
	if total != ws[len(ws)-1].Counters[0].Total {
		t.Fatalf("window deltas (%d) must sum to the last total (%d)", total, ws[len(ws)-1].Counters[0].Total)
	}
}

func TestLateRegistrationJoinsNextWindow(t *testing.T) {
	db, tele := newTestDB(t, Config{})
	db.Advance(100)
	c := tele.Counter("late_total")
	c.Add(4)
	db.TrackCounter("late_total", c)
	c.Add(2)
	db.Advance(200)
	last := db.Last()
	if len(last.Counters) != 1 || last.Counters[0].Delta != 2 || last.Counters[0].Total != 6 {
		t.Fatalf("late series window = %+v", last.Counters)
	}
	if first := db.Windows(0)[0]; len(first.Counters) != 0 {
		t.Fatalf("pre-registration window must have no series, got %+v", first.Counters)
	}
}

func TestSummary(t *testing.T) {
	db, tele := newTestDB(t, Config{Interval: time.Second})
	c := tele.Counter("reqs_total")
	g := tele.Gauge("depth")
	h := tele.Histogram("lat")
	db.TrackCounter("reqs_total", c)
	db.TrackGauge("depth", g)
	db.TrackHistogram("lat", h)
	if db.Summary() != nil {
		t.Fatal("summary before any window must be nil")
	}
	c.Add(10)
	g.Set(3)
	h.Record(100)
	db.Advance(1e9)
	c.Add(30)
	g.Set(9)
	h.Record(200)
	h.Record(300)
	db.Advance(2e9)
	s := db.Summary()
	if s == nil || s.IntervalNs != 1e9 || s.Windows.Published != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Counters[0].Total != 40 || s.Counters[0].RatePerSec != 20 {
		t.Fatalf("counter summary = %+v", s.Counters[0])
	}
	if s.Gauges[0].Last != 9 || s.Gauges[0].Min != 3 || s.Gauges[0].Max != 9 {
		t.Fatalf("gauge summary = %+v", s.Gauges[0])
	}
	hs := s.Histograms[0]
	if hs.Count != 3 || len(hs.P99PerWindow) != 2 {
		t.Fatalf("histogram summary = %+v", hs)
	}
	if hs.P99PerWindow[0] >= hs.P99PerWindow[1] {
		t.Fatalf("p99-over-time must rise with the slower window: %v", hs.P99PerWindow)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("summary must marshal: %v", err)
	}
}

func TestConcurrentReadersDoNotTear(t *testing.T) {
	db, tele := newTestDB(t, Config{Capacity: 4})
	c := tele.Counter("c")
	db.TrackCounter("c", c)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			for _, w := range db.Windows(0) {
				if len(w.Counters) != 1 || w.Counters[0].Name != "c" {
					panic("torn window")
				}
			}
			db.Rate("c", 0)
			db.Summary()
		}
	}()
	for i := int64(1); i <= 5000; i++ {
		c.Inc()
		db.Advance(i * 100)
	}
	<-done
	// Chronological order must survive wraps.
	ws := db.Windows(0)
	for i := 1; i < len(ws); i++ {
		if ws[i].Seq != ws[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs: %d then %d", ws[i-1].Seq, ws[i].Seq)
		}
	}
}

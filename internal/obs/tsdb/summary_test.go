package tsdb

import (
	"testing"
	"time"

	"wasmcontainers/internal/obs"
)

// TestSummaryRollsUpWindows drives a DB through three windows and checks the
// rollup: counter totals and rates, gauge ranges, and the per-window p99
// series the comparator consumes.
func TestSummaryRollsUpWindows(t *testing.T) {
	tele := obs.New(obs.Config{})
	db := New(Config{Interval: time.Second})
	c := tele.Counter("reqs")
	g := tele.Gauge("depth")
	h := tele.Histogram("lat")
	db.TrackCounter("reqs", c)
	db.TrackGauge("depth", g)
	db.TrackHistogram("lat", h)

	if db.Summary() != nil {
		t.Fatal("summary before first window must be nil")
	}
	now := int64(0)
	step := func(reqs int64, depth int64, lat int64) {
		c.Add(reqs)
		g.Set(depth)
		h.Record(lat)
		now += int64(time.Second)
		db.Advance(now)
	}
	step(10, 3, int64(time.Millisecond))
	step(20, 7, int64(time.Millisecond))
	step(30, 5, int64(100*time.Millisecond))

	s := db.Summary()
	if s == nil {
		t.Fatal("summary nil after windows closed")
	}
	if s.IntervalNs != int64(time.Second) || s.Windows.Published != 3 {
		t.Fatalf("summary shape: %+v", s)
	}
	if len(s.Counters) != 1 || s.Counters[0].Total != 60 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if r := s.Counters[0].RatePerSec; r < 19 || r > 21 {
		t.Fatalf("rate = %v, want ~20/s over 3s", r)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Min != 3 || s.Gauges[0].Max != 7 || s.Gauges[0].Last != 5 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms: %+v", s.Histograms)
	}
	hs := s.Histograms[0]
	if hs.Count != 3 || len(hs.P99PerWindow) != 3 {
		t.Fatalf("histogram rollup: %+v", hs)
	}
	// The last window's p99 must reflect the 100ms outlier; the first two
	// must stay near 1ms.
	if hs.P99PerWindow[2] < 10*hs.P99PerWindow[0] {
		t.Fatalf("p99-over-time missed the outlier window: %v", hs.P99PerWindow)
	}
}

// TestP99Drift checks the comparator on hand-built summaries: tail-aligned
// windows, zero-baseline windows skipped, and missing series rejected.
func TestP99Drift(t *testing.T) {
	base := &Summary{Histograms: []HistogramSummary{{
		Name: "lat", P99: 100, P99PerWindow: []int64{0, 100, 100, 100},
	}}}
	cur := &Summary{Histograms: []HistogramSummary{{
		Name: "lat", P99: 150, P99PerWindow: []int64{100, 100, 300},
	}}}
	maxInc, ratio, ok := P99Drift(base, cur, "lat")
	if !ok {
		t.Fatal("comparator rejected matching series")
	}
	if ratio != 1.5 {
		t.Fatalf("overall ratio = %v, want 1.5", ratio)
	}
	// Tail alignment: base [100,100,100] vs cur [100,100,300] -> worst
	// window increase is 3x-1 = 2.0; the base's leading 0 window is ignored
	// by alignment, not treated as an infinite regression.
	if maxInc != 2.0 {
		t.Fatalf("max window increase = %v, want 2.0", maxInc)
	}

	// Zero-p99 windows in the aligned range are skipped, not divided by.
	base.Histograms[0].P99PerWindow = []int64{0, 100}
	cur.Histograms[0].P99PerWindow = []int64{500, 100}
	if maxInc, _, ok = P99Drift(base, cur, "lat"); !ok || maxInc != 0 {
		t.Fatalf("zero-baseline window not skipped: inc=%v ok=%v", maxInc, ok)
	}

	if _, _, ok := P99Drift(base, cur, "missing"); ok {
		t.Fatal("missing series must not compare")
	}
	if _, _, ok := P99Drift(nil, cur, "lat"); ok {
		t.Fatal("nil baseline must not compare")
	}
	if _, _, ok := P99Drift(&Summary{Histograms: []HistogramSummary{{Name: "lat", P99: 0}}}, cur, "lat"); ok {
		t.Fatal("zero overall baseline must not compare")
	}
}

// TestSLOTableTimeSeriesSchema pins the JSON key the bench tables emit, so
// results/<id>.json consumers can rely on the v3 `timeseries` block shape.
func TestSLOTableTimeSeriesSchema(t *testing.T) {
	tele := obs.New(obs.Config{})
	db := New(Config{Interval: time.Second})
	h := tele.Histogram("lat")
	db.TrackHistogram("lat", h)
	h.Record(int64(time.Millisecond))
	db.Advance(int64(time.Second))
	s := db.Summary()
	if s == nil || len(s.Histograms) != 1 || s.Histograms[0].Name != "lat" {
		t.Fatalf("summary: %+v", s)
	}
	if s.Histograms[0].P99 <= 0 {
		t.Fatalf("merged p99 missing: %+v", s.Histograms[0])
	}
}

// Package tsdb turns the obs registry's monotonic totals into windowed time
// series: a fixed-capacity ring of periodic snapshots storing counter deltas,
// gauge values, and mergeable histogram windows, with the query primitives
// (Rate, QuantileOver, EWMA) the ROADMAP's autoscaler and predictive pool
// sizing need.
//
// # Sampling discipline
//
// The DB never samples itself. One goroutine — the DES event chain armed by
// ArmDES in pure simulation, or the gateway bridge's loop goroutine behind
// HTTP — calls Advance(now) with the current simulated time; every window
// whose end has passed closes then, capturing the registry exactly once per
// boundary. Because window edges are aligned to multiples of the interval on
// the simulated clock and the caller advances before executing events at or
// past the boundary, two `-dilation 0` runs of the same workload close
// identical windows with identical contents: the series is byte-for-byte
// reproducible.
//
// # Concurrency contract
//
// Advance is single-writer and lock-free: it touches only atomic loads of the
// tracked handles (obs counters/gauges/histograms are plain atomics) and
// publishes each completed, immutable Window through an atomic pointer ring.
// Readers (HTTP handlers, the SLO engine, bench summaries) never block the
// sampler and never see a torn window. A nil *DB is the disabled state: every
// method no-ops at zero cost, enforced by the obs-overhead benchmark gate.
package tsdb

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/obs"
)

// DefaultCapacity bounds the window ring when Config.Capacity is zero. At the
// gateway's default 250ms interval this retains 64 seconds of history.
const DefaultCapacity = 256

// Config shapes a DB.
type Config struct {
	// Interval is the window length on the sampling clock (simulated
	// nanoseconds in DES runs). Required > 0.
	Interval time.Duration
	// Capacity is the number of retained windows; 0 means DefaultCapacity.
	Capacity int
	// Start is the left edge of the first window (default 0, simulation
	// start).
	Start int64
	// OnWindow, when set, runs synchronously on the sampling goroutine after
	// each closed window publishes. The SLO engine evaluates its alert rules
	// here.
	OnWindow func(w *Window)
}

// CounterWindow is one counter's contribution to a window.
type CounterWindow struct {
	Name  string `json:"name"`
	Delta int64  `json:"delta"`
	Total int64  `json:"total"`
}

// GaugeWindow is one gauge's value at window close.
type GaugeWindow struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketDelta is one non-empty histogram bucket's count within a window,
// keyed by bucket index in the shared obs layout (obs.BucketRange maps an
// index back to its value bounds).
type BucketDelta struct {
	Idx   int   `json:"idx"`
	Count int64 `json:"count"`
}

// HistogramWindow is one histogram's within-window sample set. Buckets holds
// only non-zero deltas; windows merge by summing bucket deltas, and
// obs.QuantileOf recovers quantiles from any merge.
type HistogramWindow struct {
	Name       string        `json:"name"`
	CountDelta int64         `json:"count_delta"`
	SumDelta   int64         `json:"sum_delta"`
	CountTotal int64         `json:"count_total"`
	SumTotal   int64         `json:"sum_total"`
	Buckets    []BucketDelta `json:"buckets,omitempty"`
}

// Window is one closed sampling interval [Start, End). Windows are immutable
// after publication.
type Window struct {
	// Seq numbers windows from 0 in close order, including windows
	// fast-forwarded past during idle gaps (those never materialize).
	Seq        int64             `json:"seq"`
	Start      int64             `json:"start_ns"`
	End        int64             `json:"end_ns"`
	Counters   []CounterWindow   `json:"counters,omitempty"`
	Gauges     []GaugeWindow     `json:"gauges,omitempty"`
	Histograms []HistogramWindow `json:"histograms,omitempty"`
}

// counterSeries through histSeries hold per-series sampler state. The prev*
// fields belong exclusively to the sampling goroutine.
type counterSeries struct {
	name string
	c    *obs.Counter
	prev int64
}

type gaugeSeries struct {
	name string
	g    *obs.Gauge
}

type histSeries struct {
	name               string
	h                  *obs.Histogram
	prev               []int64 // bucket counts at the previous boundary
	scratch            []int64 // bucket counts at the current boundary
	prevCount, prevSum int64
}

// seriesSet is the copy-on-write registration snapshot the sample path loads
// with one atomic pointer read.
type seriesSet struct {
	counters []*counterSeries
	gauges   []*gaugeSeries
	hists    []*histSeries
}

// DB is the windowed time-series store. The zero value is not usable; New
// constructs one. A nil *DB is the disabled state.
type DB struct {
	interval int64
	capacity int
	onWindow func(*Window)

	regMu  sync.Mutex                // serializes registration only
	series atomic.Pointer[seriesSet] // current registration snapshot

	nextEnd atomic.Int64 // end of the currently-open window
	seq     int64        // owned by the sampling goroutine
	skipped atomic.Int64

	ring []atomic.Pointer[Window]
	head atomic.Int64 // windows ever published
}

// New creates a DB. A non-positive interval returns nil (disabled).
func New(cfg Config) *DB {
	if cfg.Interval <= 0 {
		return nil
	}
	cap := cfg.Capacity
	if cap <= 0 {
		cap = DefaultCapacity
	}
	db := &DB{
		interval: int64(cfg.Interval),
		capacity: cap,
		onWindow: cfg.OnWindow,
		ring:     make([]atomic.Pointer[Window], cap),
	}
	db.series.Store(&seriesSet{})
	db.nextEnd.Store(cfg.Start + int64(cfg.Interval))
	return db
}

// Interval returns the window length in nanoseconds (0 when disabled).
func (db *DB) Interval() int64 {
	if db == nil {
		return 0
	}
	return db.interval
}

// track swaps in a new registration snapshot under the registration mutex.
func (db *DB) track(mut func(old *seriesSet) *seriesSet) {
	db.regMu.Lock()
	defer db.regMu.Unlock()
	db.series.Store(mut(db.series.Load()))
}

// TrackCounter registers a counter series. The handle may be nil (disabled
// telemetry): the series then reads as permanently zero. Registering while
// sampling runs is safe; the series joins at the next window.
func (db *DB) TrackCounter(name string, c *obs.Counter) {
	if db == nil {
		return
	}
	db.track(func(old *seriesSet) *seriesSet {
		ns := &seriesSet{gauges: old.gauges, hists: old.hists}
		ns.counters = append(append([]*counterSeries{}, old.counters...),
			&counterSeries{name: name, c: c, prev: c.Value()})
		return ns
	})
}

// TrackGauge registers a gauge series.
func (db *DB) TrackGauge(name string, g *obs.Gauge) {
	if db == nil {
		return
	}
	db.track(func(old *seriesSet) *seriesSet {
		ns := &seriesSet{counters: old.counters, hists: old.hists}
		ns.gauges = append(append([]*gaugeSeries{}, old.gauges...),
			&gaugeSeries{name: name, g: g})
		return ns
	})
}

// TrackHistogram registers a histogram series.
func (db *DB) TrackHistogram(name string, h *obs.Histogram) {
	if db == nil {
		return
	}
	db.track(func(old *seriesSet) *seriesSet {
		hs := &histSeries{
			name:    name,
			h:       h,
			prev:    make([]int64, obs.NumBuckets()),
			scratch: make([]int64, obs.NumBuckets()),
		}
		hs.prevCount, hs.prevSum = h.ReadBuckets(hs.prev)
		ns := &seriesSet{counters: old.counters, gauges: old.gauges}
		ns.hists = append(append([]*histSeries{}, old.hists...), hs)
		return ns
	})
}

// Advance closes every window whose end is at or before now. The caller's
// clock discipline (see the package comment) makes the series deterministic.
// The no-boundary-crossed fast path is one atomic load; a nil DB no-ops.
func (db *DB) Advance(now int64) {
	if db == nil {
		return
	}
	next := db.nextEnd.Load()
	if now < next {
		return
	}
	// Long idle gap: materializing every empty window would allocate
	// proportionally to wall idle time. Fast-forward so at most `capacity`
	// windows (the retainable set) materialize; the skipped windows never had
	// observable deltas to lose — the first materialized window absorbs any.
	if gap := (now - next) / db.interval; gap >= int64(db.capacity) {
		skip := gap - int64(db.capacity) + 1
		db.skipped.Add(skip)
		db.seq += skip
		next += skip * db.interval
	}
	for now >= next {
		db.closeWindow(next)
		next += db.interval
	}
	db.nextEnd.Store(next)
}

// closeWindow captures the registry into an immutable Window ending at end
// and publishes it.
func (db *DB) closeWindow(end int64) {
	ss := db.series.Load()
	w := &Window{Seq: db.seq, Start: end - db.interval, End: end}
	db.seq++
	if n := len(ss.counters); n > 0 {
		w.Counters = make([]CounterWindow, n)
		for i, s := range ss.counters {
			v := s.c.Value()
			w.Counters[i] = CounterWindow{Name: s.name, Delta: v - s.prev, Total: v}
			s.prev = v
		}
	}
	if n := len(ss.gauges); n > 0 {
		w.Gauges = make([]GaugeWindow, n)
		for i, s := range ss.gauges {
			w.Gauges[i] = GaugeWindow{Name: s.name, Value: s.g.Value()}
		}
	}
	if n := len(ss.hists); n > 0 {
		w.Histograms = make([]HistogramWindow, n)
		for i, s := range ss.hists {
			count, sum := s.h.ReadBuckets(s.scratch)
			hw := HistogramWindow{
				Name:       s.name,
				CountDelta: count - s.prevCount,
				SumDelta:   sum - s.prevSum,
				CountTotal: count,
				SumTotal:   sum,
			}
			for b, c := range s.scratch {
				if d := c - s.prev[b]; d != 0 {
					hw.Buckets = append(hw.Buckets, BucketDelta{Idx: b, Count: d})
				}
			}
			s.prev, s.scratch = s.scratch, s.prev
			s.prevCount, s.prevSum = count, sum
			w.Histograms[i] = hw
		}
	}
	db.ring[int(db.head.Load())%db.capacity].Store(w)
	db.head.Add(1)
	if db.onWindow != nil {
		db.onWindow(w)
	}
}

// ArmDES schedules a self-rearming event chain on eng that calls Advance at
// every window boundary up to and including `until`, for pure-simulation runs
// with no external pacing loop. The chain is bounded — it never keeps the
// event queue non-empty past `until`, so Engine.Run terminates.
func (db *DB) ArmDES(eng *des.Engine, until int64) {
	if db == nil || eng == nil {
		return
	}
	var arm func()
	arm = func() {
		db.Advance(int64(eng.Now()))
		if next := db.nextEnd.Load(); next <= until {
			eng.At(des.Time(next), arm)
		}
	}
	if next := db.nextEnd.Load(); next <= until {
		eng.At(des.Time(next), arm)
	}
}

// Windows returns up to max retained windows in chronological order (oldest
// first); max <= 0 means all retained. Safe against a concurrently advancing
// sampler: a window the ring overwrote mid-read is simply omitted.
func (db *DB) Windows(max int) []*Window {
	if db == nil {
		return nil
	}
	h := db.head.Load()
	n := h
	if n > int64(db.capacity) {
		n = int64(db.capacity)
	}
	if max > 0 && n > int64(max) {
		n = int64(max)
	}
	out := make([]*Window, 0, n)
	// Read newest-first so a concurrent overwrite (which replaces the oldest
	// slots with newer windows) shows up as a Seq inversion we can drop.
	lastSeq := int64(math.MaxInt64)
	for i := h - 1; i >= h-n && i >= 0; i-- {
		w := db.ring[int(i)%db.capacity].Load()
		if w == nil || w.Seq >= lastSeq {
			break
		}
		lastSeq = w.Seq
		out = append(out, w)
	}
	// Reverse into chronological order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Last returns the most recently closed window (nil before the first close
// or when disabled).
func (db *DB) Last() *Window {
	if db == nil {
		return nil
	}
	h := db.head.Load()
	if h == 0 {
		return nil
	}
	return db.ring[int(h-1)%db.capacity].Load()
}

// lookback selects the retained windows whose [Start, End) intersects the
// trailing `span` nanoseconds, measured back from the newest window's end;
// span <= 0 means all retained.
func (db *DB) lookback(span int64) []*Window {
	ws := db.Windows(0)
	if len(ws) == 0 || span <= 0 {
		return ws
	}
	cutoff := ws[len(ws)-1].End - span
	lo := 0
	for lo < len(ws) && ws[lo].End <= cutoff {
		lo++
	}
	return ws[lo:]
}

// Rate returns a counter's average increase per second over the trailing
// `span` (all history when span <= 0). Unknown series and empty histories
// read as 0.
func (db *DB) Rate(name string, span time.Duration) float64 {
	if db == nil {
		return 0
	}
	ws := db.lookback(int64(span))
	if len(ws) == 0 {
		return 0
	}
	var delta int64
	for _, w := range ws {
		for _, c := range w.Counters {
			if c.Name == name {
				delta += c.Delta
				break
			}
		}
	}
	covered := ws[len(ws)-1].End - ws[0].Start
	if covered <= 0 {
		return 0
	}
	return float64(delta) / (float64(covered) / 1e9)
}

// QuantileOver estimates a histogram's q-quantile over the samples recorded
// in the trailing `span` by merging window bucket deltas — the mergeability
// that point-in-time histogram snapshots cannot offer.
func (db *DB) QuantileOver(name string, q float64, span time.Duration) int64 {
	if db == nil {
		return 0
	}
	ws := db.lookback(int64(span))
	if len(ws) == 0 {
		return 0
	}
	merged := make([]int64, obs.NumBuckets())
	for _, w := range ws {
		for _, h := range w.Histograms {
			if h.Name == name {
				for _, b := range h.Buckets {
					merged[b.Idx] += b.Count
				}
				break
			}
		}
	}
	return obs.QuantileOf(merged, q)
}

// EWMA returns the exponentially-weighted moving average over the retained
// windows, oldest to newest, seeded with the first observation. For a counter
// series the per-window observation is its rate per second; for a gauge it is
// the sampled value. alpha outside (0, 1] reads as 0.
func (db *DB) EWMA(name string, alpha float64) float64 {
	if db == nil || alpha <= 0 || alpha > 1 {
		return 0
	}
	ws := db.Windows(0)
	winSec := float64(db.interval) / 1e9
	var ewma float64
	seeded := false
	for _, w := range ws {
		var x float64
		found := false
		for _, c := range w.Counters {
			if c.Name == name {
				x, found = float64(c.Delta)/winSec, true
				break
			}
		}
		if !found {
			for _, g := range w.Gauges {
				if g.Name == name {
					x, found = float64(g.Value), true
					break
				}
			}
		}
		if !found {
			continue
		}
		if !seeded {
			ewma, seeded = x, true
			continue
		}
		ewma = alpha*x + (1-alpha)*ewma
	}
	return ewma
}

// Stats reports sampler totals.
type Stats struct {
	// Published counts windows materialized into the ring.
	Published int64 `json:"published"`
	// Skipped counts empty windows fast-forwarded past during idle gaps.
	Skipped int64 `json:"skipped"`
	// Retained is how many windows the ring currently holds.
	Retained int `json:"retained"`
}

// Stats snapshots the sampler totals (zero when disabled).
func (db *DB) Stats() Stats {
	if db == nil {
		return Stats{}
	}
	h := db.head.Load()
	ret := h
	if ret > int64(db.capacity) {
		ret = int64(db.capacity)
	}
	return Stats{Published: h, Skipped: db.skipped.Load(), Retained: int(ret)}
}

package obs

import (
	"encoding/json"
	"io"
)

// traceEvent is one Chrome trace-event ("X" = complete event: begin + end in
// one record). Timestamps and durations are microseconds, the unit
// chrome://tracing and Perfetto expect.
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	PID  int64                  `json:"pid"`
	TID  int64                  `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container format.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. Span attributes become event
// args; each span's Start/Dur nanoseconds convert to the format's
// microseconds.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := make([]traceEvent, 0, len(spans))
	for _, s := range spans {
		ev := traceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			PID:  s.PID,
			TID:  s.TID,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]interface{}, len(s.Attrs))
			for _, a := range s.Attrs {
				if a.Str != "" {
					ev.Args[a.Key] = a.Str
				} else {
					ev.Args[a.Key] = a.Val
				}
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

package obs

import "testing"

// invokeInstrumentation is the exact handle sequence the engine/pool/cache
// hot paths execute per request: counter increments, a histogram record, and
// a nil-guarded span emission. Factored out so the disabled and enabled
// benchmarks measure the same code.
func invokeInstrumentation(hits *Counter, invokes *Counter, lat *Histogram, tr *Tracer, i int64) {
	hits.Inc()
	invokes.Add(2)
	lat.Record(i)
	if tr != nil {
		tr.Span("invoke", "serve", i, i, i+10, I64("instructions", i))
	}
}

// BenchmarkInvokeTelemetryDisabled is the Makefile obs-overhead gate: the
// full per-request instrumentation sequence against nil handles MUST report
// 0 allocs/op — proof that building with telemetry wired but disabled costs
// only predictable nil checks on the hot path.
func BenchmarkInvokeTelemetryDisabled(b *testing.B) {
	var tele *Telemetry
	hits := tele.Counter("hits")
	invokes := tele.Counter("invokes")
	lat := tele.Histogram("lat")
	tr := tele.Tracer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invokeInstrumentation(hits, invokes, lat, tr, int64(i))
	}
}

// BenchmarkInvokeTelemetryEnabled is the companion cost figure: the same
// sequence with live handles (atomics plus one ring write under a mutex).
func BenchmarkInvokeTelemetryEnabled(b *testing.B) {
	tele := New(Config{TraceCapacity: 1 << 10, Clock: func() int64 { return 0 }})
	hits := tele.Counter("hits")
	invokes := tele.Counter("invokes")
	lat := tele.Histogram("lat")
	tr := tele.Tracer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invokeInstrumentation(hits, invokes, lat, tr, int64(i))
	}
}

// BenchmarkHistogramRecord isolates the histogram hot path (~ns target).
func BenchmarkHistogramRecord(b *testing.B) {
	h := newHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

package obs

import (
	"fmt"
	"io"
	"strings"
)

// splitName separates a Labeled metric name into its base name and label
// block: `x{a="b"}` → ("x", `a="b"`). Unlabeled names return an empty label
// block.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// promLine renders one sample, merging extra label pairs into the name's
// label block.
func promLine(w io.Writer, base, labels, extra string, value int64) error {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all != "" {
		_, err := fmt.Fprintf(w, "%s{%s} %d\n", base, all, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", base, value)
	return err
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative `_bucket{le=...}` series with `_sum` and `_count`. Labeled
// names produced by Labeled() keep their label blocks; the histogram `le`
// label merges into them. Metrics sharing a base name emit one # TYPE line.
func WritePrometheus(w io.Writer, s Snapshot) error {
	typed := map[string]bool{}
	header := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, c := range s.Counters {
		base, labels := splitName(c.Name)
		if err := header(base, "counter"); err != nil {
			return err
		}
		if err := promLine(w, base, labels, "", c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		base, labels := splitName(g.Name)
		if err := header(base, "gauge"); err != nil {
			return err
		}
		if err := promLine(w, base, labels, "", g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		if err := header(base, "histogram"); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if err := promLine(w, base+"_bucket", labels,
				fmt.Sprintf("le=%q", fmt.Sprintf("%d", b.UpperBound)), cum); err != nil {
				return err
			}
		}
		if err := promLine(w, base+"_bucket", labels, `le="+Inf"`, h.Count); err != nil {
			return err
		}
		if err := promLine(w, base+"_sum", labels, "", h.Sum); err != nil {
			return err
		}
		if err := promLine(w, base+"_count", labels, "", h.Count); err != nil {
			return err
		}
	}
	return nil
}

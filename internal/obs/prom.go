package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Version is the exposition-level build version stamped into
// continuum_build_info. It tracks the repository's PR sequence rather than a
// release tag.
const Version = "0.9"

// helpMu guards the help registry; RegisterHelp is called at init time by
// instrumented packages and (rarely) by tests.
var (
	helpMu   sync.Mutex
	helpText = map[string]string{
		"continuum_build_info":            "Build metadata; value is always 1.",
		"dispatch_submitted_total":        "Requests offered to a dispatcher.",
		"dispatch_completed_total":        "Requests that ran to completion.",
		"dispatch_rejected_total":         "Requests refused at admission.",
		"dispatch_expired_total":          "Queued requests dropped past their deadline.",
		"dispatch_failed_total":           "Requests whose every attempt errored.",
		"dispatch_retries_total":          "Retry attempts scheduled after failures.",
		"dispatch_latency_ns":             "End-to-end simulated request latency.",
		"dispatch_queue_wait_ns":          "Simulated time spent parked in the wait queue.",
		"dispatch_queue_depth":            "Requests currently parked in the wait queue.",
		"dispatch_in_flight":              "Requests currently holding a concurrency slot.",
		"dispatch_breaker_state":          "Circuit breaker position (0 closed, 1 half-open, 2 open).",
		"gateway_http_requests_total":     "HTTP requests served by the gateway front door.",
		"gateway_http_errors_total":       "HTTP responses with status >= 400.",
		"gateway_wall_latency_ns":         "Wall-clock HTTP request latency.",
		"router_submitted_total":          "Requests routed to a module shard.",
		"router_completed_total":          "Routed requests that ran to completion.",
		"router_batches_total":            "Coalesced submission batches flushed.",
		"router_batched_requests_total":   "Requests admitted through coalesced batches.",
		"router_shards":                   "Registered module shards.",
		"slo_burn_rate_milli":             "Long-window error-budget burn rate x1000 per objective.",
		"slo_alert_firing":                "1 while the objective's alert at this severity fires.",
		"slo_alert_transitions_total":     "Alert state transitions (fire + clear).",
		"slo_budget_remaining_milli":      "Error budget remaining x1000 per objective.",
		"trace_tail_kept_tracks_total":    "Request trace tracks committed by the tail sampler.",
		"trace_tail_sampled_out_total":    "Healthy request trace tracks dropped at finish.",
		"trace_tail_evicted_tracks_total": "Pending trace tracks evicted under the memory bound.",
		"tsdb_windows_total":              "Time-series windows sampled.",
		"go_goroutines":                   "Live goroutines in the continuumd process.",
		"go_heap_alloc_bytes":             "Bytes of allocated heap objects.",
		"go_heap_sys_bytes":               "Bytes of heap obtained from the OS.",
		"go_gc_pause_total_ns":            "Cumulative GC stop-the-world pause time.",
		"go_gc_cycles_total":              "Completed GC cycles.",
	}
)

// RegisterHelp attaches a # HELP line to a metric base name; subsequent
// WritePrometheus calls emit it. Re-registration overwrites.
func RegisterHelp(base, text string) {
	helpMu.Lock()
	helpText[base] = text
	helpMu.Unlock()
}

// helpFor returns the registered help text for base ("" when none).
func helpFor(base string) string {
	helpMu.Lock()
	defer helpMu.Unlock()
	return helpText[base]
}

// StampBuildInfo sets the conventional continuum_build_info gauge (value 1,
// labels carrying the version and Go toolchain) on the registry. The serving
// entry points (gateway, continuumd) call it so every exposition carries
// build identity; pure-library registries stay unpolluted.
func StampBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	name := Labeled(Labeled("continuum_build_info", "version", Version),
		"go_version", runtime.Version())
	r.Gauge(name).Set(1)
}

// splitName separates a Labeled metric name into its base name and label
// block: `x{a="b"}` → ("x", `a="b"`). Unlabeled names return an empty label
// block.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// sortLabels rewrites a label block with its pairs in key order, so the
// exposition is deterministic regardless of the order Labeled calls appended
// them. Pairs are split on top-level commas (quoted values may contain
// commas and escaped quotes).
func sortLabels(labels string) string {
	if labels == "" {
		return ""
	}
	var pairs []string
	start, inQuote := 0, false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				pairs = append(pairs, labels[start:i])
				start = i + 1
			}
		}
	}
	pairs = append(pairs, labels[start:])
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// promLine renders one sample, merging extra label pairs into the name's
// label block.
func promLine(w io.Writer, base, labels, extra string, value int64) error {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all != "" {
		_, err := fmt.Fprintf(w, "%s{%s} %d\n", base, all, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", base, value)
	return err
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative `_bucket{le=...}` series with `_sum` and `_count`. Labeled
// names produced by Labeled() keep their label blocks with pairs
// deterministically sorted by key; the histogram `le` label merges into
// them. Metrics sharing a base name emit one # HELP (when registered) and
// one # TYPE line.
func WritePrometheus(w io.Writer, s Snapshot) error {
	typed := map[string]bool{}
	header := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		if h := helpFor(base); h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, h); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, c := range s.Counters {
		base, labels := splitName(c.Name)
		if err := header(base, "counter"); err != nil {
			return err
		}
		if err := promLine(w, base, sortLabels(labels), "", c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		base, labels := splitName(g.Name)
		if err := header(base, "gauge"); err != nil {
			return err
		}
		if err := promLine(w, base, sortLabels(labels), "", g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		if err := header(base, "histogram"); err != nil {
			return err
		}
		labels = sortLabels(labels)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if err := promLine(w, base+"_bucket", labels,
				fmt.Sprintf("le=%q", fmt.Sprintf("%d", b.UpperBound)), cum); err != nil {
				return err
			}
		}
		if err := promLine(w, base+"_bucket", labels, `le="+Inf"`, h.Count); err != nil {
			return err
		}
		if err := promLine(w, base+"_sum", labels, "", h.Sum); err != nil {
			return err
		}
		if err := promLine(w, base+"_count", labels, "", h.Count); err != nil {
			return err
		}
	}
	return nil
}

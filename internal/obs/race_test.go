package obs

import (
	"sync"
	"testing"
)

// TestConcurrentRecordAndSnapshot hammers one telemetry instance from eight
// goroutines — counters, gauges, histograms, spans — while another snapshots
// and exports concurrently. Run under -race (make race) this is the
// thread-safety contract of the whole package.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	tele := New(Config{TraceCapacity: 256})
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := tele.Counter("c")
			g := tele.Gauge("g")
			h := tele.Histogram("h")
			tr := tele.Tracer()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Record(int64(i * w))
				if tr != nil {
					tr.Span("s", "t", int64(w), int64(i), int64(i+1), I64("i", int64(i)))
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := tele.Snapshot()
			_ = snap
			_ = tele.Tracer().Spans()
			_ = tele.Tracer().Now()
		}
	}()
	wg.Wait()
	<-done
	if got := tele.Counter("c").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := tele.Histogram("h").Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := tele.Tracer().Recorded(); got != workers*iters {
		t.Fatalf("spans recorded = %d, want %d", got, workers*iters)
	}
}

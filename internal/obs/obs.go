// Package obs is the repository's telemetry layer: an atomic,
// allocation-free-on-hot-path metrics registry (monotonic counters, gauges,
// mergeable log-linear histograms) and a fixed-capacity ring-buffer span
// tracer covering the full request lifecycle — loadgen arrival, dispatcher
// queue wait, pool acquire (warm hit vs cold start), engine instantiate
// (with the module cache's decode/validate/lower and hit/miss split), guest
// invoke (instructions consumed, trap info), and copy-on-write reset (dirty
// pages copied). Two exporters turn a run into files: Prometheus text
// exposition (WritePrometheus) and Chrome trace-event JSON
// (WriteChromeTrace, loadable in chrome://tracing or Perfetto).
//
// The disabled path is free by construction: every instrumented component
// holds pre-resolved handles (possibly nil) and each handle method no-ops on
// a nil receiver with zero allocations — enforced by
// BenchmarkInvokeTelemetryDisabled and the Makefile obs-overhead gate. Span
// emission, whose variadic attributes would allocate even for a no-op call,
// is additionally guarded by an `if tracer != nil` at every call site.
package obs

import "strings"

// Telemetry bundles the metrics registry and the span tracer. A nil
// *Telemetry is the disabled state: every accessor returns nil handles whose
// methods no-op.
type Telemetry struct {
	metrics *Registry
	tracer  *Tracer
}

// Config shapes a Telemetry instance.
type Config struct {
	// TraceCapacity bounds the span ring buffer; 0 means
	// DefaultTraceCapacity.
	TraceCapacity int
	// Clock supplies span timestamps in nanoseconds; nil uses wall time
	// since creation. The serving harness swaps in the DES clock per run.
	Clock func() int64
}

// New creates an enabled Telemetry.
func New(cfg Config) *Telemetry {
	return &Telemetry{
		metrics: NewRegistry(),
		tracer:  NewTracer(cfg.TraceCapacity, cfg.Clock),
	}
}

// Metrics returns the registry (nil when disabled).
func (t *Telemetry) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Tracer returns the span tracer (nil when disabled).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Counter resolves a counter handle; nil when disabled.
func (t *Telemetry) Counter(name string) *Counter { return t.Metrics().Counter(name) }

// Gauge resolves a gauge handle; nil when disabled.
func (t *Telemetry) Gauge(name string) *Gauge { return t.Metrics().Gauge(name) }

// Histogram resolves a histogram handle; nil when disabled.
func (t *Telemetry) Histogram(name string) *Histogram { return t.Metrics().Histogram(name) }

// Snapshot dumps the registry (empty when disabled).
func (t *Telemetry) Snapshot() Snapshot { return t.Metrics().Snapshot() }

// Labeled renders a metric name with one label pair in Prometheus form:
// Labeled("pool_warm_hits_total", "engine", "wamr") →
// `pool_warm_hits_total{engine="wamr"}`. Additional pairs append to an
// already-labeled name.
func Labeled(name, key, value string) string {
	value = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	if i := strings.LastIndexByte(name, '}'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i] + `,` + key + `="` + value + `"}`
	}
	return name + `{` + key + `="` + value + `"}`
}

// Labeled2 renders a metric name with two label pairs, in argument order:
// Labeled2("cluster_routed_total", "module", "m", "node", "worker-0") →
// `cluster_routed_total{module="m",node="worker-0"}`. The cluster serving
// layer uses this for its {module, node} metric grid.
func Labeled2(name, k1, v1, k2, v2 string) string {
	return Labeled(Labeled(name, k1, v1), k2, v2)
}

package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"wasmcontainers/internal/metrics"
)

func TestNilHandlesNoOp(t *testing.T) {
	var tele *Telemetry
	c := tele.Counter("c")
	g := tele.Gauge("g")
	h := tele.Histogram("h")
	tr := tele.Tracer()
	if c != nil || g != nil || h != nil || tr != nil {
		t.Fatalf("nil telemetry must resolve nil handles, got %v %v %v %v", c, g, h, tr)
	}
	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Add(1)
	h.Record(42)
	tr.Span("x", "y", 0, 0, 1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Recorded() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if got := tele.Snapshot(); len(got.Counters) != 0 || len(got.Gauges) != 0 || len(got.Histograms) != 0 {
		t.Fatalf("nil telemetry snapshot must be empty, got %+v", got)
	}
	if h.Quantile(0.5) != 0 || tr.Now() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil handle reads must be zero values")
	}
}

func TestCounterGaugeRegistry(t *testing.T) {
	tele := New(Config{})
	c := tele.Counter("requests_total")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if tele.Counter("requests_total") != c {
		t.Fatal("registry must return the same counter for the same name")
	}
	g := tele.Gauge("depth")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
	snap := tele.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "requests_total" || snap.Counters[0].Value != 10 {
		t.Fatalf("snapshot counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 3 {
		t.Fatalf("snapshot gauges = %+v", snap.Gauges)
	}
}

func TestHistogramBucketLayout(t *testing.T) {
	// Every representable value must map to a bucket whose bounds contain it.
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<62 + 12345} {
		idx := bucketIdx(v)
		lo, hi := bucketBounds(idx)
		if int64(v) < lo || int64(v) > hi {
			t.Fatalf("value %d landed in bucket %d [%d,%d]", v, idx, lo, hi)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucket index %d out of range for %d", idx, v)
		}
	}
	// Buckets must tile the axis without gaps or overlaps.
	prevHi := int64(-1)
	for i := 0; i < 100; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		prevHi = hi
	}
}

func TestHistogramRecordAndQuantile(t *testing.T) {
	h := newHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Record(-5) // clamps to 0
	h.Record(5)
	h.Record(10)
	if h.Count() != 3 || h.Sum() != 15 {
		t.Fatalf("count=%d sum=%d, want 3/15", h.Count(), h.Sum())
	}
	if h.min.Load() != 0 || h.max.Load() != 10 {
		t.Fatalf("min=%d max=%d, want 0/10", h.min.Load(), h.max.Load())
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %d, want 0", q)
	}
	if q := h.Quantile(1); q != 10 {
		t.Fatalf("q1 = %d, want 10", q)
	}
}

// TestHistogramQuantileErrorBound checks the recorded p50/p99 stay within one
// bucket width of the exact percentiles metrics.Summarize computes over the
// same samples — the log-linear layout's accuracy contract.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHistogram()
	xs := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-uniform-ish latencies from ~1µs to ~100ms, the serving range.
		v := int64(1000 * (1 << uint(rng.Intn(17))))
		v += rng.Int63n(v)
		h.Record(v)
		xs = append(xs, float64(v))
	}
	exact := metrics.Summarize(xs)
	for _, tc := range []struct {
		q     float64
		exact float64
	}{{0.50, exact.P50}, {0.99, exact.P99}} {
		got := h.Quantile(tc.q)
		tol := BucketWidth(int64(tc.exact))
		diff := float64(got) - tc.exact
		if diff < 0 {
			diff = -diff
		}
		if diff > float64(tol) {
			t.Errorf("q%.2f: histogram %d vs exact %.0f, |diff| %.0f > bucket width %d",
				tc.q, got, tc.exact, diff, tol)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := newHistogram(), newHistogram()
	merged := newHistogram()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		merged.Record(v)
	}
	sum := newHistogram()
	sum.Merge(a)
	sum.Merge(b)
	sum.Merge(nil) // no-op
	if sum.Count() != merged.Count() || sum.Sum() != merged.Sum() {
		t.Fatalf("merge count/sum %d/%d, want %d/%d", sum.Count(), sum.Sum(), merged.Count(), merged.Sum())
	}
	if sum.min.Load() != merged.min.Load() || sum.max.Load() != merged.max.Load() {
		t.Fatalf("merge min/max %d/%d, want %d/%d", sum.min.Load(), sum.max.Load(), merged.min.Load(), merged.max.Load())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if sum.Quantile(q) != merged.Quantile(q) {
			t.Fatalf("q%.2f: merged %d, direct %d", q, sum.Quantile(q), merged.Quantile(q))
		}
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled("hits_total", "engine", "wamr"); got != `hits_total{engine="wamr"}` {
		t.Fatalf("Labeled = %s", got)
	}
	two := Labeled(Labeled("m", "a", "1"), "b", "2")
	if two != `m{a="1",b="2"}` {
		t.Fatalf("chained Labeled = %s", two)
	}
	if got := Labeled("m", "k", `va"l`+"\n"); got != `m{k="va\"l\n"}` {
		t.Fatalf("escaped Labeled = %s", got)
	}
	if got := Labeled2("cluster_routed_total", "module", "m1", "node", "worker-0"); got != `cluster_routed_total{module="m1",node="worker-0"}` {
		t.Fatalf("Labeled2 = %s", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	tele := New(Config{})
	tele.Counter(Labeled("hits_total", "engine", "wamr")).Add(3)
	tele.Counter(Labeled("hits_total", "engine", "wasmtime")).Add(4)
	tele.Gauge("depth").Set(2)
	h := tele.Histogram("lat_ns")
	h.Record(5)
	h.Record(5)
	h.Record(900)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, tele.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE hits_total counter\n",
		`hits_total{engine="wamr"} 3` + "\n",
		`hits_total{engine="wasmtime"} 4` + "\n",
		"# TYPE depth gauge\n",
		"depth 2\n",
		"# TYPE lat_ns histogram\n",
		`lat_ns_bucket{le="5"} 2` + "\n",
		`lat_ns_bucket{le="+Inf"} 3` + "\n",
		"lat_ns_sum 910\n",
		"lat_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE hits_total") != 1 {
		t.Error("one TYPE line per base name expected")
	}
	// Cumulative le series must be non-decreasing and end at count.
	if !strings.Contains(out, `lat_ns_bucket{le="959"} 3`) {
		t.Errorf("cumulative bucket for 900 missing:\n%s", out)
	}
}

func TestTracerRingAndSpans(t *testing.T) {
	clock := int64(0)
	tr := NewTracer(4, func() int64 { return clock })
	tr.SetPID(9)
	for i := int64(1); i <= 6; i++ {
		tr.Span("s", "c", i, i*10, i*10+5)
	}
	if tr.Recorded() != 6 || tr.Dropped() != 2 {
		t.Fatalf("recorded=%d dropped=%d, want 6/2", tr.Recorded(), tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		wantTID := int64(i + 3) // oldest retained is #3
		if s.TID != wantTID || s.Start != wantTID*10 || s.Dur != 5 || s.PID != 9 {
			t.Fatalf("span %d = %+v", i, s)
		}
	}
	// Negative durations clamp.
	tr.Span("neg", "c", 0, 100, 50)
	all := tr.Spans()
	if got := all[len(all)-1].Dur; got != 0 {
		t.Fatalf("negative duration must clamp to 0, got %d", got)
	}
}

func TestWriteChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(8, func() int64 { return 0 })
	tr.SetPID(1)
	tr.Span("invoke", "serve", 7, 2000, 5000, I64("instructions", 42), Str("engine", "wamr"))
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Cat  string                 `json:"cat"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			PID  int64                  `json:"pid"`
			TID  int64                  `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "invoke" || ev.Ph != "X" || ev.TS != 2 || ev.Dur != 3 || ev.PID != 1 || ev.TID != 7 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Args["instructions"] != float64(42) || ev.Args["engine"] != "wamr" {
		t.Fatalf("args = %+v", ev.Args)
	}
}

func TestSnapshotHistograms(t *testing.T) {
	tele := New(Config{})
	h := tele.Histogram("pages")
	h.Record(1)
	h.Record(1)
	h.Record(300)
	snap := tele.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Name != "pages" || hs.Count != 3 || hs.Sum != 302 || hs.Min != 1 || hs.Max != 300 {
		t.Fatalf("snapshot = %+v", hs)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("bucket counts sum to %d, want 3", total)
	}
}

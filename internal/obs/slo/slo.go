// Package slo layers service-level objectives on the tsdb time series:
// declared objectives (availability from counter pairs, latency from
// histogram windows), error-budget accounting, and classic multi-window
// multi-burn-rate alerting (the 14.4x/1h + 6x/6h page/ticket pattern, with
// windows scaled down to simulation time).
//
// Burn rate is the ratio of the observed bad-event fraction to the budget the
// objective allows: a 99.9% availability target leaves a 0.1% budget, so a
// 1.44% bad fraction burns at 14.4x — at that pace a 30-day budget is gone in
// ~2 days, which is what makes it the canonical paging threshold. An alert
// fires only when both its long and short windows burn past the threshold:
// the long window proves the problem is sustained, the short window proves it
// is still happening, so recoveries clear quickly.
//
// Evaluate runs on the sampling goroutine (tsdb's OnWindow hook) after each
// window closes; alert state is mirrored into gauges/counters and spans on
// transitions, and Status() serves concurrent HTTP readers under an internal
// lock.
package slo

import (
	"fmt"
	"sync"
	"time"

	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/obs/tsdb"
)

// Severity ranks an alert rule.
type Severity string

const (
	// Page severity means "wake a human now": fast burn that exhausts the
	// budget within hours.
	Page Severity = "page"
	// Ticket severity means "look during business hours": slow sustained
	// burn.
	Ticket Severity = "ticket"
)

// Kind selects how an objective derives its bad-event fraction.
type Kind string

const (
	// Availability objectives compare a bad-event counter against a total
	// counter window by window.
	Availability Kind = "availability"
	// Latency objectives count histogram samples above a threshold as bad
	// events.
	Latency Kind = "latency"
)

// Rule is one burn-rate alert: fire when both the long and the short trailing
// windows burn faster than BurnRate.
type Rule struct {
	Severity Severity      `json:"severity"`
	BurnRate float64       `json:"burn_rate"`
	Long     time.Duration `json:"long_ns"`
	Short    time.Duration `json:"short_ns"`
}

// DefaultRules scales the canonical production pair (14.4x over 1h/5m pages,
// 6x over 6h/30m tickets) onto a base window: pass the simulation's
// evaluation horizon (e.g. 2s of sim time) as `hour` and the windows keep
// their 12:1 long:short shape.
func DefaultRules(hour time.Duration) []Rule {
	return []Rule{
		{Severity: Page, BurnRate: 14.4, Long: hour, Short: hour / 12},
		{Severity: Ticket, BurnRate: 6, Long: 6 * hour, Short: hour / 2},
	}
}

// Objective declares one SLO.
type Objective struct {
	// Name identifies the objective in gauges, spans, and status JSON.
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Target is the good fraction promised, e.g. 0.999. The error budget is
	// 1 - Target.
	Target float64 `json:"target"`

	// BadSeries and TotalSeries name tsdb counter series for Availability
	// objectives: bad fraction = sum(all BadSeries) / sum(Total) per window
	// span. Multiple bad series let the dispatcher's conservation split
	// (failed + rejected + expired) count as one bad stream.
	BadSeries   []string `json:"bad_series,omitempty"`
	TotalSeries string   `json:"total_series,omitempty"`

	// LatencySeries names a tsdb histogram series for Latency objectives;
	// samples above LatencyThreshold are bad events.
	LatencySeries    string        `json:"latency_series,omitempty"`
	LatencyThreshold time.Duration `json:"latency_threshold_ns,omitempty"`

	// Rules are the burn-rate alerts; nil means DefaultRules scaled to the
	// engine's base window.
	Rules []Rule `json:"rules,omitempty"`
}

// AlertState is one rule's live state within an objective.
type AlertState struct {
	Severity  Severity `json:"severity"`
	BurnRate  float64  `json:"burn_rate"`
	LongNs    int64    `json:"long_ns"`
	ShortNs   int64    `json:"short_ns"`
	Firing    bool     `json:"firing"`
	LongBurn  float64  `json:"long_burn"`
	ShortBurn float64  `json:"short_burn"`
	// SinceNs is the sim time of the last transition (fire or clear).
	SinceNs int64 `json:"since_ns,omitempty"`
	// Transitions counts fire+clear edges.
	Transitions int64 `json:"transitions"`
}

// ObjectiveStatus is one objective's live state.
type ObjectiveStatus struct {
	Name   string  `json:"name"`
	Kind   Kind    `json:"kind"`
	Target float64 `json:"target"`
	// BadTotal/GoodTotal account the whole run (error budget bookkeeping).
	BadTotal   int64 `json:"bad_total"`
	EventTotal int64 `json:"event_total"`
	// BudgetRemaining is the fraction of the error budget left, 1 when no
	// events yet, clamped at 0.
	BudgetRemaining float64      `json:"budget_remaining"`
	Alerts          []AlertState `json:"alerts"`
}

// Status is the engine's live state, served by /v1/slo.
type Status struct {
	EvaluatedWindows int64             `json:"evaluated_windows"`
	Objectives       []ObjectiveStatus `json:"objectives"`
}

// objective is the engine-internal state for one declared Objective.
type objective struct {
	decl   Objective
	alerts []*alert

	badTotal   int64
	eventTotal int64

	burnGauge   *obs.Gauge
	budgetGauge *obs.Gauge
}

type alert struct {
	rule        Rule
	firing      bool
	longBurn    float64
	shortBurn   float64
	sinceNs     int64
	transitions int64

	firingGauge *obs.Gauge
	transCtr    *obs.Counter
}

// Config shapes an Engine.
type Config struct {
	// DB is the windowed series source. Required.
	DB *tsdb.DB
	// Objectives to evaluate. Required non-empty.
	Objectives []Objective
	// BaseWindow scales DefaultRules for objectives that declare none; 0
	// means 1 hour (production time).
	BaseWindow time.Duration
	// Telemetry receives the slo_burn_rate_milli / slo_alert_firing /
	// slo_budget_remaining_milli gauges, transition counters, and transition
	// spans. Optional.
	Telemetry *obs.Telemetry
}

// Engine evaluates objectives after each tsdb window closes. A nil *Engine is
// the disabled state.
type Engine struct {
	db   *tsdb.DB
	tele *obs.Telemetry

	// mu guards the mutable evaluation state against concurrent Status
	// readers; Evaluate itself stays single-caller (the sampling goroutine).
	mu         sync.Mutex
	objectives []*objective
	evaluated  int64
}

// New builds an Engine. Returns nil (disabled) when cfg.DB is nil or no
// objectives are declared.
func New(cfg Config) *Engine {
	if cfg.DB == nil || len(cfg.Objectives) == 0 {
		return nil
	}
	base := cfg.BaseWindow
	if base <= 0 {
		base = time.Hour
	}
	e := &Engine{db: cfg.DB, tele: cfg.Telemetry}
	for _, decl := range cfg.Objectives {
		if decl.Target <= 0 || decl.Target >= 1 {
			continue
		}
		o := &objective{decl: decl}
		if len(o.decl.Rules) == 0 {
			o.decl.Rules = DefaultRules(base)
		}
		if cfg.Telemetry != nil {
			m := cfg.Telemetry.Metrics()
			o.burnGauge = m.Gauge(obs.Labeled("slo_burn_rate_milli", "objective", decl.Name))
			o.budgetGauge = m.Gauge(obs.Labeled("slo_budget_remaining_milli", "objective", decl.Name))
			o.budgetGauge.Set(1000)
		}
		for _, r := range o.decl.Rules {
			a := &alert{rule: r}
			if cfg.Telemetry != nil {
				m := cfg.Telemetry.Metrics()
				name := obs.Labeled(obs.Labeled("slo_alert_firing", "objective", decl.Name),
					"severity", string(r.Severity))
				a.firingGauge = m.Gauge(name)
				a.transCtr = m.Counter(obs.Labeled(obs.Labeled("slo_alert_transitions_total",
					"objective", decl.Name), "severity", string(r.Severity)))
			}
			o.alerts = append(o.alerts, a)
		}
		e.objectives = append(e.objectives, o)
	}
	if len(e.objectives) == 0 {
		return nil
	}
	return e
}

// badFraction computes an objective's bad-event fraction and totals over the
// trailing span ending at the newest window.
func (e *Engine) badFraction(o *objective, span time.Duration) (frac float64, bad, total int64) {
	switch o.decl.Kind {
	case Availability:
		ws := windowsCovering(e.db, span)
		for _, w := range ws {
			for _, c := range w.Counters {
				for _, name := range o.decl.BadSeries {
					if c.Name == name {
						bad += c.Delta
						break
					}
				}
				if c.Name == o.decl.TotalSeries {
					total += c.Delta
				}
			}
		}
	case Latency:
		ws := windowsCovering(e.db, span)
		thr := int64(o.decl.LatencyThreshold)
		for _, w := range ws {
			for _, h := range w.Histograms {
				if h.Name != o.decl.LatencySeries {
					continue
				}
				total += h.CountDelta
				for _, b := range h.Buckets {
					if lo, _ := obs.BucketRange(b.Idx); lo > thr {
						bad += b.Count
					}
				}
				break
			}
		}
	}
	if total == 0 {
		return 0, bad, total
	}
	return float64(bad) / float64(total), bad, total
}

// accumulate adds one closed window's deltas to the objective's cumulative
// error-budget totals.
func (o *objective) accumulate(w *tsdb.Window) {
	switch o.decl.Kind {
	case Availability:
		for _, c := range w.Counters {
			for _, name := range o.decl.BadSeries {
				if c.Name == name {
					o.badTotal += c.Delta
					break
				}
			}
			if c.Name == o.decl.TotalSeries {
				o.eventTotal += c.Delta
			}
		}
	case Latency:
		thr := int64(o.decl.LatencyThreshold)
		for _, h := range w.Histograms {
			if h.Name != o.decl.LatencySeries {
				continue
			}
			o.eventTotal += h.CountDelta
			for _, b := range h.Buckets {
				if lo, _ := obs.BucketRange(b.Idx); lo > thr {
					o.badTotal += b.Count
				}
			}
			break
		}
	}
}

// windowsCovering returns the retained windows intersecting the trailing span.
func windowsCovering(db *tsdb.DB, span time.Duration) []*tsdb.Window {
	ws := db.Windows(0)
	if len(ws) == 0 || span <= 0 {
		return ws
	}
	cutoff := ws[len(ws)-1].End - int64(span)
	lo := 0
	for lo < len(ws) && ws[lo].End <= cutoff {
		lo++
	}
	return ws[lo:]
}

// Evaluate runs every objective's rules against the series as of window w.
// Wire it as the tsdb OnWindow hook; it is not safe for concurrent callers
// (Status readers are fine).
func (e *Engine) Evaluate(w *tsdb.Window) {
	if e == nil || w == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evaluated++
	now := w.End
	for _, o := range e.objectives {
		budget := 1 - o.decl.Target
		// Error-budget accounting is cumulative: fold in this window's deltas
		// exactly once as it closes. Rescanning the ring instead would
		// silently truncate the budget to the last Capacity windows.
		o.accumulate(w)
		if o.budgetGauge != nil {
			o.budgetGauge.Set(int64(budgetRemaining(o.badTotal, o.eventTotal, budget) * 1000))
		}
		var maxLong float64
		for _, a := range o.alerts {
			longFrac, _, longTotal := e.badFraction(o, a.rule.Long)
			shortFrac, _, shortTotal := e.badFraction(o, a.rule.Short)
			a.longBurn = longFrac / budget
			a.shortBurn = shortFrac / budget
			if a.longBurn > maxLong {
				maxLong = a.longBurn
			}
			firing := longTotal > 0 && shortTotal > 0 &&
				a.longBurn >= a.rule.BurnRate && a.shortBurn >= a.rule.BurnRate
			if firing != a.firing {
				a.firing = firing
				a.sinceNs = now
				a.transitions++
				if a.transCtr != nil {
					a.transCtr.Inc()
				}
				if a.firingGauge != nil {
					if firing {
						a.firingGauge.Set(1)
					} else {
						a.firingGauge.Set(0)
					}
				}
				if tr := e.tele.Tracer(); tr != nil {
					verb := "clear"
					if firing {
						verb = "fire"
					}
					tr.Span(fmt.Sprintf("slo-%s-%s", a.rule.Severity, verb), "slo", 0, now, now,
						obs.Str("objective", o.decl.Name),
						obs.I64("long_burn_milli", int64(a.longBurn*1000)),
						obs.I64("short_burn_milli", int64(a.shortBurn*1000)))
				}
			}
		}
		if o.burnGauge != nil {
			o.burnGauge.Set(int64(maxLong * 1000))
		}
	}
}

// budgetRemaining is the fraction of the error budget left given whole-run
// totals, clamped to [0, 1]; 1 before any events.
func budgetRemaining(bad, total int64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 1
	}
	rem := 1 - (float64(bad)/float64(total))/budget
	if rem < 0 {
		return 0
	}
	if rem > 1 {
		return 1
	}
	return rem
}

// Status snapshots the engine for JSON serving; safe for concurrent readers.
// Nil engines report an empty status.
func (e *Engine) Status() Status {
	if e == nil {
		return Status{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{EvaluatedWindows: e.evaluated}
	for _, o := range e.objectives {
		os := ObjectiveStatus{
			Name:            o.decl.Name,
			Kind:            o.decl.Kind,
			Target:          o.decl.Target,
			BadTotal:        o.badTotal,
			EventTotal:      o.eventTotal,
			BudgetRemaining: budgetRemaining(o.badTotal, o.eventTotal, 1-o.decl.Target),
		}
		for _, a := range o.alerts {
			os.Alerts = append(os.Alerts, AlertState{
				Severity:    a.rule.Severity,
				BurnRate:    a.rule.BurnRate,
				LongNs:      int64(a.rule.Long),
				ShortNs:     int64(a.rule.Short),
				Firing:      a.firing,
				LongBurn:    a.longBurn,
				ShortBurn:   a.shortBurn,
				SinceNs:     a.sinceNs,
				Transitions: a.transitions,
			})
		}
		st.Objectives = append(st.Objectives, os)
	}
	return st
}

// Firing reports whether any rule at the given severity is currently firing
// (any severity when sev is empty).
func (e *Engine) Firing(sev Severity) bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objectives {
		for _, a := range o.alerts {
			if a.firing && (sev == "" || a.rule.Severity == sev) {
				return true
			}
		}
	}
	return false
}

package slo

import (
	"strings"
	"testing"
	"time"

	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/obs/tsdb"
)

// harness wires a tsdb DB (1s windows), telemetry, and one availability
// objective with a single page rule: 10x burn over a 4s long / 1s short pair.
type harness struct {
	tele  *obs.Telemetry
	db    *tsdb.DB
	eng   *Engine
	good  *obs.Counter
	bad   *obs.Counter
	total *obs.Counter
	now   int64
}

func newHarness(t *testing.T, objs []Objective) *harness {
	t.Helper()
	h := &harness{tele: obs.New(obs.Config{})}
	h.db = tsdb.New(tsdb.Config{Interval: time.Second})
	h.total = h.tele.Counter("total")
	h.bad = h.tele.Counter("bad")
	h.db.TrackCounter("total", h.total)
	h.db.TrackCounter("bad", h.bad)
	if objs == nil {
		objs = []Objective{{
			Name: "availability", Kind: Availability, Target: 0.99,
			BadSeries: []string{"bad"}, TotalSeries: "total",
			Rules: []Rule{{Severity: Page, BurnRate: 10, Long: 4 * time.Second, Short: time.Second}},
		}}
	}
	h.eng = New(Config{DB: h.db, Objectives: objs, Telemetry: h.tele})
	if h.eng == nil {
		t.Fatal("engine must construct")
	}
	h.db.Advance(0) // no-op; windows close via step
	return h
}

// step records one second of traffic (good + bad requests) and closes the
// window, evaluating rules.
func (h *harness) step(good, bad int64) {
	h.total.Add(good + bad)
	h.bad.Add(bad)
	h.now += int64(time.Second)
	h.db.Advance(h.now)
	h.eng.Evaluate(h.db.Last())
}

func pageAlert(t *testing.T, st Status) AlertState {
	t.Helper()
	for _, o := range st.Objectives {
		for _, a := range o.Alerts {
			if a.Severity == Page {
				return a
			}
		}
	}
	t.Fatal("no page alert declared")
	return AlertState{}
}

func TestHealthyTrafficStaysSilent(t *testing.T) {
	h := newHarness(t, nil)
	for i := 0; i < 10; i++ {
		h.step(100, 0)
	}
	st := h.eng.Status()
	if a := pageAlert(t, st); a.Firing || a.Transitions != 0 {
		t.Fatalf("healthy traffic fired: %+v", a)
	}
	if st.Objectives[0].BudgetRemaining != 1 {
		t.Fatalf("budget = %v, want full", st.Objectives[0].BudgetRemaining)
	}
	if st.EvaluatedWindows != 10 {
		t.Fatalf("evaluated = %d", st.EvaluatedWindows)
	}
}

func TestBurnFiresAndClears(t *testing.T) {
	h := newHarness(t, nil)
	h.step(100, 0)
	h.step(100, 0)
	// 50% bad against a 1% budget = 50x burn, over both windows.
	h.step(50, 50)
	st := h.eng.Status()
	a := pageAlert(t, st)
	if !a.Firing {
		t.Fatalf("burn must fire within one evaluation window: %+v", a)
	}
	if a.LongBurn < 10 || a.ShortBurn < 10 {
		t.Fatalf("burns = %v/%v, want >= 10", a.LongBurn, a.ShortBurn)
	}
	// Recovery: the short window goes clean immediately; the alert clears as
	// soon as either window drops under the threshold.
	h.step(100, 0)
	for i := 0; pageAlert(t, h.eng.Status()).Firing && i < 10; i++ {
		h.step(100, 0)
	}
	a = pageAlert(t, h.eng.Status())
	if a.Firing {
		t.Fatalf("alert must clear after recovery: %+v", a)
	}
	if a.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2 (fire + clear)", a.Transitions)
	}
}

func TestShortWindowGatesFiring(t *testing.T) {
	h := newHarness(t, nil)
	// A burst followed by recovery: the long window still burns but the short
	// window is clean, so no alert — the multiwindow property.
	h.step(50, 50)
	h.step(100, 0)
	a := pageAlert(t, h.eng.Status())
	if a.Firing {
		t.Fatalf("clean short window must gate firing: %+v", a)
	}
	if a.LongBurn < 10 {
		t.Fatalf("long window should still burn: %+v", a)
	}
}

func TestBudgetAccounting(t *testing.T) {
	h := newHarness(t, nil)
	// 1% budget; 2 bad of 400 total = 0.5% bad = half the budget gone.
	h.step(199, 1)
	h.step(199, 1)
	st := h.eng.Status()
	o := st.Objectives[0]
	if o.BadTotal != 2 || o.EventTotal != 400 {
		t.Fatalf("totals = %d/%d", o.BadTotal, o.EventTotal)
	}
	if o.BudgetRemaining < 0.49 || o.BudgetRemaining > 0.51 {
		t.Fatalf("budget remaining = %v, want ~0.5", o.BudgetRemaining)
	}
	// Exhaust it: budget clamps at 0.
	h.step(0, 100)
	if got := h.eng.Status().Objectives[0].BudgetRemaining; got != 0 {
		t.Fatalf("exhausted budget = %v, want 0", got)
	}
}

func TestLatencyObjective(t *testing.T) {
	tele := obs.New(obs.Config{})
	db := tsdb.New(tsdb.Config{Interval: time.Second})
	lat := tele.Histogram("lat")
	db.TrackHistogram("lat", lat)
	eng := New(Config{DB: db, Telemetry: tele, Objectives: []Objective{{
		Name: "p99-latency", Kind: Latency, Target: 0.9,
		LatencySeries: "lat", LatencyThreshold: time.Millisecond,
		Rules: []Rule{{Severity: Page, BurnRate: 5, Long: 2 * time.Second, Short: time.Second}},
	}}})
	now := int64(0)
	step := func(fast, slow int) {
		for i := 0; i < fast; i++ {
			lat.Record(int64(10 * time.Microsecond))
		}
		for i := 0; i < slow; i++ {
			lat.Record(int64(10 * time.Millisecond))
		}
		now += int64(time.Second)
		db.Advance(now)
		eng.Evaluate(db.Last())
	}
	step(100, 0)
	if eng.Firing("") {
		t.Fatal("fast traffic must not fire")
	}
	// All slow: bad fraction 1.0 against a 0.1 budget = 10x burn.
	step(0, 100)
	if !eng.Firing(Page) {
		t.Fatalf("slow traffic must fire the latency page: %+v", eng.Status())
	}
	st := eng.Status().Objectives[0]
	if st.BadTotal != 100 || st.EventTotal != 200 {
		t.Fatalf("latency totals = %d/%d", st.BadTotal, st.EventTotal)
	}
}

func TestTransitionsEmitSpansAndGauges(t *testing.T) {
	h := newHarness(t, nil)
	h.step(50, 50)
	h.step(100, 0)
	h.step(100, 0)
	h.step(100, 0)
	h.step(100, 0) // long window clean again → cleared
	var fired, cleared bool
	for _, s := range h.tele.Tracer().Spans() {
		switch s.Name {
		case "slo-page-fire":
			fired = true
		case "slo-page-clear":
			cleared = true
		}
	}
	if !fired || !cleared {
		t.Fatalf("transition spans missing: fired=%v cleared=%v", fired, cleared)
	}
	snap := h.tele.Snapshot()
	var sawBurn, sawFiring, sawTrans bool
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "slo_burn_rate_milli{") {
			sawBurn = true
		}
		if strings.HasPrefix(g.Name, "slo_alert_firing{") && g.Value == 0 {
			sawFiring = true
		}
	}
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "slo_alert_transitions_total{") && c.Value == 2 {
			sawTrans = true
		}
	}
	if !sawBurn || !sawFiring || !sawTrans {
		t.Fatalf("gauges/counters missing: burn=%v firing=%v trans=%v\n%+v",
			sawBurn, sawFiring, sawTrans, snap)
	}
}

func TestDefaultRulesShape(t *testing.T) {
	rules := DefaultRules(time.Hour)
	if len(rules) != 2 {
		t.Fatalf("rules = %+v", rules)
	}
	if rules[0].Severity != Page || rules[0].BurnRate != 14.4 ||
		rules[0].Long != time.Hour || rules[0].Short != 5*time.Minute {
		t.Fatalf("page rule = %+v", rules[0])
	}
	if rules[1].Severity != Ticket || rules[1].BurnRate != 6 ||
		rules[1].Long != 6*time.Hour || rules[1].Short != 30*time.Minute {
		t.Fatalf("ticket rule = %+v", rules[1])
	}
}

func TestDisabledEngine(t *testing.T) {
	var e *Engine
	e.Evaluate(nil)
	if e.Firing("") || len(e.Status().Objectives) != 0 {
		t.Fatal("nil engine must be inert")
	}
	if New(Config{}) != nil {
		t.Fatal("missing DB must disable")
	}
	if New(Config{DB: tsdb.New(tsdb.Config{Interval: time.Second}),
		Objectives: []Objective{{Name: "x", Target: 1.5}}}) != nil {
		t.Fatal("invalid targets must disable")
	}
}

package obs

import (
	"testing"
	"time"
)

func tailTracer(cfg TailConfig) *Tracer {
	tr := NewTracer(64, func() int64 { return 0 })
	tr.SetTailSampling(&cfg)
	return tr
}

func TestTailSamplingKeepsErrorsDropsHealthy(t *testing.T) {
	tr := tailTracer(TailConfig{LatencyThreshold: time.Millisecond})
	for tid := int64(1); tid <= 3; tid++ {
		tr.Span("queue-wait", "serve", tid, 0, 10)
		tr.Span("invoke", "serve", tid, 10, 20)
	}
	if got := tr.Recorded(); got != 0 {
		t.Fatalf("undecided spans must not hit the ring, recorded = %d", got)
	}
	if !tr.FinishTrack(1, TrackOutcome{Err: true}) {
		t.Fatal("errored track must be kept")
	}
	if tr.FinishTrack(2, TrackOutcome{LatencyNs: int64(time.Microsecond)}) {
		t.Fatal("fast healthy track must be dropped")
	}
	if !tr.FinishTrack(3, TrackOutcome{LatencyNs: int64(2 * time.Millisecond)}) {
		t.Fatal("latency outlier must be kept")
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring has %d spans, want 4 (tracks 1 and 3)", len(spans))
	}
	for _, s := range spans {
		if s.TID != 1 && s.TID != 3 {
			t.Fatalf("dropped track leaked span %+v", s)
		}
	}
	st := tr.TailStats()
	if st.KeptTracks != 2 || st.SampledOutTracks != 1 || st.PendingSpans != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTailSamplingBreakerKeeps(t *testing.T) {
	tr := tailTracer(TailConfig{})
	tr.Span("invoke", "serve", 5, 0, 1)
	if !tr.FinishTrack(5, TrackOutcome{BreakerTripped: true}) {
		t.Fatal("breaker-involved track must be kept")
	}
	if len(tr.Spans()) != 1 {
		t.Fatal("kept track's spans must commit")
	}
}

func TestTailSamplingTIDZeroBypasses(t *testing.T) {
	tr := tailTracer(TailConfig{})
	tr.Span("breaker-open", "breaker", 0, 0, 1)
	if got := tr.Recorded(); got != 1 {
		t.Fatalf("tid-0 spans must commit immediately, recorded = %d", got)
	}
	if st := tr.TailStats(); st.PendingSpans != 0 {
		t.Fatalf("tid-0 span buffered: %+v", st)
	}
}

func TestTailSamplingMemoryBound(t *testing.T) {
	// 3-span bound with 2-span tracks: opening a second track must evict the
	// first whole track, never exceed the bound.
	tr := tailTracer(TailConfig{MaxBufferedSpans: 3, MaxTrackSpans: 8})
	tr.Span("a", "c", 1, 0, 1)
	tr.Span("b", "c", 1, 1, 2)
	tr.Span("a", "c", 2, 2, 3)
	tr.Span("b", "c", 2, 3, 4) // 4 > 3: evict track 1
	st := tr.TailStats()
	if st.PendingSpans != 2 || st.EvictedTracks != 1 || st.PendingPeak > 4 {
		t.Fatalf("stats = %+v", st)
	}
	// Evicted track settles as unknown: FinishTrack reports the keep decision
	// but commits nothing.
	if !tr.FinishTrack(1, TrackOutcome{Err: true}) {
		t.Fatal("keep decision still reported for evicted track")
	}
	if got := tr.Recorded(); got != 0 {
		t.Fatalf("evicted track must have no spans to commit, recorded = %d", got)
	}
	// The surviving track is intact.
	if !tr.FinishTrack(2, TrackOutcome{Err: true}) || len(tr.Spans()) != 2 {
		t.Fatalf("surviving track lost spans: %d", len(tr.Spans()))
	}
}

func TestTailSamplingSingleTrackTruncates(t *testing.T) {
	// When the only pending track hits the whole-buffer bound, its newest
	// spans are dropped instead of evicting the track itself.
	tr := tailTracer(TailConfig{MaxBufferedSpans: 2, MaxTrackSpans: 8})
	for i := int64(0); i < 5; i++ {
		tr.Span("s", "c", 7, i, i+1)
	}
	st := tr.TailStats()
	if st.PendingSpans != 2 || st.TruncatedSpans != 3 || st.EvictedTracks != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !tr.FinishTrack(7, TrackOutcome{Err: true}) || len(tr.Spans()) != 2 {
		t.Fatalf("truncated track must keep its oldest spans: %d", len(tr.Spans()))
	}
}

func TestTailSamplingPerTrackCap(t *testing.T) {
	tr := tailTracer(TailConfig{MaxTrackSpans: 2})
	for i := int64(0); i < 4; i++ {
		tr.Span("s", "c", 1, i, i+1)
	}
	st := tr.TailStats()
	if st.PendingSpans != 2 || st.TruncatedSpans != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTailSamplingDisableFlushes(t *testing.T) {
	tr := tailTracer(TailConfig{})
	tr.Span("a", "c", 1, 0, 1)
	tr.Span("b", "c", 2, 1, 2)
	tr.SetTailSampling(nil)
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("disable must flush pending spans to the ring, got %d", got)
	}
	// With sampling off every span commits and FinishTrack reports kept.
	tr.Span("c", "c", 3, 2, 3)
	if tr.Recorded() != 3 || !tr.FinishTrack(3, TrackOutcome{}) {
		t.Fatal("disabled tracer must commit directly")
	}
}

func TestTailSamplingUnknownTrack(t *testing.T) {
	tr := tailTracer(TailConfig{})
	// A request refused at admission emits no spans; settling it is a no-op
	// that still reports the keep decision.
	if tr.FinishTrack(99, TrackOutcome{}) {
		t.Fatal("healthy unknown track must report dropped")
	}
	if !tr.FinishTrack(99, TrackOutcome{Err: true}) {
		t.Fatal("errored unknown track must report kept")
	}
	if tr.Recorded() != 0 {
		t.Fatal("unknown tracks must not commit spans")
	}
}

func TestTailSamplingDefaults(t *testing.T) {
	tr := tailTracer(TailConfig{})
	tr.mu.Lock()
	cfg := tr.tail
	tr.mu.Unlock()
	if cfg.MaxBufferedSpans != DefaultTailBufferedSpans || cfg.MaxTrackSpans != DefaultTailTrackSpans {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

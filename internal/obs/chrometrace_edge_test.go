package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int64   `json:"pid"`
		TID  int64   `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func decodeChrome(t *testing.T, spans []Span) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// TestChromeTraceNestedSpans checks that fully-nested intervals on one track
// export with containment preserved in microseconds — the property the trace
// viewer's flame layout depends on.
func TestChromeTraceNestedSpans(t *testing.T) {
	tr := NewTracer(8, func() int64 { return 0 })
	tr.Span("request", "serve", 3, 1000, 9000)
	tr.Span("queue-wait", "serve", 3, 1000, 3000)
	tr.Span("invoke", "serve", 3, 3000, 8500)
	doc := decodeChrome(t, tr.Spans())
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	outer := doc.TraceEvents[0]
	for _, inner := range doc.TraceEvents[1:] {
		if inner.TID != outer.TID {
			t.Fatalf("nested span moved track: %+v vs %+v", inner, outer)
		}
		if inner.TS < outer.TS || inner.TS+inner.Dur > outer.TS+outer.Dur {
			t.Fatalf("nesting broken after µs conversion: %+v not inside %+v", inner, outer)
		}
	}
}

// TestChromeTraceUnfinishedSpan: an interval still open when exported (end
// clamped to start by the emitter) must render as a zero-duration complete
// event, not be dropped or given negative duration.
func TestChromeTraceUnfinishedSpan(t *testing.T) {
	tr := NewTracer(8, func() int64 { return 0 })
	tr.Span("stuck-invoke", "serve", 4, 5000, 4000) // end < start clamps
	doc := decodeChrome(t, tr.Spans())
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("events = %d, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Dur != 0 || ev.TS != 5 || ev.Ph != "X" {
		t.Fatalf("unfinished span = %+v, want dur 0 at ts 5", ev)
	}
}

// TestChromeTraceRingWrapTruncation: when the ring wraps, the export contains
// exactly the retained suffix, oldest-first, with no partial or duplicated
// events.
func TestChromeTraceRingWrapTruncation(t *testing.T) {
	tr := NewTracer(4, func() int64 { return 0 })
	for i := int64(1); i <= 10; i++ {
		tr.Span("s", "c", i, i*100, i*100+50)
	}
	doc := decodeChrome(t, tr.Spans())
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want ring capacity 4", len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		wantTID := int64(7 + i) // spans 7..10 survive the wrap
		if ev.TID != wantTID || ev.TS != float64(wantTID*100)/1e3 {
			t.Fatalf("event %d = %+v, want tid %d", i, ev, wantTID)
		}
	}
}

// TestChromeTraceTIDCorrelationAfterTailDrop: after the tail sampler drops a
// healthy track, the export must contain every span of the kept track on its
// own TID and zero spans from the dropped TID — no cross-track bleed.
func TestChromeTraceTIDCorrelationAfterTailDrop(t *testing.T) {
	tr := NewTracer(16, func() int64 { return 0 })
	tr.SetTailSampling(&TailConfig{})
	for _, tid := range []int64{11, 12} {
		tr.Span("queue-wait", "serve", tid, 0, 10)
		tr.Span("invoke", "serve", tid, 10, 40)
	}
	tr.Span("breaker-open", "breaker", 0, 15, 15) // tid-0 commits immediately
	tr.FinishTrack(11, TrackOutcome{Err: true})
	tr.FinishTrack(12, TrackOutcome{})
	doc := decodeChrome(t, tr.Spans())
	perTID := map[int64]int{}
	for _, ev := range doc.TraceEvents {
		perTID[ev.TID]++
	}
	if perTID[11] != 2 || perTID[12] != 0 || perTID[0] != 1 {
		t.Fatalf("per-TID events = %v, want 2 on tid 11, 0 on tid 12, 1 on tid 0", perTID)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
}

// TestChromeTraceEmpty: an empty span set still yields a valid document with
// an empty (non-null) event array.
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents":[]`)) {
		t.Fatalf("empty trace = %s", buf.String())
	}
}

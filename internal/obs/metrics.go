package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic counter. All methods are safe on a nil receiver
// (no-ops returning zero), so components can resolve handles once from a
// possibly-nil Telemetry and call them unconditionally on hot paths with
// zero allocations and a single predictable branch when disabled.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: log-linear, HDR-style. Values below 2^histSubBits
// get exact unit-width buckets; above that, each power-of-two octave is split
// into 2^histSubBits linear sub-buckets, bounding the relative quantile error
// to one part in 2^histSubBits (12.5% with 3 sub-bits) — one bucket width.
const (
	histSubBits = 3
	histBase    = 1 << histSubBits
	// histBuckets covers every non-negative int64: the maximum index is
	// histBase + (62-histSubBits)*histBase + (histBase-1) = 487.
	histBuckets = 488
)

// bucketIdx maps a non-negative value to its bucket index.
func bucketIdx(v uint64) int {
	if v < histBase {
		return int(v)
	}
	shift := uint(bits.Len64(v) - 1 - histSubBits)
	return histBase + int(shift)<<histSubBits + int((v>>shift)&(histBase-1))
}

// bucketBounds returns the inclusive [lo, hi] value range of a bucket index.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histBase {
		return int64(idx), int64(idx)
	}
	rel := idx - histBase
	shift := uint(rel >> histSubBits)
	pos := int64(rel & (histBase - 1))
	lo = (histBase + pos) << shift
	return lo, lo + int64(1)<<shift - 1
}

// Histogram records int64 samples (typically nanoseconds, bytes, or pages)
// into fixed log-linear buckets. Record is lock-free and allocation-free:
// one atomic add per bucket plus count/sum/min/max maintenance, ~ns cost.
// Negative samples clamp to zero. Histograms with identical layout (all of
// them — the layout is fixed) merge by bucket-wise addition.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // MaxInt64 until the first Record
	max    atomic.Int64 // MinInt64 until the first Record
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIdx(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Merge adds o's buckets into h (o may be nil). Both histograms share the
// fixed layout, so the merge is exact: quantile estimates over the merged
// histogram carry the same one-bucket error bound as over the parts.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if v := o.min.Load(); v != math.MaxInt64 {
		for {
			cur := h.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	if v := o.max.Load(); v != math.MinInt64 {
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) as the midpoint of the
// bucket holding the sample of that rank, clamped to the recorded min/max.
// The estimate is within one bucket width of the exact order statistic.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			lo, hi := bucketBounds(i)
			mid := lo + (hi-lo)/2
			if mn := h.min.Load(); mid < mn {
				mid = mn
			}
			if mx := h.max.Load(); mid > mx {
				mid = mx
			}
			return mid
		}
	}
	return h.max.Load()
}

// BucketWidth returns the width of the bucket that would hold v: the
// resolution (and hence the quantile error bound) at that magnitude.
func BucketWidth(v int64) int64 {
	if v < 0 {
		v = 0
	}
	lo, hi := bucketBounds(bucketIdx(uint64(v)))
	return hi - lo + 1
}

// NumBuckets is the fixed bucket count shared by every Histogram. Windowed
// consumers (the tsdb sampler) size their per-window copies with it.
func NumBuckets() int { return histBuckets }

// BucketRange returns the inclusive [lo, hi] value range of bucket idx in the
// shared layout.
func BucketRange(idx int) (lo, hi int64) { return bucketBounds(idx) }

// ReadBuckets copies the raw (non-cumulative) bucket counts into dst, which
// must have at least NumBuckets elements, and returns the total count and
// sum. All reads are atomic loads — no lock, no allocation — so the tsdb
// sample path can snapshot a live histogram while writers keep recording.
// Nil-safe: a nil histogram zeroes dst and returns (0, 0).
func (h *Histogram) ReadBuckets(dst []int64) (count, sum int64) {
	if h == nil {
		for i := range dst[:histBuckets] {
			dst[i] = 0
		}
		return 0, 0
	}
	for i := 0; i < histBuckets; i++ {
		dst[i] = h.counts[i].Load()
	}
	return h.count.Load(), h.sum.Load()
}

// QuantileOf estimates the q-quantile of a sample set described by raw
// bucket counts in the shared layout (typically a window delta of two
// ReadBuckets snapshots). The estimate is the midpoint of the bucket holding
// the sample of that rank — within one bucket width of the exact order
// statistic, without the live histogram's min/max clamp (window deltas have
// no subtractable min/max).
func QuantileOf(buckets []int64, q float64) int64 {
	var total int64
	for _, n := range buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, n := range buckets {
		cum += n
		if cum >= rank {
			lo, hi := bucketBounds(i)
			return lo + (hi-lo)/2
		}
	}
	return 0
}

// NamedValue is one counter or gauge in a snapshot.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Bucket is one non-empty histogram bucket in a snapshot (non-cumulative).
type Bucket struct {
	// UpperBound is the inclusive upper value bound of the bucket.
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time dump of a registry, sorted by metric name.
// It marshals to JSON as the `telemetry` block of bench result files.
type Snapshot struct {
	Counters   []NamedValue        `json:"counters"`
	Gauges     []NamedValue        `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Registry holds named metrics. Lookup methods get-or-create under a mutex;
// hot paths resolve handles once and then touch only atomics. A nil registry
// returns nil handles, which in turn no-op — the disabled fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot dumps every metric, sorted by name. Values are read with the
// registration mutex held, but individual metrics keep being written
// concurrently; each value is an atomic read, so the snapshot is per-metric
// consistent (the usual scrape semantics).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Counters: []NamedValue{}, Gauges: []NamedValue{}, Histograms: []HistogramSnapshot{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make([]NamedValue, 0, len(r.counters)),
		Gauges:     make([]NamedValue, 0, len(r.gauges)),
		Histograms: make([]HistogramSnapshot, 0, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
		}
		if hs.Count > 0 {
			hs.Min = h.min.Load()
			hs.Max = h.max.Load()
		}
		for i := range h.counts {
			if n := h.counts[i].Load(); n > 0 {
				_, hi := bucketBounds(i)
				hs.Buckets = append(hs.Buckets, Bucket{UpperBound: hi, Count: n})
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

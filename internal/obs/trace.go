package obs

import (
	"sync"
	"time"
)

// Attr is one span attribute. Val carries numeric attributes; a non-empty
// Str takes precedence and carries string attributes.
type Attr struct {
	Key string
	Val int64
	Str string
}

// I64 builds a numeric attribute.
func I64(key string, v int64) Attr { return Attr{Key: key, Val: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v} }

// Span is one completed interval on the request lifecycle: queue wait, pool
// acquire, engine instantiate, guest invoke, CoW reset, cache compile.
// Start/Dur are in the tracer clock's nanoseconds (simulated time when the
// tracer is wired to the DES engine, wall time otherwise).
type Span struct {
	Name  string
	Cat   string
	PID   int64
	TID   int64
	Start int64
	Dur   int64
	Attrs []Attr
}

// TailConfig shapes tail-based sampling: spans on a request track (TID != 0)
// are buffered until the request's outcome is known, and only interesting
// tracks — errors, breaker trips, latency outliers — are committed to the
// ring. Healthy traffic stops wrapping the ring, so under sustained load
// /v1/trace keeps showing the requests worth looking at.
type TailConfig struct {
	// LatencyThreshold keeps tracks whose reported latency exceeds it; 0
	// keeps only errored or breaker-tripped tracks.
	LatencyThreshold time.Duration
	// MaxBufferedSpans is the hard memory bound on undecided spans across
	// all pending tracks; 0 means DefaultTailBufferedSpans. When a new span
	// would exceed it, the oldest pending track is evicted (its spans are
	// lost and counted in TailStats.EvictedTracks).
	MaxBufferedSpans int
	// MaxTrackSpans bounds one track's buffered spans; 0 means
	// DefaultTailTrackSpans. Extra spans are dropped and counted in
	// TailStats.TruncatedSpans.
	MaxTrackSpans int
}

// Tail sampler defaults: generous for a per-request span count of ~4-6 while
// keeping the undecided buffer a fixed, small multiple of the in-flight set.
const (
	DefaultTailBufferedSpans = 4096
	DefaultTailTrackSpans    = 64
)

// TrackOutcome carries the request facts the tail sampler decides on.
type TrackOutcome struct {
	// Err marks a request whose final outcome was an error.
	Err bool
	// BreakerTripped marks a request that ran while the circuit breaker was
	// not closed (its failure opened it, or it was the half-open probe).
	BreakerTripped bool
	// LatencyNs is the request's end-to-end simulated latency.
	LatencyNs int64
}

// TailStats counts tail-sampler activity.
type TailStats struct {
	// KeptTracks is the number of finished tracks committed to the ring.
	KeptTracks int64
	// SampledOutTracks is the number of healthy tracks dropped at finish.
	SampledOutTracks int64
	// EvictedTracks is the number of pending tracks evicted to keep the
	// undecided buffer under MaxBufferedSpans.
	EvictedTracks int64
	// TruncatedSpans is the number of spans dropped by MaxTrackSpans.
	TruncatedSpans int64
	// PendingSpans is the current undecided span count (≤ MaxBufferedSpans).
	PendingSpans int
	// PendingPeak is the high-water mark of PendingSpans.
	PendingPeak int
}

// pendingTrack is one undecided request's buffered spans.
type pendingTrack struct {
	tid   int64
	spans []Span
}

// Tracer records spans into a fixed-capacity ring buffer: tracing a long
// load run costs bounded memory, and the newest spans win. The zero-cost
// disabled path is a nil *Tracer — callers emitting spans must guard with
// `if tr != nil` at the call site (the variadic attribute list would
// otherwise allocate even for a no-op call).
type Tracer struct {
	mu    sync.Mutex
	clock func() int64
	pid   int64
	ring  []Span
	next  int
	total int64

	// Tail sampling state (nil tail = every span commits immediately).
	tail      *TailConfig
	pending   map[int64]*pendingTrack
	order     []int64 // track ids in first-span order, for bounded eviction
	pendingN  int
	tailStats TailStats
}

// DefaultTraceCapacity bounds the span ring when no capacity is given:
// enough for every request phase of a multi-second load run.
const DefaultTraceCapacity = 1 << 16

// NewTracer creates a tracer holding the last `capacity` spans. clock
// returns the current time in nanoseconds; nil uses the wall clock.
func NewTracer(capacity int, clock func() int64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if clock == nil {
		start := time.Now()
		clock = func() int64 { return int64(time.Since(start)) }
	}
	return &Tracer{clock: clock, ring: make([]Span, capacity)}
}

// Now reads the tracer clock (0 on a nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock()
}

// SetClock swaps the time source. The serving harness points it at the DES
// engine so span timestamps land on the simulated timeline the latency
// figures use.
func (t *Tracer) SetClock(clock func() int64) {
	if t == nil || clock == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = clock
}

// SetPID stamps subsequent spans with a logical process id (the Chrome trace
// viewer groups tracks by pid; the bench harness uses one pid per run).
func (t *Tracer) SetPID(pid int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pid = pid
}

// Span records one completed interval [start, end] with optional attributes.
// end < start is clamped to a zero-duration span. With tail sampling enabled,
// spans on a request track (tid != 0) are buffered until FinishTrack decides
// the track's fate; tid-0 spans (breaker transitions, engine and pool
// lifecycle) always commit immediately.
func (t *Tracer) Span(name, cat string, tid, start, end int64, attrs ...Attr) {
	if t == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	s := Span{
		Name: name, Cat: cat, TID: tid,
		Start: start, Dur: dur, Attrs: attrs,
	}
	t.mu.Lock()
	s.PID = t.pid
	if t.tail != nil && tid != 0 {
		t.bufferLocked(s)
	} else {
		t.commitLocked(s)
	}
	t.mu.Unlock()
}

// commitLocked writes one decided span into the ring.
func (t *Tracer) commitLocked(s Span) {
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	t.total++
}

// bufferLocked parks one request span in its pending track, enforcing the
// per-track and whole-buffer bounds.
func (t *Tracer) bufferLocked(s Span) {
	tr, ok := t.pending[s.TID]
	if !ok {
		tr = &pendingTrack{tid: s.TID}
		t.pending[s.TID] = tr
		t.order = append(t.order, s.TID)
	}
	if len(tr.spans) >= t.tail.MaxTrackSpans {
		t.tailStats.TruncatedSpans++
		return
	}
	tr.spans = append(tr.spans, s)
	t.pendingN++
	if t.pendingN > t.tailStats.PendingPeak {
		t.tailStats.PendingPeak = t.pendingN
	}
	// Hard memory bound: evict whole oldest tracks (never the one we just
	// appended to — its outcome may still prove interesting) until the
	// undecided buffer fits again.
	for t.pendingN > t.tail.MaxBufferedSpans {
		if !t.evictOldestLocked(s.TID) {
			// Only the current track remains; drop its newest span instead.
			tr.spans = tr.spans[:len(tr.spans)-1]
			t.pendingN--
			t.tailStats.TruncatedSpans++
			return
		}
	}
}

// evictOldestLocked drops the oldest pending track other than keepTID.
// Reports false when no such track exists.
func (t *Tracer) evictOldestLocked(keepTID int64) bool {
	for i, tid := range t.order {
		tr, ok := t.pending[tid]
		if !ok || tid == keepTID { // finished already, or protected
			continue
		}
		t.order = append(t.order[:i], t.order[i+1:]...)
		delete(t.pending, tid)
		t.pendingN -= len(tr.spans)
		t.tailStats.EvictedTracks++
		return true
	}
	return false
}

// SetTailSampling turns tail-based sampling on (non-nil cfg) or off (nil).
// Turning it off flushes every pending track to the ring — nothing buffered
// is lost. Safe to call at any time; typically set once at startup.
func (t *Tracer) SetTailSampling(cfg *TailConfig) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cfg == nil {
		for _, tid := range t.order {
			if tr, ok := t.pending[tid]; ok {
				for _, s := range tr.spans {
					t.commitLocked(s)
				}
			}
		}
		t.tail, t.pending, t.order, t.pendingN = nil, nil, nil, 0
		return
	}
	c := *cfg
	if c.MaxBufferedSpans <= 0 {
		c.MaxBufferedSpans = DefaultTailBufferedSpans
	}
	if c.MaxTrackSpans <= 0 {
		c.MaxTrackSpans = DefaultTailTrackSpans
	}
	t.tail = &c
	if t.pending == nil {
		t.pending = map[int64]*pendingTrack{}
	}
}

// FinishTrack settles one request track: interesting outcomes (error,
// breaker involvement, latency past the threshold) commit the buffered spans
// to the ring, healthy ones drop them. Reports whether the track was kept.
// With tail sampling disabled it reports true — every span already
// committed. Unknown tracks (no spans buffered, e.g. a request refused at
// admission) settle without effect.
func (t *Tracer) FinishTrack(tid int64, o TrackOutcome) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tail == nil {
		return true
	}
	keep := o.Err || o.BreakerTripped ||
		(t.tail.LatencyThreshold > 0 && o.LatencyNs > int64(t.tail.LatencyThreshold))
	tr, ok := t.pending[tid]
	if !ok {
		return keep
	}
	delete(t.pending, tid)
	t.pendingN -= len(tr.spans)
	for i, id := range t.order {
		if id == tid {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	if keep {
		t.tailStats.KeptTracks++
		for _, s := range tr.spans {
			t.commitLocked(s)
		}
	} else {
		t.tailStats.SampledOutTracks++
	}
	return keep
}

// TailStats snapshots the tail sampler's counters. Zero when tail sampling
// was never enabled.
func (t *Tracer) TailStats() TailStats {
	if t == nil {
		return TailStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.tailStats
	st.PendingSpans = t.pendingN
	return st
}

// Spans returns the retained spans oldest-first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > int64(len(t.ring)) {
		n = int64(len(t.ring))
	}
	out := make([]Span, 0, n)
	start := 0
	if t.total > int64(len(t.ring)) {
		start = t.next // ring has wrapped; oldest retained span is at next
	}
	for i := int64(0); i < n; i++ {
		out = append(out, t.ring[(start+int(i))%len(t.ring)])
	}
	return out
}

// Recorded returns how many spans were ever recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many spans the ring overwrote.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= int64(len(t.ring)) {
		return 0
	}
	return t.total - int64(len(t.ring))
}

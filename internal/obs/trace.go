package obs

import (
	"sync"
	"time"
)

// Attr is one span attribute. Val carries numeric attributes; a non-empty
// Str takes precedence and carries string attributes.
type Attr struct {
	Key string
	Val int64
	Str string
}

// I64 builds a numeric attribute.
func I64(key string, v int64) Attr { return Attr{Key: key, Val: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v} }

// Span is one completed interval on the request lifecycle: queue wait, pool
// acquire, engine instantiate, guest invoke, CoW reset, cache compile.
// Start/Dur are in the tracer clock's nanoseconds (simulated time when the
// tracer is wired to the DES engine, wall time otherwise).
type Span struct {
	Name  string
	Cat   string
	PID   int64
	TID   int64
	Start int64
	Dur   int64
	Attrs []Attr
}

// Tracer records spans into a fixed-capacity ring buffer: tracing a long
// load run costs bounded memory, and the newest spans win. The zero-cost
// disabled path is a nil *Tracer — callers emitting spans must guard with
// `if tr != nil` at the call site (the variadic attribute list would
// otherwise allocate even for a no-op call).
type Tracer struct {
	mu    sync.Mutex
	clock func() int64
	pid   int64
	ring  []Span
	next  int
	total int64
}

// DefaultTraceCapacity bounds the span ring when no capacity is given:
// enough for every request phase of a multi-second load run.
const DefaultTraceCapacity = 1 << 16

// NewTracer creates a tracer holding the last `capacity` spans. clock
// returns the current time in nanoseconds; nil uses the wall clock.
func NewTracer(capacity int, clock func() int64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if clock == nil {
		start := time.Now()
		clock = func() int64 { return int64(time.Since(start)) }
	}
	return &Tracer{clock: clock, ring: make([]Span, capacity)}
}

// Now reads the tracer clock (0 on a nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock()
}

// SetClock swaps the time source. The serving harness points it at the DES
// engine so span timestamps land on the simulated timeline the latency
// figures use.
func (t *Tracer) SetClock(clock func() int64) {
	if t == nil || clock == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = clock
}

// SetPID stamps subsequent spans with a logical process id (the Chrome trace
// viewer groups tracks by pid; the bench harness uses one pid per run).
func (t *Tracer) SetPID(pid int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pid = pid
}

// Span records one completed interval [start, end] with optional attributes.
// end < start is clamped to a zero-duration span.
func (t *Tracer) Span(name, cat string, tid, start, end int64, attrs ...Attr) {
	if t == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.ring[t.next] = Span{
		Name: name, Cat: cat, PID: t.pid, TID: tid,
		Start: start, Dur: dur, Attrs: attrs,
	}
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained spans oldest-first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > int64(len(t.ring)) {
		n = int64(len(t.ring))
	}
	out := make([]Span, 0, n)
	start := 0
	if t.total > int64(len(t.ring)) {
		start = t.next // ring has wrapped; oldest retained span is at next
	}
	for i := int64(0); i < n; i++ {
		out = append(out, t.ring[(start+int(i))%len(t.ring)])
	}
	return out
}

// Recorded returns how many spans were ever recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many spans the ring overwrote.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= int64(len(t.ring)) {
		return 0
	}
	return t.total - int64(len(t.ring))
}

// Package runtimes implements the non-contribution low-level OCI runtimes
// the paper benchmarks against: runC (Kubernetes' default, no Wasm support)
// and youki (Rust, optional Wasm support). Both share the container
// lifecycle bookkeeping in the oci package and the python handler from the
// core package.
package runtimes

import (
	"fmt"
	"time"

	"wasmcontainers/internal/core"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/oci"
	"wasmcontainers/internal/simos"
)

// RunC is the default Kubernetes low-level runtime. It executes native
// (Python) containers only; Wasm specs are rejected, as real runC would
// simply exec an incompatible binary.
type RunC struct {
	node   *simos.Node
	table  *oci.ContainerTable
	python *core.PythonHandler
	procs  map[string]*simos.Process
}

// RunC cost/footprint model: runC is a large static Go binary with a heavier
// create path than crun (libcontainer, state files), the comparison the
// paper's Section III-B motivates.
const (
	runcCreateCPUWork    = 1100 * time.Millisecond
	runcCreateFixedDelay = 10 * time.Millisecond
	// runcStateBytes is per-container libcontainer state kept outside the
	// pod cgroup (visible to `free` only).
	runcStateBytes = 120 * 1024
)

// NewRunC creates a runC runtime on the node.
func NewRunC(node *simos.Node) *RunC {
	return &RunC{
		node:   node,
		table:  oci.NewContainerTable(),
		python: core.NewPythonHandler(0),
		procs:  make(map[string]*simos.Process),
	}
}

// Name implements oci.Runtime.
func (r *RunC) Name() string { return "runc" }

// Version implements oci.Runtime.
func (r *RunC) Version() string { return "1.1.12" }

// Create implements oci.Runtime.
func (r *RunC) Create(id string, bundle *oci.Bundle) error {
	if err := bundle.Spec.Validate(); err != nil {
		return err
	}
	if bundle.Spec.IsWasm() {
		return fmt.Errorf("runc: %w: wasm containers are not supported", oci.ErrNoHandler)
	}
	_, err := r.table.Add(id, bundle)
	return err
}

// Start implements oci.Runtime.
func (r *RunC) Start(id string) (*oci.StartReport, error) {
	ctr, err := r.table.Get(id)
	if err != nil {
		return nil, err
	}
	if ctr.Status != oci.StatusCreated {
		return nil, fmt.Errorf("%w: %s is %s", oci.ErrBadState, id, ctr.Status)
	}
	cgPath := ctr.Bundle.Spec.Linux.CgroupsPath
	if cgPath == "" {
		cgPath = "/unmanaged/" + id
	}
	report, err := r.python.Start(r.node, r.Name(), id, ctr, cgPath, r.procs)
	if err != nil {
		return nil, err
	}
	// libcontainer state lives in the system slice.
	state, err := r.node.Spawn("runc-state["+id+"]", "/system.slice/runc")
	if err != nil {
		return nil, err
	}
	if err := state.MapPrivate(runcStateBytes); err != nil {
		return nil, err
	}
	r.procs[id+"/state"] = state

	report.Cost.CPUWork += runcCreateCPUWork
	report.Cost.FixedDelay += runcCreateFixedDelay
	ctr.Status = oci.StatusRunning
	ctr.Pid = report.Pid
	ctr.Handler = report.Handler
	return report, nil
}

// State implements oci.Runtime.
func (r *RunC) State(id string) (oci.State, error) {
	ctr, err := r.table.Get(id)
	if err != nil {
		return oci.State{}, err
	}
	return oci.State{
		Version: oci.SpecVersion, ID: id, Status: ctr.Status, Pid: ctr.Pid,
		Bundle: ctr.Bundle.Path, Annotations: ctr.Bundle.Spec.Annotations,
	}, nil
}

// Kill implements oci.Runtime.
func (r *RunC) Kill(id string, signal int) error {
	ctr, err := r.table.Get(id)
	if err != nil {
		return err
	}
	if ctr.Status != oci.StatusRunning {
		return fmt.Errorf("%w: %s is %s", oci.ErrBadState, id, ctr.Status)
	}
	for _, key := range []string{id, id + "/state"} {
		if p, ok := r.procs[key]; ok {
			p.Exit()
			delete(r.procs, key)
		}
	}
	ctr.Status = oci.StatusStopped
	return nil
}

// Delete implements oci.Runtime.
func (r *RunC) Delete(id string) error {
	ctr, err := r.table.Get(id)
	if err != nil {
		return err
	}
	if ctr.Status == oci.StatusRunning {
		return fmt.Errorf("%w: %s is running", oci.ErrBadState, id)
	}
	return r.table.Remove(id)
}

// List implements oci.Runtime.
func (r *RunC) List() []string { return r.table.List() }

// Youki is the Rust low-level runtime; it supports Wasm via the same
// embedded-engine approach as crun but with a heavier create path. The paper
// considered and rejected it as the integration target (Section III-B).
type Youki struct {
	*core.Crun
}

// NewYouki creates a youki runtime embedding the given engine.
func NewYouki(node *simos.Node, prof engine.Profile) *Youki {
	inner := core.New(core.Config{
		Node:             node,
		Engine:           prof,
		CreateCPUWork:    700 * time.Millisecond,
		CreateFixedDelay: 5 * time.Millisecond,
	})
	return &Youki{Crun: inner}
}

// Name implements oci.Runtime.
func (y *Youki) Name() string { return "youki" }

// Version implements oci.Runtime.
func (y *Youki) Version() string { return "0.3.3" }

package runtimes

import (
	"errors"
	"testing"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/oci"
	"wasmcontainers/internal/simos"
	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/workloads"
)

func testNode() *simos.Node {
	return simos.NewNode(simos.NodeConfig{
		Name: "t", RAMBytes: 16 * simos.GiB, Cores: 4,
		BaseSystemBytes: 256 * simos.MiB,
	})
}

func pyBundle(t *testing.T, cgroup string) *oci.Bundle {
	t.Helper()
	rootfs := vfs.New()
	rootfs.MkdirAll("/app")
	if err := rootfs.WriteFile("/app/app.py", []byte(workloads.MinimalServicePy)); err != nil {
		t.Fatal(err)
	}
	spec := &oci.Spec{
		Version: oci.SpecVersion,
		Process: oci.Process{Args: []string{"python3", "/app/app.py"}, Cwd: "/"},
		Root:    oci.Root{Path: "rootfs"},
		Linux:   &oci.Linux{CgroupsPath: cgroup},
	}
	b, err := oci.NewBundle("/b", spec, rootfs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func wasmBundle(t *testing.T, cgroup string) *oci.Bundle {
	t.Helper()
	bin, err := workloads.Binary("minimal-service")
	if err != nil {
		t.Fatal(err)
	}
	rootfs := vfs.New()
	rootfs.WriteFile("/app.wasm", bin)
	spec := &oci.Spec{
		Version:     oci.SpecVersion,
		Process:     oci.Process{Args: []string{"/app.wasm"}, Cwd: "/"},
		Root:        oci.Root{Path: "rootfs"},
		Annotations: map[string]string{oci.WasmVariantAnnotation: "compat"},
		Linux:       &oci.Linux{CgroupsPath: cgroup},
	}
	b, err := oci.NewBundle("/b", spec, rootfs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunCPythonLifecycle(t *testing.T) {
	node := testNode()
	rc := NewRunC(node)
	if rc.Name() != "runc" || rc.Version() == "" {
		t.Fatal("identity")
	}
	b := pyBundle(t, "/pods/p/app")
	if err := rc.Create("c1", b); err != nil {
		t.Fatal(err)
	}
	report, err := rc.Start("c1")
	if err != nil {
		t.Fatal(err)
	}
	if report.Stdout != "service ready\n" {
		t.Fatalf("stdout = %q", report.Stdout)
	}
	if report.Handler != "native:pylite" {
		t.Fatalf("handler = %q", report.Handler)
	}
	// runC is slower to start than crun (the paper's Section III-B point).
	if report.Cost.CPUWork <= runcCreateCPUWork {
		t.Fatalf("cost %v should include runc create work", report.Cost.CPUWork)
	}
	st, _ := rc.State("c1")
	if st.Status != oci.StatusRunning {
		t.Fatalf("status = %s", st.Status)
	}
	// libcontainer state lives in the system slice, not the pod cgroup.
	sysCg, ok := node.Cgroup("/system.slice/runc")
	if !ok || sysCg.MemoryCurrent() != simos.RoundPages(runcStateBytes) {
		t.Fatalf("runc state memory not charged system-side")
	}
	if err := rc.Kill("c1", 9); err != nil {
		t.Fatal(err)
	}
	if sysCg.MemoryCurrent() != 0 {
		t.Fatal("runc state leaked after kill")
	}
	if err := rc.Delete("c1"); err != nil {
		t.Fatal(err)
	}
}

func TestRunCRejectsWasmBundles(t *testing.T) {
	rc := NewRunC(testNode())
	err := rc.Create("w", wasmBundle(t, "/pods/w/app"))
	if !errors.Is(err, oci.ErrNoHandler) {
		t.Fatalf("expected ErrNoHandler, got %v", err)
	}
}

func TestRunCLifecycleErrors(t *testing.T) {
	rc := NewRunC(testNode())
	if _, err := rc.Start("ghost"); !errors.Is(err, oci.ErrNotFound) {
		t.Fatalf("start missing: %v", err)
	}
	if err := rc.Kill("ghost", 9); !errors.Is(err, oci.ErrNotFound) {
		t.Fatalf("kill missing: %v", err)
	}
	b := pyBundle(t, "/pods/x/app")
	rc.Create("x", b)
	if err := rc.Kill("x", 9); !errors.Is(err, oci.ErrBadState) {
		t.Fatalf("kill created: %v", err)
	}
	rc.Start("x")
	if _, err := rc.Start("x"); !errors.Is(err, oci.ErrBadState) {
		t.Fatalf("double start: %v", err)
	}
	if err := rc.Delete("x"); !errors.Is(err, oci.ErrBadState) {
		t.Fatalf("delete running: %v", err)
	}
	if len(rc.List()) != 1 {
		t.Fatal("list")
	}
}

func TestYoukiRunsWasm(t *testing.T) {
	node := testNode()
	y := NewYouki(node, engine.WasmEdge)
	if y.Name() != "youki" {
		t.Fatalf("name = %s", y.Name())
	}
	b := wasmBundle(t, "/pods/y/app")
	if err := y.Create("w", b); err != nil {
		t.Fatal(err)
	}
	report, err := y.Start("w")
	if err != nil {
		t.Fatal(err)
	}
	if report.Stdout != "service ready\n" || report.Handler != "wasm:wasmedge" {
		t.Fatalf("report = %+v", report)
	}
}

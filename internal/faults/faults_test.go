package faults

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"wasmcontainers/internal/des"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if err := in.InstantiateError(); err != nil {
		t.Fatalf("nil injector injected an error: %v", err)
	}
	if _, trap := in.TrapFraction(); trap {
		t.Fatal("nil injector injected a trap")
	}
	if m := in.ColdStartMultiplier(); m != 1 {
		t.Fatalf("nil injector multiplier = %v, want 1", m)
	}
	if n := in.ArmPressure(des.NewEngine(), func() {}); n != 0 {
		t.Fatalf("nil injector armed %d pressure events", n)
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("nil injector stats = %+v", st)
	}
}

func TestZeroRatesNeverInject(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 1000; i++ {
		if err := in.InstantiateError(); err != nil {
			t.Fatal("zero-rate injector failed an instantiate")
		}
		if _, trap := in.TrapFraction(); trap {
			t.Fatal("zero-rate injector trapped an invoke")
		}
		if in.ColdStartMultiplier() != 1 {
			t.Fatal("zero-rate injector slowed a cold start")
		}
	}
	if st := in.Stats(); st.Draws != 0 {
		t.Fatalf("zero-rate injector drew %d times", st.Draws)
	}
}

// TestRatesConverge checks the drawn frequencies land near the configured
// rates — loose bounds; this is a sanity check, not a statistics test.
func TestRatesConverge(t *testing.T) {
	const n = 20000
	in := New(Config{
		Seed:                7,
		InstantiateFailRate: 0.2,
		TrapRate:            0.1,
		SlowColdRate:        0.5,
		SlowColdFactor:      8,
	})
	for i := 0; i < n; i++ {
		in.InstantiateError()
		if frac, trap := in.TrapFraction(); trap && (frac < 0 || frac >= 1) {
			t.Fatalf("trap fraction %v outside [0,1)", frac)
		}
		if m := in.ColdStartMultiplier(); m != 1 && m != 8 {
			t.Fatalf("multiplier = %v, want 1 or 8", m)
		}
	}
	st := in.Stats()
	within := func(got int64, rate float64) bool {
		want := rate * n
		return float64(got) > 0.85*want && float64(got) < 1.15*want
	}
	if !within(st.InstantiateFailures, 0.2) || !within(st.Traps, 0.1) || !within(st.SlowColdStarts, 0.5) {
		t.Fatalf("rates off: %+v", st)
	}
}

// TestDeterministicSequence replays the exact same fault decisions for the
// same seed, and different ones for a different seed.
func TestDeterministicSequence(t *testing.T) {
	run := func(seed int64) ([]bool, Stats) {
		in := New(Config{Seed: seed, InstantiateFailRate: 0.3, TrapRate: 0.3})
		var seq []bool
		for i := 0; i < 500; i++ {
			seq = append(seq, in.InstantiateError() != nil)
			_, trap := in.TrapFraction()
			seq = append(seq, trap)
		}
		return seq, in.Stats()
	}
	a, as := run(11)
	b, bs := run(11)
	if !reflect.DeepEqual(a, b) || as != bs {
		t.Fatal("same seed produced different fault sequences")
	}
	c, _ := run(12)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestInstantiateErrorIsSentinel(t *testing.T) {
	in := New(Config{Seed: 3, InstantiateFailRate: 1})
	if err := in.InstantiateError(); !errors.Is(err, ErrInstantiate) {
		t.Fatalf("err = %v, want ErrInstantiate", err)
	}
}

func TestArmPressureFiresOnDESClock(t *testing.T) {
	eng := des.NewEngine()
	in := New(Config{PressureAt: []time.Duration{time.Second, 3 * time.Second}})
	var fired []des.Time
	if n := in.ArmPressure(eng, func() { fired = append(fired, eng.Now()) }); n != 2 {
		t.Fatalf("armed %d, want 2", n)
	}
	eng.Run()
	want := []des.Time{des.Time(time.Second), des.Time(3 * time.Second)}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	if st := in.Stats(); st.PressureEvents != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestArmNodeDeathFiresOnDESClock(t *testing.T) {
	eng := des.NewEngine()
	in := New(Config{NodeDeathAt: []time.Duration{2 * time.Second}})
	var episodes []int
	if n := in.ArmNodeDeath(eng, func(ep int) { episodes = append(episodes, ep) }); n != 1 {
		t.Fatalf("armed %d, want 1", n)
	}
	eng.Run()
	if !reflect.DeepEqual(episodes, []int{0}) {
		t.Fatalf("episodes = %v, want [0]", episodes)
	}
	if st := in.Stats(); st.NodeDeaths != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Disabled states arm nothing.
	if n := (*Injector)(nil).ArmNodeDeath(eng, func(int) {}); n != 0 {
		t.Fatalf("nil injector armed %d", n)
	}
}

// TestConcurrentDrawsRaceFree hammers one injector from 8 goroutines under
// the race detector. Determinism is a single-goroutine (DES) property; this
// only asserts memory safety and counter conservation.
func TestConcurrentDrawsRaceFree(t *testing.T) {
	const goroutines = 8
	const iters = 2000
	in := New(Config{
		Seed:                99,
		InstantiateFailRate: 0.5,
		TrapRate:            0.5,
		SlowColdRate:        0.5,
		SlowColdFactor:      4,
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				in.InstantiateError()
				in.TrapFraction()
				in.ColdStartMultiplier()
				in.Stats()
			}
		}()
	}
	wg.Wait()
	st := in.Stats()
	if st.InstantiateFailures == 0 || st.Traps == 0 || st.SlowColdStarts == 0 {
		t.Fatalf("no faults drawn under concurrency: %+v", st)
	}
	// One draw per InstantiateError and ColdStartMultiplier, one or two per
	// TrapFraction (the fraction costs a second draw on a trap).
	if want := int64(2*goroutines*iters) + st.Traps + int64(goroutines*iters); st.Draws != want {
		t.Fatalf("draws = %d, want %d", st.Draws, want)
	}
}

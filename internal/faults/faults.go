// Package faults is a deterministic, seeded fault injector for the serving
// stack. It models the failure axes the runtime surveys catalog for real
// Wasm engines — instantiation failures (resource exhaustion, pooling-
// allocator slot pressure), guest traps mid-invoke, anomalously slow cold
// starts (compile-cache misses, page-cache cold paths), and node-level
// memory-pressure episodes — without giving up reproducibility: every
// decision comes from one seeded PRNG consumed in discrete-event order, so
// a fixed seed replays the exact same fault sequence, and pressure episodes
// ride the DES clock like every other simulated event.
//
// The injector plugs into the engine boundary (engine.SetFaultInjector
// consults it in Instantiate, Invoke, and ColdStartCost) and into the node
// boundary (ArmPressure schedules memory-pressure callbacks that the k8s
// layer answers by draining warm-pool idle instances). A nil *Injector is
// the disabled state: every probe method no-ops on a nil receiver, so
// un-instrumented paths pay one nil check and draw nothing.
package faults

import (
	"errors"
	"sync"
	"time"

	"wasmcontainers/internal/des"
)

// Sentinel errors for injected failures; callers distinguish them from real
// engine errors with errors.Is.
var (
	// ErrInstantiate marks an injected instantiation failure.
	ErrInstantiate = errors.New("faults: injected instantiation failure")
	// ErrTrap marks an injected guest trap mid-invoke.
	ErrTrap = errors.New("faults: injected guest trap")
)

// Config shapes one injector. All rates are probabilities in [0, 1].
type Config struct {
	// Seed fixes the PRNG; the same seed over the same call sequence
	// reproduces the same faults. Seed 0 is a valid (fixed) seed.
	Seed int64
	// InstantiateFailRate is the probability one engine.Instantiate fails.
	InstantiateFailRate float64
	// TrapRate is the probability one invoke traps after executing a
	// uniformly-drawn fraction of its instructions.
	TrapRate float64
	// SlowColdRate is the probability one cold start is slowed by
	// SlowColdFactor.
	SlowColdRate float64
	// SlowColdFactor multiplies ColdStartCost on a slow cold start;
	// values <= 1 disable slowdowns regardless of SlowColdRate.
	SlowColdFactor float64
	// PressureAt lists simulated instants of node memory-pressure episodes
	// for ArmPressure.
	PressureAt []time.Duration
	// NodeDeathAt lists simulated instants of whole-node fail-stop episodes
	// for ArmNodeDeath.
	NodeDeathAt []time.Duration
}

// Stats counts injected faults. All counters are monotone.
type Stats struct {
	// InstantiateFailures counts injected Instantiate errors.
	InstantiateFailures int64
	// Traps counts injected invoke traps.
	Traps int64
	// SlowColdStarts counts cold starts that drew a slowdown.
	SlowColdStarts int64
	// PressureEvents counts fired memory-pressure episodes.
	PressureEvents int64
	// NodeDeaths counts fired node-death episodes.
	NodeDeaths int64
	// Draws counts PRNG consultations (a determinism fingerprint: two runs
	// of the same scenario must agree on it exactly).
	Draws int64
}

// Injector draws fault decisions from a seeded PRNG. The DES contract keeps
// all draws on the one goroutine driving the simulation; the mutex exists so
// observer goroutines (progress printers, the -race suite) can read Stats
// mid-run without racing the writer.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *prng
	stats Stats
}

// New creates an injector for cfg. A nil return never happens; pass the nil
// *Injector itself to mean "no faults".
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: newPRNG(uint64(cfg.Seed))}
}

// prng is a splitmix64 generator: tiny, stdlib-free, and stable across Go
// releases — math/rand's stream is not guaranteed between versions, and the
// fault sequence is part of the experiment's reproducibility contract.
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng { return &prng{state: seed + 0x9e3779b97f4a7c15} }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (p *prng) float64() float64 { return float64(p.next()>>11) / (1 << 53) }

// InstantiateError returns ErrInstantiate when an instantiation failure is
// injected, nil otherwise (and always on a nil receiver).
func (in *Injector) InstantiateError() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.InstantiateFailRate <= 0 {
		return nil
	}
	in.stats.Draws++
	if in.rng.float64() < in.cfg.InstantiateFailRate {
		in.stats.InstantiateFailures++
		return ErrInstantiate
	}
	return nil
}

// TrapFraction reports whether this invoke traps; when it does, the returned
// fraction in (0, 1) is how much of the invoke's work executed before the
// trap — the engine bills that partial execution as simulated time.
func (in *Injector) TrapFraction() (float64, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.TrapRate <= 0 {
		return 0, false
	}
	in.stats.Draws++
	if in.rng.float64() >= in.cfg.TrapRate {
		return 0, false
	}
	in.stats.Traps++
	in.stats.Draws++
	return in.rng.float64(), true
}

// ColdStartMultiplier returns the latency multiplier for one cold start:
// SlowColdFactor when a slowdown is drawn, 1 otherwise (and on nil).
func (in *Injector) ColdStartMultiplier() float64 {
	if in == nil {
		return 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.SlowColdRate <= 0 || in.cfg.SlowColdFactor <= 1 {
		return 1
	}
	in.stats.Draws++
	if in.rng.float64() < in.cfg.SlowColdRate {
		in.stats.SlowColdStarts++
		return in.cfg.SlowColdFactor
	}
	return 1
}

// ArmPressure schedules fn at every Config.PressureAt instant on the DES
// clock and returns how many episodes were armed. fn runs on the simulation
// goroutine like any other event; the k8s layer passes the node's
// memory-pressure response (drain warm-pool idle instances) here.
func (in *Injector) ArmPressure(eng *des.Engine, fn func()) int {
	if in == nil || eng == nil || fn == nil {
		return 0
	}
	in.mu.Lock()
	times := append([]time.Duration(nil), in.cfg.PressureAt...)
	in.mu.Unlock()
	for _, at := range times {
		eng.At(des.Time(at), func() {
			in.mu.Lock()
			in.stats.PressureEvents++
			in.mu.Unlock()
			fn()
		})
	}
	return len(times)
}

// ArmNodeDeath schedules fn at every Config.NodeDeathAt instant on the DES
// clock and returns how many episodes were armed. fn receives the episode
// index (0-based) so the caller can pick which node dies; the cluster layer
// answers by failing a node — drain, re-place, re-route.
func (in *Injector) ArmNodeDeath(eng *des.Engine, fn func(episode int)) int {
	if in == nil || eng == nil || fn == nil {
		return 0
	}
	in.mu.Lock()
	times := append([]time.Duration(nil), in.cfg.NodeDeathAt...)
	in.mu.Unlock()
	for i, at := range times {
		i := i
		eng.At(des.Time(at), func() {
			in.mu.Lock()
			in.stats.NodeDeaths++
			in.mu.Unlock()
			fn(i)
		})
	}
	return len(times)
}

// Stats returns a snapshot of the fault counters. Safe to call from observer
// goroutines while a simulation runs.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

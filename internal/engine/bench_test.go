package engine

import (
	"fmt"
	"strings"
	"testing"

	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/wat"
)

// benchBinary builds a module with many function bodies so compilation
// (decode + validate + precompile) carries realistic weight on the cold path:
// the WAT workloads are a handful of functions, but real service modules ship
// hundreds, and that is exactly the work the content-addressed cache elides.
func benchBinary(b *testing.B) []byte {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("(module\n  (memory 1)\n")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, `  (func $f%d (param i32) (result i32)
    (local i32)
    local.get 0
    i32.const %d
    i32.add
    local.tee 1
    i32.const 7
    i32.mul
    local.get 1
    i32.xor)
`, i, i)
	}
	sb.WriteString("  (func (export \"run\") (param i32) (result i32)\n    local.get 0")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, "\n    call $f%d", i)
	}
	sb.WriteString("))\n")
	bin, err := wat.CompileToBinary(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return bin
}

// BenchmarkInstantiateCold measures the full cold path: every iteration pays
// decode + validate + precompile because each engine gets a private, empty
// module cache.
func BenchmarkInstantiateCold(b *testing.B) {
	bin := benchBinary(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(WAMR)
		cm, err := eng.Compile(bin)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Instantiate(cm); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInvokeInstance builds one live instance of the bench module.
func benchInvokeInstance(b *testing.B, tele *obs.Telemetry) *Instance {
	b.Helper()
	eng := New(WAMR)
	eng.SetObserver(tele)
	cm, err := eng.Compile(benchBinary(b))
	if err != nil {
		b.Fatal(err)
	}
	inst, err := eng.Instantiate(cm)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkInvokeTelemetryDisabled measures the real engine invoke path with
// telemetry wired then disabled (nil observer): the companion to the
// internal/obs gate, establishing the full-path baseline the enabled variant
// is compared against (≤2% slowdown budget). The invoke itself allocates
// (result slice), so the alloc gate lives in internal/obs where the
// instrumentation sequence runs in isolation.
func BenchmarkInvokeTelemetryDisabled(b *testing.B) {
	inst := benchInvokeInstance(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Invoke("run", exec.I32(int32(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeTelemetryEnabled is the same invoke loop with live counters
// and histograms.
func BenchmarkInvokeTelemetryEnabled(b *testing.B) {
	inst := benchInvokeInstance(b, obs.New(obs.Config{}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Invoke("run", exec.I32(int32(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstantiateCached measures the warm path: one engine (one cache),
// so every Compile after the first is a content-addressed cache hit and
// Instantiate reuses the shared compiled artifact.
func BenchmarkInstantiateCached(b *testing.B) {
	bin := benchBinary(b)
	eng := New(WAMR)
	if _, err := eng.Compile(bin); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, err := eng.Compile(bin)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Instantiate(cm); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := eng.CacheStats()
	if st.Misses != 1 {
		b.Fatalf("cache misses = %d, want 1 (every benchmark iteration must hit)", st.Misses)
	}
}

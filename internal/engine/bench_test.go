package engine

import (
	"fmt"
	"strings"
	"testing"

	"wasmcontainers/internal/wat"
)

// benchBinary builds a module with many function bodies so compilation
// (decode + validate + precompile) carries realistic weight on the cold path:
// the WAT workloads are a handful of functions, but real service modules ship
// hundreds, and that is exactly the work the content-addressed cache elides.
func benchBinary(b *testing.B) []byte {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("(module\n  (memory 1)\n")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, `  (func $f%d (param i32) (result i32)
    (local i32)
    local.get 0
    i32.const %d
    i32.add
    local.tee 1
    i32.const 7
    i32.mul
    local.get 1
    i32.xor)
`, i, i)
	}
	sb.WriteString("  (func (export \"run\") (param i32) (result i32)\n    local.get 0")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, "\n    call $f%d", i)
	}
	sb.WriteString("))\n")
	bin, err := wat.CompileToBinary(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return bin
}

// BenchmarkInstantiateCold measures the full cold path: every iteration pays
// decode + validate + precompile because each engine gets a private, empty
// module cache.
func BenchmarkInstantiateCold(b *testing.B) {
	bin := benchBinary(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(WAMR)
		cm, err := eng.Compile(bin)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Instantiate(cm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstantiateCached measures the warm path: one engine (one cache),
// so every Compile after the first is a content-addressed cache hit and
// Instantiate reuses the shared compiled artifact.
func BenchmarkInstantiateCached(b *testing.B) {
	bin := benchBinary(b)
	eng := New(WAMR)
	if _, err := eng.Compile(bin); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, err := eng.Compile(bin)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Instantiate(cm); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := eng.CacheStats()
	if st.Misses != 1 {
		b.Fatalf("cache misses = %d, want 1 (every benchmark iteration must hit)", st.Misses)
	}
}

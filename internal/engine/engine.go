// Package engine models the four WebAssembly engines the paper evaluates —
// WAMR, Wasmtime, Wasmer, and WasmEdge — behind one interface. Semantics are
// identical for all four (they share this repository's wasm interpreter, so
// guest programs really execute); what differs between engines is what the
// paper measures: the memory-layout profile (interpreter state vs JIT code
// caches vs pooling allocators, shared-library vs per-process footprint) and
// the startup-cost profile (init latency, CPU work, and containerd
// task-service serialization for shim-hosted engines).
//
// Profile constants are calibrated so that the full simulated stack
// reproduces the relative results of the paper's figures; the calibration is
// documented in DESIGN.md and the resulting numbers in EXPERIMENTS.md.
package engine

import (
	"fmt"
	"time"

	"wasmcontainers/internal/faults"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/wasi"
	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/cache"
	"wasmcontainers/internal/wasm/exec"
)

// Mode is the execution strategy of an engine build.
type Mode string

// Engine execution modes.
const (
	ModeInterpreter Mode = "interpreter"
	ModeJIT         Mode = "jit"
	ModeAOT         Mode = "aot"
)

const (
	kib = int64(1024)
	mib = 1024 * kib
)

// Profile describes one engine's resource behaviour.
type Profile struct {
	Name    string
	Version string
	Mode    Mode

	// Memory model (bytes).

	// EmbedPrivateBytes is the private anonymous memory of a container
	// process that embeds this engine inside crun (runtime heap, instance
	// pools, JIT code cache), excluding the guest's real linear memory,
	// which is measured from execution.
	EmbedPrivateBytes int64
	// ShimPrivateBytes is the private memory of the container-side process
	// when the engine runs under its containerd runwasi shim.
	ShimPrivateBytes int64
	// ShimSystemBytes is shim-side memory living outside the pod cgroup
	// (visible to `free`, invisible to the metrics server).
	ShimSystemBytes int64
	// SharedLibName/SharedLibBytes model the dlopen'd engine library whose
	// resident text is shared across every crun container on the node: the
	// mechanism behind the paper's "dynamic library loading" design point.
	SharedLibName  string
	SharedLibBytes int64
	// ShimBinaryName/ShimBinaryBytes model the shim executable's shared text.
	ShimBinaryName  string
	ShimBinaryBytes int64

	// Timing model.

	// EmbedFixedDelay is non-CPU latency on the crun path (API waits, IPC).
	EmbedFixedDelay time.Duration
	// EmbedCPUWork is CPU time consumed starting one container on the crun
	// path (engine init, module load/compile, instantiate, app warm-up).
	EmbedCPUWork time.Duration
	// ShimFixedDelay / ShimCPUWork are the same for the runwasi path.
	ShimFixedDelay time.Duration
	ShimCPUWork    time.Duration
	// ShimTaskLockHold is how long a runwasi container start holds the
	// containerd task-service lock (shim spawn + TTRPC handshake happen
	// inside it); this serialization is what degrades shim startup at high
	// density in Figure 9.
	ShimTaskLockHold time.Duration
	// NsPerInstruction converts really-executed guest instructions into
	// simulated CPU time (interpreters are slower per instruction than JIT).
	NsPerInstruction float64
	// Tier1Speedup divides NsPerInstruction for invokes served by the tier-1
	// direct-threaded backend after hotness tier-up. Interpreters gain the
	// full dispatch win; JIT/AOT engines already execute lowered code, so
	// their tier-up models only the residual fast-dispatch improvements.
	Tier1Speedup float64

	// Serving model (warm instance pools inside a live gateway process).

	// WarmInstanceBytes is the engine-side state one pre-instantiated,
	// pooled instance costs beyond the guest's real linear memory (instance
	// structs, per-instance JIT metadata, pooling-allocator slot overhead).
	WarmInstanceBytes int64
	// WarmInvokeOverhead is the per-request cost of dispatching into an
	// already-instantiated instance (trampoline entry, argument marshalling).
	WarmInvokeOverhead time.Duration
}

// The four engine profiles with versions from the paper's Table I.
var (
	// WAMR is the WebAssembly Micro Runtime: tiny interpreter, minimal
	// per-instance state, shipped as a small shared library.
	WAMR = Profile{
		Name: "wamr", Version: "2.1.0", Mode: ModeInterpreter,
		EmbedPrivateBytes:  3727 * kib,
		ShimPrivateBytes:   4096 * kib, // no official runwasi shim; used by ablations only
		SharedLibName:      "libiwasm.so",
		SharedLibBytes:     1536 * kib,
		EmbedFixedDelay:    70 * time.Millisecond,
		EmbedCPUWork:       2670 * time.Millisecond,
		ShimFixedDelay:     200 * time.Millisecond,
		ShimCPUWork:        600 * time.Millisecond,
		ShimTaskLockHold:   200 * time.Millisecond,
		NsPerInstruction:   160,
		Tier1Speedup:       2.5,
		WarmInstanceBytes:  160 * kib,
		WarmInvokeOverhead: 12 * time.Microsecond,
	}

	// Wasmtime: Cranelift JIT, large compiled artifacts and code caches,
	// big shared library when embedded.
	Wasmtime = Profile{
		Name: "wasmtime", Version: "23.0.1", Mode: ModeJIT,
		EmbedPrivateBytes:  10894 * kib,
		ShimPrivateBytes:   4823 * kib,
		ShimSystemBytes:    82 * kib,
		SharedLibName:      "libwasmtime.so",
		SharedLibBytes:     24 * mib,
		ShimBinaryName:     "containerd-shim-wasmtime-v1",
		ShimBinaryBytes:    4 * mib,
		EmbedFixedDelay:    380 * time.Millisecond,
		EmbedCPUWork:       2430 * time.Millisecond,
		ShimFixedDelay:     180 * time.Millisecond,
		ShimCPUWork:        500 * time.Millisecond,
		ShimTaskLockHold:   222 * time.Millisecond,
		NsPerInstruction:   6,
		Tier1Speedup:       1.15,
		WarmInstanceBytes:  1792 * kib,
		WarmInvokeOverhead: 3 * time.Microsecond,
	}

	// Wasmer: JIT with artifact caching; the heaviest memory footprint in
	// both embedded and shim form.
	Wasmer = Profile{
		Name: "wasmer", Version: "4.3.5", Mode: ModeJIT,
		EmbedPrivateBytes:  11918 * kib,
		ShimPrivateBytes:   17244 * kib,
		ShimSystemBytes:    6246 * kib,
		SharedLibName:      "libwasmer.so",
		SharedLibBytes:     20 * mib,
		ShimBinaryName:     "containerd-shim-wasmer-v1",
		ShimBinaryBytes:    5 * mib,
		EmbedFixedDelay:    360 * time.Millisecond,
		EmbedCPUWork:       2570 * time.Millisecond,
		ShimFixedDelay:     1000 * time.Millisecond,
		ShimCPUWork:        795 * time.Millisecond,
		ShimTaskLockHold:   270 * time.Millisecond,
		NsPerInstruction:   6,
		Tier1Speedup:       1.15,
		WarmInstanceBytes:  2048 * kib,
		WarmInvokeOverhead: 4 * time.Microsecond,
	}

	// WasmEdge: AOT-capable runtime aimed at cloud-native uses; mid-size
	// footprint, fast shim startup at low density.
	WasmEdge = Profile{
		Name: "wasmedge", Version: "0.14.0", Mode: ModeAOT,
		EmbedPrivateBytes:  8028 * kib,
		ShimPrivateBytes:   5775 * kib,
		ShimSystemBytes:    205 * kib,
		SharedLibName:      "libwasmedge.so",
		SharedLibBytes:     14 * mib,
		ShimBinaryName:     "containerd-shim-wasmedge-v1",
		ShimBinaryBytes:    4608 * kib,
		EmbedFixedDelay:    360 * time.Millisecond,
		EmbedCPUWork:       2500 * time.Millisecond,
		ShimFixedDelay:     300 * time.Millisecond,
		ShimCPUWork:        616 * time.Millisecond,
		ShimTaskLockHold:   195 * time.Millisecond,
		NsPerInstruction:   9,
		Tier1Speedup:       1.6,
		WarmInstanceBytes:  1024 * kib,
		WarmInvokeOverhead: 6 * time.Microsecond,
	}
)

// Profiles lists all engine profiles in a stable order.
func Profiles() []Profile { return []Profile{WAMR, Wasmtime, Wasmer, WasmEdge} }

// ByName looks up a profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// DefaultModuleCacheBytes bounds the per-engine compiled-module cache. Real
// engines size their artifact caches similarly (WAMR's loaded-module table,
// Wasmtime's on-disk AOT cache); the exact figure only matters under heavy
// multi-tenancy, and eviction + recompile keeps it correct regardless.
const DefaultModuleCacheBytes = 256 * mib

// Engine executes WebAssembly modules under a profile.
type Engine struct {
	Profile Profile
	// modCache deduplicates Compile: N identical binaries decode, validate,
	// and lower once, and share one compiled artifact.
	modCache *cache.Cache
	// faults is the optional fault injector consulted at the engine
	// boundaries (Instantiate, Invoke, ColdStartCost); nil (the default)
	// means no injection and costs one nil check per boundary.
	faults *faults.Injector

	// tierPolicy is installed on every compiled module. The default is
	// exec.DefaultTierPolicy (hotness-triggered tier-up); ablations switch it
	// to off or eager via SetTierPolicy before compiling.
	tierPolicy exec.TierPolicy

	// Telemetry handles, pre-resolved by SetObserver and nil when disabled:
	// the invoke hot path then pays one nil check per handle and zero
	// allocations (BenchmarkInvokeTelemetryDisabled enforces this).
	obs             *obs.Telemetry
	obsInstantiates *obs.Counter
	obsInstWallNs   *obs.Histogram
	obsInvokes      *obs.Counter
	obsInvokeInstr  *obs.Histogram
	obsTraps        *obs.Counter
	obsTierUps      *obs.Counter
	obsInvokeNsT0   *obs.Histogram
	obsInvokeNsT1   *obs.Histogram
	obsTracer       *obs.Tracer
}

// SetObserver wires telemetry into the engine and its module cache. Metric
// names carry an engine label so cache-sharing engines stay separable in the
// Prometheus dump. Pass nil to disable (the default).
func (e *Engine) SetObserver(t *obs.Telemetry) {
	e.obs = t
	if t == nil {
		e.obsInstantiates, e.obsInvokes, e.obsTraps = nil, nil, nil
		e.obsInstWallNs, e.obsInvokeInstr, e.obsTracer = nil, nil, nil
		e.obsTierUps, e.obsInvokeNsT0, e.obsInvokeNsT1 = nil, nil, nil
		e.modCache.SetObserver(nil)
		return
	}
	label := func(name string) string { return obs.Labeled(name, "engine", e.Profile.Name) }
	e.obsInstantiates = t.Counter(label("engine_instantiates_total"))
	e.obsInstWallNs = t.Histogram(label("engine_instantiate_wall_ns"))
	e.obsInvokes = t.Counter(label("engine_invokes_total"))
	e.obsInvokeInstr = t.Histogram(label("engine_invoke_instructions"))
	e.obsTraps = t.Counter(label("engine_traps_total"))
	e.obsTierUps = t.Counter(label("tierup_total"))
	e.obsInvokeNsT0 = t.Histogram(obs.Labeled(label("engine_invoke_sim_ns"), "tier", "0"))
	e.obsInvokeNsT1 = t.Histogram(obs.Labeled(label("engine_invoke_sim_ns"), "tier", "1"))
	e.obsTracer = t.Tracer()
	e.modCache.SetObserver(t)
}

// SetFaultInjector arms (or, with nil, disarms) deterministic fault
// injection at the engine's serving boundaries: Instantiate may fail with
// faults.ErrInstantiate, Invoke may trap mid-execution with faults.ErrTrap
// (billing the partial execution as simulated time), and ColdStartCost may
// draw a slow-start multiplier. Arm it after pool pre-warming so only
// request-path work is subjected to faults.
func (e *Engine) SetFaultInjector(in *faults.Injector) { e.faults = in }

// FaultInjector returns the armed injector, nil when injection is disabled.
func (e *Engine) FaultInjector() *faults.Injector { return e.faults }

// New creates an engine for the profile with its own module cache.
func New(p Profile) *Engine { return NewWithCache(p, cache.New(DefaultModuleCacheBytes)) }

// NewWithCache creates an engine sharing a compiled-module cache with other
// engines — the node-level arrangement, where every container runtime on a
// host resolves module digests against one artifact store.
func NewWithCache(p Profile, c *cache.Cache) *Engine {
	if c == nil {
		c = cache.New(DefaultModuleCacheBytes)
	}
	return &Engine{Profile: p, modCache: c, tierPolicy: exec.DefaultTierPolicy()}
}

// SetTierPolicy changes the tier-up policy installed on modules compiled from
// now on (already-compiled modules keep the policy they got). The tiers
// ablation uses it to compare tier-0-only, hotness, and eager lowering.
func (e *Engine) SetTierPolicy(p exec.TierPolicy) { e.tierPolicy = p }

// TierPolicy returns the policy installed on newly compiled modules.
func (e *Engine) TierPolicy() exec.TierPolicy { return e.tierPolicy }

// CacheStats reports the module cache's counters.
func (e *Engine) CacheStats() cache.Stats { return e.modCache.Stats() }

// CompiledModule is a loaded, validated, and lowered module. The Code
// artifact is immutable and typically shared with every other holder of the
// same binary digest.
type CompiledModule struct {
	Module  *wasm.Module
	BinSize int
	// Digest is the content address (SHA-256 of the binary).
	Digest cache.Digest
	// Code holds the precompiled function bodies, shared by reference.
	Code *exec.ModuleCode
}

// CodeBytes is the size of the compiled-code artifact: charged once per node
// in the shared-code memory model, no matter how many instances run it.
func (cm *CompiledModule) CodeBytes() int64 {
	if cm.Code == nil {
		return 0
	}
	return cm.Code.CodeBytes()
}

// Tier1Bytes is the size of the tier-1 direct-threaded artifact currently
// published for this module (0 before tier-up and after an eviction-driven
// drop). Like CodeBytes it is charged once per node regardless of instance
// count.
func (cm *CompiledModule) Tier1Bytes() int64 {
	if cm.Code == nil {
		return 0
	}
	return cm.Code.Tier1Bytes()
}

// BaselineBytes is the size of the module's shared baseline memory image
// (post-instantiation linear memory, captured from the first instance): like
// CodeBytes, charged once per node no matter how many instances diverge from
// it. Zero until something has been instantiated.
func (cm *CompiledModule) BaselineBytes() int64 {
	if cm.Code == nil {
		return 0
	}
	return cm.Code.BaselineBytes()
}

// Compile decodes, validates, and lowers a binary module through the
// engine's content-addressed cache: recompiling a binary the engine (or a
// cache-sharing peer) has seen before is a cache hit and costs no work.
// The engine's tier policy is installed on the compiled code, with a tier-up
// listener that records the tier-1 artifact in the module cache (charged once
// per node, LRU-evictable beside the module). Under the eager policy the
// tier-1 body is lowered right here rather than on hotness.
func (e *Engine) Compile(bin []byte) (*CompiledModule, error) {
	ent, err := e.modCache.Load(bin)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.Profile.Name, err)
	}
	e.installTierHooks(ent)
	return &CompiledModule{
		Module:  ent.Module,
		BinSize: int(ent.BinSize),
		Digest:  ent.Digest,
		Code:    ent.Code,
	}, nil
}

// installTierHooks applies the engine's tier policy to a freshly loaded cache
// entry and hooks tier-up into cache accounting and telemetry.
func (e *Engine) installTierHooks(ent *cache.Entry) {
	mc := ent.Code
	if mc == nil {
		return
	}
	mc.SetTierPolicy(e.tierPolicy)
	c := e.modCache
	mc.SetTierUpListener(func(tc *exec.Tier1Code, lowered time.Duration) {
		c.NoteTier1(ent)
		e.obsTierUps.Inc()
		if e.obsTracer != nil {
			now := e.obsTracer.Now()
			e.obsTracer.Span("tier-up", "engine", 0, now, now,
				obs.Str("engine", e.Profile.Name),
				obs.I64("lowered_funcs", int64(tc.Lowered())),
				obs.I64("tier1_bytes", tc.Bytes()),
				obs.I64("lower_wall_ns", lowered.Nanoseconds()))
		}
	}, nil)
	if e.tierPolicy.Mode == exec.TierModeEager {
		mc.EnsureTier1()
	}
}

// RunResult extends the WASI result with engine-derived figures.
type RunResult struct {
	wasi.RunResult
	// GuestMemoryBytes is the real linear-memory size at exit.
	GuestMemoryBytes int64
	// GuestPrivateBytes is the linear memory the run actually dirtied: the
	// copy-on-write private cost, with the clean remainder aliasing the
	// module's shared baseline image (CompiledModule.BaselineBytes).
	GuestPrivateBytes int64
	// SimulatedExecTime converts executed instructions to engine CPU time.
	SimulatedExecTime time.Duration
}

// Run executes a compiled command module under WASI config cfg. Execution is
// real: the module runs on the shared interpreter; the engine profile only
// shapes the derived cost figures.
func (e *Engine) Run(cm *CompiledModule, cfg wasi.Config) (RunResult, error) {
	w := wasi.New(cfg)
	w.SetObserver(e.obs)
	var spanStart int64
	if e.obsTracer != nil {
		spanStart = e.obsTracer.Now()
	}
	store := exec.NewStore(exec.Config{})
	var res wasi.RunResult
	var err error
	if cm.Code != nil {
		res, err = w.RunModule(store, cm.Code)
	} else {
		res, err = w.Run(store, cm.Module)
	}
	if err != nil {
		return RunResult{}, fmt.Errorf("%s: %w", e.Profile.Name, err)
	}
	if e.obsTracer != nil {
		e.obsTracer.Span("wasi-run", "engine", 0, spanStart, e.obsTracer.Now(),
			obs.Str("engine", e.Profile.Name),
			obs.I64("instructions", int64(res.Instructions)),
			obs.I64("exit_code", int64(res.ExitCode)))
	}
	return e.annotate(res), nil
}

func (e *Engine) annotate(res wasi.RunResult) RunResult {
	return RunResult{
		RunResult:         res,
		GuestMemoryBytes:  int64(res.MemoryPages) * wasm.PageSize,
		GuestPrivateBytes: int64(res.PrivatePages) * wasm.PageSize,
		SimulatedExecTime: time.Duration(float64(res.Instructions) * e.Profile.NsPerInstruction),
	}
}

// EmbedStartCost returns the (fixed delay, CPU work) of starting one
// container with this engine embedded in crun, including real execution time
// of the guest's startup path.
func (e *Engine) EmbedStartCost(execTime time.Duration) (delay, cpu time.Duration) {
	return e.Profile.EmbedFixedDelay, e.Profile.EmbedCPUWork + execTime
}

// ShimStartCost is the runwasi-path equivalent; lockHold is the containerd
// task-service serialization component.
func (e *Engine) ShimStartCost(execTime time.Duration) (delay, cpu, lockHold time.Duration) {
	return e.Profile.ShimFixedDelay, e.Profile.ShimCPUWork + execTime, e.Profile.ShimTaskLockHold
}

// EmbedFootprint returns the private bytes of a crun container process
// running this engine with the given real guest memory.
func (e *Engine) EmbedFootprint(guestMemoryBytes int64) int64 {
	return e.Profile.EmbedPrivateBytes + guestMemoryBytes
}

// ShimFootprint returns (pod-cgroup private bytes, system-slice bytes) for
// the runwasi path.
func (e *Engine) ShimFootprint(guestMemoryBytes int64) (podBytes, systemBytes int64) {
	return e.Profile.ShimPrivateBytes + guestMemoryBytes, e.Profile.ShimSystemBytes
}

// ColdStartCost is the simulated latency to reach a ready instance inside an
// already-running gateway process: the embed profile's CPU work (engine init,
// module load/compile, instantiate, warm-up) without crun's fixed API delay,
// which a live process does not pay again. internal/serve charges this on
// every dry-pool fallback, so the per-engine startup profiles shape serving
// tail latency exactly as they shape the density experiments. An armed fault
// injector may draw a slow-start multiplier (cold compile cache, page-cache
// miss), stretching this one cold start deterministically.
func (e *Engine) ColdStartCost() time.Duration {
	c := e.Profile.EmbedCPUWork
	if m := e.faults.ColdStartMultiplier(); m > 1 {
		c = time.Duration(float64(c) * m)
	}
	return c
}

// Instance is a live instantiated module held for repeated invocations (the
// serving path). Each Instance owns a private store, so distinct Instances
// may be used from different goroutines; a single Instance must not.
type Instance struct {
	e     *Engine
	store *exec.Store
	inst  *exec.Instance
}

// Instantiate allocates a fresh store and instantiates cm in it — the same
// real path a container start takes (import resolution, memory allocation,
// data segments, start function). Used for both pool pre-warming and the
// dispatcher's cold-start fallback.
func (e *Engine) Instantiate(cm *CompiledModule) (*Instance, error) {
	if err := e.faults.InstantiateError(); err != nil {
		return nil, fmt.Errorf("%s: %w", e.Profile.Name, err)
	}
	var spanStart int64
	var wallStart time.Time
	if e.obsTracer != nil {
		spanStart = e.obsTracer.Now()
		wallStart = time.Now()
	}
	store := exec.NewStore(exec.Config{})
	var inst *exec.Instance
	var err error
	if cm.Code != nil {
		inst, err = store.InstantiateCompiled(cm.Code, "")
	} else {
		inst, err = store.Instantiate(cm.Module, "")
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.Profile.Name, err)
	}
	e.obsInstantiates.Inc()
	if e.obsTracer != nil {
		wallNs := time.Since(wallStart).Nanoseconds()
		e.obsInstWallNs.Record(wallNs)
		var pages int64
		if m := inst.Memory(); m != nil {
			pages = int64(m.Size()) / wasm.PageSize
		}
		e.obsTracer.Span("instantiate", "engine", 0, spanStart, e.obsTracer.Now(),
			obs.Str("engine", e.Profile.Name),
			obs.I64("wall_ns", wallNs),
			obs.I64("memory_pages", pages))
	}
	// Copy-on-write setup: the first instance of a digest donates its
	// post-instantiation memory as the shared baseline image; later instances
	// attach the same image by reference and are charged only dirty pages.
	// Without a shared artifact (no precompiled code) the instance still
	// captures a private baseline so ResetToBaseline works uniformly.
	if m := inst.Memory(); m != nil {
		if cm.Code == nil || cm.Code.EnsureBaseline(m) == nil {
			m.CaptureBaseline()
		}
	}
	return &Instance{e: e, store: store, inst: inst}, nil
}

// InvokeResult carries one invocation's outcome and derived cost figures.
type InvokeResult struct {
	Values       []exec.Value
	Instructions uint64
	// Tier is the execution tier that served this invoke (0 = switch
	// interpreter, 1 = direct-threaded code after tier-up).
	Tier              int
	SimulatedExecTime time.Duration
	GuestMemoryBytes  int64
}

// Invoke calls an exported function. Execution is real; the profile converts
// the executed instruction count into simulated CPU time. On error — a real
// guest trap or an injected one — the result still carries the instructions
// that executed before the trap and their simulated time, so callers account
// the concurrency and latency a failed request actually consumed.
func (i *Instance) Invoke(export string, args ...exec.Value) (InvokeResult, error) {
	before := i.store.InstructionCount()
	vals, err := i.inst.Call(export, args...)
	i.e.obsInvokes.Inc()
	n := i.store.InstructionCount() - before
	tier := i.store.LastInvokeTier()
	if err != nil {
		i.e.obsTraps.Inc()
		return i.partialResult(n, tier), fmt.Errorf("%s: %w", i.e.Profile.Name, err)
	}
	if frac, trap := i.e.faults.TrapFraction(); trap {
		// Injected mid-invoke trap: the guest "executed" frac of its work
		// before trapping. The real run completed (and was reset-safe), but
		// the caller sees a trap that consumed partial simulated time.
		i.e.obsTraps.Inc()
		return i.partialResult(uint64(float64(n)*frac), tier),
			fmt.Errorf("%s: %w", i.e.Profile.Name, faults.ErrTrap)
	}
	i.e.obsInvokeInstr.Record(int64(n))
	simT := i.simTime(n, tier)
	if tier == 1 {
		i.e.obsInvokeNsT1.Record(simT.Nanoseconds())
	} else {
		i.e.obsInvokeNsT0.Record(simT.Nanoseconds())
	}
	return InvokeResult{
		Values:            vals,
		Instructions:      n,
		Tier:              tier,
		SimulatedExecTime: simT,
		GuestMemoryBytes:  i.GuestMemoryBytes(),
	}, nil
}

// simTime prices n executed instructions for the tier that executed them:
// instruction counts are tier-invariant by construction (the differential
// tests enforce it), so tier-1's real speedup shows up purely as a cheaper
// per-instruction rate.
func (i *Instance) simTime(n uint64, tier int) time.Duration {
	ns := i.e.Profile.NsPerInstruction
	if tier == 1 {
		if sp := i.e.Profile.Tier1Speedup; sp > 1 {
			ns /= sp
		}
	}
	return time.Duration(float64(n) * ns)
}

// partialResult bills n instructions of a trapped invoke (no return values).
func (i *Instance) partialResult(n uint64, tier int) InvokeResult {
	return InvokeResult{
		Instructions:      n,
		Tier:              tier,
		SimulatedExecTime: i.simTime(n, tier),
		GuestMemoryBytes:  i.GuestMemoryBytes(),
	}
}

// GuestMemoryBytes is the instance's current real linear-memory size.
func (i *Instance) GuestMemoryBytes() int64 {
	if m := i.inst.Memory(); m != nil {
		return int64(m.Size())
	}
	return 0
}

// PrivateMemoryBytes is the instance's copy-on-write private linear-memory
// cost: the pages it has dirtied since instantiation or the last reset. The
// baseline image the clean pages alias is accounted separately, once per
// module (CompiledModule.BaselineBytes).
func (i *Instance) PrivateMemoryBytes() int64 {
	if m := i.inst.Memory(); m != nil {
		return m.PrivateBytes()
	}
	return 0
}

// FootprintBytes is what one live instance costs in the engine's memory
// model: per-instance runtime state plus the private (dirty) linear-memory
// pages. A freshly instantiated or freshly reset instance costs exactly
// WarmInstanceBytes — its whole memory aliases the shared baseline.
func (i *Instance) FootprintBytes() int64 {
	return i.e.Profile.WarmInstanceBytes + i.PrivateMemoryBytes()
}

// ResetToBaseline rewinds linear memory to the module's baseline image by
// copying back only dirty pages (releasing pages grown during the request),
// and returns how many pages were copied. This is the warm pool's
// between-requests reset: cost scales with pages touched, not memory size.
func (i *Instance) ResetToBaseline() int {
	if m := i.inst.Memory(); m != nil {
		if n := m.ResetToBaseline(); n >= 0 {
			return n
		}
	}
	return 0
}

// MemorySnapshot copies the current linear memory. This is the legacy
// full-copy reset image (superseded by the shared baseline + dirty-page
// reset); it is kept as the comparison baseline for the CoW benchmarks.
func (i *Instance) MemorySnapshot() []byte {
	if m := i.inst.Memory(); m != nil {
		return append([]byte(nil), m.Bytes()...)
	}
	return nil
}

// ResetMemory restores linear memory to a snapshot with a full-memory copy,
// releasing any pages the guest grew since it was taken. Legacy counterpart
// of ResetToBaseline, kept for the benchmarks that measure what the old
// reset cost.
func (i *Instance) ResetMemory(snapshot []byte) {
	if m := i.inst.Memory(); m != nil {
		m.Restore(snapshot)
	}
}

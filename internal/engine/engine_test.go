package engine

import (
	"bytes"
	"strings"
	"testing"

	"wasmcontainers/internal/wasi"
	"wasmcontainers/internal/workloads"
)

func TestProfilesComplete(t *testing.T) {
	profs := Profiles()
	if len(profs) != 4 {
		t.Fatalf("%d profiles", len(profs))
	}
	names := map[string]bool{}
	for _, p := range profs {
		names[p.Name] = true
		if p.Version == "" || p.Mode == "" {
			t.Errorf("%s: missing version/mode", p.Name)
		}
		if p.EmbedPrivateBytes <= 0 || p.EmbedCPUWork <= 0 || p.NsPerInstruction <= 0 {
			t.Errorf("%s: incomplete model: %+v", p.Name, p)
		}
	}
	for _, want := range []string{"wamr", "wasmtime", "wasmer", "wasmedge"} {
		if !names[want] {
			t.Errorf("missing profile %s", want)
		}
	}
	if _, ok := ByName("wamr"); !ok {
		t.Error("ByName(wamr) failed")
	}
	if _, ok := ByName("v8"); ok {
		t.Error("ByName accepted unknown engine")
	}
}

func TestWAMRIsSmallestAndSlowest(t *testing.T) {
	// The design trade the paper exploits: WAMR's interpreter is the
	// smallest footprint but the slowest per instruction.
	for _, p := range Profiles() {
		if p.Name == "wamr" {
			continue
		}
		if WAMR.EmbedPrivateBytes >= p.EmbedPrivateBytes {
			t.Errorf("WAMR footprint (%d) not below %s (%d)",
				WAMR.EmbedPrivateBytes, p.Name, p.EmbedPrivateBytes)
		}
		if WAMR.NsPerInstruction <= p.NsPerInstruction {
			t.Errorf("WAMR ns/instr (%v) not above %s (%v)",
				WAMR.NsPerInstruction, p.Name, p.NsPerInstruction)
		}
		if WAMR.SharedLibBytes >= p.SharedLibBytes {
			t.Errorf("WAMR lib (%d) not below %s (%d)",
				WAMR.SharedLibBytes, p.Name, p.SharedLibBytes)
		}
	}
}

func TestEngineCompileAndRun(t *testing.T) {
	bin, err := workloads.Binary("minimal-service")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Profiles() {
		eng := New(p)
		cm, err := eng.Compile(bin)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		var out bytes.Buffer
		res, err := eng.Run(cm, wasi.Config{Stdout: &out})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if out.String() != "service ready\n" || res.ExitCode != 0 {
			t.Fatalf("%s: out=%q exit=%d", p.Name, out.String(), res.ExitCode)
		}
		if res.GuestMemoryBytes != 65536 {
			t.Fatalf("%s: guest memory %d", p.Name, res.GuestMemoryBytes)
		}
		if res.SimulatedExecTime <= 0 {
			t.Fatalf("%s: no simulated exec time", p.Name)
		}
	}
}

func TestSimulatedExecTimeScalesWithMode(t *testing.T) {
	bin, _ := workloads.Binary("minimal-service")
	times := map[string]float64{}
	for _, p := range Profiles() {
		eng := New(p)
		cm, _ := eng.Compile(bin)
		res, err := eng.Run(cm, wasi.Config{})
		if err != nil {
			t.Fatal(err)
		}
		times[p.Name] = float64(res.SimulatedExecTime)
	}
	// Same instruction count, so the ratio equals the ns/instr ratio.
	ratio := times["wamr"] / times["wasmtime"]
	want := WAMR.NsPerInstruction / Wasmtime.NsPerInstruction
	if ratio < want*0.99 || ratio > want*1.01 {
		t.Fatalf("interp/jit ratio = %.1f, want %.1f", ratio, want)
	}
}

func TestCompileRejectsGarbage(t *testing.T) {
	eng := New(WAMR)
	if _, err := eng.Compile([]byte("not wasm")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := eng.Compile(nil); err == nil {
		t.Fatal("empty accepted")
	}
	// Structurally valid but semantically invalid module.
	bad := []byte("\x00asm\x01\x00\x00\x00")
	bad = append(bad, 3, 2, 1, 9) // function section referencing type 9
	if _, err := eng.Compile(bad); err == nil {
		t.Fatal("invalid module accepted")
	} else if !strings.Contains(err.Error(), "wamr") {
		t.Fatalf("error %q does not name the engine", err)
	}
}

func TestFootprints(t *testing.T) {
	eng := New(Wasmtime)
	guest := int64(65536)
	if got := eng.EmbedFootprint(guest); got != Wasmtime.EmbedPrivateBytes+guest {
		t.Fatalf("embed footprint = %d", got)
	}
	pod, sys := eng.ShimFootprint(guest)
	if pod != Wasmtime.ShimPrivateBytes+guest || sys != Wasmtime.ShimSystemBytes {
		t.Fatalf("shim footprint = %d/%d", pod, sys)
	}
}

func TestStartCosts(t *testing.T) {
	eng := New(WasmEdge)
	d, c := eng.EmbedStartCost(1000)
	if d != WasmEdge.EmbedFixedDelay || c != WasmEdge.EmbedCPUWork+1000 {
		t.Fatalf("embed cost = %v/%v", d, c)
	}
	d, c, l := eng.ShimStartCost(1000)
	if d != WasmEdge.ShimFixedDelay || c != WasmEdge.ShimCPUWork+1000 || l != WasmEdge.ShimTaskLockHold {
		t.Fatalf("shim cost = %v/%v/%v", d, c, l)
	}
}

func TestShimLockDominatesRuncShim(t *testing.T) {
	// The mechanism behind Figure 9: runwasi shims serialize far longer on
	// the containerd task service than the shim-runc-v2 path (2ms).
	for _, p := range []Profile{Wasmtime, Wasmer, WasmEdge} {
		if p.ShimTaskLockHold < 100*1e6 { // 100ms in ns
			t.Errorf("%s: shim lock hold %v too small to reproduce Fig 9", p.Name, p.ShimTaskLockHold)
		}
	}
}
